package saqp

import (
	"context"
	"encoding/json"
	"time"

	"saqp/internal/obs"
	"saqp/internal/obs/adminhttp"
	"saqp/internal/serve"
)

// Serving-layer re-exports, so callers stay on the facade.
type (
	// Ticket is a pending Server submission; see Server.Submit.
	Ticket = serve.Ticket
	// ServeResult is one served query's outcome.
	ServeResult = serve.Result
	// ServeStats snapshots a Server's counters.
	ServeStats = serve.Stats
)

// ErrServerClosed is returned by Submit after Close has begun.
var ErrServerClosed = serve.ErrClosed

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity.
var ErrQueueFull = serve.ErrQueueFull

// ServerOptions configures a Server. The zero value serves with SWRD
// admission on the paper's default cluster.
type ServerOptions struct {
	// Workers is the simulator pool size. Default 4.
	Workers int
	// CacheSize bounds the plan/estimate cache entry count. Default 256.
	CacheSize int
	// QueueCap bounds the admission queue (ErrQueueFull beyond it).
	// 0 means unbounded.
	QueueCap int
	// Cluster sizes each pool simulator; the zero value means the
	// paper's 9-node default.
	Cluster ClusterConfig
	// Scheduler names the slot policy each pool simulator runs — one of
	// SchedulerNames(). Empty means SchedulerSWRD.
	Scheduler string
	// MaxRetries is how many times a query abandoned at the task attempt
	// cap is re-run (on a re-salted fault plan) before its
	// *TaskFailedError is delivered through Ticket.Wait. Only meaningful
	// when Cluster.Faults is set. Default 0: fail on first abandonment.
	MaxRetries int
	// QueryTimeout, when positive, bounds each submission's wall-clock
	// lifetime: Submit's context is wrapped with this deadline, so a
	// stuck query is canceled rather than holding a pool worker.
	QueryTimeout time.Duration
	// OnlineLearning enables the model-lifecycle subsystem: the server
	// builds a Learner seeded from the framework's trained models (or
	// cold, if untrained), serves predictions from its champion, and
	// feeds every cleanly completed query's observed times back into it.
	OnlineLearning bool
	// Learner overrides the registry used when online learning is on;
	// nil builds one via Framework.NewLearner with defaults. Sharing one
	// Learner across servers pools their feedback.
	Learner *Learner
	// TraceSpans records a request-scoped span tree per admitted query:
	// cache lookup → SWRD admission → every simulator attempt (jobs,
	// tasks, faults, speculative losers, scheduler decisions) → learn
	// feedback, retained in a bounded store readable via Spans and the
	// admin server's /spans endpoint.
	TraceSpans bool
	// SpanCapacity bounds retained span trees (oldest evicted first).
	// 0 means obs.DefaultSpanCapacity.
	SpanCapacity int
	// SLO, when non-nil, tracks a latency objective with multi-window
	// burn-rate alerting over virtual time; zero fields take the obs
	// defaults and Name defaults to the scheduler name.
	SLO *SLOConfig
	// AdminAddr, when non-empty, starts the live introspection HTTP
	// server on that address (host:port; ":0" picks a free port) serving
	// /metrics, /spans, /slo, /drift, /statz and /debug/pprof. Setting it
	// implies TraceSpans and a default SLO (if none was given) so the
	// endpoints have substance. The server stops on Close.
	AdminAddr string
}

// Server is the framework's concurrent query-serving engine: submissions
// from any number of goroutines are deduplicated through a single-flight
// plan/estimate cache, ranked by Weighted Resource Demand into an SWRD
// admission queue, and dispatched onto a pool of cluster simulators.
// See internal/serve for the pipeline; Server adds the facade's trained
// models, catalog fingerprinting, and wall-clock timeouts.
type Server struct {
	eng     *serve.Engine
	opts    ServerOptions
	learner *Learner
	spans   *SpanStore
	slo     *SLOTracker
	admin   *adminhttp.Server
}

// NewServer starts a serving engine over the framework's estimator and
// any trained models (Train/TrainDefault before NewServer to get WRD
// admission ranking and drift accounting; untrained frameworks serve
// FIFO). The engine shares the framework's catalog and models, which are
// read-only after construction, so the framework remains usable
// concurrently.
func (f *Framework) NewServer(opts ServerOptions) (*Server, error) {
	name := opts.Scheduler
	if name == "" {
		name = SchedulerSWRD
	}
	pol, err := schedulerByName(name)
	if err != nil {
		return nil, err
	}
	lr := opts.Learner
	if lr == nil && opts.OnlineLearning {
		lr = f.NewLearner(LearnerConfig{})
	}
	// The admin server implies tracing and a default SLO so its /spans
	// and /slo endpoints have substance, and needs a metrics registry
	// even when the framework runs unobserved.
	ob := f.Obs
	var spans *SpanStore
	if opts.TraceSpans || opts.AdminAddr != "" {
		spans = obs.NewSpanStore(opts.SpanCapacity)
	}
	sloCfg := opts.SLO
	if sloCfg == nil && opts.AdminAddr != "" {
		sloCfg = &SLOConfig{}
	}
	var slo *SLOTracker
	if sloCfg != nil {
		cfg := *sloCfg
		if cfg.Name == "" {
			cfg.Name = name
		}
		slo = obs.NewSLOTracker(cfg)
	}
	if ob == nil && opts.AdminAddr != "" {
		ob = obs.New(nil)
	}
	cfg := serve.Config{
		Schemas:            f.Schemas,
		Estimator:          f.Estimator,
		CatalogFingerprint: f.statsFingerprint(),
		TaskModel:          f.TaskTime,
		JobModel:           f.JobTime,
		Cluster:            opts.Cluster,
		Scheduler:          pol,
		Workers:            opts.Workers,
		MaxRetries:         opts.MaxRetries,
		CacheSize:          opts.CacheSize,
		QueueCap:           opts.QueueCap,
		Observer:           ob,
		Spans:              spans,
		SLO:                slo,
	}
	// Config.Learner is an interface; assigning a nil *Learner directly
	// would produce a typed non-nil interface and turn learning "on".
	if lr != nil {
		cfg.Learner = lr
	}
	eng, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{eng: eng, opts: opts, learner: lr, spans: spans, slo: slo}
	if opts.AdminAddr != "" {
		cfg := adminhttp.Config{
			Spans:     spans,
			SLO:       slo,
			StatsJSON: func() ([]byte, error) { return json.MarshalIndent(eng.Stats(), "", "  ") },
		}
		if ob != nil {
			cfg.Metrics, cfg.Drift = ob.Metrics, ob.Drift
		}
		adm, err := adminhttp.Start(opts.AdminAddr, cfg)
		if err != nil {
			_ = eng.Close() //lint:allow saqpvet/errdrop Close never fails; the listen error is the one to surface
			return nil, err
		}
		s.admin = adm
	}
	return s, nil
}

// Learner returns the online model-lifecycle registry this server
// serves from and feeds back into, or nil when online learning is off.
func (s *Server) Learner() *Learner { return s.learner }

// Submit admits one HiveQL query for serving and returns a ticket whose
// Wait delivers the result. ctx governs the submission end to end: cancel
// it and the query is skipped if still queued, aborted if running. seed
// drives the query's hidden ground-truth cost model — a fixed (sql, seed)
// pair simulates identically on every run.
func (s *Server) Submit(ctx context.Context, sql string, seed uint64) (*Ticket, error) {
	if s.opts.QueryTimeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, s.opts.QueryTimeout)
		t, err := s.eng.Submit(tctx, sql, seed)
		if err != nil {
			cancel()
			return nil, err
		}
		go func() {
			<-t.Done()
			cancel()
		}()
		return t, nil
	}
	return s.eng.Submit(ctx, sql, seed)
}

// Stats snapshots the engine's counters.
func (s *Server) Stats() ServeStats { return s.eng.Stats() }

// Spans returns the request-scoped span store, or nil when tracing is
// off (no TraceSpans option and no admin server).
func (s *Server) Spans() *SpanStore { return s.spans }

// SLO returns the latency-objective tracker, or nil when none is
// configured.
func (s *Server) SLO() *SLOTracker { return s.slo }

// AdminURL returns the admin server's base URL, or "" when no admin
// server is running.
func (s *Server) AdminURL() string {
	if s.admin == nil {
		return ""
	}
	return s.admin.URL()
}

// adminShutdownTimeout bounds how long Close waits for in-flight admin
// requests before tearing the connections down.
const adminShutdownTimeout = 5 * time.Second

// Close stops admissions and drains gracefully: queued and in-flight
// queries complete, the worker pool exits, and the admin server (if
// any) shuts down after its in-flight requests finish.
func (s *Server) Close() error {
	err := s.eng.Close()
	if s.admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), adminShutdownTimeout) //lint:allow saqpvet/ctxleak Close is the facade boundary; the shutdown deadline has no caller context to inherit
		defer cancel()
		if aerr := s.admin.Shutdown(ctx); err == nil {
			err = aerr
		}
		s.admin = nil
	}
	return err
}
