package saqp

import (
	"context"
	"time"

	"saqp/internal/serve"
)

// Serving-layer re-exports, so callers stay on the facade.
type (
	// Ticket is a pending Server submission; see Server.Submit.
	Ticket = serve.Ticket
	// ServeResult is one served query's outcome.
	ServeResult = serve.Result
	// ServeStats snapshots a Server's counters.
	ServeStats = serve.Stats
)

// ErrServerClosed is returned by Submit after Close has begun.
var ErrServerClosed = serve.ErrClosed

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity.
var ErrQueueFull = serve.ErrQueueFull

// ServerOptions configures a Server. The zero value serves with SWRD
// admission on the paper's default cluster.
type ServerOptions struct {
	// Workers is the simulator pool size. Default 4.
	Workers int
	// CacheSize bounds the plan/estimate cache entry count. Default 256.
	CacheSize int
	// QueueCap bounds the admission queue (ErrQueueFull beyond it).
	// 0 means unbounded.
	QueueCap int
	// Cluster sizes each pool simulator; the zero value means the
	// paper's 9-node default.
	Cluster ClusterConfig
	// Scheduler names the slot policy each pool simulator runs — one of
	// SchedulerNames(). Empty means SchedulerSWRD.
	Scheduler string
	// MaxRetries is how many times a query abandoned at the task attempt
	// cap is re-run (on a re-salted fault plan) before its
	// *TaskFailedError is delivered through Ticket.Wait. Only meaningful
	// when Cluster.Faults is set. Default 0: fail on first abandonment.
	MaxRetries int
	// QueryTimeout, when positive, bounds each submission's wall-clock
	// lifetime: Submit's context is wrapped with this deadline, so a
	// stuck query is canceled rather than holding a pool worker.
	QueryTimeout time.Duration
	// OnlineLearning enables the model-lifecycle subsystem: the server
	// builds a Learner seeded from the framework's trained models (or
	// cold, if untrained), serves predictions from its champion, and
	// feeds every cleanly completed query's observed times back into it.
	OnlineLearning bool
	// Learner overrides the registry used when online learning is on;
	// nil builds one via Framework.NewLearner with defaults. Sharing one
	// Learner across servers pools their feedback.
	Learner *Learner
}

// Server is the framework's concurrent query-serving engine: submissions
// from any number of goroutines are deduplicated through a single-flight
// plan/estimate cache, ranked by Weighted Resource Demand into an SWRD
// admission queue, and dispatched onto a pool of cluster simulators.
// See internal/serve for the pipeline; Server adds the facade's trained
// models, catalog fingerprinting, and wall-clock timeouts.
type Server struct {
	eng     *serve.Engine
	opts    ServerOptions
	learner *Learner
}

// NewServer starts a serving engine over the framework's estimator and
// any trained models (Train/TrainDefault before NewServer to get WRD
// admission ranking and drift accounting; untrained frameworks serve
// FIFO). The engine shares the framework's catalog and models, which are
// read-only after construction, so the framework remains usable
// concurrently.
func (f *Framework) NewServer(opts ServerOptions) (*Server, error) {
	name := opts.Scheduler
	if name == "" {
		name = SchedulerSWRD
	}
	pol, err := schedulerByName(name)
	if err != nil {
		return nil, err
	}
	lr := opts.Learner
	if lr == nil && opts.OnlineLearning {
		lr = f.NewLearner(LearnerConfig{})
	}
	eng, err := serve.New(serve.Config{
		Schemas:            f.Schemas,
		Estimator:          f.Estimator,
		CatalogFingerprint: f.Catalog.Fingerprint(),
		TaskModel:          f.TaskTime,
		JobModel:           f.JobTime,
		Cluster:            opts.Cluster,
		Learner:            lr,
		Scheduler:          pol,
		Workers:            opts.Workers,
		MaxRetries:         opts.MaxRetries,
		CacheSize:          opts.CacheSize,
		QueueCap:           opts.QueueCap,
		Observer:           f.Obs,
	})
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng, opts: opts, learner: lr}, nil
}

// Learner returns the online model-lifecycle registry this server
// serves from and feeds back into, or nil when online learning is off.
func (s *Server) Learner() *Learner { return s.learner }

// Submit admits one HiveQL query for serving and returns a ticket whose
// Wait delivers the result. ctx governs the submission end to end: cancel
// it and the query is skipped if still queued, aborted if running. seed
// drives the query's hidden ground-truth cost model — a fixed (sql, seed)
// pair simulates identically on every run.
func (s *Server) Submit(ctx context.Context, sql string, seed uint64) (*Ticket, error) {
	if s.opts.QueryTimeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, s.opts.QueryTimeout)
		t, err := s.eng.Submit(tctx, sql, seed)
		if err != nil {
			cancel()
			return nil, err
		}
		go func() {
			<-t.Done()
			cancel()
		}()
		return t, nil
	}
	return s.eng.Submit(ctx, sql, seed)
}

// Stats snapshots the engine's counters.
func (s *Server) Stats() ServeStats { return s.eng.Stats() }

// Close stops admissions and drains gracefully: queued and in-flight
// queries complete, then the worker pool exits. Blocks until drained.
func (s *Server) Close() error { return s.eng.Close() }
