package saqp_test

import (
	"fmt"
	"log"

	"saqp"
)

// Example walks the core pipeline: compile a query to a MapReduce DAG,
// estimate its per-job selectivities (paper Section 3), and inspect the
// resource usage the scheduler would see.
func Example() {
	fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: 1})
	if err != nil {
		log.Fatal(err)
	}
	dag, err := fw.Compile(`SELECT c_mktsegment, count(*) FROM customer
		JOIN orders ON o_custkey = c_custkey GROUP BY c_mktsegment`)
	if err != nil {
		log.Fatal(err)
	}
	est, err := fw.Estimate(dag)
	if err != nil {
		log.Fatal(err)
	}
	for _, je := range est.Jobs {
		fmt.Printf("%s %s maps=%d reduces=%d\n",
			je.Job.ID, je.Job.Type, je.NumMaps, je.NumReduces)
	}
	// Output:
	// J1 Join maps=2 reduces=1
	// J2 Groupby maps=1 reduces=1
}

// ExampleFramework_Compile shows cross-layer semantics percolation: the
// compiled DAG retains operators and dependencies for the scheduler.
func ExampleFramework_Compile() {
	fw, _ := saqp.NewFramework(saqp.Options{})
	dag, err := fw.Compile(`SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`)
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range dag.Jobs {
		fmt.Println(j.Label())
	}
	// Output:
	// J1:Join(nation,supplier)
	// J2:Join(partsupp,J1)
	// J3:Groupby(J2)
}

// ExampleTPCHQuery loads a canonical query from the built-in catalog — Q14
// is the two-job "QA" query of the paper's motivating experiment.
func ExampleTPCHQuery() {
	q, err := saqp.TPCHQuery("q14")
	if err != nil {
		log.Fatal(err)
	}
	fw, _ := saqp.NewFramework(saqp.Options{})
	dag, err := fw.Compile(q.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(dag.Jobs), "jobs")
	// Output:
	// 2 jobs
}

// ExampleReproduceTable2 prints the paper's workload composition table.
func ExampleReproduceTable2() {
	for _, r := range saqp.ReproduceTable2() {
		fmt.Printf("bin %d (%s): bing=%d facebook=%d\n", r.Bin, r.InputDesc, r.Bing, r.Facebook)
	}
	// Output:
	// bin 1 (1-10 GB): bing=44 facebook=85
	// bin 2 (20 GB): bing=8 facebook=4
	// bin 3 (50 GB): bing=24 facebook=8
	// bin 4 (100 GB): bing=22 facebook=2
	// bin 5 (>100 GB): bing=2 facebook=1
}
