package saqp

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// clusterStressRun drives one full failover scenario: a 4-shard
// cluster under a deterministic plan that crashes shard 0's primary,
// with concurrent submitters racing a sentinel ticker that advances
// exactly ticks heartbeats. Returns the event log and the accounting
// needed for the exactly-once check.
func clusterStressRun(t *testing.T, fw *Framework, queries, submitters, ticks int) (events []byte, clientDone int64, st ServeStats) {
	t.Helper()
	plan := NewFaultPlan(FaultSpec{
		Seed: 11, Nodes: 1, HorizonSec: 40, CrashProb: 1, CrashDowntimeSec: 15,
	})
	cs, err := fw.NewClusterServer(ClusterOptions{
		Shards:        4,
		Workers:       1,
		CacheSize:     16,
		FaultPlan:     plan,
		MissThreshold: 2,
		SentinelSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}

	names := TPCHNames()
	mix := make([]string, len(names))
	for i, n := range names {
		sql, err := TPCHSQL(n)
		if err != nil {
			t.Fatal(err)
		}
		mix[i] = sql
	}

	// The sentinel advances exactly `ticks` heartbeats, concurrently
	// with the submitters — the event log must come out identical across
	// runs regardless of how the two interleave.
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for i := 0; i < ticks; i++ {
			cs.Tick()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var done, errs int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < queries; i += submitters {
				sql := mix[i%len(mix)]
				p, err := cs.Submit(ctx, sql, uint64(i))
				if err != nil {
					atomic.AddInt64(&errs, 1)
					continue
				}
				if _, err := p.Wait(ctx); err != nil {
					atomic.AddInt64(&errs, 1)
					continue
				}
				atomic.AddInt64(&done, 1)
			}
		}(w)
	}
	wg.Wait()
	tickWG.Wait()
	if errs != 0 {
		t.Fatalf("%d submissions errored during failover", errs)
	}
	events = cs.EventsJSON()
	st = cs.Stats()
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	return events, atomic.LoadInt64(&done), st
}

// TestShardClusterFailoverStress crashes one of four shards mid-run
// while concurrent submitters drive the cluster, and checks the
// tentpole's two contracts: every accepted query completes exactly
// once (client waits == engine completions, nothing lost), and two
// same-seed runs produce byte-identical failover event logs even
// though query traffic races the sentinel.
func TestShardClusterFailoverStress(t *testing.T) {
	fw, err := NewFramework(Options{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		queries    = 160
		submitters = 8
		ticks      = 80
	)
	eventsA, doneA, stA := clusterStressRun(t, fw, queries, submitters, ticks)
	eventsB, doneB, stB := clusterStressRun(t, fw, queries, submitters, ticks)

	// Exactly-once: every client-observed completion is an engine
	// completion and vice versa, with nothing lost to the crash.
	for run, chk := range []struct {
		done int64
		st   ServeStats
	}{{doneA, stA}, {doneB, stB}} {
		if chk.done != int64(queries) {
			t.Fatalf("run %d: %d/%d client completions", run, chk.done, queries)
		}
		if uint64(chk.done) != chk.st.Completed || chk.st.Submitted != chk.st.Completed {
			t.Fatalf("run %d: completion accounting mismatch: client=%d submitted=%d completed=%d",
				run, chk.done, chk.st.Submitted, chk.st.Completed)
		}
		if chk.st.Errors != 0 || chk.st.Canceled != 0 {
			t.Fatalf("run %d: engine errors=%d canceled=%d", run, chk.st.Errors, chk.st.Canceled)
		}
	}

	// The plan must actually have produced a failover, or the test
	// proves nothing.
	if !bytes.Contains(eventsA, []byte(`"kind":"failover"`)) {
		t.Fatalf("no failover in event log:\n%s", eventsA)
	}
	if doneB != doneA {
		t.Fatalf("replays completed different counts: %d vs %d", doneA, doneB)
	}

	// Deterministic replay: the failover history is a pure function of
	// (plan, sentinel config, tick count) — byte-identical across runs.
	if !bytes.Equal(eventsA, eventsB) {
		t.Fatalf("same-seed failover event logs diverged:\n--- run A ---\n%s--- run B ---\n%s", eventsA, eventsB)
	}
}
