package saqp

import (
	"context"
	"errors"
	"fmt"

	"saqp/internal/learn"
	"saqp/internal/net"
	"saqp/internal/net/proto"
	"saqp/internal/serve"
	"saqp/internal/shardserve"
)

// Sharded-serving re-exports, so callers stay on the facade.
type (
	// ClusterRole names one instance of a shard (primary or replica).
	ClusterRole = shardserve.Role
	// ClusterEvent is one sentinel state transition in the failover log.
	ClusterEvent = shardserve.Event
	// ClusterStatus is a point-in-time coordinator snapshot.
	ClusterStatus = shardserve.Status
	// ClusterRouteInfo is one query's slot/shard routing decision.
	ClusterRouteInfo = shardserve.RouteInfo
	// ClusterPending is one accepted cluster submission awaiting
	// completion.
	ClusterPending = shardserve.Pending
	// NetClusterClient is the redirect-following cluster wire client;
	// see DialNetCluster.
	NetClusterClient = net.ClusterClient
	// NetClusterConfig configures a NetClusterClient.
	NetClusterConfig = net.ClusterClientConfig
	// NetClusterTicket names one wire submission and its admitting
	// instance.
	NetClusterTicket = net.ClusterTicket
	// NetMovedError is a -MOVED cluster redirect decoded from the wire.
	NetMovedError = net.MovedError
)

// Cluster event kinds, re-exported for event-log consumers.
const (
	// ClusterEventCrash marks a fault-plan window taking a primary down.
	ClusterEventCrash = shardserve.EventCrash
	// ClusterEventRejoin marks a crashed instance returning as standby.
	ClusterEventRejoin = shardserve.EventRejoin
	// ClusterEventVote marks one sentinel voting a shard down.
	ClusterEventVote = shardserve.EventVote
	// ClusterEventRecover marks a sentinel retracting its vote.
	ClusterEventRecover = shardserve.EventRecover
	// ClusterEventFailover marks a quorum promoting a replica.
	ClusterEventFailover = shardserve.EventFailover
)

// Cluster role values.
const (
	// ClusterPrimary serves a shard's slots until failover.
	ClusterPrimary = shardserve.RolePrimary
	// ClusterReplica is the standby the sentinel quorum promotes.
	ClusterReplica = shardserve.RoleReplica
)

// DialNetCluster connects a redirect-following wire client to a
// sharded cluster.
func DialNetCluster(cfg NetClusterConfig) (*NetClusterClient, error) {
	return net.DialCluster(cfg)
}

// AsNetMoved unwraps a -MOVED redirect from a wire error.
func AsNetMoved(err error) (*NetMovedError, bool) { return net.AsMoved(err) }

// ClusterOptions configures a ClusterServer.
type ClusterOptions struct {
	// Shards is the number of primary/replica engine pairs. Default 4.
	Shards int
	// Slots sizes the hash-slot space. Default shardserve.DefaultSlots.
	Slots int
	// Workers is each engine's simulator pool size. Default 1, so an
	// n-shard cluster uses n-fold the single-server worker parallelism.
	Workers int
	// CacheSize bounds each engine's plan/estimate cache. Default 64.
	CacheSize int
	// QueueCap bounds each engine's admission queue. 0 means unbounded.
	QueueCap int
	// Cluster sizes each engine's pool simulators; the zero value means
	// the paper's 9-node default.
	Cluster ClusterConfig
	// Scheduler names the slot policy; empty means SchedulerSWRD.
	Scheduler string
	// Listen starts one TCP frontend per instance (primary and replica),
	// each on an ephemeral port, serving the cluster wire protocol with
	// -MOVED redirects and the CLUSTER verb.
	Listen bool
	// Advertise, when set, pins the addresses instances announce in
	// -MOVED redirects and CLUSTER output instead of their actual listen
	// addresses, in shard-major primary-then-replica order (2*Shards
	// entries). Golden transcripts use this to stay byte-stable across
	// ephemeral ports; pair it with NetClusterConfig.Resolve on the
	// client side.
	Advertise []string
	// Sentinels is the sentinel count. Default 3.
	Sentinels int
	// Quorum is the down-votes needed to fail over. Default majority.
	Quorum int
	// HeartbeatSec is the simulated seconds per Tick. Default 1.
	HeartbeatSec float64
	// MissThreshold is the consecutive missed heartbeats before one
	// sentinel votes a shard down. Default 3.
	MissThreshold int
	// FaultPlan supplies crash windows: plan node i takes down shard
	// i's primary. Nil means no crashes.
	FaultPlan *FaultPlan
	// SentinelSeed jitters the sentinels' heartbeat phases. Default 1.
	SentinelSeed uint64
}

// ClusterServer is the facade's sharded serving cluster: Shards
// primary/replica engine pairs behind a fingerprint-routing
// coordinator, a replicated online-learning champion, and a
// tick-driven sentinel failover loop. See internal/shardserve for the
// coordinator and docs/CLUSTER.md for the protocol.
type ClusterServer struct {
	f        *Framework
	cluster  *shardserve.Cluster
	registry *Learner
	opts     ClusterOptions
	nets     []*NetServer // shard-major, primary then replica; nil entries when !Listen
}

// clusterEngineBackend adapts a serve.Engine to the coordinator's
// Backend seam.
type clusterEngineBackend struct{ eng *serve.Engine }

// Submit admits one query on the wrapped engine.
func (b clusterEngineBackend) Submit(ctx context.Context, sql string, seed uint64) (shardserve.Pending, error) {
	t, err := b.eng.Submit(ctx, sql, seed)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Stats snapshots the wrapped engine's counters.
func (b clusterEngineBackend) Stats() ServeStats { return b.eng.Stats() }

// Close drains the wrapped engine.
func (b clusterEngineBackend) Close() error { return b.eng.Close() }

// clusterNetBackend adapts one instance's view of the coordinator to
// the TCP frontend's Backend seam: submissions route through the
// coordinator (so a frontend whose instance just failed over parks and
// completes on the promotion), stats are the instance's own engine.
type clusterNetBackend struct {
	c     *shardserve.Cluster
	shard int
	role  ClusterRole
}

// Submit admits one query on the instance's shard via the coordinator.
func (b clusterNetBackend) Submit(ctx context.Context, sql string, seed uint64) (net.Pending, error) {
	p, err := b.c.SubmitShard(ctx, b.shard, sql, seed)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Stats snapshots the instance's engine counters.
func (b clusterNetBackend) Stats() ServeStats { return b.c.InstanceStats(b.shard, b.role) }

// NewClusterServer builds and (optionally) exposes a sharded serving
// cluster over the framework's estimator and trained models. Every
// instance gets its own engine and its own model replica of one shared
// coordinator Learner, so feedback from any shard trains one champion
// that Tick fans back out to all of them.
func (f *Framework) NewClusterServer(opts ClusterOptions) (*ClusterServer, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 64
	}
	if len(opts.Advertise) > 0 && len(opts.Advertise) != 2*opts.Shards {
		return nil, fmt.Errorf("saqp: ClusterOptions.Advertise needs %d entries (2 per shard), got %d",
			2*opts.Shards, len(opts.Advertise))
	}
	name := opts.Scheduler
	if name == "" {
		name = SchedulerSWRD
	}
	pol, err := schedulerByName(name)
	if err != nil {
		return nil, err
	}
	registry := f.NewLearner(LearnerConfig{})

	specs := make([]shardserve.ShardSpec, opts.Shards)
	engines := make([]*serve.Engine, 0, 2*opts.Shards)
	closeEngines := func() {
		for _, eng := range engines {
			_ = eng.Close() //lint:allow saqpvet/errdrop construction failed; the original error is the one to surface
		}
	}
	for shard := 0; shard < opts.Shards; shard++ {
		var insts [2]shardserve.Instance
		for role := 0; role < 2; role++ {
			rep := learn.NewReplica(registry, f.Obs)
			eng, err := serve.New(serve.Config{
				Schemas:            f.Schemas,
				Estimator:          f.Estimator,
				CatalogFingerprint: f.statsFingerprint(),
				TaskModel:          f.TaskTime,
				JobModel:           f.JobTime,
				Cluster:            opts.Cluster,
				Scheduler:          pol,
				Workers:            opts.Workers,
				CacheSize:          opts.CacheSize,
				QueueCap:           opts.QueueCap,
				Observer:           f.Obs,
				Learner:            rep,
			})
			if err != nil {
				closeEngines()
				return nil, err
			}
			engines = append(engines, eng)
			insts[role] = shardserve.Instance{Backend: clusterEngineBackend{eng: eng}, Model: rep}
		}
		specs[shard] = shardserve.ShardSpec{Primary: insts[0], Replica: insts[1]}
	}

	cluster, err := shardserve.NewCluster(shardserve.Config{
		Shards:             specs,
		Slots:              opts.Slots,
		CatalogFingerprint: f.statsFingerprint(),
		Registry:           registry,
		Observer:           f.Obs,
		Sentinel: shardserve.SentinelConfig{
			Sentinels:     opts.Sentinels,
			Quorum:        opts.Quorum,
			HeartbeatSec:  opts.HeartbeatSec,
			MissThreshold: opts.MissThreshold,
			Plan:          opts.FaultPlan,
			Seed:          opts.SentinelSeed,
		},
	})
	if err != nil {
		closeEngines()
		return nil, err
	}

	cs := &ClusterServer{f: f, cluster: cluster, registry: registry, opts: opts}
	if !opts.Listen {
		return cs, nil
	}
	cs.nets = make([]*NetServer, 2*opts.Shards)
	for shard := 0; shard < opts.Shards; shard++ {
		for role := ClusterPrimary; role <= ClusterReplica; role++ {
			idx := 2*shard + int(role)
			srv, err := net.Start(net.Config{
				Addr:        "127.0.0.1:0",
				Backend:     clusterNetBackend{c: cluster, shard: shard, role: role},
				Limits:      proto.DefaultLimits(),
				Explain:     cs.explainFor(shard, role),
				MetricsText: f.metricsText,
				Route:       cs.routeFor(shard, role),
				ClusterInfo: cluster.Info,
				Observer:    f.Obs,
			})
			if err != nil {
				_ = cs.Close() //lint:allow saqpvet/errdrop construction failed; the listen error is the one to surface
				return nil, err
			}
			cs.nets[idx] = srv
			addr := srv.Addr()
			if len(opts.Advertise) > 0 {
				addr = opts.Advertise[idx]
			}
			cluster.SetAddr(shard, role, addr)
		}
	}
	return cs, nil
}

// routeFor builds one instance's cluster routing gate: a query is
// local exactly when this instance is the active owner of its slot.
func (cs *ClusterServer) routeFor(shard int, role ClusterRole) func(sql string) (int, string, bool, error) {
	return func(sql string) (int, string, bool, error) {
		ri, err := cs.cluster.Route(sql)
		if err != nil {
			return 0, "", false, err
		}
		local := ri.Shard == shard && cs.cluster.ActiveRole(shard) == role
		return ri.Slot, ri.Addr, local, nil
	}
}

// explainFor builds one instance's EXPLAIN: the framework's plan
// description plus the executing shard's attribution line (shard id,
// role, and the model version this instance serves predictions from).
func (cs *ClusterServer) explainFor(shard int, role ClusterRole) func(sql string) ([]string, error) {
	return func(sql string) ([]string, error) {
		lines, err := cs.f.explainLines(sql)
		if err != nil {
			return nil, err
		}
		st := cs.cluster.Status()
		version := 0
		for _, is := range st.Instances {
			if is.Shard == shard && is.Role == role {
				version = is.ModelVersion
			}
		}
		return append(lines, fmt.Sprintf("shard=%d role=%s model_version=%d", shard, role, version)), nil
	}
}

// Submit routes one query by its semantics-aware fingerprint and
// admits it on the owning shard's active instance.
func (cs *ClusterServer) Submit(ctx context.Context, sql string, seed uint64) (ClusterPending, error) {
	return cs.cluster.Submit(ctx, sql, seed)
}

// Route resolves a query's slot, owning shard, and active address
// without admitting it.
func (cs *ClusterServer) Route(sql string) (ClusterRouteInfo, error) { return cs.cluster.Route(sql) }

// Tick advances the sentinel loop one heartbeat (crash actuation,
// heartbeats, quorum failover, model fan-out) and returns the events
// it produced. Callers own the cadence: tests tick deterministically,
// cmd/saqp ticks on a wall-clock ticker.
func (cs *ClusterServer) Tick() []ClusterEvent { return cs.cluster.Tick() }

// Events returns the full failover event log since construction.
func (cs *ClusterServer) Events() []ClusterEvent { return cs.cluster.Events() }

// EventsJSON renders the event log as newline-delimited JSON —
// byte-identical across same-seed replays.
func (cs *ClusterServer) EventsJSON() []byte { return cs.cluster.EventsJSON() }

// Status snapshots the coordinator's topology and replication state.
func (cs *ClusterServer) Status() ClusterStatus { return cs.cluster.Status() }

// Info renders the CLUSTER verb's line-oriented topology snapshot.
func (cs *ClusterServer) Info() []string { return cs.cluster.Info() }

// Stats aggregates every instance's engine counters.
func (cs *ClusterServer) Stats() ServeStats { return cs.cluster.Stats() }

// Learner returns the coordinator's model-lifecycle registry — the
// replication leader every instance's replica syncs from.
func (cs *ClusterServer) Learner() *Learner { return cs.registry }

// NetAddr returns one instance's actual TCP listen address, or ""
// when the cluster is not listening.
func (cs *ClusterServer) NetAddr(shard int, role ClusterRole) string {
	if cs.nets == nil {
		return ""
	}
	srv := cs.nets[2*shard+int(role)]
	if srv == nil {
		return ""
	}
	return srv.Addr()
}

// Close shuts the frontends down, then drains every engine.
func (cs *ClusterServer) Close() error {
	var err error
	for _, srv := range cs.nets {
		if srv != nil {
			err = errors.Join(err, srv.Close())
		}
	}
	return errors.Join(err, cs.cluster.Close())
}
