package saqp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"saqp/internal/net/proto"
)

// clusterStep is one request in a multi-connection cluster session:
// which client connection sends it and the inline command text.
type clusterStep struct {
	conn int
	cmd  string
}

// TestGoldenClusterTranscript pins the cluster wire protocol as one
// byte-stable conversation across two client connections, one per
// shard primary: a misrouted SUBMIT answered with -MOVED, the
// re-SUBMIT on the owner returning a shard-prefixed ticket, WAIT for
// the full result frame, EXPLAIN's shard/role/model attribution on
// both the owner (plan) and a non-owner (-MOVED), and the CLUSTER
// topology dump. Advertised addresses are fixed strings so redirect
// targets in the transcript never depend on ephemeral ports.
func TestGoldenClusterTranscript(t *testing.T) {
	fw, err := NewFramework(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.TrainDefault(); err != nil {
		t.Fatal(err)
	}
	cs, err := fw.NewClusterServer(ClusterOptions{
		Shards:    2,
		Workers:   1,
		CacheSize: 8,
		Listen:    true,
		Advertise: []string{
			"10.0.0.1:7000", "10.0.0.1:7001",
			"10.0.0.2:7000", "10.0.0.2:7001",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	// Routing is a pure function of normalized SQL and the catalog
	// fingerprint, so which TPC-H query lands on which shard is fixed;
	// pick one owned by each shard rather than hard-coding names.
	var homeSQL, awaySQL string
	for _, name := range TPCHNames() {
		raw, err := TPCHSQL(name)
		if err != nil {
			t.Fatal(err)
		}
		sql := strings.Join(strings.Fields(raw), " ")
		ri, err := cs.Route(sql)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case ri.Shard == 0 && homeSQL == "":
			homeSQL = sql
		case ri.Shard == 1 && awaySQL == "":
			awaySQL = sql
		}
	}
	if homeSQL == "" || awaySQL == "" {
		t.Fatal("TPC-H mix does not cover both shards")
	}

	steps := []clusterStep{
		{0, "CLUSTER"},
		{0, "SUBMIT " + awaySQL}, // wrong shard: answered with -MOVED
		{1, "SUBMIT " + awaySQL}, // owner accepts, shard-prefixed ticket
		{1, "WAIT s1-q000001"},
		{0, "SUBMIT " + homeSQL}, // local on shard 0, no redirect
		{0, "WAIT s0-q000001"},
		{1, "EXPLAIN " + awaySQL}, // owner: plan plus shard attribution
		{0, "EXPLAIN " + awaySQL}, // non-owner: same -MOVED as SUBMIT
		{0, "QUIT"},
		{1, "QUIT"},
	}
	got := replayClusterTranscript(t, cs, steps)

	path := filepath.Join(netTranscriptDir, "net_transcript_cluster.txt")
	if os.Getenv("SAQP_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden transcript (run with SAQP_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("cluster wire transcript drifted from %s:\n%s\nregenerate deliberately with SAQP_UPDATE_GOLDEN=1 if the protocol change is intended",
			path, transcriptDiff(string(want), got))
	}
}

// replayClusterTranscript drives the scripted session over one raw
// TCP connection per shard primary and renders it in the transcript
// format, with `C<i>: `/`S<i>: ` labels identifying the connection.
func replayClusterTranscript(t *testing.T, cs *ClusterServer, steps []clusterStep) string {
	t.Helper()
	type wire struct {
		conn  net.Conn
		reply *bytes.Buffer
		br    *bufio.Reader
	}
	conns := make([]*wire, 2)
	for i := range conns {
		conn, err := net.DialTimeout("tcp", cs.NetAddr(i, ClusterPrimary), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
			t.Fatal(err)
		}
		reply := &bytes.Buffer{}
		conns[i] = &wire{
			conn:  conn,
			reply: reply,
			br:    bufio.NewReaderSize(io.TeeReader(conn, reply), 1<<16),
		}
	}
	lim := proto.DefaultLimits()

	var out strings.Builder
	out.WriteString("# Golden cluster wire transcript — do not edit by hand.\n")
	out.WriteString("# C0/S0 talk to the shard-0 primary, C1/S1 to the shard-1 primary.\n")
	out.WriteString("# Regenerate: SAQP_UPDATE_GOLDEN=1 go test -run TestGoldenClusterTranscript .\n")
	for _, st := range steps {
		w := conns[st.conn]
		if _, err := io.WriteString(w.conn, st.cmd+"\r\n"); err != nil {
			t.Fatalf("writing %q: %v", st.cmd, err)
		}
		w.reply.Reset()
		if _, err := proto.ReadValue(w.br, lim); err != nil {
			t.Fatalf("reading reply to %q: %v", st.cmd, err)
		}
		fmt.Fprintf(&out, "C%d: %s\n", st.conn, st.cmd)
		frame := w.reply.String()
		if !strings.HasSuffix(frame, "\r\n") {
			t.Fatalf("reply to %q does not end in CRLF: %q", st.cmd, frame)
		}
		for _, line := range strings.Split(strings.TrimSuffix(frame, "\r\n"), "\r\n") {
			fmt.Fprintf(&out, "S%d: %s\n", st.conn, line)
		}
	}
	return out.String()
}
