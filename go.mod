module saqp

go 1.22
