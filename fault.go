package saqp

import (
	"saqp/internal/cluster"
	"saqp/internal/fault"
)

// Fault-injection re-exports, so callers stay on the facade.
type (
	// FaultSpec parameterises a deterministic fault plan; see
	// internal/fault.Spec for every knob and its default.
	FaultSpec = fault.Spec
	// FaultPlan is a fully expanded, immutable fault schedule. Assign one
	// to ClusterConfig.Faults (nil injects nothing).
	FaultPlan = fault.Plan
	// TaskFailedError reports a query abandoned because one task
	// exhausted its attempt cap under fault injection; unwrap it from
	// Ticket.Wait errors with errors.As.
	TaskFailedError = cluster.TaskFailedError
	// FaultStats tallies a simulator run's fault-recovery activity.
	FaultStats = cluster.FaultStats
)

// NewFaultPlan expands a FaultSpec into an immutable schedule of node
// crashes and slowdown windows. The expansion is pure in the spec: equal
// specs yield byte-identical plans, so a seeded faulted run replays
// exactly.
func NewFaultPlan(spec FaultSpec) *FaultPlan { return fault.NewPlan(spec) }

// DefaultFaultSpec is the paper-scale default fault load for a 9-node
// cluster: occasional node crashes, slowdown windows, and a small
// per-attempt transient failure probability.
func DefaultFaultSpec(seed uint64) FaultSpec { return fault.DefaultSpec(seed) }

// DefaultClusterConfig returns the paper-scale simulated cluster (9 nodes,
// Hadoop 1.x slot counts). Set its Faults field to inject a fault plan
// before passing it to SimulateQueryConfig or ServerOptions.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }
