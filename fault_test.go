package saqp_test

import (
	"context"
	"errors"
	"testing"

	"saqp"
)

// TestServerFaultFailureTyped drives the facade end to end under a doomed
// fault plan: every task attempt fails with a one-attempt cap, so the
// submission must surface a *saqp.TaskFailedError through Ticket.Wait.
func TestServerFaultFailureTyped(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := saqp.ServerOptions{Workers: 1}
	opts.Cluster.Faults = saqp.NewFaultPlan(saqp.FaultSpec{
		Seed: 1, TaskFailProb: 1, MaxAttempts: 1,
	})
	srv, err := fw.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sql, err := saqp.TPCHSQL("q6")
	if err != nil {
		t.Fatal(err)
	}
	tk, err := srv.Submit(context.Background(), sql, 7)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err = tk.Wait(context.Background()); err == nil {
		t.Fatal("doomed submission should fail")
	}
	var tfe *saqp.TaskFailedError
	if !errors.As(err, &tfe) {
		t.Fatalf("Wait error = %v, want wrapped *saqp.TaskFailedError", err)
	}
	if tfe.Attempts != 1 || tfe.Query == "" || tfe.Job == "" {
		t.Fatalf("typed error fields: %+v", *tfe)
	}
	if st := srv.Stats(); st.FaultFailures != 1 {
		t.Fatalf("server stats after fault failure: %+v", st)
	}
}

// TestDefaultFaultPlanRecovers replays one TPC-H query under the default
// CI fault plan with retries enabled: the serving layer must complete it.
func TestDefaultFaultPlanRecovers(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := saqp.ServerOptions{Workers: 1, MaxRetries: 3}
	opts.Cluster.Faults = saqp.NewFaultPlan(saqp.DefaultFaultSpec(11))
	srv, err := fw.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sql, err := saqp.TPCHSQL("q1")
	if err != nil {
		t.Fatal(err)
	}
	tk, err := srv.Submit(context.Background(), sql, 3)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("default plan with retries should recover, got %v", err)
	}
	if res.SimSec <= 0 || res.Attempts < 1 {
		t.Fatalf("result: %+v", res)
	}
}

// TestFaultReplayDefaultPlanCompletes backs the CI completion gate: the
// TPC-H replay under the default fault plan recovers every query, inflates
// the response distribution, and reproduces byte-identically per seed.
func TestFaultReplayDefaultPlanCompletes(t *testing.T) {
	run := func() *saqp.FaultReplayResult {
		cfg := saqp.DefaultExperimentConfig()
		r, err := saqp.ReproduceFaultReplay(nil, cfg,
			saqp.NewFaultPlan(saqp.DefaultFaultSpec(2018)), "", 2, 20)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := run()
	if r.CompletionRate != 1 || r.Failed != 0 {
		t.Fatalf("default plan must recover everything: %+v", r)
	}
	if r.Faults.TaskFailures == 0 && r.Faults.NodeCrashes == 0 {
		t.Fatalf("default plan injected nothing: %+v", r.Faults)
	}
	if r.P99Inflation < 1 {
		t.Fatalf("faults should not speed the tail up: %+v", r)
	}
	if r2 := run(); *r2 != *r {
		t.Fatalf("fault replay not reproducible:\n%+v\n%+v", r, r2)
	}
}
