package saqp_test

import (
	"math"
	"testing"

	"saqp"
	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/obs"
	"saqp/internal/selectivity"
)

// TestSketchTierRegression is the facade-level contract for the
// probabilistic statistics tier: over the full golden TPC-H query set,
// estimates priced from HLL/CMS sketches must track the exact collected
// catalog within tight bounds — per-job IS and FS within 0.02 absolute,
// per-job output cardinality within 10% relative — so switching the
// estimator tier can never silently reshape a plan.
func TestSketchTierRegression(t *testing.T) {
	cat := catalog.CollectAll(dataset.TPCH(), 0.01, 2018, catalog.DefaultBuckets)
	exact := saqp.NewFrameworkFromCatalog(cat, saqp.Options{})
	sk := saqp.NewFrameworkFromCatalog(cat, saqp.Options{
		Sizing: selectivity.Config{Stats: selectivity.StatsSketch},
	})

	sketchCols := 0
	for _, name := range saqp.TPCHNames() {
		sql, err := saqp.TPCHSQL(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := exact.Compile(sql)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		qeE, err := exact.Estimate(d)
		if err != nil {
			t.Fatalf("%s: exact estimate: %v", name, err)
		}
		qeS, err := sk.Estimate(d)
		if err != nil {
			t.Fatalf("%s: sketch estimate: %v", name, err)
		}
		if qeE.StatsTier != selectivity.StatsExact {
			t.Fatalf("%s: exact estimate attributed to tier %q", name, qeE.StatsTier)
		}
		if qeS.StatsTier != selectivity.StatsSketch {
			t.Fatalf("%s: sketch estimate attributed to tier %q", name, qeS.StatsTier)
		}
		sketchCols += qeS.SketchCols
		if len(qeS.Jobs) != len(qeE.Jobs) {
			t.Fatalf("%s: job count diverged: sketch %d vs exact %d", name, len(qeS.Jobs), len(qeE.Jobs))
		}
		for i, je := range qeS.Jobs {
			ex := qeE.Jobs[i]
			if d := math.Abs(je.IS - ex.IS); d > 0.02 {
				t.Errorf("%s job %s: IS diverged by %.4f (sketch %.4f exact %.4f)",
					name, je.Job.ID, d, je.IS, ex.IS)
			}
			if d := math.Abs(je.FS - ex.FS); d > 0.02 {
				t.Errorf("%s job %s: FS diverged by %.4f (sketch %.4f exact %.4f)",
					name, je.Job.ID, d, je.FS, ex.FS)
			}
			if ex.OutRows > 0 {
				if rel := math.Abs(je.OutRows-ex.OutRows) / ex.OutRows; rel > 0.10 {
					t.Errorf("%s job %s: output cardinality diverged by %.1f%% (sketch %.0f exact %.0f)",
						name, je.Job.ID, 100*rel, je.OutRows, ex.OutRows)
				}
			}
		}
	}
	if sketchCols == 0 {
		t.Fatal("sketch tier never substituted an HLL distinct count across the TPC-H set")
	}
}

// TestSketchTierObservability pins the facade attribution: a framework
// priced from the sketch tier bumps saqp_sketch_estimates_total on every
// Estimate, and an exact-tier framework never does.
func TestSketchTierObservability(t *testing.T) {
	cat := catalog.CollectAll(dataset.TPCH(), 0.01, 2018, catalog.DefaultBuckets)
	reg := obs.NewRegistry()
	f := saqp.NewFrameworkFromCatalog(cat, saqp.Options{
		Sizing:   selectivity.Config{Stats: selectivity.StatsSketch},
		Observer: &obs.Observer{Metrics: reg},
	})
	sql, err := saqp.TPCHSQL("q3")
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Compile(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Estimate(d); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters[obs.MSketchEstimates]; got != 1 {
		t.Fatalf("saqp_sketch_estimates_total = %v, want 1", got)
	}

	// The tier is part of the cache identity: two frameworks over the
	// same catalog but different tiers must not share plan-cache keys.
	exact := saqp.NewFrameworkFromCatalog(cat, saqp.Options{})
	if a, b := f.Catalog.Fingerprint(), exact.Catalog.Fingerprint(); a != b {
		t.Fatalf("catalog fingerprints diverged: %q vs %q", a, b)
	}
}
