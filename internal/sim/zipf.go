package sim

import "math"

// Zipf generates Zipf-distributed integers in [0, n) where the probability
// of value k is proportional to 1/(v+k)^s. It uses rejection-inversion
// sampling (W. Hörmann & G. Derflinger, "Rejection-inversion to generate
// variates from monotone discrete distributions", ACM TOMACS 1996), the same
// method as math/rand.Zipf but self-contained and driven by this package's
// deterministic RNG.
//
// Zipf distributions model the key skew found in production analytic
// workloads: a few hot keys carry most tuples, which stresses the paper's
// histogram-based selectivity estimation (Section 3).
type Zipf struct {
	rng  *RNG
	imax float64
	v    float64
	q    float64
	s    float64

	oneMinusQ    float64
	oneMinusQInv float64
	hxm          float64
	hx0MinusHxm  float64
}

// NewZipf returns a Zipf generator over [0, n) with exponent s > 1 and
// shift v >= 1. It panics on invalid parameters.
func NewZipf(rng *RNG, s, v float64, n uint64) *Zipf {
	if s <= 1 || v < 1 || n == 0 {
		panic("sim: NewZipf requires s > 1, v >= 1, n > 0")
	}
	z := &Zipf{rng: rng, imax: float64(n - 1), v: v, q: s}
	z.oneMinusQ = 1 - z.q
	z.oneMinusQInv = 1 / z.oneMinusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0MinusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hInv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1)))
	return z
}

// h is the integral of the dominating density: ((v+x)^(1-q)) / (1-q).
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusQ*math.Log(z.v+x)) * z.oneMinusQInv
}

// hInv is the inverse of h.
func (z *Zipf) hInv(x float64) float64 {
	return math.Exp(z.oneMinusQInv*math.Log(z.oneMinusQ*x)) - z.v
}

// Uint64 returns a Zipf-distributed value in [0, n).
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0MinusHxm
		x := z.hInv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}

// ClusteredKeys generates n keys drawn from [0, cardinality) that arrive in
// runs: identical keys are adjacent in the output, modelling tables whose
// group-by keys are physically clustered on disk — the "clustered" case of
// Eq. 2 in the paper. Run lengths average around n/cardinality.
func ClusteredKeys(rng *RNG, n int, cardinality int64) []int64 {
	if cardinality <= 0 {
		panic("sim: ClusteredKeys requires cardinality > 0")
	}
	keys := make([]int64, 0, n)
	avgRun := maxInt(1, 2*n/int(minInt64(cardinality, int64(maxInt(n, 1)))))
	for len(keys) < n {
		k := rng.Int63n(cardinality)
		run := 1 + rng.Intn(avgRun)
		for j := 0; j < run && len(keys) < n; j++ {
			keys = append(keys, k)
		}
	}
	return keys
}

// RandomKeys generates n keys uniformly from [0, cardinality) with no
// clustering — the "randomly distributed" case of Eq. 2.
func RandomKeys(rng *RNG, n int, cardinality int64) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(cardinality)
	}
	return keys
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
