package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("independent streams collided %d/100 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork()
	c2 := parent.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nUnbiased(t *testing.T) {
	// Chi-squared style sanity check across 10 cells.
	r := New(6)
	const cells, n = 10, 100000
	counts := make([]int, cells)
	for i := 0; i < n; i++ {
		counts[r.Int63n(cells)]++
	}
	expect := float64(n) / cells
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("cell %d count %d deviates from %v", i, c, expect)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(0.5) // mean 2
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestPoissonSmallMean(t *testing.T) {
	r := New(10)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(3.5)
	}
	if mean := float64(sum) / n; math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("poisson mean = %v, want ~3.5", mean)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := New(11)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(200)
	}
	if mean := float64(sum) / n; math.Abs(mean-200) > 1 {
		t.Fatalf("poisson mean = %v, want ~200", mean)
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := New(1).Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements, sum = %d", sum)
	}
}

func TestRangeProperty(t *testing.T) {
	r := New(14)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(15)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", p)
	}
}
