// Package sim provides deterministic pseudo-random number generation and
// the statistical distributions used throughout the reproduction: uniform,
// normal, exponential, Poisson and Zipf. Every experiment in this repository
// is seeded, so results are bit-for-bit reproducible across runs.
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14). It is tiny,
// passes BigCrush when used as a 64-bit stream, and — unlike math/rand's
// global source — can be freely copied, forked and embedded in value types,
// which the discrete-event simulator relies on.
package sim
