package sim

import "math"

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child generator from the current state.
// The parent advances by one step, so successive Fork calls yield
// differently-seeded children.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with n <= 0")
	}
	return int(r.Int63n(int64(n)))
}

// Int63n returns a uniform pseudo-random int64 in [0, n). It panics if n <= 0.
// Modulo bias is removed by rejection sampling.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with n <= 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform pseudo-random float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(Normal(mu, sigma)); used for multiplicative noise
// in the ground-truth cost model.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed float64 with the given
// rate parameter lambda (mean 1/lambda). It panics if lambda <= 0.
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("sim: Exponential called with lambda <= 0")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Poisson returns a Poisson-distributed integer with the given mean.
// Knuth's multiplication method is used for small means; for large means a
// normal approximation with continuity correction keeps it O(1).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}
