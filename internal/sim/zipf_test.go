package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(New(1), 1.2, 1, 1000)
	for i := 0; i < 10000; i++ {
		if v := z.Uint64(); v >= 1000 {
			t.Fatalf("Zipf value %d out of [0,1000)", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Higher exponent concentrates more mass on small values.
	countZero := func(s float64) int {
		z := NewZipf(New(2), s, 1, 10000)
		zeros := 0
		for i := 0; i < 20000; i++ {
			if z.Uint64() == 0 {
				zeros++
			}
		}
		return zeros
	}
	mild, steep := countZero(1.1), countZero(2.5)
	if steep <= mild {
		t.Fatalf("steeper Zipf not more skewed: s=1.1 zeros=%d, s=2.5 zeros=%d", mild, steep)
	}
}

func TestZipfMonotoneFrequencies(t *testing.T) {
	z := NewZipf(New(3), 1.5, 1, 64)
	counts := make([]int, 64)
	for i := 0; i < 300000; i++ {
		counts[z.Uint64()]++
	}
	// Rank-frequency must be broadly decreasing; compare rank 0 vs 4 vs 16.
	if !(counts[0] > counts[4] && counts[4] > counts[16]) {
		t.Fatalf("frequencies not decreasing: c0=%d c4=%d c16=%d", counts[0], counts[4], counts[16])
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct {
		s, v float64
		n    uint64
	}{{1.0, 1, 10}, {2, 0.5, 10}, {2, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%v,%v,%d) did not panic", tc.s, tc.v, tc.n)
				}
			}()
			NewZipf(New(1), tc.s, tc.v, tc.n)
		}()
	}
}

func TestClusteredKeysProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint16, cardRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		card := int64(cardRaw)%500 + 1
		keys := ClusteredKeys(New(seed), n, card)
		if len(keys) != n {
			return false
		}
		for _, k := range keys {
			if k < 0 || k >= card {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredKeysAreClustered(t *testing.T) {
	// With clustering, the number of adjacent-equal pairs greatly exceeds
	// that of a random arrangement with the same cardinality.
	const n, card = 10000, 100
	adj := func(keys []int64) int {
		runs := 0
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				runs++
			}
		}
		return runs
	}
	clustered := adj(ClusteredKeys(New(4), n, card))
	random := adj(RandomKeys(New(4), n, card))
	if clustered <= 3*random {
		t.Fatalf("clustered keys not clustered: clustered-adj=%d random-adj=%d", clustered, random)
	}
}

func TestRandomKeysUniform(t *testing.T) {
	const n, card = 100000, 10
	keys := RandomKeys(New(5), n, card)
	counts := make([]int, card)
	for _, k := range keys {
		counts[k]++
	}
	expect := float64(n) / card
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("key %d count %d deviates from %v", i, c, expect)
		}
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(New(1), 1.3, 1, 1<<20)
	for i := 0; i < b.N; i++ {
		_ = z.Uint64()
	}
}
