package serve

import (
	"fmt"
	"testing"
)

// BenchmarkMicroServeCacheHit measures the steady-state path of every
// repeated submission: a warm plan-cache lookup. It is part of the
// bench-micro gate (cmd/benchrunner -micro), which holds allocs/op at
// the committed baseline — the hit path is //saqp:hotpath and must stay
// allocation-free.
func BenchmarkMicroServeCacheHit(b *testing.B) {
	c := newPlanCache(256)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("select l_orderkey from lineitem where l_quantity < %d\x00fp/exact", i)
		e, owner, _ := c.lookup(keys[i])
		if !owner {
			b.Fatal("fresh key already cached")
		}
		c.publish(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.mu.Lock()
		if _, ok := c.hit(keys[i&63]); !ok {
			c.mu.Unlock()
			b.Fatal("warm key missed")
		}
		c.mu.Unlock()
	}
}
