package serve

import (
	"bytes"
	"context"
	"testing"

	"saqp/internal/learn"
	"saqp/internal/workload"
)

// learnReplay runs one serialized serving replay — Workers=1, one query
// in flight at a time — of `rounds` passes over the canonical TPC-H set
// through a cold learner registry, and returns the registry plus the
// sequence of ModelVersion values the results carried.
func learnReplay(t *testing.T, rounds int) (*learn.Registry, []int) {
	t.Helper()
	reg := learn.NewRegistry(learn.Config{Window: 25, MinSamples: 12, PromoteMargin: 0.02})
	cfg := config(t)
	cfg.Workers = 1
	cfg.Learner = reg
	e := newEngine(t, cfg)

	var versions []int
	names := workload.TPCHNames()
	seed := uint64(0)
	for round := 0; round < rounds; round++ {
		for _, name := range names {
			sql, err := workload.TPCHSQL(name)
			if err != nil {
				t.Fatal(err)
			}
			seed++
			tk, err := e.Submit(context.Background(), sql, seed)
			if err != nil {
				t.Fatalf("Submit %s: %v", name, err)
			}
			res, err := tk.Wait(context.Background())
			if err != nil {
				t.Fatalf("Wait %s: %v", name, err)
			}
			versions = append(versions, res.ModelVersion)
		}
	}
	return reg, versions
}

// TestLearnReplayDeterministic pins the subsystem's end-to-end
// determinism promise: two serialized replays of the same seeded
// submission stream produce byte-identical promotion histories and
// identical version trajectories.
func TestLearnReplayDeterministic(t *testing.T) {
	reg1, v1 := learnReplay(t, 4)
	reg2, v2 := learnReplay(t, 4)

	j1, err := reg1.PromotionsJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := reg2.PromotionsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("promotion histories diverged across replays:\n%s\nvs\n%s", j1, j2)
	}
	if len(v1) != len(v2) {
		t.Fatalf("result counts differ: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("ModelVersion diverged at submission %d: %d vs %d", i, v1[i], v2[i])
		}
	}
	if reg1.JobSamples() != reg2.JobSamples() || reg1.TaskSamples() != reg2.TaskSamples() {
		t.Fatalf("sample counts diverged: jobs %d/%d, tasks %d/%d",
			reg1.JobSamples(), reg2.JobSamples(), reg1.TaskSamples(), reg2.TaskSamples())
	}

	// The replay is long enough that feedback bootstraps a champion, and
	// later submissions must see the bumped version.
	if reg1.Version() < 1 {
		t.Fatalf("registry version = %d, want ≥1 after %d submissions", reg1.Version(), len(v1))
	}
	if v1[0] != 0 {
		t.Fatalf("first submission saw version %d, want 0 (cold registry)", v1[0])
	}
	if last := v1[len(v1)-1]; last < 1 {
		t.Fatalf("last submission saw version %d, want the promoted champion", last)
	}
}

// TestLearnerServesChampion checks the serving side of the loop: once a
// champion exists, its model (not the static config model) scores
// admission and drift, and results report its version.
func TestLearnerServesChampion(t *testing.T) {
	jm, tm := models(t)
	reg := learn.NewRegistry(learn.Config{Champion: jm, ChampionTasks: tm})
	cfg := config(t)
	cfg.Workers = 1
	cfg.Learner = reg
	e := newEngine(t, cfg)

	tk, err := e.Submit(context.Background(), q6, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelVersion != 1 {
		t.Fatalf("ModelVersion = %d, want 1 (seeded champion)", res.ModelVersion)
	}
	if res.PredictedSec <= 0 {
		t.Fatalf("champion-backed prediction should be positive, got %g", res.PredictedSec)
	}
	if reg.JobSamples() == 0 {
		t.Fatal("feedback should flow into the registry after a clean completion")
	}
}
