package serve

// admitHeap is the SWRD admission queue: a min-heap of tickets ordered
// by Weighted Resource Demand (paper Eq. 10), so freed pool workers
// always serve the cheapest admitted query first — Smallest-WRD-first at
// the serving layer, mirroring what the SWRD policy does for slots
// inside one cluster. Ties (including the untrained WRD=0 case, where
// every ticket ties) break by submission sequence, preserving FIFO
// fairness between equal queries.
type admitHeap []*Ticket

func (h admitHeap) Len() int { return len(h) }

func (h admitHeap) Less(i, j int) bool {
	if h[i].wrd != h[j].wrd {
		return h[i].wrd < h[j].wrd
	}
	return h[i].seq < h[j].seq
}

func (h admitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *admitHeap) Push(x any) { *h = append(*h, x.(*Ticket)) }

func (h *admitHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
