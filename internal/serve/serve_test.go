package serve

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/cluster"
	"saqp/internal/dataset"
	"saqp/internal/obs"
	"saqp/internal/predict"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/workload"
)

const q6 = `SELECT SUM(l_extendedprice) FROM lineitem
	WHERE l_shipdate BETWEEN 19940101 AND 19941231 AND l_discount BETWEEN 5 AND 7`

const q1 = `SELECT l_returnflag, SUM(l_quantity), SUM(l_extendedprice)
	FROM lineitem WHERE l_shipdate <= 19980902 GROUP BY l_returnflag`

var (
	estOnce sync.Once
	testEst *selectivity.Estimator
	testFP  string

	modelOnce sync.Once
	testJM    *predict.JobModel
	testTM    *predict.TaskModel
	modelErr  error
)

// estimator builds (once) a read-only estimator over the full synthetic
// catalog at SF 1, mirroring what the facade does.
func estimator(t *testing.T) (*selectivity.Estimator, string) {
	t.Helper()
	estOnce.Do(func() {
		var list []*dataset.Schema
		for _, s := range dataset.AllSchemas() {
			list = append(list, s)
		}
		cat := catalog.FromSchemas(list, 1, catalog.DefaultBuckets)
		testEst = selectivity.NewEstimator(cat, selectivity.Config{})
		testFP = cat.Fingerprint()
	})
	return testEst, testFP
}

// models trains (once) small job/task models so WRD admission ranking
// and drift recording have real coefficients.
func models(t *testing.T) (*predict.JobModel, *predict.TaskModel) {
	t.Helper()
	modelOnce.Do(func() {
		cfg := workload.DefaultCorpusConfig()
		cfg.NumQueries = 40
		c, err := workload.BuildCorpus(cfg)
		if err != nil {
			modelErr = err
			return
		}
		if testJM, err = predict.FitJobModel(c.JobSamples); err != nil {
			modelErr = err
			return
		}
		testTM, modelErr = predict.FitTaskModel(c.TaskSamples)
	})
	if modelErr != nil {
		t.Fatalf("training models: %v", modelErr)
	}
	return testJM, testTM
}

// config assembles a minimal valid Config; callers override fields.
func config(t *testing.T) Config {
	est, fp := estimator(t)
	return Config{
		Estimator:          est,
		CatalogFingerprint: fp,
		Scheduler:          sched.SWRD{},
		Workers:            2,
	}
}

func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestNewValidation(t *testing.T) {
	est, fp := estimator(t)
	if _, err := New(Config{Scheduler: sched.SWRD{}}); err == nil {
		t.Error("New without Estimator should fail")
	}
	if _, err := New(Config{Estimator: est, CatalogFingerprint: fp}); err == nil {
		t.Error("New without Scheduler should fail")
	}
}

func TestSubmitWait(t *testing.T) {
	e := newEngine(t, config(t))
	tk, err := e.Submit(context.Background(), q6, 7)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if tk.ID() == "" {
		t.Error("ticket should carry an id")
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Jobs == 0 || res.Maps == 0 {
		t.Errorf("result should describe an executed plan, got %+v", res)
	}
	if res.SimSec <= 0 {
		t.Errorf("simulated response time should be positive, got %g", res.SimSec)
	}
	if res.CacheHit {
		t.Error("first submission of a query cannot be a cache hit")
	}
	// Wait is idempotent from any goroutine.
	res2, err := tk.Wait(context.Background())
	if err != nil || res2 != res {
		t.Errorf("repeated Wait should agree: %+v vs %+v (err %v)", res2, res, err)
	}
	st := e.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.CacheMisses != 1 {
		t.Errorf("stats after one submission: %+v", st)
	}
}

func TestParseErrorCounted(t *testing.T) {
	e := newEngine(t, config(t))
	if _, err := e.Submit(context.Background(), "SELECT FROM WHERE", 1); err == nil {
		t.Fatal("garbage SQL should fail")
	}
	if st := e.Stats(); st.Errors != 1 || st.Submitted != 0 {
		t.Errorf("parse failure should count one error, no submission: %+v", st)
	}
}

func TestResolveErrorNotSticky(t *testing.T) {
	e := newEngine(t, config(t))
	const bad = `SELECT no_such_col FROM lineitem`
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(context.Background(), bad, 1); err == nil {
			t.Fatalf("submission %d of unresolvable query should fail", i)
		}
	}
	st := e.Stats()
	// A failed computation is dropped from the cache, so the retry is a
	// fresh miss, not a cached error.
	if st.CacheMisses != 2 || st.CacheHits != 0 {
		t.Errorf("errors must not be sticky in the cache: %+v", st)
	}
	if st.CacheEntries != 0 {
		t.Errorf("failed entries should be dropped, have %d", st.CacheEntries)
	}
}

func TestSingleFlight(t *testing.T) {
	e := newEngine(t, config(t))
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			<-start
			tk, err := e.Submit(context.Background(), q6, seed)
			if err != nil {
				errs <- err
				return
			}
			if _, err := tk.Wait(context.Background()); err != nil {
				errs <- err
			}
		}(uint64(i))
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("submission failed: %v", err)
	}
	st := e.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("%d identical submissions should cost exactly one compile, got %d misses", n, st.CacheMisses)
	}
	if st.CacheHits != n-1 {
		t.Errorf("expected %d cache hits, got %d", n-1, st.CacheHits)
	}
	if st.Completed != n {
		t.Errorf("every submission must complete: %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	cfg := config(t)
	cfg.CacheSize = 1
	e := newEngine(t, cfg)
	for _, sql := range []string{q6, q1, q6} {
		tk, err := e.Submit(context.Background(), sql, 1)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	st := e.Stats()
	// q1 evicts q6, and the second q6 misses again and evicts q1.
	if st.CacheEvictions != 2 || st.CacheMisses != 3 || st.CacheHits != 0 {
		t.Errorf("capacity-1 cache over q6,q1,q6: %+v", st)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache should hold exactly its capacity, have %d", st.CacheEntries)
	}
}

func TestCanceledBeforeRun(t *testing.T) {
	e := newEngine(t, config(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err := e.Submit(ctx, q6, 1)
	if err != nil {
		// The pre-canceled context may already abort the submission at
		// the cache-wait select; both outcomes are correct, but if a
		// ticket was issued it must resolve to context.Canceled.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		return
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submission must report context.Canceled, got %v", err)
	}
	if st := e.Stats(); st.Canceled != 1 {
		t.Errorf("cancellation should be counted: %+v", st)
	}
}

func TestWaitContextAbandons(t *testing.T) {
	e := newEngine(t, config(t))
	tk, err := e.Submit(context.Background(), q6, 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with canceled context must return its error, got %v", err)
	}
	// The query itself is unaffected.
	if res, err := tk.Wait(context.Background()); err != nil || res.Jobs == 0 {
		t.Fatalf("query should still complete: %+v, %v", res, err)
	}
}

func TestQueueFullAndClosed(t *testing.T) {
	// Build an engine with no running workers so the queue fills
	// deterministically.
	cfg := config(t)
	cfg.QueueCap = 1
	cfg.Schemas = dataset.AllSchemas()
	e := &Engine{cfg: cfg, cache: newPlanCache(4)}
	e.cond = sync.NewCond(&e.mu)
	e.pred = cluster.ConstantPredictor(1)

	if _, err := e.Submit(context.Background(), q6, 1); err != nil {
		t.Fatalf("first submission should be admitted: %v", err)
	}
	if _, err := e.Submit(context.Background(), q1, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if st := e.Stats(); st.Rejected != 1 || st.QueueDepth != 1 {
		t.Errorf("rejection accounting: %+v", st)
	}

	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	if _, err := e.Submit(context.Background(), q6, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestCloseDrains(t *testing.T) {
	cfg := config(t)
	cfg.Workers = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		sql := q6
		if i%2 == 1 {
			sql = q1
		}
		tk, err := e.Submit(context.Background(), sql, uint64(i))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %d not completed after Close returned", i)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Errorf("ticket %d errored during drain: %v", i, err)
		}
	}
	if st := e.Stats(); st.Completed != 8 || st.Inflight != 0 || st.QueueDepth != 0 {
		t.Errorf("drained engine stats: %+v", st)
	}
	// Close is idempotent.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestAdmitHeapOrder(t *testing.T) {
	var h admitHeap
	for i, wrd := range []float64{5, 1, 3, 1, 0} {
		heap.Push(&h, &Ticket{seq: uint64(i + 1), wrd: wrd})
	}
	var gotWRD []float64
	var gotSeq []uint64
	for h.Len() > 0 {
		tk := heap.Pop(&h).(*Ticket)
		gotWRD = append(gotWRD, tk.wrd)
		gotSeq = append(gotSeq, tk.seq)
	}
	wantWRD := []float64{0, 1, 1, 3, 5}
	wantSeq := []uint64{5, 2, 4, 3, 1} // WRD first, then FIFO among ties
	for i := range wantWRD {
		if gotWRD[i] != wantWRD[i] || gotSeq[i] != wantSeq[i] {
			t.Fatalf("pop order: wrd=%v seq=%v, want wrd=%v seq=%v",
				gotWRD, gotSeq, wantWRD, wantSeq)
		}
	}
}

func TestWRDRankingWithModels(t *testing.T) {
	jm, tm := models(t)
	cfg := config(t)
	cfg.TaskModel = tm
	cfg.JobModel = jm
	e := newEngine(t, cfg)
	tk, err := e.Submit(context.Background(), q6, 3)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if tk.WRD() <= 0 {
		t.Errorf("trained engine should rank by positive WRD, got %g", tk.WRD())
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.PredictedSec <= 0 {
		t.Errorf("trained engine should predict standalone seconds, got %g", res.PredictedSec)
	}
}

func TestFingerprintIsolatesCatalogs(t *testing.T) {
	est, fp := estimator(t)
	_ = est
	cfgA := config(t)
	cfgB := config(t)
	cfgB.CatalogFingerprint = fp + "-other"
	a := newEngine(t, cfgA)
	b := newEngine(t, cfgB)
	for _, e := range []*Engine{a, b} {
		tk, err := e.Submit(context.Background(), q6, 1)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	// Each engine keyed under its own fingerprint: both miss.
	if sa, sb := a.Stats(), b.Stats(); sa.CacheMisses != 1 || sb.CacheMisses != 1 {
		t.Errorf("distinct fingerprints must not share entries: %+v / %+v", sa, sb)
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("no lookups → hit rate 0")
	}
	s.CacheHits, s.CacheMisses = 3, 1
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %g, want 0.75", got)
	}
}

// TestDeterministicSnapshots is the serving layer's reproducibility
// contract: identical seeds submitted in serialized order reproduce
// byte-identical metrics and drift snapshots across engines.
func TestDeterministicSnapshots(t *testing.T) {
	jm, tm := models(t)
	run := func() ([]byte, []byte) {
		o := obs.New(nil)
		cfg := config(t)
		cfg.TaskModel = tm
		cfg.JobModel = jm
		cfg.Observer = o
		cfg.Workers = 1 // serialized dispatch
		e := newEngine(t, cfg)
		for i, sql := range []string{q6, q1, q6, q1, q6} {
			tk, err := e.Submit(context.Background(), sql, uint64(1000+i%2))
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if _, err := tk.Wait(context.Background()); err != nil {
				t.Fatalf("Wait: %v", err)
			}
		}
		e.Close()
		m, err := o.Metrics.SnapshotJSON()
		if err != nil {
			t.Fatalf("metrics snapshot: %v", err)
		}
		d, err := o.Drift.SnapshotJSON()
		if err != nil {
			t.Fatalf("drift snapshot: %v", err)
		}
		return m, d
	}
	m1, d1 := run()
	m2, d2 := run()
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics snapshots differ:\n%s\n---\n%s", m1, m2)
	}
	if !bytes.Equal(d1, d2) {
		t.Errorf("drift snapshots differ:\n%s\n---\n%s", d1, d2)
	}
	if !strings.Contains(string(m1), obs.MServeCompletions) {
		t.Errorf("snapshot should include serve metrics:\n%s", m1)
	}
}
