package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"saqp/internal/cluster"
	"saqp/internal/dataset"
	"saqp/internal/learn"
	"saqp/internal/obs"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/query"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/trace"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("serve: engine closed")

// ErrQueueFull is returned by Submit when the admission queue is at its
// configured capacity.
var ErrQueueFull = errors.New("serve: admission queue full")

// Config assembles a serving engine. Estimator and Scheduler are
// required; everything else defaults sensibly.
type Config struct {
	// Schemas resolve submitted queries; nil defaults to
	// dataset.AllSchemas().
	Schemas map[string]*dataset.Schema
	// Estimator performs selectivity estimation (required). It must be
	// read-only after construction — the pool shares it without locks.
	Estimator *selectivity.Estimator
	// CatalogFingerprint identifies the statistics the estimator reads
	// (catalog.Fingerprint). It is folded into every cache key, so an
	// engine rebuilt over fresh statistics never serves stale estimates.
	CatalogFingerprint string
	// TaskModel supplies the WRD admission ranking and per-task
	// predicted durations. Nil degrades gracefully: FIFO admission
	// (every WRD is 0) and a constant task-time baseline.
	TaskModel *predict.TaskModel
	// JobModel, together with Observer, records per-job prediction
	// drift for every served query (the live Tables 3–5).
	JobModel *predict.JobModel
	// Cluster sizes each pool simulator; the zero value means the
	// paper's 9-node default. Setting Cluster.Faults replays every
	// admitted query under that deterministic fault plan; the engine
	// re-rolls Cluster.FaultSalt per submission seed and retry attempt so
	// repeated runs of the same query see independent failure draws.
	Cluster cluster.Config
	// MaxRetries is how many times a fault-failed query (one that
	// exhausted a task attempt cap) is re-run on a fresh pool simulator
	// before its *cluster.TaskFailedError is delivered through
	// Ticket.Wait. Only meaningful with Cluster.Faults set; default 0.
	MaxRetries int
	// Learner, when set, closes the observe→learn→predict loop: admission
	// scoring (WRD ranking, predicted seconds), per-task predictions and
	// drift accounting come from the source's current champion models —
	// falling back to the static TaskModel/JobModel while the source is
	// cold — and every cleanly completed (unfaulted) query's observed job
	// and task times are fed back as challenger training samples. A
	// *learn.Registry learns locally; a *learn.Replica serves a sharded
	// coordinator's champion and forwards feedback upstream. Callers must
	// leave this nil (not a typed-nil pointer) to disable learning.
	Learner learn.Source
	// Scheduler is the slot policy each pool simulator runs (required).
	// The policies in internal/sched are stateless values, safe to
	// share across the pool.
	Scheduler cluster.Scheduler
	// Workers is the simulator pool size. Default 4.
	Workers int
	// CacheSize bounds the plan/estimate LRU entry count. Default 256.
	CacheSize int
	// QueueCap bounds the admission queue; submissions beyond it fail
	// with ErrQueueFull. 0 means unbounded.
	QueueCap int
	// Observer receives serve metrics and prediction drift; nil
	// disables instrumentation at zero cost.
	Observer *obs.Observer
	// Spans, when set, records one request-scoped span tree per admitted
	// submission: cache lookup, SWRD admission, every simulator attempt
	// (jobs, tasks, faults, speculative losers, scheduler decisions) and
	// the learn feedback, all on one deterministic virtual timeline. Nil
	// disables tracing at zero cost — pool simulators then run with no
	// observer attached, exactly as before.
	Spans *obs.SpanStore
	// SLO, when set, classifies every delivered completion against a
	// latency objective and evaluates multi-window burn rates in virtual
	// time (see obs.SLOTracker). Cancellations are not classified — the
	// client walked away, the engine didn't miss.
	SLO *obs.SLOTracker
}

// Result is one served query's outcome.
type Result struct {
	// ID is the engine-assigned submission id ("q000042").
	ID string
	// SQL is the normalized query text the cache keyed on.
	SQL string
	// CacheHit reports whether compile+estimate came from the cache
	// (including joining another submission's in-flight computation).
	CacheHit bool
	// WRD is the query's Weighted Resource Demand (Eq. 10) at admission.
	WRD float64
	// PredictedSec is the model-predicted standalone response time
	// (0 when the engine has no task model).
	PredictedSec float64
	// SimSec is the simulated response time on the pool simulator.
	SimSec float64
	// Jobs, Maps and Reduces describe the executed plan.
	Jobs, Maps, Reduces int
	// Attempts counts simulator runs consumed (1 + fault retries).
	Attempts int
	// Faulted reports that injected faults perturbed the (final) run.
	Faulted bool
	// ModelVersion is the learner registry's champion version at
	// admission; 0 without online learning (or while the registry is
	// cold).
	ModelVersion int
}

// Ticket is a pending submission. Exactly one completion is delivered
// per ticket; Wait may be called from any goroutine, any number of
// times, and always agrees.
type Ticket struct {
	id   string
	seq  uint64
	seed uint64
	ctx  context.Context

	est      *selectivity.QueryEstimate
	sql      string
	wrd      float64
	predSec  float64
	version  int
	cacheHit bool
	span     *obs.QuerySpan // nil unless Config.Spans is set

	done chan struct{}
	res  Result
	err  error
}

// ID returns the engine-assigned submission id.
func (t *Ticket) ID() string { return t.id }

// WRD returns the Weighted Resource Demand the admission queue ranked
// this submission by.
func (t *Ticket) WRD() float64 { return t.wrd }

// Done returns a channel closed when the query completes (successfully
// or not).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the query completes or ctx is canceled. A ctx
// cancellation abandons only this Wait — the query itself is governed
// by the context passed to Submit.
func (t *Ticket) Wait(ctx context.Context) (Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Submitted uint64 // submissions accepted into the admission queue
	Completed uint64 // queries served to completion
	Canceled  uint64 // submissions abandoned by context cancellation
	Rejected  uint64 // submissions refused by a full queue
	Errors    uint64 // compile/estimate/simulation failures

	// Retries counts fault-failed queries re-run on a fresh simulator;
	// FaultFailures counts queries still failed after the retry budget
	// (each of those also counts once under Errors).
	Retries       uint64
	FaultFailures uint64

	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheEntries   int

	QueueDepth int // tickets awaiting a pool worker
	Inflight   int // tickets on pool simulators right now
	Workers    int

	// SpansStarted/SpansFinished count request-scoped span trees opened
	// at admission and retained at delivery (Config.Spans; finished lags
	// started by in-flight plus abandoned/canceled trees).
	SpansStarted  uint64
	SpansFinished uint64

	// SLO burn-rate state at snapshot time (Config.SLO): the fast/slow
	// window burn rates, whether the alert is firing, and how many
	// fire/resolve transitions the deterministic alert log has recorded.
	SLOFastBurn float64
	SLOSlowBurn float64
	SLOFiring   bool
	SLOAlerts   int
}

// Add folds another engine's snapshot into s — the per-shard
// aggregation a cluster coordinator reports. Counters and occupancy
// gauges sum; the SLO burn-rate fields take the worst (highest-burn)
// engine's view, and the alert fires if any engine's does.
func (s *Stats) Add(o Stats) {
	s.Submitted += o.Submitted
	s.Completed += o.Completed
	s.Canceled += o.Canceled
	s.Rejected += o.Rejected
	s.Errors += o.Errors
	s.Retries += o.Retries
	s.FaultFailures += o.FaultFailures
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEvictions += o.CacheEvictions
	s.CacheEntries += o.CacheEntries
	s.QueueDepth += o.QueueDepth
	s.Inflight += o.Inflight
	s.Workers += o.Workers
	s.SpansStarted += o.SpansStarted
	s.SpansFinished += o.SpansFinished
	if o.SLOFastBurn > s.SLOFastBurn {
		s.SLOFastBurn = o.SLOFastBurn
	}
	if o.SLOSlowBurn > s.SLOSlowBurn {
		s.SLOSlowBurn = o.SLOSlowBurn
	}
	s.SLOFiring = s.SLOFiring || o.SLOFiring
	s.SLOAlerts += o.SLOAlerts
}

// HitRate returns the cache hit fraction, 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	n := s.CacheHits + s.CacheMisses
	if n == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(n)
}

// Engine is the concurrent query-serving engine. See the package
// comment for the pipeline.
type Engine struct {
	cfg   Config
	cache *planCache
	pred  cluster.TaskTimePredictor
	slots predict.Slots
	ov    predict.Overheads

	mu       sync.Mutex
	cond     *sync.Cond
	queue    admitHeap
	seq      uint64
	closed   bool
	inflight int
	st       Stats

	wg sync.WaitGroup
}

// New builds and starts an engine: the worker pool is live on return.
func New(cfg Config) (*Engine, error) {
	if cfg.Estimator == nil {
		return nil, errors.New("serve: Config.Estimator is required")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("serve: Config.Scheduler is required")
	}
	if cfg.Schemas == nil {
		cfg.Schemas = dataset.AllSchemas()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.Cluster.Nodes <= 0 {
		faults, salt := cfg.Cluster.Faults, cfg.Cluster.FaultSalt
		cfg.Cluster = cluster.DefaultConfig()
		cfg.Cluster.Faults, cfg.Cluster.FaultSalt = faults, salt
	}
	e := &Engine{cfg: cfg, cache: newPlanCache(cfg.CacheSize)}
	e.cond = sync.NewCond(&e.mu)
	e.pred = cluster.ConstantPredictor(1)
	if cfg.TaskModel != nil {
		e.pred = cfg.TaskModel
	}
	e.slots = predict.Slots{
		Map:    cfg.Cluster.Nodes * cfg.Cluster.MapSlotsPerNode,
		Reduce: cfg.Cluster.Nodes * cfg.Cluster.ReduceSlotsPerNode,
	}
	if e.slots.Map <= 0 || e.slots.Reduce <= 0 {
		e.slots = predict.DefaultSlots()
	}
	e.ov = predict.Overheads{
		SchedPerTaskSec: cfg.Cluster.SchedulingOverheadSec,
		JobInitSec:      cfg.Cluster.JobInitSec,
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// Submit normalizes and admits one query: parse, cached
// compile+estimate (single-flight), WRD ranking, enqueue. The returned
// ticket completes when a pool worker has served the query. ctx governs
// the whole submission — cancel it and the query is skipped if queued,
// aborted if running.
//
// seed drives the query's hidden ground-truth cost model, so a fixed
// (sql, seed) pair simulates identically regardless of pool scheduling.
func (e *Engine) Submit(ctx context.Context, sql string, seed uint64) (*Ticket, error) {
	if ctx == nil {
		// Normalize once at the API boundary so no downstream path has
		// to nil-check the ticket's context again.
		ctx = context.Background() //lint:allow saqpvet/ctxleak nil Submit ctx explicitly opts out of cancellation
	}
	o := e.cfg.Observer
	o.ServeSubmitted()
	q, err := query.Parse(sql)
	if err != nil {
		o.ServeError()
		e.count(func(s *Stats) { s.Errors++ })
		return nil, err
	}
	norm := q.String()
	ent, owner, evicted := e.cache.lookup(norm + "\x00" + e.cfg.CatalogFingerprint)
	o.ServeCacheLookup(!owner)
	for i := 0; i < evicted; i++ {
		o.ServeCacheEvicted()
	}
	if owner {
		e.compute(ent, q)
	} else {
		select {
		case <-ent.ready:
		case <-ctx.Done():
			o.ServeCanceled(e.inflightNow())
			e.count(func(s *Stats) { s.Canceled++ })
			return nil, ctx.Err()
		}
	}
	if ent.err != nil {
		o.ServeError()
		e.count(func(s *Stats) { s.Errors++ })
		return nil, ent.err
	}
	// Score admission with the learner's current champion when online
	// learning is on; the cached static scores remain the fallback while
	// the registry is cold.
	wrd, predSec, version := ent.wrd, ent.predSec, 0
	if L := e.cfg.Learner; L != nil {
		version = L.Version()
		if tm := L.TaskModel(); tm != nil {
			wrd = tm.WRD(ent.est)
			predSec = tm.PredictQuery(ent.est, e.slots, e.ov)
		}
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if e.cfg.QueueCap > 0 && len(e.queue) >= e.cfg.QueueCap {
		e.st.Rejected++
		e.mu.Unlock()
		o.ServeRejected()
		return nil, ErrQueueFull
	}
	e.seq++
	t := &Ticket{
		id:       fmt.Sprintf("q%06d", e.seq),
		seq:      e.seq,
		seed:     seed,
		ctx:      ctx,
		est:      ent.est,
		sql:      norm,
		wrd:      wrd,
		predSec:  predSec,
		version:  version,
		cacheHit: !owner,
		done:     make(chan struct{}),
	}
	// The root span opens before the ticket is visible to the pool (a
	// worker may read t.span the moment it is pushed).
	if st := e.cfg.Spans; st != nil {
		st.Begin()
		t.span = obs.BeginQuerySpan(
			obs.TraceID(norm, e.cfg.CatalogFingerprint, t.seq), t.id,
			obs.AttrStr("seed", strconv.FormatUint(seed, 10)),
			obs.AttrInt("model_version", version),
		)
		t.span.Event(obs.SpanKindCache, "plan-cache",
			obs.AttrBool("hit", t.cacheHit))
		t.span.Event(obs.SpanKindAdmission, "swrd-admission",
			obs.AttrFloat("wrd", wrd), obs.AttrFloat("pred_sec", predSec),
			obs.AttrInt("queue_depth", len(e.queue)+1))
	}
	heap.Push(&e.queue, t)
	e.st.Submitted++
	depth := len(e.queue)
	e.mu.Unlock()
	o.ServeAdmitted(t.wrd, depth)
	e.cond.Signal()
	return t, nil
}

// compute fills a cache entry the caller owns: resolve, compile,
// estimate, and score (WRD + predicted standalone seconds).
func (e *Engine) compute(ent *cacheEntry, q *query.Query) {
	defer e.cache.publish(ent)
	if err := query.Resolve(q, e.cfg.Schemas); err != nil {
		ent.err = err
		return
	}
	d, err := plan.Compile(q)
	if err != nil {
		ent.err = err
		return
	}
	est, err := e.cfg.Estimator.EstimateQuery(d)
	if err != nil {
		ent.err = err
		return
	}
	if est.StatsTier == selectivity.StatsSketch {
		e.cfg.Observer.SketchEstimate()
	}
	ent.dag, ent.est = d, est
	if tm := e.cfg.TaskModel; tm != nil {
		ent.wrd = tm.WRD(est)
		ent.predSec = tm.PredictQuery(est, e.slots, e.ov)
	}
}

// count applies a mutation to the stats under the engine lock.
func (e *Engine) count(f func(*Stats)) {
	e.mu.Lock()
	f(&e.st)
	e.mu.Unlock()
}

// inflightNow reads the in-flight count for observer gauges.
func (e *Engine) inflightNow() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inflight
}

// worker serves admitted tickets until the engine closes and drains.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		t := e.next()
		if t == nil {
			return
		}
		e.run(t)
	}
}

// next blocks for the smallest-WRD admitted ticket, or nil once the
// engine is closed and the queue drained.
func (e *Engine) next() *Ticket {
	e.mu.Lock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.queue) == 0 {
		e.mu.Unlock()
		return nil
	}
	t := heap.Pop(&e.queue).(*Ticket)
	e.inflight++
	depth, inflight := len(e.queue), e.inflight
	e.mu.Unlock()
	e.cfg.Observer.ServeDequeued(depth, inflight)
	return t
}

// run executes one ticket on a fresh pool simulator and delivers its
// completion. Under a fault plan a query whose task exhausted its attempt
// cap is retried up to MaxRetries times, each retry on a rebuilt query
// and a re-salted plan, before the typed error is delivered.
func (e *Engine) run(t *Ticket) {
	// Submit normalized the context, so t.ctx is never nil here.
	select {
	case <-t.ctx.Done():
		e.finish(t, Result{}, t.ctx.Err())
		return
	default:
	}
	ctx := t.ctx
	maxRetries := e.cfg.MaxRetries
	if e.cfg.Cluster.Faults == nil {
		maxRetries = 0
	}
	// Serve this query from the learner's champion models when online
	// learning is on and a champion exists; static models otherwise.
	pred, jm := e.pred, e.cfg.JobModel
	if L := e.cfg.Learner; L != nil {
		if tm := L.TaskModel(); tm != nil {
			pred = tm
		}
		if j := L.JobModel(); j != nil {
			jm = j
		}
	}
	for attempt := 0; ; attempt++ {
		cq := cluster.BuildQuery(t.id, t.est, trace.NewDefaultCostModel(t.seed), pred)
		scfg := e.cfg.Cluster
		if scfg.Faults != nil {
			// Decorrelate failure draws across submissions and retries
			// while keeping each (sql, seed, attempt) run reproducible.
			scfg.FaultSalt ^= t.seed ^ uint64(attempt)*0x9e3779b97f4a7c15
		}
		// With tracing on, each attempt runs under a spans-only observer:
		// its single-goroutine collector captures the attempt's jobs,
		// tasks, faults and scheduler decisions without touching the
		// shared metrics registry — the simulated schedule is identical
		// either way, only observation is added.
		pol := e.cfg.Scheduler
		var coll *obs.SpanCollector
		var runObs *obs.Observer
		if t.span != nil {
			coll = obs.NewSpanCollector()
			runObs = &obs.Observer{Spans: coll}
			pol = sched.Instrument(pol, runObs)
		}
		sim := cluster.New(scfg, pol)
		if runObs != nil {
			sim.SetObserver(runObs)
		}
		sim.Submit(cq, 0)
		if _, err := sim.RunContext(ctx); err != nil {
			e.finish(t, Result{}, err)
			return
		}
		if t.span != nil {
			dur := cq.ResponseTime()
			if dur < 0 {
				dur = coll.LastEventSec()
			}
			t.span.AddAttempt(coll, dur,
				obs.AttrBool("failed", cq.Failed()),
				obs.AttrBool("faulted", cq.Faulted))
		}
		if cq.Failed() {
			if attempt < maxRetries {
				e.count(func(s *Stats) { s.Retries++ })
				e.cfg.Observer.ServeRetried()
				continue
			}
			e.count(func(s *Stats) { s.FaultFailures++ })
			e.cfg.Observer.ServeFaultFailure()
			e.finish(t, Result{}, fmt.Errorf("serve: query %s failed after %d run(s): %w",
				t.id, attempt+1, cq.Err))
			return
		}
		if o := e.cfg.Observer; o != nil && o.Drift != nil && jm != nil {
			for ji, je := range t.est.Jobs {
				sj := cq.Jobs[ji]
				if sj.DoneTime <= sj.SubmitTime {
					continue
				}
				o.Drift.RecordJob(je.Job.Type.String(), jm.PredictJob(je),
					sj.DoneTime-sj.SubmitTime, cq.Faulted)
			}
		}
		if L := e.cfg.Learner; L != nil && !cq.Faulted {
			feedback(L, t.est, cq)
			if t.span != nil {
				t.span.Event(obs.SpanKindFeedback, "learn-feedback",
					obs.AttrInt("jobs", len(cq.Jobs)),
					obs.AttrInt("registry_version", L.Version()))
			}
		}
		res := Result{
			ID: t.id, SQL: t.sql, CacheHit: t.cacheHit,
			WRD: t.wrd, PredictedSec: t.predSec,
			SimSec: cq.ResponseTime(), Jobs: len(cq.Jobs),
			Attempts: attempt + 1, Faulted: cq.Faulted,
			ModelVersion: t.version,
		}
		for _, j := range cq.Jobs {
			res.Maps += len(j.Maps)
			res.Reduces += len(j.Reds)
		}
		e.finish(t, res, nil)
		return
	}
}

// learnTasksPerGroup caps how many task observations one task group
// feeds back per completed job. A group's tasks share features (volumes
// split evenly), so a bounded sample per group keeps feedback O(groups)
// without changing the fitted coefficients' expectation — the same
// rationale as the offline corpus's per-group sampling.
const learnTasksPerGroup = 8

// feedback feeds one cleanly completed query's observed job and task
// times into the online-learning source. Group walking mirrors
// cluster.BuildQuery's task construction order exactly — including the
// single synthesized group when an estimate carries none — so each
// group's features align with the tasks it produced.
func feedback(l learn.Source, est *selectivity.QueryEstimate, cq *cluster.Query) {
	for ji, je := range est.Jobs {
		sj := cq.Jobs[ji]
		if sec := sj.DoneTime - sj.SubmitTime; sec > 0 {
			l.ObserveJob(je.Job.Type, predict.JobFeatures(je), sec)
		}
		pf := je.PFactor()
		groups := je.MapGroups
		if len(groups) == 0 {
			nm := je.NumMaps
			if nm < 1 {
				nm = 1
			}
			groups = []selectivity.TaskGroup{{
				Count:    nm,
				InBytes:  je.InBytes / float64(nm),
				OutBytes: je.MedBytes / float64(nm),
			}}
		}
		idx := 0
		for _, g := range groups {
			for i := 0; i < g.Count && i < learnTasksPerGroup; i++ {
				if tk := sj.Maps[idx+i]; tk.EndTime > tk.StartTime {
					l.ObserveTask(je.Job.Type, false,
						predict.TaskFeatures(je.Job.Type, g.InBytes, g.OutBytes, pf),
						tk.EndTime-tk.StartTime)
				}
			}
			idx += g.Count
		}
		rgroups := je.ReduceGroups
		if len(rgroups) == 0 && je.NumReduces > 0 {
			nr := je.NumReduces
			rgroups = []selectivity.TaskGroup{{
				Count:    nr,
				InBytes:  je.MedBytes / float64(nr),
				OutBytes: je.OutBytes / float64(nr),
			}}
		}
		idx = 0
		for _, g := range rgroups {
			for i := 0; i < g.Count && i < learnTasksPerGroup; i++ {
				if tk := sj.Reds[idx+i]; tk.EndTime > tk.StartTime {
					l.ObserveTask(je.Job.Type, true,
						predict.TaskFeatures(je.Job.Type, g.InBytes, g.OutBytes, pf),
						tk.EndTime-tk.StartTime)
				}
			}
			idx += g.Count
		}
	}
}

// finish delivers a ticket's completion exactly once and updates
// counters per outcome. Completed and errored queries seal their span
// tree into the store and feed the SLO tracker; cancellations abandon
// the tree (it is incomplete by definition) and are not classified
// against the objective — the client walked away, the engine didn't
// miss.
func (e *Engine) finish(t *Ticket, res Result, err error) {
	t.res, t.err = res, err
	canceled := err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	traceID := ""
	if t.span != nil && !canceled {
		traceID = t.span.TraceID()
		if err == nil {
			e.cfg.Spans.Add(t.span.Finish(
				obs.AttrFloat("sim_sec", res.SimSec),
				obs.AttrInt("attempts", res.Attempts),
				obs.AttrBool("faulted", res.Faulted)))
		} else {
			e.cfg.Spans.Add(t.span.Finish(obs.AttrStr("error", err.Error())))
		}
	}
	if slo := e.cfg.SLO; slo != nil && !canceled {
		e.cfg.Observer.SLORecorded(slo.Record(res.SimSec, err != nil))
	}
	e.mu.Lock()
	e.inflight--
	inflight := e.inflight
	switch {
	case err == nil:
		e.st.Completed++
	case canceled:
		e.st.Canceled++
	default:
		e.st.Errors++
	}
	e.mu.Unlock()
	switch {
	case err == nil:
		e.cfg.Observer.ServeCompleted(res.SimSec, inflight, traceID)
	case canceled:
		e.cfg.Observer.ServeCanceled(inflight)
	default:
		e.cfg.Observer.ServeError()
	}
	close(t.done)
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	hits, misses, evictions := e.cache.counters()
	e.mu.Lock()
	s := e.st
	s.QueueDepth = len(e.queue)
	s.Inflight = e.inflight
	s.Workers = e.cfg.Workers
	e.mu.Unlock()
	s.CacheHits, s.CacheMisses, s.CacheEvictions = hits, misses, evictions
	s.CacheEntries = e.cache.len()
	if st := e.cfg.Spans; st != nil {
		c := st.Counts()
		s.SpansStarted, s.SpansFinished = c.Started, c.Finished
	}
	if slo := e.cfg.SLO; slo != nil {
		st := slo.Status()
		s.SLOFastBurn, s.SLOSlowBurn = st.FastBurn, st.SlowBurn
		s.SLOFiring, s.SLOAlerts = st.Firing, st.Alerts
	}
	return s
}

// Close stops admissions and drains gracefully: queued and in-flight
// queries run to completion (or to their contexts' cancellation), then
// the pool exits. Close blocks until the pool has exited and is safe to
// call more than once.
func (e *Engine) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
	e.wg.Wait()
	return nil
}
