// Package serve is the concurrent query-serving engine over the paper's
// prediction stack: many goroutines submit HiveQL text, the engine
// deduplicates compile+estimate work through a bounded single-flight LRU
// cache (keyed by normalized SQL + catalog fingerprint), ranks admitted
// queries by Weighted Resource Demand (paper Eq. 10) into an SWRD
// admission queue, and dispatches them onto a pool of cluster
// simulators. Submissions are cancellable via context.Context — a
// canceled query is skipped if still queued and aborted mid-run if
// already on a simulator — and Close drains gracefully: queued work
// completes, then the pool exits.
//
// Keeping prediction on the hot admission path is the point (cf. Wu et
// al. on query-time prediction and Rizvandi et al. on MapReduce CPU
// regression): every admission decision consumes the semantics-aware
// estimate, so the estimate must be cached and the models must be safe
// under concurrent readers. The fitted models and the catalog are
// immutable after construction, so the engine shares them across the
// pool without locks; all mutable state (cache, queue, counters) is
// guarded here.
//
// The engine is deterministic modulo goroutine interleaving: each
// query's simulated run depends only on its submission seed, and every
// metric recorded is a count or a simulated duration. Identical seeds
// submitted in serialized order therefore reproduce byte-identical
// metrics and drift snapshots (the package is in the determinism
// analyzer's scope — no wall clock, no global RNG, no map-ordered
// output).
package serve
