package serve

import (
	"bytes"
	"context"
	"testing"

	"saqp/internal/learn"
	"saqp/internal/obs"
)

// traceReplay is one fully instrumented serialized replay: a
// single-worker engine with tracing, SLO tracking, online learning and
// metrics on, fed a fixed seeded TPC-H query mix one submission at a
// time (submit, then wait) so completion order is deterministic.
type traceReplay struct {
	spans   *obs.SpanStore
	slo     *obs.SLOTracker
	obs     *obs.Observer
	stats   Stats
	simSecs []float64
}

func runTraceReplay(t *testing.T, traced bool) traceReplay {
	t.Helper()
	jm, tm := models(t)
	cfg := config(t)
	cfg.Workers = 1
	cfg.JobModel, cfg.TaskModel = jm, tm
	cfg.Learner = learn.NewRegistry(learn.Config{Champion: jm, ChampionTasks: tm})
	r := traceReplay{}
	if traced {
		r.obs = obs.New(nil)
		r.spans = obs.NewSpanStore(0)
		r.slo = obs.NewSLOTracker(obs.SLOConfig{Name: "SWRD", LatencyObjectiveSec: 60})
		cfg.Observer = r.obs
		cfg.Spans = r.spans
		cfg.SLO = r.slo
	}
	e := newEngine(t, cfg)
	for i, sql := range []string{q1, q6, q1, q6, q1, q6} {
		tk, err := e.Submit(context.Background(), sql, uint64(7+i%2))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		res, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		r.simSecs = append(r.simSecs, res.SimSec)
	}
	r.stats = e.Stats()
	return r
}

// TestServeSpanReplayDeterministic is the acceptance gate: two seeded
// serialized replays must serialise byte-identical span stores, SLO
// snapshots and metrics registries.
func TestServeSpanReplayDeterministic(t *testing.T) {
	a := runTraceReplay(t, true)
	b := runTraceReplay(t, true)

	var aj, bj bytes.Buffer
	if err := a.spans.WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := b.spans.WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Error("span-store JSON differs between identical seeded replays")
	}

	as, err := a.slo.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := b.slo.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(as, bs) {
		t.Error("SLO snapshot differs between identical seeded replays")
	}

	am, err := a.obs.Metrics.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.obs.Metrics.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(am, bm) {
		t.Error("metrics snapshot (including exemplars) differs between identical seeded replays")
	}
}

// TestServeSpansDoNotPerturbSchedule re-runs the same replay with
// observability off entirely: the simulated response times must be
// identical, since spans are recorded purely through observation.
func TestServeSpansDoNotPerturbSchedule(t *testing.T) {
	traced := runTraceReplay(t, true)
	plain := runTraceReplay(t, false)
	if len(traced.simSecs) != len(plain.simSecs) {
		t.Fatalf("replay lengths differ: %d vs %d", len(traced.simSecs), len(plain.simSecs))
	}
	for i := range traced.simSecs {
		if traced.simSecs[i] != plain.simSecs[i] {
			t.Errorf("query %d: traced sim %g != untraced sim %g", i, traced.simSecs[i], plain.simSecs[i])
		}
	}
}

// TestServeExemplarResolvesToSpanTree follows the full observability
// chain: a latency-histogram bucket's exemplar trace id must resolve in
// the span store to a complete submit→admit→schedule→attempt→feedback
// tree.
func TestServeExemplarResolvesToSpanTree(t *testing.T) {
	r := runTraceReplay(t, true)

	if r.stats.SpansStarted != 6 || r.stats.SpansFinished != 6 {
		t.Errorf("stats spans = %d/%d, want 6/6", r.stats.SpansStarted, r.stats.SpansFinished)
	}
	if got := r.slo.Status(); got.Good+got.Bad != 6 {
		t.Errorf("SLO classified %d+%d queries, want 6", got.Good, got.Bad)
	}

	hist := r.obs.Metrics.Snapshot().Histograms[obs.MServeSimResponseSec]
	if hist.Count != 6 {
		t.Fatalf("sim-response histogram count = %d, want 6", hist.Count)
	}
	if hist.Exemplars == nil {
		t.Fatal("sim-response histogram carries no exemplars")
	}
	var traceID string
	for _, ex := range hist.Exemplars {
		if ex.TraceID != "" {
			traceID = ex.TraceID
			break
		}
	}
	if traceID == "" {
		t.Fatal("no bucket recorded an exemplar trace id")
	}

	tree, ok := r.spans.Tree(traceID)
	if !ok {
		t.Fatalf("exemplar trace %q not resolvable in the span store", traceID)
	}
	kinds := map[string]bool{}
	for _, sp := range tree.Spans {
		kinds[sp.Kind] = true
	}
	for _, kind := range []string{obs.SpanKindQuery, obs.SpanKindCache,
		obs.SpanKindAdmission, obs.SpanKindAttempt, obs.SpanKindJob,
		obs.SpanKindTask, obs.SpanKindSched, obs.SpanKindFeedback} {
		if !kinds[kind] {
			t.Errorf("exemplar tree %q lacks a %q span", traceID, kind)
		}
	}
	if tree.Spans[0].Kind != obs.SpanKindQuery || tree.Spans[0].End <= 0 {
		t.Errorf("exemplar tree root malformed: %+v", tree.Spans[0])
	}
}
