package serve

import (
	"context"
	"errors"
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/fault"
)

// faultCfg returns a serve config whose pool simulators run under the
// given fault plan.
func faultCfg(t *testing.T, p *fault.Plan) Config {
	cfg := config(t)
	cfg.Workers = 1
	cfg.Cluster.Faults = p
	return cfg
}

// TestFaultFailureSurfacesTypedError: with every attempt failing and a
// one-attempt cap, the query is abandoned and Ticket.Wait unwraps to the
// cluster's typed error.
func TestFaultFailureSurfacesTypedError(t *testing.T) {
	e := newEngine(t, faultCfg(t, fault.NewPlan(fault.Spec{
		Seed: 1, TaskFailProb: 1, MaxAttempts: 1,
	})))
	tk, err := e.Submit(context.Background(), q6, 7)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	_, err = tk.Wait(context.Background())
	if err == nil {
		t.Fatal("doomed query should fail through Wait")
	}
	var tfe *cluster.TaskFailedError
	if !errors.As(err, &tfe) {
		t.Fatalf("Wait error = %v, want a wrapped *cluster.TaskFailedError", err)
	}
	if tfe.Attempts != 1 {
		t.Fatalf("typed error attempts = %d, want the cap of 1", tfe.Attempts)
	}
	st := e.Stats()
	if st.FaultFailures != 1 || st.Errors != 1 || st.Retries != 0 {
		t.Fatalf("stats after fault failure: %+v", st)
	}
}

// TestFaultRetryRecovers probes for a plan seed where the first run of a
// query fails at the attempt cap but a re-salted retry completes, then
// asserts MaxRetries turns that exact failure into a success.
func TestFaultRetryRecovers(t *testing.T) {
	probe := func(planSeed uint64, retries int) (*Result, error, *Engine) {
		cfg := faultCfg(t, fault.NewPlan(fault.Spec{
			Seed: planSeed, TaskFailProb: 0.02, MaxAttempts: 1,
		}))
		cfg.MaxRetries = retries
		e := newEngine(t, cfg)
		tk, err := e.Submit(context.Background(), q6, 7)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		res, err := tk.Wait(context.Background())
		return &res, err, e
	}
	for planSeed := uint64(0); planSeed < 200; planSeed++ {
		if _, err, _ := probe(planSeed, 0); err == nil {
			continue // this plan doesn't fail the first run; try the next
		}
		res, err, e := probe(planSeed, 5)
		if err != nil {
			continue // every re-roll failed too; keep probing
		}
		if res.Attempts < 2 {
			t.Fatalf("recovered result reports %d attempt(s), want >= 2", res.Attempts)
		}
		st := e.Stats()
		if st.Retries == 0 || st.FaultFailures != 0 || st.Completed != 1 {
			t.Fatalf("stats after recovered retry: %+v", st)
		}
		return
	}
	t.Fatal("no plan seed under 200 fails once and recovers on retry")
}

// TestNilFaultPlanForcesZeroRetries: without a fault plan MaxRetries is
// inert — a clean run completes in one attempt and counts no retries.
func TestNilFaultPlanForcesZeroRetries(t *testing.T) {
	cfg := config(t)
	cfg.MaxRetries = 5
	e := newEngine(t, cfg)
	tk, err := e.Submit(context.Background(), q6, 7)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Attempts != 1 || res.Faulted {
		t.Fatalf("clean run result: %+v", res)
	}
	if st := e.Stats(); st.Retries != 0 || st.FaultFailures != 0 {
		t.Fatalf("clean run stats: %+v", st)
	}
}
