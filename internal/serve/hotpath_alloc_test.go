package serve

import "testing"

var (
	hotSinkEntry *cacheEntry
	hotSinkBool  bool
)

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for the plan cache's steady-state path: a repeat lookup must not
// allocate. The miss path (entry construction, eviction) is allowed to.
func TestHotPathAllocs(t *testing.T) {
	c := newPlanCache(4)
	if _, owner, _ := c.lookup("k"); !owner {
		t.Fatal("first lookup should own the computation")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := testing.AllocsPerRun(100, func() { hotSinkEntry, hotSinkBool = c.hit("k") }); n != 0 {
		t.Errorf("planCache.hit allocates %.0f times per call; //saqp:hotpath functions must not allocate", n)
	}
}
