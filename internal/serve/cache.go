package serve

import (
	"container/list"
	"sync"

	"saqp/internal/plan"
	"saqp/internal/selectivity"
)

// cacheEntry is one compile+estimate result. The entry is published into
// the cache before its computation runs; ready closes once dag/est/err
// are final and no field changes afterwards, so waiters (and holders of
// evicted entries) read immutable state.
type cacheEntry struct {
	key   string
	ready chan struct{}

	dag     *plan.DAG
	est     *selectivity.QueryEstimate
	wrd     float64
	predSec float64
	err     error
}

// planCache is a bounded LRU of compile+estimate results keyed by
// normalized SQL + catalog fingerprint, with single-flight semantics:
// concurrent lookups of one key share a single computation, so N
// identical submissions cost one compile. Entries are inserted at lookup
// time (so duplicates can join the flight immediately); a computation
// that fails is removed when published, letting later submissions retry.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // key → element whose Value is *cacheEntry
	lru     list.List                // front = most recently used

	hits, misses, evictions uint64
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{cap: capacity, entries: make(map[string]*list.Element, capacity)}
}

// lookup returns the entry for key and whether the caller owns its
// computation. An owner must fill the entry and call publish exactly
// once; every other caller waits on entry.ready. Evicted reports how
// many older entries the insertion displaced.
func (c *planCache) lookup(key string) (e *cacheEntry, owner bool, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.hit(key); ok {
		return e, false, 0
	}
	c.misses++
	e = &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
		evicted++
	}
	return e, true, evicted
}

// hit returns the cached entry for key, if present, bumping it to the
// LRU front and counting the hit. It is the steady-state path of every
// repeated submission — the cache exists so that path is cheap — and
// must not allocate. Callers must hold c.mu.
//
//saqp:hotpath
func (c *planCache) hit(key string) (*cacheEntry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry), true
}

// publish closes the entry's ready channel, releasing waiters. Failed
// computations are dropped from the cache so the error is not sticky.
func (c *planCache) publish(e *cacheEntry) {
	close(e.ready)
	if e.err == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The entry may already have been evicted, or even replaced by a
	// fresh flight for the same key; only drop our own element.
	if el, ok := c.entries[e.key]; ok && el.Value.(*cacheEntry) == e {
		c.lru.Remove(el)
		delete(c.entries, e.key)
	}
}

// counters returns the cache's lifetime hit/miss/eviction counts.
func (c *planCache) counters() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// len returns the current entry count.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
