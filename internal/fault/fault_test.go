package fault

import (
	"reflect"
	"testing"
)

func TestPlanDeterministic(t *testing.T) {
	spec := DefaultSpec(42)
	a, b := NewPlan(spec), NewPlan(spec)
	if !reflect.DeepEqual(a.Crashes(), b.Crashes()) {
		t.Errorf("crash windows differ across identical specs:\n%v\nvs\n%v", a.Crashes(), b.Crashes())
	}
	if !reflect.DeepEqual(a.Slowdowns(), b.Slowdowns()) {
		t.Errorf("slowdown windows differ across identical specs:\n%v\nvs\n%v", a.Slowdowns(), b.Slowdowns())
	}
	for attempt := 1; attempt <= 4; attempt++ {
		fa, xa := a.TaskFailure(7, "q1/J1", true, 3, attempt)
		fb, xb := b.TaskFailure(7, "q1/J1", true, 3, attempt)
		if fa != fb || xa != xb {
			t.Fatalf("TaskFailure not deterministic at attempt %d", attempt)
		}
	}
}

func TestSeedChangesPlan(t *testing.T) {
	a := NewPlan(DefaultSpec(1))
	b := NewPlan(DefaultSpec(2))
	if reflect.DeepEqual(a.Crashes(), b.Crashes()) && reflect.DeepEqual(a.Slowdowns(), b.Slowdowns()) {
		t.Error("different seeds produced identical window sets")
	}
}

func TestZeroSpecInjectsNothing(t *testing.T) {
	p := NewPlan(Spec{Seed: 99})
	if len(p.Crashes()) != 0 || len(p.Slowdowns()) != 0 {
		t.Fatalf("zero spec produced windows: %v %v", p.Crashes(), p.Slowdowns())
	}
	for i := 0; i < 100; i++ {
		if fail, _ := p.TaskFailure(0, "q/J1", false, i, 1); fail {
			t.Fatal("zero spec produced a task failure")
		}
	}
	if p.SlowFactor(0, 100) != 1 {
		t.Fatal("zero spec slowed a node")
	}
}

func TestNilPlanIsSafe(t *testing.T) {
	var p *Plan
	if fail, _ := p.TaskFailure(0, "q/J1", false, 0, 1); fail {
		t.Fatal("nil plan failed a task")
	}
	if p.SlowFactor(3, 10) != 1 {
		t.Fatal("nil plan slowed a node")
	}
	if p.MaxAttempts() != 0 || p.BlacklistAfter() != 0 || p.Backoff(1) != 0 {
		t.Fatal("nil plan returned non-zero recovery knobs")
	}
	if p.Crashes() != nil || p.Slowdowns() != nil || (p.Spec() != Spec{}) {
		t.Fatal("nil plan returned non-empty state")
	}
}

func TestTaskFailureRespectsProbability(t *testing.T) {
	p := NewPlan(Spec{Seed: 5, TaskFailProb: 0.1})
	fails := 0
	const n = 5000
	for i := 0; i < n; i++ {
		fail, frac := p.TaskFailure(0, "q/J1", false, i, 1)
		if fail {
			fails++
			if frac < 0.1 || frac >= 0.9 {
				t.Fatalf("failure fraction %v outside [0.1, 0.9)", frac)
			}
		}
	}
	got := float64(fails) / n
	if got < 0.07 || got > 0.13 {
		t.Errorf("empirical failure rate %v, want ~0.1", got)
	}
}

func TestTaskFailureSaltIndependence(t *testing.T) {
	// The serving layer re-rolls retries by salting; most decisions must
	// actually change across salts or retrying a doomed query is pointless.
	p := NewPlan(Spec{Seed: 5, TaskFailProb: 0.5})
	changed := 0
	for i := 0; i < 1000; i++ {
		a, _ := p.TaskFailure(0, "q/J1", false, i, 1)
		b, _ := p.TaskFailure(1, "q/J1", false, i, 1)
		if a != b {
			changed++
		}
	}
	if changed < 300 {
		t.Errorf("only %d/1000 decisions changed across salts", changed)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := NewPlan(Spec{BackoffBaseSec: 10, BackoffCapSec: 80})
	want := []float64{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDefaultsNormalized(t *testing.T) {
	s := NewPlan(Spec{}).Spec()
	if s.MaxAttempts != 4 || s.BlacklistAfter != 3 || s.BackoffBaseSec != 10 ||
		s.BackoffCapSec != 80 || s.HorizonSec != 3600 {
		t.Errorf("unexpected defaults: %+v", s)
	}
}

func TestWindowsInsideHorizon(t *testing.T) {
	p := NewPlan(Spec{Seed: 3, Nodes: 50, HorizonSec: 1000, CrashProb: 0.5, SlowProb: 0.5})
	for _, w := range p.Crashes() {
		if w.Start < 0 || w.Start >= 1000 || w.End <= w.Start || w.Factor != 0 {
			t.Errorf("bad crash window %+v", w)
		}
	}
	for _, w := range p.Slowdowns() {
		if w.Start < 0 || w.Start >= 1000 || w.End <= w.Start || w.Factor <= 0 || w.Factor > 1 {
			t.Errorf("bad slowdown window %+v", w)
		}
	}
}
