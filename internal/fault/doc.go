// Package fault generates deterministic, seed-driven fault plans for the
// cluster simulator: node crashes with timed recovery, per-node slowdown
// windows (stragglers), and per-attempt transient task failures. It models
// the failure half of the Hadoop 1.x semantics that the paper's testbed
// (Section 5) assumes away — the paper's predictions (Eq. 8–10) are fit on
// clean runs, and injecting faults is how the reproduction measures the
// prediction drift that failure recovery induces.
//
// Determinism contract: a Plan is fully expanded at construction from a
// sim.RNG seeded by Spec.Seed — node crash and slowdown windows are fixed
// before the run starts, and per-task failure decisions are a pure hash of
// (seed, salt, task identity, attempt number), independent of dispatch
// order. Two runs with the same Spec, workload and scheduler are therefore
// byte-identical; a nil *Plan or a zero Spec injects nothing and leaves the
// simulated schedule untouched.
package fault
