package fault

import "saqp/internal/sim"

// Spec configures a fault plan. The zero value injects no faults; only the
// recovery knobs (attempt cap, backoff, blacklist threshold) are defaulted,
// so a zero Spec still yields a usable Plan whose schedule is identical to
// a fault-free run.
type Spec struct {
	// Seed drives the plan's PRNG and the per-task failure hash.
	Seed uint64
	// Nodes is how many nodes the plan covers; windows generated for nodes
	// beyond the simulated cluster are ignored by the simulator.
	Nodes int
	// HorizonSec is the sim-time span over which crash and slowdown windows
	// are placed (default 3600).
	HorizonSec float64

	// CrashProb is the probability that a given node crashes once during
	// the horizon, staying down for CrashDowntimeSec (default 120) before
	// rejoining with all slots free. Crash-killed attempts are re-queued
	// immediately and do not count against the attempt cap (Hadoop marks
	// them KILLED, not FAILED).
	CrashProb        float64
	CrashDowntimeSec float64

	// SlowProb is the probability that a given node degrades once during
	// the horizon: for SlowDurationSec (default 300) tasks dispatched to it
	// run at SlowFactor (default 0.25) of the node's nominal speed — the
	// straggler behaviour speculative execution exists to mask.
	SlowProb        float64
	SlowFactor      float64
	SlowDurationSec float64

	// TaskFailProb is the probability that any given task attempt fails
	// partway through (mapred task FAILED). The failing attempt burns the
	// slot for a deterministic fraction of its duration, then the task
	// backs off and retries, up to MaxAttempts (default 4, as
	// mapred.map.max.attempts) before its whole query is failed.
	TaskFailProb float64
	MaxAttempts  int

	// BlacklistAfter is how many transient failures a node hosts before it
	// is excluded from scheduling for the rest of the run (default 3, as
	// mapred.max.tracker.failures).
	BlacklistAfter int

	// BackoffBaseSec is the first retry delay in sim seconds (default 10);
	// it doubles per consecutive failure of the same task, capped at
	// BackoffCapSec (default 80).
	BackoffBaseSec float64
	BackoffCapSec  float64
}

// normalize fills structural defaults without turning on any fault class.
func (s Spec) normalize() Spec {
	if s.Nodes <= 0 {
		s.Nodes = 9
	}
	if s.HorizonSec <= 0 {
		s.HorizonSec = 3600
	}
	if s.CrashDowntimeSec <= 0 {
		s.CrashDowntimeSec = 120
	}
	if s.SlowFactor <= 0 || s.SlowFactor > 1 {
		s.SlowFactor = 0.25
	}
	if s.SlowDurationSec <= 0 {
		s.SlowDurationSec = 300
	}
	if s.MaxAttempts <= 0 {
		s.MaxAttempts = 4
	}
	if s.BlacklistAfter <= 0 {
		s.BlacklistAfter = 3
	}
	if s.BackoffBaseSec <= 0 {
		s.BackoffBaseSec = 10
	}
	if s.BackoffCapSec <= 0 {
		s.BackoffCapSec = 80
	}
	return s
}

// DefaultSpec is the plan CI replays TPC-H under: a moderate mix of every
// fault class, tuned so retries and blacklisting recover every query
// (completion rate 100%, gated by `make bench-fault`).
func DefaultSpec(seed uint64) Spec {
	return Spec{
		Seed:         seed,
		Nodes:        9,
		HorizonSec:   3600,
		CrashProb:    0.2,
		SlowProb:     0.3,
		TaskFailProb: 0.02,
	}
}

// Window is one timed per-node fault: a crash outage (Factor 0) or a
// slowdown (Factor in (0,1), multiplying the node's speed).
type Window struct {
	Node       int
	Start, End float64
	Factor     float64
}

// Plan is a fully-expanded fault schedule. All randomness is consumed at
// construction; every accessor is a pure function of the stored state, and
// every accessor is safe on a nil receiver (returning "no fault").
type Plan struct {
	spec    Spec
	crashes []Window
	slows   []Window
}

// NewPlan expands spec into a concrete plan using a sim.RNG seeded with
// spec.Seed. The same spec always yields the same plan.
func NewPlan(spec Spec) *Plan {
	spec = spec.normalize()
	p := &Plan{spec: spec}
	rng := sim.New(spec.Seed)
	crashRNG, slowRNG := rng.Fork(), rng.Fork()
	for n := 0; n < spec.Nodes; n++ {
		if crashRNG.Float64() < spec.CrashProb {
			at := crashRNG.Range(0, spec.HorizonSec)
			p.crashes = append(p.crashes, Window{
				Node: n, Start: at, End: at + spec.CrashDowntimeSec,
			})
		}
	}
	for n := 0; n < spec.Nodes; n++ {
		if slowRNG.Float64() < spec.SlowProb {
			at := slowRNG.Range(0, spec.HorizonSec)
			p.slows = append(p.slows, Window{
				Node: n, Start: at, End: at + spec.SlowDurationSec,
				Factor: spec.SlowFactor,
			})
		}
	}
	return p
}

// Spec returns the normalized spec the plan was built from.
func (p *Plan) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// Crashes returns the node outage windows, in node order.
func (p *Plan) Crashes() []Window {
	if p == nil {
		return nil
	}
	return append([]Window(nil), p.crashes...)
}

// Slowdowns returns the node slowdown windows, in node order.
func (p *Plan) Slowdowns() []Window {
	if p == nil {
		return nil
	}
	return append([]Window(nil), p.slows...)
}

// SlowFactor returns the speed multiplier for tasks dispatched to node at
// sim time at: 1 outside any slowdown window.
func (p *Plan) SlowFactor(node int, at float64) float64 {
	if p == nil {
		return 1
	}
	for _, w := range p.slows {
		if w.Node == node && at >= w.Start && at < w.End {
			return w.Factor
		}
	}
	return 1
}

// MaxAttempts returns the per-task attempt cap.
func (p *Plan) MaxAttempts() int {
	if p == nil {
		return 0
	}
	return p.spec.MaxAttempts
}

// BlacklistAfter returns the per-node transient-failure threshold.
func (p *Plan) BlacklistAfter() int {
	if p == nil {
		return 0
	}
	return p.spec.BlacklistAfter
}

// Backoff returns the retry delay after a task's n-th consecutive failure
// (n >= 1): base * 2^(n-1), capped.
func (p *Plan) Backoff(n int) float64 {
	if p == nil {
		return 0
	}
	b := p.spec.BackoffBaseSec
	for i := 1; i < n; i++ {
		b *= 2
		if b >= p.spec.BackoffCapSec {
			return p.spec.BackoffCapSec
		}
	}
	if b > p.spec.BackoffCapSec {
		return p.spec.BackoffCapSec
	}
	return b
}

// TaskFailure decides whether the attempt-th run (1-based) of the task
// identified by (job, reduce, index) fails, and if so at which fraction of
// its duration (in [0.1, 0.9)) the slot is lost. The decision is a pure
// hash of the identity — independent of dispatch order or cluster state —
// so re-executions and speculative copies of *other* tasks cannot perturb
// it. salt lets a caller (the serving layer's query retry) re-roll every
// decision at once without rebuilding the plan.
func (p *Plan) TaskFailure(salt uint64, job string, reduce bool, index, attempt int) (fail bool, frac float64) {
	if p == nil || p.spec.TaskFailProb <= 0 {
		return false, 0
	}
	h := uint64(14695981039346656037) // FNV-64a offset basis
	for i := 0; i < len(job); i++ {
		h = (h ^ uint64(job[i])) * 1099511628211
	}
	h = mix64(h ^ p.spec.Seed)
	h = mix64(h ^ salt)
	phase := uint64(0)
	if reduce {
		phase = 1
	}
	h = mix64(h ^ phase<<32 ^ uint64(index))
	h = mix64(h ^ uint64(attempt))
	if float64(h>>11)/(1<<53) >= p.spec.TaskFailProb {
		return false, 0
	}
	return true, 0.1 + 0.8*float64(mix64(h)>>11)/(1<<53)
}

// mix64 is the SplitMix64 output finalizer used as a stateless bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
