package query

import (
	"strings"
	"testing"

	"saqp/internal/dataset"
)

// q11 is the paper's modified TPC-H Q11 (Section 3.2, Figure 5).
const q11 = `SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
FROM nation n JOIN supplier s ON
  s.s_nationkey = n.n_nationkey AND n.n_name <> 'CHINA'
JOIN partsupp ps ON
  ps.ps_suppkey = s.s_suppkey
GROUP BY ps_partkey;`

func TestParseQ11(t *testing.T) {
	q, err := Parse(q11)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if q.Select[1].Agg != AggSum || q.Select[1].Expr.Binop == nil {
		t.Fatalf("second item should be sum(binop): %+v", q.Select[1])
	}
	if q.From.Name != "nation" || q.From.Alias != "n" {
		t.Fatalf("from = %+v", q.From)
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if len(q.Joins[0].On) != 2 {
		t.Fatalf("first join conjuncts = %d", len(q.Joins[0].On))
	}
	if !q.Joins[0].On[0].IsJoin() || q.Joins[0].On[1].IsJoin() {
		t.Fatal("join conjunct classification wrong")
	}
	if q.Joins[0].On[1].Op != OpNE || q.Joins[0].On[1].Lit.S != "CHINA" {
		t.Fatalf("NE predicate wrong: %+v", q.Joins[0].On[1])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "ps_partkey" {
		t.Fatalf("groupby = %+v", q.GroupBy)
	}
	if q.Limit != -1 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseWhereOrderLimit(t *testing.T) {
	q, err := Parse(`SELECT l_orderkey, l_quantity FROM lineitem
		WHERE l_quantity >= 25 AND l_shipdate < 9000
		ORDER BY l_quantity DESC, l_orderkey LIMIT 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %d", len(q.Where))
	}
	if q.Where[0].Op != OpGE || q.Where[0].Lit.F != 25 {
		t.Fatalf("where[0] = %+v", q.Where[0])
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("orderby = %+v", q.OrderBy)
	}
	if q.Limit != 100 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse(`SELECT count(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Select[0].Star || q.Select[0].Agg != AggCount {
		t.Fatalf("count(*) = %+v", q.Select[0])
	}
	if !q.HasAggregates() {
		t.Fatal("HasAggregates false for count(*)")
	}
}

func TestParseAllAggregates(t *testing.T) {
	q, err := Parse(`SELECT sum(a), count(b), avg(c), min(d), max(e) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	want := []AggFunc{AggSum, AggCount, AggAvg, AggMin, AggMax}
	for i, w := range want {
		if q.Select[i].Agg != w {
			t.Fatalf("item %d agg = %v, want %v", i, q.Select[i].Agg, w)
		}
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse("SELECT a FROM t -- trailing comment\nWHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 {
		t.Fatal("comment swallowed the WHERE clause")
	}
}

func TestParseStringEscape(t *testing.T) {
	q, err := Parse(`SELECT a FROM t WHERE a = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Lit.S != "it's" {
		t.Fatalf("escaped string = %q", q.Where[0].Lit.S)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q, err := Parse(`SELECT a FROM t WHERE a > -42.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Lit.F != -42.5 {
		t.Fatalf("literal = %v", q.Where[0].Lit.F)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"FROM t", "expected SELECT"},
		{"SELECT a", "expected FROM"},
		{"SELECT a FROM t JOIN u", "expected ON"},
		{"SELECT a FROM t JOIN u ON a = 1", "no column-to-column"},
		{"SELECT a FROM t WHERE", "expected column reference"},
		{"SELECT a FROM t WHERE a ~ 1", "unexpected character"},
		{"SELECT a FROM t LIMIT x", "expected number"},
		{"SELECT a FROM t GROUP a", "expected BY"},
		{"SELECT a FROM t ORDER a", "expected BY"},
		{"SELECT a FROM t WHERE a = 'oops", "unterminated string"},
		{"SELECT a FROM t extra junk here", "unexpected trailing input"},
		{"SELECT sum(a FROM t", `expected ")"`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("Parse(%q) error %q does not contain %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	q, err := Parse(q11)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("rendered SQL does not reparse: %v\nSQL: %s", err, q.String())
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip unstable:\n%s\n%s", q.String(), q2.String())
	}
}

func TestResolveQ11(t *testing.T) {
	q, err := Parse(q11)
	if err != nil {
		t.Fatal(err)
	}
	if err := Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatal(err)
	}
	// Unqualified ps_partkey must now be qualified.
	if q.GroupBy[0].Table != "partsupp" {
		t.Fatalf("groupby resolved to %q", q.GroupBy[0].Table)
	}
	// Alias s must be rewritten to base name supplier.
	if q.Joins[0].On[0].Left.Table != "supplier" {
		t.Fatalf("join left resolved to %q", q.Joins[0].On[0].Left.Table)
	}
	if q.From.Alias != "" {
		t.Fatal("alias not erased after resolve")
	}
}

func TestResolveErrors(t *testing.T) {
	schemas := dataset.AllSchemas()
	cases := []struct {
		src, wantSub string
	}{
		{"SELECT x FROM ghost", "unknown table"},
		{"SELECT ghostcol FROM nation", `unknown column "ghostcol"`},
		{"SELECT nation.ghost FROM nation", "no column"},
		{"SELECT z.n_name FROM nation", `unknown table label "z"`},
		{"SELECT n_nationkey FROM nation JOIN supplier ON s_nationkey = n_nationkey JOIN nation ON n_regionkey = n_regionkey", "duplicate table label"},
		{"SELECT orders.o_orderkey FROM lineitem", "not in FROM clause"},
	}
	for _, tc := range cases {
		q, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		err = Resolve(q, schemas)
		if err == nil {
			t.Fatalf("Resolve(%q) succeeded, want error with %q", tc.src, tc.wantSub)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("Resolve(%q) error %q missing %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestResolveAmbiguous(t *testing.T) {
	// c_comment exists only in customer; n_comment only in nation; but
	// "s_comment" vs... need a genuinely ambiguous name: both partsupp and
	// orders have no shared columns in our schemas, so construct schemas
	// sharing a column name.
	a := &dataset.Schema{Name: "ta", RowsAt: func(float64) int64 { return 1 },
		Columns: []dataset.Column{{Name: "shared", Kind: dataset.KindInt, Card: func(float64) int64 { return 1 }},
			{Name: "ka", Kind: dataset.KindInt, Card: func(float64) int64 { return 1 }}}}
	b := &dataset.Schema{Name: "tb", RowsAt: func(float64) int64 { return 1 },
		Columns: []dataset.Column{{Name: "shared", Kind: dataset.KindInt, Card: func(float64) int64 { return 1 }},
			{Name: "kb", Kind: dataset.KindInt, Card: func(float64) int64 { return 1 }}}}
	schemas := map[string]*dataset.Schema{"ta": a, "tb": b}
	q, err := Parse("SELECT shared FROM ta JOIN tb ON ka = kb")
	if err != nil {
		t.Fatal(err)
	}
	if err := Resolve(q, schemas); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
}

func TestTablesAndLabel(t *testing.T) {
	q, _ := Parse(q11)
	ts := q.Tables()
	if len(ts) != 3 || ts[0].Label() != "n" || ts[2].Label() != "ps" {
		t.Fatalf("tables = %+v", ts)
	}
}

func TestPredicateAndLiteralString(t *testing.T) {
	p := Predicate{Left: ColumnRef{Table: "t", Column: "c"}, Op: OpLE, Lit: NumLit(3.5)}
	if p.String() != "t.c <= 3.5" {
		t.Fatalf("predicate string = %q", p.String())
	}
	r := ColumnRef{Table: "u", Column: "d"}
	p2 := Predicate{Left: ColumnRef{Column: "c"}, Op: OpEQ, Right: &r}
	if p2.String() != "c = u.d" {
		t.Fatalf("join predicate string = %q", p2.String())
	}
	if StrLit("x").String() != "'x'" {
		t.Fatal("string literal rendering")
	}
}

func TestOpAndAggStrings(t *testing.T) {
	ops := map[CmpOp]string{OpEQ: "=", OpNE: "<>", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">="}
	for op, s := range ops {
		if op.String() != s {
			t.Fatalf("op %d string = %q", op, op.String())
		}
	}
	if AggSum.String() != "sum" || AggNone.String() != "" {
		t.Fatal("agg strings")
	}
}
