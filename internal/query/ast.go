package query

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp uint8

// Comparison operators.
const (
	OpEQ CmpOp = iota // =
	OpNE              // <> or !=
	OpLT              // <
	OpLE              // <=
	OpGT              // >
	OpGE              // >=
	OpIN              // IN (v1, v2, ...)
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpIN:
		return "IN"
	}
	return "?"
}

// AggFunc is an aggregate function applied in the projection list.
type AggFunc uint8

// Aggregate functions.
const (
	AggNone AggFunc = iota
	AggSum
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "agg?"
}

// ColumnRef names a column, optionally qualified by table name or alias.
type ColumnRef struct {
	Table  string // alias or table name; empty until resolved if unqualified
	Column string
}

// String renders the reference in SQL form.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// ArithOp is an arithmetic operator inside aggregate expressions.
type ArithOp uint8

// Arithmetic operators.
const (
	ArithMul ArithOp = iota
	ArithAdd
	ArithSub
	ArithDiv
)

// String returns the SQL spelling of the arithmetic operator.
func (o ArithOp) String() string {
	switch o {
	case ArithMul:
		return "*"
	case ArithAdd:
		return "+"
	case ArithSub:
		return "-"
	case ArithDiv:
		return "/"
	}
	return "?"
}

// Expr is a projection expression: either a bare column or a binary
// arithmetic combination of two columns (e.g. ps_supplycost*ps_availqty in
// the paper's modified Q11 example).
type Expr struct {
	Col   ColumnRef
	Binop *BinaryExpr
}

// BinaryExpr is column-op-column arithmetic.
type BinaryExpr struct {
	Left, Right ColumnRef
	Op          ArithOp
}

// Columns returns every column the expression references.
func (e Expr) Columns() []ColumnRef {
	if e.Binop != nil {
		return []ColumnRef{e.Binop.Left, e.Binop.Right}
	}
	return []ColumnRef{e.Col}
}

// String renders the expression in SQL form.
func (e Expr) String() string {
	if e.Binop != nil {
		return e.Binop.Left.String() + e.Binop.Op.String() + e.Binop.Right.String()
	}
	return e.Col.String()
}

// SelectItem is one projection-list entry: a column, `agg(expr)`, or
// `count(*)` (Star true).
type SelectItem struct {
	Agg  AggFunc
	Expr Expr
	Star bool // count(*)
}

// String renders the item in SQL form.
func (s SelectItem) String() string {
	if s.Star {
		return "count(*)"
	}
	if s.Agg == AggNone {
		return s.Expr.String()
	}
	return fmt.Sprintf("%s(%s)", s.Agg, s.Expr)
}

// Literal is a constant in a predicate.
type Literal struct {
	IsString bool
	S        string
	F        float64 // numeric payload (ints and dates included)
}

// NumLit builds a numeric literal.
func NumLit(v float64) Literal { return Literal{F: v} }

// StrLit builds a string literal.
func StrLit(s string) Literal { return Literal{IsString: true, S: s} }

// String renders the literal in SQL form.
func (l Literal) String() string {
	if l.IsString {
		return "'" + l.S + "'"
	}
	return trimFloat(l.F)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Predicate is a conjunct: either column-op-literal (a local filter),
// column-op-column (a join condition), or column IN (set).
type Predicate struct {
	Left  ColumnRef
	Op    CmpOp
	Lit   Literal
	Right *ColumnRef // non-nil for column-to-column predicates
	// Set carries the literal list for OpIN.
	Set []Literal
}

// IsJoin reports whether the predicate compares two columns.
func (p Predicate) IsJoin() bool { return p.Right != nil }

// String renders the predicate in SQL form.
func (p Predicate) String() string {
	if p.Right != nil {
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, *p.Right)
	}
	if p.Op == OpIN {
		var b strings.Builder
		fmt.Fprintf(&b, "%s IN (", p.Left)
		for i, l := range p.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(l.String())
		}
		b.WriteString(")")
		return b.String()
	}
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Lit)
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Label returns the name the rest of the query uses for this table.
func (t TableRef) Label() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// String renders the reference in SQL form.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// Join is one JOIN clause: the joined table and its ON conjuncts (at least
// one column-to-column condition, plus optional local filters).
type Join struct {
	Table TableRef
	On    []Predicate
}

// HavingPred is one HAVING conjunct: an aggregate compared to a literal
// (e.g. sum(x) > 100, count(*) >= 5).
type HavingPred struct {
	Agg  AggFunc
	Expr Expr
	Star bool // count(*)
	Op   CmpOp
	Lit  Literal
}

// String renders the conjunct in SQL form.
func (h HavingPred) String() string {
	left := fmt.Sprintf("%s(%s)", h.Agg, h.Expr)
	if h.Star {
		left = "count(*)"
	}
	return fmt.Sprintf("%s %s %s", left, h.Op, h.Lit)
}

// OrderItem is one ORDER BY entry: a column, or an aggregate that must
// also appear in the SELECT list (ORDER BY sum(x) DESC — the TPC-H Q3
// top-k idiom). For aggregate items the planner binds Col to the upstream
// aggregation job's output column.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
	// Agg/Expr/Star describe an aggregate sort key; Agg == AggNone means a
	// plain column key.
	Agg  AggFunc
	Expr Expr
	Star bool
}

// IsAggregate reports whether the item sorts by an aggregate value.
func (o OrderItem) IsAggregate() bool { return o.Agg != AggNone || o.Star }

// String renders the item in SQL form.
func (o OrderItem) String() string {
	left := o.Col.String()
	if o.Star {
		left = "count(*)"
	} else if o.Agg != AggNone {
		left = fmt.Sprintf("%s(%s)", o.Agg, o.Expr)
	}
	if o.Desc {
		return left + " DESC"
	}
	return left
}

// Query is a single-block analytic query.
type Query struct {
	Select  []SelectItem
	From    TableRef
	Joins   []Join
	Where   []Predicate // conjunctive
	GroupBy []ColumnRef
	Having  []HavingPred
	OrderBy []OrderItem
	Limit   int64 // -1 when absent
	// MapJoinTables holds tables named in a /*+ MAPJOIN(t, ...) */ hint:
	// joins against them compile to map-only broadcast joins, the Hive-era
	// "map-side join" the paper classifies as a minor operator.
	MapJoinTables []string
}

// HasAggregates reports whether any projection item aggregates.
func (q *Query) HasAggregates() bool {
	for _, s := range q.Select {
		if s.Agg != AggNone || s.Star {
			return true
		}
	}
	return false
}

// Tables returns every table reference in FROM/JOIN order.
func (q *Query) Tables() []TableRef {
	ts := []TableRef{q.From}
	for _, j := range q.Joins {
		ts = append(ts, j.Table)
	}
	return ts
}

// String renders the query as SQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.MapJoinTables) > 0 {
		b.WriteString("/*+ MAPJOIN(")
		b.WriteString(strings.Join(q.MapJoinTables, ", "))
		b.WriteString(") */ ")
	}
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(q.From.String())
	for _, j := range q.Joins {
		b.WriteString(" JOIN ")
		b.WriteString(j.Table.String())
		b.WriteString(" ON ")
		for i, p := range j.On {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(q.Having) > 0 {
		b.WriteString(" HAVING ")
		for i, h := range q.Having {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(h.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
