package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles HiveQL text into a Query AST. The supported grammar:
//
//	SELECT item (',' item)*
//	FROM table [alias]
//	  (JOIN table [alias] ON pred (AND pred)*)*
//	[WHERE pred (AND pred)*]
//	[GROUP BY col (',' col)*]
//	[ORDER BY col [ASC|DESC] (',' col)*]
//	[LIMIT n]
//
//	item := col | agg '(' col [arith col] ')' | COUNT '(' '*' ')'
//	pred := col op (literal | col)          op := = <> != < <= > >=
//	      | col BETWEEN lit AND lit         (expands to >= AND <=)
//	      | col IN '(' lit (',' lit)* ')'
//
// A /*+ MAPJOIN(t, ...) */ hint directly after SELECT marks joins against
// the named tables as map-only broadcast joins. Keywords are
// case-insensitive. A trailing semicolon is permitted.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// keyword reports whether the current token is the given keyword (matched
// case-insensitively) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) symbol(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	where := t.text
	if t.kind == tokEOF {
		where = "end of input"
	}
	return fmt.Errorf("query: %s at offset %d (near %q)", fmt.Sprintf(format, args...), t.pos, where)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	if !p.keyword("select") {
		return nil, p.errf("expected SELECT")
	}
	if p.cur().kind == tokHint {
		hint := p.next()
		tables, err := parseMapJoinHint(hint.text)
		if err != nil {
			return nil, fmt.Errorf("query: %v at offset %d", err, hint.pos)
		}
		q.MapJoinTables = tables
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.symbol(",") {
			break
		}
	}
	if !p.keyword("from") {
		return nil, p.errf("expected FROM")
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	q.From = tr
	for p.keyword("join") {
		j := Join{}
		if j.Table, err = p.parseTableRef(); err != nil {
			return nil, err
		}
		if !p.keyword("on") {
			return nil, p.errf("expected ON")
		}
		for {
			prs, err := p.parsePredicateList()
			if err != nil {
				return nil, err
			}
			j.On = append(j.On, prs...)
			if !p.keyword("and") {
				break
			}
		}
		hasJoinCond := false
		for _, pr := range j.On {
			if pr.IsJoin() {
				hasJoinCond = true
			}
		}
		if !hasJoinCond {
			return nil, fmt.Errorf("query: JOIN %s has no column-to-column condition", j.Table.Name)
		}
		q.Joins = append(q.Joins, j)
	}
	if p.keyword("where") {
		for {
			prs, err := p.parsePredicateList()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, prs...)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("group") {
		if !p.keyword("by") {
			return nil, p.errf("expected BY after GROUP")
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("having") {
		for {
			h, err := p.parseHaving()
			if err != nil {
				return nil, err
			}
			q.Having = append(q.Having, h)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("order") {
		if !p.keyword("by") {
			return nil, p.errf("expected BY after ORDER")
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("query: expected number after LIMIT at offset %d", t.pos)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: invalid LIMIT %q", t.text)
		}
		q.Limit = n
	}
	p.symbol(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	return q, nil
}

var aggNames = map[string]AggFunc{
	"sum": AggSum, "count": AggCount, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToLower(t.text)]; ok && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.i += 2 // agg name and '('
			if agg == AggCount && p.symbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: AggCount, Star: true}, nil
			}
			expr, err := p.parseExpr()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Expr: expr}, nil
		}
	}
	expr, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: expr}, nil
}

var arithOps = map[string]ArithOp{"*": ArithMul, "+": ArithAdd, "-": ArithSub, "/": ArithDiv}

// parseExpr parses col or col-arith-col.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return Expr{}, err
	}
	t := p.cur()
	if t.kind == tokSymbol {
		if op, ok := arithOps[t.text]; ok {
			p.i++
			right, err := p.parseColumnRef()
			if err != nil {
				return Expr{}, err
			}
			return Expr{Binop: &BinaryExpr{Left: left, Right: right, Op: op}}, nil
		}
	}
	return Expr{Col: left}, nil
}

// reserved keywords cannot start a column reference.
var reserved = map[string]bool{
	"select": true, "from": true, "join": true, "on": true, "where": true,
	"group": true, "order": true, "by": true, "limit": true, "and": true,
	"asc": true, "desc": true, "between": true, "in": true, "having": true,
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t := p.cur()
	if t.kind != tokIdent || reserved[strings.ToLower(t.text)] {
		return ColumnRef{}, p.errf("expected column reference")
	}
	p.i++
	if p.symbol(".") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return ColumnRef{}, fmt.Errorf("query: expected column after %q. at offset %d", t.text, t2.pos)
		}
		return ColumnRef{Table: t.text, Column: t2.text}, nil
	}
	return ColumnRef{Column: t.text}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent || reserved[strings.ToLower(t.text)] {
		return TableRef{}, fmt.Errorf("query: expected table name at offset %d (near %q)", t.pos, t.text)
	}
	tr := TableRef{Name: t.text}
	a := p.cur()
	if a.kind == tokIdent && !reserved[strings.ToLower(a.text)] {
		tr.Alias = a.text
		p.i++
	}
	return tr, nil
}

var cmpOps = map[string]CmpOp{
	"=": OpEQ, "<>": OpNE, "!=": OpNE, "<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE,
}

// parsePredicateList parses one surface-syntax conjunct: a comparison, an
// IN list, or a BETWEEN (which expands to two conjuncts: >= lo AND <= hi).
func (p *parser) parsePredicateList() ([]Predicate, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if p.keyword("between") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if !p.keyword("and") {
			return nil, p.errf("expected AND in BETWEEN")
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return []Predicate{
			{Left: left, Op: OpGE, Lit: lo},
			{Left: left, Op: OpLE, Lit: hi},
		}, nil
	}
	if p.keyword("in") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		pr := Predicate{Left: left, Op: OpIN}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			pr.Set = append(pr.Set, lit)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return []Predicate{pr}, nil
	}
	t := p.next()
	op, ok := cmpOps[t.text]
	if t.kind != tokSymbol || !ok {
		return nil, fmt.Errorf("query: expected comparison operator at offset %d (near %q)", t.pos, t.text)
	}
	pr := Predicate{Left: left, Op: op}
	v := p.cur()
	switch v.kind {
	case tokNumber, tokString:
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		pr.Lit = lit
	case tokIdent:
		right, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		pr.Right = &right
	default:
		return nil, p.errf("expected literal or column on right side of predicate")
	}
	return []Predicate{pr}, nil
}

// parseOrderItem parses one ORDER BY key: a column or an aggregate call.
func (p *parser) parseOrderItem() (OrderItem, error) {
	t := p.cur()
	if t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToLower(t.text)]; ok &&
			p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.i += 2
			item := OrderItem{Agg: agg}
			if agg == AggCount && p.symbol("*") {
				item.Star = true
			} else {
				expr, err := p.parseExpr()
				if err != nil {
					return OrderItem{}, err
				}
				item.Expr = expr
			}
			if err := p.expectSymbol(")"); err != nil {
				return OrderItem{}, err
			}
			return item, nil
		}
	}
	c, err := p.parseColumnRef()
	if err != nil {
		return OrderItem{}, err
	}
	return OrderItem{Col: c}, nil
}

// parseHaving parses one HAVING conjunct: agg '(' expr ')' op literal.
func (p *parser) parseHaving() (HavingPred, error) {
	t := p.next()
	if t.kind != tokIdent {
		return HavingPred{}, fmt.Errorf("query: expected aggregate in HAVING at offset %d", t.pos)
	}
	agg, ok := aggNames[strings.ToLower(t.text)]
	if !ok {
		return HavingPred{}, fmt.Errorf("query: HAVING requires an aggregate, got %q at offset %d", t.text, t.pos)
	}
	if err := p.expectSymbol("("); err != nil {
		return HavingPred{}, err
	}
	h := HavingPred{Agg: agg}
	if agg == AggCount && p.symbol("*") {
		h.Star = true
	} else {
		expr, err := p.parseExpr()
		if err != nil {
			return HavingPred{}, err
		}
		h.Expr = expr
	}
	if err := p.expectSymbol(")"); err != nil {
		return HavingPred{}, err
	}
	o := p.next()
	op, ok := cmpOps[o.text]
	if o.kind != tokSymbol || !ok {
		return HavingPred{}, fmt.Errorf("query: expected comparison in HAVING at offset %d", o.pos)
	}
	h.Op = op
	lit, err := p.parseLiteral()
	if err != nil {
		return HavingPred{}, err
	}
	h.Lit = lit
	return h, nil
}

// parseLiteral parses a number or string constant.
func (p *parser) parseLiteral() (Literal, error) {
	v := p.next()
	switch v.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(v.text, 64)
		if err != nil {
			return Literal{}, fmt.Errorf("query: invalid number %q", v.text)
		}
		return NumLit(f), nil
	case tokString:
		return StrLit(v.text), nil
	}
	return Literal{}, fmt.Errorf("query: expected literal at offset %d (near %q)", v.pos, v.text)
}

// parseMapJoinHint parses "MAPJOIN(t1, t2, ...)" hint bodies.
func parseMapJoinHint(body string) ([]string, error) {
	s := strings.TrimSpace(body)
	lower := strings.ToLower(s)
	if !strings.HasPrefix(lower, "mapjoin") {
		return nil, fmt.Errorf("unsupported hint %q (only MAPJOIN)", s)
	}
	rest := strings.TrimSpace(s[len("mapjoin"):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return nil, fmt.Errorf("malformed MAPJOIN hint %q", s)
	}
	inner := rest[1 : len(rest)-1]
	var tables []string
	for _, part := range strings.Split(inner, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			return nil, fmt.Errorf("empty table in MAPJOIN hint %q", s)
		}
		tables = append(tables, name)
	}
	return tables, nil
}
