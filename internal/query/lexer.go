package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators: ( ) , . * + - / = <> < <= > >= !=
	tokHint   // /*+ ... */ optimizer hint; text carries the hint body
)

// token is one lexical unit with its source position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits HiveQL text into tokens. Keywords are returned as tokIdent;
// the parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises src or returns a positioned error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '/' && l.pos+2 < len(l.src) && l.src[l.pos+1] == '*' && l.src[l.pos+2] == '+':
			if err := l.lexHint(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		// /* ... */ block comments. /*+ ... */ is an optimizer hint and is
		// emitted as a token rather than skipped.
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			if l.pos+2 < len(l.src) && l.src[l.pos+2] == '+' {
				return // leave for lexHint via the main loop
			}
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
			continue
		}
		return
	}
}

// lexHint consumes a /*+ ... */ optimizer hint and emits its body.
func (l *lexer) lexHint() error {
	start := l.pos
	l.pos += 3 // "/*+"
	body := l.pos
	for l.pos+1 < len(l.src) {
		if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
			l.toks = append(l.toks, token{kind: tokHint, text: l.src[body:l.pos], pos: start})
			l.pos += 2
			return nil
		}
		l.pos++
	}
	return fmt.Errorf("query: unterminated hint at offset %d", start)
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("query: unterminated string literal at offset %d", start)
}

// twoCharSymbols are matched before single characters.
var twoCharSymbols = []string{"<>", "<=", ">=", "!="}

func (l *lexer) lexSymbol() bool {
	rest := l.src[l.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += len(s)
			return true
		}
	}
	switch rest[0] {
	case '(', ')', ',', '.', '*', '+', '-', '/', '=', '<', '>', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: rest[:1], pos: l.pos})
		l.pos++
		return true
	}
	return false
}
