package query

import (
	"strings"
	"testing"

	"saqp/internal/dataset"
)

func TestParseBetweenExpands(t *testing.T) {
	q, err := Parse(`SELECT a FROM t WHERE a BETWEEN 5 AND 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("BETWEEN expanded to %d predicates", len(q.Where))
	}
	if q.Where[0].Op != OpGE || q.Where[0].Lit.F != 5 {
		t.Fatalf("lower bound = %+v", q.Where[0])
	}
	if q.Where[1].Op != OpLE || q.Where[1].Lit.F != 10 {
		t.Fatalf("upper bound = %+v", q.Where[1])
	}
}

func TestParseBetweenInJoinOn(t *testing.T) {
	q, err := Parse(`SELECT a FROM t JOIN u ON x = y AND b BETWEEN 1 AND 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins[0].On) != 3 {
		t.Fatalf("ON conjuncts = %d, want join cond + 2 range bounds", len(q.Joins[0].On))
	}
}

func TestParseIN(t *testing.T) {
	q, err := Parse(`SELECT a FROM t WHERE a IN (1, 2, 3) AND b IN ('x', 'y')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("predicates = %d", len(q.Where))
	}
	p := q.Where[0]
	if p.Op != OpIN || len(p.Set) != 3 || p.Set[2].F != 3 {
		t.Fatalf("numeric IN = %+v", p)
	}
	s := q.Where[1]
	if s.Op != OpIN || len(s.Set) != 2 || !s.Set[0].IsString || s.Set[1].S != "y" {
		t.Fatalf("string IN = %+v", s)
	}
	// Round trip.
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("IN does not reparse: %v\n%s", err, q)
	}
}

func TestParseINErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT a FROM t WHERE a IN 1`,
		`SELECT a FROM t WHERE a IN ()`,
		`SELECT a FROM t WHERE a IN (1,)`,
		`SELECT a FROM t WHERE a BETWEEN 1 10`,
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestParseMapJoinHint(t *testing.T) {
	q, err := Parse(`SELECT /*+ MAPJOIN(n, s) */ ps_partkey FROM nation n
		JOIN supplier s ON s_nationkey = n_nationkey
		JOIN partsupp ps ON ps_suppkey = s_suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.MapJoinTables) != 2 || q.MapJoinTables[0] != "n" || q.MapJoinTables[1] != "s" {
		t.Fatalf("hint tables = %v", q.MapJoinTables)
	}
	// Rendered SQL keeps the hint and reparses.
	if !strings.Contains(q.String(), "MAPJOIN(") {
		t.Fatalf("hint lost in rendering: %s", q)
	}
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("hinted SQL does not reparse: %v", err)
	}
}

func TestParseHintErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT /*+ STREAMTABLE(a) */ x FROM t`,
		`SELECT /*+ MAPJOIN */ x FROM t`,
		`SELECT /*+ MAPJOIN() */ x FROM t`,
		`SELECT /*+ MAPJOIN(a, ) */ x FROM t`,
		`SELECT /*+ MAPJOIN(a x FROM t`,
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestParseBlockComment(t *testing.T) {
	q, err := Parse(`SELECT a /* plain comment */ FROM t WHERE /* another */ a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 {
		t.Fatal("block comment broke parsing")
	}
}

func TestResolveMapJoinHint(t *testing.T) {
	schemas := dataset.AllSchemas()
	q, err := Parse(`SELECT /*+ MAPJOIN(n) */ s_name FROM nation n JOIN supplier ON s_nationkey = n_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Resolve(q, schemas); err != nil {
		t.Fatal(err)
	}
	if q.MapJoinTables[0] != "nation" {
		t.Fatalf("hint alias not resolved: %v", q.MapJoinTables)
	}
	// Unknown hint table.
	q2, _ := Parse(`SELECT /*+ MAPJOIN(ghost) */ s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey`)
	if err := Resolve(q2, schemas); err == nil || !strings.Contains(err.Error(), "MAPJOIN") {
		t.Fatalf("want MAPJOIN resolve error, got %v", err)
	}
}

func TestResolveINColumns(t *testing.T) {
	schemas := dataset.AllSchemas()
	q, err := Parse(`SELECT l_orderkey FROM lineitem WHERE l_quantity IN (1, 2, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Resolve(q, schemas); err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Left.Table != "lineitem" {
		t.Fatal("IN predicate column not resolved")
	}
}
