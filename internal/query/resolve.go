package query

import (
	"fmt"

	"saqp/internal/dataset"
)

// Resolve binds a parsed query to base-table schemas: it checks that every
// referenced table exists, expands aliases, qualifies unqualified column
// references, and verifies every column exists in its table. On success the
// AST is rewritten in place so that every ColumnRef.Table holds the base
// table name (aliases are erased; statistics lookups key on base names).
//
// Self-joins under distinct aliases resolve to the same base table; the
// selectivity estimator treats both sides with the same statistics, which
// is exact for the paper's workload shapes.
func Resolve(q *Query, schemas map[string]*dataset.Schema) error {
	scope := make(map[string]*dataset.Schema) // label -> schema
	order := make([]string, 0, 4)             // labels in FROM order
	bind := func(tr TableRef) error {
		s, ok := schemas[tr.Name]
		if !ok {
			return fmt.Errorf("query: unknown table %q", tr.Name)
		}
		label := tr.Label()
		if _, dup := scope[label]; dup {
			return fmt.Errorf("query: duplicate table label %q", label)
		}
		scope[label] = s
		order = append(order, label)
		return nil
	}
	if err := bind(q.From); err != nil {
		return err
	}
	for _, j := range q.Joins {
		if err := bind(j.Table); err != nil {
			return err
		}
	}

	resolveCol := func(c *ColumnRef) error {
		if c.Table != "" {
			s, ok := scope[c.Table]
			if !ok {
				// Maybe the query used the base name while FROM used an alias.
				if s2, ok2 := schemas[c.Table]; ok2 {
					found := false
					for _, lbl := range order {
						if scope[lbl].Name == c.Table {
							found = true
							break
						}
					}
					if !found {
						return fmt.Errorf("query: table %q not in FROM clause", c.Table)
					}
					s = s2
				} else {
					return fmt.Errorf("query: unknown table label %q", c.Table)
				}
			}
			if s.Column(c.Column) == nil {
				return fmt.Errorf("query: table %q has no column %q", s.Name, c.Column)
			}
			c.Table = s.Name
			return nil
		}
		// Unqualified: must be unique across the scope.
		var owner *dataset.Schema
		for _, lbl := range order {
			s := scope[lbl]
			if s.Column(c.Column) != nil {
				if owner != nil && owner.Name != s.Name {
					return fmt.Errorf("query: ambiguous column %q (in %q and %q)", c.Column, owner.Name, s.Name)
				}
				owner = s
			}
		}
		if owner == nil {
			return fmt.Errorf("query: unknown column %q", c.Column)
		}
		c.Table = owner.Name
		return nil
	}

	resolveExpr := func(e *Expr) error {
		if e.Binop != nil {
			if err := resolveCol(&e.Binop.Left); err != nil {
				return err
			}
			return resolveCol(&e.Binop.Right)
		}
		return resolveCol(&e.Col)
	}

	for i := range q.Select {
		if q.Select[i].Star {
			continue
		}
		if err := resolveExpr(&q.Select[i].Expr); err != nil {
			return err
		}
	}
	resolvePred := func(p *Predicate) error {
		if err := resolveCol(&p.Left); err != nil {
			return err
		}
		if p.Right != nil {
			return resolveCol(p.Right)
		}
		return nil
	}
	for i := range q.Joins {
		for k := range q.Joins[i].On {
			if err := resolvePred(&q.Joins[i].On[k]); err != nil {
				return err
			}
		}
	}
	for i := range q.Where {
		if err := resolvePred(&q.Where[i]); err != nil {
			return err
		}
	}
	for i := range q.GroupBy {
		if err := resolveCol(&q.GroupBy[i]); err != nil {
			return err
		}
	}
	for i := range q.Having {
		if q.Having[i].Star {
			continue
		}
		if err := resolveExpr(&q.Having[i].Expr); err != nil {
			return err
		}
	}
	for i := range q.OrderBy {
		if q.OrderBy[i].Star {
			continue
		}
		if q.OrderBy[i].IsAggregate() {
			if err := resolveExpr(&q.OrderBy[i].Expr); err != nil {
				return err
			}
			continue
		}
		if err := resolveCol(&q.OrderBy[i].Col); err != nil {
			return err
		}
	}
	// MAPJOIN hints name table labels; rewrite them to base names.
	for i, label := range q.MapJoinTables {
		if s, ok := scope[label]; ok {
			q.MapJoinTables[i] = s.Name
			continue
		}
		// The hint may already use the base name under an alias.
		found := false
		for _, lbl := range order {
			if scope[lbl].Name == label {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query: MAPJOIN hint names unknown table %q", label)
		}
	}
	// Erase aliases in table references too, so the planner sees base names.
	q.From.Alias = ""
	for i := range q.Joins {
		q.Joins[i].Table.Alias = ""
	}
	return nil
}
