// Package query defines the abstract syntax and a parser for the HiveQL
// subset this reproduction compiles: single-block SELECT queries with
// projections, aggregates, inner equi-joins, conjunctive predicates,
// GROUP BY, ORDER BY and LIMIT — the shapes the paper's three job
// categories (Extract, Groupby, Join) are compiled from.
//
// The parser exists so examples and the CLI can accept textual queries;
// the workload generator constructs ASTs directly.
package query
