package predict

import (
	"testing"

	"saqp/internal/plan"
)

var (
	hotSinkFloat float64
	hotSinkModel *Model
)

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for model evaluation: zero heap allocations per call.
func TestHotPathAllocs(t *testing.T) {
	m := &Model{Theta: []float64{0.5, 1, 2, 3}}
	feats := []float64{1, 2, 3}
	jm := &JobModel{Pooled: m, PerOp: map[plan.JobType]*Model{plan.Join: m}}
	tm := &TaskModel{
		MapModel: m, ReduceModel: m,
		MapPerOp:    map[plan.JobType]*Model{plan.Join: m},
		ReducePerOp: map[plan.JobType]*Model{},
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"Model.Predict", func() { hotSinkFloat = m.Predict(feats) }},
		{"JobModel.modelFor", func() { hotSinkModel = jm.modelFor(plan.Extract) }},
		{"TaskModel.taskModelFor", func() { hotSinkModel = tm.taskModelFor(plan.Join, true) }},
		{"opIndicator", func() { hotSinkFloat = opIndicator(plan.Join) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", c.name, n)
		}
	}
}
