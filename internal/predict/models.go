package predict

import (
	"fmt"
	"math"

	"saqp/internal/core/floats"
	"saqp/internal/plan"
	"saqp/internal/selectivity"
)

// opIndicator is the paper's operator feature O: 1 for Join, 0 otherwise
// (Table 1).
//
//saqp:hotpath
func opIndicator(op plan.JobType) float64 {
	if op == plan.Join {
		return 1
	}
	return 0
}

// JobFeatures builds the Eq. 8 feature vector from a job's estimated data
// flow: [D_in, D_med, D_out, O·P(1−P)·D_med].
func JobFeatures(je *selectivity.JobEstimate) []float64 {
	o := opIndicator(je.Job.Type)
	return []float64{
		je.InBytes,
		je.MedBytes,
		je.OutBytes,
		o * je.PFactor() * je.MedBytes,
	}
}

// TaskFeatures builds the Eq. 9 feature vector for one task:
// [TD_in, TD_out, O·P(1−P)·TD_in].
func TaskFeatures(op plan.JobType, inBytes, outBytes, pFactor float64) []float64 {
	o := opIndicator(op)
	return []float64{inBytes, outBytes, o * pFactor * inBytes}
}

// JobSample is one observed (job, execution time) pair for training.
type JobSample struct {
	Op       plan.JobType
	Features []float64
	Seconds  float64
}

// TaskSample is one observed (task, execution time) pair for training.
type TaskSample struct {
	Op       plan.JobType
	Reduce   bool
	Features []float64
	Seconds  float64
}

// JobModel is the fitted Eq. 8 job execution-time model. The paper
// "include[s] the operator type as part of our generalized multivariate
// model"; realising that as full operator interaction terms is equivalent
// to per-operator coefficient vectors, which is how the model is stored.
// Pooled holds the operator-agnostic fallback for types unseen in training.
type JobModel struct {
	PerOp  map[plan.JobType]*Model
	Pooled *Model
}

// FitJobModel trains Eq. 8 over the job corpus, with relative weighting so
// the model is as accurate on the many small jobs as on the few huge ones.
func FitJobModel(samples []JobSample) (*JobModel, error) {
	raw := make([]Sample, len(samples))
	byOp := map[plan.JobType][]Sample{}
	for i, s := range samples {
		raw[i] = Sample{Features: s.Features, Target: s.Seconds}
		byOp[s.Op] = append(byOp[s.Op], raw[i])
	}
	pooled, err := FitRelative(raw)
	if err != nil {
		return nil, fmt.Errorf("predict: job model: %w", err)
	}
	jm := &JobModel{PerOp: map[plan.JobType]*Model{}, Pooled: pooled}
	for op, ss := range byOp {
		// Operators with too few observations fall back to the pooled fit.
		m, err := FitRelative(ss)
		if err != nil {
			continue
		}
		jm.PerOp[op] = m
	}
	return jm, nil
}

// modelFor returns the operator's model, or the pooled fallback.
//
//saqp:hotpath
func (jm *JobModel) modelFor(op plan.JobType) *Model {
	if m, ok := jm.PerOp[op]; ok {
		return m
	}
	return jm.Pooled
}

// PredictJob returns the predicted execution time for a job estimate.
func (jm *JobModel) PredictJob(je *selectivity.JobEstimate) float64 {
	return math.Max(0, jm.modelFor(je.Job.Type).Predict(JobFeatures(je)))
}

// TaskModel is the fitted Eq. 9 task-time model. Following Section 4.2
// ("based on the task type, the operator type, job scale, the per-task
// input size and output size"), coefficients are keyed by (phase,
// operator); phase-pooled models serve as fallbacks for unseen operators.
type TaskModel struct {
	MapModel    *Model // phase-pooled fallback
	ReduceModel *Model
	MapPerOp    map[plan.JobType]*Model
	ReducePerOp map[plan.JobType]*Model
}

// FitTaskModel trains the Eq. 9 models over the task corpus.
func FitTaskModel(samples []TaskSample) (*TaskModel, error) {
	var maps, reds []Sample
	mapsOp := map[plan.JobType][]Sample{}
	redsOp := map[plan.JobType][]Sample{}
	for _, s := range samples {
		raw := Sample{Features: s.Features, Target: s.Seconds}
		if s.Reduce {
			reds = append(reds, raw)
			redsOp[s.Op] = append(redsOp[s.Op], raw)
		} else {
			maps = append(maps, raw)
			mapsOp[s.Op] = append(mapsOp[s.Op], raw)
		}
	}
	mm, err := FitRelative(maps)
	if err != nil {
		return nil, fmt.Errorf("predict: map task model: %w", err)
	}
	rm, err := FitRelative(reds)
	if err != nil {
		return nil, fmt.Errorf("predict: reduce task model: %w", err)
	}
	tm := &TaskModel{
		MapModel: mm, ReduceModel: rm,
		MapPerOp:    map[plan.JobType]*Model{},
		ReducePerOp: map[plan.JobType]*Model{},
	}
	for op, ss := range mapsOp {
		if m, err := FitRelative(ss); err == nil {
			tm.MapPerOp[op] = m
		}
	}
	for op, ss := range redsOp {
		if m, err := FitRelative(ss); err == nil {
			tm.ReducePerOp[op] = m
		}
	}
	return tm, nil
}

// taskModelFor returns the most specific fitted model for a task class.
//
//saqp:hotpath
func (tm *TaskModel) taskModelFor(op plan.JobType, reduce bool) *Model {
	if reduce {
		if m, ok := tm.ReducePerOp[op]; ok {
			return m
		}
		return tm.ReduceModel
	}
	if m, ok := tm.MapPerOp[op]; ok {
		return m
	}
	return tm.MapModel
}

// PredictTask implements cluster.TaskTimePredictor: predicted seconds for
// one task from its semantics-derived features.
func (tm *TaskModel) PredictTask(op plan.JobType, reduce bool, inBytes, outBytes, pFactor float64) float64 {
	f := TaskFeatures(op, inBytes, outBytes, pFactor)
	v := tm.taskModelFor(op, reduce).Predict(f)
	if v < 0.1 {
		v = 0.1 // tasks never finish instantly: JVM startup floors them
	}
	return v
}

// Overheads carries the fixed cluster costs the task-composition predictor
// adds on top of task work: per-task dispatch latency and per-job
// initialisation (Section 4.3: "... plus scheduling overheads").
type Overheads struct {
	SchedPerTaskSec float64
	JobInitSec      float64
}

// DefaultOverheads matches cluster.DefaultConfig.
func DefaultOverheads() Overheads {
	return Overheads{SchedPerTaskSec: 0.5, JobInitSec: 10}
}

// Slots carries the per-phase slot capacities of the target cluster
// (Hadoop-1 task trackers partition containers into map and reduce slots).
type Slots struct {
	Map, Reduce int
}

// DefaultSlots matches cluster.DefaultConfig (9 nodes × 8 map + 4 reduce).
func DefaultSlots() Slots { return Slots{Map: 72, Reduce: 36} }

// PredictJobFromTasks approximates a job's execution time from the task
// models, the way Section 4.2/4.3 scales to jobs beyond the training range:
// wave count × per-task time per phase, plus scheduling overheads.
func (tm *TaskModel) PredictJobFromTasks(je *selectivity.JobEstimate, slots Slots, ov Overheads) float64 {
	if slots.Map < 1 {
		slots.Map = 1
	}
	if slots.Reduce < 1 {
		slots.Reduce = 1
	}
	pf := je.PFactor()
	nm := je.NumMaps
	if nm < 1 {
		nm = 1
	}
	// Per-map time: task-count-weighted mean over the job's map groups
	// (the two sides of a join have different per-task volumes).
	mt := tm.meanMapTime(je, pf)
	waves := math.Ceil(float64(nm) / float64(slots.Map))
	total := ov.JobInitSec + waves*(mt+ov.SchedPerTaskSec)
	if nr := je.NumReduces; nr > 0 {
		// The reduce phase finishes when its slowest (hottest-partition)
		// task does: waves of the typical task plus the hot remainder.
		typ, hot := tm.reduceTimes(je, pf)
		rWaves := math.Ceil(float64(nr) / float64(slots.Reduce))
		total += rWaves*(typ+ov.SchedPerTaskSec) + math.Max(0, hot-typ)
	}
	return total
}

// reduceTimes returns the typical and hottest predicted reduce task times.
func (tm *TaskModel) reduceTimes(je *selectivity.JobEstimate, pf float64) (typ, hot float64) {
	nr := je.NumReduces
	if nr < 1 {
		return 0, 0
	}
	if len(je.ReduceGroups) == 0 {
		t := tm.PredictTask(je.Job.Type, true, je.MedBytes/float64(nr), je.OutBytes/float64(nr), pf)
		return t, t
	}
	var maxT float64
	var sum float64
	var n int
	for _, g := range je.ReduceGroups {
		t := tm.PredictTask(je.Job.Type, true, g.InBytes, g.OutBytes, pf)
		if t > maxT {
			maxT = t
		}
		sum += t * float64(g.Count)
		n += g.Count
	}
	return sum / float64(n), maxT
}

// meanMapTime returns the task-count-weighted mean predicted map time.
func (tm *TaskModel) meanMapTime(je *selectivity.JobEstimate, pf float64) float64 {
	if len(je.MapGroups) == 0 {
		nm := je.NumMaps
		if nm < 1 {
			nm = 1
		}
		return tm.PredictTask(je.Job.Type, false, je.InBytes/float64(nm), je.MedBytes/float64(nm), pf)
	}
	var sum float64
	var n int
	for _, g := range je.MapGroups {
		sum += float64(g.Count) * tm.PredictTask(je.Job.Type, false, g.InBytes, g.OutBytes, pf)
		n += g.Count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PredictQuery approximates a whole query's execution time as the sum of
// task-model job times along the DAG's critical path (Section 5.4).
func (tm *TaskModel) PredictQuery(qe *selectivity.QueryEstimate, slots Slots, ov Overheads) float64 {
	cost := func(j *plan.Job) float64 {
		je := qe.ByID[j.ID]
		if je == nil {
			return 0
		}
		return tm.PredictJobFromTasks(je, slots, ov)
	}
	total, _ := qe.DAG.CriticalPath(cost)
	return total
}

// WRD computes a query's Weighted Resource Demand (Eq. 10) from the task
// models: Σ_jobs MT_i·N_Mi + RT_i·N_Ri.
func (tm *TaskModel) WRD(qe *selectivity.QueryEstimate) float64 {
	var total float64
	for _, je := range qe.Jobs {
		pf := je.PFactor()
		nm := je.NumMaps
		if nm < 1 {
			nm = 1
		}
		total += float64(nm) * tm.meanMapTime(je, pf)
		if nr := je.NumReduces; nr > 0 {
			typ, hot := tm.reduceTimes(je, pf)
			total += float64(nr-1)*typ + hot
		}
	}
	return total
}

// GroupAccuracy reports R² and average relative error per operator group —
// the rows of Tables 3, 4 and 5.
type GroupAccuracy struct {
	Op       string
	N        int
	RSquared float64
	AvgError float64
}

// JobAccuracyByOperator evaluates a job model per operator type plus an
// overall row, reproducing Table 3's structure. Each sample is scored with
// the model its operator dispatches to.
func (jm *JobModel) JobAccuracyByOperator(samples []JobSample) []GroupAccuracy {
	groups := map[string][]predActual{}
	for _, s := range samples {
		p := math.Max(0, jm.modelFor(s.Op).Predict(s.Features))
		groups[s.Op.String()] = append(groups[s.Op.String()], predActual{p, s.Seconds})
		groups["All"] = append(groups["All"], predActual{p, s.Seconds})
	}
	var out []GroupAccuracy
	for _, name := range []string{plan.Groupby.String(), plan.Join.String(), plan.Extract.String(), "All"} {
		ps, ok := groups[name]
		if !ok {
			continue
		}
		out = append(out, summarize(name, ps))
	}
	return out
}

// TaskAccuracyByOperator evaluates one phase's task model per operator
// type plus a "Together" row, reproducing Tables 4 and 5. Each sample is
// scored with the model its (phase, operator) class dispatches to.
func (tm *TaskModel) TaskAccuracyByOperator(samples []TaskSample, reduce bool) []GroupAccuracy {
	groups := map[string][]predActual{}
	for _, s := range samples {
		if s.Reduce != reduce {
			continue
		}
		p := tm.taskModelFor(s.Op, reduce).Predict(s.Features)
		if p < 0.1 {
			p = 0.1
		}
		groups[s.Op.String()] = append(groups[s.Op.String()], predActual{p, s.Seconds})
		groups["Together"] = append(groups["Together"], predActual{p, s.Seconds})
	}
	order := []string{plan.Join.String(), plan.Groupby.String(), plan.Extract.String(), "Together"}
	var out []GroupAccuracy
	for _, name := range order {
		ps, ok := groups[name]
		if !ok {
			continue
		}
		out = append(out, summarize(name, ps))
	}
	return out
}

// PredictSample scores one training sample with the model its operator
// dispatches to, applying the same non-negativity clamp as PredictJob —
// exactly how JobAccuracyByOperator scores the sample.
func (jm *JobModel) PredictSample(s JobSample) float64 {
	return math.Max(0, jm.modelFor(s.Op).Predict(s.Features))
}

// PredictTaskSample scores one task sample with its (phase, operator)
// model, floored at the JVM-startup minimum like PredictTask — exactly
// how TaskAccuracyByOperator scores the sample.
func (tm *TaskModel) PredictTaskSample(s TaskSample) float64 {
	p := tm.taskModelFor(s.Op, s.Reduce).Predict(s.Features)
	if p < 0.1 {
		p = 0.1
	}
	return p
}

// predActual pairs a prediction with its observation.
type predActual struct{ pred, actual float64 }

// summarize computes the Table 3/4/5 metrics for one group.
func summarize(name string, ps []predActual) GroupAccuracy {
	var mean float64
	for _, p := range ps {
		mean += p.actual
	}
	mean /= float64(len(ps))
	var ssRes, ssTot, relSum float64
	rel := 0
	for _, p := range ps {
		d := p.actual - p.pred
		ssRes += d * d
		t := p.actual - mean
		ssTot += t * t
		if p.actual > 0 {
			relSum += math.Abs(d) / p.actual
			rel++
		}
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if floats.ApproxEqual(ssRes, 0, 1e-12) {
		r2 = 1
	}
	avg := 0.0
	if rel > 0 {
		avg = relSum / float64(rel)
	}
	return GroupAccuracy{Op: name, N: len(ps), RSquared: r2, AvgError: avg}
}
