package predict

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"saqp/internal/sim"
)

func TestFitRecoversExactCoefficients(t *testing.T) {
	// Noise-free synthetic data: OLS must recover the exact plane.
	r := sim.New(1)
	truth := []float64{3, 1.5, -2, 0.25}
	var samples []Sample
	for i := 0; i < 200; i++ {
		f := []float64{r.Range(0, 100), r.Range(-50, 50), r.Range(0, 10)}
		y := truth[0] + truth[1]*f[0] + truth[2]*f[1] + truth[3]*f[2]
		samples = append(samples, Sample{Features: f, Target: y})
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range truth {
		if math.Abs(m.Theta[i]-want) > 1e-6 {
			t.Fatalf("theta[%d] = %v, want %v", i, m.Theta[i], want)
		}
	}
	if r2 := m.RSquared(samples); math.Abs(r2-1) > 1e-9 {
		t.Fatalf("R² = %v on noise-free data", r2)
	}
	if e := m.AvgRelError(samples); e > 1e-6 {
		t.Fatalf("avg error = %v on noise-free data", e)
	}
}

func TestFitWithNoise(t *testing.T) {
	r := sim.New(2)
	var samples []Sample
	for i := 0; i < 2000; i++ {
		x := r.Range(0, 100)
		y := 5 + 2*x + r.Normal(0, 3)
		samples = append(samples, Sample{Features: []float64{x}, Target: y})
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta[1]-2) > 0.05 {
		t.Fatalf("slope = %v, want ~2", m.Theta[1])
	}
	r2 := m.RSquared(samples)
	if r2 < 0.9 || r2 > 1 {
		t.Fatalf("R² = %v, want high but < 1", r2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty fit should fail")
	}
	// Fewer samples than coefficients.
	s := []Sample{{Features: []float64{1, 2, 3}, Target: 1}}
	if _, err := Fit(s); err == nil {
		t.Fatal("underdetermined fit should fail")
	}
	// Inconsistent widths.
	bad := []Sample{
		{Features: []float64{1}, Target: 1},
		{Features: []float64{1, 2}, Target: 2},
		{Features: []float64{3}, Target: 3},
	}
	if _, err := Fit(bad); err == nil {
		t.Fatal("ragged features should fail")
	}
}

func TestFitCollinearSurvivesViaRidge(t *testing.T) {
	// Perfectly duplicated feature: the tiny ridge keeps it solvable and
	// predictions exact even though individual coefficients are not unique.
	r := sim.New(3)
	var samples []Sample
	for i := 0; i < 100; i++ {
		x := r.Range(0, 10)
		samples = append(samples, Sample{Features: []float64{x, x}, Target: 7 * x})
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2, 2}); math.Abs(p-14) > 0.01 {
		t.Fatalf("collinear prediction = %v, want 14", p)
	}
}

func TestRSquaredRange(t *testing.T) {
	samples := []Sample{
		{Features: []float64{1}, Target: 10},
		{Features: []float64{2}, Target: 20},
		{Features: []float64{3}, Target: 30},
	}
	// A deliberately wrong model: R² can be negative.
	wrong := &Model{Theta: []float64{100, -10}}
	if r2 := wrong.RSquared(samples); r2 >= 0 {
		t.Fatalf("wrong model R² = %v, expected negative", r2)
	}
	// Constant targets: R² defined as 1 for perfect, 0 otherwise.
	flat := []Sample{{Features: []float64{1}, Target: 5}, {Features: []float64{2}, Target: 5}}
	perfect := &Model{Theta: []float64{5, 0}}
	if perfect.RSquared(flat) != 1 {
		t.Fatal("perfect constant fit should be R²=1")
	}
	if wrong.RSquared(nil) != 0 {
		t.Fatal("empty sample R² should be 0")
	}
}

func TestAvgRelErrorSkipsNonPositive(t *testing.T) {
	m := &Model{Theta: []float64{0, 1}}
	samples := []Sample{
		{Features: []float64{10}, Target: 10}, // exact
		{Features: []float64{5}, Target: 0},   // skipped
	}
	if e := m.AvgRelError(samples); e != 0 {
		t.Fatalf("avg error = %v", e)
	}
	if e := m.AvgRelError(nil); e != 0 {
		t.Fatal("empty avg error should be 0")
	}
}

func TestPredictRejectsWidthMismatch(t *testing.T) {
	m := &Model{Theta: []float64{1, 2}}
	tests := []struct {
		name     string
		features []float64
		wantErr  bool
		want     float64
	}{
		{"exact width", []float64{3}, false, 7},
		{"too wide", []float64{3, 99, 99}, true, 0},
		{"too narrow", nil, true, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			y, err := m.PredictChecked(tc.features)
			if tc.wantErr {
				if !errors.Is(err, ErrFeatureWidth) {
					t.Fatalf("PredictChecked err = %v, want ErrFeatureWidth", err)
				}
			} else if err != nil {
				t.Fatalf("PredictChecked err = %v", err)
			}
			if y != tc.want {
				t.Fatalf("PredictChecked = %v, want %v", y, tc.want)
			}
			// The unchecked variant degrades to 0 instead of silently
			// truncating or reading past the vector.
			if got := m.Predict(tc.features); got != tc.want {
				t.Fatalf("Predict = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOLSPropertyAffineInvariance(t *testing.T) {
	// Scaling all targets by c scales predictions by c.
	r := sim.New(4)
	f := func(cRaw uint8) bool {
		c := float64(cRaw%50) + 1
		var s1, s2 []Sample
		rr := sim.New(5)
		for i := 0; i < 50; i++ {
			x := rr.Range(0, 10)
			y := 2 + 3*x + rr.Normal(0, 0.1)
			s1 = append(s1, Sample{Features: []float64{x}, Target: y})
			s2 = append(s2, Sample{Features: []float64{x}, Target: c * y})
		}
		m1, err1 := Fit(s1)
		m2, err2 := Fit(s2)
		if err1 != nil || err2 != nil {
			return false
		}
		p1 := m1.Predict([]float64{5})
		p2 := m2.Predict([]float64{5})
		return math.Abs(p2-c*p1) < 1e-6*math.Abs(c*p1)+1e-9
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
