package predict

import (
	"encoding/json"
	"fmt"

	"saqp/internal/plan"
)

// Trained models are small (a handful of coefficient vectors); persisting
// them lets a deployment train once on its historical corpus and load the
// coefficients at query-submission time — the paper's offline-training /
// online-prediction split.

// savedModel is the serialised form of one coefficient vector.
type savedModel struct {
	Theta []float64 `json:"theta"`
}

// savedBundle is the on-disk layout of a trained model set.
type savedBundle struct {
	Version     int                    `json:"version"`
	JobPooled   *savedModel            `json:"job_pooled"`
	JobPerOp    map[string]*savedModel `json:"job_per_op"`
	MapPooled   *savedModel            `json:"map_pooled"`
	MapPerOp    map[string]*savedModel `json:"map_per_op"`
	RedPooled   *savedModel            `json:"reduce_pooled"`
	RedPerOp    map[string]*savedModel `json:"reduce_per_op"`
	Description string                 `json:"description,omitempty"`
}

// currentVersion is bumped on incompatible layout changes.
const currentVersion = 1

func toSaved(m *Model) *savedModel {
	if m == nil {
		return nil
	}
	return &savedModel{Theta: append([]float64{}, m.Theta...)}
}

func fromSaved(s *savedModel) *Model {
	if s == nil || len(s.Theta) == 0 {
		return nil
	}
	return &Model{Theta: append([]float64{}, s.Theta...)}
}

// opName round-trips operator keys as stable strings.
var opByName = map[string]plan.JobType{
	plan.Extract.String(): plan.Extract,
	plan.Groupby.String(): plan.Groupby,
	plan.Join.String():    plan.Join,
}

func savePerOp(m map[plan.JobType]*Model) map[string]*savedModel {
	out := make(map[string]*savedModel, len(m))
	for op, mm := range m {
		out[op.String()] = toSaved(mm)
	}
	return out
}

func loadPerOp(m map[string]*savedModel) (map[plan.JobType]*Model, error) {
	out := make(map[plan.JobType]*Model, len(m))
	for name, sm := range m {
		op, ok := opByName[name]
		if !ok {
			return nil, fmt.Errorf("predict: unknown operator %q in saved models", name)
		}
		if mm := fromSaved(sm); mm != nil {
			out[op] = mm
		}
	}
	return out, nil
}

// SaveModels serialises a trained (job, task) model pair to JSON.
func SaveModels(jm *JobModel, tm *TaskModel, description string) ([]byte, error) {
	if jm == nil || tm == nil {
		return nil, fmt.Errorf("predict: cannot save nil models")
	}
	b := savedBundle{
		Version:     currentVersion,
		Description: description,
		JobPooled:   toSaved(jm.Pooled),
		JobPerOp:    savePerOp(jm.PerOp),
		MapPooled:   toSaved(tm.MapModel),
		MapPerOp:    savePerOp(tm.MapPerOp),
		RedPooled:   toSaved(tm.ReduceModel),
		RedPerOp:    savePerOp(tm.ReducePerOp),
	}
	return json.MarshalIndent(b, "", "  ")
}

// LoadModels parses a bundle produced by SaveModels.
func LoadModels(data []byte) (*JobModel, *TaskModel, error) {
	var b savedBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("predict: parsing saved models: %w", err)
	}
	if b.Version != currentVersion {
		return nil, nil, fmt.Errorf("predict: saved models version %d, want %d", b.Version, currentVersion)
	}
	jm := &JobModel{Pooled: fromSaved(b.JobPooled)}
	if jm.Pooled == nil {
		return nil, nil, fmt.Errorf("predict: saved bundle lacks a pooled job model")
	}
	var err error
	if jm.PerOp, err = loadPerOp(b.JobPerOp); err != nil {
		return nil, nil, err
	}
	tm := &TaskModel{MapModel: fromSaved(b.MapPooled), ReduceModel: fromSaved(b.RedPooled)}
	if tm.MapModel == nil || tm.ReduceModel == nil {
		return nil, nil, fmt.Errorf("predict: saved bundle lacks pooled task models")
	}
	if tm.MapPerOp, err = loadPerOp(b.MapPerOp); err != nil {
		return nil, nil, err
	}
	if tm.ReducePerOp, err = loadPerOp(b.RedPerOp); err != nil {
		return nil, nil, err
	}
	return jm, tm, nil
}
