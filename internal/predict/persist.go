package predict

import (
	"encoding/json"
	"errors"
	"fmt"

	"saqp/internal/plan"
)

// Trained models are small (a handful of coefficient vectors); persisting
// them lets a deployment train once on its historical corpus and load the
// coefficients at query-submission time — the paper's offline-training /
// online-prediction split.

// savedModel is the serialised form of one coefficient vector.
type savedModel struct {
	Theta []float64 `json:"theta"`
}

// RegistryMeta is the model-lifecycle metadata a V2 bundle carries: the
// registry version counter the bundle was serving as, the number of
// feedback samples absorbed up to that point, and the trailing window of
// per-job relative errors that justified (or preceded) its retirement.
// V1 bundles predate the lifecycle subsystem and load with nil metadata.
type RegistryMeta struct {
	ModelVersion int       `json:"model_version"`
	Samples      int       `json:"samples"`
	ErrorWindow  []float64 `json:"error_window,omitempty"`
}

// savedBundle is the on-disk layout of a trained model set.
type savedBundle struct {
	Version     int                    `json:"version"`
	JobPooled   *savedModel            `json:"job_pooled"`
	JobPerOp    map[string]*savedModel `json:"job_per_op"`
	MapPooled   *savedModel            `json:"map_pooled"`
	MapPerOp    map[string]*savedModel `json:"map_per_op"`
	RedPooled   *savedModel            `json:"reduce_pooled"`
	RedPerOp    map[string]*savedModel `json:"reduce_per_op"`
	Description string                 `json:"description,omitempty"`
	// Registry is the V2 addition; absent (nil) in V1 bundles.
	Registry *RegistryMeta `json:"registry,omitempty"`
}

// Bundle layout versions. V1 is the original coefficient-only layout;
// V2 adds the optional registry lifecycle metadata. Loading accepts
// both; saving always writes the current version.
const (
	versionV1      = 1
	currentVersion = 2
)

// ErrVersion is returned (wrapped, with the offending version number)
// when a saved bundle declares a layout version this build does not
// understand.
var ErrVersion = errors.New("predict: unsupported saved-models version")

func toSaved(m *Model) *savedModel {
	if m == nil {
		return nil
	}
	return &savedModel{Theta: append([]float64{}, m.Theta...)}
}

func fromSaved(s *savedModel) *Model {
	if s == nil || len(s.Theta) == 0 {
		return nil
	}
	return &Model{Theta: append([]float64{}, s.Theta...)}
}

// opName round-trips operator keys as stable strings.
var opByName = map[string]plan.JobType{
	plan.Extract.String(): plan.Extract,
	plan.Groupby.String(): plan.Groupby,
	plan.Join.String():    plan.Join,
}

func savePerOp(m map[plan.JobType]*Model) map[string]*savedModel {
	out := make(map[string]*savedModel, len(m))
	for op, mm := range m {
		out[op.String()] = toSaved(mm)
	}
	return out
}

func loadPerOp(m map[string]*savedModel) (map[plan.JobType]*Model, error) {
	out := make(map[plan.JobType]*Model, len(m))
	for name, sm := range m {
		op, ok := opByName[name]
		if !ok {
			return nil, fmt.Errorf("predict: unknown operator %q in saved models", name)
		}
		if mm := fromSaved(sm); mm != nil {
			out[op] = mm
		}
	}
	return out, nil
}

// SaveModels serialises a trained (job, task) model pair to JSON with no
// lifecycle metadata. Equivalent to SaveBundle(jm, tm, description, nil).
func SaveModels(jm *JobModel, tm *TaskModel, description string) ([]byte, error) {
	return SaveBundle(jm, tm, description, nil)
}

// SaveBundle serialises a trained (job, task) model pair to a V2 JSON
// bundle, optionally carrying the model-lifecycle metadata the registry
// (internal/learn) stamps on champion snapshots.
func SaveBundle(jm *JobModel, tm *TaskModel, description string, meta *RegistryMeta) ([]byte, error) {
	if jm == nil || tm == nil {
		return nil, fmt.Errorf("predict: cannot save nil models")
	}
	b := savedBundle{
		Version:     currentVersion,
		Description: description,
		JobPooled:   toSaved(jm.Pooled),
		JobPerOp:    savePerOp(jm.PerOp),
		MapPooled:   toSaved(tm.MapModel),
		MapPerOp:    savePerOp(tm.MapPerOp),
		RedPooled:   toSaved(tm.ReduceModel),
		RedPerOp:    savePerOp(tm.ReducePerOp),
		Registry:    meta,
	}
	return json.MarshalIndent(b, "", "  ")
}

// LoadModels parses a bundle produced by SaveModels or SaveBundle,
// discarding any lifecycle metadata. See LoadBundle for version rules.
func LoadModels(data []byte) (*JobModel, *TaskModel, error) {
	jm, tm, _, err := LoadBundle(data)
	return jm, tm, err
}

// LoadBundle parses a saved bundle of either layout version: V1 bundles
// (coefficients only) load with nil metadata — the V1→V2 migration is
// exactly "no lifecycle history" — while V2 bundles also return their
// RegistryMeta. Unknown versions fail with a wrapped ErrVersion.
func LoadBundle(data []byte) (*JobModel, *TaskModel, *RegistryMeta, error) {
	var b savedBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, nil, fmt.Errorf("predict: parsing saved models: %w", err)
	}
	switch b.Version {
	case versionV1:
		// Pre-lifecycle layout: same coefficient fields, never any
		// metadata (ignore a stray registry object rather than trusting it).
		b.Registry = nil
	case currentVersion:
	default:
		return nil, nil, nil, fmt.Errorf("%w: got %d, support %d through %d",
			ErrVersion, b.Version, versionV1, currentVersion)
	}
	jm := &JobModel{Pooled: fromSaved(b.JobPooled)}
	if jm.Pooled == nil {
		return nil, nil, nil, fmt.Errorf("predict: saved bundle lacks a pooled job model")
	}
	var err error
	if jm.PerOp, err = loadPerOp(b.JobPerOp); err != nil {
		return nil, nil, nil, err
	}
	tm := &TaskModel{MapModel: fromSaved(b.MapPooled), ReduceModel: fromSaved(b.RedPooled)}
	if tm.MapModel == nil || tm.ReduceModel == nil {
		return nil, nil, nil, fmt.Errorf("predict: saved bundle lacks pooled task models")
	}
	if tm.MapPerOp, err = loadPerOp(b.MapPerOp); err != nil {
		return nil, nil, nil, err
	}
	if tm.ReducePerOp, err = loadPerOp(b.RedPerOp); err != nil {
		return nil, nil, nil, err
	}
	return jm, tm, b.Registry, nil
}
