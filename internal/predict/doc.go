// Package predict implements the paper's multivariate time prediction
// (Section 4): ordinary least squares regression over the semantics-derived
// features of Table 1, the job execution-time model of Eq. 8, the map/
// reduce task-time models of Eq. 9, query-level prediction via the DAG's
// critical path (Section 5.4), and the R²/average-error metrics of
// Tables 3–5.
package predict
