package predict_test

import (
	"math"
	"sync"
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/workload"
)

// The corpus is expensive; build once for all accuracy tests.
var (
	corpusOnce sync.Once
	corpus     *workload.Corpus
	corpusErr  error
)

func sharedCorpus(t *testing.T) *workload.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		cfg := workload.DefaultCorpusConfig()
		cfg.NumQueries = 240
		corpus, corpusErr = workload.BuildCorpus(cfg)
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

var _ cluster.TaskTimePredictor = (*predict.TaskModel)(nil)

func TestJobModelAccuracyTable3(t *testing.T) {
	c := sharedCorpus(t)
	train, test := c.Split(0.75)
	jm, err := predict.FitJobModel(train.JobSamples)
	if err != nil {
		t.Fatal(err)
	}
	rows := jm.JobAccuracyByOperator(train.JobSamples)
	if len(rows) < 3 {
		t.Fatalf("expected >=3 operator rows, got %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("Table3 train %-8s n=%4d R²=%.4f avgErr=%.4f", r.Op, r.N, r.RSquared, r.AvgError)
		if r.N < 5 {
			continue
		}
		// Join and Extract are the weak operators in the paper too; with
		// reduce-partition skew modelled, hot-reducer jobs carry exactly
		// the "small number of non-fitted dots scatter[ed] a little far
		// from the perfect line" the paper describes for Join — variance a
		// job-level linear model cannot express (the task-composition
		// predictor of Fig. 7 handles it explicitly and stays ~5%).
		band := 0.80
		if r.Op == plan.Join.String() || r.Op == "All" {
			band = 0.55
		} else if r.Op == plan.Extract.String() {
			band = 0.65
		}
		if r.RSquared < band {
			t.Errorf("%s: training R² = %.3f, below paper-like range", r.Op, r.RSquared)
		}
		if r.AvgError > 0.35 {
			t.Errorf("%s: training avg error = %.3f, above paper-like range", r.Op, r.AvgError)
		}
	}
	// Test-set error using prediction-time (estimated) features, like the
	// paper's TestSet row (13.98%).
	var sumErr float64
	var n int
	for _, run := range test.Runs {
		for ji, je := range run.Est.Jobs {
			sj := run.Sim.Jobs[ji]
			actual := sj.DoneTime - sj.SubmitTime
			if actual <= 0 {
				continue
			}
			pred := jm.PredictJob(je)
			sumErr += math.Abs(pred-actual) / actual
			n++
		}
	}
	testErr := sumErr / float64(n)
	t.Logf("Table3 test-set avg error = %.4f over %d jobs", testErr, n)
	if testErr > 0.40 {
		t.Errorf("test-set avg error %.3f too high", testErr)
	}
}

func TestTaskModelAccuracyTables4And5(t *testing.T) {
	c := sharedCorpus(t)
	train, _ := c.Split(0.75)
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	for _, reduce := range []bool{false, true} {
		phase := "map"
		if reduce {
			phase = "reduce"
		}
		rows := tm.TaskAccuracyByOperator(train.TaskSamples, reduce)
		for _, r := range rows {
			t.Logf("Table%s train %-8s %-8s n=%5d R²=%.4f avgErr=%.4f",
				map[bool]string{false: "4", true: "5"}[reduce], phase, r.Op, r.N, r.RSquared, r.AvgError)
			if r.N < 10 {
				continue
			}
			if r.RSquared < 0.7 {
				t.Errorf("%s %s: R² = %.3f too low", phase, r.Op, r.RSquared)
			}
			if r.AvgError > 0.35 {
				t.Errorf("%s %s: avg error = %.3f too high", phase, r.Op, r.AvgError)
			}
		}
	}
}

func TestQueryPredictionFig7(t *testing.T) {
	c := sharedCorpus(t)
	train, test := c.Split(0.75)
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	var n int
	for _, run := range test.Runs {
		pred := tm.PredictQuery(run.Est, predict.DefaultSlots(), predict.DefaultOverheads())
		if run.Seconds <= 0 {
			continue
		}
		sumErr += math.Abs(pred-run.Seconds) / run.Seconds
		n++
	}
	avg := sumErr / float64(n)
	t.Logf("Fig7 query-level avg error = %.4f over %d queries", avg, n)
	// Paper reports 8.3% on 100 GB TPC-H queries; our mixed test set allows
	// a looser band.
	if avg > 0.35 {
		t.Errorf("query-level avg error %.3f too high", avg)
	}
}

func TestWRDCorrelatesWithWork(t *testing.T) {
	c := sharedCorpus(t)
	train, test := c.Split(0.75)
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	// Rank correlation between WRD and observed standalone seconds should
	// be strongly positive.
	type pair struct{ wrd, secs float64 }
	var ps []pair
	for _, run := range test.Runs {
		ps = append(ps, pair{tm.WRD(run.Est), run.Seconds})
	}
	concordant, discordant := 0, 0
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			dw := ps[i].wrd - ps[j].wrd
			ds := ps[i].secs - ps[j].secs
			if dw*ds > 0 {
				concordant++
			} else if dw*ds < 0 {
				discordant++
			}
		}
	}
	tau := float64(concordant-discordant) / float64(concordant+discordant)
	t.Logf("Kendall tau(WRD, seconds) = %.3f", tau)
	if tau < 0.5 {
		t.Errorf("WRD poorly correlated with actual work: tau = %.3f", tau)
	}
}

func TestScaleOutPrediction(t *testing.T) {
	// Paper Section 5.1: 150–400 GB queries added to the test set to
	// assess scalability. Task-based job prediction must stay sane there.
	cfg := workload.DefaultCorpusConfig()
	cfg.NumQueries = 20
	cfg.MinGB, cfg.MaxGB = 150, 400
	cfg.Seed = 777
	big, err := workload.BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := sharedCorpus(t)
	train, _ := c.Split(0.75)
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	var n int
	for _, run := range big.Runs {
		pred := tm.PredictQuery(run.Est, predict.DefaultSlots(), predict.DefaultOverheads())
		sumErr += math.Abs(pred-run.Seconds) / run.Seconds
		n++
	}
	avg := sumErr / float64(n)
	t.Logf("scale-out (150-400GB) query avg error = %.4f over %d queries", avg, n)
	if avg > 0.45 {
		t.Errorf("scale-out error %.3f too high", avg)
	}
}
