package predict

import (
	"errors"
	"fmt"
	"math"

	"saqp/internal/core/floats"
)

// Sample is one training observation: a feature vector (without intercept)
// and the observed target.
type Sample struct {
	Features []float64
	Target   float64
}

// Model is a fitted linear model. Theta[0] is the intercept; Theta[1:]
// correspond to the feature vector positions.
type Model struct {
	Theta []float64
}

// ErrSingular is returned when the normal equations cannot be solved
// (collinear features or too few samples).
var ErrSingular = errors.New("predict: singular design matrix")

// Fit computes the least-squares coefficients via the normal equations
// XᵀXθ = Xᵀy, solved with Gaussian elimination and partial pivoting. An
// intercept column is added internally. A tiny ridge term (1e-9 relative)
// keeps near-collinear workload features solvable without visibly biasing
// coefficients.
func Fit(samples []Sample) (*Model, error) {
	return FitWeighted(samples, nil)
}

// FitRelative fits with per-sample weights 1/target^1.5 — weighted least
// squares biased toward *relative* residuals. Execution times span three
// orders of magnitude across a query corpus; unweighted OLS would tune the
// model to the biggest jobs and grossly over-predict the small ones, while
// the paper's accuracy metric (average relative error) treats all jobs
// equally. The 1.5 exponent balances the two regimes.
func FitRelative(samples []Sample) (*Model, error) {
	return FitWeighted(samples, func(s Sample) float64 {
		t := math.Abs(s.Target)
		if t < 1e-6 {
			t = 1e-6
		}
		return 1 / (t * math.Sqrt(t))
	})
}

// FitWeighted computes weighted least squares; weight nil means uniform.
func FitWeighted(samples []Sample, weight func(Sample) float64) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("predict: no samples")
	}
	k := len(samples[0].Features) + 1
	if len(samples) < k {
		return nil, fmt.Errorf("predict: %d samples cannot identify %d coefficients", len(samples), k)
	}
	// Build XᵀWX (k×k) and XᵀWy (k).
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	row := make([]float64, k)
	for _, s := range samples {
		if len(s.Features)+1 != k {
			return nil, fmt.Errorf("predict: inconsistent feature width %d vs %d", len(s.Features)+1, k)
		}
		w := 1.0
		if weight != nil {
			w = weight(s)
		}
		row[0] = 1
		copy(row[1:], s.Features)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				xtx[i][j] += w * row[i] * row[j]
			}
			xty[i] += w * row[i] * s.Target
		}
	}
	theta, err := SolveNormal(xtx, xty)
	if err != nil {
		return nil, err
	}
	return &Model{Theta: theta}, nil
}

// SolveNormal solves the accumulated (weighted) normal equations
// XᵀWXθ = XᵀWy: it applies the relative ridge to a copy of the Gram
// matrix, then runs Gaussian elimination with partial pivoting. Inputs
// are never mutated. The online learner (internal/learn) accumulates the
// same rank-1 updates sample by sample and solves through this exact
// path, which is what makes an RLS fit after N updates agree with a
// batch Fit/FitRelative over the same sample stream.
func SolveNormal(xtx [][]float64, xty []float64) ([]float64, error) {
	k := len(xty)
	if k == 0 || len(xtx) != k {
		return nil, errors.New("predict: empty or mismatched normal equations")
	}
	m := make([][]float64, k)
	for i := range m {
		if len(xtx[i]) != k {
			return nil, errors.New("predict: ragged Gram matrix")
		}
		m[i] = append([]float64{}, xtx[i]...)
	}
	// Relative ridge: scale by each diagonal entry so units don't matter.
	for i := 0; i < k; i++ {
		m[i][i] *= 1 + 1e-9
		if floats.ApproxEqual(m[i][i], 0, 1e-12) {
			m[i][i] = 1e-12
		}
	}
	return solve(m, xty)
}

// solve performs Gaussian elimination with partial pivoting on a copy of A.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-300 {
			return nil, ErrSingular
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// ErrFeatureWidth is returned (wrapped) by PredictChecked when the
// feature vector's width does not match the fitted coefficient count.
var ErrFeatureWidth = errors.New("predict: feature width does not match fitted model")

// Predict evaluates the model on one feature vector. The vector must
// have exactly len(Theta)-1 entries — the width the model was fitted
// on; any mismatch returns 0 rather than a silently truncated (extra
// features dropped) or padded (missing features treated as zero)
// estimate. Use PredictChecked when the caller needs to distinguish a
// genuine zero prediction from a width error. Predict runs once per
// candidate task during scheduling, so it must not allocate — the
// width-error formatting lives in PredictChecked, off the hot path.
//
//saqp:hotpath
func (m *Model) Predict(features []float64) float64 {
	if len(features)+1 != len(m.Theta) {
		return 0
	}
	y := m.Theta[0]
	for i, f := range features {
		y += m.Theta[i+1] * f
	}
	return y
}

// PredictChecked evaluates the model on one feature vector, returning a
// wrapped ErrFeatureWidth when the vector is wider or narrower than the
// fitted coefficient count.
func (m *Model) PredictChecked(features []float64) (float64, error) {
	if len(features)+1 != len(m.Theta) {
		return 0, fmt.Errorf("%w: got %d features, model fits %d",
			ErrFeatureWidth, len(features), len(m.Theta)-1)
	}
	return m.Predict(features), nil
}

// RSquared computes the coefficient of determination of the model over the
// samples: 1 − SS_res/SS_tot. A value approaching 1 indicates a good fit
// (paper Section 5.2). It can be negative for a model worse than the mean.
func (m *Model) RSquared(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var mean float64
	for _, s := range samples {
		mean += s.Target
	}
	mean /= float64(len(samples))
	var ssRes, ssTot float64
	for _, s := range samples {
		d := s.Target - m.Predict(s.Features)
		ssRes += d * d
		t := s.Target - mean
		ssTot += t * t
	}
	if floats.ApproxEqual(ssTot, 0, 1e-12) {
		if floats.ApproxEqual(ssRes, 0, 1e-12) {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// AvgRelError computes the mean of |pred − actual| / actual over samples
// with positive targets — the paper's "Avg Error" metric.
func (m *Model) AvgRelError(samples []Sample) float64 {
	var sum float64
	var n int
	for _, s := range samples {
		if s.Target <= 0 {
			continue
		}
		sum += math.Abs(m.Predict(s.Features)-s.Target) / s.Target
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
