package predict_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"saqp/internal/plan"
	"saqp/internal/predict"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	c := sharedCorpus(t)
	train, _ := c.Split(0.75)
	jm, err := predict.FitJobModel(train.JobSamples)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := predict.SaveModels(jm, tm, "test bundle")
	if err != nil {
		t.Fatal(err)
	}
	jm2, tm2, err := predict.LoadModels(data)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded models predict identically.
	for _, s := range train.JobSamples[:50] {
		a := math.Max(0, jmPredict(jm, s))
		b := math.Max(0, jmPredict(jm2, s))
		if a != b {
			t.Fatalf("job prediction drift after round trip: %v vs %v", a, b)
		}
	}
	for _, s := range train.TaskSamples[:100] {
		a := tm.PredictTask(s.Op, s.Reduce, s.Features[0], s.Features[1], 0.1)
		b := tm2.PredictTask(s.Op, s.Reduce, s.Features[0], s.Features[1], 0.1)
		if a != b {
			t.Fatalf("task prediction drift after round trip: %v vs %v", a, b)
		}
	}
}

// jmPredict scores one raw sample through a job model by operator.
func jmPredict(jm *predict.JobModel, s predict.JobSample) float64 {
	m := jm.Pooled
	if pm, ok := jm.PerOp[s.Op]; ok {
		m = pm
	}
	return m.Predict(s.Features)
}

func TestLoadModelsErrors(t *testing.T) {
	if _, _, err := predict.LoadModels([]byte("{")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, _, err := predict.LoadModels([]byte(`{"version": 99}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not detected: %v", err)
	}
	if _, _, err := predict.LoadModels([]byte(`{"version": 1}`)); err == nil {
		t.Fatal("missing pooled job model should fail")
	}
	if _, _, err := predict.LoadModels([]byte(
		`{"version":1,"job_pooled":{"theta":[1]},"map_pooled":{"theta":[1]},"reduce_pooled":{"theta":[1]},"job_per_op":{"Bogus":{"theta":[1]}}}`)); err == nil {
		t.Fatal("unknown operator should fail")
	}
}

// validV1 is a minimal hand-written pre-lifecycle (V1) bundle.
const validV1 = `{"version":1,` +
	`"job_pooled":{"theta":[1,2]},` +
	`"map_pooled":{"theta":[3,4]},` +
	`"reduce_pooled":{"theta":[5,6]}}`

func TestLoadBundleVersions(t *testing.T) {
	tests := []struct {
		name     string
		data     string
		wantErr  error // errors.Is target; nil = any error when wantFail
		wantFail bool
		wantMeta bool
	}{
		{name: "v1 loads with nil metadata", data: validV1},
		{name: "v1 ignores stray registry metadata",
			data: strings.Replace(validV1, `{"version":1,`,
				`{"version":1,"registry":{"model_version":7,"samples":9},`, 1)},
		{name: "unknown future version rejected",
			data:    strings.Replace(validV1, `"version":1`, `"version":99`, 1),
			wantErr: predict.ErrVersion, wantFail: true},
		{name: "version zero rejected",
			data:    strings.Replace(validV1, `"version":1`, `"version":0`, 1),
			wantErr: predict.ErrVersion, wantFail: true},
		{name: "corrupt json rejected", data: `{"version":2,"job_pooled":`, wantFail: true},
		{name: "v2 missing pooled job model rejected",
			data:     `{"version":2,"map_pooled":{"theta":[1]},"reduce_pooled":{"theta":[1]}}`,
			wantFail: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			jm, tm, meta, err := predict.LoadBundle([]byte(tc.data))
			if tc.wantFail {
				if err == nil {
					t.Fatal("LoadBundle should fail")
				}
				if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want errors.Is %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if jm == nil || tm == nil {
				t.Fatal("models missing after load")
			}
			if (meta != nil) != tc.wantMeta {
				t.Fatalf("meta = %+v, wantMeta %v", meta, tc.wantMeta)
			}
		})
	}
}

func TestSaveBundleRoundTripsMetadata(t *testing.T) {
	c := sharedCorpus(t)
	train, _ := c.Split(0.75)
	jm, err := predict.FitJobModel(train.JobSamples)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	meta := &predict.RegistryMeta{ModelVersion: 3, Samples: 250, ErrorWindow: []float64{0.1, 0.08, 0.12}}
	data, err := predict.SaveBundle(jm, tm, "retired champion", meta)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 2`) {
		t.Fatal("SaveBundle should write the current (V2) layout")
	}
	jm2, _, meta2, err := predict.LoadBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 == nil || meta2.ModelVersion != 3 || meta2.Samples != 250 ||
		len(meta2.ErrorWindow) != 3 || meta2.ErrorWindow[2] != 0.12 {
		t.Fatalf("metadata did not round-trip: %+v", meta2)
	}
	for _, s := range train.JobSamples[:20] {
		if jmPredict(jm, s) != jmPredict(jm2, s) {
			t.Fatal("coefficients drifted through the V2 round trip")
		}
	}
}

func TestSaveModelsNil(t *testing.T) {
	if _, err := predict.SaveModels(nil, nil, ""); err == nil {
		t.Fatal("nil models should fail to save")
	}
}

func TestSavedBundleOperatorsComplete(t *testing.T) {
	c := sharedCorpus(t)
	train, _ := c.Split(0.75)
	jm, _ := predict.FitJobModel(train.JobSamples)
	tm, _ := predict.FitTaskModel(train.TaskSamples)
	data, err := predict.SaveModels(jm, tm, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []plan.JobType{plan.Extract, plan.Groupby, plan.Join} {
		if !strings.Contains(string(data), `"`+op.String()+`"`) {
			t.Fatalf("bundle missing operator %s", op)
		}
	}
}
