package predict_test

import (
	"math"
	"strings"
	"testing"

	"saqp/internal/plan"
	"saqp/internal/predict"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	c := sharedCorpus(t)
	train, _ := c.Split(0.75)
	jm, err := predict.FitJobModel(train.JobSamples)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := predict.SaveModels(jm, tm, "test bundle")
	if err != nil {
		t.Fatal(err)
	}
	jm2, tm2, err := predict.LoadModels(data)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded models predict identically.
	for _, s := range train.JobSamples[:50] {
		a := math.Max(0, jmPredict(jm, s))
		b := math.Max(0, jmPredict(jm2, s))
		if a != b {
			t.Fatalf("job prediction drift after round trip: %v vs %v", a, b)
		}
	}
	for _, s := range train.TaskSamples[:100] {
		a := tm.PredictTask(s.Op, s.Reduce, s.Features[0], s.Features[1], 0.1)
		b := tm2.PredictTask(s.Op, s.Reduce, s.Features[0], s.Features[1], 0.1)
		if a != b {
			t.Fatalf("task prediction drift after round trip: %v vs %v", a, b)
		}
	}
}

// jmPredict scores one raw sample through a job model by operator.
func jmPredict(jm *predict.JobModel, s predict.JobSample) float64 {
	m := jm.Pooled
	if pm, ok := jm.PerOp[s.Op]; ok {
		m = pm
	}
	return m.Predict(s.Features)
}

func TestLoadModelsErrors(t *testing.T) {
	if _, _, err := predict.LoadModels([]byte("{")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, _, err := predict.LoadModels([]byte(`{"version": 99}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not detected: %v", err)
	}
	if _, _, err := predict.LoadModels([]byte(`{"version": 1}`)); err == nil {
		t.Fatal("missing pooled job model should fail")
	}
	if _, _, err := predict.LoadModels([]byte(
		`{"version":1,"job_pooled":{"theta":[1]},"map_pooled":{"theta":[1]},"reduce_pooled":{"theta":[1]},"job_per_op":{"Bogus":{"theta":[1]}}}`)); err == nil {
		t.Fatal("unknown operator should fail")
	}
}

func TestSaveModelsNil(t *testing.T) {
	if _, err := predict.SaveModels(nil, nil, ""); err == nil {
		t.Fatal("nil models should fail to save")
	}
}

func TestSavedBundleOperatorsComplete(t *testing.T) {
	c := sharedCorpus(t)
	train, _ := c.Split(0.75)
	jm, _ := predict.FitJobModel(train.JobSamples)
	tm, _ := predict.FitTaskModel(train.TaskSamples)
	data, err := predict.SaveModels(jm, tm, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []plan.JobType{plan.Extract, plan.Groupby, plan.Join} {
		if !strings.Contains(string(data), `"`+op.String()+`"`) {
			t.Fatalf("bundle missing operator %s", op)
		}
	}
}
