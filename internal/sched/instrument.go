package sched

import (
	"saqp/internal/cluster"
	"saqp/internal/obs"
)

// Instrument wraps a scheduling policy so every PickJob call is recorded
// by the observer: the winning job plus the full candidate ranking the
// policy saw (per-query remaining WRD, running-task counts and submit
// times), making "why did the scheduler pick this query" answerable
// from the trace. With a nil observer the policy is returned unwrapped,
// so uninstrumented runs pay nothing.
//
// Instrument is the scheduler half of the observability seam; attach the
// same observer to the simulator with (*cluster.Sim).SetObserver for the
// task-lifecycle half.
func Instrument(s cluster.Scheduler, o *obs.Observer) cluster.Scheduler {
	if o == nil {
		return s
	}
	return &instrumented{inner: s, obs: o}
}

type instrumented struct {
	inner cluster.Scheduler
	obs   *obs.Observer
}

// Name implements cluster.Scheduler, delegating to the wrapped policy so
// results and run labels stay attributed to it.
func (in *instrumented) Name() string { return in.inner.Name() }

// PickJob delegates to the wrapped policy and records the decision.
func (in *instrumented) PickJob(now float64, cands, active []*cluster.Job, reduce bool) *cluster.Job {
	j := in.inner.PickJob(now, cands, active, reduce)
	ranked := make([]obs.Candidate, len(cands))
	for i, c := range cands {
		ranked[i] = obs.Candidate{
			Job:     c.ID,
			Query:   c.Query.ID,
			WRD:     c.Query.RemainingWRD(),
			Running: c.RunningTasks(),
			Submit:  c.SubmitTime,
		}
	}
	picked := ""
	if j != nil {
		picked = j.ID
	}
	in.obs.SchedulerDecision(now, in.inner.Name(), reduce, picked, ranked)
	return j
}

var _ cluster.Scheduler = (*instrumented)(nil)
