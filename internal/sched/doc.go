// Package sched implements the three scheduling policies the paper
// evaluates (Section 5.5):
//
//   - HCS, the Hadoop Capacity Scheduler: jobs are hashed by query into
//     capacity queues; slots go to the most under-served queue, FIFO
//     within it. Capacity is elastic (idle slots are lent across queues)
//     but never preempted, so a big query that borrows the cluster starves
//     later-arriving jobs — the thrashing of Figures 1–2.
//   - HFS, the Hadoop Fair Scheduler: slots balanced across all active
//     jobs (fewest running tasks first), slicing resources thinly across
//     concurrent queries.
//   - SWRD, the paper's case-study scheduler: all slots go to the query
//     with the Smallest Weighted Resource Demand (Eq. 10), computed from
//     the semantics-aware predicted task times; within a query, jobs run
//     in submission order.
//
// Schedulers only rank jobs; the cluster simulator owns slot pools,
// reduce slowstart and phase eligibility.
package sched
