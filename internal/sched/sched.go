package sched

import (
	"fmt"
	"hash/fnv"
	"strings"

	"saqp/internal/cluster"
)

// Names returns every registered policy name, in the order the paper's
// evaluation presents them. ByName accepts exactly this set.
func Names() []string { return []string{"HCS", "HFS", "SWRD"} }

// ByName returns the registered policy for name. HCS resolves to the
// stock single-queue capacity configuration the paper's motivation
// experiment exhibits (multi-queue HCS remains available as
// HCS{Queues: n} for ablations). Unknown names produce an error that
// enumerates the valid policies.
func ByName(name string) (cluster.Scheduler, error) {
	switch name {
	case "HCS":
		return HCS{}, nil
	case "HFS":
		return HFS{}, nil
	case "SWRD":
		return SWRD{}, nil
	}
	return nil, fmt.Errorf("sched: unknown scheduler %q (valid schedulers: %s)",
		name, strings.Join(Names(), ", "))
}

// HCS is the capacity scheduler: per-queue FIFO with elastic shares.
// Queues <= 1 degenerates to a single FIFO queue.
type HCS struct {
	// Queues is the number of capacity queues (Hadoop deployments
	// typically configured one per team); queries hash onto queues.
	Queues int
}

// Name implements cluster.Scheduler.
func (h HCS) Name() string { return "HCS" }

// queueOf hashes a job's query onto a queue.
func (h HCS) queueOf(j *cluster.Job) int {
	n := h.Queues
	if n <= 1 {
		return 0
	}
	f := fnv.New32a()
	f.Write([]byte(j.Query.ID))
	return int(f.Sum32()) % n
}

// PickJob serves the most under-served queue that has a candidate, FIFO
// within the queue.
func (h HCS) PickJob(_ float64, cands, active []*cluster.Job, _ bool) *cluster.Job {
	if len(cands) == 0 {
		return nil
	}
	// Usage per queue over all active jobs (running tasks occupy slots).
	usage := map[int]int{}
	for _, j := range active {
		usage[h.queueOf(j)] += j.RunningTasks()
	}
	// The least-used queue holding a candidate (ties: lowest queue index).
	bestQueue := -1
	for _, j := range cands {
		q := h.queueOf(j)
		if bestQueue < 0 || usage[q] < usage[bestQueue] ||
			(usage[q] == usage[bestQueue] && q < bestQueue) {
			bestQueue = q
		}
	}
	// FIFO within the chosen queue.
	var best *cluster.Job
	for _, j := range cands {
		if h.queueOf(j) != bestQueue {
			continue
		}
		if best == nil || j.SubmitTime < best.SubmitTime {
			best = j
		}
	}
	return best
}

// HFS is the fair scheduler: serve the candidate with the fewest running
// tasks, so slot shares equalise across active jobs.
type HFS struct{}

// Name implements cluster.Scheduler.
func (HFS) Name() string { return "HFS" }

// PickJob returns the candidate with the smallest running-task count.
func (HFS) PickJob(_ float64, cands, _ []*cluster.Job, _ bool) *cluster.Job {
	var best *cluster.Job
	bestRunning := 0
	for _, j := range cands {
		r := j.RunningTasks()
		if best == nil || r < bestRunning ||
			(r == bestRunning && j.SubmitTime < best.SubmitTime) {
			best = j
			bestRunning = r
		}
	}
	return best
}

// SWRD is the paper's Smallest-WRD-first query scheduler: all slots go to
// the query with the smallest remaining Weighted Resource Demand; within
// it, jobs run in submission order. Ties break by arrival time so equal
// queries retain FIFO fairness.
type SWRD struct{}

// Name implements cluster.Scheduler.
func (SWRD) Name() string { return "SWRD" }

// PickJob selects the smallest-WRD query's oldest candidate job.
func (SWRD) PickJob(_ float64, cands, _ []*cluster.Job, _ bool) *cluster.Job {
	var bestQ *cluster.Query
	for _, j := range cands {
		q := j.Query
		if bestQ == nil ||
			q.RemainingWRD() < bestQ.RemainingWRD() ||
			(q.RemainingWRD() == bestQ.RemainingWRD() && q.ArrivalTime < bestQ.ArrivalTime) {
			bestQ = q
		}
	}
	if bestQ == nil {
		return nil
	}
	var best *cluster.Job
	for _, j := range cands {
		if j.Query != bestQ {
			continue
		}
		if best == nil || j.SubmitTime < best.SubmitTime {
			best = j
		}
	}
	return best
}

var (
	_ cluster.Scheduler = HCS{}
	_ cluster.Scheduler = HFS{}
	_ cluster.Scheduler = SWRD{}
)
