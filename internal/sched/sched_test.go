package sched_test

import (
	"strings"
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/sched"
)

// mkJob builds a standalone job with n pending maps belonging to a query.
func mkJob(queryID, jobID string, submit float64, maps int) *cluster.Job {
	q := &cluster.Query{ID: queryID}
	j := &cluster.Job{ID: queryID + "/" + jobID, JobID: jobID, Query: q, SubmitTime: submit}
	for i := 0; i < maps; i++ {
		j.Maps = append(j.Maps, &cluster.Task{Job: j, Index: i, ActualSec: 1, PredSec: 1})
	}
	j.ResetPending()
	q.Jobs = []*cluster.Job{j}
	q.RecomputeWRD()
	return j
}

func TestHCSFIFOSingleQueue(t *testing.T) {
	a := mkJob("qa", "J1", 5, 2)
	b := mkJob("qb", "J1", 1, 2)
	cands := []*cluster.Job{a, b}
	got := (sched.HCS{}).PickJob(0, cands, cands, false)
	if got != b {
		t.Fatalf("HCS picked %s, want earliest-submitted qb", got.ID)
	}
}

func TestHCSEmptyCandidates(t *testing.T) {
	if (sched.HCS{}).PickJob(0, nil, nil, false) != nil {
		t.Fatal("empty candidate set should give nil")
	}
	if (sched.HFS{}).PickJob(0, nil, nil, false) != nil {
		t.Fatal("HFS empty should give nil")
	}
	if (sched.SWRD{}).PickJob(0, nil, nil, false) != nil {
		t.Fatal("SWRD empty should give nil")
	}
}

func TestHCSMultiQueueServesUnderServedQueue(t *testing.T) {
	// With many queues, two queries land in (very likely) different queues;
	// the one whose queue has fewer running tasks is served first even if
	// it was submitted later.
	h := sched.HCS{Queues: 64}
	a := mkJob("query-a", "J1", 0, 4)
	b := mkJob("query-b", "J1", 10, 4)
	// Start two of a's tasks to inflate its queue usage.
	simStart(t, a, 2)
	cands := []*cluster.Job{a, b}
	got := h.PickJob(0, cands, cands, false)
	if got != b {
		t.Fatalf("multi-queue HCS picked %s, want the idle queue's job", got.ID)
	}
}

func TestHCSQueueStability(t *testing.T) {
	// The same query must always hash to the same queue: repeated picks
	// with equal usage are deterministic.
	h := sched.HCS{Queues: 4}
	a := mkJob("qa", "J1", 5, 1)
	b := mkJob("qb", "J1", 1, 1)
	cands := []*cluster.Job{a, b}
	first := h.PickJob(0, cands, cands, false)
	for i := 0; i < 10; i++ {
		if got := h.PickJob(0, cands, cands, false); got != first {
			t.Fatal("multi-queue HCS not deterministic")
		}
	}
}

func TestHFSPrefersFewestRunning(t *testing.T) {
	a := mkJob("qa", "J1", 0, 4)
	b := mkJob("qb", "J1", 10, 4)
	simStart(t, a, 3)
	cands := []*cluster.Job{a, b}
	got := (sched.HFS{}).PickJob(0, cands, cands, false)
	if got != b {
		t.Fatalf("HFS picked %s, want the job with fewer running tasks", got.ID)
	}
}

func TestHFSTieBreaksFIFO(t *testing.T) {
	a := mkJob("qa", "J1", 5, 2)
	b := mkJob("qb", "J1", 1, 2)
	cands := []*cluster.Job{a, b}
	if got := (sched.HFS{}).PickJob(0, cands, cands, false); got != b {
		t.Fatalf("HFS tie-break picked %s, want earliest submit", got.ID)
	}
}

func TestSWRDPrefersSmallestWRD(t *testing.T) {
	big := mkJob("big", "J1", 0, 50) // WRD 50
	small := mkJob("small", "J1", 10, 2)
	cands := []*cluster.Job{big, small}
	if got := (sched.SWRD{}).PickJob(0, cands, cands, false); got != small {
		t.Fatalf("SWRD picked %s, want smallest-WRD query", got.ID)
	}
}

func TestSWRDTieBreaksByArrival(t *testing.T) {
	a := mkJob("qa", "J1", 0, 3)
	b := mkJob("qb", "J1", 0, 3)
	a.Query.ArrivalTime = 5
	b.Query.ArrivalTime = 1
	cands := []*cluster.Job{a, b}
	if got := (sched.SWRD{}).PickJob(0, cands, cands, false); got != b {
		t.Fatalf("SWRD tie-break picked %s, want earliest arrival", got.ID)
	}
}

func TestSWRDServesOldestJobWithinQuery(t *testing.T) {
	q := &cluster.Query{ID: "q"}
	j1 := &cluster.Job{ID: "q/J1", JobID: "J1", Query: q, SubmitTime: 1}
	j2 := &cluster.Job{ID: "q/J2", JobID: "J2", Query: q, SubmitTime: 9}
	for _, j := range []*cluster.Job{j1, j2} {
		j.Maps = []*cluster.Task{{Job: j, ActualSec: 1, PredSec: 1}}
		j.ResetPending()
	}
	q.Jobs = []*cluster.Job{j1, j2}
	q.RecomputeWRD()
	cands := []*cluster.Job{j2, j1}
	if got := (sched.SWRD{}).PickJob(0, cands, cands, false); got != j1 {
		t.Fatalf("SWRD picked %s within query, want oldest job", got.ID)
	}
}

func TestSchedulerNames(t *testing.T) {
	if (sched.HCS{}).Name() != "HCS" || (sched.HFS{}).Name() != "HFS" || (sched.SWRD{}).Name() != "SWRD" {
		t.Fatal("scheduler names wrong")
	}
}

// TestByName covers the registry: every advertised name resolves to a
// policy that reports that same name, and an unknown name's error
// enumerates all the valid ones.
func TestByName(t *testing.T) {
	names := sched.Names()
	if len(names) == 0 {
		t.Fatal("Names() is empty")
	}
	for _, name := range names {
		pol, err := sched.ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if got := pol.Name(); got != name {
			t.Errorf("ByName(%q) resolved to policy named %q", name, got)
		}
	}
	_, err := sched.ByName("bogus")
	if err == nil {
		t.Fatal("ByName should reject an unknown scheduler")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list valid scheduler %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), `"bogus"`) {
		t.Errorf("error %q should quote the offending name", err)
	}
}

// simStart marks n of j's map tasks as running via a real simulator run
// fragment: we dispatch through a 1-node cluster to keep Task state
// transitions inside the cluster package's control.
func simStart(t *testing.T, j *cluster.Job, n int) {
	t.Helper()
	// Mark tasks running directly through the exported state field.
	for i := 0; i < n && i < len(j.Maps); i++ {
		j.Maps[i].State = cluster.TaskRunning
	}
}
