package analysis_test

import (
	"strings"
	"testing"

	"saqp/internal/analysis"
)

// TestMultipleDirectivesOneLine checks that several //lint:allow
// directives sharing a comment are parsed independently: each names its
// own analyzer and carries its own reason, and both suppress.
func TestMultipleDirectivesOneLine(t *testing.T) {
	pkg := loadFixture(t, `package a

func f() int {
	x := 1 //lint:allow saqpvet/assignflag first reason //lint:allow saqpvet/otherflag second reason
	return x
}
`)
	otherFlagger := &analysis.Analyzer{
		Name: "otherflag",
		Doc:  "clone of assignflag under another name",
		Run:  assignFlagger.Run,
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{assignFlagger, otherFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("both directives on the line should suppress their analyzers; got %v", diags)
	}
}

// TestUnknownAnalyzerDirectiveIsReported checks that a directive naming
// an analyzer the suite does not know is rejected — it must not
// suppress anything — and surfaces as a finding so the typo is visible.
func TestUnknownAnalyzerDirectiveIsReported(t *testing.T) {
	pkg := loadFixture(t, `package a

func f() int {
	x := 1 //lint:allow saqpvet/assginflag transposed-letters typo
	return x
}
`)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{assignFlagger})
	if err != nil {
		t.Fatal(err)
	}
	var assignment, unknown bool
	for _, d := range diags {
		if d.Analyzer == "assignflag" {
			assignment = true
		}
		if d.Analyzer == "suppress" && strings.Contains(d.Message, "unknown analyzer saqpvet/assginflag") {
			unknown = true
		}
	}
	if !assignment {
		t.Errorf("typoed directive must not silence the finding; got %v", diags)
	}
	if !unknown {
		t.Errorf("typoed directive must itself be reported; got %v", diags)
	}
}

// TestReasonlessDirectiveIsReported checks that a directive without a
// justification is ignored (the finding survives) and reported, rather
// than silently honored.
func TestReasonlessDirectiveIsReported(t *testing.T) {
	pkg := loadFixture(t, `package a

func f() int {
	x := 1 //lint:allow saqpvet/assignflag
	return x
}
`)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{assignFlagger})
	if err != nil {
		t.Fatal(err)
	}
	var assignment, reasonless bool
	for _, d := range diags {
		if d.Analyzer == "assignflag" {
			assignment = true
		}
		if d.Analyzer == "suppress" && strings.Contains(d.Message, "has no reason") {
			reasonless = true
		}
	}
	if !assignment {
		t.Errorf("reasonless directive must not silence the finding; got %v", diags)
	}
	if !reasonless {
		t.Errorf("reasonless directive must itself be reported; got %v", diags)
	}
}

// TestForeignDialectIgnored checks that //lint:allow directives from
// other tools' vocabularies (no saqpvet/ prefix) are left alone: they
// neither suppress nor produce validation noise.
func TestForeignDialectIgnored(t *testing.T) {
	pkg := loadFixture(t, `package a

func f() int {
	x := 1 //lint:allow ST1003 someone else's linter
	return x
}
`)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{assignFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "assignflag" {
		t.Errorf("foreign directive should neither suppress nor be validated; got %v", diags)
	}
}
