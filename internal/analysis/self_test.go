package analysis_test

import (
	"os"
	"testing"

	"saqp/internal/analysis"
	"saqp/internal/analysis/determinism"
	"saqp/internal/analysis/doccheck"
	"saqp/internal/analysis/errdrop"
	"saqp/internal/analysis/floatcmp"
	"saqp/internal/analysis/lockcheck"
)

// TestRepositoryIsClean runs the full saqpvet analyzer suite over every
// package in the module and fails on any diagnostic. This is the
// cleanliness regression gate: a change that reintroduces time.Now in
// the simulator, a raw float comparison in the estimator, or a dropped
// error anywhere in internal/ fails `go test` even before CI runs the
// standalone saqpvet binary.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ModuleDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	suite := []*analysis.Analyzer{
		determinism.Analyzer,
		doccheck.Analyzer,
		floatcmp.Analyzer,
		lockcheck.Analyzer,
		errdrop.Analyzer,
	}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			t.Fatalf("analyze %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
