package analysis_test

import (
	"os"
	"strings"
	"testing"

	"saqp/internal/analysis"
	"saqp/internal/analysis/registry"
)

// TestRepositoryIsClean runs the full saqpvet analyzer suite over every
// package in the module and fails on any diagnostic. This is the
// cleanliness regression gate: a change that reintroduces time.Now in
// the simulator, a raw float comparison in the estimator, a heap
// allocation on a //saqp:hotpath function, or a dropped error anywhere
// in internal/ fails `go test` even before CI runs the standalone
// saqpvet binary. The suite comes from registry.All(), the same list
// cmd/saqpvet runs, so the gate and the tool cannot drift apart.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader, dirs := moduleLoader(t)
	suite := registry.All()
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			t.Fatalf("analyze %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestDeterminismScopeCoversSeededImporters enforces the implication
// declared next to SeededCorePackages: any saqp/internal package that
// imports a seeded-core package is itself part of the deterministic
// execution graph and must appear in DeterministicPackages. Without
// this, a new package could wrap the simulator and leak wall-clock
// reads into seeded runs while staying outside the analyzer's scope.
func TestDeterminismScopeCoversSeededImporters(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader, dirs := moduleLoader(t)
	declared := make(map[string]bool, len(analysis.DeterministicPackages))
	for _, p := range analysis.DeterministicPackages {
		declared[p] = true
	}
	seeded := make(map[string]bool, len(analysis.SeededCorePackages))
	for _, p := range analysis.SeededCorePackages {
		seeded[p] = true
	}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if !strings.HasPrefix(pkg.Path, "saqp/internal/") ||
			strings.HasPrefix(pkg.Path, "saqp/internal/analysis") {
			continue // the contract covers runtime packages, not the linter
		}
		if declared[pkg.Path] {
			continue
		}
		for _, imp := range pkg.Types.Imports() {
			if seeded[imp.Path()] {
				t.Errorf("%s imports seeded-core package %s but is missing from analysis.DeterministicPackages",
					pkg.Path, imp.Path())
			}
		}
	}
}

// moduleLoader resolves the module root from the test's working
// directory and enumerates its package directories.
func moduleLoader(t *testing.T) (*analysis.Loader, []string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ModuleDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	return loader, dirs
}
