package analysis

import (
	"go/token"
	"regexp"
	"strings"
)

// Suppression comments let a human override a finding after review:
//
//	x := sum == total //lint:allow saqpvet/floatcmp bit-identical by construction
//
// or, on the line directly above the flagged statement:
//
//	//lint:allow saqpvet/errdrop best-effort cleanup
//	_ = f.Close()
//
// A suppression names exactly one analyzer and applies to findings on
// the comment's own line and on the following line. There is no
// file-wide or analyzer-wildcard form: every override stays adjacent to
// the code it excuses, with room for a reason.
var suppressRE = regexp.MustCompile(`//lint:allow\s+saqpvet/([a-z]+)`)

// suppressions maps filename -> line -> set of suppressed analyzer names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, analyzer string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = make(map[string]bool)
		byLine[line] = set
	}
	set[analyzer] = true
}

// allows reports whether a finding by the named analyzer at pos is
// covered by a suppression comment.
func (s suppressions) allows(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer]
}

func collectSuppressions(pkg *Package) suppressions {
	s := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range suppressRE.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					// The comment's own line (trailing form) and the
					// next line (preceding form).
					s.add(pos.Filename, pos.Line, m[1])
					s.add(pos.Filename, pos.Line+1, m[1])
				}
			}
		}
	}
	return s
}

// HasSuppression reports whether src contains any saqpvet suppression
// comment; cheap pre-filter used by tests.
func HasSuppression(src string) bool {
	return strings.Contains(src, "//lint:allow saqpvet/")
}
