package analysis

import (
	"go/token"
	"strings"
)

// Suppression comments let a human override a finding after review:
//
//	x := sum == total //lint:allow saqpvet/floatcmp bit-identical by construction
//
// or, on the line directly above the flagged statement:
//
//	//lint:allow saqpvet/errdrop best-effort cleanup
//	_ = f.Close()
//
// A suppression names exactly one analyzer, applies to findings on the
// comment's own line and on the following line, and MUST carry a
// reason: a directive without one is ignored and reported, so a bare
// "//lint:allow saqpvet/errdrop" silences nothing. Directives naming
// an analyzer the running suite does not know are reported too — a
// typo would otherwise suppress nothing while looking reviewed. There
// is no file-wide or analyzer-wildcard form: every override stays
// adjacent to the code it excuses, with room for its justification.
// Several directives may share one line, each with its own reason.
const (
	suppressMarker = "//lint:allow"
	suppressPrefix = "saqpvet/"
)

// directive is one parsed //lint:allow occurrence, valid or not.
type directive struct {
	pos    token.Position
	name   string
	reason string
}

// suppressions maps filename -> line -> set of suppressed analyzer names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, analyzer string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = make(map[string]bool)
		byLine[line] = set
	}
	set[analyzer] = true
}

// allows reports whether a finding by the named analyzer at pos is
// covered by a suppression comment.
func (s suppressions) allows(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer]
}

// collectSuppressions parses every saqpvet directive in the package.
// Only directives carrying a reason are honored in the returned
// suppression table; all directives, malformed ones included, come
// back for validation.
func collectSuppressions(pkg *Package) (suppressions, []directive) {
	s := make(suppressions)
	var ds []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				segs := strings.Split(c.Text, suppressMarker)
				for _, seg := range segs[1:] {
					fields := strings.Fields(seg)
					if len(fields) == 0 || !strings.HasPrefix(fields[0], suppressPrefix) {
						continue // some other tool's lint:allow dialect
					}
					name := strings.TrimPrefix(fields[0], suppressPrefix)
					if !plainName(name) {
						// Prose ABOUT the mechanism — a quoted example,
						// "saqpvet/<name>" with a placeholder, or a
						// sentence ending right after the name. Real
						// analyzer names are bare lowercase identifiers.
						continue
					}
					// A further directive's reason ends where the next
					// marker begins — Split already cut there, so the
					// remaining fields are this directive's reason.
					reason := strings.Join(fields[1:], " ")
					pos := pkg.Fset.Position(c.Pos())
					ds = append(ds, directive{pos: pos, name: name, reason: reason})
					if reason != "" {
						// The comment's own line (trailing form) and
						// the next line (preceding form).
						s.add(pos.Filename, pos.Line, name)
						s.add(pos.Filename, pos.Line+1, name)
					}
				}
			}
		}
	}
	return s, ds
}

// plainName reports whether s looks like an analyzer name: a nonempty
// run of lowercase letters and digits, the shape every registered
// analyzer uses.
func plainName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validateDirectives turns malformed directives into diagnostics:
// unknown analyzer names and missing reasons both mean the author
// believes something is suppressed when nothing is. Directives in test
// files are skipped, matching the analyzers' own scope. The resulting
// diagnostics carry the pseudo-analyzer name "suppress" and cannot
// themselves be suppressed.
func validateDirectives(ds []directive, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if strings.HasSuffix(d.pos.Filename, "_test.go") {
			continue
		}
		switch {
		case !known[d.name]:
			out = append(out, Diagnostic{
				Analyzer: "suppress",
				Pos:      d.pos,
				Message: "//lint:allow names unknown analyzer saqpvet/" + d.name +
					"; the directive suppresses nothing (is it a typo?)",
			})
		case d.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "suppress",
				Pos:      d.pos,
				Message: "//lint:allow saqpvet/" + d.name +
					" has no reason; append why the finding is acceptable — reasonless directives are ignored",
			})
		}
	}
	return out
}

// HasSuppression reports whether src contains any saqpvet suppression
// comment; cheap pre-filter used by tests.
func HasSuppression(src string) bool {
	return strings.Contains(src, "//lint:allow saqpvet/")
}
