package doccheck

import (
	"go/ast"
	"sort"

	"saqp/internal/analysis"
)

// Analyzer enforces package comments and doc comments on exported
// symbols.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc: "flags packages without a package comment and exported symbols " +
		"without doc comments in non-test files",
	Scope: []string{"saqp"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	checkPackageComment(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			}
		}
	}
	return nil
}

// checkPackageComment requires a package comment on at least one file
// of the package; the finding lands on the first file by name so the
// diagnostic position is stable across load orders.
func checkPackageComment(pass *analysis.Pass) {
	if len(pass.Files) == 0 {
		return
	}
	files := make([]*ast.File, len(pass.Files))
	copy(files, pass.Files)
	sort.Slice(files, func(i, j int) bool {
		return pass.Fset.Position(files[i].Package).Filename <
			pass.Fset.Position(files[j].Package).Filename
	})
	for _, f := range files {
		if f.Doc != nil {
			return
		}
	}
	pass.Reportf(files[0].Package,
		"package %s has no package comment (add a doc.go or document one file's package clause)",
		files[0].Name.Name)
}

// checkFunc flags an undocumented exported function or method. A method
// counts as exported only when its receiver's base type name is also
// exported: an exported method on an unexported type never surfaces in
// godoc on its own.
func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if d.Doc != nil || !ast.IsExported(d.Name.Name) {
		return
	}
	kind := "function"
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind = "method"
	}
	pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
}

// receiverTypeName unwraps a method receiver to its base type name,
// looking through pointers and type-parameter instantiations.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// checkGenDecl flags undocumented exported names in type, const and var
// declarations. A doc comment on the declaration covers every spec in a
// grouped form; otherwise each spec needs its own leading doc comment
// (trailing line comments don't count, matching golint's rule).
func checkGenDecl(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Doc != nil || !ast.IsExported(s.Name.Name) {
				continue
			}
			pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
		case *ast.ValueSpec:
			if s.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if ast.IsExported(name.Name) {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment",
						kindOf(d), name.Name)
					break
				}
			}
		}
	}
}

func kindOf(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "var"
}
