package a // want `package a has no package comment`

// Documented is fine.
func Documented() {}

func Undocumented() {} // want `exported function Undocumented has no doc comment`

func unexported() {}

// T carries the method cases.
type T struct{}

// Documented methods are fine.
func (T) Good() {}

func (t *T) Bad() {} // want `exported method Bad has no doc comment`

type hidden struct{}

// An exported method on an unexported type never surfaces in godoc.
func (hidden) Exported() {}

type U struct{} // want `exported type U has no doc comment`

// A group doc covers every spec inside.
const (
	GroupA = 1
	GroupB = 2
)

const (
	// Solo is documented at the spec.
	Solo = 3
	Bare = 4 // want `exported const Bare has no doc comment`
)

var Loose = 5 // want `exported var Loose has no doc comment`

// Named is documented at the spec.
var Named = 6

var quiet = 7

//lint:allow saqpvet/doccheck fixture exercises the escape hatch
func Excused() {}

var _ = unexported
var _ = quiet
var _ = hidden{}
