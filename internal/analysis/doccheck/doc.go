// Package doccheck enforces the repository's documentation contract:
// every package carries a package comment and every exported symbol in
// non-test files carries a doc comment. The reproduction is navigated
// through godoc — each package comment names the paper section it
// implements and states its determinism contract — so an undocumented
// export is a hole in the paper-to-code map, not a style nit. A
// reviewed exception stays visible in the source via
// //lint:allow saqpvet/doccheck and a reason.
//
// The rules follow godoc's association model: a doc comment on a
// grouped const/var/type declaration covers every spec in the group, a
// spec-level doc comment covers that spec (trailing line comments don't
// count, matching golint), and a method is exported only when its
// receiver's base type is too.
package doccheck
