package doccheck_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/doccheck"
)

func TestDoccheck(t *testing.T) {
	analysistest.Run(t, doccheck.Analyzer, "testdata/src/a")
}

func TestScope(t *testing.T) {
	for _, path := range []string{"saqp", "saqp/internal/cluster", "saqp/cmd/saqp"} {
		if !doccheck.Analyzer.AppliesTo(path) {
			t.Errorf("doccheck should apply to %s", path)
		}
	}
	if doccheck.Analyzer.AppliesTo("example.com/other") {
		t.Error("doccheck should not apply outside the module")
	}
}
