package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"saqp/internal/analysis"
)

// Analyzer flags silently discarded error return values.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flags discarded error results (`_ = f()` and bare `f()` statements) " +
		"in non-test internal packages",
	Scope: []string{"saqp/internal"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(pass, st)
			case *ast.AssignStmt:
				checkBlankAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

func checkBareCall(pass *analysis.Pass, st *ast.ExprStmt) {
	call, ok := st.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if !returnsError(pass.TypesInfo, call) {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if excludedCall(pass.TypesInfo, call) {
		return
	}
	name := "call"
	if fn != nil {
		name = fn.FullName()
	}
	pass.Reportf(st.Pos(), "error result of %s is silently discarded; handle it or excuse it with //lint:allow saqpvet/errdrop", name)
}

func checkBlankAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	// Single call on the RHS feeding multiple LHS slots: map each blank
	// LHS to the corresponding tuple component.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.TypeOf(call).(*types.Tuple)
		if !ok || excludedCall(pass.TypesInfo, call) {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of call is discarded into _; handle it or excuse it with //lint:allow saqpvet/errdrop")
			}
		}
		return
	}
	// Pairwise assignments: flag `_ = f()` where f returns exactly an error.
	for i, lhs := range st.Lhs {
		if !isBlank(lhs) || i >= len(st.Rhs) {
			continue
		}
		call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if !returnsError(pass.TypesInfo, call) || excludedCall(pass.TypesInfo, call) {
			continue
		}
		pass.Reportf(lhs.Pos(), "error result of call is discarded into _; handle it or excuse it with //lint:allow saqpvet/errdrop")
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// returnsError reports whether any result of the call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// excludedCall reports whether the call as a whole is a well-known
// never-fails pattern: an excluded callee, a hash.Hash write, or an
// fmt.Fprint* aimed at an in-memory writer.
func excludedCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return excluded(fn) || hashReceiver(info, call) || fprintToMemWriter(info, fn, call)
}

// excluded reports whether fn is a well-known API documented to never
// return a non-nil error.
func excluded(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	switch {
	case path == "fmt" && strings.HasPrefix(fn.Name(), "Print"):
		return true // fmt.Print/Printf/Println write to os.Stdout
	case path == "hash":
		return true // hash.Hash.Write never fails (hash package doc)
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return recvExcluded(sig)
}

// hashReceiver reports whether the call is a method call on a value of
// a hash-package interface (hash.Hash embeds io.Writer, so the resolved
// method object belongs to io, not hash).
func hashReceiver(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "hash"
}

// fprintToMemWriter reports whether the call is fmt.Fprint* writing to
// a *strings.Builder or *bytes.Buffer. Those writers never return an
// error, so fmt.Fprint* cannot fail either and the result carries no
// information.
func fprintToMemWriter(info *types.Info, fn *types.Func, call *ast.CallExpr) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" ||
		!strings.HasPrefix(fn.Name(), "Fprint") || len(call.Args) == 0 {
		return false
	}
	t := info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	s := t.String()
	return s == "*strings.Builder" || s == "*bytes.Buffer"
}

// recvExcluded excludes methods on the stdlib's in-memory writers,
// whose Write* methods are documented to always return a nil error.
func recvExcluded(sig *types.Signature) bool {
	if sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type().String()
	return strings.HasSuffix(recv, "strings.Builder") || strings.HasSuffix(recv, "bytes.Buffer")
}
