// Fixture for the errdrop analyzer: bare calls and blank assignments
// that discard an error must be flagged; handled errors, never-fails
// APIs and reviewed suppressions must not.
package a

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func drop() {
	fail()           // want `error result of .*fail is silently discarded`
	_ = fail()       // want `error result of call is discarded into _`
	n, _ := pair()   // want `error result of call is discarded into _`
	_ = n            // discarding a non-error value is fine
	os.Remove("tmp") // want `error result of os.Remove is silently discarded`
}

// Non-hits: the error is actually consumed.
func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return err
	}
	fmt.Println(v) // fmt.Print* never returns a useful error
	return nil
}

// Never-fails APIs are excluded.
func neverFails() (string, uint32) {
	var sb strings.Builder
	sb.WriteString("x")
	fmt.Fprintf(&sb, "y=%d", 1) // Fprint* into an in-memory writer cannot fail
	var bb bytes.Buffer
	fmt.Fprintln(&bb, "z")
	h := fnv.New32a()
	h.Write([]byte("k"))
	return sb.String() + bb.String(), h.Sum32()
}

// Fprint* to a real (fallible) writer is still flagged.
func fprintFile(f *os.File) {
	fmt.Fprintf(f, "x") // want `error result of fmt.Fprintf is silently discarded`
}

// Reviewed suppressions, both placements.
func excused() {
	//lint:allow saqpvet/errdrop best-effort cleanup
	_ = fail()
	fail() //lint:allow saqpvet/errdrop fire-and-forget probe
}
