// Package errdrop flags discarded error return values in non-test
// internal code: bare call statements whose callee returns an error,
// and assignments that send an error result to the blank identifier. A
// swallowed error in the corpus builder or persistence layer turns a
// hard failure into silently-wrong training data — the config-drift
// failure mode described in the Rizvandi et al. line of work — so every
// discard must be either handled or visibly excused with
// //lint:allow saqpvet/errdrop and a reason.
//
// Well-known never-fails APIs are excluded to keep the signal clean:
// fmt.Print*, strings.Builder, bytes.Buffer and hash.Hash writes are
// documented to never return a non-nil error.
package errdrop
