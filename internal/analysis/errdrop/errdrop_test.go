package errdrop_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "testdata/src/a")
}

func TestScope(t *testing.T) {
	if !errdrop.Analyzer.AppliesTo("saqp/internal/workload") {
		t.Error("errdrop should apply to saqp/internal/workload")
	}
	if errdrop.Analyzer.AppliesTo("saqp/examples/quickstart") {
		t.Error("errdrop should not apply to examples")
	}
}
