package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"saqp/internal/analysis"
)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package in dir (e.g. "testdata/src/a"), runs
// the analyzer without scope filtering, and reports mismatches on t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunUnscoped(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		file := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == file && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", file, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// RunBroken loads the deliberately-broken fixture in dir, runs the
// analyzer unscoped, and fails the test unless it produces at least
// one diagnostic — proof the analyzer fires at all, independent of the
// golden fixture's expectations going stale.
func RunBroken(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatalf("loading broken fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunUnscoped(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	if len(diags) == 0 {
		t.Fatalf("%s reported nothing on broken fixture %s; the analyzer no longer fires", a.Name, dir)
	}
	return diags
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

func parseWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of Go-quoted or backquoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var q byte = s[0]
		if q != '"' && q != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern %q", s)
		}
		raw := s[:end+2]
		p, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("cannot unquote %q: %v", raw, err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
