// Package analysistest runs an analyzer over a golden fixture package
// and compares its diagnostics against `// want` expectations embedded
// in the fixture source — a stdlib-only miniature of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout mirrors x/tools convention:
//
//	internal/analysis/<name>/testdata/src/a/a.go
//
// Expectations are trailing comments on the line the diagnostic must
// land on, holding one or more quoted regular expressions:
//
//	t := time.Now() // want `reads the wall clock`
//
// Every diagnostic must be matched by an expectation on its line and
// every expectation must match a diagnostic; anything else fails the
// test. Because analysis.RunUnscoped applies //lint:allow suppressions,
// fixtures can also assert that a suppressed line yields nothing.
package analysistest
