// Package ctxleak implements the saqpvet analyzer guarding context
// plumbing: once a function accepts a context.Context, every blocking
// construct in it must honor that context, and nothing outside package
// main (or tests) may mint a fresh root context.
//
// Three rules, built on the dataflow tier's derivation closure:
//
//  1. context.Background() and context.TODO() are forbidden outside
//     package main — they sever the caller's cancellation chain.
//  2. A context-typed argument in a call must derive from the
//     function's own ctx parameter (directly, or through context.With*
//     wrappers); passing an unrelated context silently detaches the
//     callee from cancellation.
//  3. A channel send or receive in a ctx-accepting function must sit
//     in a select that also waits on a struct{} stop channel (such as
//     <-ctx.Done()); a bare receive from a struct{} channel is itself
//     a stop wait and is exempt.
package ctxleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"saqp/internal/analysis"
	"saqp/internal/analysis/dataflow"
)

// Analyzer flags places where cancellation silently dies.
var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc: "requires a context.Context parameter to flow into every blocking " +
		"call and channel operation of its function, and forbids " +
		"context.Background()/TODO() outside package main and tests, so " +
		"cancellation reaches every wait",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		if !isMain {
			checkRootContexts(pass, f)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctx := ctxParam(pass.TypesInfo, fd)
			if ctx == nil {
				continue
			}
			flow := dataflow.New(fd, pass.TypesInfo)
			checkContextArgs(pass, flow, fd, ctx)
			checkChannelOps(pass, flow, fd, ctx)
		}
	}
	return nil
}

// checkRootContexts reports every context.Background/TODO call.
func checkRootContexts(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s severs the caller's cancellation chain; accept and thread a ctx parameter (allowed only in package main and tests)",
				fn.Name())
		}
		return true
	})
}

// ctxParam returns the function's first context.Context parameter, or
// nil when it has none.
func ctxParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContext(v.Type()) {
				return v
			}
		}
	}
	return nil
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkContextArgs enforces rule 2: context-typed arguments must
// derive from ctx. Arguments mentioning no variable at all (a direct
// context.Background() call, a nil literal) are rule 1's business.
func checkContextArgs(pass *analysis.Pass, flow *dataflow.Flow, fd *ast.FuncDecl, ctx *types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if !isContext(pass.TypesInfo.TypeOf(arg)) {
				continue
			}
			if !mentionsVar(pass.TypesInfo, arg) {
				continue
			}
			if !flow.ExprDerivesFrom(arg, ctx) {
				pass.Reportf(arg.Pos(),
					"call passes a context not derived from parameter %s; cancellation is severed here", ctx.Name())
			}
		}
		return true
	})
}

func mentionsVar(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if _, isVar := info.Uses[id].(*types.Var); isVar {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkChannelOps enforces rule 3 on sends and receives in fd's body,
// including inside its function literals (a goroutine the function
// spawns still owes its waits to the same context).
func checkChannelOps(pass *analysis.Pass, flow *dataflow.Flow, fd *ast.FuncDecl, ctx *types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch op := n.(type) {
		case *ast.SendStmt:
			if !opCancellable(pass.TypesInfo, flow, op) {
				pass.Reportf(op.Arrow,
					"channel send can block without honoring %s; select on it together with <-%s.Done()",
					ctx.Name(), ctx.Name())
			}
		case *ast.UnaryExpr:
			if op.Op != token.ARROW {
				return true
			}
			if isStopChannel(pass.TypesInfo.TypeOf(op.X)) {
				return true // a done-channel receive is itself a stop wait
			}
			if !opCancellable(pass.TypesInfo, flow, op) {
				pass.Reportf(op.OpPos,
					"channel receive can block without honoring %s; select on it together with <-%s.Done()",
					ctx.Name(), ctx.Name())
			}
		}
		return true
	})
}

// opCancellable reports whether the channel operation sits in a select
// that also waits on a struct{} stop channel.
func opCancellable(info *types.Info, flow *dataflow.Flow, op ast.Node) bool {
	for p := flow.Parent(op); p != nil; p = flow.Parent(p) {
		sel, ok := p.(*ast.SelectStmt)
		if !ok {
			continue
		}
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			if recv := commReceive(comm.Comm); recv != nil && isStopChannel(info.TypeOf(recv.X)) {
				return true
			}
		}
		return false
	}
	return false
}

// commReceive unwraps a comm clause to its receive operation, if any.
func commReceive(stmt ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return nil
	}
	return u
}

// isStopChannel reports whether t is a channel of struct{} — the shape
// of ctx.Done() and of the done-channel idiom.
func isStopChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
