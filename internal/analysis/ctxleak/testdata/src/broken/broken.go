// Package broken is the deliberately-failing ctxleak fixture: a
// context parameter that never reaches any of the function's waits.
package broken

import "context"

// Wait ignores its context completely.
func Wait(ctx context.Context, ch chan int) int {
	v := <-ch
	use(context.TODO(), ch)
	return v
}

func use(ctx context.Context, ch chan int) {}
