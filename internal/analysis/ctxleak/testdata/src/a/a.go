// Package a is the ctxleak golden fixture: functions that sever
// cancellation, functions that thread it correctly, and a reviewed
// suppression.
package a

import "context"

// dep is a context-accepting callee for the derivation checks.
func dep(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// leaky mints a fresh root context, passes it on, and blocks bare.
func leaky(ctx context.Context, ch chan int) {
	bg := context.Background() // want `context\.Background severs`
	dep(bg, ch)                // want `not derived from parameter ctx`
	<-ch                       // want `channel receive can block without honoring ctx`
}

// sends blocks on sends, bare and in a select with no stop case.
func sends(ctx context.Context, ch chan int) {
	ch <- 1 // want `channel send can block without honoring ctx`
	select {
	case ch <- 2: // want `channel send can block without honoring ctx`
	}
}

// threaded does everything right: derived contexts, cancellable
// selects, and done-channel waits.
func threaded(ctx context.Context, ch chan int, done chan struct{}) {
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	dep(tctx, ch)
	select {
	case <-ch:
	case <-ctx.Done():
	}
	<-done // a stop-channel receive is itself a cancellation wait
	select {
	case ch <- 1:
	case <-done:
	}
}

// suppressed documents a reviewed bare receive.
func suppressed(ctx context.Context, ch chan int) {
	<-ch //lint:allow saqpvet/ctxleak drains one buffered element the caller already produced
}

// noCtx accepts no context, so its channel discipline is out of this
// analyzer's scope (leakcheck owns goroutine lifecycles).
func noCtx(ch chan int) int { return <-ch }
