package ctxleak_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/ctxleak"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, ctxleak.Analyzer, "testdata/src/a")
}

func TestBrokenFixtureFires(t *testing.T) {
	analysistest.RunBroken(t, ctxleak.Analyzer, "testdata/src/broken")
}
