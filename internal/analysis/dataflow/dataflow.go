package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Flow holds the def-use relations of one function body (or any AST
// subtree). Build one per analyzed function with New; all methods are
// read-only afterwards.
type Flow struct {
	info    *types.Info
	root    ast.Node
	parents map[ast.Node]ast.Node
	// derived records direct value flow: derived[dst] is the set of
	// variables whose value reaches dst through one assignment, short
	// declaration or range clause.
	derived map[*types.Var]map[*types.Var]bool
	// uses indexes every identifier in root by the variable it reads.
	uses map[*types.Var][]*ast.Ident
}

// New builds the flow relations for root, typically a *ast.FuncDecl or
// *ast.FuncLit. info must be the type-checker's record for the file
// containing root.
func New(root ast.Node, info *types.Info) *Flow {
	f := &Flow{
		info:    info,
		root:    root,
		parents: make(map[ast.Node]ast.Node),
		derived: make(map[*types.Var]map[*types.Var]bool),
		uses:    make(map[*types.Var][]*ast.Ident),
	}
	f.buildParents()
	f.buildEdges()
	return f
}

// Parent returns the syntactic parent of n within the flow's root, or
// nil for the root itself and for nodes outside it.
func (f *Flow) Parent(n ast.Node) ast.Node { return f.parents[n] }

func (f *Flow) buildParents() {
	v := &parentVisitor{parents: f.parents}
	ast.Walk(v, f.root)
}

type parentVisitor struct {
	stack   []ast.Node
	parents map[ast.Node]ast.Node
}

func (v *parentVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	if len(v.stack) > 0 {
		v.parents[n] = v.stack[len(v.stack)-1]
	}
	v.stack = append(v.stack, n)
	return v
}

func (f *Flow) buildEdges() {
	ast.Inspect(f.root, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.Ident:
			if v, ok := f.info.Uses[st].(*types.Var); ok {
				f.uses[v] = append(f.uses[v], st)
			}
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					f.edge(st.Lhs[i], st.Rhs[i])
				}
			} else {
				// Tuple assignment (multi-result call, map index,
				// type assertion): every lhs derives from the rhs.
				for _, lhs := range st.Lhs {
					for _, rhs := range st.Rhs {
						f.edge(lhs, rhs)
					}
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(st.Names) == len(st.Values):
				for i := range st.Names {
					f.edgeTo(f.defVar(st.Names[i]), st.Values[i])
				}
			case len(st.Values) > 0:
				for _, name := range st.Names {
					for _, val := range st.Values {
						f.edgeTo(f.defVar(name), val)
					}
				}
			}
		case *ast.RangeStmt:
			// Over a slice, array or string the key is an index — an
			// int carrying none of the ranged value — so only maps and
			// channels give the key a derivation edge.
			if st.Key != nil && rangeKeyCarriesValue(f.info, st.X) {
				f.edge(st.Key, st.X)
			}
			if st.Value != nil {
				f.edge(st.Value, st.X)
			}
		}
		return true
	})
}

// edge records value flow from every variable mentioned in src into the
// variable lhs names, if lhs is a plain identifier. Stores through
// selectors, indexes and dereferences carry no derivation edge — they
// surface through Escapes instead.
func (f *Flow) edge(lhs, src ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	var dst *types.Var
	if v := f.defVar(id); v != nil {
		dst = v
	} else if v, ok := f.info.Uses[id].(*types.Var); ok {
		dst = v
	}
	f.edgeTo(dst, src)
}

func (f *Flow) edgeTo(dst *types.Var, src ast.Expr) {
	if dst == nil || src == nil {
		return
	}
	ast.Inspect(src, func(n ast.Node) bool {
		// len(x), cap(x) and x[i] are projections: they yield a size or
		// a component, not the value itself, so they carry no edge.
		if call, ok := n.(*ast.CallExpr); ok && sizeOnlyBuiltin(f.info, call) {
			return false
		}
		if _, ok := n.(*ast.IndexExpr); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if from, ok := f.info.Uses[id].(*types.Var); ok && from != dst {
			set := f.derived[dst]
			if set == nil {
				set = make(map[*types.Var]bool)
				f.derived[dst] = set
			}
			set[from] = true
		}
		return true
	})
}

func (f *Flow) defVar(id *ast.Ident) *types.Var {
	v, _ := f.info.Defs[id].(*types.Var)
	return v
}

// DerivedFrom returns the forward transitive closure of variables whose
// value incorporates src's, including src itself. A context wrapped by
// context.WithTimeout(ctx, d) derives from ctx; so does a variable
// assigned from any expression mentioning a derived one.
func (f *Flow) DerivedFrom(src *types.Var) map[*types.Var]bool {
	set := map[*types.Var]bool{src: true}
	for changed := true; changed; {
		changed = false
		for dst, froms := range f.derived {
			if set[dst] {
				continue
			}
			for from := range froms {
				if set[from] {
					set[dst] = true
					changed = true
					break
				}
			}
		}
	}
	return set
}

// ExprDerivesFrom reports whether e mentions any variable derived from
// src — the test ctxleak applies to context-typed call arguments.
func (f *Flow) ExprDerivesFrom(e ast.Expr, src *types.Var) bool {
	set := f.DerivedFrom(src)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.info.Uses[id].(*types.Var); ok && set[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// Escapes reports whether v's value can outlive the function: it (or a
// variable derived from it) is returned, sent on a channel, stored
// through a selector/index/dereference, captured by a closure declared
// after v, address-taken, placed in a composite literal, or passed to a
// non-size builtin or ordinary call. The answer is conservative: true
// means "possibly escapes".
func (f *Flow) Escapes(v *types.Var) bool {
	for w := range f.DerivedFrom(v) {
		for _, id := range f.uses[w] {
			if f.useEscapes(id, w) {
				return true
			}
		}
	}
	return false
}

// useEscapes classifies one use site. The climb crosses only
// value-preserving wrappers (parens, slicing — a reslice shares the
// backing array); projections like buf[i] or s.f extract a component,
// so escape of the component does not imply escape of the whole.
func (f *Flow) useEscapes(id *ast.Ident, w *types.Var) bool {
	// Capture check first: a use inside a closure that does not contain
	// w's declaration heap-allocates w no matter how the closure uses
	// it, so this outranks the value-flow climb below.
	for p := f.parents[ast.Node(id)]; p != nil; p = f.parents[p] {
		if lit, ok := p.(*ast.FuncLit); ok {
			if w.Pos() < lit.Pos() || w.Pos() > lit.End() {
				return true
			}
		}
	}
	child := ast.Node(id)
	for p := f.parents[child]; p != nil; child, p = p, f.parents[p] {
		switch pn := p.(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SliceExpr:
			if pn.X == child {
				continue
			}
			return false // an index bound, not the value
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return pn.Value == child
		case *ast.CallExpr:
			if pn.Fun == child {
				return false // calling through w, not passing it
			}
			return !sizeOnlyBuiltin(f.info, pn)
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return true
		case *ast.UnaryExpr:
			return pn.Op == token.AND
		case *ast.AssignStmt:
			for _, l := range pn.Lhs {
				if l == child {
					return false // def site, not a use of the value
				}
			}
			// w is on the rhs; a store into anything but a plain local
			// identifier (s.f = w, m[k] = w, *p = w) escapes.
			for _, l := range pn.Lhs {
				if _, plain := ast.Unparen(l).(*ast.Ident); !plain {
					return true
				}
			}
			return false // plain variable copy — derivation edges cover it
		case *ast.FuncLit:
			return false // capture handled above; inside its own literal
		case ast.Stmt, ast.Decl:
			return false
		default:
			// Projections and other expressions (IndexExpr, SelectorExpr,
			// StarExpr, BinaryExpr, TypeAssertExpr, ...): the flowing
			// value is no longer w itself.
			return false
		}
	}
	return false
}

// rangeKeyCarriesValue reports whether ranging over x gives the key
// position a value drawn from x (maps and channels) rather than a
// synthesized index (slices, arrays, strings, integers).
func rangeKeyCarriesValue(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return true // unknown: stay conservative, keep the edge
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Chan:
		return true
	}
	return false
}

// sizeOnlyBuiltin reports whether call is len or cap — builtins that
// inspect a value without retaining it.
func sizeOnlyBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return id.Name == "len" || id.Name == "cap"
}
