// Package dataflow builds intraprocedural def-use information over the
// typed AST — the dataflow tier beneath saqpvet's semantic analyzers.
//
// The existing analyzers (determinism, floatcmp, lockcheck, errdrop,
// doccheck) are syntactic: they classify individual nodes. The analyzers
// introduced with this package (allocfree, ctxleak) need to answer flow
// questions instead — "does this call receive a value derived from the
// context parameter?", "does the slice this make built leave the
// function?". Flow answers both with two intraprocedural relations,
// computed per function body with no external tooling:
//
//   - Derivation: a forward value-flow closure over assignments,
//     short-variable declarations and range clauses. DerivedFrom(v)
//     is the set of variables whose value (transitively) incorporates
//     v's; ExprDerivesFrom asks the same of an arbitrary expression.
//
//   - Escape: a use-site classification in the spirit of the compiler's
//     escape analysis, deliberately conservative. Escapes(v) reports
//     whether v's value can outlive the function: returned, sent on a
//     channel, stored through a selector/index/dereference, captured by
//     a closure declared after v, address-taken, placed in a composite
//     literal, or passed to a call.
//
// Both relations are flow-insensitive (no path ordering, no kill sets):
// an assignment anywhere in the body creates an edge everywhere. For
// lint-grade analysis this errs on the side of derivation — a value is
// considered context-derived or escaping if any path makes it so —
// which keeps false positives low for ctxleak and makes allocfree's
// escape exemption strictly conservative.
package dataflow
