package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one import-free source file and
// returns the first function declaration named fn.
func typecheck(t *testing.T, src, fn string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := &types.Config{}
	if _, err := conf.Check("flow", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd, info
		}
	}
	t.Fatalf("no function %q in source", fn)
	return nil, nil
}

// paramVar returns the named parameter of decl.
func paramVar(t *testing.T, info *types.Info, decl *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	for _, field := range decl.Type.Params.List {
		for _, id := range field.Names {
			if id.Name == name {
				return info.Defs[id].(*types.Var)
			}
		}
	}
	t.Fatalf("no parameter %q", name)
	return nil
}

// localVar returns the variable defined by the identifier named name
// inside decl.
func localVar(t *testing.T, info *types.Info, decl *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	var out *types.Var
	ast.Inspect(decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if v, ok := info.Defs[id].(*types.Var); ok {
				out = v
				return false
			}
		}
		return true
	})
	if out == nil {
		t.Fatalf("no local %q", name)
	}
	return out
}

func TestDerivationChain(t *testing.T) {
	src := `package p
func f(x int) int {
	a := x + 1
	b := a * 2
	c := 7
	return b + c
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	x := paramVar(t, info, decl, "x")
	set := flow.DerivedFrom(x)
	for _, name := range []string{"a", "b"} {
		if !set[localVar(t, info, decl, name)] {
			t.Errorf("%s should derive from x", name)
		}
	}
	if set[localVar(t, info, decl, "c")] {
		t.Error("c does not derive from x but was reported as derived")
	}
}

func TestRangeDerivation(t *testing.T) {
	src := `package p
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	xs := paramVar(t, info, decl, "xs")
	set := flow.DerivedFrom(xs)
	if !set[localVar(t, info, decl, "v")] {
		t.Error("range value v should derive from xs")
	}
	if !set[localVar(t, info, decl, "s")] {
		t.Error("s accumulates v and should derive from xs transitively")
	}
}

func TestExprDerivesFrom(t *testing.T) {
	src := `package p
func wrap(c chan int) chan int { return c }
func f(c chan int, other chan int) {
	d := wrap(c)
	_ = d
	_ = other
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	c := paramVar(t, info, decl, "c")
	var dUse ast.Expr
	ast.Inspect(decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "d" {
			if _, isUse := info.Uses[id]; isUse {
				dUse = id
			}
		}
		return true
	})
	if dUse == nil {
		t.Fatal("no use of d found")
	}
	if !flow.ExprDerivesFrom(dUse, c) {
		t.Error("d = wrap(c) should derive from c")
	}
	other := paramVar(t, info, decl, "other")
	if flow.ExprDerivesFrom(dUse, other) {
		t.Error("d does not derive from other")
	}
}

func TestEscapeByReturn(t *testing.T) {
	src := `package p
func f() []int {
	buf := make([]int, 8)
	return buf
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	if !flow.Escapes(localVar(t, info, decl, "buf")) {
		t.Error("returned slice must escape")
	}
}

func TestProjectionDoesNotEscape(t *testing.T) {
	src := `package p
func f() int {
	buf := make([]int, 8)
	for i := range buf {
		buf[i] = i
	}
	return buf[0]
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	if flow.Escapes(localVar(t, info, decl, "buf")) {
		t.Error("returning one element is a projection; the slice stays local")
	}
}

func TestEscapeByClosureCapture(t *testing.T) {
	src := `package p
func f() func() int {
	buf := make([]int, 4)
	return func() int { return len(buf) }
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	if !flow.Escapes(localVar(t, info, decl, "buf")) {
		t.Error("closure-captured slice must escape")
	}
}

func TestEscapeByFieldStore(t *testing.T) {
	src := `package p
type box struct{ s []int }
func f(b *box) {
	buf := make([]int, 4)
	b.s = buf
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	if !flow.Escapes(localVar(t, info, decl, "buf")) {
		t.Error("slice stored through a pointer field must escape")
	}
}

func TestEscapeThroughDerivedCopy(t *testing.T) {
	src := `package p
func f(ch chan []int) {
	buf := make([]int, 4)
	alias := buf
	ch <- alias
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	if !flow.Escapes(localVar(t, info, decl, "buf")) {
		t.Error("alias sent on a channel escapes the original")
	}
}

func TestLocalScratchDoesNotEscape(t *testing.T) {
	src := `package p
func f(xs []int) int {
	var scratch [8]int
	buf := scratch[:0]
	s := 0
	for _, x := range xs {
		s += x + len(buf)
	}
	return s
}`
	decl, info := typecheck(t, src, "f")
	flow := New(decl, info)
	if flow.Escapes(localVar(t, info, decl, "buf")) {
		t.Error("slice used only via len must stay local")
	}
}
