package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// HotpathDirective marks a function as part of the zero-allocation
// serving hot path. It goes on its own line at the end of the doc
// comment, directive-style (no space after //):
//
//	// evalPred evaluates one predicate against a row value.
//	//
//	//saqp:hotpath
//	func evalPred(v dataset.Value, p query.Predicate) bool { ... }
//
// The allocfree analyzer checks every annotated function — and every
// function it statically calls — for heap-allocating constructs, and
// each annotated function is expected to carry a testing.AllocsPerRun
// guard as the dynamic twin of the static check.
const HotpathDirective = "//saqp:hotpath"

// IsHotpath reports whether decl's doc comment carries the
// //saqp:hotpath directive.
func IsHotpath(decl *ast.FuncDecl) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == HotpathDirective {
			return true
		}
	}
	return false
}

// HotpathIndex answers "is that function annotated //saqp:hotpath?"
// for functions in *other* packages of the module. An analyzer pass
// sees cross-package callees only through type information (in vettool
// mode, export data), which drops comments — so the index re-parses
// the callee's package directory syntax-only on first query and caches
// the annotation set per directory. Safe for concurrent use.
type HotpathIndex struct {
	mu   sync.Mutex
	root string // module root; resolved lazily from the first query's file
	mod  string // module path from go.mod
	pkgs map[string]map[string]bool
}

// NewHotpathIndex returns an empty index.
func NewHotpathIndex() *HotpathIndex {
	return &HotpathIndex{pkgs: make(map[string]map[string]bool)}
}

// Annotated reports whether fn carries //saqp:hotpath at its
// definition. fromFile is any file path inside the module (typically
// the file containing the call site); it anchors the go.mod search so
// the index works identically under the standalone driver and the go
// vet vettool protocol, whose working directories differ. ok is false
// when fn's package lies outside the module or its source directory
// cannot be parsed — callers should treat that as unannotated.
func (ix *HotpathIndex) Annotated(fn *types.Func, fromFile string) (annotated, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return false, false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.root == "" {
		root, err := FindModuleRoot(filepath.Dir(fromFile))
		if err != nil {
			return false, false
		}
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err != nil {
			return false, false
		}
		m := moduleRE.FindSubmatch(data)
		if m == nil {
			return false, false
		}
		ix.root, ix.mod = root, string(m[1])
	}
	pkgPath := fn.Pkg().Path()
	if pkgPath != ix.mod && !strings.HasPrefix(pkgPath, ix.mod+"/") {
		return false, false
	}
	set, err := ix.packageSet(pkgPath)
	if err != nil {
		return false, false
	}
	return set[funcKey(fn)], true
}

// packageSet parses pkgPath's directory (comments on, bodies kept,
// tests skipped) and returns its annotated-function set.
func (ix *HotpathIndex) packageSet(pkgPath string) (map[string]bool, error) {
	if set, ok := ix.pkgs[pkgPath]; ok {
		return set, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, ix.mod), "/")
	dir := filepath.Join(ix.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, d := range f.Decls {
			decl, isFunc := d.(*ast.FuncDecl)
			if !isFunc || !IsHotpath(decl) {
				continue
			}
			set[declKey(decl)] = true
		}
	}
	ix.pkgs[pkgPath] = set
	return set, nil
}

// funcKey names a function or method the way declKey does from syntax:
// "Name" for functions, "Recv.Name" for methods.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fn.Name()
	}
	return named.Obj().Name() + "." + fn.Name()
}

// declKey is funcKey computed from the declaration's syntax alone.
func declKey(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.ParenExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver [T]
			t = rt.X
		case *ast.Ident:
			return rt.Name + "." + decl.Name.Name
		default:
			return decl.Name.Name
		}
	}
}
