package determinism_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/a")
}

// TestObservability covers the observability-flavoured fixture: trace
// timestamps from the wall clock and map-ordered serialisation are the
// failure modes that would silently break byte-identical trace output.
func TestObservability(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/b")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"saqp/internal/sim",
		"saqp/internal/cluster",
		"saqp/internal/sched",
		"saqp/internal/mapreduce",
		"saqp/internal/workload",
		"saqp/internal/obs",
		"saqp/internal/serve",
		"saqp/internal/fault",
		"saqp/internal/learn",
	} {
		if !determinism.Analyzer.AppliesTo(pkg) {
			t.Errorf("determinism should apply to %s", pkg)
		}
	}
	for _, pkg := range []string{"saqp/internal/query", "saqp/cmd/saqp", "saqp"} {
		if determinism.Analyzer.AppliesTo(pkg) {
			t.Errorf("determinism should not apply to %s", pkg)
		}
	}
}
