package determinism_test

import (
	"testing"

	"saqp/internal/analysis"
	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/a")
}

// TestObservability covers the observability-flavoured fixture: trace
// timestamps from the wall clock and map-ordered serialisation are the
// failure modes that would silently break byte-identical trace output.
func TestObservability(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/b")
}

// TestScope checks the analyzer against the single declared scope
// list: every deterministic package must be admitted, and packages
// outside the contract must not be. The list itself lives in
// analysis.DeterministicPackages — the analyzer aliases it, so the two
// can no longer drift apart the way two hand-maintained lists did.
func TestScope(t *testing.T) {
	for _, pkg := range analysis.DeterministicPackages {
		if !determinism.Analyzer.AppliesTo(pkg) {
			t.Errorf("determinism should apply to %s", pkg)
		}
	}
	for _, pkg := range []string{"saqp/internal/query", "saqp/cmd/saqp", "saqp"} {
		if determinism.Analyzer.AppliesTo(pkg) {
			t.Errorf("determinism should not apply to %s", pkg)
		}
	}
}
