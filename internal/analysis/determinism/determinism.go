package determinism

import (
	"go/ast"
	"go/types"

	"saqp/internal/analysis"
)

// forbiddenFuncs are time functions that read or depend on the wall
// clock. Simulated paths must thread simulated time (float64 seconds)
// instead.
var forbiddenFuncs = map[string]string{
	"time.Now":       "reads the wall clock",
	"time.Since":     "reads the wall clock",
	"time.Sleep":     "blocks on real time",
	"time.After":     "schedules on real time",
	"time.Tick":      "schedules on real time",
	"time.NewTicker": "schedules on real time",
	"time.NewTimer":  "schedules on real time",
}

// forbiddenImports are packages whose process-global generator breaks
// seeded reproducibility. saqp/internal/sim.RNG is the sanctioned
// replacement: seedable, forkable and embeddable in value types.
var forbiddenImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer flags wall-clock reads and global randomness in simulated
// code paths.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbids wall-clock reads (time.Now/Since/...), math/rand, and " +
		"map-iteration-ordered output in the simulated-execution packages, " +
		"so every run of a seeded experiment is bit-for-bit identical",
	// The scope is declared once, next to the loader, and shared with
	// the self-tests: see analysis.DeterministicPackages for the
	// per-package rationale.
	Scope: analysis.DeterministicPackages,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkImports(pass, f)
		checkTimeUses(pass, f)
		checkMapRangeOrder(pass, f)
	}
	return nil
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := imp.Path.Value // quoted
		if forbiddenImports[path[1:len(path)-1]] {
			pass.Reportf(imp.Pos(),
				"import of %s is nondeterministic across runs; use saqp/internal/sim.RNG (seedable, forkable)", path)
		}
	}
}

func checkTimeUses(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if why, bad := forbiddenFuncs[fn.FullName()]; bad {
			pass.Reportf(id.Pos(),
				"%s %s and breaks simulator determinism; thread simulated time through the call instead", fn.FullName(), why)
		}
		return true
	})
}

// checkMapRangeOrder flags loops that range over a map while appending
// to a slice declared outside the loop — the classic way map iteration
// order leaks into an ordered result. The collect-then-sort idiom is
// recognised: if a later statement in the same block passes the slice
// to the sort (or slices) package, the loop is not flagged.
func checkMapRangeOrder(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			return true
		}
		for i, st := range stmts {
			rng, ok := st.(*ast.RangeStmt)
			if !ok {
				continue
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				continue
			}
			for _, dst := range appendTargetsOutside(pass.TypesInfo, rng) {
				if sortedLater(pass.TypesInfo, stmts[i+1:], dst) {
					continue
				}
				pass.Reportf(rng.For,
					"appending to %s while ranging over a map leaks nondeterministic iteration order; collect keys, sort, then iterate", dst.Name())
			}
		}
		return true
	})
}

// appendTargetsOutside returns the objects of identifiers that receive
// append(...) inside the range body but are declared outside it.
func appendTargetsOutside(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if _, isBuiltin := info.Uses[fid].(*types.Builtin); !isBuiltin || fid.Name != "append" {
			return true
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[dst]
		if obj == nil || seen[obj] {
			return true
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			return true // loop-local accumulator; order confined to the loop
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// sortedLater reports whether any statement in rest calls into the sort
// or slices package with an expression mentioning obj.
func sortedLater(info *types.Info, rest []ast.Stmt, obj types.Object) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				mentions := false
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
						mentions = true
					}
					return !mentions
				})
				if mentions {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
