// Package determinism forbids sources of nondeterminism in the
// simulated-execution packages. The paper's results (IS/FS selectivity,
// Eq. 1–6; the time models of Eq. 8–9; SWRD schedules, Eq. 10) are only
// reproducible because every experiment is a pure function of its seed:
// a single wall-clock read or global-RNG draw in a sim path silently
// decouples repeated runs, and a map-iteration-ordered result makes
// schedules differ between executions of the same binary.
package determinism
