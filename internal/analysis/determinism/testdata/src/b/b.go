// Observability-flavoured fixture: the failure modes an instrumentation
// layer invites — wall-clock event timestamps and map-iteration-ordered
// serialisation — must be flagged, while the sim-clock and
// collect-then-sort idioms the real obs package uses must not.
package b

import (
	"sort"
	"strconv"
	"time"
)

// event is a trace event destined for a JSON line.
type event struct {
	name string
	ts   int64
}

// Stamping an event from the wall clock decouples repeated runs.
func stampWall(name string) event {
	return event{name: name, ts: time.Now().UnixMicro()} // want `time.Now reads the wall clock`
}

// Stamping from the simulator's virtual clock is the sanctioned pattern.
func stampSim(name string, nowSec float64) event {
	return event{name: name, ts: int64(nowSec * 1e6)}
}

// Serialising a counter map in range order makes the exposition differ
// between executions of the same binary.
func exposeUnsorted(counters map[string]int64) []string {
	var lines []string
	for name, v := range counters { // want `appending to lines while ranging over a map`
		lines = append(lines, name+" "+strconv.FormatInt(v, 10))
	}
	return lines
}

// The registry's collect-then-sort idiom is deterministic and unflagged.
func exposeSorted(counters map[string]int64) []string {
	var names []string
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var lines []string
	for _, name := range names {
		lines = append(lines, name+" "+strconv.FormatInt(counters[name], 10))
	}
	return lines
}

// Order-insensitive aggregation over a histogram map is fine.
func totalObservations(hists map[string][]uint64) uint64 {
	var n uint64
	for _, counts := range hists {
		for _, c := range counts {
			n += c
		}
	}
	return n
}
