// Fixture for the determinism analyzer: wall-clock reads, math/rand
// and map-iteration-order leaks must be flagged; seeded, sorted and
// loop-local patterns must not.
package a

import (
	"math/rand" // want `nondeterministic across runs`
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now()    // want `time.Now reads the wall clock`
	d := time.Since(t) // want `time.Since reads the wall clock`
	time.Sleep(1)      // want `time.Sleep blocks on real time`
	return int64(d)
}

// Referencing the function without calling it is just as nondeterministic.
var clockFn = time.Now // want `time.Now reads the wall clock`

// Pure time arithmetic and construction are fine.
func arithmetic() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

// The global generator is covered by the import diagnostic above; the
// call sites themselves are not re-flagged.
func draw() int {
	return rand.Intn(10)
}

// Ranging over a map while appending to an outer slice leaks iteration
// order into the result.
func leak(m map[string]int) []string {
	var out []string
	for k := range m { // want `appending to out while ranging over a map`
		out = append(out, k)
	}
	return out
}

// The collect-then-sort idiom is recognised and not flagged.
func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Order-insensitive reductions over maps are fine.
func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Appending to a loop-local slice confines the order to the loop body.
func confined(m map[string]int) int {
	longest := 0
	for k := range m {
		var parts []byte
		parts = append(parts, k...)
		if len(parts) > longest {
			longest = len(parts)
		}
	}
	return longest
}

// Ranging over a slice never depends on map order.
func slices(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
