package atomiccheck_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/atomiccheck"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, atomiccheck.Analyzer, "testdata/src/a")
}

func TestBrokenFixtureFires(t *testing.T) {
	analysistest.RunBroken(t, atomiccheck.Analyzer, "testdata/src/broken")
}
