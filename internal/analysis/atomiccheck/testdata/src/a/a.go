// Package a is the atomiccheck golden fixture: fields and globals
// with mixed atomic/plain access, clean counterparts, the
// construction-before-publication exemption, and a suppression.
package a

import "sync/atomic"

// counter mixes atomic and non-atomic access to n; m stays plain.
type counter struct {
	n int64
	m int64
}

// inc is the atomic side of the mix.
func inc(c *counter) {
	atomic.AddInt64(&c.n, 1)
}

// bad reads and writes n without the atomic API.
func bad(c *counter) int64 {
	c.n++      // want `non-atomic access to c\.n`
	return c.n // want `non-atomic access to c\.n`
}

// okOther touches m, which no one accesses atomically.
func okOther(c *counter) int64 {
	c.m++
	return c.m
}

// atomicRead stays on the atomic API and is clean.
func atomicRead(c *counter) int64 {
	return atomic.LoadInt64(&c.n)
}

// fresh initialises a counter it just built: nothing can race with a
// value that has not been published yet.
func fresh() *counter {
	c := &counter{}
	c.n = 5
	return c
}

// total is a package-level variable on the atomic side below.
var total int64

// addTotal is total's atomic access.
func addTotal() {
	atomic.AddInt64(&total, 1)
}

// readTotal leaks a plain load of total.
func readTotal() int64 {
	return total // want `non-atomic access to total`
}

// reset documents a reviewed plain write.
func reset(c *counter) {
	c.n = 0 //lint:allow saqpvet/atomiccheck runs before the worker pool starts, single-threaded by construction
}
