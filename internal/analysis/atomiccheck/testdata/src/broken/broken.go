// Package broken is the deliberately-failing atomiccheck fixture: a
// gauge incremented atomically but read with a plain load.
package broken

import "sync/atomic"

// Gauge counts events.
type Gauge struct{ v int64 }

// Inc is atomic.
func (g *Gauge) Inc() { atomic.AddInt64(&g.v, 1) }

// Read races with Inc.
func (g *Gauge) Read() int64 { return g.v }
