// Package atomiccheck implements the saqpvet analyzer enforcing
// all-or-nothing atomicity: once any code in a package reaches a
// struct field or package-level variable through sync/atomic, every
// other access to that location must be atomic too. A mixed access is
// a data race even when it "only reads" — the Go memory model gives a
// plain load concurrent with an atomic store undefined behaviour.
//
// Initialisation before publication is exempt: writes through a
// variable constructed inside the same function (the lockcheck
// locally-constructed rule) cannot yet be shared.
package atomiccheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"saqp/internal/analysis"
)

// Analyzer flags non-atomic access to locations touched by sync/atomic.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc: "flags plain reads/writes of struct fields and package variables " +
		"that are accessed through sync/atomic elsewhere in the package — " +
		"mixed access is a data race regardless of which side wins",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	// Pass 1: every &x handed to a sync/atomic function marks x's
	// object as atomically accessed; the marking nodes themselves are
	// remembered so pass 2 does not flag them.
	atomicObjs := make(map[types.Object]bool)
	atomicUses := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				target := ast.Unparen(u.X)
				if obj := accessedObject(info, target); obj != nil {
					atomicObjs[obj] = true
					atomicUses[target] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other access to a marked object is a race.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				target, name := accessNode(info, n)
				if target == nil || atomicUses[n] {
					return true
				}
				if !atomicObjs[target] {
					return true
				}
				if sel, ok := n.(*ast.SelectorExpr); ok && locallyConstructed(info, sel.X, fd) {
					return true
				}
				pass.Reportf(n.Pos(),
					"non-atomic access to %s, which is accessed with sync/atomic elsewhere in this package; use the atomic API or excuse with //lint:allow saqpvet/atomiccheck",
					name)
				return true
			})
		}
	}
	return nil
}

// accessedObject resolves the object an address-of target names: a
// struct field reached through a selector, or a package-level var.
func accessedObject(info *types.Info, e ast.Expr) types.Object {
	switch t := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[t]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return info.Uses[t.Sel] // qualified package-level var
	case *ast.Ident:
		if v, ok := info.Uses[t].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}

// accessNode classifies a node in pass 2 as an access to a trackable
// object, returning the object and a printable name.
func accessNode(info *types.Info, n ast.Node) (types.Object, string) {
	switch t := n.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[t]; ok && s.Kind() == types.FieldVal {
			return s.Obj(), exprName(t.X) + "." + t.Sel.Name
		}
	case *ast.Ident:
		if v, ok := info.Uses[t].(*types.Var); ok && !v.IsField() && v.Parent() != nil &&
			v.Parent().Parent() == types.Universe {
			return v, t.Name
		}
	}
	return nil, ""
}

// exprName renders the selector base for the diagnostic.
func exprName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "(...)"
}

// locallyConstructed reports whether base names a variable declared
// inside fn's body — still being built, not yet shareable.
func locallyConstructed(info *types.Info, base ast.Expr, fn *ast.FuncDecl) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() <= fn.Body.End()
}
