// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library (go/ast, go/parser, go/types, go/importer) so the repository
// carries no external dependencies.
//
// It exists because the paper's prediction pipeline is only reproducible
// while the simulator stays bit-for-bit deterministic and numerically
// careful. Those invariants — no wall-clock reads in simulated paths, no
// global math/rand, no exact float comparison in the estimator, no
// unguarded writes to mutex-protected state, no silently dropped errors —
// were previously upheld by convention. The analyzers in the
// sub-packages (determinism, floatcmp, lockcheck, errdrop) turn them
// into machine-checked rules, run by cmd/saqpvet both standalone and as
// a `go vet -vettool` plugin.
//
// The API deliberately mirrors x/tools' Analyzer/Pass/Diagnostic shape,
// so that if the real module ever becomes available the analyzers port
// over with trivial mechanical changes.
package analysis
