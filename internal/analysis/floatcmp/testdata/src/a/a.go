// Fixture for the floatcmp analyzer: exact equality on floating-point
// operands must be flagged; integer equality, ordered comparisons and
// fully constant-folded comparisons must not.
package a

func eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func neq(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

// Comparing against an untyped constant still compares floats.
func sentinel(x float64) bool {
	return x == 0 // want `floating-point == comparison`
}

func mixedWidth(x float64, y int) bool {
	return x == float64(y) // want `floating-point == comparison`
}

// Non-hits.

func ints(a, b int) bool { return a == b }

func strs(a, b string) bool { return a == b }

func ordered(x float64) bool { return x < 1.0 && x >= 0 }

const c1, c2 = 1.5, 2.5

// Folded at compile time: exact by definition.
var folded = c1 == c2

// A reviewed suppression silences the finding.
func excused(x float64) bool {
	return x == 1.0 //lint:allow saqpvet/floatcmp exact sentinel by construction
}
