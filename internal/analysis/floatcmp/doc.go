// Package floatcmp flags exact equality comparisons between
// floating-point operands in the estimation and prediction packages.
// Selectivities, histogram bucket boundaries and fitted model
// coefficients all accumulate rounding error; `==` on such values makes
// behaviour depend on the exact association order of float operations,
// which is precisely the kind of silent drift that corrupts the
// regression models the paper fits. Callers should use
// saqp/internal/core.ApproxEqual with an explicit tolerance, or add a
// reviewed //lint:allow saqpvet/floatcmp suppression where exactness is
// genuinely intended (e.g. a bit-identical sentinel).
package floatcmp
