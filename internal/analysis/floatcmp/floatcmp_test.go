package floatcmp_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "testdata/src/a")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"saqp/internal/selectivity",
		"saqp/internal/predict",
		"saqp/internal/histogram",
		"saqp/internal/trace",
	} {
		if !floatcmp.Analyzer.AppliesTo(pkg) {
			t.Errorf("floatcmp should apply to %s", pkg)
		}
	}
	// core hosts ApproxEqual itself and is deliberately out of scope.
	if floatcmp.Analyzer.AppliesTo("saqp/internal/core") {
		t.Error("floatcmp should not apply to saqp/internal/core")
	}
}
