package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"saqp/internal/analysis"
)

// Analyzer flags exact equality comparisons on floating-point operands.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags == and != on float32/float64 operands in the estimator and " +
		"predictor packages; use core.ApproxEqual(a, b, eps) instead",
	Scope: []string{
		"saqp/internal/selectivity",
		"saqp/internal/predict",
		"saqp/internal/histogram",
		"saqp/internal/trace",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(be.X)) && !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			// A comparison folded entirely at compile time is exact by
			// definition and cannot drift.
			if isConst(pass.TypesInfo, be.X) && isConst(pass.TypesInfo, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison is sensitive to rounding; use core.ApproxEqual with an explicit tolerance", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
