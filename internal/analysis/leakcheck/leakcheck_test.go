package leakcheck_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/leakcheck"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, leakcheck.Analyzer, "testdata/src/a")
}

func TestBrokenFixtureFires(t *testing.T) {
	analysistest.RunBroken(t, leakcheck.Analyzer, "testdata/src/broken")
}
