// Package leakcheck implements the saqpvet analyzer requiring every
// go statement to have a visible join or stop path. A goroutine with
// no WaitGroup.Done, no stop-channel receive, no close of a shared
// channel, no context and no range-over-channel has no way to be
// joined or told to exit — under the serving engine's pool and the
// learn registry's feedback loop, that is a leak the race detector
// cannot see because nothing ever touches the stuck goroutine again.
//
// The check is syntactic over the goroutine's body: a function
// literal's own body, or the resolved declaration for a same-package
// named call (go e.worker()). Dynamically dispatched targets cannot be
// inspected and are flagged for review.
package leakcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"saqp/internal/analysis"
)

// Analyzer flags goroutines without a visible join or stop path.
var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc: "requires every go statement's body to contain a visible join or " +
		"stop path — WaitGroup.Done, a stop-channel receive, close of a " +
		"shared channel, a context, or ranging over a channel — so no " +
		"goroutine can outlive its work invisibly",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, decls, g.Call)
			switch {
			case body == nil:
				pass.Reportf(g.Pos(),
					"goroutine target is not statically resolvable; inline it, name a package function, or excuse with //lint:allow saqpvet/leakcheck")
			case !hasStopPath(pass.TypesInfo, body):
				pass.Reportf(g.Pos(),
					"goroutine has no visible join or stop path (WaitGroup.Done, stop-channel receive, close of a shared channel, context, or range over a channel); it can leak")
			}
			return true
		})
	}
	return nil
}

// goBody resolves the block the goroutine will execute: a literal's
// body, or the declaration of a same-package function or method.
func goBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		if d, ok := decls[fn]; ok {
			return d.Body
		}
	}
	return nil
}

// hasStopPath reports whether body contains any construct that joins
// the goroutine or lets it observe a stop request.
func hasStopPath(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(info, node); fn != nil &&
				fn.FullName() == "(*sync.WaitGroup).Done" {
				found = true
			}
			if closesSharedChannel(info, body, node) {
				found = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && isStopChannel(info.TypeOf(node.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			// A context value in scope is a stop signal even when only
			// consulted via ctx.Err().
			if v, ok := info.Uses[node].(*types.Var); ok && isContext(v.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// closesSharedChannel reports whether call is close(ch) for a channel
// declared outside body — the producer idiom where the close itself is
// the completion signal consumers join on.
func closesSharedChannel(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	ch, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[ch].(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < body.Pos() || v.Pos() > body.End()
}

// isStopChannel reports whether t is a channel of struct{} — the shape
// of ctx.Done() and of the done-channel idiom.
func isStopChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
