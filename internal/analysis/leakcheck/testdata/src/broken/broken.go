// Package broken is the deliberately-failing leakcheck fixture: an
// unjoinable, unstoppable goroutine.
package broken

// Spawn leaks a producer.
func Spawn(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
