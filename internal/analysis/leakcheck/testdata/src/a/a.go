// Package a is the leakcheck golden fixture: leaking goroutines,
// every recognised join/stop idiom, and a reviewed suppression.
package a

import (
	"context"
	"sync"
)

// leak spawns a goroutine nothing can ever stop or join.
func leak(ch chan int) {
	go func() { // want `no visible join or stop path`
		for {
			ch <- 1
		}
	}()
}

// joined joins its workers through a WaitGroup.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// stopped listens on a stop channel.
func stopped(ch chan int, done chan struct{}) {
	go func() {
		select {
		case <-ch:
		case <-done:
		}
	}()
}

// ctxed consults a context.
func ctxed(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}()
}

// producer closes its output when done — the close is the completion
// signal consumers join on.
func producer(n int) chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
	return out
}

// ranged drains until the producer closes the channel.
func ranged(in chan int) {
	go func() {
		for range in {
		}
	}()
}

// named resolves a package-function target through its declaration.
func named(ch chan int) {
	go spin(ch) // want `no visible join or stop path`
}

// spin loops forever with no way out.
func spin(ch chan int) {
	for {
		ch <- 1
	}
}

// dynamic targets cannot be inspected.
func dynamic(f func()) {
	go f() // want `not statically resolvable`
}

// suppressed documents a reviewed fire-and-forget send.
func suppressed(ch chan int) {
	go func() { //lint:allow saqpvet/leakcheck one buffered send, receiver guaranteed by the caller
		ch <- 1
	}()
}
