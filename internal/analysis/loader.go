package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("saqp/internal/sim", or the package name
	// for analysistest fixtures).
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of one module without any
// external tooling: module-local imports are resolved against the
// module root and type-checked from source recursively; standard
// library imports go through go/importer's source compiler, which reads
// GOROOT and therefore works fully offline.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string

	std  types.Importer
	pkgs map[string]*loadResult
}

type loadResult struct {
	pkg *Package
	err error
	// loading marks an in-progress load for import-cycle detection.
	loading bool
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader returns a loader for the module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root: %w", err)
	}
	m := moduleRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: string(m[1]),
		ModuleRoot: abs,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*loadResult),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// LoadDir loads the package in dir, which must live under the module
// root. Test files are skipped: the package is loaded exactly as a
// downstream importer would see it.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// LoadFixtureDir loads dir as a standalone package (an analysistest
// fixture): only standard-library imports are available, and the import
// path is the package's own name.
func LoadFixtureDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	l := &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*loadResult),
	}
	files, names, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in fixture %s", dir)
	}
	return l.check(files[0].Name.Name, files, names)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if res, ok := l.pkgs[path]; ok {
		if res.loading {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return res.pkg, res.err
	}
	res := &loadResult{loading: true}
	l.pkgs[path] = res
	res.pkg, res.err = l.loadUncached(path, dir)
	res.loading = false
	return res.pkg, res.err
}

func (l *Loader) loadUncached(path, dir string) (*Package, error) {
	files, names, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	return l.check(path, files, names)
}

func (l *Loader) parseDir(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, names, nil
}

func (l *Loader) check(path string, files []*ast.File, names []string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Fset:      l.Fset,
		Files:     files,
		Filenames: names,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.ModulePath != "" &&
		(path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer, like the unexported
// helper in go/importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModuleDirs returns every directory under root that contains at least
// one non-test Go file, skipping testdata, hidden and underscore
// directories — the expansion of the "./..." pattern for the standalone
// driver.
func ModuleDirs(root string) ([]string, error) {
	var dirs []string
	// WalkDir interleaves a directory's files with descents into its
	// subdirectories, so dedup needs a set — comparing against the last
	// appended entry would record the same directory once per run of
	// files between subdirectory visits.
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
