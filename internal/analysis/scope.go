package analysis

// DeterministicPackages is the single declared list of packages under
// the simulator's bit-for-bit reproducibility contract: no wall-clock
// reads, no global randomness, no map-iteration-ordered output. The
// determinism analyzer's Scope and the loader-driven self-tests both
// consume this list, so a package cannot be in scope for one and
// silently fall out of the other; the self-test additionally checks
// the list against SeededCorePackages' import graph, so a new
// internal package that builds on the seeded core cannot dodge the
// contract by simply not being listed.
var DeterministicPackages = []string{
	"saqp/internal/sim",
	"saqp/internal/cluster",
	"saqp/internal/sched",
	"saqp/internal/mapreduce",
	"saqp/internal/workload",
	// The observability layer promises byte-identical traces, metrics
	// and drift snapshots for a fixed seed; a wall-clock timestamp or
	// map-ordered serialisation would break that silently.
	"saqp/internal/obs",
	// The serving engine promises that identical seeds submitted in
	// serialized order reproduce byte-identical metrics and drift
	// snapshots; wall-clock timeouts live in the root facade, outside
	// this scope, precisely so the engine itself stays clock-free.
	"saqp/internal/serve",
	// Fault plans promise byte-identical expansion and failure
	// decisions for equal specs; any entropy here would break the
	// seeded-replay guarantee.
	"saqp/internal/fault",
	// The model-lifecycle subsystem promises that promotion sequences
	// are functions of the observed sample stream alone — versions,
	// thresholds and error windows all count samples, never the clock,
	// and per-operator iteration is sorted before any output.
	"saqp/internal/learn",
	// The wire codec promises that every accepted frame re-encodes
	// byte-identically (the fuzzer's round-trip property) and that
	// golden transcripts stay byte-stable; a clock or map-ordered
	// field anywhere in encode/decode would break both. The
	// connection loop above it (internal/net) is deliberately NOT
	// listed: deadlines and accept scheduling are wall-clock by
	// nature, and the boundary keeps that entropy out of the codec.
	"saqp/internal/net/proto",
	// Shared substrate of the seeded core: values, traces and numeric
	// helpers feed directly into simulated execution, so entropy here
	// would surface as nondeterministic schedules downstream.
	"saqp/internal/dataset",
	"saqp/internal/trace",
	"saqp/internal/core",
	// The sketch tier promises byte-identical sketch state for the same
	// input stream: hashing is seedless FNV-1a plus a fixed SplitMix64
	// finalizer, and estimates are pure functions of register/counter
	// state. Catalog fingerprints and Bloom-pruned shuffles both depend
	// on that stability.
	"saqp/internal/sketch",
	// The shard coordinator promises byte-identical failover event logs
	// for equal (fault plan, sentinel config, tick count): the sentinel
	// state machine advances only on explicit ticks, heartbeat phases
	// derive from the seed, and status output never ranges a map. The
	// wall-clock ticker that drives Tick in a live cluster lives in
	// cmd/saqp, outside this scope.
	"saqp/internal/shardserve",
}

// SeededCorePackages are the packages whose import marks a consumer as
// part of the seeded execution core: importing any of them means the
// importer's outputs feed (or derive from) seeded simulation, so it
// belongs in DeterministicPackages. The self-test enforces exactly
// that implication for every saqp/internal package.
var SeededCorePackages = []string{
	"saqp/internal/sim",
	"saqp/internal/cluster",
	"saqp/internal/sched",
	"saqp/internal/mapreduce",
	"saqp/internal/fault",
	"saqp/internal/workload",
}
