package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow saqpvet/<name> suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why the invariant matters for reproduction fidelity.
	Doc string
	// Scope restricts the analyzer to packages whose import path equals
	// one of the entries or lives under one of them (prefix + "/").
	// Empty means every package. Fixture tests bypass Scope via
	// RunUnscoped.
	Scope []string
	// Run executes the pass and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's Scope admits the package path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzed package to an Analyzer.Run. Test files
// (*_test.go) are excluded from Files: saqpvet's invariants govern
// production code, and tests legitimately use exact comparisons and
// timing.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position fully resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the familiar file:line:col vet
// format, tagged with the analyzer that produced it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (saqpvet/%s)", d.Pos, d.Message, d.Analyzer)
}

// Run executes every analyzer whose Scope admits pkg, applies
// //lint:allow suppressions, and returns the surviving diagnostics in
// position order. Malformed suppression directives — unknown analyzer
// names (checked against the full suite, before scope filtering) or
// missing reasons — surface as diagnostics of their own.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	supp, directives := collectSuppressions(pkg)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		ds, err := runOne(pkg, a, supp)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	out = append(out, validateDirectives(directives, known)...)
	sortDiagnostics(out)
	return out, nil
}

// RunUnscoped executes a single analyzer regardless of its Scope —
// the entry point for analysistest fixtures, whose package path ("a")
// never matches production scopes. Suppressions still apply, so
// fixtures can also exercise the //lint:allow mechanism; directive
// validation knows only the one analyzer's name here.
func RunUnscoped(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	supp, directives := collectSuppressions(pkg)
	ds, err := runOne(pkg, a, supp)
	if err != nil {
		return nil, err
	}
	ds = append(ds, validateDirectives(directives, map[string]bool{a.Name: true})...)
	sortDiagnostics(ds)
	return ds, nil
}

func runOne(pkg *Package, a *Analyzer, supp suppressions) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     nonTestFiles(pkg),
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
	}
	var kept []Diagnostic
	for _, d := range pass.diags {
		if supp.allows(a.Name, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	return kept, nil
}

func nonTestFiles(pkg *Package) []*ast.File {
	var out []*ast.File
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// CalleeFunc resolves the called function of a call expression, or nil
// for builtins, function literals and indirect calls through variables.
// Shared by several analyzers.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
