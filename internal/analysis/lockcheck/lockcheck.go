package lockcheck

import (
	"go/ast"
	"go/types"

	"saqp/internal/analysis"
)

// Analyzer flags unguarded access to mutex-protected struct fields.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "flags writes to struct fields that are guarded elsewhere by a " +
		"sync.Mutex of the same struct, when the writing function never " +
		"locks that mutex",
	Run: run,
}

// write is one recorded field assignment.
type write struct {
	structObj *types.TypeName
	field     string
	pos       ast.Expr // the selector being written
	base      ast.Expr // the expression the field is selected from
	fn        *ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	structs := mutexStructs(pass)
	if len(structs) == 0 {
		return nil
	}

	var writes []write
	// locked[fn] holds the struct types whose mutex fn locks (any of the
	// struct's mutex fields counts).
	locked := make(map[*ast.FuncDecl]map[*types.TypeName]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locked[fn] = make(map[*types.TypeName]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					if obj := lockTarget(pass.TypesInfo, structs, node); obj != nil {
						locked[fn][obj] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range node.Lhs {
						recordWrite(pass.TypesInfo, structs, fn, lhs, &writes)
					}
				case *ast.IncDecStmt:
					recordWrite(pass.TypesInfo, structs, fn, node.X, &writes)
				}
				return true
			})
		}
	}

	// A field is guarded if at least one write to it happens in a
	// function that locks the struct's mutex.
	type key struct {
		s *types.TypeName
		f string
	}
	guarded := make(map[key]bool)
	for _, w := range writes {
		if locked[w.fn][w.structObj] {
			guarded[key{w.structObj, w.field}] = true
		}
	}

	for _, w := range writes {
		if !guarded[key{w.structObj, w.field}] || locked[w.fn][w.structObj] {
			continue
		}
		if locallyConstructed(pass.TypesInfo, w.base, w.fn) {
			continue
		}
		pass.Reportf(w.pos.Pos(),
			"write to %s.%s without holding %s's mutex (field is locked elsewhere); lock it or excuse with //lint:allow saqpvet/lockcheck",
			w.structObj.Name(), w.field, w.structObj.Name())
	}
	return nil
}

// mutexStructs maps each package-level struct type to the names of its
// sync.Mutex / sync.RWMutex fields.
func mutexStructs(pass *analysis.Pass) map[*types.TypeName][]string {
	out := make(map[*types.TypeName][]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			var mus []string
			for i := 0; i < st.NumFields(); i++ {
				if isSyncMutex(st.Field(i).Type()) {
					mus = append(mus, st.Field(i).Name())
				}
			}
			if len(mus) > 0 {
				out[obj] = mus
			}
			return true
		})
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// baseStruct resolves expr to one of the recorded struct types, seeing
// through one level of pointer.
func baseStruct(info *types.Info, structs map[*types.TypeName][]string, expr ast.Expr) *types.TypeName {
	t := info.TypeOf(expr)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := structs[named.Obj()]; ok {
		return named.Obj()
	}
	return nil
}

// lockTarget reports which recorded struct a call like s.mu.Lock(),
// s.mu.RLock() or s.Lock() (embedded mutex) locks, or nil.
func lockTarget(info *types.Info, structs map[*types.TypeName][]string, call *ast.CallExpr) *types.TypeName {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return nil
	}
	// s.mu.Lock(): the mutex is a named field of a recorded struct.
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		if obj := baseStruct(info, structs, inner.X); obj != nil {
			for _, mu := range structs[obj] {
				if inner.Sel.Name == mu {
					return obj
				}
			}
		}
	}
	// s.Lock(): promoted method of an embedded mutex.
	if obj := baseStruct(info, structs, sel.X); obj != nil {
		for _, mu := range structs[obj] {
			if mu == "Mutex" || mu == "RWMutex" {
				return obj
			}
		}
	}
	return nil
}

func recordWrite(info *types.Info, structs map[*types.TypeName][]string, fn *ast.FuncDecl, lhs ast.Expr, writes *[]write) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := baseStruct(info, structs, sel.X)
	if obj == nil {
		return
	}
	for _, mu := range structs[obj] {
		if sel.Sel.Name == mu {
			return // writing the mutex field itself (e.g. zeroing) is out of scope
		}
	}
	*writes = append(*writes, write{structObj: obj, field: sel.Sel.Name, pos: sel, base: sel.X, fn: fn})
}

// locallyConstructed reports whether base is a variable declared inside
// fn's body — the value is still being built and cannot be shared yet.
func locallyConstructed(info *types.Info, base ast.Expr, fn *ast.FuncDecl) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() <= fn.Body.End()
}
