// Fixture for the lockcheck analyzer: writes to mutex-guarded fields
// from functions that never take the lock must be flagged; locked
// writes, never-guarded fields and local construction must not.
package a

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int
	name string
}

// inc establishes that counter.n is guarded by counter.mu.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) reset() {
	c.n = 0 // want `write to counter.n without holding`
}

// name is never written under the lock, so it is not considered guarded.
func (c *counter) setName(s string) {
	c.name = s
}

// Construction before the value escapes is not flagged.
func newCounter() *counter {
	c := &counter{}
	c.n = 7
	return c
}

// Embedded mutexes and the promoted Lock method are recognised.
type gauge struct {
	sync.RWMutex
	v float64
}

func (g *gauge) set(x float64) {
	g.Lock()
	g.v = x
	g.Unlock()
}

func (g *gauge) snapshot() float64 {
	g.RLock()
	defer g.RUnlock()
	return g.v
}

func (g *gauge) bump() {
	g.v++ // want `write to gauge.v without holding`
}

// A reviewed suppression silences the finding.
func (g *gauge) install(x float64) {
	g.v = x //lint:allow saqpvet/lockcheck single-goroutine setup phase
}
