package lockcheck_test

import (
	"testing"

	"saqp/internal/analysis/analysistest"
	"saqp/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "testdata/src/a")
}

func TestScopeIsGlobal(t *testing.T) {
	for _, pkg := range []string{"saqp", "saqp/internal/mapreduce", "saqp/internal/workload"} {
		if !lockcheck.Analyzer.AppliesTo(pkg) {
			t.Errorf("lockcheck should apply to %s", pkg)
		}
	}
}
