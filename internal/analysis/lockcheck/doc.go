// Package lockcheck is a heuristic, flow-insensitive checker for
// mutex-guarded struct fields. Within one package it observes which
// struct fields are ever written by a function that locks a sync.Mutex
// or sync.RWMutex field of the same struct ("guarded" fields), then
// flags writes to those fields from functions that never lock that
// mutex. This is the invariant the parallel aggregation paths in
// internal/mapreduce and internal/workload rely on: a partial-sum field
// updated outside the lock races under -race and, worse, can merge
// nondeterministically, corrupting the measured IS/FS ground truth.
//
// Heuristics and limits (deliberate, to keep the false-positive rate
// workable): analysis is per package and flow-insensitive — locking
// anywhere in a function counts for the whole function, including its
// closures; writes through a variable declared inside the same function
// body are treated as construction of a not-yet-shared value and are
// not flagged; only named mutex fields and embedded sync.Mutex/RWMutex
// are recognised. Escapes are reviewed with
// //lint:allow saqpvet/lockcheck.
package lockcheck
