package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"saqp/internal/analysis"
)

// assignFlagger reports every assignment statement — a minimal analyzer
// for exercising the framework and the suppression mechanism.
var assignFlagger = &analysis.Analyzer{
	Name: "assignflag",
	Doc:  "test analyzer that flags every assignment",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if st, ok := n.(*ast.AssignStmt); ok {
					pass.Reportf(st.Pos(), "assignment")
				}
				return true
			})
		}
		return nil
	},
}

func loadFixture(t *testing.T, src string) *analysis.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestSuppressionMechanism(t *testing.T) {
	pkg := loadFixture(t, `package a

func f() int {
	x := 1 //lint:allow saqpvet/assignflag trailing-form suppression
	//lint:allow saqpvet/assignflag preceding-form suppression
	y := 2
	z := 3
	return x + y + z
}
`)
	diags, err := analysis.RunUnscoped(pkg, assignFlagger)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the unsuppressed assignment flagged, got %d: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 7 {
		t.Errorf("surviving diagnostic on line %d, want line 7 (z := 3)", diags[0].Pos.Line)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	pkg := loadFixture(t, `package a

func f() int {
	x := 1 //lint:allow saqpvet/otherpass not this analyzer
	return x
}
`)
	diags, err := analysis.RunUnscoped(pkg, assignFlagger)
	if err != nil {
		t.Fatal(err)
	}
	// The assignment survives (the directive names a different pass),
	// and the directive itself is flagged: "otherpass" is unknown to
	// this run, so the author's suppression does nothing.
	if len(diags) != 2 {
		t.Fatalf("want surviving assignment + unknown-analyzer directive, got %d: %v", len(diags), diags)
	}
	var assignSeen, unknownSeen bool
	for _, d := range diags {
		switch d.Analyzer {
		case "assignflag":
			assignSeen = true
		case "suppress":
			unknownSeen = true
		}
	}
	if !assignSeen || !unknownSeen {
		t.Errorf("want one assignflag and one suppress diagnostic, got %v", diags)
	}
}

func TestTestFilesAreSkipped(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"a.go":      "package a\n\nfunc f() int {\n\tx := 1\n\treturn x\n}\n",
		"a_test.go": "package a\n\nfunc g() int {\n\ty := 2\n\treturn y\n}\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunUnscoped(pkg, assignFlagger)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (test file skipped at load), got %d: %v", len(diags), diags)
	}
}

func TestScopeFiltering(t *testing.T) {
	scoped := &analysis.Analyzer{
		Name:  "scoped",
		Scope: []string{"saqp/internal/sim"},
		Run:   assignFlagger.Run,
	}
	cases := map[string]bool{
		"saqp/internal/sim":      true,
		"saqp/internal/sim/sub":  true,
		"saqp/internal/simulate": false,
		"saqp/internal/query":    false,
	}
	for pkg, want := range cases {
		if got := scoped.AppliesTo(pkg); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", pkg, got, want)
		}
	}
}
