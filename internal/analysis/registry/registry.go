// Package registry declares the saqpvet analyzer suite in one place.
// cmd/saqpvet (both driver modes) and the analysis package's
// repository self-test consume this list, so an analyzer added here is
// automatically enforced by `make lint`, by `go vet -vettool`, and by
// `go test ./internal/analysis` — and one forgotten here is enforced
// nowhere, which is why nothing else declares its own list.
package registry

import (
	"saqp/internal/analysis"
	"saqp/internal/analysis/allocfree"
	"saqp/internal/analysis/atomiccheck"
	"saqp/internal/analysis/ctxleak"
	"saqp/internal/analysis/determinism"
	"saqp/internal/analysis/doccheck"
	"saqp/internal/analysis/errdrop"
	"saqp/internal/analysis/floatcmp"
	"saqp/internal/analysis/leakcheck"
	"saqp/internal/analysis/lockcheck"
)

// All returns the full saqpvet analyzer suite in reporting order. It
// returns a fresh slice each call so no caller can reorder or truncate
// another's view of the suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		doccheck.Analyzer,
		floatcmp.Analyzer,
		lockcheck.Analyzer,
		errdrop.Analyzer,
		allocfree.Analyzer,
		ctxleak.Analyzer,
		atomiccheck.Analyzer,
		leakcheck.Analyzer,
	}
}
