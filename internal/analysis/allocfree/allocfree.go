// Package allocfree implements the saqpvet analyzer enforcing the
// zero-allocation contract of //saqp:hotpath functions.
//
// A function marked //saqp:hotpath — and every function it statically
// calls within its package or, cross-package, within the module — must
// not contain heap-allocating constructs. The static check is paired
// with testing.AllocsPerRun guards in each annotated package, so the
// analyzer and the runtime cross-validate: a construct the analyzer
// misses trips the guard, and a guard someone deletes leaves the
// analyzer.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"saqp/internal/analysis"
	"saqp/internal/analysis/dataflow"
)

// index resolves //saqp:hotpath annotations on cross-package callees,
// which type information alone (export data in vettool mode) cannot
// see. Shared across passes: the annotation set per package is
// immutable within one saqpvet run.
var index = analysis.NewHotpathIndex()

// Analyzer flags heap-allocating constructs reachable from functions
// marked //saqp:hotpath.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "forbids heap-allocating constructs (growing make/append, closure " +
		"captures, interface boxing of non-pointer values, fmt calls, string " +
		"building) in functions marked //saqp:hotpath and in everything they " +
		"statically call, keeping the per-row serving path allocation-free",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if analysis.IsHotpath(fd) {
				roots = append(roots, fd)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first closure over intra-package static calls: an
	// annotated function's helpers inherit the contract without needing
	// their own annotation.
	type item struct {
		decl *ast.FuncDecl
		root string
	}
	checked := make(map[*ast.FuncDecl]bool)
	var work []item
	for _, r := range roots {
		work = append(work, item{r, r.Name.Name})
	}
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		if checked[it.decl] {
			continue
		}
		checked[it.decl] = true
		for _, callee := range checkFunc(pass, it.decl, it.root) {
			if d, ok := decls[callee]; ok && !checked[d] {
				work = append(work, item{d, it.root})
			}
		}
	}
	return nil
}

// checkFunc reports every allocating construct in decl and returns the
// same-package callees to fold into the closure.
func checkFunc(pass *analysis.Pass, decl *ast.FuncDecl, root string) []*types.Func {
	info := pass.TypesInfo
	flow := dataflow.New(decl, info)
	suffix := ""
	if !analysis.IsHotpath(decl) {
		suffix = fmt.Sprintf(" (reached from //saqp:hotpath %s)", root)
	}
	filename := pass.Fset.Position(decl.Pos()).Filename
	var callees []*types.Func
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(node.Pos(),
				"go statement allocates a goroutine on the hot path%s", suffix)
		case *ast.CompositeLit:
			if t := info.TypeOf(node); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(node.Pos(), "slice literal allocates on the hot path%s", suffix)
				case *types.Map:
					pass.Reportf(node.Pos(), "map literal allocates on the hot path%s", suffix)
				}
			}
		case *ast.FuncLit:
			if captures(info, pass.Pkg, node) {
				pass.Reportf(node.Pos(),
					"closure captures outer variables and allocates its context on the hot path%s", suffix)
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isString(info.TypeOf(node)) {
				pass.Reportf(node.Pos(),
					"string concatenation allocates on the hot path%s", suffix)
			}
		case *ast.AssignStmt:
			if len(node.Lhs) == len(node.Rhs) {
				for i := range node.Lhs {
					if boxes(info, info.TypeOf(node.Lhs[i]), node.Rhs[i]) {
						pass.Reportf(node.Rhs[i].Pos(),
							"assignment boxes a non-pointer value into an interface%s", suffix)
					}
				}
			}
		case *ast.SendStmt:
			if ch, ok := info.TypeOf(node.Chan).Underlying().(*types.Chan); ok {
				if boxes(info, ch.Elem(), node.Value) {
					pass.Reportf(node.Value.Pos(),
						"send boxes a non-pointer value into an interface%s", suffix)
				}
			}
		case *ast.ReturnStmt:
			checkReturn(pass, flow, decl, node, suffix)
		case *ast.CallExpr:
			callees = append(callees, checkCall(pass, flow, node, filename, suffix)...)
		}
		return true
	})
	return callees
}

// checkCall classifies one call: conversion, builtin, static call or
// dynamic dispatch. It returns same-package callees for the closure.
func checkCall(pass *analysis.Pass, flow *dataflow.Flow, call *ast.CallExpr, filename, suffix string) []*types.Func {
	info := pass.TypesInfo

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if boxes(info, dst, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"conversion boxes a non-pointer value into an interface%s", suffix)
		}
		if stringSliceConversion(dst, src) {
			pass.Reportf(call.Pos(),
				"string/byte-slice conversion copies and allocates on the hot path%s", suffix)
		}
		return nil
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				checkMake(pass, flow, call, suffix)
			case "append":
				pass.Reportf(call.Pos(),
					"append may grow its backing array on the hot path%s", suffix)
			case "new":
				if v, ok := resultVar(info, flow, call); !ok || flow.Escapes(v) {
					pass.Reportf(call.Pos(),
						"new result escapes the function and heap-allocates%s", suffix)
				}
			}
			return nil
		}
	}

	// Argument boxing and variadic packing apply to static and dynamic
	// calls alike; the signature comes from the call's function type.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		checkArgs(pass, sig, call, suffix)
	}

	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		if _, inline := ast.Unparen(call.Fun).(*ast.FuncLit); !inline {
			pass.Reportf(call.Pos(),
				"call through a function value cannot be verified allocation-free%s", suffix)
		}
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			pass.Reportf(call.Pos(),
				"dynamically dispatched call to %s cannot be verified allocation-free%s",
				fn.Name(), suffix)
			return nil
		}
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	if pkg == pass.Pkg {
		return []*types.Func{fn}
	}
	if pkg.Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s formats through reflection and allocates on the hot path%s",
			fn.Name(), suffix)
		return nil
	}
	// Cross-package module callees must carry their own annotation so
	// their own package's allocfree pass (and AllocsPerRun guard)
	// covers them; other imports (stdlib) are trusted as reviewed.
	if annotated, ok := index.Annotated(fn, filename); ok && !annotated {
		pass.Reportf(call.Pos(),
			"hot path calls %s.%s, which is not marked //saqp:hotpath; annotate it or excuse this call",
			pkg.Name(), fn.Name())
	}
	return nil
}

// checkMake reports makes that must heap-allocate: maps and channels
// always do; slices do when sized by a non-constant expression, and
// when a constant-sized result escapes the function.
func checkMake(pass *analysis.Pass, flow *dataflow.Flow, call *ast.CallExpr, suffix string) {
	info := pass.TypesInfo
	t := info.TypeOf(call)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(call.Pos(), "make of a map allocates on the hot path%s", suffix)
	case *types.Chan:
		pass.Reportf(call.Pos(), "make of a channel allocates on the hot path%s", suffix)
	case *types.Slice:
		for _, a := range call.Args[1:] {
			if info.Types[a].Value == nil {
				pass.Reportf(call.Pos(),
					"make with non-constant size allocates on every call%s", suffix)
				return
			}
		}
		if v, ok := resultVar(info, flow, call); !ok || flow.Escapes(v) {
			pass.Reportf(call.Pos(),
				"constant-size make escapes the function and heap-allocates%s", suffix)
		}
	}
}

// checkArgs reports interface boxing of arguments and the slice a
// variadic call packs its arguments into.
func checkArgs(pass *analysis.Pass, sig *types.Signature, call *ast.CallExpr, suffix string) {
	info := pass.TypesInfo
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			pass.Reportf(arg.Pos(),
				"argument boxes a non-pointer value into an interface parameter%s", suffix)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		pass.Reportf(call.Pos(),
			"variadic call allocates its argument slice on the hot path%s", suffix)
	}
}

// checkReturn reports boxing at decl's own return statements; returns
// inside nested literals answer to their literal's signature instead
// and are skipped (a capturing literal is already flagged).
func checkReturn(pass *analysis.Pass, flow *dataflow.Flow, decl *ast.FuncDecl, ret *ast.ReturnStmt, suffix string) {
	for p := flow.Parent(ret); p != nil; p = flow.Parent(p) {
		if _, ok := p.(*ast.FuncLit); ok {
			return
		}
	}
	fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	res := fn.Type().(*types.Signature).Results()
	if len(ret.Results) != res.Len() {
		return
	}
	for i, r := range ret.Results {
		if boxes(pass.TypesInfo, res.At(i).Type(), r) {
			pass.Reportf(r.Pos(),
				"return boxes a non-pointer value into an interface result%s", suffix)
		}
	}
}

// captures reports whether lit reads any function-local variable
// declared outside itself — the capture that forces a heap-allocated
// closure context. Package-level variables cost nothing to reference.
func captures(info *types.Info, pkg *types.Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// resultVar resolves the plain local variable a call's result is
// assigned to, if the call is the direct right-hand side of one.
func resultVar(info *types.Info, flow *dataflow.Flow, call *ast.CallExpr) (*types.Var, bool) {
	switch st := flow.Parent(call).(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) != len(st.Rhs) {
			return nil, false
		}
		for i := range st.Rhs {
			if st.Rhs[i] != ast.Expr(call) {
				continue
			}
			if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					return v, true
				}
				if v, ok := info.Uses[id].(*types.Var); ok {
					return v, true
				}
			}
		}
	case *ast.ValueSpec:
		for i, val := range st.Values {
			if val == ast.Expr(call) && i < len(st.Names) {
				if v, ok := info.Defs[st.Names[i]].(*types.Var); ok {
					return v, true
				}
			}
		}
	}
	return nil, false
}

// boxes reports whether assigning src to a destination of type dst
// stores a non-pointer-shaped concrete value into an interface — the
// conversion that heap-allocates a box.
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	st := info.TypeOf(src)
	if st == nil || types.IsInterface(st) {
		return false
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !pointerShaped(st)
}

// pointerShaped reports whether values of t fit in an interface word
// without boxing: pointers, channels, maps, functions, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringSliceConversion reports string<->[]byte/[]rune conversions,
// which copy their operand.
func stringSliceConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
