// Package broken is the deliberately-failing allocfree fixture: a hot
// path that builds strings through fmt. The test only asserts the
// analyzer fires here, so the file carries no want expectations.
package broken

import "fmt"

// Hot concatenates and formats on an annotated hot path.
//
//saqp:hotpath
func Hot(names []string) string {
	out := ""
	for _, n := range names {
		out = out + "," + n
	}
	return fmt.Sprintf("[%s]", out)
}
