// Package a is the allocfree golden fixture: annotated hot paths with
// allocating constructs, a clean hot path, a reviewed suppression, and
// unannotated code the analyzer must ignore.
package a

import "fmt"

// sum is an annotated hot path with a clean body: loops, arithmetic
// and projections never allocate.
//
//saqp:hotpath
func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// badHot exercises the core allocating constructs in one body.
//
//saqp:hotpath
func badHot(xs []float64, n int) float64 {
	buf := make([]float64, n) // want `make with non-constant size`
	buf = append(buf, 1)      // want `append may grow`
	fmt.Println()             // want `fmt\.Println formats through reflection`
	_ = buf
	return helper(xs)
}

// helper carries no annotation, but badHot calls it, so it inherits
// the contract through the intra-package closure.
func helper(xs []float64) float64 {
	out := make([]float64, len(xs)) // want `make with non-constant size`
	copy(out, xs)
	return out[0]
}

// boxed stores an int into an interface variable.
//
//saqp:hotpath
func boxed(x int) {
	var v interface{}
	v = x // want `boxes a non-pointer value`
	_ = v
}

// captured builds a closure over its parameter and calls it.
//
//saqp:hotpath
func captured(x int) int {
	f := func() int { return x } // want `closure captures outer variables`
	return f()                   // want `call through a function value`
}

// reviewed keeps a constant-size escaping buffer that a human signed
// off on; the suppression must silence the finding.
//
//saqp:hotpath
func reviewed() []float64 {
	out := make([]float64, 64) //lint:allow saqpvet/allocfree one-time setup buffer, reviewed with the cache redesign
	return out
}

// cold allocates freely: it is neither annotated nor reachable from an
// annotated function, so the analyzer must stay silent here.
func cold(n int) []float64 {
	out := make([]float64, n)
	return append(out, 1)
}
