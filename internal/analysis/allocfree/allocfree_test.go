package allocfree_test

import (
	"testing"

	"saqp/internal/analysis/allocfree"
	"saqp/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "testdata/src/a")
}

func TestBrokenFixtureFires(t *testing.T) {
	diags := analysistest.RunBroken(t, allocfree.Analyzer, "testdata/src/broken")
	// The broken fixture's one hot path must trip at least the fmt ban
	// and the string-concatenation rule.
	var fmtHit, concatHit bool
	for _, d := range diags {
		switch {
		case d.Message[:4] == "fmt.":
			fmtHit = true
		case len(d.Message) >= 6 && d.Message[:6] == "string":
			concatHit = true
		}
	}
	if !fmtHit || !concatHit {
		t.Errorf("want fmt and string-concat findings, got: %v", diags)
	}
}
