// Package cluster is a discrete-event simulator of a Hadoop 1.x cluster:
// nodes with fixed container slots execute the map and reduce tasks of
// MapReduce jobs, jobs belong to query DAGs and are submitted when their
// dependencies complete (Hive's JobListener behaviour, paper Section 2.2),
// and a pluggable Scheduler decides which pending task each freed container
// runs next.
//
// The simulator replaces the paper's physical 9-node testbed. Task
// durations come from the hidden trace.CostModel; per-task predicted times
// (from the paper's multivariate model) ride along so semantics-aware
// schedulers can compute Weighted Resource Demand without seeing the
// ground truth.
package cluster
