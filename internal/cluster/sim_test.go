package cluster_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/cluster"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/trace"
)

// synthQuery builds a query directly, bypassing the planner: jobSpecs give
// (maps, reduces, mapSec, redSec, deps). Predicted times equal actuals so
// WRD-driven tests are exact.
type jobSpec struct {
	id      string
	maps    int
	reds    int
	mapSec  float64
	redSec  float64
	deps    []string
	jobType plan.JobType
}

func synthQuery(id string, specs []jobSpec) *cluster.Query {
	q := &cluster.Query{ID: id}
	for _, sp := range specs {
		j := &cluster.Job{ID: id + "/" + sp.id, JobID: sp.id, Query: q, Type: sp.jobType, DepIDs: sp.deps}
		for i := 0; i < sp.maps; i++ {
			j.Maps = append(j.Maps, &cluster.Task{Job: j, Index: i, ActualSec: sp.mapSec, PredSec: sp.mapSec})
		}
		for i := 0; i < sp.reds; i++ {
			j.Reds = append(j.Reds, &cluster.Task{Job: j, Reduce: true, Index: i, ActualSec: sp.redSec, PredSec: sp.redSec})
		}
		j.ResetPending()
		q.Jobs = append(q.Jobs, j)
	}
	q.RecomputeWRD()
	return q
}

func TestSingleTaskMakespan(t *testing.T) {
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 1, mapSec: 10}})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, SchedulingOverheadSec: 0.5}, sched.HCS{})
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10.5 {
		t.Fatalf("makespan = %v, want 10.5", res.Makespan)
	}
	if q.ResponseTime() != 10.5 {
		t.Fatalf("response = %v", q.ResponseTime())
	}
}

func TestWaveMakespan(t *testing.T) {
	// 20 maps of 10s on 8 map slots: 3 waves => ~30s.
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 20, mapSec: 10}})
	s := cluster.New(cluster.Config{Nodes: 2, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1}, sched.HCS{})
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 30 {
		t.Fatalf("makespan = %v, want 30", res.Makespan)
	}
}

func TestReduceBarrierStrictSlowstart(t *testing.T) {
	// With slowstart=1.0 reduces may not start until every map finished.
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 4, reds: 2, mapSec: 5, redSec: 3}})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 4, ReduceSlotsPerNode: 4, ReduceSlowstart: 1}, sched.HCS{})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var lastMapEnd, firstRedStart float64
	firstRedStart = math.Inf(1)
	for _, task := range q.Jobs[0].Maps {
		lastMapEnd = math.Max(lastMapEnd, task.EndTime)
	}
	for _, task := range q.Jobs[0].Reds {
		firstRedStart = math.Min(firstRedStart, task.StartTime)
	}
	if firstRedStart < lastMapEnd {
		t.Fatalf("reduce started at %v before maps finished at %v", firstRedStart, lastMapEnd)
	}
}

func TestReduceSlowstartHoardsSlots(t *testing.T) {
	// Default slowstart 0.05: reduces launch after the first map but can
	// only FINISH after the whole map phase plus their own duration.
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 4, reds: 2, mapSec: 5, redSec: 3}})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2}, sched.HCS{})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var lastMapEnd float64
	for _, task := range q.Jobs[0].Maps {
		lastMapEnd = math.Max(lastMapEnd, task.EndTime)
	}
	early := 0
	for _, task := range q.Jobs[0].Reds {
		if task.StartTime < lastMapEnd {
			early++
			// A hoarding reduce cannot finish before the map phase ends
			// plus its own work.
			if task.EndTime < lastMapEnd+task.ActualSec {
				t.Fatalf("reduce finished at %v, before map end %v + work %v", task.EndTime, lastMapEnd, task.ActualSec)
			}
		}
	}
	// The launch ramp allows part of the reduces to start early.
	if early == 0 {
		t.Fatal("no reduce launched before the map phase ended")
	}
	if early == len(q.Jobs[0].Reds) {
		t.Fatal("launch ramp should not release every reduce at once here")
	}
}

func TestDAGDependency(t *testing.T) {
	q := synthQuery("q", []jobSpec{
		{id: "J1", maps: 2, mapSec: 5},
		{id: "J2", maps: 2, mapSec: 5, deps: []string{"J1"}},
	})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 4, ReduceSlotsPerNode: 2}, sched.HCS{})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	j1, j2 := q.Jobs[0], q.Jobs[1]
	if j2.SubmitTime < j1.DoneTime {
		t.Fatalf("J2 submitted at %v before J1 done at %v", j2.SubmitTime, j1.DoneTime)
	}
}

func TestNoContainerOversubscription(t *testing.T) {
	// Sweep-line over all task intervals: concurrency never exceeds the
	// container count.
	q1 := synthQuery("a", []jobSpec{{id: "J1", maps: 30, reds: 5, mapSec: 7, redSec: 4}})
	q2 := synthQuery("b", []jobSpec{{id: "J1", maps: 25, reds: 3, mapSec: 3, redSec: 9}})
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	s := cluster.New(cfg, sched.HFS{})
	s.Submit(q1, 0)
	s.Submit(q2, 2)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	type pt struct {
		t float64
		d int
	}
	var pts []pt
	for _, q := range []*cluster.Query{q1, q2} {
		for _, j := range q.Jobs {
			for _, task := range append(append([]*cluster.Task{}, j.Maps...), j.Reds...) {
				pts = append(pts, pt{task.StartTime, 1}, pt{task.EndTime, -1})
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].t != pts[j].t {
			return pts[i].t < pts[j].t
		}
		return pts[i].d < pts[j].d // ends before starts at same instant
	})
	cur, max := 0, 0
	for _, p := range pts {
		cur += p.d
		if cur > max {
			max = cur
		}
	}
	slots := cfg.Nodes * (cfg.MapSlotsPerNode + cfg.ReduceSlotsPerNode)
	if max > slots {
		t.Fatalf("concurrency %d exceeded %d slots", max, slots)
	}
}

func TestWorkConservation(t *testing.T) {
	// A single map-only job: 64 maps / 8 map slots = 8 full waves.
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 64, mapSec: 10}})
	s := cluster.New(cluster.Config{Nodes: 2, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1}, sched.HCS{})
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 80 {
		t.Fatalf("makespan = %v, want 8 waves x 10s", res.Makespan)
	}
	// Map slots were fully busy: 640 task-seconds over 10 slots x 80s,
	// where 2 of the 10 slots are idle reduce slots.
	if res.Utilization < 0.79 {
		t.Fatalf("utilisation = %v, want ~0.8 (idle reduce slots only)", res.Utilization)
	}
}

func TestHCSIsFIFO(t *testing.T) {
	// Two jobs on one container: all of A's tasks run before any of B's.
	qa := synthQuery("a", []jobSpec{{id: "J1", maps: 3, mapSec: 5}})
	qb := synthQuery("b", []jobSpec{{id: "J1", maps: 3, mapSec: 5}})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}, sched.HCS{})
	s.Submit(qa, 0)
	s.Submit(qb, 1)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var aEnd, bStart float64
	bStart = math.Inf(1)
	for _, task := range qa.Jobs[0].Maps {
		aEnd = math.Max(aEnd, task.EndTime)
	}
	for _, task := range qb.Jobs[0].Maps {
		bStart = math.Min(bStart, task.StartTime)
	}
	if bStart < aEnd {
		t.Fatalf("HCS interleaved: b started %v before a finished %v", bStart, aEnd)
	}
}

func TestHFSSharesFairly(t *testing.T) {
	// Two equal jobs, two containers: both complete at ~the same time
	// because containers alternate.
	qa := synthQuery("a", []jobSpec{{id: "J1", maps: 10, mapSec: 5}})
	qb := synthQuery("b", []jobSpec{{id: "J1", maps: 10, mapSec: 5}})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}, sched.HFS{})
	s.Submit(qa, 0)
	s.Submit(qb, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(qa.DoneTime-qb.DoneTime) > 5 {
		t.Fatalf("HFS unfair: a done %v, b done %v", qa.DoneTime, qb.DoneTime)
	}
}

func TestSWRDPrioritisesSmallQuery(t *testing.T) {
	// Big query (100 tasks × 10s) arrives first; small (2 × 2s) second.
	// Under HCS the small query waits for the whole big job; under SWRD it
	// jumps ahead as soon as a container frees.
	mk := func() (*cluster.Query, *cluster.Query) {
		return synthQuery("big", []jobSpec{{id: "J1", maps: 100, mapSec: 10}}),
			synthQuery("small", []jobSpec{{id: "J1", maps: 2, mapSec: 2}})
	}
	run := func(s cluster.Scheduler) (smallResp, bigResp float64) {
		big, small := mk()
		sim := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1}, s)
		sim.Submit(big, 0)
		sim.Submit(small, 1)
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return small.ResponseTime(), big.ResponseTime()
	}
	hcsSmall, _ := run(sched.HCS{})
	swrdSmall, swrdBig := run(sched.SWRD{})
	if swrdSmall >= hcsSmall {
		t.Fatalf("SWRD did not speed up small query: %v vs HCS %v", swrdSmall, hcsSmall)
	}
	if swrdSmall > 30 {
		t.Fatalf("small query should finish quickly under SWRD, took %v", swrdSmall)
	}
	if swrdBig <= 0 {
		t.Fatal("big query never finished under SWRD")
	}
}

func TestStarvingSchedulerReported(t *testing.T) {
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 1, mapSec: 1}})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}, refuseScheduler{})
	s.Submit(q, 0)
	if _, err := s.Run(); err == nil {
		t.Fatal("starved run should return an error")
	}
}

type refuseScheduler struct{}

func (refuseScheduler) Name() string { return "refuse" }
func (refuseScheduler) PickJob(float64, []*cluster.Job, []*cluster.Job, bool) *cluster.Job {
	return nil
}

func TestBuildQueryFromEstimate(t *testing.T) {
	qtext := `SELECT l_orderkey, sum(l_extendedprice) FROM lineitem WHERE l_shipdate < 9000 GROUP BY l_orderkey`
	qq, err := query.Parse(qtext)
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Resolve(qq, dataset.AllSchemas()); err != nil {
		t.Fatal(err)
	}
	d, err := plan.Compile(qq)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.FromSchemas([]*dataset.Schema{dataset.LineItem()}, 10, 64)
	qe, err := selectivity.NewEstimator(cat, selectivity.Config{}).EstimateQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	cm := trace.NewDefaultCostModel(1)
	cq := cluster.BuildQuery("q1", qe, cm, cluster.ConstantPredictor(10))
	if len(cq.Jobs) != len(d.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(cq.Jobs), len(d.Jobs))
	}
	j := cq.Jobs[0]
	if len(j.Maps) != qe.Jobs[0].NumMaps || len(j.Reds) != qe.Jobs[0].NumReduces {
		t.Fatalf("task counts: %d/%d vs estimate %d/%d",
			len(j.Maps), len(j.Reds), qe.Jobs[0].NumMaps, qe.Jobs[0].NumReduces)
	}
	wantWRD := float64(0)
	for _, jj := range cq.Jobs {
		wantWRD += 10 * float64(len(jj.Maps)+len(jj.Reds))
	}
	if cq.RemainingWRD() != wantWRD {
		t.Fatalf("WRD = %v, want %v", cq.RemainingWRD(), wantWRD)
	}
	// Tasks carry positive ground-truth durations.
	for _, task := range j.Maps {
		if task.ActualSec <= 0 {
			t.Fatal("map task without duration")
		}
	}
	// End-to-end run.
	s := cluster.New(cluster.DefaultConfig(), sched.SWRD{})
	s.Submit(cq, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || !cq.Done() {
		t.Fatal("simulated query did not complete")
	}
	if cq.RemainingWRD() != 0 {
		t.Fatalf("WRD not drained: %v", cq.RemainingWRD())
	}
}

func TestWRDDecreasesMonotonically(t *testing.T) {
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 5, mapSec: 3}})
	before := q.RemainingWRD()
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}, sched.HCS{})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if before != 15 {
		t.Fatalf("initial WRD = %v, want 15", before)
	}
	if q.RemainingWRD() != 0 {
		t.Fatalf("final WRD = %v", q.RemainingWRD())
	}
}

func TestJobSpan(t *testing.T) {
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 2, mapSec: 4}})
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}, sched.HCS{})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	start, end := cluster.JobSpan(q.Jobs[0])
	if start != 0 || end != 8 {
		t.Fatalf("span = [%v,%v], want [0,8]", start, end)
	}
}

func TestPercentileResponse(t *testing.T) {
	// Ten queries with deterministic, distinct response times.
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 10, ReduceSlotsPerNode: 1}, sched.HCS{})
	var qs []*cluster.Query
	for i := 1; i <= 10; i++ {
		q := synthQuery(fmt.Sprintf("q%d", i), []jobSpec{{id: "J1", maps: 1, mapSec: float64(10 * i)}})
		qs = append(qs, q)
		s.Submit(q, 0)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Responses are 10..100; nearest-rank percentiles.
	if p := res.PercentileResponse(0.5); p != 50 {
		t.Fatalf("p50 = %v, want 50", p)
	}
	if p := res.PercentileResponse(0.95); p != 100 {
		t.Fatalf("p95 = %v, want 100", p)
	}
	if p := res.PercentileResponse(0); p != 10 {
		t.Fatalf("p0 = %v, want 10", p)
	}
	if p := res.PercentileResponse(1); p != 100 {
		t.Fatalf("p100 = %v, want 100", p)
	}
	if avg := res.AvgResponseTime(); avg != 55 {
		t.Fatalf("avg = %v, want 55", avg)
	}
	empty := &cluster.Results{}
	if empty.PercentileResponse(0.5) != 0 || empty.AvgResponseTime() != 0 {
		t.Fatal("empty results should report zeros")
	}
}
