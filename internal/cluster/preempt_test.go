package cluster_test

import (
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/sched"
)

// preemptScenario: a big job hoards the single reduce slot while its many
// maps crawl on one map slot; a small job finishes its map quickly and has
// a shuffle-ready reduce.
func preemptScenario() (*cluster.Query, *cluster.Query) {
	big := synthQuery("big", []jobSpec{{id: "J1", maps: 20, reds: 1, mapSec: 10, redSec: 5}})
	small := synthQuery("small", []jobSpec{{id: "J1", maps: 1, reds: 1, mapSec: 2, redSec: 2}})
	return big, small
}

func TestPreemptionFreesHoardedSlot(t *testing.T) {
	run := func(preempt bool) (smallResp float64) {
		big, small := preemptScenario()
		cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
			ReduceSlowstart: 0.05, PreemptiveReduce: preempt}
		s := cluster.New(cfg, sched.HFS{})
		s.Submit(big, 0)
		s.Submit(small, 1)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return small.ResponseTime()
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("preemption did not help the small query: %v vs %v", with, without)
	}
	// Without preemption the small query waits for the big job's whole map
	// phase (~200s of serialized maps); with it, only for its own work.
	if without < 100 {
		t.Fatalf("scenario broken: small query not starved without preemption (%v)", without)
	}
	if with > 60 {
		t.Fatalf("small query still starved with preemption: %v", with)
	}
}

func TestPreemptionPreservesCorrectness(t *testing.T) {
	// Both queries still complete, all tasks done exactly once.
	big, small := preemptScenario()
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		ReduceSlowstart: 0.05, PreemptiveReduce: true}
	s := cluster.New(cfg, sched.HFS{})
	s.Submit(big, 0)
	s.Submit(small, 1)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*cluster.Query{big, small} {
		if !q.Done() {
			t.Fatalf("%s not done", q.ID)
		}
		if q.RemainingWRD() != 0 {
			t.Fatalf("%s WRD not drained: %v", q.ID, q.RemainingWRD())
		}
		for _, j := range q.Jobs {
			for _, task := range append(append([]*cluster.Task{}, j.Maps...), j.Reds...) {
				if task.State != cluster.TaskDone {
					t.Fatalf("task in job %s not done", j.ID)
				}
				if task.EndTime <= task.StartTime {
					t.Fatalf("task has empty run interval")
				}
			}
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
}

func TestPreemptionOffByDefault(t *testing.T) {
	cfg := cluster.DefaultConfig()
	if cfg.PreemptiveReduce {
		t.Fatal("preemption must be opt-in (the paper's baseline Hadoop lacks it)")
	}
}
