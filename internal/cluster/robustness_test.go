package cluster_test

import (
	"fmt"
	"sort"
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/sched"
	"saqp/internal/sim"
)

// TestRandomWorkloadsAllPoliciesAllFeatures stress-tests the simulator:
// random synthetic query mixes run to completion under every scheduler and
// every feature combination (slowstart hoarding, preemption, speculation),
// with structural invariants checked after each run.
func TestRandomWorkloadsAllPoliciesAllFeatures(t *testing.T) {
	policies := []cluster.Scheduler{sched.HCS{}, sched.HCS{Queues: 4}, sched.HFS{}, sched.SWRD{}}
	features := []cluster.Config{
		{Nodes: 3, MapSlotsPerNode: 3, ReduceSlotsPerNode: 2},
		{Nodes: 3, MapSlotsPerNode: 3, ReduceSlotsPerNode: 2, PreemptiveReduce: true},
		{Nodes: 3, MapSlotsPerNode: 3, ReduceSlotsPerNode: 2, SpeculativeExecution: true,
			NodeFactors: []float64{0.7, 1.0, 1.2}},
		{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, PreemptiveReduce: true,
			SpeculativeExecution: true, NodeFactors: []float64{0.5, 1.1}},
	}
	for seed := uint64(1); seed <= 6; seed++ {
		rng := sim.New(seed * 977)
		queries := randomMix(rng)
		for pi, pol := range policies {
			for fi, cfg := range features {
				qs := cloneMix(queries)
				s := cluster.New(cfg, pol)
				at := 0.0
				for _, q := range qs {
					s.Submit(q, at)
					at += rng.Range(0, 20)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatalf("seed %d policy %d feature %d: %v", seed, pi, fi, err)
				}
				checkInvariants(t, qs, res, cfg, fmt.Sprintf("seed=%d pol=%d feat=%d", seed, pi, fi))
			}
		}
	}
}

// randomMix builds 4-8 random queries of 1-3 chained jobs each.
func randomMix(rng *sim.RNG) []*cluster.Query {
	n := 4 + rng.Intn(5)
	var out []*cluster.Query
	for qi := 0; qi < n; qi++ {
		jobs := 1 + rng.Intn(3)
		var specs []jobSpec
		for ji := 0; ji < jobs; ji++ {
			sp := jobSpec{
				id:     fmt.Sprintf("J%d", ji+1),
				maps:   1 + rng.Intn(12),
				reds:   rng.Intn(4),
				mapSec: rng.Range(1, 15),
				redSec: rng.Range(1, 10),
			}
			if ji > 0 {
				sp.deps = []string{fmt.Sprintf("J%d", ji)}
			}
			specs = append(specs, sp)
		}
		out = append(out, synthQuery(fmt.Sprintf("q%d", qi), specs))
	}
	return out
}

// cloneMix deep-copies a mix so each run starts from pristine state.
func cloneMix(qs []*cluster.Query) []*cluster.Query {
	var out []*cluster.Query
	for _, q := range qs {
		var specs []jobSpec
		for _, j := range q.Jobs {
			sp := jobSpec{id: j.JobID, maps: len(j.Maps), reds: len(j.Reds)}
			if len(j.Maps) > 0 {
				sp.mapSec = j.Maps[0].ActualSec
			}
			if len(j.Reds) > 0 {
				sp.redSec = j.Reds[0].ActualSec
			}
			sp.deps = append(sp.deps, j.DepIDs...)
			specs = append(specs, sp)
		}
		out = append(out, synthQuery(q.ID, specs))
	}
	return out
}

// checkInvariants asserts completion, interval sanity, slot bounds and WRD
// drain for every query of a finished run.
func checkInvariants(t *testing.T, qs []*cluster.Query, res *cluster.Results, cfg cluster.Config, label string) {
	t.Helper()
	type iv struct {
		t float64
		d int
	}
	var points []iv
	for _, q := range qs {
		if !q.Done() {
			t.Fatalf("%s: query %s incomplete", label, q.ID)
		}
		if q.RemainingWRD() > 1e-9 {
			t.Fatalf("%s: query %s WRD not drained (%v)", label, q.ID, q.RemainingWRD())
		}
		if q.ResponseTime() < 0 || q.DoneTime > res.Makespan {
			t.Fatalf("%s: query %s bad completion times", label, q.ID)
		}
		for _, j := range q.Jobs {
			for _, task := range append(append([]*cluster.Task{}, j.Maps...), j.Reds...) {
				if task.State != cluster.TaskDone {
					t.Fatalf("%s: task not done in %s", label, j.ID)
				}
				if task.EndTime < task.StartTime {
					t.Fatalf("%s: inverted task interval in %s", label, j.ID)
				}
				points = append(points, iv{task.StartTime, 1}, iv{task.EndTime, -1})
			}
		}
	}
	// Concurrency (by completed-attempt intervals) never exceeds the slot
	// count; speculative duplicates may briefly add up to one per slot, so
	// the bound uses total slots which duplicates also occupy.
	sort.Slice(points, func(i, j int) bool {
		if points[i].t != points[j].t {
			return points[i].t < points[j].t
		}
		return points[i].d < points[j].d
	})
	slots := cfg.Nodes * (cfg.MapSlotsPerNode + cfg.ReduceSlotsPerNode)
	cur, max := 0, 0
	for _, p := range points {
		cur += p.d
		if cur > max {
			max = cur
		}
	}
	if max > slots {
		t.Fatalf("%s: concurrency %d exceeded %d slots", label, max, slots)
	}
}
