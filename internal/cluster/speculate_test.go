package cluster_test

import (
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/sched"
)

// slowNodeConfig: node 0 runs at 60% speed, node 1 at full speed.
func slowNodeConfig(spec bool) cluster.Config {
	return cluster.Config{
		Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		NodeFactors:          []float64{0.6, 1.0},
		SpeculativeExecution: spec,
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	run := func(spec bool) float64 {
		// Two maps: both start immediately (one per node); the one on the
		// slow node straggles. With speculation, the fast node's idle slot
		// re-runs it once its own map finishes.
		q := synthQuery("q", []jobSpec{{id: "J1", maps: 2, mapSec: 30}})
		s := cluster.New(slowNodeConfig(spec), sched.HCS{})
		s.Submit(q, 0)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return q.ResponseTime()
	}
	// At 0.6x the duplicate cannot win the race (original ends at 50s, a
	// copy started at 30s would end at 60s), so speculation must be a
	// no-op — never a regression.
	base := run(false)
	spec := run(true)
	if spec != base {
		t.Fatalf("unwinnable race changed the outcome: %v vs %v", spec, base)
	}
	// Sharper case: slow node at 0.3x => original 100s; the duplicate
	// started at ~30s on the fast node ends at ~60s and wins.
	run2 := func(spec bool) float64 {
		q := synthQuery("q", []jobSpec{{id: "J1", maps: 2, mapSec: 30}})
		cfg := slowNodeConfig(spec)
		cfg.NodeFactors = []float64{0.3, 1.0}
		s := cluster.New(cfg, sched.HCS{})
		s.Submit(q, 0)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return q.ResponseTime()
	}
	b2, s2 := run2(false), run2(true)
	if s2 >= b2 {
		t.Fatalf("speculation did not rescue 0.3x straggler: %v vs %v", s2, b2)
	}
}

func TestSpeculationNeverLaunchesLosingCopy(t *testing.T) {
	// A duplicate that cannot beat the original must not be launched: with
	// node factors {0.9, 1.0} the race is unwinnable once the original has
	// a head start, so results with and without speculation are identical.
	run := func(spec bool) float64 {
		q := synthQuery("q", []jobSpec{{id: "J1", maps: 2, mapSec: 20}})
		cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
			NodeFactors: []float64{0.9, 1.0}, SpeculativeExecution: spec}
		s := cluster.New(cfg, sched.HCS{})
		s.Submit(q, 0)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return q.ResponseTime()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("losing copy launched: %v vs %v", a, b)
	}
}

func TestSpeculationMarksTask(t *testing.T) {
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 2, mapSec: 30}})
	cfg := slowNodeConfig(true)
	cfg.NodeFactors = []float64{0.3, 1.0}
	s := cluster.New(cfg, sched.HCS{})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	speculated := 0
	for _, task := range q.Jobs[0].Maps {
		if task.Speculated {
			speculated++
		}
	}
	if speculated != 1 {
		t.Fatalf("speculated tasks = %d, want exactly the straggler", speculated)
	}
}

func TestSpeculationWorkConservationStillHolds(t *testing.T) {
	// All tasks complete exactly once even with duplicates racing.
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 8, reds: 2, mapSec: 10, redSec: 5}})
	cfg := cluster.Config{Nodes: 3, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		NodeFactors: []float64{0.5, 1.0, 1.1}, SpeculativeExecution: true}
	s := cluster.New(cfg, sched.HFS{})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("query incomplete")
	}
	for _, task := range append(append([]*cluster.Task{}, q.Jobs[0].Maps...), q.Jobs[0].Reds...) {
		if task.State != cluster.TaskDone {
			t.Fatal("task left unfinished")
		}
	}
}
