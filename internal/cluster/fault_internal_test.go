package cluster

import (
	"testing"

	"saqp/internal/fault"
)

// fifoPick is a minimal FIFO scheduler for white-box tests (the sched
// package cannot be imported here without a cycle).
type fifoPick struct{}

func (fifoPick) Name() string { return "fifo" }
func (fifoPick) PickJob(_ float64, cands, _ []*Job, _ bool) *Job {
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// mkQuery builds a map-only query in-package.
func mkQuery(id string, maps int, sec float64) *Query {
	q := &Query{ID: id}
	j := &Job{ID: id + "/J1", JobID: "J1", Query: q}
	for i := 0; i < maps; i++ {
		j.Maps = append(j.Maps, &Task{Job: j, Index: i, ActualSec: sec, PredSec: sec})
	}
	j.ResetPending()
	q.Jobs = []*Job{j}
	q.RecomputeWRD()
	return q
}

// TestBlacklistedNodeReceivesNoNewTasks pins the blacklist contract at the
// dispatch layer: once a node is blacklisted its free slots leave the
// pools and every subsequent placement lands elsewhere.
func TestBlacklistedNodeReceivesNoNewTasks(t *testing.T) {
	s := New(Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}, fifoPick{})
	s.blacklistNode(0)
	q := mkQuery("q", 8, 5)
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, task := range q.Jobs[0].Maps {
		if task.node != 1 {
			t.Fatalf("map %d ran on blacklisted node %d", task.Index, task.node)
		}
	}
	if s.fstats.NodesBlacklisted != 1 {
		t.Fatalf("blacklist count = %d", s.fstats.NodesBlacklisted)
	}
}

// TestBlacklistTripsAfterRepeatedFailures drives the end-to-end path:
// with BlacklistAfter=1, the node hosting the run's single probed failure
// is excluded, and every later placement — including the failed task's
// own retry — drains through the surviving node.
func TestBlacklistTripsAfterRepeatedFailures(t *testing.T) {
	// Probe a plan where only map 0's first attempt fails: its host is
	// blacklisted and the other node must absorb the rest of the run.
	var plan *fault.Plan
	for seed := uint64(0); seed < 50000; seed++ {
		p := fault.NewPlan(fault.Spec{Seed: seed, TaskFailProb: 0.3, BlacklistAfter: 1})
		ok := true
		for i := 0; i < 4; i++ {
			f1, _ := p.TaskFailure(0, "q/J1", false, i, 1)
			f2, _ := p.TaskFailure(0, "q/J1", false, i, 2)
			if f1 != (i == 0) || f2 {
				ok = false
				break
			}
		}
		if ok {
			plan = p
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed under 50000 fails exactly map 0's first attempt")
	}
	s := New(Config{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		Faults: plan}, fifoPick{})
	q := mkQuery("q", 4, 5)
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("workload should survive a blacklisted node")
	}
	if res.Faults.NodesBlacklisted != 1 || res.Faults.TaskFailures != 1 {
		t.Fatalf("fault stats = %+v, want 1 blacklist from 1 failure", res.Faults)
	}
	blacklisted := -1
	for n, b := range s.blacklisted {
		if b {
			blacklisted = n
		}
	}
	if blacklisted < 0 {
		t.Fatal("blacklist flag not set")
	}
	// The failure struck the first dispatch; everything that completed
	// afterwards (every final attempt) must sit on the surviving node.
	for _, task := range q.Jobs[0].Maps {
		if task.node == blacklisted {
			t.Fatalf("map %d's final attempt ran on blacklisted node %d", task.Index, blacklisted)
		}
	}
}
