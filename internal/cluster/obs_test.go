package cluster_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/obs"
	"saqp/internal/plan"
	"saqp/internal/sched"
)

// observedRun replays a fixed three-query workload (with dependencies,
// slowstart hoarding and contention) under SWRD with full instrumentation
// and returns the serialised trace, metrics and drift snapshot.
func observedRun(t *testing.T) (traceJSON, prom, drift []byte) {
	t.Helper()
	var traceBuf bytes.Buffer
	o := obs.New(obs.NewTraceSink(&traceBuf))

	pol := sched.Instrument(sched.SWRD{}, o)
	s := cluster.New(cluster.Config{
		Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		SchedulingOverheadSec: 0.5, JobInitSec: 2, ReduceSlowstart: 0.5,
	}, pol).SetObserver(o)

	big := synthQuery("big", []jobSpec{
		{id: "J1", maps: 6, reds: 2, mapSec: 10, redSec: 8, jobType: plan.Join},
		{id: "J2", maps: 2, reds: 1, mapSec: 6, redSec: 4, deps: []string{"J1"}, jobType: plan.Groupby},
	})
	small1 := synthQuery("small1", []jobSpec{
		{id: "J1", maps: 2, reds: 1, mapSec: 3, redSec: 2, jobType: plan.Groupby},
	})
	small2 := synthQuery("small2", []jobSpec{
		{id: "J1", maps: 2, mapSec: 4, jobType: plan.Extract},
	})
	s.Submit(big, 0)
	s.Submit(small1, 5)
	s.Submit(small2, 9)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	var promBuf bytes.Buffer
	if err := o.Metrics.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	dj, err := o.Drift.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	return traceBuf.Bytes(), promBuf.Bytes(), dj
}

// TestObservedRunDeterministic is the tentpole guarantee: a fixed
// workload produces byte-identical trace JSONL, Prometheus text and
// drift snapshots across independent runs.
func TestObservedRunDeterministic(t *testing.T) {
	t1, p1, d1 := observedRun(t)
	t2, p2, d2 := observedRun(t)
	if !bytes.Equal(t1, t2) {
		t.Error("trace output differs between identical runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("metrics exposition differs between identical runs:\n%s\nvs\n%s", p1, p2)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("drift snapshot differs between identical runs")
	}
}

// TestObservedRunContent sanity-checks the instrumentation against the
// known workload: every lifecycle event type appears and the counters
// match the task totals.
func TestObservedRunContent(t *testing.T) {
	traceJSON, _, _ := observedRun(t)
	var events []map[string]any
	if err := json.Unmarshal(traceJSON, &events); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e["ph"].(string)]++
	}
	// 3 query spans + 4 job spans + 12 map + 4 reduce task spans.
	if want := 23; counts["X"] != want {
		t.Errorf("complete spans = %d, want %d", counts["X"], want)
	}
	if counts["i"] == 0 {
		t.Error("no instant events (arrivals, submissions, scheduler decisions)")
	}

	o := obs.New(nil)
	s := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		SchedulingOverheadSec: 0.5}, sched.Instrument(sched.HCS{}, o)).SetObserver(o)
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 3, reds: 2, mapSec: 5, redSec: 4, jobType: plan.Join}})
	s.Submit(q, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Counter(obs.MMapTasksDone).Value(); got != 3 {
		t.Errorf("map tasks completed = %v, want 3", got)
	}
	if got := o.Metrics.Counter(obs.MReduceTasksDone).Value(); got != 2 {
		t.Errorf("reduce tasks completed = %v, want 2", got)
	}
	if got := o.Metrics.Counter(obs.MQueriesCompleted).Value(); got != 1 {
		t.Errorf("queries completed = %v, want 1", got)
	}
	// Predicted == actual in synthetic queries, but observed slot
	// occupancy adds scheduling overhead (maps) and slowstart hoard time
	// (reduces launched before the map phase ends), so drift is positive:
	// exactly the gap the recorder exists to surface.
	ds := o.Drift.Snapshot()
	if len(ds.Tasks) != 2 {
		t.Fatalf("task drift categories = %d, want Join/map and Join/reduce", len(ds.Tasks))
	}
	for _, s := range ds.Tasks {
		if s.MeanRelError < 0 || s.MeanRelError > 1 {
			t.Errorf("%s mean rel err = %v, want overhead-scale drift", s.Category, s.MeanRelError)
		}
	}
}

// TestUninstrumentedRunUnchanged guards the refactor that threaded slot
// identities through the simulator: with and without an observer the
// schedule must be identical.
func TestUninstrumentedRunUnchanged(t *testing.T) {
	build := func() *cluster.Sim {
		s := cluster.New(cluster.Config{
			Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			SchedulingOverheadSec: 0.5, JobInitSec: 2, ReduceSlowstart: 0.5,
		}, sched.SWRD{})
		s.Submit(synthQuery("a", []jobSpec{
			{id: "J1", maps: 5, reds: 2, mapSec: 7, redSec: 3, jobType: plan.Join},
		}), 0)
		s.Submit(synthQuery("b", []jobSpec{
			{id: "J1", maps: 2, reds: 1, mapSec: 2, redSec: 2, jobType: plan.Groupby},
		}), 3)
		return s
	}
	plain := build()
	r1, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	instrumented := build().SetObserver(obs.New(nil))
	r2, err := instrumented.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.AvgResponseTime() != r2.AvgResponseTime() {
		t.Fatalf("observer changed the schedule: makespan %v vs %v, avg %v vs %v",
			r1.Makespan, r2.Makespan, r1.AvgResponseTime(), r2.AvgResponseTime())
	}
}
