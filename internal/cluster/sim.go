package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"saqp/internal/fault"
	"saqp/internal/obs"
)

// Config sizes the simulated cluster. Defaults mirror the paper's testbed:
// 9 nodes × 12 containers, split Hadoop-1 style into map and reduce slots.
type Config struct {
	Nodes int
	// MapSlotsPerNode and ReduceSlotsPerNode partition each node's
	// containers by phase, as Hadoop 1.x task trackers did (the paper's 12
	// containers/node ≈ 8 map + 4 reduce slots).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// ContainersPerNode is a convenience: when the per-phase slot counts
	// are zero it is split 2:1 into map and reduce slots.
	ContainersPerNode int
	// NodeFactors optionally gives per-node speed multipliers (length
	// Nodes); nil means 1.0 everywhere.
	NodeFactors []float64
	// SchedulingOverheadSec is added to every task dispatch (heartbeat and
	// container launch latency).
	SchedulingOverheadSec float64
	// JobInitSec delays a job's tasks after submission — Hadoop 1.x job
	// initialization (split computation, task localisation) plus Hive's
	// per-stage planning.
	JobInitSec float64
	// ReduceSlowstart is the fraction of a job's maps that must complete
	// before its reduces launch (mapred.reduce.slowstart.completed.maps,
	// Hadoop default 0.05). A launched reduce occupies its slot through
	// the end of its job's map phase — the slot hoarding behind the delay
	// tails and monopolizing behaviour the paper cites ([27], [30]).
	ReduceSlowstart float64
	// PreemptiveReduce enables the preemptive reduce-task scheduling of the
	// paper's reference [30] (Wang et al., ICAC'13): a reduce that is
	// hoarding its slot waiting for its job's maps is preempted — requeued
	// at no lost work — when another job has shuffle-ready reduces and no
	// slot is free. Jobs with completed map phases also take priority for
	// reduce slots, preventing relaunch ping-pong.
	PreemptiveReduce bool
	// SpeculativeExecution enables Hadoop-style straggler mitigation: when
	// slots would otherwise idle, a running attempt whose projected
	// completion lags the median of its job's phase is duplicated on a free
	// slot; the task completes with whichever attempt finishes first and
	// the loser is cancelled immediately. Off by default, as on the paper's
	// testbed configuration.
	SpeculativeExecution bool
	// Faults optionally injects deterministic node crashes, slowdown
	// windows and transient task failures into the run (see
	// internal/fault). Nil — the default — and a zero-spec plan leave the
	// schedule byte-identical to a fault-free run.
	Faults *fault.Plan
	// FaultSalt perturbs the plan's per-task failure decisions without
	// changing its node windows; the serving layer re-rolls it across
	// query retries so a retry is not doomed to the identical failure.
	FaultSalt uint64
}

// DefaultConfig mirrors the paper's 9-node, 12-container testbed.
func DefaultConfig() Config {
	return Config{
		Nodes:                 9,
		MapSlotsPerNode:       8,
		ReduceSlotsPerNode:    4,
		SchedulingOverheadSec: 0.5,
		JobInitSec:            10,
		ReduceSlowstart:       0.05,
	}
}

// normalize resolves defaulting rules.
func (c Config) normalize() Config {
	if c.Nodes <= 0 {
		c.Nodes = 9
	}
	if c.MapSlotsPerNode <= 0 && c.ReduceSlotsPerNode <= 0 {
		total := c.ContainersPerNode
		if total <= 0 {
			total = 12
		}
		c.MapSlotsPerNode = (2*total + 2) / 3
		c.ReduceSlotsPerNode = total - c.MapSlotsPerNode
		if c.ReduceSlotsPerNode < 1 {
			c.ReduceSlotsPerNode = 1
		}
	}
	if c.MapSlotsPerNode < 1 {
		c.MapSlotsPerNode = 1
	}
	if c.ReduceSlotsPerNode < 1 {
		c.ReduceSlotsPerNode = 1
	}
	if c.ReduceSlowstart <= 0 {
		c.ReduceSlowstart = 0.05
	}
	if c.ReduceSlowstart > 1 {
		c.ReduceSlowstart = 1
	}
	return c
}

// Scheduler ranks jobs when a slot frees. The simulator filters the active
// set down to jobs holding a runnable task of the requested phase before
// calling PickJob; implementations only choose *which job* goes next.
type Scheduler interface {
	Name() string
	// PickJob selects the next job to serve from candidates (all of which
	// have a runnable task of the given phase), or nil to leave the slot
	// idle. active carries every submitted-but-unfinished job, which
	// share-based policies need for usage accounting.
	PickJob(now float64, candidates, active []*Job, reduce bool) *Job
}

// event is a simulator occurrence ordered by time.
type event struct {
	time float64
	kind eventKind
	// seq breaks ties deterministically in arrival order.
	seq int

	query *Query // arrival
	task  *Task  // finish, fail, retry
	slot  int    // slot of the finishing attempt
	spec  bool   // the attempt was a speculative duplicate
	// epoch must match the task's attempt epoch for the event to apply;
	// cancelled and crash-killed attempts bump the epoch, turning their
	// scheduled events into no-ops.
	epoch int
	// node targets crash/recover events.
	node int
}

type eventKind uint8

const (
	evArrival eventKind = iota
	evFinish
	evWake     // a job finished initialising; re-run dispatch
	evTaskFail // a running attempt fails transiently (fault plan)
	evRetry    // a failed task's backoff expired; re-queue it
	evCrash    // a node goes down, killing its attempts
	evRecover  // a crashed node rejoins with all slots free
)

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func (h *eventHeap) push(e *event) { heap.Push(h, e) }
func (h *eventHeap) pop() *event   { return heap.Pop(h).(*event) }
func (h *eventHeap) empty() bool   { return len(*h) == 0 }

// Sim is one simulation run: a cluster, a scheduler and a set of queries.
type Sim struct {
	cfg   Config
	sched Scheduler
	obs   *obs.Observer // nil disables all instrumentation

	factors []float64
	// mapFree and redFree hold free slot ids. A map slot id s lives on
	// node s / MapSlotsPerNode (reduce slots analogously), giving every
	// task a stable (node, slot) identity for observability.
	mapFree  []int
	redFree  []int
	events   eventHeap
	seq      int
	now      float64
	queries  []*Query
	active   []*Job // submitted, unfinished jobs in submission order
	busySec  float64
	slotsTot int
	hoarded  int // reduce slots held by not-yet-runnable reduces

	// Fault-injection state (dormant while fplan is nil).
	fplan       *fault.Plan
	down        []bool // node is inside a crash window
	blacklisted []bool // node excluded after repeated failures
	nodeFails   []int  // transient failures hosted per node
	fstats      FaultStats
	terminal    int // queries completed or failed; Run stops at len(queries)
}

// New builds a simulator with the given cluster config and scheduler.
func New(cfg Config, sched Scheduler) *Sim {
	cfg = cfg.normalize()
	s := &Sim{cfg: cfg, sched: sched}
	s.factors = make([]float64, cfg.Nodes)
	for i := range s.factors {
		if cfg.NodeFactors != nil {
			s.factors[i] = cfg.NodeFactors[i]
		} else {
			s.factors[i] = 1
		}
	}
	for n := 0; n < cfg.Nodes; n++ {
		for k := 0; k < cfg.MapSlotsPerNode; k++ {
			s.mapFree = append(s.mapFree, n*cfg.MapSlotsPerNode+k)
		}
		for k := 0; k < cfg.ReduceSlotsPerNode; k++ {
			s.redFree = append(s.redFree, n*cfg.ReduceSlotsPerNode+k)
		}
	}
	s.slotsTot = len(s.mapFree) + len(s.redFree)
	s.down = make([]bool, cfg.Nodes)
	s.blacklisted = make([]bool, cfg.Nodes)
	s.nodeFails = make([]int, cfg.Nodes)
	s.fplan = cfg.Faults
	if s.fplan != nil {
		// The plan's node windows were expanded at construction; book them
		// as events now so the run replays them deterministically. Windows
		// for nodes beyond this cluster are ignored.
		for _, w := range s.fplan.Crashes() {
			if w.Node >= cfg.Nodes {
				continue
			}
			s.seq++
			s.events.push(&event{time: w.Start, kind: evCrash, seq: s.seq, node: w.Node})
			s.seq++
			s.events.push(&event{time: w.End, kind: evRecover, seq: s.seq, node: w.Node})
		}
	}
	return s
}

// SetObserver attaches the observability layer to this run: lifecycle
// events (submit, init, dispatch, slowstart hoarding, preemption,
// speculation, completion) flow to o's trace, metrics and drift sinks,
// timestamped with the simulator's virtual clock. A nil o (the default)
// keeps the hot path free of instrumentation. To also record scheduler
// decisions, wrap the policy with sched.Instrument before New.
func (s *Sim) SetObserver(o *obs.Observer) *Sim {
	s.obs = o
	if o != nil {
		o.RunStarted(s.sched.Name())
		o.ClusterInfo(s.cfg.Nodes, s.cfg.MapSlotsPerNode, s.cfg.ReduceSlotsPerNode)
		if s.fplan != nil {
			o.FaultDomain(s.cfg.Nodes)
		}
	}
	return s
}

// nodeOf maps a slot id back to its node index.
func (s *Sim) nodeOf(slot int, reduce bool) int {
	if reduce {
		return slot / s.cfg.ReduceSlotsPerNode
	}
	return slot / s.cfg.MapSlotsPerNode
}

// MapSlots returns the total map slot count.
func (s *Sim) MapSlots() int { return s.cfg.Nodes * s.cfg.MapSlotsPerNode }

// ReduceSlots returns the total reduce slot count.
func (s *Sim) ReduceSlots() int { return s.cfg.Nodes * s.cfg.ReduceSlotsPerNode }

// Submit schedules a query's arrival.
func (s *Sim) Submit(q *Query, at float64) {
	q.ArrivalTime = at
	s.queries = append(s.queries, q)
	s.seq++
	s.events.push(&event{time: at, kind: evArrival, seq: s.seq, query: q})
}

// Results summarises a completed run.
type Results struct {
	SchedulerName string
	Makespan      float64
	// Queries in submission order, with completion times filled in.
	Queries []*Query
	// Utilization is busy slot-seconds / (slots × makespan). Hoarded
	// reduce slots count as busy — they are unavailable to other tasks.
	Utilization float64
	// Completed and Failed partition the queries by terminal state; Failed
	// is nonzero only under a fault plan, and each failed query carries a
	// *TaskFailedError on Query.Err.
	Completed int
	Failed    int
	// Faults tallies injected-fault recovery activity during the run.
	Faults FaultStats
}

// AvgResponseTime returns the mean query response time.
func (r *Results) AvgResponseTime() float64 {
	if len(r.Queries) == 0 {
		return 0
	}
	var t float64
	for _, q := range r.Queries {
		t += q.ResponseTime()
	}
	return t / float64(len(r.Queries))
}

// PercentileResponse returns the p-quantile (0 < p <= 1) of query response
// times, by nearest-rank.
func (r *Results) PercentileResponse(p float64) float64 {
	if len(r.Queries) == 0 {
		return 0
	}
	resp := make([]float64, len(r.Queries))
	for i, q := range r.Queries {
		resp[i] = q.ResponseTime()
	}
	sort.Float64s(resp)
	if p <= 0 {
		return resp[0]
	}
	if p >= 1 {
		return resp[len(resp)-1]
	}
	idx := int(math.Ceil(p*float64(len(resp)))) - 1
	if idx < 0 {
		idx = 0
	}
	return resp[idx]
}

// Run processes events until all submitted queries complete.
func (s *Sim) Run() (*Results, error) {
	return s.RunContext(context.Background()) //lint:allow saqpvet/ctxleak Run is the deliberate never-canceled entry point; RunContext is the cancellable form
}

// RunContext is Run with cooperative cancellation: the event loop checks
// ctx between events and aborts with ctx.Err() once it is done. A run
// that is never canceled is indistinguishable from Run — cancellation is
// the only nondeterminism the context introduces, which keeps seeded
// serving-pool runs reproducible.
func (s *Sim) RunContext(ctx context.Context) (*Results, error) {
	done := ctx.Done()
	for !s.events.empty() {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		e := s.events.pop()
		s.now = e.time
		switch e.kind {
		case evArrival:
			s.arrive(e.query)
		case evFinish:
			s.finish(e)
		case evWake:
			// no state change; jobs become ready by time passing
		case evTaskFail:
			s.taskFail(e)
		case evRetry:
			s.retryTask(e)
		case evCrash:
			s.crashNode(e.node)
		case evRecover:
			s.recoverNode(e.node)
		}
		s.dispatch()
		// Stop once every query reached a terminal state: trailing fault
		// events (a crash window after the last completion) must not
		// stretch the makespan.
		if len(s.queries) > 0 && s.terminal == len(s.queries) {
			break
		}
	}
	for _, q := range s.queries {
		if !q.Done() && !q.Failed() {
			return nil, fmt.Errorf("cluster: query %s did not complete (starvation?)", q.ID)
		}
	}
	res := &Results{SchedulerName: s.sched.Name(), Makespan: s.now, Queries: s.queries,
		Faults: s.fstats}
	for _, q := range s.queries {
		if q.Failed() {
			res.Failed++
		} else {
			res.Completed++
		}
	}
	if s.now > 0 {
		res.Utilization = s.busySec / (float64(s.slotsTot) * s.now)
	}
	return res, nil
}

// arrive submits a query's root jobs.
func (s *Sim) arrive(q *Query) {
	s.obs.QueryArrived(s.now, q.ID, len(q.Jobs), q.InputBytes)
	for _, j := range q.Jobs {
		if len(j.DepIDs) == 0 {
			s.submitJob(j)
		}
	}
}

func (s *Sim) submitJob(j *Job) {
	j.Submitted = true
	j.SubmitTime = s.now
	j.ReadyTime = s.now + s.cfg.JobInitSec
	s.active = append(s.active, j)
	if s.cfg.JobInitSec > 0 {
		s.seq++
		s.events.push(&event{time: j.ReadyTime, kind: evWake, seq: s.seq})
	}
	s.obs.JobSubmitted(s.now, j.ReadyTime, j.Query.ID, j.ID, j.Type.String(), len(j.Maps), len(j.Reds))
}

// reduceLaunchAllowed reports whether job j may launch another reduce now.
// Reduces unlock once the slowstart fraction of maps completes, exactly as
// Hadoop 1.x did — launched reduces then sit on their slots until the map
// phase ends (the delay-tail behaviour of the paper's [27] and [30]).
// Across all jobs, at most half the cluster's reduce slots may be hoarded
// at once, mirroring the reduce-slot caps operators configured to keep
// clusters live.
func (s *Sim) reduceLaunchAllowed(j *Job) bool {
	if j.pendingReds <= 0 {
		return false
	}
	if j.MapsDone() {
		return true
	}
	maps := len(j.Maps)
	if maps == 0 {
		return true
	}
	need := int(math.Ceil(s.cfg.ReduceSlowstart * float64(maps)))
	if need < 1 {
		need = 1
	}
	if j.doneMaps < need {
		return false
	}
	// Per-job cap: one job may hoard at most half the reduce slots — the
	// per-pool reduce caps operators configured. Global floor: a quarter of
	// the reduce slots always stay available for runnable reduces, keeping
	// the cluster live under any scheduling policy.
	slots := s.ReduceSlots()
	perJob := slots / 2
	if perJob < 1 {
		perJob = 1
	}
	globalCap := (3 * slots) / 4
	if globalCap < 1 {
		globalCap = 1
	}
	launched := len(j.Reds) - j.pendingReds
	return launched < perJob && s.hoarded < globalCap
}

// finish completes a task attempt, frees its slot, and cascades job/query
// completion (submitting dependents). With speculative execution a task can
// have two attempts racing; the first completion wins and the losing
// attempt is cancelled on the spot — its slot frees immediately and its
// pre-charged busy time is refunded, so duplicated work is never
// double-counted.
func (s *Sim) finish(e *event) {
	t, slot, spec := e.task, e.slot, e.spec
	if spec {
		if e.epoch != t.epochS {
			return // the duplicate was cancelled or crash-killed
		}
	} else if e.epoch != t.epochO {
		return // the original was cancelled, killed or failed
	}
	j := t.Job
	if t.State != TaskRunning {
		// Unreachable with epoch versioning; release defensively.
		s.releaseSlot(slot, t.Reduce)
		return
	}
	if spec {
		t.epochS++
		t.speculating = false
		if !t.origDead {
			// The original loses the race: cancel it now.
			t.epochO++
			s.refund(t.origEnd)
			s.releaseSlot(t.slot, t.Reduce)
			s.fstats.SpeculativeCancels++
			s.obs.SpeculativeCanceled(s.now, t.StartTime, j.Query.ID, j.ID, t.Reduce, t.Index, t.slot)
		}
	} else {
		t.epochO++
		if t.speculating {
			// The duplicate loses: cancel it now.
			t.epochS++
			t.speculating = false
			s.refund(t.specEnd)
			s.releaseSlot(t.specSlot, t.Reduce)
			s.fstats.SpeculativeCancels++
			s.obs.SpeculativeCanceled(s.now, t.specStart, j.Query.ID, j.ID, t.Reduce, t.Index, t.specSlot)
		}
	}
	t.State = TaskDone
	t.EndTime = s.now
	t.Speculated = t.Speculated || spec
	start := t.StartTime
	if spec {
		start = t.specStart
	}
	s.obs.TaskFinished(s.now, start, j.Query.ID, j.ID, j.Type.String(), t.Reduce,
		t.Index, s.nodeOf(slot, t.Reduce), slot, t.PredSec, spec, t.faulted)
	s.releaseSlot(slot, t.Reduce)
	if t.Reduce {
		j.doneReds++
	} else {
		j.doneMaps++
		// The map phase just completed: hoarding reduces (launched early,
		// waiting for shuffle input) can now run to completion.
		if j.MapsDone() {
			if len(j.hoarding) > 0 {
				s.obs.ShuffleReady(s.now, j.Query.ID, j.ID, j.Type.String(), len(j.hoarding))
			}
			for _, r := range j.hoarding {
				// The slot was occupied (but idle) during the hoard window.
				s.busySec += s.now - r.StartTime
				s.hoarded--
				s.scheduleFinish(r)
			}
			j.hoarding = nil
		}
	}
	if !j.Done() {
		return
	}
	j.DoneTime = s.now
	s.obs.JobFinished(s.now, j.SubmitTime, j.Query.ID, j.ID, j.Type.String())
	// Remove from active set.
	for i, a := range s.active {
		if a == j {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	// Submit dependents whose deps are all done.
	q := j.Query
	byID := make(map[string]*Job, len(q.Jobs))
	for _, jj := range q.Jobs {
		byID[jj.JobID] = jj
	}
	for _, cand := range q.Jobs {
		if cand.Submitted {
			continue
		}
		ready := true
		for _, dep := range cand.DepIDs {
			if !byID[dep].Done() {
				ready = false
				break
			}
		}
		if ready {
			s.submitJob(cand)
		}
	}
	if q.Done() {
		q.DoneTime = s.now
		s.terminal++
		s.obs.QueryFinished(s.now, q.ArrivalTime, q.ID)
	}
}

// scheduleFinish books the completion event for a running task, charging
// the node speed factor (including any active slowdown window) and
// dispatch overhead. Under a fault plan the attempt may instead be booked
// to fail partway through: the slot burns for the failure fraction of the
// attempt's duration, then taskFail takes over.
func (s *Sim) scheduleFinish(t *Task) {
	t.Attempts++
	factor := s.effFactor(t.node)
	if s.fplan != nil && factor != s.factors[t.node] {
		t.faulted = true
		t.Job.Query.Faulted = true
		s.obs.SlowdownDispatch()
	}
	dur := t.ActualSec/factor + s.cfg.SchedulingOverheadSec
	s.seq++
	if fail, frac := s.fplan.TaskFailure(s.cfg.FaultSalt, t.Job.ID, t.Reduce, t.Index, t.Attempts); fail {
		burn := frac * dur
		s.busySec += burn
		t.origEnd = s.now + burn
		s.events.push(&event{time: t.origEnd, kind: evTaskFail, seq: s.seq,
			task: t, slot: t.slot, epoch: t.epochO})
		return
	}
	s.busySec += dur
	t.origEnd = s.now + dur
	s.events.push(&event{time: t.origEnd, kind: evFinish, seq: s.seq,
		task: t, slot: t.slot, epoch: t.epochO})
}

// dispatch assigns runnable tasks to free slots until the scheduler
// declines or slots run out (work conservation per phase).
func (s *Sim) dispatch() {
	// Map slots.
	for len(s.mapFree) > 0 {
		cands := s.candidates(false)
		if len(cands) == 0 {
			break
		}
		j := s.sched.PickJob(s.now, cands, s.active, false)
		if j == nil {
			break
		}
		t := j.nextPending(false)
		if t == nil {
			panic(fmt.Sprintf("cluster: scheduler picked job %s with no pending map", j.ID))
		}
		s.start(t, &s.mapFree)
	}
	// Reduce slots.
	for {
		if len(s.redFree) == 0 && !s.preemptForRunnableReduce() {
			break
		}
		if len(s.redFree) == 0 {
			break
		}
		cands := s.candidates(true)
		if len(cands) == 0 {
			break
		}
		j := s.sched.PickJob(s.now, cands, s.active, true)
		if j == nil {
			break
		}
		t := j.nextPending(true)
		if t == nil {
			panic(fmt.Sprintf("cluster: scheduler picked job %s with no pending reduce", j.ID))
		}
		s.start(t, &s.redFree)
	}
	if s.cfg.SpeculativeExecution {
		s.speculate(false, &s.mapFree)
		s.speculate(true, &s.redFree)
	}
}

// speculate duplicates straggling attempts of the given phase onto
// otherwise-idle slots, Hadoop-style: a running task qualifies only when
// its projected completion lags the median completion of its job's phase
// (over started tasks), the slowest qualifier is cloned first, and the
// clone's completion event races the original's — whichever fires first
// finishes the task and the loser is cancelled.
func (s *Sim) speculate(reduce bool, pool *[]int) {
	for len(*pool) > 0 {
		var victim *Task
		var victimEnd float64
		for _, j := range s.active {
			tasks := j.Maps
			if reduce {
				tasks = j.Reds
			}
			if reduce && !j.MapsDone() {
				continue // hoarding reduces cannot be sped up by a copy
			}
			// Median projected completion over this phase's started tasks:
			// done tasks contribute their end, running ones the earliest
			// scheduled end of their live attempts.
			var ends []float64
			for _, t := range tasks {
				switch t.State {
				case TaskDone:
					ends = append(ends, t.EndTime)
				case TaskRunning:
					ends = append(ends, s.projectedEnd(t))
				}
			}
			med := median(ends)
			for _, t := range tasks {
				if t.State != TaskRunning || t.speculating || t.origDead {
					continue
				}
				end := t.origEnd
				if end <= s.now || end <= med {
					continue // on pace with its siblings: not a straggler
				}
				if victim == nil || end > victimEnd {
					victim = t
					victimEnd = end
				}
			}
		}
		if victim == nil {
			return
		}
		slot := (*pool)[len(*pool)-1]
		n := s.nodeOf(slot, reduce)
		// A duplicate on the same (slow) node cannot help.
		if n == victim.node && s.cfg.Nodes > 1 {
			return
		}
		dur := victim.ActualSec/s.effFactor(n) + s.cfg.SchedulingOverheadSec
		if s.now+dur >= victimEnd {
			return // the copy would lose the race; don't waste the slot
		}
		*pool = (*pool)[:len(*pool)-1]
		victim.speculating = true
		victim.specStart = s.now
		victim.specNode = n
		victim.specSlot = slot
		victim.specEnd = s.now + dur
		s.busySec += dur
		s.seq++
		s.events.push(&event{time: victim.specEnd, kind: evFinish, seq: s.seq,
			task: victim, slot: slot, spec: true, epoch: victim.epochS})
		s.obs.SpeculativeLaunched(s.now, victim.Job.Query.ID, victim.Job.ID,
			reduce, victim.Index, victim.node, slot)
	}
}

// projectedEnd is the earliest scheduled completion among a running task's
// live attempts.
func (s *Sim) projectedEnd(t *Task) float64 {
	switch {
	case t.origDead:
		return t.specEnd
	case t.speculating && t.specEnd < t.origEnd:
		return t.specEnd
	default:
		return t.origEnd
	}
}

// median returns the middle value of xs (mean of the two middles for even
// lengths), or +Inf when empty so nothing qualifies as lagging it.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(1)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// preemptForRunnableReduce implements [30]-style preemption: when no reduce
// slot is free but some job has shuffle-ready reduces (maps done) pending,
// evict one hoarding reduce (requeued at no lost work) to free a slot.
// Returns whether a slot was freed.
func (s *Sim) preemptForRunnableReduce() bool {
	if !s.cfg.PreemptiveReduce || s.hoarded == 0 {
		return false
	}
	// Is any shuffle-ready reduce waiting?
	ready := false
	for _, j := range s.active {
		if j.ReadyTime <= s.now && j.MapsDone() && j.pendingReds > 0 {
			ready = true
			break
		}
	}
	if !ready {
		return false
	}
	// Evict the most recently launched hoarding reduce (least sunk wait).
	var victim *Task
	var owner *Job
	for _, j := range s.active {
		for _, t := range j.hoarding {
			if victim == nil || t.StartTime > victim.StartTime {
				victim = t
				owner = j
			}
		}
	}
	if victim == nil {
		return false
	}
	for i, t := range owner.hoarding {
		if t == victim {
			owner.hoarding = append(owner.hoarding[:i], owner.hoarding[i+1:]...)
			break
		}
	}
	// The hoard window occupied the slot; account for it, then requeue.
	s.obs.ReducePreempted(s.now, owner.Query.ID, owner.ID, victim.Index,
		victim.slot, s.now-victim.StartTime)
	s.busySec += s.now - victim.StartTime
	victim.State = TaskPending
	victim.StartTime = 0
	owner.pendingReds++
	owner.Query.remainingWRD += victim.PredSec
	s.hoarded--
	s.releaseSlot(victim.slot, true)
	return true
}

// candidates filters ready jobs to those with a runnable task of a phase.
func (s *Sim) candidates(reduce bool) []*Job {
	var out []*Job
	for _, j := range s.active {
		if j.ReadyTime > s.now {
			continue
		}
		if reduce {
			if s.reduceLaunchAllowed(j) {
				out = append(out, j)
			}
		} else if j.pendingMaps > 0 {
			out = append(out, j)
		}
	}
	// Under preemptive reduce scheduling, shuffle-ready jobs take priority
	// for reduce slots over would-be hoarders.
	if reduce && s.cfg.PreemptiveReduce {
		var readyJobs []*Job
		for _, j := range out {
			if j.MapsDone() {
				readyJobs = append(readyJobs, j)
			}
		}
		if len(readyJobs) > 0 {
			return readyJobs
		}
	}
	return out
}

// start occupies a slot with a task. Early-launched reduces hoard the slot
// until their job's map phase completes.
func (s *Sim) start(t *Task, pool *[]int) {
	slot := (*pool)[len(*pool)-1]
	*pool = (*pool)[:len(*pool)-1]
	t.slot = slot
	t.node = s.nodeOf(slot, t.Reduce)
	t.State = TaskRunning
	t.StartTime = s.now
	j := t.Job
	if t.Reduce {
		j.pendingReds--
	} else {
		j.pendingMaps--
	}
	j.Query.remainingWRD -= t.PredSec
	if j.Query.remainingWRD < 0 {
		j.Query.remainingWRD = 0
	}
	hoarding := t.Reduce && !j.MapsDone()
	s.obs.TaskStarted(s.now, j.Query.ID, j.ID, j.Type.String(), t.Reduce,
		t.Index, t.node, slot, t.PredSec, hoarding)
	if hoarding {
		// Shuffle cannot complete until the maps do: hold the slot.
		j.hoarding = append(j.hoarding, t)
		s.hoarded++
		return
	}
	s.scheduleFinish(t)
}

// JobSpan reports a job's first task start and last task end — the data
// behind the paper's Figure 2 execution timelines.
func JobSpan(j *Job) (start, end float64) {
	start = math.Inf(1)
	for _, t := range append(append([]*Task{}, j.Maps...), j.Reds...) {
		if t.State != TaskDone {
			continue
		}
		if t.StartTime < start {
			start = t.StartTime
		}
		if t.EndTime > end {
			end = t.EndTime
		}
	}
	return start, end
}
