package cluster

// Fault-recovery machinery for the simulator: transient task failures with
// capped re-execution and deterministic backoff, node crashes with timed
// recovery, and blacklisting of nodes that host repeated failures — the
// Hadoop 1.x JobTracker behaviours (mapred.map.max.attempts,
// mapred.max.tracker.failures, heartbeat-loss expiry) driven by an
// internal/fault.Plan. All of it is dormant when Config.Faults is nil: the
// event kinds are never scheduled and every epoch stays zero, so a
// fault-free run is byte-identical to the pre-fault simulator.

import "fmt"

// TaskFailedError reports a query abandoned because one task exhausted its
// attempt cap under fault injection. It is carried on Query.Err and
// surfaces through the serving layer's Ticket.Wait.
type TaskFailedError struct {
	Query    string
	Job      string
	Reduce   bool
	Index    int
	Attempts int
}

// Error formats the failure with its full task identity.
func (e *TaskFailedError) Error() string {
	phase := "map"
	if e.Reduce {
		phase = "reduce"
	}
	return fmt.Sprintf("cluster: query %s failed: %s %s task %d exhausted %d attempts",
		e.Query, e.Job, phase, e.Index, e.Attempts)
}

// FaultStats tallies injected-fault recovery activity over one run.
type FaultStats struct {
	// TaskFailures counts transient attempt failures (FAILED attempts).
	TaskFailures int
	// TaskRetries counts task re-executions scheduled after a failure or
	// crash kill (KILLED attempts re-queue immediately).
	TaskRetries int
	// NodeCrashes and NodeRecoveries count outage windows applied.
	NodeCrashes    int
	NodeRecoveries int
	// NodesBlacklisted counts nodes excluded after repeated failures.
	NodesBlacklisted int
	// SpeculativeCancels counts losing attempts of speculative races
	// cancelled when the winner finished.
	SpeculativeCancels int
	// QueryFailures counts queries abandoned at the attempt cap.
	QueryFailures int
}

// effFactor is the node's speed multiplier at the current sim time: the
// configured NodeFactor scaled by any active slowdown window.
func (s *Sim) effFactor(node int) float64 {
	f := s.factors[node]
	if s.fplan != nil {
		f *= s.fplan.SlowFactor(node, s.now)
	}
	return f
}

// releaseSlot returns a slot to its free pool unless its node is down or
// blacklisted, in which case the slot is withheld until recovery (crashed
// nodes re-add their full slot set on recovery; blacklisted nodes never
// return).
func (s *Sim) releaseSlot(slot int, reduce bool) {
	n := s.nodeOf(slot, reduce)
	if s.down[n] || s.blacklisted[n] {
		return
	}
	if reduce {
		s.redFree = append(s.redFree, slot)
	} else {
		s.mapFree = append(s.mapFree, slot)
	}
}

// refund returns the unspent portion of a cancelled attempt's pre-charged
// busy time.
func (s *Sim) refund(scheduledEnd float64) {
	if scheduledEnd > s.now {
		s.busySec -= scheduledEnd - s.now
	}
}

// requeueTask puts a lost (crash-killed or retry-eligible) task back in
// its job's pending queue, restoring its WRD contribution.
func (s *Sim) requeueTask(t *Task) {
	t.State = TaskPending
	t.StartTime = 0
	t.origDead = false
	j := t.Job
	if t.Reduce {
		j.pendingReds++
	} else {
		j.pendingMaps++
	}
	j.Query.remainingWRD += t.PredSec
	s.fstats.TaskRetries++
	s.obs.TaskRetryScheduled()
}

// taskFail handles a transient attempt failure scheduled by the fault
// plan: the slot is released (the burn window was already charged), the
// hosting node's failure count may trip the blacklist, and the task backs
// off before retrying — or, at the attempt cap, fails its whole query.
func (s *Sim) taskFail(e *event) {
	t := e.task
	if e.epoch != t.epochO || t.State != TaskRunning {
		return
	}
	j := t.Job
	t.epochO++
	t.failures++
	t.faulted = true
	j.Query.Faulted = true
	s.fstats.TaskFailures++
	node := t.node
	s.nodeFails[node]++
	backoff := s.fplan.Backoff(t.failures)
	s.obs.TaskFailed(s.now, t.StartTime, j.Query.ID, j.ID, j.Type.String(), t.Reduce,
		t.Index, node, e.slot, t.Attempts, backoff)
	if !s.blacklisted[node] && s.nodeFails[node] >= s.fplan.BlacklistAfter() &&
		s.canBlacklist() {
		s.blacklistNode(node)
	}
	s.releaseSlot(e.slot, t.Reduce)
	if t.speculating {
		// A duplicate attempt is still running elsewhere; the task
		// survives on it and no retry is needed unless that dies too.
		t.origDead = true
		return
	}
	if t.failures >= s.fplan.MaxAttempts() {
		s.failQuery(j.Query, t)
		return
	}
	t.State = TaskWaiting
	t.StartTime = 0
	s.seq++
	s.events.push(&event{time: s.now + backoff, kind: evRetry, seq: s.seq,
		task: t, epoch: t.epochO})
}

// retryTask moves a backed-off task back to pending once its delay ends.
func (s *Sim) retryTask(e *event) {
	t := e.task
	if e.epoch != t.epochO || t.State != TaskWaiting || t.Job.Query.Failed() {
		return
	}
	s.requeueTask(t)
}

// canBlacklist enforces Hadoop's cluster-wide cap: at most half the
// nodes may be blacklisted, so a long faulty run degrades instead of
// starving outright.
func (s *Sim) canBlacklist() bool {
	count := 0
	for _, b := range s.blacklisted {
		if b {
			count++
		}
	}
	return 2*(count+1) <= s.cfg.Nodes
}

// blacklistNode permanently excludes a node from scheduling: free slots
// leave the pools now, running attempts finish but their slots are
// withheld by releaseSlot.
func (s *Sim) blacklistNode(node int) {
	s.blacklisted[node] = true
	s.fstats.NodesBlacklisted++
	s.dropNodeSlots(node)
	s.obs.NodeBlacklisted(s.now, node, s.nodeFails[node])
}

// dropNodeSlots removes a node's free slots from both pools.
func (s *Sim) dropNodeSlots(node int) {
	keep := func(pool []int, reduce bool) []int {
		out := pool[:0]
		for _, slot := range pool {
			if s.nodeOf(slot, reduce) != node {
				out = append(out, slot)
			}
		}
		return out
	}
	s.mapFree = keep(s.mapFree, false)
	s.redFree = keep(s.redFree, true)
}

// crashNode takes a node down: its free slots leave the pools and every
// attempt it hosts is killed. Killed original attempts re-queue
// immediately without burning a failure (Hadoop marks them KILLED, not
// FAILED); a killed original whose speculative duplicate survives
// elsewhere just hands the task over to the duplicate, and vice versa.
func (s *Sim) crashNode(node int) {
	if s.down[node] {
		return
	}
	s.down[node] = true
	s.fstats.NodeCrashes++
	s.dropNodeSlots(node)
	killed := 0
	for _, j := range s.active {
		// Hoarding reduces occupy slots without a finish event; kill and
		// re-queue the ones on this node.
		var keepHoard []*Task
		for _, r := range j.hoarding {
			if s.nodeOf(r.slot, true) != node {
				keepHoard = append(keepHoard, r)
				continue
			}
			s.busySec += s.now - r.StartTime
			s.hoarded--
			killed++
			r.faulted = true
			j.Query.Faulted = true
			s.requeueTask(r)
		}
		j.hoarding = keepHoard
		// Hoarders on this node were re-queued above (now TaskPending), so
		// every remaining running attempt here has a scheduled event.
		for _, t := range append(append([]*Task{}, j.Maps...), j.Reds...) {
			if t.State != TaskRunning {
				continue
			}
			if !t.origDead && t.node == node {
				t.epochO++
				s.refund(t.origEnd)
				killed++
				t.faulted = true
				j.Query.Faulted = true
				if t.speculating {
					t.origDead = true
				} else {
					s.requeueTask(t)
				}
			}
			if t.speculating && t.specNode == node {
				t.epochS++
				t.speculating = false
				s.refund(t.specEnd)
				killed++
				t.faulted = true
				j.Query.Faulted = true
				if t.origDead {
					s.requeueTask(t)
				}
			}
		}
	}
	s.obs.NodeCrashed(s.now, node, killed)
}

// recoverNode brings a crashed node back. Every attempt it hosted was
// killed at crash time, so the full slot set returns free — unless the
// node was also blacklisted, in which case it stays out.
func (s *Sim) recoverNode(node int) {
	if !s.down[node] {
		return
	}
	s.down[node] = false
	s.fstats.NodeRecoveries++
	s.obs.NodeRecovered(s.now, node)
	if s.blacklisted[node] {
		return
	}
	for k := 0; k < s.cfg.MapSlotsPerNode; k++ {
		s.mapFree = append(s.mapFree, node*s.cfg.MapSlotsPerNode+k)
	}
	for k := 0; k < s.cfg.ReduceSlotsPerNode; k++ {
		s.redFree = append(s.redFree, node*s.cfg.ReduceSlotsPerNode+k)
	}
}

// failQuery abandons a query whose task exhausted the attempt cap: every
// live attempt is cancelled, hoarded slots are released, and the query's
// jobs leave the active set. The typed error lands on Query.Err and the
// run continues with the remaining queries.
func (s *Sim) failQuery(q *Query, t *Task) {
	q.Err = &TaskFailedError{
		Query: q.ID, Job: t.Job.ID, Reduce: t.Reduce,
		Index: t.Index, Attempts: t.failures,
	}
	q.DoneTime = s.now
	q.Faulted = true
	q.remainingWRD = 0
	s.fstats.QueryFailures++
	s.terminal++
	s.obs.QueryFailed(s.now, q.ArrivalTime, q.ID, q.Err.Error())
	for _, j := range q.Jobs {
		for _, r := range j.hoarding {
			s.busySec += s.now - r.StartTime
			s.hoarded--
			s.releaseSlot(r.slot, true)
			r.State = TaskPending
		}
		j.hoarding = nil
		for _, tt := range append(append([]*Task{}, j.Maps...), j.Reds...) {
			switch tt.State {
			case TaskRunning:
				if !tt.origDead {
					tt.epochO++
					s.refund(tt.origEnd)
					s.releaseSlot(tt.slot, tt.Reduce)
				}
				if tt.speculating {
					tt.epochS++
					tt.speculating = false
					s.refund(tt.specEnd)
					s.releaseSlot(tt.specSlot, tt.Reduce)
				}
				tt.State = TaskPending
			case TaskWaiting:
				tt.epochO++
				tt.State = TaskPending
			}
		}
		for i, a := range s.active {
			if a == j {
				s.active = append(s.active[:i], s.active[i+1:]...)
				break
			}
		}
	}
}
