package cluster

import (
	"fmt"

	"saqp/internal/plan"
	"saqp/internal/selectivity"
	"saqp/internal/trace"
)

// TaskState tracks a task through its lifecycle.
type TaskState uint8

const (
	// TaskPending tasks await a container.
	TaskPending TaskState = iota
	// TaskRunning tasks occupy a container.
	TaskRunning
	// TaskDone tasks have finished.
	TaskDone
	// TaskWaiting tasks failed transiently and sit out a deterministic
	// backoff before re-entering the pending queue.
	TaskWaiting
)

// Task is one map or reduce task.
type Task struct {
	Job    *Job
	Reduce bool
	Index  int
	// ActualSec is the hidden ground-truth duration at nominal node speed;
	// the effective duration is ActualSec / nodeFactor.
	ActualSec float64
	// PredSec is the duration predicted by the semantics-aware model; the
	// SWRD scheduler's WRD sums these (Eq. 10).
	PredSec float64

	State     TaskState
	StartTime float64
	EndTime   float64
	// Speculated records that the task was completed by a speculative
	// duplicate attempt rather than its original.
	Speculated bool
	// Attempts counts executing attempts of this task (1 on a clean run);
	// crash-killed attempts count, hoard-only slot occupancy does not.
	Attempts int

	// node is the hosting node index, set at dispatch.
	node int
	// slot is the hosting slot id within the phase's pool, set at
	// dispatch — the task's stable track in the observability layer.
	slot int
	// speculating marks that a duplicate attempt is already in flight.
	speculating bool
	// specStart is when the duplicate attempt launched (valid while
	// speculating).
	specStart float64
	// specNode and specSlot locate the duplicate attempt; specEnd is its
	// scheduled completion (valid while speculating).
	specNode, specSlot int
	specEnd            float64
	// origEnd is the scheduled completion (or failure) time of the
	// original attempt currently running.
	origEnd float64
	// origDead marks that the original attempt was lost (transient
	// failure or crash) while a speculative duplicate is still running.
	origDead bool
	// epochO and epochS version the original and speculative attempts; a
	// scheduled event whose epoch no longer matches is stale and ignored,
	// which is how cancelled or crash-killed attempts are invalidated
	// without scanning the event heap.
	epochO, epochS int
	// failures counts transient failures charged against the attempt cap.
	failures int
	// faulted marks a task whose runtime was perturbed by injected faults
	// (failed attempt, crash kill, or dispatch into a slowdown window).
	faulted bool
}

// Faulted reports whether injected faults perturbed this task's runtime.
func (t *Task) Faulted() bool { return t.faulted }

// Failures returns how many transient failures the task has suffered.
func (t *Task) Failures() int { return t.failures }

// Job is one MapReduce job inside a query.
type Job struct {
	ID    string // "<query>/<job>"
	JobID string // plan job ID ("J1")
	Query *Query
	Type  plan.JobType
	Maps  []*Task
	Reds  []*Task
	// DepIDs are plan-level IDs of upstream jobs.
	DepIDs []string

	Submitted  bool
	SubmitTime float64
	// ReadyTime is when initialisation completes and tasks may start.
	ReadyTime float64
	DoneTime  float64

	pendingMaps int
	pendingReds int
	doneMaps    int
	doneReds    int
	// hoarding holds reduces launched before the map phase finished; they
	// occupy reduce slots without progressing until the last map ends.
	hoarding []*Task
}

// MapsDone reports whether every map task has finished (reduces runnable).
func (j *Job) MapsDone() bool { return j.doneMaps == len(j.Maps) }

// Done reports whether the whole job has finished.
func (j *Job) Done() bool { return j.doneMaps == len(j.Maps) && j.doneReds == len(j.Reds) }

// RunnableTasks counts tasks eligible to start right now.
func (j *Job) RunnableTasks() int {
	n := j.pendingMaps
	if j.MapsDone() {
		n += j.pendingReds
	}
	return n
}

// RunningTasks counts tasks currently occupying containers.
func (j *Job) RunningTasks() int {
	n := 0
	for _, t := range j.Maps {
		if t.State == TaskRunning {
			n++
		}
	}
	for _, t := range j.Reds {
		if t.State == TaskRunning {
			n++
		}
	}
	return n
}

// NextTask returns a pending runnable task, maps first, or nil. Reduces
// are only offered once the map phase completes; the simulator's slowstart
// path uses nextPending directly.
func (j *Job) NextTask() *Task {
	if j.pendingMaps > 0 {
		return j.nextPending(false)
	}
	if j.MapsDone() && j.pendingReds > 0 {
		return j.nextPending(true)
	}
	return nil
}

// nextPending returns the first pending task of the given phase.
func (j *Job) nextPending(reduce bool) *Task {
	tasks := j.Maps
	if reduce {
		tasks = j.Reds
	}
	for _, t := range tasks {
		if t.State == TaskPending {
			return t
		}
	}
	return nil
}

// PendingMaps returns the count of maps awaiting dispatch.
func (j *Job) PendingMaps() int { return j.pendingMaps }

// PendingReduces returns the count of reduces awaiting dispatch.
func (j *Job) PendingReduces() int { return j.pendingReds }

// Query is a DAG of jobs submitted as one unit.
type Query struct {
	ID   string
	Jobs []*Job
	// InputBytes is the query's total base-table input (workload binning).
	InputBytes float64

	ArrivalTime float64
	DoneTime    float64

	// Err is non-nil when the query permanently failed — a task exhausted
	// its attempt cap under an injected fault plan. It is always a
	// *TaskFailedError. DoneTime then records the abandonment time.
	Err error
	// Faulted reports that injected faults touched at least one of the
	// query's tasks; drift samples from such queries are recorded in
	// separate "/faulted" buckets.
	Faulted bool

	remainingWRD float64
}

// Failed reports whether the query was abandoned under fault injection.
func (q *Query) Failed() bool { return q.Err != nil }

// ResponseTime returns completion minus arrival, or -1 if unfinished.
func (q *Query) ResponseTime() float64 {
	if q.DoneTime < q.ArrivalTime {
		return -1
	}
	return q.DoneTime - q.ArrivalTime
}

// RemainingWRD returns the query's outstanding Weighted Resource Demand
// (Eq. 10): Σ predicted-map-time × remaining maps + predicted-reduce-time ×
// remaining reduces, over all jobs not yet started or in flight. It
// decreases as tasks are dispatched.
func (q *Query) RemainingWRD() float64 { return q.remainingWRD }

// Done reports whether every job has completed.
func (q *Query) Done() bool {
	for _, j := range q.Jobs {
		if !j.Done() {
			return false
		}
	}
	return true
}

// ResetPending initialises a job's pending-task counters. BuildQuery calls
// it automatically; callers constructing jobs by hand (tests, synthetic
// workloads) must call it before submission.
func (j *Job) ResetPending() {
	j.pendingMaps = len(j.Maps)
	j.pendingReds = len(j.Reds)
}

// RecomputeWRD recomputes the query's remaining Weighted Resource Demand
// from the predicted times of its not-yet-dispatched tasks.
func (q *Query) RecomputeWRD() {
	q.remainingWRD = 0
	for _, j := range q.Jobs {
		for _, t := range j.Maps {
			if t.State == TaskPending {
				q.remainingWRD += t.PredSec
			}
		}
		for _, t := range j.Reds {
			if t.State == TaskPending {
				q.remainingWRD += t.PredSec
			}
		}
	}
}

// TaskTimePredictor supplies per-task predicted durations — implemented by
// the predict package's task model (Eq. 9). Implementations must not
// consult ground truth.
type TaskTimePredictor interface {
	// PredictTask returns seconds for a task of the given operator type,
	// phase, per-task input/output bytes and join factor P(1-P).
	PredictTask(op plan.JobType, reduce bool, inBytes, outBytes, pFactor float64) float64
}

// ConstantPredictor predicts a fixed duration for every task; useful as a
// semantics-free baseline and in tests.
type ConstantPredictor float64

// PredictTask returns the constant.
func (c ConstantPredictor) PredictTask(plan.JobType, bool, float64, float64, float64) float64 {
	return float64(c)
}

// BuildQuery turns a selectivity-annotated DAG into a simulator query:
// per-task input/output volumes are divided evenly across the estimated
// task counts, ground-truth durations are drawn from the cost model, and
// predicted durations from the predictor.
func BuildQuery(id string, qe *selectivity.QueryEstimate, cm *trace.CostModel, pred TaskTimePredictor) *Query {
	q := &Query{ID: id, InputBytes: qe.TotalInputBytes()}
	for _, je := range qe.Jobs {
		j := &Job{
			ID:    fmt.Sprintf("%s/%s", id, je.Job.ID),
			JobID: je.Job.ID,
			Query: q,
			Type:  je.Job.Type,
		}
		for _, dep := range je.Job.Deps {
			j.DepIDs = append(j.DepIDs, dep.ID)
		}
		pf := je.PFactor()
		groups := je.MapGroups
		if len(groups) == 0 {
			nm := je.NumMaps
			if nm < 1 {
				nm = 1
			}
			groups = []selectivity.TaskGroup{{
				Count:    nm,
				InBytes:  je.InBytes / float64(nm),
				OutBytes: je.MedBytes / float64(nm),
			}}
		}
		for _, g := range groups {
			for i := 0; i < g.Count; i++ {
				spec := trace.TaskSpec{Op: j.Type, InBytes: g.InBytes, OutBytes: g.OutBytes}
				t := &Task{
					Job: j, Index: len(j.Maps),
					ActualSec: cm.Duration(spec),
					PredSec:   pred.PredictTask(j.Type, false, g.InBytes, g.OutBytes, pf),
				}
				j.Maps = append(j.Maps, t)
			}
		}
		rgroups := je.ReduceGroups
		if len(rgroups) == 0 && je.NumReduces > 0 {
			nr := je.NumReduces
			rgroups = []selectivity.TaskGroup{{
				Count:    nr,
				InBytes:  je.MedBytes / float64(nr),
				OutBytes: je.OutBytes / float64(nr),
			}}
		}
		for _, g := range rgroups {
			for i := 0; i < g.Count; i++ {
				spec := trace.TaskSpec{Op: j.Type, Reduce: true, InBytes: g.InBytes, OutBytes: g.OutBytes}
				t := &Task{
					Job: j, Reduce: true, Index: len(j.Reds),
					ActualSec: cm.Duration(spec),
					PredSec:   pred.PredictTask(j.Type, true, g.InBytes, g.OutBytes, pf),
				}
				j.Reds = append(j.Reds, t)
			}
		}
		j.pendingMaps = len(j.Maps)
		j.pendingReds = len(j.Reds)
		q.Jobs = append(q.Jobs, j)
	}
	for _, j := range q.Jobs {
		for _, t := range j.Maps {
			q.remainingWRD += t.PredSec
		}
		for _, t := range j.Reds {
			q.remainingWRD += t.PredSec
		}
	}
	return q
}
