package cluster_test

import (
	"errors"
	"fmt"
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/fault"
	"saqp/internal/sched"
)

// fingerprint flattens every per-task time of a run into one comparable
// string, so two runs can be checked for schedule identity.
func fingerprint(res *cluster.Results, qs ...*cluster.Query) string {
	s := fmt.Sprintf("makespan=%v util=%v completed=%d failed=%d faults=%+v\n",
		res.Makespan, res.Utilization, res.Completed, res.Failed, res.Faults)
	for _, q := range qs {
		s += fmt.Sprintf("q=%s done=%v faulted=%v err=%v\n", q.ID, q.DoneTime, q.Faulted, q.Err)
		for _, j := range q.Jobs {
			s += fmt.Sprintf(" j=%s submit=%v done=%v\n", j.ID, j.SubmitTime, j.DoneTime)
			for _, t := range append(append([]*cluster.Task{}, j.Maps...), j.Reds...) {
				s += fmt.Sprintf("  r=%v i=%d start=%v end=%v spec=%v attempts=%d fail=%d faulted=%v\n",
					t.Reduce, t.Index, t.StartTime, t.EndTime, t.Speculated,
					t.Attempts, t.Failures(), t.Faulted())
			}
		}
	}
	return s
}

// faultWorkload is a nontrivial mix (DAG deps, reduces, two queries) used
// by the schedule-identity tests.
func faultWorkload() []*cluster.Query {
	qa := synthQuery("a", []jobSpec{
		{id: "J1", maps: 6, reds: 2, mapSec: 8, redSec: 4},
		{id: "J2", maps: 3, reds: 1, mapSec: 5, redSec: 3, deps: []string{"J1"}},
	})
	qb := synthQuery("b", []jobSpec{{id: "J1", maps: 4, reds: 2, mapSec: 6, redSec: 5}})
	return []*cluster.Query{qa, qb}
}

func runFaultWorkload(t *testing.T, cfg cluster.Config) (*cluster.Results, []*cluster.Query) {
	t.Helper()
	qs := faultWorkload()
	s := cluster.New(cfg, sched.SWRD{})
	s.Submit(qs[0], 0)
	s.Submit(qs[1], 3)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, qs
}

// TestZeroFaultPlanScheduleIdentical is the golden comparison the issue
// demands: a zero-probability fault plan must leave the schedule
// byte-identical to a run with no plan at all, down to every task time.
func TestZeroFaultPlanScheduleIdentical(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 3, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		NodeFactors:           []float64{0.5, 1.0, 1.1},
		SchedulingOverheadSec: 0.5, JobInitSec: 2,
		PreemptiveReduce: true, SpeculativeExecution: true,
	}
	resNil, qsNil := runFaultWorkload(t, cfg)

	cfg.Faults = fault.NewPlan(fault.Spec{Seed: 42}) // zero probabilities
	resZero, qsZero := runFaultWorkload(t, cfg)

	a, b := fingerprint(resNil, qsNil...), fingerprint(resZero, qsZero...)
	if a != b {
		t.Fatalf("zero-probability plan perturbed the schedule:\nnil plan:\n%s\nzero plan:\n%s", a, b)
	}
	if resZero.Faults != (cluster.FaultStats{}) {
		t.Fatalf("zero plan recorded fault activity: %+v", resZero.Faults)
	}
}

// TestFaultedRunsByteIdentical: the same seeded plan over the same
// workload replays every task time and fault counter exactly.
func TestFaultedRunsByteIdentical(t *testing.T) {
	run := func() string {
		cfg := cluster.Config{
			Nodes: 3, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			SchedulingOverheadSec: 0.5, JobInitSec: 2,
			SpeculativeExecution: true,
			Faults: fault.NewPlan(fault.Spec{
				Seed: 7, Nodes: 3, HorizonSec: 120,
				CrashProb: 0.9, CrashDowntimeSec: 15,
				SlowProb: 0.9, SlowDurationSec: 40,
				TaskFailProb: 0.1,
			}),
		}
		res, qs := runFaultWorkload(t, cfg)
		return fingerprint(res, qs...)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("seeded faulted runs diverged:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}

// probeFailSeed finds a plan seed whose pure task-failure hash fails the
// first n attempts of map 0 of job "q/J1" and passes attempt n+1, so
// retry tests need no luck at run time.
func probeFailSeed(t *testing.T, spec fault.Spec, n int) *fault.Plan {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		spec.Seed = seed
		p := fault.NewPlan(spec)
		ok := true
		for a := 1; a <= n; a++ {
			if fail, _ := p.TaskFailure(0, "q/J1", false, 0, a); !fail {
				ok = false
				break
			}
		}
		if ok {
			if fail, _ := p.TaskFailure(0, "q/J1", false, 0, n+1); !fail {
				return p
			}
		}
	}
	t.Fatalf("no seed under 10000 fails exactly %d attempt(s)", n)
	return nil
}

// TestTransientFailureRetriesAndCompletes: one attempt fails partway, the
// task backs off, retries, and the query still completes — with the
// failure charged to the task and the run marked faulted.
func TestTransientFailureRetriesAndCompletes(t *testing.T) {
	spec := fault.Spec{TaskFailProb: 0.5, BlacklistAfter: 100}
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		Faults: probeFailSeed(t, spec, 1)}
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 1, mapSec: 10}})
	s := cluster.New(cfg, sched.HCS{})
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	task := q.Jobs[0].Maps[0]
	if !q.Done() || q.Failed() {
		t.Fatalf("query should recover: done=%v err=%v", q.Done(), q.Err)
	}
	if task.Attempts != 2 || task.Failures() != 1 {
		t.Fatalf("attempts=%d failures=%d, want 2/1", task.Attempts, task.Failures())
	}
	if !task.Faulted() || !q.Faulted {
		t.Fatal("fault not marked on task/query")
	}
	if res.Faults.TaskFailures != 1 || res.Faults.TaskRetries != 1 {
		t.Fatalf("fault stats = %+v, want 1 failure, 1 retry", res.Faults)
	}
	// Burn + backoff + full re-run must exceed the clean 10s duration.
	if res.Makespan <= 10 {
		t.Fatalf("makespan %v not inflated by the failure", res.Makespan)
	}
	if res.Completed != 1 || res.Failed != 0 {
		t.Fatalf("completed/failed = %d/%d", res.Completed, res.Failed)
	}
}

// TestAttemptCapSurfacesTypedError: with every attempt failing, the task
// exhausts MaxAttempts and the whole query fails with *TaskFailedError —
// while Run itself returns no error (other queries may proceed).
func TestAttemptCapSurfacesTypedError(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		Faults: fault.NewPlan(fault.Spec{
			Seed: 1, TaskFailProb: 1, MaxAttempts: 2, BlacklistAfter: 100,
		})}
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 1, mapSec: 10}})
	s := cluster.New(cfg, sched.HCS{})
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run should absorb query failure, got %v", err)
	}
	if !q.Failed() {
		t.Fatal("query should have failed at the attempt cap")
	}
	var tfe *cluster.TaskFailedError
	if !errors.As(q.Err, &tfe) {
		t.Fatalf("Err = %T(%v), want *TaskFailedError", q.Err, q.Err)
	}
	if tfe.Query != "q" || tfe.Job != "q/J1" || tfe.Reduce || tfe.Index != 0 || tfe.Attempts != 2 {
		t.Fatalf("error fields = %+v", *tfe)
	}
	if res.Failed != 1 || res.Completed != 0 || res.Faults.QueryFailures != 1 {
		t.Fatalf("results = completed %d failed %d stats %+v", res.Completed, res.Failed, res.Faults)
	}
	if q.DoneTime <= 0 {
		t.Fatal("failed query should record its abandonment time")
	}
}

// TestCrashKillsAndRequeues: a node outage kills its running attempts
// (KILLED: re-queued at once, no cap charge) and the run still completes
// after recovery.
func TestCrashKillsAndRequeues(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		Faults: fault.NewPlan(fault.Spec{
			Seed: 3, Nodes: 2, HorizonSec: 60,
			CrashProb: 1, CrashDowntimeSec: 20,
		})}
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 4, mapSec: 100}})
	s := cluster.New(cfg, sched.HCS{})
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("query should complete after recovery")
	}
	if res.Faults.NodeCrashes < 1 || res.Faults.NodeRecoveries < 1 {
		t.Fatalf("crash windows not applied: %+v", res.Faults)
	}
	if res.Faults.TaskRetries < 1 {
		t.Fatalf("crash killed no running attempt: %+v", res.Faults)
	}
	for _, task := range q.Jobs[0].Maps {
		if task.Failures() != 0 {
			t.Fatalf("crash kill charged the attempt cap: task %d has %d failures",
				task.Index, task.Failures())
		}
	}
	if !q.Faulted {
		t.Fatal("crash-perturbed query not marked faulted")
	}
}

// TestSlowdownWindowInflatesMakespan: tasks dispatched inside a slowdown
// window run at the degraded speed, stretching the run past its clean
// makespan, without any failure being charged.
func TestSlowdownWindowInflatesMakespan(t *testing.T) {
	mk := func() *cluster.Query {
		return synthQuery("q", []jobSpec{{id: "J1", maps: 10, mapSec: 10}})
	}
	clean := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}, sched.HCS{})
	qc := mk()
	clean.Submit(qc, 0)
	cres, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cres.Makespan != 100 {
		t.Fatalf("clean makespan = %v, want 100", cres.Makespan)
	}

	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		Faults: fault.NewPlan(fault.Spec{
			Seed: 5, Nodes: 1, HorizonSec: 50,
			SlowProb: 1, SlowFactor: 0.5, SlowDurationSec: 300,
		})}
	qf := mk()
	s := cluster.New(cfg, sched.HCS{})
	s.Submit(qf, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 100 {
		t.Fatalf("slowdown did not inflate makespan: %v", res.Makespan)
	}
	if !qf.Faulted {
		t.Fatal("slowed query not marked faulted")
	}
	if res.Faults.TaskFailures != 0 || res.Faults.QueryFailures != 0 {
		t.Fatalf("slowdown charged failures: %+v", res.Faults)
	}
}

// TestSpeculativeLoserCancelledWithoutDoubleCounting: the losing attempt
// of a speculative race frees its slot at the winner's finish and its
// unspent busy time is refunded — verified by exact utilization math.
func TestSpeculativeLoserCancelledWithoutDoubleCounting(t *testing.T) {
	// Node 0 at 0.3x: its 30s map runs 100s. Node 1 finishes its own map at
	// t=30 and clones the straggler (done at 60 < 100). Expected busy time:
	// 30 (fast map) + 30 (winning clone) + 60 (straggler until cancel) =
	// 120 slot-seconds over 4 slots × 60s makespan = exactly 0.5.
	q := synthQuery("q", []jobSpec{{id: "J1", maps: 2, mapSec: 30}})
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		NodeFactors: []float64{0.3, 1.0}, SpeculativeExecution: true}
	s := cluster.New(cfg, sched.HCS{})
	s.Submit(q, 0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 60 {
		t.Fatalf("makespan = %v, want 60 (clone wins at t=60)", res.Makespan)
	}
	if res.Faults.SpeculativeCancels != 1 {
		t.Fatalf("speculative cancels = %d, want 1", res.Faults.SpeculativeCancels)
	}
	if res.Utilization != 0.5 {
		t.Fatalf("utilization = %v, want exactly 0.5 (loser refunded)", res.Utilization)
	}
	for _, task := range q.Jobs[0].Maps {
		if task.State != cluster.TaskDone {
			t.Fatalf("map %d left in state %v", task.Index, task.State)
		}
	}
}
