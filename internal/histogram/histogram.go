package histogram

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"saqp/internal/core/floats"
)

// Bucket is one equi-width cell: the row mass falling in it and the number
// of distinct values that mass carries.
type Bucket struct {
	Count    float64 `json:"count"`
	Distinct float64 `json:"distinct"`
}

// Histogram is an equi-width histogram over a numeric domain [Lo, Hi).
// The zero value is not usable; construct with Build, Synthesize or New.
type Histogram struct {
	Lo      float64  `json:"lo"`
	Hi      float64  `json:"hi"`
	Buckets []Bucket `json:"buckets"`
}

// New returns an empty histogram with n buckets over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func New(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("histogram: bucket count must be positive")
	}
	if hi <= lo {
		panic("histogram: hi must exceed lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]Bucket, n)}
}

// Build constructs an n-bucket equi-width histogram from a value sample.
// Values outside [lo, hi) are clamped into the boundary buckets, matching
// how offline statistics tolerate slightly stale domain bounds.
func Build(values []float64, lo, hi float64, n int) *Histogram {
	h := New(lo, hi, n)
	distinct := make([]map[float64]struct{}, n)
	for i := range distinct {
		distinct[i] = make(map[float64]struct{})
	}
	for _, v := range values {
		b := h.bucketOf(v)
		h.Buckets[b].Count++
		distinct[b][v] = struct{}{}
	}
	for i := range h.Buckets {
		h.Buckets[i].Distinct = float64(len(distinct[i]))
	}
	return h
}

// Synthesize constructs a histogram analytically — without scanning rows —
// for a column with `rows` rows spread over `card` distinct values in
// [lo, lo+card). This is how statistics are produced for experiment scales
// too large to materialise.
//
// weights, if non-nil, gives the relative row mass of each bucket and must
// have length n; distinct values are still spread evenly across buckets.
func Synthesize(rows, card int64, lo float64, n int, weights []float64) *Histogram {
	if card < 1 {
		card = 1
	}
	h := New(lo, lo+float64(card), n)
	if weights != nil && len(weights) != n {
		panic("histogram: weights length must equal bucket count")
	}
	var wsum float64
	if weights != nil {
		for _, w := range weights {
			wsum += w
		}
	}
	perBucketCard := float64(card) / float64(n)
	for i := 0; i < n; i++ {
		share := 1 / float64(n)
		if weights != nil && wsum > 0 {
			share = weights[i] / wsum
		}
		cnt := float64(rows) * share
		crd := perBucketCard
		if crd > cnt {
			crd = cnt
		}
		if crd < 1 && cnt >= 1 {
			crd = 1
		}
		h.Buckets[i] = Bucket{Count: cnt, Distinct: crd}
	}
	return h
}

// bucketOf returns the bucket index covering v, clamped to the edges.
//
//saqp:hotpath
func (h *Histogram) bucketOf(v float64) int {
	n := len(h.Buckets)
	if v < h.Lo {
		return 0
	}
	if v >= h.Hi {
		return n - 1
	}
	i := int(float64(n) * (v - h.Lo) / (h.Hi - h.Lo))
	if i >= n {
		i = n - 1
	}
	return i
}

// width returns one bucket's domain width.
//
//saqp:hotpath
func (h *Histogram) width() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Buckets))
}

// Rows returns the total row mass in the histogram.
//
//saqp:hotpath
func (h *Histogram) Rows() float64 {
	var t float64
	for _, b := range h.Buckets {
		t += b.Count
	}
	return t
}

// DistinctTotal returns the summed per-bucket distinct counts — an upper
// bound on (and for integer-keyed equi-width buckets, exactly) the column's
// distinct cardinality.
//
//saqp:hotpath
func (h *Histogram) DistinctTotal() float64 {
	var t float64
	for _, b := range h.Buckets {
		t += b.Distinct
	}
	return t
}

// SelectivityLT estimates the fraction of rows with value < x, assuming
// uniform spread within the partially-covered bucket. The Selectivity*
// family backs PredSelectivity, which scores every plan candidate, so
// none of it may allocate.
//
//saqp:hotpath
func (h *Histogram) SelectivityLT(x float64) float64 {
	total := h.Rows()
	if total == 0 { //lint:allow saqpvet/floatcmp zero row mass means an empty histogram, an exact state
		return 0
	}
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return 1
	}
	w := h.width()
	var rows float64
	for i, b := range h.Buckets {
		bLo := h.Lo + float64(i)*w
		bHi := bLo + w
		switch {
		case x >= bHi:
			rows += b.Count
		case x > bLo:
			rows += b.Count * (x - bLo) / w
		}
	}
	return clamp01(rows / total)
}

// SelectivityGE estimates the fraction of rows with value >= x.
//
//saqp:hotpath
func (h *Histogram) SelectivityGE(x float64) float64 {
	return clamp01(1 - h.SelectivityLT(x))
}

// SelectivityBetween estimates the fraction of rows with lo <= value < hi.
//
//saqp:hotpath
func (h *Histogram) SelectivityBetween(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return clamp01(h.SelectivityLT(hi) - h.SelectivityLT(lo))
}

// SelectivityEQ estimates the fraction of rows equal to x: the covering
// bucket's count split evenly over its distinct values.
//
//saqp:hotpath
func (h *Histogram) SelectivityEQ(x float64) float64 {
	total := h.Rows()
	if total == 0 || x < h.Lo || x >= h.Hi { //lint:allow saqpvet/floatcmp zero row mass means an empty histogram, an exact state
		return 0
	}
	b := h.Buckets[h.bucketOf(x)]
	if b.Count == 0 || b.Distinct == 0 { //lint:allow saqpvet/floatcmp exact empty-bucket state, never a rounding artifact
		return 0
	}
	return clamp01(b.Count / b.Distinct / total)
}

// SelectivityNE estimates the fraction of rows not equal to x.
//
//saqp:hotpath
func (h *Histogram) SelectivityNE(x float64) float64 {
	return clamp01(1 - h.SelectivityEQ(x))
}

// ErrMisaligned is returned when two histograms cannot be combined
// bucket-by-bucket.
var ErrMisaligned = errors.New("histogram: domains or bucket counts differ")

// alignEps tolerates rounding drift in domain bounds that were derived
// through different arithmetic paths (e.g. scaled vs. rebucketed).
const alignEps = 1e-12

// Aligned reports whether h and o share domain bounds and bucket count, the
// precondition for the bucket-wise join estimate.
func (h *Histogram) Aligned(o *Histogram) bool {
	return len(h.Buckets) == len(o.Buckets) &&
		floats.ApproxEqual(h.Lo, o.Lo, alignEps) &&
		floats.ApproxEqual(h.Hi, o.Hi, alignEps)
}

// JoinSize estimates |T1 ⋈ T2| on this attribute via the paper's Eq. 5:
//
//	|T1 ⋈ T2| = Σ_i |T1i| × |T2i| / max(T1i.d, T2i.d)
//
// under the piece-wise uniform assumption. Both histograms must be aligned.
func (h *Histogram) JoinSize(o *Histogram) (float64, error) {
	if !h.Aligned(o) {
		return 0, ErrMisaligned
	}
	var total float64
	for i := range h.Buckets {
		a, b := h.Buckets[i], o.Buckets[i]
		d := math.Max(a.Distinct, b.Distinct)
		if d < 1 {
			if a.Count == 0 || b.Count == 0 { //lint:allow saqpvet/floatcmp exact empty-bucket state, never a rounding artifact
				continue
			}
			d = 1
		}
		total += a.Count * b.Count / d
	}
	return total, nil
}

// Join returns the estimated histogram of the join result on the join key:
// per bucket, count_i = |T1i|·|T2i|/max(d) and, per the paper's identity
// (T1i ⋈ T2i).d = min(T1i.d, T2i.d), distinct_i = min(d1, d2). The result
// feeds shared-key joins over three or more tables.
func (h *Histogram) Join(o *Histogram) (*Histogram, error) {
	if !h.Aligned(o) {
		return nil, ErrMisaligned
	}
	out := New(h.Lo, h.Hi, len(h.Buckets))
	for i := range h.Buckets {
		a, b := h.Buckets[i], o.Buckets[i]
		d := math.Max(a.Distinct, b.Distinct)
		if d < 1 {
			if a.Count == 0 || b.Count == 0 { //lint:allow saqpvet/floatcmp exact empty-bucket state, never a rounding artifact
				continue
			}
			d = 1
		}
		out.Buckets[i] = Bucket{
			Count:    a.Count * b.Count / d,
			Distinct: math.Min(a.Distinct, b.Distinct),
		}
	}
	return out, nil
}

// Scale returns a copy with all row masses multiplied by f. Distinct
// counts follow the Cardenas/Yao estimate when f < 1 — keeping a fraction
// f of the rows retains d·(1−(1−f)^(count/d)) of the d values, which stays
// near d while every value still has surviving rows — and are unchanged
// when f >= 1 (repeating rows adds no new values).
func (h *Histogram) Scale(f float64) *Histogram {
	if f < 0 {
		f = 0
	}
	out := New(h.Lo, h.Hi, len(h.Buckets))
	for i, b := range h.Buckets {
		c := b.Count * f
		d := b.Distinct
		if f < 1 {
			d = YaoDistinct(b.Distinct, b.Count, f)
		}
		if d > c {
			d = c
		}
		out.Buckets[i] = Bucket{Count: c, Distinct: d}
	}
	return out
}

// YaoDistinct estimates how many of d distinct values survive keeping a
// uniform fraction f of `rows` rows (Cardenas/Yao):
//
//	E[d'] = d · (1 − (1 − f)^(rows/d))
func YaoDistinct(d, rows, f float64) float64 {
	if d <= 0 || rows <= 0 {
		return 0
	}
	if f >= 1 {
		return d
	}
	if f <= 0 {
		return 0
	}
	return d * (1 - math.Pow(1-f, rows/d))
}

// CmpOp mirrors the comparison operators Filter supports.
type CmpOp uint8

// Comparison operators for Filter.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// Filter returns the histogram restricted to rows whose value satisfies
// (value op x), assuming uniform spread within buckets. Unlike Scale, this
// reshapes the distribution: a filter on the column itself zeroes buckets
// outside the range — essential when the filtered column is later used as
// a join key.
func (h *Histogram) Filter(op CmpOp, x float64) *Histogram {
	out := New(h.Lo, h.Hi, len(h.Buckets))
	w := h.width()
	for i, b := range h.Buckets {
		bLo := h.Lo + float64(i)*w
		bHi := bLo + w
		frac := overlapFraction(op, x, bLo, bHi, b)
		c := b.Count * frac
		d := b.Distinct * frac
		if op == CmpEQ && frac > 0 {
			d = math.Min(b.Distinct, 1)
		}
		if d > c {
			d = c
		}
		out.Buckets[i] = Bucket{Count: c, Distinct: d}
	}
	return out
}

// overlapFraction computes the fraction of bucket [bLo,bHi) passing op-x.
func overlapFraction(op CmpOp, x, bLo, bHi float64, b Bucket) float64 {
	span := bHi - bLo
	ltFrac := 0.0
	switch {
	case x <= bLo:
		ltFrac = 0
	case x >= bHi:
		ltFrac = 1
	default:
		ltFrac = (x - bLo) / span
	}
	eqFrac := 0.0
	if x >= bLo && x < bHi && b.Distinct >= 1 {
		eqFrac = 1 / b.Distinct
	}
	switch op {
	case CmpLT:
		return ltFrac
	case CmpLE:
		return clamp01(ltFrac + eqFrac)
	case CmpGE:
		return clamp01(1 - ltFrac)
	case CmpGT:
		return clamp01(1 - ltFrac - eqFrac)
	case CmpEQ:
		return eqFrac
	case CmpNE:
		return clamp01(1 - eqFrac)
	}
	return 1
}

// Rebucket redistributes the histogram onto a new aligned grid with n
// buckets over [lo, hi), assuming uniform spread within each old bucket.
// It allows joining attributes whose offline histograms were built with
// different granularities.
func (h *Histogram) Rebucket(lo, hi float64, n int) *Histogram {
	out := New(lo, hi, n)
	ow := h.width()
	w := out.width()
	for i, b := range h.Buckets {
		if b.Count == 0 && b.Distinct == 0 { //lint:allow saqpvet/floatcmp exact empty-bucket state, never a rounding artifact
			continue
		}
		bLo := h.Lo + float64(i)*ow
		bHi := bLo + ow
		for j := range out.Buckets {
			oLo := out.Lo + float64(j)*w
			oHi := oLo + w
			overlap := math.Min(bHi, oHi) - math.Max(bLo, oLo)
			if overlap <= 0 {
				continue
			}
			frac := overlap / (bHi - bLo)
			out.Buckets[j].Count += b.Count * frac
			out.Buckets[j].Distinct += b.Distinct * frac
		}
	}
	// Mass falling outside [lo,hi) is clamped to the edge buckets.
	if h.Lo < lo || h.Hi > hi {
		clampInto(out, h, lo, hi)
	}
	for j := range out.Buckets {
		if out.Buckets[j].Distinct > out.Buckets[j].Count {
			out.Buckets[j].Distinct = out.Buckets[j].Count
		}
	}
	return out
}

// clampInto adds the mass of h outside [lo,hi) into out's edge buckets.
func clampInto(out, h *Histogram, lo, hi float64) {
	ow := h.width()
	for i, b := range h.Buckets {
		bLo := h.Lo + float64(i)*ow
		bHi := bLo + ow
		if bHi <= lo {
			out.Buckets[0].Count += b.Count
			out.Buckets[0].Distinct += b.Distinct
		} else if bLo < lo && bHi > lo {
			frac := (lo - bLo) / (bHi - bLo)
			out.Buckets[0].Count += b.Count * frac
			out.Buckets[0].Distinct += b.Distinct * frac
		}
		last := len(out.Buckets) - 1
		if bLo >= hi {
			out.Buckets[last].Count += b.Count
			out.Buckets[last].Distinct += b.Distinct
		} else if bHi > hi && bLo < hi {
			frac := (bHi - hi) / (bHi - bLo)
			out.Buckets[last].Count += b.Count * frac
			out.Buckets[last].Distinct += b.Distinct * frac
		}
	}
}

// Encode serialises the histogram to JSON — the stand-in for the paper's
// "histograms stored on HDFS".
func (h *Histogram) Encode() ([]byte, error) {
	return json.Marshal(h)
}

// Decode parses a histogram previously produced by Encode.
func Decode(data []byte) (*Histogram, error) {
	var h Histogram
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("histogram: decode: %w", err)
	}
	if len(h.Buckets) == 0 || h.Hi <= h.Lo {
		return nil, errors.New("histogram: decoded histogram is malformed")
	}
	return &h, nil
}

// clamp01 clips a selectivity estimate into [0, 1].
//
//saqp:hotpath
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
