package histogram

import (
	"errors"
	"sort"
)

// EquiDepth is an equal-mass histogram: every bucket holds (approximately)
// the same number of rows, with data-dependent boundaries. The paper chose
// equi-*width* histograms (following Piatetsky-Shapiro & Connell and Bell
// et al.); this type exists to quantify that design decision — equi-depth
// buckets adapt to skew for predicate selectivity but lose the fixed bucket
// alignment that makes the paper's bucket-wise join estimate (Eq. 5) cheap.
type EquiDepth struct {
	// Bounds has len(Buckets)+1 entries; bucket i covers
	// [Bounds[i], Bounds[i+1]) (the last bucket is closed on the right).
	Bounds  []float64
	Buckets []Bucket
}

// ErrNoData is returned when an equi-depth histogram cannot be built.
var ErrNoData = errors.New("histogram: no values to build from")

// BuildEquiDepth constructs an n-bucket equal-mass histogram from a value
// sample. Duplicate-heavy data may yield fewer than n distinct boundaries;
// buckets are merged as needed.
func BuildEquiDepth(values []float64, n int) (*EquiDepth, error) {
	if len(values) == 0 {
		return nil, ErrNoData
	}
	if n <= 0 {
		n = 1
	}
	sorted := append([]float64{}, values...)
	sort.Float64s(sorted)
	total := len(sorted)
	if n > total {
		n = total
	}
	h := &EquiDepth{}
	start := 0
	for b := 0; b < n; b++ {
		end := (b + 1) * total / n
		if end <= start {
			continue
		}
		// Extend the bucket so a value never straddles a boundary.
		for end < total && sorted[end] == sorted[end-1] { //lint:allow saqpvet/floatcmp exact duplicate run in sorted data
			end++
		}
		seg := sorted[start:end]
		distinct := 1.0
		for i := 1; i < len(seg); i++ {
			if seg[i] != seg[i-1] { //lint:allow saqpvet/floatcmp counting exact-value runs in sorted data
				distinct++
			}
		}
		h.Bounds = append(h.Bounds, seg[0])
		h.Buckets = append(h.Buckets, Bucket{Count: float64(len(seg)), Distinct: distinct})
		start = end
		if end >= total {
			break
		}
	}
	// Final right bound: just past the maximum so it lands inside.
	h.Bounds = append(h.Bounds, sorted[total-1]+ulpStep(sorted[total-1]))
	return h, nil
}

// ulpStep returns a small positive increment relative to v's magnitude.
func ulpStep(v float64) float64 {
	if v < 0 {
		v = -v
	}
	if v < 1 {
		return 1e-9
	}
	return v * 1e-12
}

// Rows returns the total row mass.
func (h *EquiDepth) Rows() float64 {
	var t float64
	for _, b := range h.Buckets {
		t += b.Count
	}
	return t
}

// bucketOf locates the bucket covering v, or -1 when out of range.
func (h *EquiDepth) bucketOf(v float64) int {
	if v < h.Bounds[0] || v >= h.Bounds[len(h.Bounds)-1] {
		return -1
	}
	i := sort.SearchFloat64s(h.Bounds, v)
	// SearchFloat64s returns the first index with Bounds[i] >= v.
	if i < len(h.Bounds) && h.Bounds[i] == v { //lint:allow saqpvet/floatcmp exact boundary hit from SearchFloat64s
		if i == len(h.Buckets) {
			return i - 1
		}
		return i
	}
	return i - 1
}

// SelectivityLT estimates the fraction of rows with value < x.
func (h *EquiDepth) SelectivityLT(x float64) float64 {
	total := h.Rows()
	if total == 0 { //lint:allow saqpvet/floatcmp zero row mass means an empty histogram, an exact state
		return 0
	}
	if x <= h.Bounds[0] {
		return 0
	}
	if x >= h.Bounds[len(h.Bounds)-1] {
		return 1
	}
	var rows float64
	for i, b := range h.Buckets {
		lo, hi := h.Bounds[i], h.Bounds[i+1]
		switch {
		case x >= hi:
			rows += b.Count
		case x > lo && hi > lo:
			rows += b.Count * (x - lo) / (hi - lo)
		}
	}
	return clamp01(rows / total)
}

// SelectivityEQ estimates the fraction of rows equal to x.
func (h *EquiDepth) SelectivityEQ(x float64) float64 {
	total := h.Rows()
	i := h.bucketOf(x)
	if total == 0 || i < 0 { //lint:allow saqpvet/floatcmp zero row mass means an empty histogram, an exact state
		return 0
	}
	b := h.Buckets[i]
	if b.Distinct == 0 { //lint:allow saqpvet/floatcmp distinct count of zero is an exact empty-bucket state
		return 0
	}
	return clamp01(b.Count / b.Distinct / total)
}

// SelectivityBetween estimates the fraction of rows with lo <= value < hi.
func (h *EquiDepth) SelectivityBetween(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return clamp01(h.SelectivityLT(hi) - h.SelectivityLT(lo))
}

// ToWidth converts the histogram onto an equi-width grid over [lo, hi),
// enabling the bucket-aligned join arithmetic of Eq. 5. The conversion
// spreads each depth bucket uniformly over its span — exactly the
// information loss the paper avoids by building equi-width directly.
func (h *EquiDepth) ToWidth(lo, hi float64, n int) *Histogram {
	out := New(lo, hi, n)
	for i, b := range h.Buckets {
		bLo, bHi := h.Bounds[i], h.Bounds[i+1]
		if bHi <= bLo {
			continue
		}
		spreadUniform(out, bLo, bHi, b)
	}
	for j := range out.Buckets {
		if out.Buckets[j].Distinct > out.Buckets[j].Count {
			out.Buckets[j].Distinct = out.Buckets[j].Count
		}
	}
	return out
}

// spreadUniform adds bucket b covering [bLo,bHi) into the equi-width grid.
func spreadUniform(out *Histogram, bLo, bHi float64, b Bucket) {
	w := out.width()
	for j := range out.Buckets {
		oLo := out.Lo + float64(j)*w
		oHi := oLo + w
		overlap := minF(bHi, oHi) - maxF(bLo, oLo)
		if overlap <= 0 {
			continue
		}
		frac := overlap / (bHi - bLo)
		out.Buckets[j].Count += b.Count * frac
		out.Buckets[j].Distinct += b.Distinct * frac
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
