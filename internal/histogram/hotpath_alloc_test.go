package histogram

import "testing"

var (
	hotSinkFloat float64
	hotSinkInt   int
)

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for the selectivity kernel: zero heap allocations per call.
func TestHotPathAllocs(t *testing.T) {
	h := Build([]float64{1, 2, 3, 42, 42, 99}, 0, 100, 8)
	cases := []struct {
		name string
		fn   func()
	}{
		{"bucketOf", func() { hotSinkInt = h.bucketOf(42) }},
		{"width", func() { hotSinkFloat = h.width() }},
		{"Rows", func() { hotSinkFloat = h.Rows() }},
		{"DistinctTotal", func() { hotSinkFloat = h.DistinctTotal() }},
		{"SelectivityLT", func() { hotSinkFloat = h.SelectivityLT(42) }},
		{"SelectivityGE", func() { hotSinkFloat = h.SelectivityGE(42) }},
		{"SelectivityEQ", func() { hotSinkFloat = h.SelectivityEQ(42) }},
		{"SelectivityNE", func() { hotSinkFloat = h.SelectivityNE(42) }},
		{"SelectivityBetween", func() { hotSinkFloat = h.SelectivityBetween(10, 60) }},
		{"clamp01", func() { hotSinkFloat = clamp01(-0.5) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", c.name, n)
		}
	}
}
