package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"saqp/internal/sim"
)

func uniformSample(n int, lo, hi float64, seed uint64) []float64 {
	r := sim.New(seed)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Range(lo, hi)
	}
	return vals
}

func TestBuildCountsConserved(t *testing.T) {
	vals := uniformSample(10000, 0, 100, 1)
	h := Build(vals, 0, 100, 32)
	if h.Rows() != 10000 {
		t.Fatalf("Rows() = %v, want 10000", h.Rows())
	}
}

func TestBuildClampsOutliers(t *testing.T) {
	h := Build([]float64{-5, 50, 500}, 0, 100, 10)
	if h.Rows() != 3 {
		t.Fatalf("outliers dropped: rows = %v", h.Rows())
	}
	if h.Buckets[0].Count != 1 || h.Buckets[9].Count != 1 {
		t.Fatal("outliers not clamped to edge buckets")
	}
}

func TestSelectivityLTUniform(t *testing.T) {
	vals := uniformSample(100000, 0, 100, 2)
	h := Build(vals, 0, 100, 50)
	for _, x := range []float64{10, 25, 50, 90} {
		got := h.SelectivityLT(x)
		want := x / 100
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("SelectivityLT(%v) = %v, want ~%v", x, got, want)
		}
	}
}

func TestSelectivityBounds(t *testing.T) {
	vals := uniformSample(1000, 0, 10, 3)
	h := Build(vals, 0, 10, 8)
	if h.SelectivityLT(-1) != 0 || h.SelectivityLT(11) != 1 {
		t.Fatal("LT out-of-domain bounds wrong")
	}
	if h.SelectivityGE(-1) != 1 || h.SelectivityGE(11) != 0 {
		t.Fatal("GE out-of-domain bounds wrong")
	}
	if h.SelectivityEQ(-1) != 0 || h.SelectivityEQ(11) != 0 {
		t.Fatal("EQ out-of-domain should be 0")
	}
}

func TestSelectivityMonotoneProperty(t *testing.T) {
	vals := uniformSample(5000, 0, 1000, 4)
	h := Build(vals, 0, 1000, 40)
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw%1000), float64(bRaw%1000)
		if a > b {
			a, b = b, a
		}
		return h.SelectivityLT(a) <= h.SelectivityLT(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectivityBetweenWiderIsLarger(t *testing.T) {
	vals := uniformSample(5000, 0, 100, 5)
	h := Build(vals, 0, 100, 20)
	if h.SelectivityBetween(20, 40) > h.SelectivityBetween(20, 60) {
		t.Fatal("wider range has smaller selectivity")
	}
	if h.SelectivityBetween(40, 20) != 0 {
		t.Fatal("inverted range should give 0")
	}
}

func TestSelectivityEQ(t *testing.T) {
	// 1000 rows over 100 distinct integers: EQ should be ~1/100.
	r := sim.New(6)
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(r.Int63n(100))
	}
	h := Build(vals, 0, 100, 10)
	got := h.SelectivityEQ(42)
	if math.Abs(got-0.01) > 0.004 {
		t.Fatalf("SelectivityEQ = %v, want ~0.01", got)
	}
	if ne := h.SelectivityNE(42); math.Abs(ne-(1-got)) > 1e-12 {
		t.Fatalf("NE != 1-EQ: %v vs %v", ne, 1-got)
	}
}

func TestJoinSizeUniformMatchesClassicFormula(t *testing.T) {
	// Uniform keys: Eq. 5 must agree with |T1|·|T2|/max(d1,d2).
	r := sim.New(7)
	const card = 1000
	mk := func(n int) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Int63n(card))
		}
		return vals
	}
	h1 := Build(mk(20000), 0, card, 50)
	h2 := Build(mk(5000), 0, card, 50)
	est, err := h1.JoinSize(h2)
	if err != nil {
		t.Fatal(err)
	}
	classic := 20000.0 * 5000.0 / card
	if math.Abs(est-classic)/classic > 0.1 {
		t.Fatalf("JoinSize = %v, classic uniform = %v", est, classic)
	}
}

func TestJoinSizeSymmetric(t *testing.T) {
	r := sim.New(8)
	mk := func(n int, seed uint64) *Histogram {
		rr := sim.New(seed)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rr.Int63n(500))
		}
		return Build(vals, 0, 500, 25)
	}
	_ = r
	a, b := mk(3000, 1), mk(7000, 2)
	ab, _ := a.JoinSize(b)
	ba, _ := b.JoinSize(a)
	if ab != ba {
		t.Fatalf("JoinSize not symmetric: %v vs %v", ab, ba)
	}
}

func TestJoinSizeSkewExceedsUniformFormula(t *testing.T) {
	// With skew, the naive uniform formula underestimates; Eq. 5 must be
	// closer to the true join size.
	r := sim.New(9)
	const card = 200
	mkSkew := func(n int) []float64 {
		z := sim.NewZipf(r, 1.6, 1, card)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(z.Uint64())
		}
		return vals
	}
	v1, v2 := mkSkew(20000), mkSkew(20000)
	h1 := Build(v1, 0, card, 40)
	h2 := Build(v2, 0, card, 40)
	est, _ := h1.JoinSize(h2)

	// Ground truth by brute force.
	c1 := map[float64]int64{}
	c2 := map[float64]int64{}
	for _, v := range v1 {
		c1[v]++
	}
	for _, v := range v2 {
		c2[v]++
	}
	var truth int64
	for k, n1 := range c1 {
		truth += n1 * c2[k]
	}
	naive := 20000.0 * 20000.0 / card
	errEq5 := math.Abs(est-float64(truth)) / float64(truth)
	errNaive := math.Abs(naive-float64(truth)) / float64(truth)
	if errEq5 >= errNaive {
		t.Fatalf("Eq.5 no better than naive under skew: eq5 err %.3f vs naive err %.3f (est=%v naive=%v truth=%d)",
			errEq5, errNaive, est, naive, truth)
	}
}

func TestJoinMisaligned(t *testing.T) {
	a := New(0, 10, 5)
	b := New(0, 20, 5)
	if _, err := a.JoinSize(b); err != ErrMisaligned {
		t.Fatalf("want ErrMisaligned, got %v", err)
	}
	if _, err := a.Join(b); err != ErrMisaligned {
		t.Fatalf("want ErrMisaligned, got %v", err)
	}
}

func TestJoinResultDistinct(t *testing.T) {
	a := New(0, 10, 2)
	b := New(0, 10, 2)
	a.Buckets[0] = Bucket{Count: 100, Distinct: 10}
	b.Buckets[0] = Bucket{Count: 50, Distinct: 5}
	out, err := a.Join(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Buckets[0].Distinct != 5 {
		t.Fatalf("join distinct = %v, want min(10,5)=5", out.Buckets[0].Distinct)
	}
	if out.Buckets[0].Count != 500 {
		t.Fatalf("join count = %v, want 100*50/10=500", out.Buckets[0].Count)
	}
}

func TestScale(t *testing.T) {
	h := New(0, 10, 2)
	h.Buckets[0] = Bucket{Count: 100, Distinct: 20}
	h.Buckets[1] = Bucket{Count: 60, Distinct: 60}
	s := h.Scale(0.5)
	if s.Buckets[0].Count != 50 {
		t.Fatalf("scaled count = %v, want 50", s.Buckets[0].Count)
	}
	if s.Buckets[0].Distinct > s.Buckets[0].Count {
		t.Fatal("distinct exceeds count after scale")
	}
	if s.Buckets[1].Distinct > 30 {
		t.Fatalf("distinct should shrink with rows: %v", s.Buckets[1].Distinct)
	}
	if z := h.Scale(0); z.Rows() != 0 {
		t.Fatal("Scale(0) should empty the histogram")
	}
	if n := h.Scale(-3); n.Rows() != 0 {
		t.Fatal("negative scale should clamp to 0")
	}
}

func TestRebucketConservesRows(t *testing.T) {
	vals := uniformSample(12345, 0, 100, 10)
	h := Build(vals, 0, 100, 16)
	r := h.Rebucket(0, 100, 64)
	if math.Abs(r.Rows()-h.Rows()) > 1e-6 {
		t.Fatalf("Rebucket lost rows: %v -> %v", h.Rows(), r.Rows())
	}
	r2 := h.Rebucket(0, 100, 7)
	if math.Abs(r2.Rows()-h.Rows()) > 1e-6 {
		t.Fatalf("coarser Rebucket lost rows: %v -> %v", h.Rows(), r2.Rows())
	}
}

func TestRebucketPreservesShape(t *testing.T) {
	vals := uniformSample(50000, 0, 100, 11)
	h := Build(vals, 0, 100, 20)
	r := h.Rebucket(0, 100, 10)
	if math.Abs(r.SelectivityLT(30)-h.SelectivityLT(30)) > 0.03 {
		t.Fatalf("Rebucket distorted distribution: %v vs %v",
			r.SelectivityLT(30), h.SelectivityLT(30))
	}
}

func TestSynthesizeUniform(t *testing.T) {
	h := Synthesize(10000, 500, 0, 20, nil)
	if h.Rows() != 10000 {
		t.Fatalf("Synthesize rows = %v", h.Rows())
	}
	if d := h.DistinctTotal(); d != 500 {
		t.Fatalf("Synthesize distinct = %v, want 500", d)
	}
	if s := h.SelectivityLT(250); math.Abs(s-0.5) > 0.03 {
		t.Fatalf("synthesized LT(mid) = %v", s)
	}
}

func TestSynthesizeWeighted(t *testing.T) {
	w := []float64{9, 1}
	h := Synthesize(1000, 100, 0, 2, w)
	if h.Rows() != 1000 {
		t.Fatalf("rows = %v", h.Rows())
	}
	if h.Buckets[0].Count != 900 {
		t.Fatalf("weighted bucket 0 = %v, want 900", h.Buckets[0].Count)
	}
}

func TestSynthesizeSmallCardinality(t *testing.T) {
	// Cardinality smaller than bucket count must not create phantom
	// distinct values.
	h := Synthesize(1000, 3, 0, 10, nil)
	if h.Rows() != 1000 {
		t.Fatalf("rows = %v", h.Rows())
	}
	if d := h.DistinctTotal(); d < 3 || d > 10 {
		t.Fatalf("distinct total = %v for card 3", d)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := uniformSample(1000, 0, 50, 12)
	h := Build(vals, 0, 50, 8)
	data, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Rows() != h.Rows() || len(h2.Buckets) != len(h.Buckets) {
		t.Fatal("round trip lost data")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := Decode([]byte(`{"lo":5,"hi":1,"buckets":[{}]}`)); err == nil {
		t.Fatal("Decode accepted hi<=lo")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	if _, err := Decode([]byte(`{"lo":0,"hi":1,"buckets":[]}`)); err == nil {
		t.Fatal("Decode accepted empty buckets")
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 10, 0) },
		func() { New(10, 10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("New did not panic on invalid args")
				}
			}()
			fn()
		}()
	}
}

func TestSelectivityEmptyHistogram(t *testing.T) {
	h := New(0, 10, 4)
	if h.SelectivityLT(5) != 0 || h.SelectivityEQ(5) != 0 {
		t.Fatal("empty histogram should have zero selectivity")
	}
}
