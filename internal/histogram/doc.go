// Package histogram implements the equi-width histograms with per-bucket
// distinct counts that the paper builds offline over table attributes
// (Section 3.1, citing Piatetsky-Shapiro & Connell for predicate
// selectivity and Bell et al. for the piece-wise-uniform join estimator of
// Eq. 5). Within a bucket, values are assumed uniformly distributed over
// the bucket's distinct values — the paper's "piece-wise uniform"
// assumption.
//
// Counts are float64: histograms double as *estimated* distributions that
// get scaled and filtered as statistics propagate along a query DAG, where
// fractional row masses are meaningful.
package histogram
