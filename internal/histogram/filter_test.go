package histogram

import (
	"math"
	"testing"
)

func uniformHist(n int, lo, hi float64, buckets int, seed uint64) *Histogram {
	return Build(uniformSample(n, lo, hi, seed), lo, hi, buckets)
}

func TestFilterRangeOps(t *testing.T) {
	h := uniformHist(100000, 0, 100, 50, 21)
	total := h.Rows()
	cases := []struct {
		op   CmpOp
		x    float64
		want float64 // expected surviving fraction
	}{
		{CmpLT, 30, 0.30},
		{CmpLE, 30, 0.30},
		{CmpGE, 80, 0.20},
		{CmpGT, 80, 0.20},
		{CmpNE, 50, 1.0},
	}
	for _, tc := range cases {
		f := h.Filter(tc.op, tc.x)
		got := f.Rows() / total
		if math.Abs(got-tc.want) > 0.02 {
			t.Errorf("Filter(%v, %v) kept %.3f, want ~%.3f", tc.op, tc.x, got, tc.want)
		}
		// Distinct never exceeds count in any bucket.
		for i, b := range f.Buckets {
			if b.Distinct > b.Count+1e-9 {
				t.Fatalf("bucket %d distinct %v > count %v", i, b.Distinct, b.Count)
			}
		}
	}
}

func TestFilterEQKeepsOneValue(t *testing.T) {
	// Integer data: EQ keeps roughly count/distinct of the covering bucket.
	vals := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		vals = append(vals, float64(i%100))
	}
	h := Build(vals, 0, 100, 10)
	f := h.Filter(CmpEQ, 42)
	if math.Abs(f.Rows()-100) > 1 {
		t.Fatalf("EQ filter kept %v rows, want ~100", f.Rows())
	}
	// Only the covering bucket survives.
	for i, b := range f.Buckets {
		if i == 4 {
			if b.Distinct > 1+1e-9 {
				t.Fatalf("EQ bucket distinct = %v, want <= 1", b.Distinct)
			}
			continue
		}
		if b.Count != 0 {
			t.Fatalf("bucket %d should be empty after EQ, has %v", i, b.Count)
		}
	}
}

func TestFilterOutOfDomain(t *testing.T) {
	h := uniformHist(1000, 0, 10, 5, 22)
	if f := h.Filter(CmpLT, -5); f.Rows() != 0 {
		t.Fatalf("LT below domain kept %v rows", f.Rows())
	}
	if f := h.Filter(CmpGE, 100); f.Rows() != 0 {
		t.Fatalf("GE above domain kept %v rows", f.Rows())
	}
	if f := h.Filter(CmpLT, 100); f.Rows() != h.Rows() {
		t.Fatalf("LT above domain dropped rows")
	}
}

func TestFilterChainEquivalence(t *testing.T) {
	// Filter(GE a) then Filter(LT b) == Between mass.
	h := uniformHist(50000, 0, 100, 40, 23)
	f := h.Filter(CmpGE, 20).Filter(CmpLT, 60)
	got := f.Rows() / h.Rows()
	want := h.SelectivityBetween(20, 60)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("chained filters keep %.3f, Between says %.3f", got, want)
	}
}

func TestRebucketNarrowerClampsEdges(t *testing.T) {
	// Rebucketing onto a narrower domain must clamp outside mass into the
	// edge buckets rather than lose it.
	h := uniformHist(10000, 0, 100, 20, 24)
	r := h.Rebucket(25, 75, 10)
	if math.Abs(r.Rows()-h.Rows()) > 1e-6*h.Rows() {
		t.Fatalf("narrow Rebucket lost rows: %v -> %v", h.Rows(), r.Rows())
	}
	// Each edge bucket holds its own span (~5%) plus a clamped 25% tail.
	frac0 := r.Buckets[0].Count / r.Rows()
	if frac0 < 0.25 {
		t.Fatalf("left edge holds %.3f of mass, want >= 0.25 (clamped tail)", frac0)
	}
}

func TestYaoDistinctProperties(t *testing.T) {
	// Bounds and monotonicity.
	if got := YaoDistinct(100, 1000, 1.5); got != 100 {
		t.Fatalf("f>=1 should return d, got %v", got)
	}
	if got := YaoDistinct(100, 1000, 0); got != 0 {
		t.Fatalf("f=0 should return 0, got %v", got)
	}
	if got := YaoDistinct(0, 1000, 0.5); got != 0 {
		t.Fatalf("d=0 should return 0, got %v", got)
	}
	if got := YaoDistinct(100, 0, 0.5); got != 0 {
		t.Fatalf("rows=0 should return 0, got %v", got)
	}
	// Low-cardinality column survives small samples almost intact.
	if got := YaoDistinct(50, 60000, 0.05); got < 49.9 {
		t.Fatalf("50-value column should survive a 5%% sample, got %v", got)
	}
	// Unique column scales linearly.
	if got := YaoDistinct(1000, 1000, 0.3); math.Abs(got-300) > 1 {
		t.Fatalf("unique column: got %v, want ~300", got)
	}
	// Monotone in f.
	prev := 0.0
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got := YaoDistinct(200, 5000, f)
		if got < prev {
			t.Fatalf("YaoDistinct not monotone at f=%v", f)
		}
		prev = got
	}
}

func TestEquiDepthUlpStep(t *testing.T) {
	// Degenerate single-value data must still give an includable bound.
	for _, v := range []float64{0, 0.5, -3, 1e12} {
		h, err := BuildEquiDepth([]float64{v, v}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.SelectivityEQ(v); math.Abs(got-1) > 1e-9 {
			t.Fatalf("EQ(%v) on constant data = %v", v, got)
		}
	}
}
