package histogram

import (
	"math"
	"testing"

	"saqp/internal/sim"
)

func zipfSample(n int, card uint64, s float64, seed uint64) []float64 {
	z := sim.NewZipf(sim.New(seed), s, 1, card)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(z.Uint64())
	}
	return vals
}

func TestEquiDepthMassConserved(t *testing.T) {
	vals := uniformSample(12345, 0, 100, 1)
	h, err := BuildEquiDepth(vals, 32)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 12345 {
		t.Fatalf("rows = %v", h.Rows())
	}
	if len(h.Bounds) != len(h.Buckets)+1 {
		t.Fatalf("bounds/buckets mismatch: %d vs %d", len(h.Bounds), len(h.Buckets))
	}
	for i := 1; i < len(h.Bounds); i++ {
		if h.Bounds[i] <= h.Bounds[i-1] {
			t.Fatalf("bounds not increasing at %d", i)
		}
	}
}

func TestEquiDepthBalancedOnUniform(t *testing.T) {
	vals := uniformSample(10000, 0, 100, 2)
	h, err := BuildEquiDepth(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range h.Buckets {
		if math.Abs(b.Count-1000) > 50 {
			t.Fatalf("bucket %d mass %v, want ~1000", i, b.Count)
		}
	}
}

func TestEquiDepthErrors(t *testing.T) {
	if _, err := BuildEquiDepth(nil, 4); err != ErrNoData {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	// Degenerate inputs still work.
	h, err := BuildEquiDepth([]float64{5, 5, 5, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 4 {
		t.Fatalf("rows = %v", h.Rows())
	}
	if got := h.SelectivityEQ(5); math.Abs(got-1) > 1e-9 {
		t.Fatalf("EQ on constant data = %v", got)
	}
}

func TestEquiDepthSelectivityUniform(t *testing.T) {
	vals := uniformSample(100000, 0, 100, 3)
	h, err := BuildEquiDepth(vals, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{10, 25, 50, 90} {
		if got := h.SelectivityLT(x); math.Abs(got-x/100) > 0.02 {
			t.Fatalf("LT(%v) = %v", x, got)
		}
	}
	if h.SelectivityLT(-5) != 0 || h.SelectivityLT(500) != 1 {
		t.Fatal("out-of-range LT bounds")
	}
	if h.SelectivityBetween(40, 20) != 0 {
		t.Fatal("inverted range")
	}
}

func TestEquiDepthBeatsEquiWidthOnSkewedEquality(t *testing.T) {
	// Zipf-skewed integer keys: equi-depth isolates the hot keys in their
	// own buckets, so per-key equality estimates are sharper than an
	// equi-width histogram with the same bucket budget.
	const n, card = 200000, 10000
	vals := zipfSample(n, card, 1.4, 4)
	counts := map[float64]int{}
	for _, v := range vals {
		counts[v]++
	}
	depth, err := BuildEquiDepth(vals, 64)
	if err != nil {
		t.Fatal(err)
	}
	width := Build(vals, 0, card, 64)

	evalErr := func(sel func(float64) float64) float64 {
		var sum float64
		probes := []float64{0, 1, 2, 5, 10, 50, 100, 500, 1000, 5000}
		for _, x := range probes {
			truth := float64(counts[x]) / n
			sum += math.Abs(sel(x) - truth)
		}
		return sum / float64(len(probes))
	}
	dErr := evalErr(depth.SelectivityEQ)
	wErr := evalErr(width.SelectivityEQ)
	if dErr >= wErr {
		t.Fatalf("equi-depth EQ err %.5f not better than equi-width %.5f on skew", dErr, wErr)
	}
}

func TestEquiDepthToWidthConserves(t *testing.T) {
	vals := zipfSample(50000, 1000, 1.3, 5)
	depth, err := BuildEquiDepth(vals, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := depth.ToWidth(0, 1000, 64)
	if math.Abs(w.Rows()-depth.Rows()) > 1e-6*depth.Rows() {
		t.Fatalf("ToWidth lost mass: %v vs %v", w.Rows(), depth.Rows())
	}
	// Shape roughly preserved.
	if d := math.Abs(w.SelectivityLT(100) - depth.SelectivityLT(100)); d > 0.05 {
		t.Fatalf("ToWidth distorted LT: %v", d)
	}
}

func TestEquiDepthJoinViaWidthGrid(t *testing.T) {
	// Joining via converted equi-depth grids should stay in the same
	// ballpark as native equi-width Eq. 5.
	v1 := zipfSample(30000, 500, 1.5, 6)
	v2 := zipfSample(30000, 500, 1.5, 7)
	c1 := map[float64]int64{}
	c2 := map[float64]int64{}
	for _, v := range v1 {
		c1[v]++
	}
	for _, v := range v2 {
		c2[v]++
	}
	var truth float64
	for k, n1 := range c1 {
		truth += float64(n1 * c2[k])
	}
	d1, _ := BuildEquiDepth(v1, 64)
	d2, _ := BuildEquiDepth(v2, 64)
	est, err := d1.ToWidth(0, 500, 64).JoinSize(d2.ToWidth(0, 500, 64))
	if err != nil {
		t.Fatal(err)
	}
	if est < truth*0.3 || est > truth*3 {
		t.Fatalf("depth-grid join estimate %v too far from truth %v", est, truth)
	}
}
