// Package trace is the reproduction's stand-in for the paper's physical
// testbed: a hidden ground-truth cost model that assigns durations to map
// and reduce tasks. The prediction framework never reads this model — it
// must learn coefficients by regression over observed (features, time)
// pairs, exactly as the paper trains on 5,647 jobs measured on its Hadoop
// cluster.
//
// The model is deliberately NOT of the linear form the predictor fits
// (Eq. 8/9): it has fixed startup overheads, separate disk/network/CPU
// phases, an n·log(n) sort term in reduces, per-node speed variation and
// multiplicative log-normal noise. Prediction error in the experiments is
// therefore real model mismatch, not round-tripping.
package trace
