package trace

import (
	"math"
	"testing"
	"testing/quick"

	"saqp/internal/plan"
)

func TestExpectedMonotoneInInput(t *testing.T) {
	m := NewDefaultCostModel(1)
	prev := 0.0
	for _, mb := range []float64{16, 64, 256, 1024} {
		d := m.Expected(TaskSpec{Op: plan.Extract, InBytes: mb * 1e6, OutBytes: mb * 1e5})
		if d <= prev {
			t.Fatalf("duration not monotone at %v MB: %v <= %v", mb, d, prev)
		}
		prev = d
	}
}

func TestExpectedCalibration(t *testing.T) {
	// A 256 MB extract map task should take tens of seconds on the
	// paper-era hardware — not milliseconds, not hours.
	m := NewDefaultCostModel(1)
	d := m.Expected(TaskSpec{Op: plan.Extract, InBytes: 256 << 20, OutBytes: 64 << 20})
	if d < 3 || d > 120 {
		t.Fatalf("256MB map task = %vs, implausible", d)
	}
}

func TestOperatorOrdering(t *testing.T) {
	// For equal volumes: Join > Groupby > Extract (CPU rates).
	m := NewDefaultCostModel(1)
	spec := TaskSpec{InBytes: 128 << 20, OutBytes: 32 << 20}
	ext := spec
	ext.Op = plan.Extract
	grp := spec
	grp.Op = plan.Groupby
	jn := spec
	jn.Op = plan.Join
	de, dg, dj := m.Expected(ext), m.Expected(grp), m.Expected(jn)
	if !(dj > dg && dg > de) {
		t.Fatalf("operator cost ordering broken: join %v, groupby %v, extract %v", dj, dg, de)
	}
}

func TestReduceCostsMoreThanMap(t *testing.T) {
	// Same bytes: a reduce pays shuffle + sort and must exceed the map.
	m := NewDefaultCostModel(1)
	mapT := m.Expected(TaskSpec{Op: plan.Groupby, InBytes: 256 << 20, OutBytes: 64 << 20})
	redT := m.Expected(TaskSpec{Op: plan.Groupby, InBytes: 256 << 20, OutBytes: 64 << 20, Reduce: true})
	if redT <= mapT {
		t.Fatalf("reduce %v not more expensive than map %v", redT, mapT)
	}
}

func TestSortTermSuperlinear(t *testing.T) {
	// Doubling reduce input more than doubles the duration beyond startup.
	m := NewDefaultCostModel(1)
	base := m.p.StartupSec
	d1 := m.Expected(TaskSpec{Op: plan.Extract, Reduce: true, InBytes: 512 << 20}) - base
	d2 := m.Expected(TaskSpec{Op: plan.Extract, Reduce: true, InBytes: 1024 << 20}) - base
	if d2 <= 2*d1 {
		t.Fatalf("sort term not superlinear: %v vs 2x%v", d2, d1)
	}
}

func TestNodeFactorSpeedsUp(t *testing.T) {
	m := NewDefaultCostModel(1)
	slow := m.Expected(TaskSpec{Op: plan.Extract, InBytes: 1e8, NodeFactor: 0.8})
	fast := m.Expected(TaskSpec{Op: plan.Extract, InBytes: 1e8, NodeFactor: 1.2})
	if fast >= slow {
		t.Fatalf("node factor ignored: fast %v >= slow %v", fast, slow)
	}
	def := m.Expected(TaskSpec{Op: plan.Extract, InBytes: 1e8})
	one := m.Expected(TaskSpec{Op: plan.Extract, InBytes: 1e8, NodeFactor: 1})
	if def != one {
		t.Fatal("zero NodeFactor should default to 1.0")
	}
}

func TestDurationNoiseProperties(t *testing.T) {
	m := NewDefaultCostModel(7)
	spec := TaskSpec{Op: plan.Extract, InBytes: 256 << 20, OutBytes: 1e6}
	exp := m.Expected(spec)
	const n = 2000
	var sum float64
	for i := 0; i < n; i++ {
		d := m.Duration(spec)
		if d <= 0 {
			t.Fatal("non-positive duration")
		}
		sum += d
	}
	mean := sum / n
	if math.Abs(mean-exp)/exp > 0.03 {
		t.Fatalf("noisy mean %v deviates from expected %v", mean, exp)
	}
}

func TestDurationDeterministicStream(t *testing.T) {
	a, b := NewDefaultCostModel(9), NewDefaultCostModel(9)
	spec := TaskSpec{Op: plan.Join, InBytes: 1e8, OutBytes: 1e8, Reduce: true}
	for i := 0; i < 100; i++ {
		if a.Duration(spec) != b.Duration(spec) {
			t.Fatal("cost model streams diverged")
		}
	}
}

func TestNodeFactorsBounded(t *testing.T) {
	m := NewDefaultCostModel(3)
	f := m.NodeFactors(1000)
	var sum float64
	for _, v := range f {
		if v < 0.8 || v > 1.2 {
			t.Fatalf("node factor %v out of clamp range", v)
		}
		sum += v
	}
	if mean := sum / 1000; math.Abs(mean-1) > 0.02 {
		t.Fatalf("node factors mean %v", mean)
	}
}

func TestExpectedPositiveProperty(t *testing.T) {
	m := NewDefaultCostModel(5)
	f := func(in, out uint32, reduce bool, opRaw uint8) bool {
		spec := TaskSpec{
			Op:       plan.JobType(opRaw % 3),
			Reduce:   reduce,
			InBytes:  float64(in),
			OutBytes: float64(out),
		}
		return m.Expected(spec) >= m.p.StartupSec/1.0-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
