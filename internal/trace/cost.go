package trace

import (
	"math"

	"saqp/internal/plan"
	"saqp/internal/sim"
)

// Params are the physical constants of the simulated cluster, loosely
// calibrated to the paper's testbed (hex-core Xeon X5650 nodes, SATA disks,
// GbE): effective single-task scan bandwidth ~90 MB/s, shuffle ~60 MB/s.
type Params struct {
	// StartupSec is the fixed task launch overhead (JVM start, planning).
	StartupSec float64
	// DiskBW is bytes/second for local reads and writes.
	DiskBW float64
	// NetBW is bytes/second for shuffle transfers.
	NetBW float64
	// CPURate maps operator type to map-side processing bytes/second.
	CPURateExtract float64
	CPURateGroupby float64
	CPURateJoin    float64
	// SortFactor scales the reduce-side merge-sort n·log(n) term.
	SortFactor float64
	// NoiseSigma is the sigma of the per-task log-normal noise.
	NoiseSigma float64
	// NodeSigma is the stddev of per-node speed factors around 1.0.
	NodeSigma float64
}

// DefaultParams returns the calibrated constants. Bandwidths are effective
// per-task rates with 12 containers contending for two SATA disks and one
// GbE link per node, so a 256 MB scan map runs tens of seconds — matching
// the paper-era job durations of Figure 2.
func DefaultParams() Params {
	return Params{
		StartupSec:     1.5,
		DiskBW:         30e6,
		NetBW:          18e6,
		CPURateExtract: 90e6,
		CPURateGroupby: 55e6,
		CPURateJoin:    35e6,
		SortFactor:     0.30,
		NoiseSigma:     0.08,
		NodeSigma:      0.05,
	}
}

// CostModel produces task durations. It is deterministic given its seed:
// the i-th call sequence yields identical durations across runs.
type CostModel struct {
	p   Params
	rng *sim.RNG
}

// NewCostModel builds a model with the given parameters and noise seed.
func NewCostModel(p Params, seed uint64) *CostModel {
	return &CostModel{p: p, rng: sim.New(seed)}
}

// NewDefaultCostModel builds a model with DefaultParams.
func NewDefaultCostModel(seed uint64) *CostModel {
	return NewCostModel(DefaultParams(), seed)
}

// TaskSpec describes one task for costing.
type TaskSpec struct {
	// Op is the job's major-operator category.
	Op plan.JobType
	// Reduce marks reduce tasks (map tasks otherwise).
	Reduce bool
	// InBytes and OutBytes are the task's input and output volumes.
	InBytes, OutBytes float64
	// NodeFactor is the hosting node's speed multiplier (1.0 nominal).
	// Zero means 1.0.
	NodeFactor float64
}

// cpuRate returns the map-side processing rate for the operator.
func (m *CostModel) cpuRate(op plan.JobType) float64 {
	switch op {
	case plan.Join:
		return m.p.CPURateJoin
	case plan.Groupby:
		return m.p.CPURateGroupby
	default:
		return m.p.CPURateExtract
	}
}

// Expected returns the noise-free duration in seconds for a task — the
// model's mean behaviour, exposed for tests and calibration.
func (m *CostModel) Expected(t TaskSpec) float64 {
	nf := t.NodeFactor
	if nf <= 0 {
		nf = 1
	}
	p := m.p
	var sec float64
	if !t.Reduce {
		// Map: read input from disk, process, spill output locally.
		sec = p.StartupSec +
			t.InBytes/p.DiskBW +
			t.InBytes/m.cpuRate(t.Op) +
			t.OutBytes/p.DiskBW
	} else {
		// Reduce: shuffle over network, merge-sort (n·log n in 64 MB
		// segments), reduce-side processing, write output.
		segments := 1 + t.InBytes/(64<<20)
		sortSec := p.SortFactor * (t.InBytes / p.DiskBW) * math.Log2(1+segments)
		sec = p.StartupSec +
			t.InBytes/p.NetBW +
			sortSec +
			t.InBytes/m.cpuRate(t.Op) +
			t.OutBytes/p.DiskBW
	}
	// Joins pay an extra probe/materialisation cost proportional to the
	// produced volume — the data growth the paper's P(1-P) feature tracks.
	if t.Op == plan.Join {
		sec += 0.4 * t.OutBytes / p.DiskBW
	}
	return sec / nf
}

// Duration returns the noisy observed duration in seconds for a task.
// Consecutive calls consume the model's deterministic noise stream.
func (m *CostModel) Duration(t TaskSpec) float64 {
	return m.Expected(t) * m.rng.LogNormal(0, m.p.NoiseSigma)
}

// NodeFactors draws per-node speed multipliers for an n-node cluster,
// clamped to [0.8, 1.2] so no node is pathological.
func (m *CostModel) NodeFactors(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		v := m.rng.Normal(1, m.p.NodeSigma)
		if v < 0.8 {
			v = 0.8
		}
		if v > 1.2 {
			v = 1.2
		}
		f[i] = v
	}
	return f
}
