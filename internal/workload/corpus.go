package workload

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"saqp/internal/catalog"
	"saqp/internal/cluster"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/query"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/trace"
)

// CorpusConfig controls training-corpus construction.
type CorpusConfig struct {
	// NumQueries to generate (paper: ~1,000 → ~5,600 jobs).
	NumQueries int
	// MinGB and MaxGB bound each query's total input size (paper: 1–100).
	MinGB, MaxGB float64
	// Seed drives query generation and the hidden cost model noise.
	Seed uint64
	// Cluster sizes the testbed used to collect ground-truth times.
	Cluster cluster.Config
	// EstimatorBuckets is the histogram resolution available to the
	// predictor (offline statistics).
	EstimatorBuckets int
	// OracleBuckets is the fine-grained resolution used to derive the
	// ground truth data volumes that the hidden cost model charges for.
	OracleBuckets int
	// Sizing overrides the MapReduce task sizing rules for both statistic
	// resolutions (block size, bytes/reducer, skew modelling).
	Sizing selectivity.Config
}

// DefaultCorpusConfig mirrors the paper's training setup.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		NumQueries:       1000,
		MinGB:            1,
		MaxGB:            100,
		Seed:             2018,
		Cluster:          cluster.DefaultConfig(),
		EstimatorBuckets: 64,
		OracleBuckets:    1024,
	}
}

// QueryRun is one corpus query with everything the experiments need: the
// plan, the predictor-visible estimate, the oracle (ground truth) estimate,
// and the observed job times from a standalone run on the simulated
// cluster.
type QueryRun struct {
	Query *query.Query
	Shape Shape
	SF    float64
	DAG   *plan.DAG
	// Est is the estimate from predictor-resolution statistics.
	Est *selectivity.QueryEstimate
	// Oracle is the estimate from fine statistics — the stand-in for the
	// true data volumes the cluster observed.
	Oracle *selectivity.QueryEstimate
	// Sim is the executed cluster query (tasks carry observed durations).
	Sim *cluster.Query
	// Seconds is the observed standalone execution time.
	Seconds float64
}

// Corpus is a generated training/evaluation set.
type Corpus struct {
	Runs []*QueryRun
	// JobSamples pair observed job times with ground-truth features
	// (training uses observed sizes, as Hadoop logs would provide).
	JobSamples []predict.JobSample
	// TaskSamples pair observed task times with ground-truth features.
	TaskSamples []predict.TaskSample
}

// SFForTargetBytes converts a target total-input size in bytes to the
// scale factor at which the query's scanned tables reach it.
func SFForTargetBytes(q *query.Query, targetBytes float64) float64 {
	base := InputBytesAtSF1(q, dataset.AllSchemas())
	if base <= 0 {
		return 1
	}
	sf := targetBytes / base
	if sf < 0.01 {
		sf = 0.01
	}
	return sf
}

// CatalogCache builds analytic catalogs per scale factor lazily. Scale
// factors are continuous, so entries are keyed on rounded sf.
type CatalogCache struct {
	buckets int
	schemas []*dataset.Schema
	cache   map[int64]*catalog.Catalog
}

// NewCatalogCache returns a cache producing catalogs with the given
// histogram resolution.
func NewCatalogCache(buckets int) *CatalogCache {
	// Iterate the schema map in sorted-name order so every cache (and
	// therefore every catalog, estimate, and schedule derived from it)
	// sees the same table order regardless of map iteration.
	all := dataset.AllSchemas()
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	list := make([]*dataset.Schema, 0, len(names))
	for _, name := range names {
		list = append(list, all[name])
	}
	return &CatalogCache{buckets: buckets, schemas: list, cache: map[int64]*catalog.Catalog{}}
}

// Get returns a catalog for sf, quantised to 1e-3 granularity.
func (cc *CatalogCache) Get(sf float64) *catalog.Catalog {
	key := int64(sf * 1000)
	if c, ok := cc.cache[key]; ok {
		return c
	}
	c := catalog.FromSchemas(cc.schemas, float64(key)/1000, cc.buckets)
	cc.cache[key] = c
	return c
}

// BuildCorpus generates queries, estimates them at both statistic
// resolutions, executes each standalone on the simulated cluster, and
// collects job- and task-level training samples. Runs execute in parallel
// across CPUs; each query gets an independently seeded cost model, so
// results are deterministic regardless of scheduling.
func BuildCorpus(cfg CorpusConfig) (*Corpus, error) {
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("workload: NumQueries must be positive")
	}
	gen := NewGenerator(cfg.Seed)
	rng := gen.rng.Fork()

	// Phase 1 (sequential, deterministic): draw queries, scales and
	// per-run cost-model seeds.
	type drawn struct {
		q      *query.Query
		shape  Shape
		sf     float64
		cmSeed uint64
	}
	draws := make([]drawn, cfg.NumQueries)
	for i := range draws {
		q, shape, err := gen.RandomQuery()
		if err != nil {
			return nil, err
		}
		targetGB := rng.Range(cfg.MinGB, cfg.MaxGB)
		draws[i] = drawn{q: q, shape: shape, sf: SFForTargetBytes(q, targetGB*1e9), cmSeed: rng.Uint64()}
	}

	// Pre-warm the catalog caches sequentially: the caches are not
	// goroutine-safe, and the quantised scale factors repeat heavily.
	estCache := NewCatalogCache(cfg.EstimatorBuckets)
	oraCache := NewCatalogCache(cfg.OracleBuckets)
	for _, d := range draws {
		estCache.Get(d.sf)
		oraCache.Get(d.sf)
	}

	// Phase 2 (parallel): compile, estimate and simulate each run.
	runs := make([]*QueryRun, len(draws))
	errs := make([]error, len(draws))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, d := range draws {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d drawn) {
			defer wg.Done()
			defer func() { <-sem }()
			cm := trace.NewDefaultCostModel(d.cmSeed)
			runs[i], errs[i] = RunStandaloneSized(d.q, d.shape, d.sf, estCache, oraCache, cm, cfg.Cluster, cfg.Sizing)
		}(i, d)
	}
	wg.Wait()
	corpus := &Corpus{}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i, err)
		}
		corpus.Runs = append(corpus.Runs, runs[i])
		corpus.collectSamples(runs[i])
	}
	return corpus, nil
}

// RunStandalone compiles, estimates (at both statistics resolutions) and
// executes a single query alone on a simulated cluster, returning the full
// run record. It is the building block of corpus construction and of the
// per-query experiments (Fig. 7, Fig. 2).
func RunStandalone(q *query.Query, shape Shape, sf float64, estCache, oraCache *CatalogCache,
	cm *trace.CostModel, clusterCfg cluster.Config) (*QueryRun, error) {
	return RunStandaloneSized(q, shape, sf, estCache, oraCache, cm, clusterCfg, selectivity.Config{})
}

// RunStandaloneSized is RunStandalone with explicit task-sizing rules.
func RunStandaloneSized(q *query.Query, shape Shape, sf float64, estCache, oraCache *CatalogCache,
	cm *trace.CostModel, clusterCfg cluster.Config, sizing selectivity.Config) (*QueryRun, error) {
	d, err := plan.Compile(q)
	if err != nil {
		return nil, err
	}
	est, err := selectivity.NewEstimator(estCache.Get(sf), sizing).EstimateQuery(d)
	if err != nil {
		return nil, err
	}
	oracle, err := selectivity.NewEstimator(oraCache.Get(sf), sizing).EstimateQuery(d)
	if err != nil {
		return nil, err
	}
	cq := cluster.BuildQuery("q", oracle, cm, cluster.ConstantPredictor(1))
	s := cluster.New(clusterCfg, sched.HCS{})
	s.Submit(cq, 0)
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	return &QueryRun{
		Query: q, Shape: shape, SF: sf, DAG: d,
		Est: est, Oracle: oracle, Sim: cq,
		Seconds: res.Makespan,
	}, nil
}

// collectSamples extracts job and task training samples from a run. Job
// features use the oracle's (observed) data sizes, matching how the paper
// trains from execution logs; prediction-time features come from Est.
func (c *Corpus) collectSamples(run *QueryRun) {
	for ji, je := range run.Oracle.Jobs {
		sj := run.Sim.Jobs[ji]
		jobSecs := sj.DoneTime - sj.SubmitTime
		c.JobSamples = append(c.JobSamples, predict.JobSample{
			Op:       je.Job.Type,
			Features: predict.JobFeatures(je),
			Seconds:  jobSecs,
		})
		// A group's tasks share features (volumes split evenly), so sampling
		// a bounded number per group keeps the corpus compact without
		// changing the fitted coefficients' expectation.
		const perPhase = 16
		pf := je.PFactor()
		taskIdx := 0
		for _, g := range je.MapGroups {
			for i := 0; i < minInt(g.Count, perPhase); i++ {
				t := sj.Maps[taskIdx+i]
				c.TaskSamples = append(c.TaskSamples, predict.TaskSample{
					Op:       je.Job.Type,
					Features: predict.TaskFeatures(je.Job.Type, g.InBytes, g.OutBytes, pf),
					Seconds:  t.ActualSec,
				})
			}
			taskIdx += g.Count
		}
		taskIdx = 0
		for _, g := range je.ReduceGroups {
			for i := 0; i < minInt(g.Count, perPhase); i++ {
				t := sj.Reds[taskIdx+i]
				c.TaskSamples = append(c.TaskSamples, predict.TaskSample{
					Op:       je.Job.Type,
					Reduce:   true,
					Features: predict.TaskFeatures(je.Job.Type, g.InBytes, g.OutBytes, pf),
					Seconds:  t.ActualSec,
				})
			}
			taskIdx += g.Count
		}
	}
}

// Split partitions the corpus runs into training and test sets with the
// given training fraction (paper: 3/4 train, 1/4 test).
func (c *Corpus) Split(trainFrac float64) (train, test *Corpus) {
	n := int(float64(len(c.Runs)) * trainFrac)
	train, test = &Corpus{}, &Corpus{}
	for i, run := range c.Runs {
		dst := train
		if i >= n {
			dst = test
		}
		dst.Runs = append(dst.Runs, run)
		dst.collectSamples(run)
	}
	return train, test
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NumJobs returns the total number of jobs across runs (the paper's
// "5,647 MapReduce jobs" statistic).
func (c *Corpus) NumJobs() int {
	n := 0
	for _, r := range c.Runs {
		n += len(r.DAG.Jobs)
	}
	return n
}
