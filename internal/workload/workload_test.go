package workload

import (
	"math"
	"testing"

	"saqp/internal/cluster"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
)

func TestGeneratorProducesValidQueries(t *testing.T) {
	g := NewGenerator(1)
	shapes := map[Shape]int{}
	for i := 0; i < 300; i++ {
		q, shape, err := g.RandomQuery()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		shapes[shape]++
		// Every generated query must compile.
		if _, err := plan.Compile(q); err != nil {
			t.Fatalf("query %d does not compile: %v\n%s", i, err, q)
		}
		// And reparse from its own rendering.
		if _, err := query.Parse(q.String()); err != nil {
			t.Fatalf("query %d does not reparse: %v\n%s", i, err, q)
		}
	}
	// All shapes appear over 300 draws.
	for s := Shape(0); s < numShapes; s++ {
		if shapes[s] == 0 {
			t.Fatalf("shape %s never generated", s)
		}
	}
}

func TestShapeJobCounts(t *testing.T) {
	g := NewGenerator(2)
	wantJobs := map[Shape]int{
		ShapeScan:     1,
		ShapeScanSort: 1,
		ShapeAgg:      1,
		ShapeAggSort:  2,
		ShapeJoinAgg:  2,
		ShapeJoin2Agg: 3,
		ShapeJoin3Agg: 4,
	}
	for shape, want := range wantJobs {
		for i := 0; i < 10; i++ {
			q, err := g.QueryOfShape(shape)
			if err != nil {
				t.Fatal(err)
			}
			d, err := plan.Compile(q)
			if err != nil {
				t.Fatal(err)
			}
			expect := want
			// A MAPJOIN hint on the first join merges it into its consumer
			// (Hive job merging), shrinking the chain by one job.
			if len(q.MapJoinTables) > 0 && want > 1 {
				expect--
			}
			if len(d.Jobs) != expect {
				t.Fatalf("shape %s produced %d jobs, want %d\n%s", shape, len(d.Jobs), expect, q)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 50; i++ {
		qa, _, err := a.RandomQuery()
		if err != nil {
			t.Fatal(err)
		}
		qb, _, err := b.RandomQuery()
		if err != nil {
			t.Fatal(err)
		}
		if qa.String() != qb.String() {
			t.Fatalf("generation diverged at %d:\n%s\n%s", i, qa, qb)
		}
	}
}

func TestInputBytesAtSF1(t *testing.T) {
	q, err := query.Parse(`SELECT n_name FROM nation JOIN supplier ON s_nationkey = n_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	schemas := dataset.AllSchemas()
	if err := query.Resolve(q, schemas); err != nil {
		t.Fatal(err)
	}
	want := float64(dataset.Nation().BytesAt(1) + dataset.Supplier().BytesAt(1))
	if got := InputBytesAtSF1(q, schemas); got != want {
		t.Fatalf("input bytes = %v, want %v", got, want)
	}
}

func TestSFForTargetBytes(t *testing.T) {
	g := NewGenerator(3)
	schemas := dataset.AllSchemas()
	for i := 0; i < 50; i++ {
		q, _, err := g.RandomQuery()
		if err != nil {
			t.Fatal(err)
		}
		target := 20e9 // 20 GB
		sf := SFForTargetBytes(q, target)
		got := InputBytesAtSF1(q, schemas) * sf
		// Fixed-size tables (nation/region/date_dim) break exact linearity,
		// so allow slack.
		if math.Abs(got-target)/target > 0.5 {
			t.Fatalf("sf %v gives %v bytes, want ~%v\n%s", sf, got, target, q)
		}
	}
}

func TestTable2Compositions(t *testing.T) {
	bing, fb := BingComposition(), FacebookComposition()
	sum := func(c []BinSpec) int {
		n := 0
		for _, b := range c {
			n += b.Count
		}
		return n
	}
	if sum(bing) != 100 || sum(fb) != 100 {
		t.Fatalf("compositions must total 100 queries: bing %d fb %d", sum(bing), sum(fb))
	}
	// Table 2 exact counts.
	if bing[0].Count != 44 || bing[3].Count != 22 {
		t.Fatal("Bing composition drifted from Table 2")
	}
	if fb[0].Count != 85 || fb[4].Count != 1 {
		t.Fatal("Facebook composition drifted from Table 2")
	}
}

func TestBuildWorkload(t *testing.T) {
	w, err := BuildWorkload("bing", BingComposition(), 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalQueries() != 100 {
		t.Fatalf("items = %d", w.TotalQueries())
	}
	// Arrivals must be non-decreasing and start at 0.
	if w.Items[0].ArrivalSec != 0 {
		t.Fatalf("first arrival = %v", w.Items[0].ArrivalSec)
	}
	binCounts := map[int]int{}
	for i := 1; i < len(w.Items); i++ {
		if w.Items[i].ArrivalSec < w.Items[i-1].ArrivalSec {
			t.Fatal("arrivals not sorted")
		}
	}
	for _, it := range w.Items {
		binCounts[it.Bin]++
	}
	if binCounts[1] != 44 || binCounts[5] != 2 {
		t.Fatalf("bin counts wrong: %v", binCounts)
	}
	// Mean inter-arrival near 30s.
	span := w.Items[len(w.Items)-1].ArrivalSec
	if span < 30*99*0.6 || span > 30*99*1.5 {
		t.Fatalf("arrival span %v implausible for mean gap 30", span)
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	if _, err := BuildWorkload("x", BingComposition(), 0, 1); err == nil {
		t.Fatal("zero gap should error")
	}
}

func TestBuildCorpusSmall(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.NumQueries = 40
	cfg.MaxGB = 20
	c, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Runs) != 40 {
		t.Fatalf("runs = %d", len(c.Runs))
	}
	if c.NumJobs() < 40 {
		t.Fatalf("jobs = %d, want >= 40", c.NumJobs())
	}
	if len(c.JobSamples) != c.NumJobs() {
		t.Fatalf("job samples %d != jobs %d", len(c.JobSamples), c.NumJobs())
	}
	if len(c.TaskSamples) == 0 {
		t.Fatal("no task samples")
	}
	for _, r := range c.Runs {
		if r.Seconds <= 0 {
			t.Fatalf("run with non-positive time: %v", r.Seconds)
		}
		if r.Est == nil || r.Oracle == nil {
			t.Fatal("missing estimates")
		}
	}
	// Samples carry positive features and targets.
	for _, s := range c.JobSamples {
		if s.Seconds <= 0 || s.Features[0] <= 0 {
			t.Fatalf("bad job sample: %+v", s)
		}
	}
	train, test := c.Split(0.75)
	if len(train.Runs) != 30 || len(test.Runs) != 10 {
		t.Fatalf("split = %d/%d", len(train.Runs), len(test.Runs))
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.NumQueries = 10
	a, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].Seconds != b.Runs[i].Seconds {
			t.Fatalf("corpus not deterministic at run %d: %v vs %v",
				i, a.Runs[i].Seconds, b.Runs[i].Seconds)
		}
	}
}

func TestWorkloadToClusterPipeline(t *testing.T) {
	// A tiny end-to-end smoke test: build a 10-query workload, submit all
	// under HCS, everything completes.
	comp := []BinSpec{{Bin: 1, MinGB: 1, MaxGB: 5, Count: 10}}
	w, err := BuildWorkload("tiny", comp, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	_ = cluster.DefaultConfig()
	if w.TotalQueries() != 10 {
		t.Fatal("bad workload")
	}
}
