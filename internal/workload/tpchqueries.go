package workload

import (
	"fmt"
	"sort"

	"saqp/internal/dataset"
	"saqp/internal/query"
)

// Canonical TPC-H-derived queries, adapted to this reproduction's HiveQL
// subset and synthetic schemas. The paper's evaluation leans on three of
// them directly: Q14 (the "QA"/"QC" two-job shape of Figures 1–2), Q17
// (the four-job "QB" shape) and the modified Q11 of Section 3.2. The rest
// cover the remaining plan shapes at canonical parameter values.
//
// Adaptations from the official TPC-H text, forced by the dialect:
//   - date literals are days-since-1970 integers (the generators' domain);
//   - CASE/LIKE/subqueries are dropped; aggregate filters move to WHERE
//     or HAVING; Q14's promo-share numerator becomes a plain revenue sum;
//   - Q17's correlated avg-quantity subquery becomes a fixed quantity cut,
//     keeping the part ⋈ lineitem ⋈ orders ⋈ customer four-job pipeline.
var tpchQueries = map[string]string{
	// Q1: pricing summary report (single Groupby job).
	"q1": `SELECT l_returnflag, l_linestatus, sum(l_extendedprice), avg(l_discount), count(*)
	       FROM lineitem WHERE l_shipdate <= 10470 GROUP BY l_returnflag, l_linestatus`,

	// Q3: shipping priority (customer ⋈ orders ⋈ lineitem, top-k revenue).
	"q3": `SELECT l_orderkey, sum(l_extendedprice)
	       FROM customer JOIN orders ON c_custkey = o_custkey
	       JOIN lineitem ON o_orderkey = l_orderkey
	       WHERE c_mktsegment = 'c_mktseg#2' AND o_orderdate < 9214
	       GROUP BY l_orderkey ORDER BY sum(l_extendedprice) DESC LIMIT 10`,

	// Q6: forecasting revenue change (map-only style scan aggregation).
	"q6": `SELECT sum(l_extendedprice), count(*)
	       FROM lineitem
	       WHERE l_shipdate >= 8767 AND l_shipdate < 9132
	         AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`,

	// Q11: important stock identification — the paper's Section 3.2
	// walk-through (two joins + groupby with HAVING-style cut).
	"q11": `SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
	        FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_name <> 'n_name#b~~~~'
	        JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
	        GROUP BY ps_partkey`,

	// Q14: promotion effect — the Figures 1–2 "QA"/"QC" query: one month
	// of lineitem map-joined with part, aggregated, sorted. The MAPJOIN
	// hint (plus Hive job merging) yields exactly the paper's two jobs:
	// AGG and Sort.
	"q14": `SELECT /*+ MAPJOIN(part) */ p_type, sum(l_extendedprice)
	        FROM part JOIN lineitem ON l_partkey = p_partkey
	        WHERE l_shipdate >= 8962 AND l_shipdate < 8993
	        GROUP BY p_type ORDER BY p_type`,

	// Q17: small-quantity-order revenue — the Figures 1–2 "QB" query
	// shape: a four-job chain over part ⋈ lineitem ⋈ orders ⋈ customer.
	"q17": `SELECT sum(l_extendedprice)
	        FROM part JOIN lineitem ON l_partkey = p_partkey
	        JOIN orders ON o_orderkey = l_orderkey
	        JOIN customer ON c_custkey = o_custkey
	        WHERE p_container = 'p_contai#3' AND l_quantity < 12
	        GROUP BY p_brand`,

	// Q19-ish: discounted revenue with an IN filter over part containers.
	"q19": `SELECT sum(l_extendedprice)
	        FROM part JOIN lineitem ON l_partkey = p_partkey
	        WHERE p_size IN (1, 5, 10, 15) AND l_quantity BETWEEN 10 AND 20
	        GROUP BY p_brand`,
}

// TPCHNames lists the available canonical query names, sorted.
func TPCHNames() []string {
	names := make([]string, 0, len(tpchQueries))
	for n := range tpchQueries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TPCHSQL returns the named canonical query's HiveQL text, for callers
// (like the serving layer) that take SQL rather than a parsed query.
func TPCHSQL(name string) (string, error) {
	src, ok := tpchQueries[name]
	if !ok {
		return "", fmt.Errorf("workload: unknown TPC-H query %q (have %v)", name, TPCHNames())
	}
	return src, nil
}

// TPCHQuery parses and resolves the named canonical query ("q1", "q3",
// "q6", "q11", "q14", "q17", "q19").
func TPCHQuery(name string) (*query.Query, error) {
	src, ok := tpchQueries[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown TPC-H query %q (have %v)", name, TPCHNames())
	}
	q, err := query.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	return q, nil
}
