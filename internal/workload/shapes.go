package workload

import (
	"fmt"
	"math"

	"saqp/internal/dataset"
	"saqp/internal/query"
	"saqp/internal/sim"
)

// Shape enumerates the query plan shapes the generator produces. The mix
// covers every DAG structure the paper discusses: chained two-job queries
// (Q14-like), three-job join trees (the Section 3.2 example) and four-job
// chains (Q17-like).
type Shape uint8

const (
	// ShapeScan is a map-only filter/project (1 job).
	ShapeScan Shape = iota
	// ShapeScanSort filters then sorts, with optional LIMIT (1 job).
	ShapeScanSort
	// ShapeAgg groups one table (1 job).
	ShapeAgg
	// ShapeAggSort groups then sorts — the paper's QA/QC two-job chain.
	ShapeAggSort
	// ShapeJoinAgg joins two tables then groups (2 jobs).
	ShapeJoinAgg
	// ShapeJoin2Agg joins three tables then groups — the paper's modified
	// Q11 (3 jobs).
	ShapeJoin2Agg
	// ShapeJoin3Agg joins four tables then groups — the paper's QB
	// four-job shape.
	ShapeJoin3Agg
	numShapes
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeScan:
		return "scan"
	case ShapeScanSort:
		return "scan-sort"
	case ShapeAgg:
		return "agg"
	case ShapeAggSort:
		return "agg-sort"
	case ShapeJoinAgg:
		return "join-agg"
	case ShapeJoin2Agg:
		return "join2-agg"
	case ShapeJoin3Agg:
		return "join3-agg"
	}
	return fmt.Sprintf("shape(%d)", uint8(s))
}

// joinStep describes one JOIN clause: the new table and the equi-join
// condition columns (left side already in scope).
type joinStep struct {
	table     string
	leftTable string
	leftCol   string
	rightCol  string
}

// chain is a FROM table plus join steps, in compiler-compatible order.
type chain struct {
	from  string
	steps []joinStep
}

// chains enumerates the PK–FK join paths of the two schema families.
func chains() []chain {
	return []chain{
		{from: "lineitem"},
		{from: "orders"},
		{from: "partsupp"},
		{from: "store_sales"},
		{from: "web_sales"},
		{from: "customer"},
		{from: "part"},
		{from: "supplier"},
		{from: "orders", steps: []joinStep{
			{table: "lineitem", leftTable: "orders", leftCol: "o_orderkey", rightCol: "l_orderkey"}}},
		{from: "customer", steps: []joinStep{
			{table: "orders", leftTable: "customer", leftCol: "c_custkey", rightCol: "o_custkey"}}},
		{from: "part", steps: []joinStep{
			{table: "lineitem", leftTable: "part", leftCol: "p_partkey", rightCol: "l_partkey"}}},
		{from: "supplier", steps: []joinStep{
			{table: "lineitem", leftTable: "supplier", leftCol: "s_suppkey", rightCol: "l_suppkey"}}},
		{from: "nation", steps: []joinStep{
			{table: "supplier", leftTable: "nation", leftCol: "n_nationkey", rightCol: "s_nationkey"}}},
		{from: "part", steps: []joinStep{
			{table: "partsupp", leftTable: "part", leftCol: "p_partkey", rightCol: "ps_partkey"}}},
		{from: "item", steps: []joinStep{
			{table: "store_sales", leftTable: "item", leftCol: "i_item_sk", rightCol: "ss_item_sk"}}},
		{from: "store", steps: []joinStep{
			{table: "store_sales", leftTable: "store", leftCol: "st_store_sk", rightCol: "ss_store_sk"}}},
		{from: "item", steps: []joinStep{
			{table: "web_sales", leftTable: "item", leftCol: "i_item_sk", rightCol: "ws_item_sk"}}},
		{from: "nation", steps: []joinStep{
			{table: "supplier", leftTable: "nation", leftCol: "n_nationkey", rightCol: "s_nationkey"},
			{table: "partsupp", leftTable: "supplier", leftCol: "s_suppkey", rightCol: "ps_suppkey"}}},
		{from: "customer", steps: []joinStep{
			{table: "orders", leftTable: "customer", leftCol: "c_custkey", rightCol: "o_custkey"},
			{table: "lineitem", leftTable: "orders", leftCol: "o_orderkey", rightCol: "l_orderkey"}}},
		{from: "region", steps: []joinStep{
			{table: "nation", leftTable: "region", leftCol: "r_regionkey", rightCol: "n_regionkey"},
			{table: "supplier", leftTable: "nation", leftCol: "n_nationkey", rightCol: "s_nationkey"}}},
		{from: "store", steps: []joinStep{
			{table: "store_sales", leftTable: "store", leftCol: "st_store_sk", rightCol: "ss_store_sk"},
			{table: "item", leftTable: "store_sales", leftCol: "ss_item_sk", rightCol: "i_item_sk"}}},
		{from: "part", steps: []joinStep{
			{table: "lineitem", leftTable: "part", leftCol: "p_partkey", rightCol: "l_partkey"},
			{table: "orders", leftTable: "lineitem", leftCol: "l_orderkey", rightCol: "o_orderkey"},
			{table: "customer", leftTable: "orders", leftCol: "o_custkey", rightCol: "c_custkey"}}},
		{from: "nation", steps: []joinStep{
			{table: "customer", leftTable: "nation", leftCol: "n_nationkey", rightCol: "c_nationkey"},
			{table: "orders", leftTable: "customer", leftCol: "c_custkey", rightCol: "o_custkey"},
			{table: "lineitem", leftTable: "orders", leftCol: "o_orderkey", rightCol: "l_orderkey"}}},
	}
}

// aggregable lists numeric columns suitable as aggregate inputs per table.
var aggregable = map[string][]string{
	"lineitem":    {"l_extendedprice", "l_quantity", "l_discount"},
	"orders":      {"o_totalprice"},
	"customer":    {"c_acctbal"},
	"supplier":    {"s_acctbal"},
	"part":        {"p_retailprice", "p_size"},
	"partsupp":    {"ps_supplycost", "ps_availqty"},
	"store_sales": {"ss_sales_price", "ss_quantity", "ss_net_profit"},
	"web_sales":   {"ws_sales_price", "ws_quantity"},
	"item":        {"i_current_price"},
	"nation":      {"n_regionkey"},
	"region":      {"r_regionkey"},
	"store":       {"st_market_id"},
	"date_dim":    {"d_year"},
}

// groupable lists moderate-cardinality grouping columns per table.
var groupable = map[string][]string{
	"lineitem":    {"l_quantity", "l_shipmode", "l_returnflag", "l_orderkey", "l_partkey"},
	"orders":      {"o_orderpriority", "o_orderdate", "o_custkey"},
	"customer":    {"c_mktsegment", "c_nationkey"},
	"supplier":    {"s_nationkey"},
	"part":        {"p_brand", "p_size", "p_container"},
	"partsupp":    {"ps_partkey", "ps_suppkey"},
	"store_sales": {"ss_store_sk", "ss_quantity", "ss_item_sk"},
	"web_sales":   {"ws_quantity", "ws_item_sk"},
	"item":        {"i_brand", "i_category"},
	"nation":      {"n_name"},
	"region":      {"r_name"},
	"store":       {"st_state"},
	"date_dim":    {"d_year", "d_moy"},
}

// filterable lists numeric columns suitable for range predicates.
var filterable = map[string][]string{
	"lineitem":    {"l_quantity", "l_shipdate", "l_extendedprice", "l_discount"},
	"orders":      {"o_orderdate", "o_totalprice"},
	"customer":    {"c_acctbal", "c_nationkey"},
	"supplier":    {"s_acctbal", "s_nationkey"},
	"part":        {"p_size", "p_retailprice"},
	"partsupp":    {"ps_availqty", "ps_supplycost"},
	"store_sales": {"ss_quantity", "ss_sales_price", "ss_sold_date_sk"},
	"web_sales":   {"ws_quantity", "ws_sales_price"},
	"item":        {"i_current_price"},
	"nation":      {"n_nationkey"},
	"region":      {"r_regionkey"},
	"store":       {"st_market_id"},
	"date_dim":    {"d_year"},
}

// smallDims lists dimension tables small enough for broadcast joins at any
// experiment scale; the generator occasionally MAPJOIN-hints them.
var smallDims = map[string]bool{
	"nation": true, "region": true, "store": true, "date_dim": true,
}

// Generator produces random resolved queries over the synthetic schemas.
type Generator struct {
	rng     *sim.RNG
	schemas map[string]*dataset.Schema
	chains  []chain
}

// NewGenerator returns a deterministic query generator.
func NewGenerator(seed uint64) *Generator {
	return &Generator{
		rng:     sim.New(seed),
		schemas: dataset.AllSchemas(),
		chains:  chains(),
	}
}

// RandomShape draws a shape with weights biased toward the multi-job
// queries the paper's corpus is dominated by.
func (g *Generator) RandomShape() Shape {
	r := g.rng.Float64()
	switch {
	case r < 0.08:
		return ShapeScan
	case r < 0.18:
		return ShapeScanSort
	case r < 0.33:
		return ShapeAgg
	case r < 0.50:
		return ShapeAggSort
	case r < 0.72:
		return ShapeJoinAgg
	case r < 0.90:
		return ShapeJoin2Agg
	default:
		return ShapeJoin3Agg
	}
}

// RandomQuery generates one resolved query of a random shape.
func (g *Generator) RandomQuery() (*query.Query, Shape, error) {
	shape := g.RandomShape()
	q, err := g.QueryOfShape(shape)
	return q, shape, err
}

// QueryOfShape generates one resolved query with the requested shape.
func (g *Generator) QueryOfShape(shape Shape) (*query.Query, error) {
	joins := 0
	switch shape {
	case ShapeJoinAgg:
		joins = 1
	case ShapeJoin2Agg:
		joins = 2
	case ShapeJoin3Agg:
		joins = 3
	}
	ch := g.pickChain(joins)
	q := &query.Query{Limit: -1, From: query.TableRef{Name: ch.from}}
	tables := []string{ch.from}
	for _, st := range ch.steps[:joins] {
		right := query.ColumnRef{Table: st.table, Column: st.rightCol}
		q.Joins = append(q.Joins, query.Join{
			Table: query.TableRef{Name: st.table},
			On: []query.Predicate{{
				Left:  query.ColumnRef{Table: st.leftTable, Column: st.leftCol},
				Op:    query.OpEQ,
				Right: &right,
			}},
		})
		tables = append(tables, st.table)
	}
	// Predicates: each table gets one with probability 60%.
	for _, t := range tables {
		if g.rng.Bool(0.6) {
			q.Where = append(q.Where, g.randPredicates(t)...)
		}
	}
	// Broadcast-join hint: when the first joined pair includes a small
	// dimension table, sometimes compile it as a Hive map-side join.
	if joins >= 1 && smallDims[tables[0]] && g.rng.Bool(0.35) {
		q.MapJoinTables = []string{tables[0]}
	}
	// The biggest (typically last) table drives aggregation targets.
	fact := tables[len(tables)-1]
	hasAgg := shape == ShapeAgg || shape == ShapeAggSort ||
		shape == ShapeJoinAgg || shape == ShapeJoin2Agg || shape == ShapeJoin3Agg
	if hasAgg {
		gcols := groupable[fact]
		gcol := gcols[g.rng.Intn(len(gcols))]
		key := query.ColumnRef{Table: fact, Column: gcol}
		q.GroupBy = []query.ColumnRef{key}
		q.Select = append(q.Select, query.SelectItem{Expr: query.Expr{Col: key}})
		// Sometimes group on a second key — the paper's Eq. 2 explicitly
		// models composite keys via T.d_xy.
		if g.rng.Bool(0.25) && len(gcols) > 1 {
			second := gcols[g.rng.Intn(len(gcols))]
			if second != gcol {
				key2 := query.ColumnRef{Table: fact, Column: second}
				q.GroupBy = append(q.GroupBy, key2)
				q.Select = append(q.Select, query.SelectItem{Expr: query.Expr{Col: key2}})
			}
		}
		acols := aggregable[fact]
		acol := acols[g.rng.Intn(len(acols))]
		fn := []query.AggFunc{query.AggSum, query.AggCount, query.AggAvg, query.AggMax}[g.rng.Intn(4)]
		q.Select = append(q.Select, query.SelectItem{
			Agg:  fn,
			Expr: query.Expr{Col: query.ColumnRef{Table: fact, Column: acol}},
		})
		// Occasional HAVING over a count — post-aggregation filtering.
		if g.rng.Bool(0.15) {
			q.Having = []query.HavingPred{{
				Agg: query.AggCount, Star: true, Op: query.OpGT,
				Lit: query.NumLit(float64(1 + g.rng.Intn(5))),
			}}
		}
		if shape == ShapeAggSort {
			if g.rng.Bool(0.35) {
				// Top-k by aggregate value, the TPC-H Q3 idiom.
				last := q.Select[len(q.Select)-1]
				q.OrderBy = []query.OrderItem{{Agg: last.Agg, Expr: last.Expr, Star: last.Star, Desc: true}}
			} else {
				q.OrderBy = []query.OrderItem{{Col: key, Desc: g.rng.Bool(0.5)}}
			}
			if g.rng.Bool(0.3) {
				q.Limit = int64(10 * (1 + g.rng.Intn(20)))
			}
		}
	} else {
		// Projection of 1-3 columns.
		cols := g.schemas[fact].Columns
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			c := cols[g.rng.Intn(len(cols))]
			q.Select = append(q.Select, query.SelectItem{
				Expr: query.Expr{Col: query.ColumnRef{Table: fact, Column: c.Name}},
			})
		}
		if shape == ShapeScanSort {
			fcols := filterable[fact]
			q.OrderBy = []query.OrderItem{{
				Col:  query.ColumnRef{Table: fact, Column: fcols[g.rng.Intn(len(fcols))]},
				Desc: g.rng.Bool(0.5),
			}}
			if g.rng.Bool(0.4) {
				q.Limit = int64(10 * (1 + g.rng.Intn(100)))
			}
		}
	}
	if err := query.Resolve(q, g.schemas); err != nil {
		return nil, fmt.Errorf("workload: generated query failed to resolve: %w", err)
	}
	return q, nil
}

// pickChain selects a chain with at least `joins` steps.
func (g *Generator) pickChain(joins int) chain {
	var candidates []chain
	for _, c := range g.chains {
		if len(c.steps) >= joins {
			candidates = append(candidates, c)
		}
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// randPredicates builds predicates on a random filterable column: a single
// range comparison most of the time, occasionally a BETWEEN pair or an IN
// list, with target selectivity drawn from [0.05, 0.95].
func (g *Generator) randPredicates(table string) []query.Predicate {
	cols := filterable[table]
	if len(cols) == 0 {
		return nil
	}
	name := cols[g.rng.Intn(len(cols))]
	col := g.schemas[table].Column(name)
	if col == nil {
		return nil
	}
	sel := g.rng.Range(0.05, 0.95)
	card := col.Card(1) // domain cardinalities are sf-independent for filterables
	lo := float64(col.Lo)
	width := float64(card)
	if col.Kind == dataset.KindFloat {
		width = float64(card) * 0.01
	}
	ref := query.ColumnRef{Table: table, Column: name}
	round := func(v float64) float64 { return math.Round(v*100) / 100 }
	r := g.rng.Float64()
	switch {
	case r < 0.15 && card >= 8:
		// BETWEEN: a centred range covering ~sel of the domain.
		span := sel * width
		start := lo + g.rng.Range(0, width-span)
		return []query.Predicate{
			{Left: ref, Op: query.OpGE, Lit: query.NumLit(round(start))},
			{Left: ref, Op: query.OpLE, Lit: query.NumLit(round(start + span))},
		}
	case r < 0.30 && card >= 8 && card <= 10_000 && col.Kind == dataset.KindInt:
		// IN: 2-4 distinct domain members.
		n := 2 + g.rng.Intn(3)
		seen := map[int64]bool{}
		pr := query.Predicate{Left: ref, Op: query.OpIN}
		for len(pr.Set) < n {
			k := g.rng.Int63n(card)
			if seen[k] {
				continue
			}
			seen[k] = true
			pr.Set = append(pr.Set, query.NumLit(float64(col.Lo+k)))
		}
		return []query.Predicate{pr}
	case g.rng.Bool(0.5):
		cut := lo + sel*width
		return []query.Predicate{{Left: ref, Op: query.OpLT, Lit: query.NumLit(round(cut))}}
	default:
		cut := lo + (1-sel)*width
		return []query.Predicate{{Left: ref, Op: query.OpGE, Lit: query.NumLit(round(cut))}}
	}
}

// InputBytesAtSF1 returns the query's total base-table input at scale
// factor 1; used to translate workload-bin target sizes into scale factors.
func InputBytesAtSF1(q *query.Query, schemas map[string]*dataset.Schema) float64 {
	seen := map[string]bool{}
	var total float64
	for _, t := range q.Tables() {
		if seen[t.Name] {
			continue
		}
		seen[t.Name] = true
		total += float64(schemas[t.Name].BytesAt(1))
	}
	return total
}
