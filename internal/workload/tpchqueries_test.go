package workload

import (
	"testing"

	"saqp/internal/plan"
)

func TestTPCHQueriesCompile(t *testing.T) {
	wantJobs := map[string]int{
		"q1":  1, // single groupby
		"q3":  4, // 2 joins + groupby + sort/limit
		"q6":  1, // scan aggregation
		"q11": 3, // the paper's walk-through
		"q14": 2, // mapjoin folds into the groupby: AGG + Sort (paper Fig. 1)
		"q17": 4, // the paper's QB shape
		"q19": 2, // join + groupby
	}
	for _, name := range TPCHNames() {
		q, err := TPCHQuery(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := plan.Compile(q)
		if err != nil {
			t.Fatalf("%s does not compile: %v", name, err)
		}
		if want := wantJobs[name]; len(d.Jobs) != want {
			t.Errorf("%s compiled to %d jobs, want %d\n%s", name, len(d.Jobs), want, d)
		}
	}
}

func TestTPCHQueryUnknown(t *testing.T) {
	if _, err := TPCHQuery("q99"); err == nil {
		t.Fatal("unknown query should error")
	}
}

func TestTPCHNamesStable(t *testing.T) {
	names := TPCHNames()
	if len(names) != 7 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}
