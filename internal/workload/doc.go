// Package workload generates the query corpora the paper's evaluation
// uses: a random pool of TPC-H/TPC-DS-shaped analytic queries for training
// and testing the prediction models (Section 5.1: ~1,000 queries compiled
// into ~5,600 jobs over 1–100 GB inputs), and the Bing/Facebook production
// mixes of Table 2 with Poisson arrivals for the scheduler experiments.
package workload
