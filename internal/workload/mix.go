package workload

import (
	"fmt"

	"saqp/internal/query"
	"saqp/internal/sim"
)

// BinSpec is one row of the paper's Table 2: queries whose total input size
// falls in [MinGB, MaxGB] gigabytes, and how many of them the mix contains.
type BinSpec struct {
	Bin          int
	MinGB, MaxGB float64
	Count        int
}

// BingComposition returns Table 2's Bing production mix (100 queries).
func BingComposition() []BinSpec {
	return []BinSpec{
		{Bin: 1, MinGB: 1, MaxGB: 10, Count: 44},
		{Bin: 2, MinGB: 20, MaxGB: 20, Count: 8},
		{Bin: 3, MinGB: 50, MaxGB: 50, Count: 24},
		{Bin: 4, MinGB: 100, MaxGB: 100, Count: 22},
		{Bin: 5, MinGB: 150, MaxGB: 400, Count: 2},
	}
}

// FacebookComposition returns Table 2's Facebook production mix
// (100 queries, dominated by small inputs).
func FacebookComposition() []BinSpec {
	return []BinSpec{
		{Bin: 1, MinGB: 1, MaxGB: 10, Count: 85},
		{Bin: 2, MinGB: 20, MaxGB: 20, Count: 4},
		{Bin: 3, MinGB: 50, MaxGB: 50, Count: 8},
		{Bin: 4, MinGB: 100, MaxGB: 100, Count: 2},
		{Bin: 5, MinGB: 150, MaxGB: 400, Count: 1},
	}
}

// WorkItem is one query of a workload with its scale and arrival offset.
type WorkItem struct {
	Query      *query.Query
	Shape      Shape
	SF         float64
	Bin        int
	ArrivalSec float64
}

// Workload is a set of queries with Poisson arrivals (paper Section 5.1:
// "queries are submitted into the system following a random Poisson
// distribution").
type Workload struct {
	Name  string
	Items []WorkItem
}

// BuildWorkload instantiates a composition: for each bin entry a random
// query is drawn and its scale factor chosen so the total input size lands
// in the bin; arrivals follow a Poisson process with the given mean
// inter-arrival gap. Items are returned in arrival order.
func BuildWorkload(name string, comp []BinSpec, meanGapSec float64, seed uint64) (*Workload, error) {
	if meanGapSec <= 0 {
		return nil, fmt.Errorf("workload: meanGapSec must be positive")
	}
	gen := NewGenerator(seed)
	arr := sim.New(seed ^ 0xabcdef)
	w := &Workload{Name: name}
	var t float64
	for _, bin := range comp {
		for i := 0; i < bin.Count; i++ {
			q, shape, err := gen.RandomQuery()
			if err != nil {
				return nil, err
			}
			gb := bin.MinGB
			if bin.MaxGB > bin.MinGB {
				gb = arr.Range(bin.MinGB, bin.MaxGB)
			}
			sf := SFForTargetBytes(q, gb*1e9)
			w.Items = append(w.Items, WorkItem{Query: q, Shape: shape, SF: sf, Bin: bin.Bin})
		}
	}
	// Shuffle bins together, then assign Poisson arrivals.
	arr.Shuffle(len(w.Items), func(i, j int) { w.Items[i], w.Items[j] = w.Items[j], w.Items[i] })
	for i := range w.Items {
		w.Items[i].ArrivalSec = t
		t += arr.Exponential(1 / meanGapSec)
	}
	return w, nil
}

// TotalQueries returns the number of items.
func (w *Workload) TotalQueries() int { return len(w.Items) }
