package proto

import (
	"bufio"
	"io"
	"testing"
)

var hotSinkInt int64

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for the wire codec: encoding reply frames and parsing integer
// headers run once per command on every connection, so neither may
// allocate in steady state.
func TestHotPathAllocs(t *testing.T) {
	e := NewEncoder(bufio.NewWriterSize(io.Discard, 1<<16))
	payload := []byte("SELECT COUNT(*) FROM lineitem")
	digits := []byte("922337203685477")
	reply := Array(Simple("OK"), Int(42), Bulk(payload))
	checks := []struct {
		name string
		fn   func()
	}{
		{"Simple", func() { e.Simple("OK") }},
		{"Error", func() { e.Error("BUSY", "queue deep") }},
		{"Int", func() { e.Int(123456789) }},
		{"Bulk", func() { e.Bulk(payload) }},
		{"BulkString", func() { e.BulkString("q-0001") }},
		{"BulkFloat", func() { e.BulkFloat(12.3456789, 3) }},
		{"Array", func() { e.Array(3) }},
		{"Value", func() { e.Value(reply) }},
		{"parseInt", func() { hotSinkInt, _ = parseInt(digits) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", c.name, n)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}
