package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// decode parses one frame from raw under lim and returns how many
// bytes were consumed alongside the value.
func decode(t *testing.T, raw string, lim Limits) (Value, int, error) {
	t.Helper()
	br := bufio.NewReaderSize(strings.NewReader(raw), lim.MaxLine+2)
	v, err := ReadValue(br, lim)
	rest, rerr := io.ReadAll(br)
	if rerr != nil {
		t.Fatalf("draining reader: %v", rerr)
	}
	return v, len(raw) - len(rest), err
}

func TestDecodeValid(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want Value
	}{
		{"simple", "+PONG\r\n", Simple("PONG")},
		{"simple empty", "+\r\n", Simple("")},
		{"error", "-BUSY queue deep\r\n", ErrorValue("BUSY", "queue deep")},
		{"int", ":42\r\n", Int(42)},
		{"int negative", ":-7\r\n", Int(-7)},
		{"int zero", ":0\r\n", Int(0)},
		{"bulk", "$5\r\nhello\r\n", BulkString("hello")},
		{"bulk empty", "$0\r\n\r\n", BulkString("")},
		{"bulk binary", "$4\r\na\x00b\r\r\n", Bulk([]byte{'a', 0, 'b', '\r'})},
		{"array empty", "*0\r\n", Array()},
		{"array flat", "*2\r\n$4\r\nPING\r\n:1\r\n", Array(BulkString("PING"), Int(1))},
		{"array nested", "*2\r\n*1\r\n+ok\r\n$1\r\nx\r\n",
			Array(Array(Simple("ok")), BulkString("x"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, n, err := decode(t, tc.raw, DefaultLimits())
			if err != nil {
				t.Fatalf("ReadValue(%q): %v", tc.raw, err)
			}
			if n != len(tc.raw) {
				t.Errorf("consumed %d bytes of %d — decoder must not under- or over-read", n, len(tc.raw))
			}
			if !v.Equal(tc.want) {
				t.Errorf("decoded %+v, want %+v", v, tc.want)
			}
			if got := AppendValue(nil, v); string(got) != tc.raw {
				t.Errorf("re-encode = %q, want the canonical input %q", got, tc.raw)
			}
		})
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"unknown marker", "?what\r\n"},
		{"bare LF line", "+PONG\n"},
		{"junk int", ":12a\r\n"},
		{"empty int", ":\r\n"},
		{"bare minus", ":-\r\n"},
		{"int overflow", ":92233720368547758070\r\n"},
		{"int leading zero", ":007\r\n"},
		{"int negative zero", ":-0\r\n"},
		{"negative bulk length", "$-1\r\n"},
		{"junk bulk length", "$five\r\n"},
		{"bulk payload missing CRLF", "$3\r\nabcXY"},
		{"negative array length", "*-1\r\n"},
		{"junk array length", "*x\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decode(t, tc.raw, DefaultLimits())
			var we *WireError
			if !errors.As(err, &we) {
				t.Fatalf("ReadValue(%q) = %v, want *WireError", tc.raw, err)
			}
		})
	}
}

func TestDecodeTruncated(t *testing.T) {
	// Every strict prefix of a valid multi-byte stream must fail with
	// ErrUnexpectedEOF (mid-frame) or io.EOF (empty input), never hang,
	// panic, or succeed.
	full := "*2\r\n$4\r\nPING\r\n:12\r\n"
	for cut := 0; cut < len(full); cut++ {
		_, _, err := decode(t, full[:cut], DefaultLimits())
		if cut == 0 {
			if !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("cut=0: got %v, want clean io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut=%d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestDecodeLimits(t *testing.T) {
	lim := Limits{MaxLine: 8, MaxBulk: 4, MaxArray: 2, MaxDepth: 2}
	cases := []struct {
		name string
		raw  string
	}{
		{"line over limit", "+" + strings.Repeat("a", 9) + "\r\n"},
		{"bulk over limit", "$5\r\nhello\r\n"},
		{"array over limit", "*3\r\n:1\r\n:2\r\n:3\r\n"},
		{"nesting over limit", "*1\r\n*1\r\n*1\r\n:1\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decode(t, tc.raw, lim)
			var we *WireError
			if !errors.As(err, &we) {
				t.Fatalf("ReadValue(%q) = %v, want *WireError", tc.raw, err)
			}
		})
	}
	// At-limit inputs must still decode.
	for _, ok := range []string{
		"+" + strings.Repeat("a", 8) + "\r\n",
		"$4\r\nhell\r\n",
		"*2\r\n:1\r\n:2\r\n",
		"*1\r\n*2\r\n:1\r\n:2\r\n",
	} {
		if _, _, err := decode(t, ok, lim); err != nil {
			t.Errorf("ReadValue(%q) at limit: %v", ok, err)
		}
	}
}

func TestEncoderStreamAndStickyError(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(bufio.NewWriter(&buf))
	e.Simple("OK")
	e.Error("BUSY", "queue deep")
	e.Int(-3)
	e.Bulk([]byte("hi"))
	e.BulkString("yo")
	e.BulkFloat(1.5, 3)
	e.Array(1)
	e.Int(9)
	e.Value(Array(Simple("a"), Int(1)))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-BUSY queue deep\r\n:-3\r\n$2\r\nhi\r\n$2\r\nyo\r\n$5\r\n1.500\r\n*1\r\n:9\r\n*2\r\n+a\r\n:1\r\n"
	if buf.String() != want {
		t.Errorf("stream = %q, want %q", buf.String(), want)
	}

	// Unknown kinds latch the sticky error and later calls stay no-ops.
	e2 := NewEncoder(bufio.NewWriter(&buf))
	e2.Value(Value{Kind: Kind('?')})
	if e2.Err() == nil {
		t.Fatal("encoding an unknown kind must latch an error")
	}
	before := e2.Err()
	e2.Simple("ignored")
	if e2.Err() != before {
		t.Error("sticky error was overwritten")
	}
}

func TestSanitize(t *testing.T) {
	if got := Sanitize("a\r\nb"); got != "a  b" {
		t.Errorf("Sanitize = %q", got)
	}
	long := strings.Repeat("x", 1000)
	if got := Sanitize(long); len(got) != 256 {
		t.Errorf("Sanitize did not clip: %d bytes", len(got))
	}
}

func TestParseIntBounds(t *testing.T) {
	if n, ok := parseInt([]byte("9223372036854775807")); !ok || n != 9223372036854775807 {
		t.Errorf("max int64: %d %v", n, ok)
	}
	if _, ok := parseInt([]byte("9223372036854775808")); ok {
		t.Error("max int64 + 1 must overflow")
	}
	if n, ok := parseInt([]byte("-42")); !ok || n != -42 {
		t.Errorf("-42: %d %v", n, ok)
	}
	for _, bad := range []string{"007", "-0", "00", "+1", ""} {
		if _, ok := parseInt([]byte(bad)); ok {
			t.Errorf("parseInt(%q) accepted a non-canonical form", bad)
		}
	}
}
