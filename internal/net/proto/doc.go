// Package proto is the wire codec of the network query frontend: a
// RESP-style frame format (simple strings, errors, integers,
// length-prefixed bulk strings, and arrays, all CRLF-terminated) with
// an allocation-conscious encoder and a strictly bounded decoder.
//
// The package is deliberately pure — no sockets, no clocks, no
// goroutines — so the codec is unit-testable and fuzzable in isolation
// from the connection loop in saqp/internal/net. Decoding enforces
// explicit limits (line length, bulk payload size, array length and
// nesting depth) and fails with a typed *WireError that the server
// maps to a `-ERR proto:` reply; a decoder error never panics and
// never reads past the end of the offending frame. Valid frames
// round-trip exactly: re-encoding a decoded Value reproduces the
// canonical bytes, a property the fuzz suite enforces.
//
// Encoding goes through an Encoder with a sticky error and fixed
// scratch buffers, so the per-command reply path performs no heap
// allocations (the //saqp:hotpath contract, guarded by
// TestHotPathAllocs).
package proto
