package proto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Kind identifies one wire frame type by its leading marker byte.
type Kind byte

// The five RESP-style frame kinds.
const (
	KindSimple Kind = '+' // one-line status string
	KindError  Kind = '-' // one-line error: CODE SP message
	KindInt    Kind = ':' // signed 64-bit integer
	KindBulk   Kind = '$' // length-prefixed byte string
	KindArray  Kind = '*' // length-prefixed sequence of frames
)

// Value is one decoded frame. Exactly one payload field is meaningful
// per Kind: Str for simple/error/bulk, Int for integers, Elems for
// arrays.
type Value struct {
	// Kind is the frame type marker.
	Kind Kind
	// Str holds the payload of simple, error and bulk frames.
	Str []byte
	// Int holds the payload of integer frames.
	Int int64
	// Elems holds the payload of array frames.
	Elems []Value
}

// Simple builds a one-line status frame.
func Simple(s string) Value { return Value{Kind: KindSimple, Str: []byte(s)} }

// ErrorValue builds an error frame whose payload is "CODE message".
func ErrorValue(code, msg string) Value {
	return Value{Kind: KindError, Str: []byte(code + " " + msg)}
}

// Int builds an integer frame.
func Int(n int64) Value { return Value{Kind: KindInt, Int: n} }

// Bulk builds a length-prefixed byte-string frame.
func Bulk(b []byte) Value { return Value{Kind: KindBulk, Str: b} }

// BulkString builds a length-prefixed byte-string frame from a string.
func BulkString(s string) Value { return Value{Kind: KindBulk, Str: []byte(s)} }

// Array builds an array frame from its elements.
func Array(elems ...Value) Value { return Value{Kind: KindArray, Elems: elems} }

// Equal reports deep equality of two frames: same kind and same
// payload, element-wise for arrays.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.Int == o.Int
	case KindArray:
		if len(v.Elems) != len(o.Elems) {
			return false
		}
		for i := range v.Elems {
			if !v.Elems[i].Equal(o.Elems[i]) {
				return false
			}
		}
		return true
	default:
		return bytes.Equal(v.Str, o.Str)
	}
}

// Limits bounds what the decoder accepts. Every field must be
// positive; DefaultLimits supplies the server's production bounds.
type Limits struct {
	// MaxLine bounds one CRLF-terminated line (type marker, digits or
	// inline payload), excluding the CRLF itself.
	MaxLine int
	// MaxBulk bounds one bulk payload in bytes.
	MaxBulk int
	// MaxArray bounds one array's element count.
	MaxArray int
	// MaxDepth bounds array nesting (a flat array of bulks is depth 1).
	MaxDepth int
}

// DefaultLimits are the production decoder bounds: 4 KiB lines, 1 MiB
// bulk payloads, 1024-element arrays, 8 levels of nesting.
func DefaultLimits() Limits {
	return Limits{MaxLine: 4096, MaxBulk: 1 << 20, MaxArray: 1024, MaxDepth: 8}
}

// WireError reports a malformed or over-limit frame. The connection
// loop distinguishes it from transport errors: a WireError earns a
// `-ERR proto:` reply before the connection closes, a transport error
// closes silently.
type WireError struct{ msg string }

// Error implements the error interface.
func (e *WireError) Error() string { return "proto: " + e.msg }

// wireErrf builds a *WireError with a formatted message.
func wireErrf(format string, args ...any) error {
	return &WireError{msg: fmt.Sprintf(format, args...)}
}

// NewWireError builds a typed malformed-frame error, letting the
// connection loop classify its own request-shape violations (for
// example an inline line where an array was required) the same way as
// codec failures.
func NewWireError(msg string) *WireError { return &WireError{msg: msg} }

// ReadInline reads one CRLF-terminated inline command line — the
// telnet-friendly request form — and splits it into a verb and an
// optional single argument spanning the rest of the line. The returned
// slices are copies. Limits and error classification match ReadValue.
func ReadInline(br *bufio.Reader, lim Limits) ([][]byte, error) {
	line, err := readLine(br, lim.MaxLine)
	if err != nil {
		return nil, err
	}
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return nil, nil
	}
	verb, rest, found := bytes.Cut(line, []byte{' '})
	args := make([][]byte, 0, 2)
	args = append(args, append([]byte(nil), verb...))
	if found {
		if rest = bytes.TrimSpace(rest); len(rest) > 0 {
			args = append(args, append([]byte(nil), rest...))
		}
	}
	return args, nil
}

// ReadValue decodes exactly one frame from br under lim. A clean EOF
// before the first byte returns io.EOF; EOF inside a frame returns
// io.ErrUnexpectedEOF; a malformed or over-limit frame returns a
// *WireError. The returned Value owns its payload bytes (nothing
// aliases the reader's buffer), and no byte past the decoded frame is
// consumed.
func ReadValue(br *bufio.Reader, lim Limits) (Value, error) {
	return readValue(br, lim, 1)
}

// readValue decodes one frame at the given nesting depth.
func readValue(br *bufio.Reader, lim Limits, depth int) (Value, error) {
	marker, err := br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Value{}, io.EOF
		}
		return Value{}, err
	}
	switch Kind(marker) {
	case KindSimple, KindError:
		line, err := readLine(br, lim.MaxLine)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Kind(marker), Str: append([]byte(nil), line...)}, nil
	case KindInt:
		line, err := readLine(br, lim.MaxLine)
		if err != nil {
			return Value{}, err
		}
		n, ok := parseInt(line)
		if !ok {
			return Value{}, wireErrf("bad integer %q", clip(line))
		}
		return Value{Kind: KindInt, Int: n}, nil
	case KindBulk:
		n, err := readLength(br, lim, "bulk")
		if err != nil {
			return Value{}, err
		}
		if n > int64(lim.MaxBulk) {
			return Value{}, wireErrf("bulk length %d exceeds limit %d", n, lim.MaxBulk)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			return Value{}, eofErr(err)
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, wireErrf("bulk payload missing CRLF terminator")
		}
		return Value{Kind: KindBulk, Str: buf[:n:n]}, nil
	case KindArray:
		n, err := readLength(br, lim, "array")
		if err != nil {
			return Value{}, err
		}
		if n > int64(lim.MaxArray) {
			return Value{}, wireErrf("array length %d exceeds limit %d", n, lim.MaxArray)
		}
		if depth > lim.MaxDepth {
			return Value{}, wireErrf("array nesting exceeds depth limit %d", lim.MaxDepth)
		}
		elems := make([]Value, 0, n)
		for i := int64(0); i < n; i++ {
			el, err := readValue(br, lim, depth+1)
			if err != nil {
				return Value{}, eofErr(err)
			}
			elems = append(elems, el)
		}
		return Value{Kind: KindArray, Elems: elems}, nil
	default:
		return Value{}, wireErrf("unknown frame marker %q", marker)
	}
}

// readLength reads and validates a non-negative length header line.
func readLength(br *bufio.Reader, lim Limits, what string) (int64, error) {
	line, err := readLine(br, lim.MaxLine)
	if err != nil {
		return 0, err
	}
	n, ok := parseInt(line)
	if !ok || n < 0 {
		return 0, wireErrf("bad %s length %q", what, clip(line))
	}
	return n, nil
}

// readLine reads one CRLF-terminated line of at most max bytes
// (excluding the CRLF) and returns it without the terminator. The
// returned slice aliases the reader's buffer and is valid only until
// the next read.
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, wireErrf("line exceeds %d bytes", max)
	}
	if err != nil {
		return nil, eofErr(err)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, wireErrf("line missing CRLF terminator")
	}
	line = line[:len(line)-2]
	if len(line) > max {
		return nil, wireErrf("line exceeds %d bytes", max)
	}
	return line, nil
}

// eofErr maps a mid-frame EOF to io.ErrUnexpectedEOF so callers can
// tell a truncated frame from a clean end of stream.
func eofErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// clip bounds an untrusted byte string for inclusion in an error
// message.
func clip(b []byte) string {
	const max = 32
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// parseInt parses a signed decimal integer without allocating. It
// accepts only the canonical form — rejecting empty input, junk
// characters, bare "-", leading zeros, "-0" and int64 overflow — so
// every accepted frame re-encodes to the exact input bytes.
//
//saqp:hotpath
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, false
		}
	}
	if b[i] == '0' && (neg || len(b)-i > 1) {
		return 0, false
	}
	var n int64
	for ; i < len(b); i++ {
		d := b[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		if n > (math.MaxInt64-int64(d-'0'))/10 {
			return 0, false
		}
		n = n*10 + int64(d-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// Encoder writes frames through one bufio.Writer with a sticky error:
// after any write fails, further calls are no-ops and Err (or Flush)
// reports the first failure. The integer and float scratch buffers
// live in the struct, so steady-state encoding allocates nothing.
type Encoder struct {
	w   *bufio.Writer
	err error
	num [32]byte // strconv scratch for integer and float payloads
}

// NewEncoder wraps w in a frame encoder.
func NewEncoder(w *bufio.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write error, or nil.
func (e *Encoder) Err() error { return e.err }

// Flush drains the underlying writer and returns the encoder's first
// error (write or flush).
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	e.err = e.w.Flush()
	return e.err
}

// setErr latches the first write error.
//
//saqp:hotpath
func (e *Encoder) setErr(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// crlf writes a frame terminator.
//
//saqp:hotpath
func (e *Encoder) crlf() {
	if e.err != nil {
		return
	}
	if err := e.w.WriteByte('\r'); err != nil {
		e.setErr(err)
		return
	}
	e.setErr(e.w.WriteByte('\n'))
}

// line writes one complete frame line: marker, payload, CRLF.
//
//saqp:hotpath
func (e *Encoder) line(marker byte, payload []byte) {
	if e.err != nil {
		return
	}
	if err := e.w.WriteByte(marker); err != nil {
		e.setErr(err)
		return
	}
	if _, err := e.w.Write(payload); err != nil {
		e.setErr(err)
		return
	}
	e.crlf()
}

// head writes a marker-plus-integer line (integer frames and bulk or
// array length prefixes).
//
//saqp:hotpath
func (e *Encoder) head(marker byte, n int64) {
	if e.err != nil {
		return
	}
	if err := e.w.WriteByte(marker); err != nil {
		e.setErr(err)
		return
	}
	b := strconv.AppendInt(e.num[:0], n, 10)
	if _, err := e.w.Write(b); err != nil {
		e.setErr(err)
		return
	}
	e.crlf()
}

// Simple writes a one-line status frame. s must not contain CR or LF.
//
//saqp:hotpath
func (e *Encoder) Simple(s string) {
	if e.err != nil {
		return
	}
	if err := e.w.WriteByte(byte(KindSimple)); err != nil {
		e.setErr(err)
		return
	}
	if _, err := e.w.WriteString(s); err != nil {
		e.setErr(err)
		return
	}
	e.crlf()
}

// Error writes an error frame: "-CODE message". Neither part may
// contain CR or LF (see Sanitize).
//
//saqp:hotpath
func (e *Encoder) Error(code, msg string) {
	if e.err != nil {
		return
	}
	if err := e.w.WriteByte(byte(KindError)); err != nil {
		e.setErr(err)
		return
	}
	if _, err := e.w.WriteString(code); err != nil {
		e.setErr(err)
		return
	}
	if err := e.w.WriteByte(' '); err != nil {
		e.setErr(err)
		return
	}
	if _, err := e.w.WriteString(msg); err != nil {
		e.setErr(err)
		return
	}
	e.crlf()
}

// Int writes an integer frame.
//
//saqp:hotpath
func (e *Encoder) Int(n int64) { e.head(byte(KindInt), n) }

// Bulk writes a length-prefixed byte-string frame.
//
//saqp:hotpath
func (e *Encoder) Bulk(b []byte) {
	e.head(byte(KindBulk), int64(len(b)))
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(b); err != nil {
		e.setErr(err)
		return
	}
	e.crlf()
}

// BulkString writes a length-prefixed byte-string frame from a string
// without converting it to a byte slice.
//
//saqp:hotpath
func (e *Encoder) BulkString(s string) {
	e.head(byte(KindBulk), int64(len(s)))
	if e.err != nil {
		return
	}
	if _, err := e.w.WriteString(s); err != nil {
		e.setErr(err)
		return
	}
	e.crlf()
}

// BulkFloat writes a bulk frame holding v formatted with prec decimal
// places ('f' format: no exponent, fixed precision, so equal values
// always serialize to equal bytes).
//
//saqp:hotpath
func (e *Encoder) BulkFloat(v float64, prec int) {
	if e.err != nil {
		return
	}
	b := strconv.AppendFloat(e.num[:0], v, 'f', prec, 64)
	e.head(byte(KindBulk), int64(len(b)))
	if e.err != nil {
		return
	}
	// Reformat: head reused the scratch buffer for the length digits.
	b = strconv.AppendFloat(e.num[:0], v, 'f', prec, 64)
	if _, err := e.w.Write(b); err != nil {
		e.setErr(err)
		return
	}
	e.crlf()
}

// Array writes an array header; the caller then writes exactly n
// element frames.
//
//saqp:hotpath
func (e *Encoder) Array(n int) { e.head(byte(KindArray), int64(n)) }

// Value writes one decoded frame back to the wire in canonical form.
// Re-encoding a frame produced by ReadValue reproduces its exact
// bytes (the fuzz round-trip property).
//
//saqp:hotpath
func (e *Encoder) Value(v Value) {
	switch v.Kind {
	case KindSimple, KindError:
		e.line(byte(v.Kind), v.Str)
	case KindInt:
		e.Int(v.Int)
	case KindBulk:
		e.Bulk(v.Str)
	case KindArray:
		e.Array(len(v.Elems))
		for _, el := range v.Elems {
			e.Value(el)
		}
	default:
		e.setErr(errUnknownKind)
	}
}

// errUnknownKind is a fixed sentinel so the hot encode path never
// formats an error message.
var errUnknownKind = &WireError{msg: "encode: unknown frame kind"}

// AppendValue appends v's canonical encoding to dst. It is the
// slice-based twin of Encoder.Value for callers (tests, the fuzzer)
// that want bytes rather than a stream.
func AppendValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindSimple, KindError:
		dst = append(dst, byte(v.Kind))
		dst = append(dst, v.Str...)
	case KindInt:
		dst = append(dst, byte(KindInt))
		dst = strconv.AppendInt(dst, v.Int, 10)
	case KindBulk:
		dst = append(dst, byte(KindBulk))
		dst = strconv.AppendInt(dst, int64(len(v.Str)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, v.Str...)
	case KindArray:
		dst = append(dst, byte(KindArray))
		dst = strconv.AppendInt(dst, int64(len(v.Elems)), 10)
		dst = append(dst, '\r', '\n')
		for _, el := range v.Elems {
			dst = AppendValue(dst, el)
		}
		return dst
	}
	return append(dst, '\r', '\n')
}

// Sanitize returns s with CR and LF replaced by spaces and the result
// clipped to a sane reply length, making arbitrary error text safe to
// embed in a one-line error frame.
func Sanitize(s string) string {
	const max = 256
	if len(s) > max {
		s = s[:max]
	}
	clean := []byte(s)
	for i, c := range clean {
		if c == '\r' || c == '\n' {
			clean[i] = ' '
		}
	}
	return string(clean)
}
