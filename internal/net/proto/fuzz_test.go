package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzProtocolDecode throws corrupt, truncated and oversized byte
// streams at the wire decoder. Invariants:
//
//   - the decoder never panics (the harness catches that for free);
//   - it never over-reads: exactly the decoded frame's bytes are
//     consumed, nothing past it;
//   - errors are classified: io.EOF only on empty input, otherwise
//     io.ErrUnexpectedEOF (truncated) or *WireError (malformed);
//   - valid inputs round-trip byte-for-byte through Encode(Decode(x)).
func FuzzProtocolDecode(f *testing.F) {
	seeds := []string{
		"+PONG\r\n",
		"-BUSY queue depth 64 exceeds limit\r\n",
		":42\r\n",
		":-7\r\n",
		"$5\r\nhello\r\n",
		"$0\r\n\r\n",
		"*0\r\n",
		"*2\r\n$6\r\nSUBMIT\r\n$21\r\nSELECT COUNT(*) FROM l\r\n",
		"*2\r\n*1\r\n+ok\r\n$1\r\nx\r\n",
		"*1\r\n*1\r\n*1\r\n*1\r\n:1\r\n",
		"?junk\r\n",
		":12a\r\n",
		":007\r\n",
		"$-1\r\n",
		"$3\r\nab",
		"*3\r\n:1\r\n",
		"$99999999999999999999\r\n",
		"+no terminator",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := Limits{MaxLine: 256, MaxBulk: 4096, MaxArray: 64, MaxDepth: 6}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReaderSize(bytes.NewReader(data), lim.MaxLine+2)
		v, err := ReadValue(br, lim)
		rest, rerr := io.ReadAll(br)
		if rerr != nil {
			t.Fatalf("draining reader: %v", rerr)
		}
		consumed := len(data) - len(rest)

		if err != nil {
			var we *WireError
			switch {
			case errors.As(err, &we):
				// Malformed frame: typed error, fine.
			case errors.Is(err, io.ErrUnexpectedEOF):
				// Truncated frame: fine.
			case errors.Is(err, io.EOF):
				if len(data) != 0 {
					t.Fatalf("io.EOF on non-empty input %q", data)
				}
			default:
				t.Fatalf("unclassified decode error %v on %q", err, data)
			}
			return
		}

		// Valid frame: re-encoding must reproduce exactly the consumed
		// prefix — byte-identical, no over- or under-read.
		enc := AppendValue(nil, v)
		if !bytes.Equal(enc, data[:consumed]) {
			t.Fatalf("round-trip mismatch:\n consumed %q\n re-encoded %q", data[:consumed], enc)
		}

		// The streaming encoder must agree with the slice encoder.
		var out bytes.Buffer
		e := NewEncoder(bufio.NewWriter(&out))
		e.Value(v)
		if ferr := e.Flush(); ferr != nil {
			t.Fatalf("Encoder.Value(%+v): %v", v, ferr)
		}
		if !bytes.Equal(out.Bytes(), enc) {
			t.Fatalf("Encoder.Value %q disagrees with AppendValue %q", out.Bytes(), enc)
		}

		// And the re-encoded bytes must decode back to an equal value.
		v2, err2 := ReadValue(bufio.NewReaderSize(bytes.NewReader(enc), lim.MaxLine+2), lim)
		if err2 != nil {
			t.Fatalf("re-decoding canonical bytes %q: %v", enc, err2)
		}
		if !v2.Equal(v) {
			t.Fatalf("re-decoded value %+v != original %+v", v2, v)
		}
	})
}
