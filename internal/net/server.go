package net

import (
	"bufio"
	"context"
	"errors"
	stdnet "net"
	"strconv"
	"strings"
	"sync"
	"time"

	"saqp/internal/net/proto"
	"saqp/internal/obs"
	"saqp/internal/serve"
)

// Pending is one accepted submission awaiting completion — the slice
// of serve.Ticket the connection loop needs.
type Pending interface {
	// ID returns the engine-assigned submission id.
	ID() string
	// Wait blocks until the query completes or ctx is canceled.
	Wait(ctx context.Context) (serve.Result, error)
}

// Backend is the serving engine the frontend submits into; saqp.Server
// satisfies it through a thin adapter.
type Backend interface {
	// Submit admits one query for serving.
	Submit(ctx context.Context, sql string, seed uint64) (Pending, error)
	// Stats snapshots the engine's counters.
	Stats() serve.Stats
}

// Default connection-lifecycle bounds; see Config.
const (
	DefaultMaxConns     = 64
	DefaultMaxPending   = 64
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// Config configures a Server. Backend is required; every other zero
// field takes the package default.
type Config struct {
	// Addr is the TCP listen address (host:port; ":0" picks a free
	// port).
	Addr string
	// Backend is the serving engine commands dispatch into. Required.
	Backend Backend
	// MaxConns bounds concurrently served connections; beyond it an
	// accept earns `-BUSY connection limit reached` and an immediate
	// close. Default DefaultMaxConns.
	MaxConns int
	// MaxPending bounds one connection's submitted-but-unwaited
	// tickets; beyond it SUBMIT earns -BUSY. Default DefaultMaxPending.
	MaxPending int
	// IdleTimeout is the per-connection read deadline between requests;
	// a client silent for longer is disconnected. Default
	// DefaultIdleTimeout.
	IdleTimeout time.Duration
	// WriteTimeout bounds flushing one reply. Default
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// BusyQueueDepth, when positive, refuses SUBMIT with -BUSY while
	// the backend's admission queue is at or past this depth —
	// backpressure ahead of the engine's own ErrQueueFull.
	BusyQueueDepth int
	// Limits bounds decoded request frames; the zero value means
	// proto.DefaultLimits.
	Limits proto.Limits
	// Explain, when set, serves the EXPLAIN command: it returns the
	// compiled plan description of one query, one line per list entry.
	Explain func(sql string) ([]string, error)
	// MetricsText, when set, serves the METRICS command with a textual
	// metrics dump.
	MetricsText func() ([]byte, error)
	// Route, when set, marks this server as one instance of a sharded
	// cluster: it resolves a query's hash slot and the advertised
	// address of the instance that owns it. When local is false, SUBMIT
	// and EXPLAIN answer `-MOVED <slot> <addr>` instead of executing, so
	// clients re-route and retry — the Redis Cluster redirect contract.
	Route func(sql string) (slot int, addr string, local bool, err error)
	// ClusterInfo, when set, serves the CLUSTER command with the
	// coordinator's line-oriented topology snapshot.
	ClusterInfo func() []string
	// Observer records connection and command metrics; nil disables.
	Observer *obs.Observer
}

// Server is the TCP frontend: an accept loop plus one goroutine per
// connection, each running read → dispatch → reply under deadlines.
type Server struct {
	cfg Config
	ln  stdnet.Listener
	ob  *obs.Observer

	ctx    context.Context // root of every per-connection submission
	cancel context.CancelFunc

	wg sync.WaitGroup // accept loop + connection handlers

	mu       sync.Mutex
	conns    map[stdnet.Conn]struct{}
	draining bool
	closed   bool
}

// Start listens on cfg.Addr and serves until Shutdown or Close.
func Start(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("net: Config.Backend is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.Limits == (proto.Limits{}) {
		cfg.Limits = proto.DefaultLimits()
	}
	ln, err := stdnet.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow saqpvet/ctxleak the listener is the connection root; per-conn submissions have no caller context to inherit
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		ob:     cfg.Observer,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[stdnet.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (resolving ":0" to the picked
// port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains gracefully: the listener closes, idle connections
// are kicked, in-flight commands complete and flush, and new
// connections and submissions are refused. When ctx expires first the
// remaining connections are torn down and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// Close tears the server down immediately: listener and connections
// close and in-flight submissions are canceled.
func (s *Server) Close() error {
	s.beginDrain()
	s.cancel()
	s.closeConns()
	s.wg.Wait()
	return nil
}

// beginDrain stops the accept loop and kicks connections blocked
// between requests, leaving in-flight commands to finish.
func (s *Server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.draining = true
	_ = s.ln.Close() //lint:allow saqpvet/errdrop a close race with the accept loop is benign; Accept observes it either way
	past := time.Unix(1, 0)
	for c := range s.conns {
		_ = c.SetReadDeadline(past) //lint:allow saqpvet/errdrop kicking an already-dead connection is the desired outcome
	}
}

// closeConns force-closes every live connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		_ = c.Close() //lint:allow saqpvet/errdrop force-close races the handler's own close; either winning is fine
	}
}

// draining reports whether a drain or close has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.register(c) {
			s.ob.NetConnRejected()
			s.refuse(c)
			continue
		}
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		s.ob.NetConnAccepted(n)
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// register admits c under the connection limit; false refuses it.
func (s *Server) register(c stdnet.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// unregister removes and closes a served connection.
func (s *Server) unregister(c stdnet.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	n := len(s.conns)
	s.mu.Unlock()
	_ = c.Close() //lint:allow saqpvet/errdrop the handler owns the close; a drain/force-close racing it is benign
	s.ob.NetConnClosed(n)
}

// refuse replies -BUSY to an over-limit connection and closes it.
func (s *Server) refuse(c stdnet.Conn) {
	if err := c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err == nil {
		_, _ = c.Write([]byte("-BUSY connection limit reached\r\n")) //lint:allow saqpvet/errdrop the refusal reply is best-effort; the close below is the real outcome
	}
	_ = c.Close() //lint:allow saqpvet/errdrop nothing to do about a close error on a refused connection
}

// serveConn runs one connection's read → dispatch → reply loop.
func (s *Server) serveConn(c stdnet.Conn) {
	defer s.wg.Done()
	defer s.unregister(c)
	br := bufio.NewReaderSize(c, s.cfg.Limits.MaxLine+2)
	bw := bufio.NewWriter(c)
	enc := proto.NewEncoder(bw)
	pending := make(map[string]Pending)
	for {
		if s.isDraining() {
			return
		}
		if err := c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return
		}
		args, err := readRequest(br, s.cfg.Limits)
		if err != nil {
			var we *proto.WireError
			if errors.As(err, &we) {
				// Malformed frame: answer, then hang up — resync on a
				// corrupt stream is guesswork.
				s.ob.NetParseError()
				enc.Error("ERR", proto.Sanitize(we.Error()))
				s.flush(c, enc)
			}
			return
		}
		if len(args) == 0 {
			continue // blank inline line
		}
		s.ob.NetCommand()
		quit := s.dispatch(s.ctx, enc, pending, args)
		if !s.flush(c, enc) || quit {
			return
		}
	}
}

// flush drains the reply buffer under the write deadline; false means
// the connection is beyond saving.
func (s *Server) flush(c stdnet.Conn, enc *proto.Encoder) bool {
	if err := c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		return false
	}
	return enc.Flush() == nil
}

// readRequest reads one request in either wire form: an array of bulk
// strings, or an inline CRLF-terminated line.
func readRequest(br *bufio.Reader, lim proto.Limits) ([][]byte, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	switch proto.Kind(first[0]) {
	case proto.KindArray:
		v, err := proto.ReadValue(br, lim)
		if err != nil {
			return nil, err
		}
		args := make([][]byte, 0, len(v.Elems))
		for _, el := range v.Elems {
			switch el.Kind {
			case proto.KindBulk, proto.KindSimple:
				args = append(args, el.Str)
			case proto.KindInt:
				args = append(args, strconv.AppendInt(nil, el.Int, 10))
			default:
				return nil, proto.NewWireError("request array elements must be bulk strings")
			}
		}
		return args, nil
	case proto.KindSimple, proto.KindError, proto.KindInt, proto.KindBulk:
		return nil, proto.NewWireError("request must be an array of bulk strings or an inline line")
	default:
		return proto.ReadInline(br, lim)
	}
}

// dispatch executes one command and encodes its reply; true means the
// client asked to QUIT.
func (s *Server) dispatch(ctx context.Context, enc *proto.Encoder, pending map[string]Pending, args [][]byte) bool {
	switch verb := strings.ToUpper(string(args[0])); verb {
	case "PING":
		enc.Simple("PONG")
	case "QUIT":
		enc.Simple("OK")
		return true
	case "SUBMIT":
		s.cmdSubmit(ctx, enc, pending, args)
	case "WAIT":
		s.cmdWait(ctx, enc, pending, args)
	case "STATS":
		writeStats(enc, s.cfg.Backend.Stats())
	case "EXPLAIN":
		s.cmdExplain(enc, args)
	case "METRICS":
		s.cmdMetrics(enc)
	case "CLUSTER":
		s.cmdCluster(enc)
	default:
		s.ob.NetUnknownCommand()
		enc.Error("ERR", "unknown command '"+proto.Sanitize(verb)+"'")
	}
	return false
}

// cmdSubmit admits one query, applying -BUSY backpressure ahead of and
// behind the engine's admission queue.
func (s *Server) cmdSubmit(ctx context.Context, enc *proto.Encoder, pending map[string]Pending, args [][]byte) {
	if len(args) < 2 || len(args) > 3 {
		enc.Error("ERR", "SUBMIT requires a query and an optional seed")
		return
	}
	var seed uint64
	if len(args) == 3 {
		var err error
		seed, err = strconv.ParseUint(string(args[2]), 10, 64)
		if err != nil {
			enc.Error("ERR", "bad seed '"+proto.Sanitize(string(args[2]))+"'")
			return
		}
	}
	if !s.routeLocal(enc, string(args[1])) {
		return
	}
	if len(pending) >= s.cfg.MaxPending {
		s.ob.NetBusy()
		enc.Error("BUSY", "pending ticket limit reached; WAIT on earlier submissions first")
		return
	}
	if d := s.cfg.BusyQueueDepth; d > 0 && s.cfg.Backend.Stats().QueueDepth >= d {
		s.ob.NetBusy()
		enc.Error("BUSY", "admission queue depth past configured limit")
		return
	}
	p, err := s.cfg.Backend.Submit(ctx, string(args[1]), seed)
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		s.ob.NetBusy()
		enc.Error("BUSY", "admission queue full")
	case errors.Is(err, serve.ErrClosed):
		enc.Error("ERR", "server closing")
	case err != nil:
		enc.Error("ERR", proto.Sanitize(err.Error()))
	default:
		pending[p.ID()] = p
		enc.Simple(p.ID())
	}
}

// cmdWait blocks on one pending ticket and encodes its result.
func (s *Server) cmdWait(ctx context.Context, enc *proto.Encoder, pending map[string]Pending, args [][]byte) {
	if len(args) != 2 {
		enc.Error("ERR", "WAIT requires a ticket id")
		return
	}
	id := string(args[1])
	p, ok := pending[id]
	if !ok {
		enc.Error("ERR", "unknown ticket '"+proto.Sanitize(id)+"'")
		return
	}
	res, err := p.Wait(ctx)
	delete(pending, id)
	if err != nil {
		enc.Error("ERR", proto.Sanitize(err.Error()))
		return
	}
	writeResult(enc, res)
}

// cmdExplain serves the compiled plan description of one query.
func (s *Server) cmdExplain(enc *proto.Encoder, args [][]byte) {
	if s.cfg.Explain == nil {
		enc.Error("ERR", "EXPLAIN not supported by this server")
		return
	}
	if len(args) != 2 {
		enc.Error("ERR", "EXPLAIN requires a query")
		return
	}
	if !s.routeLocal(enc, string(args[1])) {
		return
	}
	lines, err := s.cfg.Explain(string(args[1]))
	if err != nil {
		enc.Error("ERR", proto.Sanitize(err.Error()))
		return
	}
	enc.Array(len(lines))
	for _, l := range lines {
		enc.BulkString(l)
	}
}

// cmdMetrics dumps the metrics registry, one bulk frame per line.
func (s *Server) cmdMetrics(enc *proto.Encoder) {
	if s.cfg.MetricsText == nil {
		enc.Error("ERR", "METRICS not supported by this server")
		return
	}
	text, err := s.cfg.MetricsText()
	if err != nil {
		enc.Error("ERR", proto.Sanitize(err.Error()))
		return
	}
	lines := strings.Split(strings.TrimRight(string(text), "\n"), "\n")
	enc.Array(len(lines))
	for _, l := range lines {
		enc.BulkString(l)
	}
}

// routeLocal applies the cluster routing gate to a query-bearing
// command: true means this instance owns the query (or the server is
// not clustered) and the command should execute here. Otherwise the
// MOVED redirect (or routing error) has already been encoded.
func (s *Server) routeLocal(enc *proto.Encoder, sql string) bool {
	if s.cfg.Route == nil {
		return true
	}
	slot, addr, local, err := s.cfg.Route(sql)
	if err != nil {
		enc.Error("ERR", proto.Sanitize(err.Error()))
		return false
	}
	if local {
		return true
	}
	s.ob.ShardMoved()
	enc.Error("MOVED", strconv.Itoa(slot)+" "+addr)
	return false
}

// cmdCluster serves the coordinator's topology snapshot, one bulk
// frame per line.
func (s *Server) cmdCluster(enc *proto.Encoder) {
	if s.cfg.ClusterInfo == nil {
		enc.Error("ERR", "CLUSTER not supported by this server")
		return
	}
	lines := s.cfg.ClusterInfo()
	enc.Array(len(lines))
	for _, l := range lines {
		enc.BulkString(l)
	}
}

// resultFloatPrec fixes WAIT's float formatting so equal results
// always serialize to equal bytes (the golden-transcript contract).
const resultFloatPrec = 3

// writeResult encodes one completed query as a flat name/value array.
// The field order is fixed — golden transcripts depend on it.
func writeResult(enc *proto.Encoder, r serve.Result) {
	enc.Array(22)
	enc.BulkString("id")
	enc.BulkString(r.ID)
	enc.BulkString("cache_hit")
	enc.Int(boolInt(r.CacheHit))
	enc.BulkString("wrd")
	enc.BulkFloat(r.WRD, resultFloatPrec)
	enc.BulkString("predicted_sec")
	enc.BulkFloat(r.PredictedSec, resultFloatPrec)
	enc.BulkString("sim_sec")
	enc.BulkFloat(r.SimSec, resultFloatPrec)
	enc.BulkString("jobs")
	enc.Int(int64(r.Jobs))
	enc.BulkString("maps")
	enc.Int(int64(r.Maps))
	enc.BulkString("reduces")
	enc.Int(int64(r.Reduces))
	enc.BulkString("attempts")
	enc.Int(int64(r.Attempts))
	enc.BulkString("faulted")
	enc.Int(boolInt(r.Faulted))
	enc.BulkString("model_version")
	enc.Int(int64(r.ModelVersion))
}

// writeStats encodes the engine counters as a flat name/value array,
// in fixed order.
func writeStats(enc *proto.Encoder, st serve.Stats) {
	enc.Array(28)
	enc.BulkString("submitted")
	enc.Int(int64(st.Submitted))
	enc.BulkString("completed")
	enc.Int(int64(st.Completed))
	enc.BulkString("canceled")
	enc.Int(int64(st.Canceled))
	enc.BulkString("rejected")
	enc.Int(int64(st.Rejected))
	enc.BulkString("errors")
	enc.Int(int64(st.Errors))
	enc.BulkString("retries")
	enc.Int(int64(st.Retries))
	enc.BulkString("fault_failures")
	enc.Int(int64(st.FaultFailures))
	enc.BulkString("cache_hits")
	enc.Int(int64(st.CacheHits))
	enc.BulkString("cache_misses")
	enc.Int(int64(st.CacheMisses))
	enc.BulkString("cache_evictions")
	enc.Int(int64(st.CacheEvictions))
	enc.BulkString("cache_entries")
	enc.Int(int64(st.CacheEntries))
	enc.BulkString("queue_depth")
	enc.Int(int64(st.QueueDepth))
	enc.BulkString("inflight")
	enc.Int(int64(st.Inflight))
	enc.BulkString("workers")
	enc.Int(int64(st.Workers))
}

// boolInt encodes a flag as the wire's 0/1 integer.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
