package net

import (
	"strings"
	"testing"
)

// routeByPrefix is a toy Route: queries containing "orders" belong to
// the other instance at otherAddr (slot 42), everything else is local.
func routeByPrefix(otherAddr string) func(sql string) (int, string, bool, error) {
	return func(sql string) (int, string, bool, error) {
		if strings.Contains(sql, "orders") {
			return 42, otherAddr, false, nil
		}
		return 7, "", true, nil
	}
}

func TestServerMovedRedirectAndClusterVerb(t *testing.T) {
	s, _ := startServer(t, Config{
		Route: routeByPrefix("127.0.0.1:7999"),
		ClusterInfo: func() []string {
			return []string{"cluster_enabled:1", "cluster_shards:2"}
		},
		Explain: func(sql string) ([]string, error) { return []string{"plan: " + sql}, nil },
	})
	c := dialT(t, s.Addr())

	// Local query executes normally.
	id, err := c.Submit("SELECT COUNT(*) FROM lineitem", 1)
	if err != nil || id == "" {
		t.Fatalf("local SUBMIT = (%q, %v)", id, err)
	}

	// Misrouted SUBMIT earns -MOVED with the owning instance.
	_, err = c.Submit("SELECT COUNT(*) FROM orders", 1)
	me, ok := AsMoved(err)
	if !ok {
		t.Fatalf("misrouted SUBMIT error = %v, want MovedError", err)
	}
	if me.Slot != 42 || me.Addr != "127.0.0.1:7999" {
		t.Fatalf("MovedError = %+v, want slot 42 addr 127.0.0.1:7999", me)
	}

	// EXPLAIN is gated by the same route.
	if _, err := c.Explain("SELECT COUNT(*) FROM orders"); err == nil {
		t.Fatal("misrouted EXPLAIN succeeded, want MOVED")
	} else if _, ok := AsMoved(err); !ok {
		t.Fatalf("misrouted EXPLAIN error = %v, want MovedError", err)
	}
	lines, err := c.Explain("SELECT COUNT(*) FROM lineitem")
	if err != nil || len(lines) != 1 {
		t.Fatalf("local EXPLAIN = (%v, %v)", lines, err)
	}

	// CLUSTER returns the configured topology lines.
	info, err := c.Cluster()
	if err != nil {
		t.Fatalf("CLUSTER: %v", err)
	}
	if len(info) != 2 || info[0] != "cluster_enabled:1" {
		t.Fatalf("CLUSTER = %v", info)
	}
}

func TestClusterVerbUnsupportedWithoutHook(t *testing.T) {
	s, _ := startServer(t, Config{})
	c := dialT(t, s.Addr())
	if _, err := c.Cluster(); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("CLUSTER without hook = %v, want not-supported error", err)
	}
}

func TestClusterClientFollowsMovedRedirects(t *testing.T) {
	// Two instances: s0 owns lineitem queries, s1 owns orders queries.
	// Addresses are only known after listen, so route through a mutable
	// cell.
	var addr0, addr1 string
	s0, _ := startServer(t, Config{Route: func(sql string) (int, string, bool, error) {
		if strings.Contains(sql, "orders") {
			return 42, addr1, false, nil
		}
		return 7, addr0, true, nil
	}})
	s1, b1 := startServer(t, Config{Route: func(sql string) (int, string, bool, error) {
		if strings.Contains(sql, "orders") {
			return 42, addr1, true, nil
		}
		return 7, addr0, false, nil
	}})
	addr0, addr1 = s0.Addr(), s1.Addr()

	cc, err := DialCluster(ClusterClientConfig{Seeds: []string{addr0}})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cc.Close()

	// First submission of an orders query hits s0, gets MOVED, and
	// lands on s1.
	tk, err := cc.Submit("SELECT COUNT(*) FROM orders", 3)
	if err != nil {
		t.Fatalf("Submit via redirect: %v", err)
	}
	if tk.Addr != addr1 {
		t.Fatalf("ticket admitted at %s, want %s", tk.Addr, addr1)
	}
	res, err := cc.Wait(tk)
	if err != nil || res.ID != tk.ID {
		t.Fatalf("Wait = (%+v, %v)", res, err)
	}

	// The affinity map sends the repeat straight to s1.
	if _, err := cc.Submit("SELECT COUNT(*) FROM orders", 4); err != nil {
		t.Fatalf("repeat Submit: %v", err)
	}
	b1.mu.Lock()
	n := b1.next
	b1.mu.Unlock()
	if n != 2 {
		t.Fatalf("owning instance saw %d submissions, want 2", n)
	}

	// Local queries never leave the seed.
	if tk, err := cc.Submit("SELECT COUNT(*) FROM lineitem", 5); err != nil || tk.Addr != addr0 {
		t.Fatalf("local Submit = (%+v, %v), want admission at %s", tk, err, addr0)
	}
}

func TestClusterClientRedirectLoopBounded(t *testing.T) {
	// An instance that always redirects to itself must trip the hop
	// limit rather than spin.
	var addr string
	s, _ := startServer(t, Config{Route: func(sql string) (int, string, bool, error) {
		return 1, addr, false, nil
	}})
	addr = s.Addr()
	cc, err := DialCluster(ClusterClientConfig{Seeds: []string{addr}, MaxRedirects: 2})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cc.Close()
	if _, err := cc.Submit("SELECT COUNT(*) FROM lineitem", 1); err == nil ||
		!strings.Contains(err.Error(), "redirect limit") {
		t.Fatalf("redirect loop error = %v, want redirect limit exceeded", err)
	}
}
