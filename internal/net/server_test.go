package net

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	stdnet "net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"saqp/internal/net/proto"
	"saqp/internal/obs"
	"saqp/internal/serve"
)

// fakePending is a hand-resolved ticket.
type fakePending struct {
	id   string
	done chan struct{}
	res  serve.Result
	err  error
}

func (p *fakePending) ID() string { return p.id }

func (p *fakePending) Wait(ctx context.Context) (serve.Result, error) {
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		return serve.Result{}, ctx.Err()
	}
}

// fakeBackend is a scriptable Backend: it can auto-resolve
// submissions, hold them for manual release, fail them, or report an
// arbitrary queue depth.
type fakeBackend struct {
	mu         sync.Mutex
	next       int
	hold       bool  // leave tickets unresolved until release
	submitErr  error // returned by Submit when set
	queueDepth int   // reported via Stats
	completed  uint64
	pending    []*fakePending
}

func (b *fakeBackend) Submit(ctx context.Context, sql string, seed uint64) (Pending, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.submitErr != nil {
		return nil, b.submitErr
	}
	b.next++
	p := &fakePending{
		id:   fmt.Sprintf("q%06d", b.next),
		done: make(chan struct{}),
		res:  serve.Result{SimSec: 1.5, Jobs: 1, Attempts: 1, SQL: sql},
	}
	p.res.ID = p.id
	if b.hold {
		b.pending = append(b.pending, p)
	} else {
		b.completed++
		close(p.done)
	}
	return p, nil
}

// release resolves every held ticket.
func (b *fakeBackend) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range b.pending {
		b.completed++
		close(p.done)
	}
	b.pending = nil
}

func (b *fakeBackend) Stats() serve.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return serve.Stats{QueueDepth: b.queueDepth, Completed: b.completed}
}

// startServer boots a frontend on a free port and tears it down with
// the test.
func startServer(t *testing.T, cfg Config) (*Server, *fakeBackend) {
	t.Helper()
	b, ok := cfg.Backend.(*fakeBackend)
	if cfg.Backend == nil {
		b, ok = &fakeBackend{}, true
		cfg.Backend = b
	}
	if !ok {
		t.Fatal("startServer wants a *fakeBackend")
	}
	cfg.Addr = "127.0.0.1:0"
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, b
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestServerCommands(t *testing.T) {
	s, _ := startServer(t, Config{
		Explain:     func(sql string) ([]string, error) { return []string{"plan for " + sql, "2 jobs"}, nil },
		MetricsText: func() ([]byte, error) { return []byte("a 1\nb 2\n"), nil },
	})
	c := dialT(t, s.Addr())

	if err := c.Ping(); err != nil {
		t.Fatalf("PING: %v", err)
	}
	id, err := c.Submit("SELECT COUNT(*) FROM lineitem", 7)
	if err != nil {
		t.Fatalf("SUBMIT: %v", err)
	}
	if id != "q000001" {
		t.Fatalf("SUBMIT id = %q", id)
	}
	res, err := c.Wait(id)
	if err != nil {
		t.Fatalf("WAIT: %v", err)
	}
	if res.ID != id || res.SimSec != 1.5 || res.Jobs != 1 || res.Attempts != 1 {
		t.Fatalf("WAIT result = %+v", res)
	}
	if _, err := c.Wait(id); err == nil {
		t.Fatal("WAIT on a consumed ticket must fail")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("STATS: %v", err)
	}
	if st["completed"] != 1 {
		t.Fatalf("STATS completed = %d, want 1", st["completed"])
	}
	lines, err := c.Explain("SELECT 1")
	if err != nil || len(lines) != 2 || lines[0] != "plan for SELECT 1" {
		t.Fatalf("EXPLAIN = %v, %v", lines, err)
	}
	metrics, err := c.Metrics()
	if err != nil || len(metrics) != 2 || metrics[1] != "b 2" {
		t.Fatalf("METRICS = %v, %v", metrics, err)
	}
	var se *ServerError
	if _, err := c.roundTrip("NOSUCH"); !errors.As(err, &se) || se.Code != "ERR" {
		t.Fatalf("unknown command error = %v", err)
	}
	if err := c.Quit(); err != nil {
		t.Fatalf("QUIT: %v", err)
	}
}

func TestServerInlineRequests(t *testing.T) {
	s, _ := startServer(t, Config{})
	conn, err := stdnet.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	br := bufio.NewReader(conn)
	send := func(line string) proto.Value {
		t.Helper()
		if _, err := io.WriteString(conn, line+"\r\n"); err != nil {
			t.Fatal(err)
		}
		v, err := proto.ReadValue(br, proto.DefaultLimits())
		if err != nil {
			t.Fatalf("reply to %q: %v", line, err)
		}
		return v
	}
	if v := send("ping"); !v.Equal(proto.Simple("PONG")) {
		t.Fatalf("inline ping reply = %+v", v)
	}
	if v := send("SUBMIT SELECT COUNT(*) FROM orders"); !v.Equal(proto.Simple("q000001")) {
		t.Fatalf("inline SUBMIT reply = %+v", v)
	}
	if v := send("WAIT q000001"); v.Kind != proto.KindArray {
		t.Fatalf("inline WAIT reply kind = %c", v.Kind)
	}
}

func TestServerConnectionLimit(t *testing.T) {
	s, _ := startServer(t, Config{MaxConns: 2})
	c1 := dialT(t, s.Addr())
	c2 := dialT(t, s.Addr())
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	// The third connection is refused with -BUSY and closed.
	conn, err := stdnet.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	br := bufio.NewReader(conn)
	v, err := proto.ReadValue(br, proto.DefaultLimits())
	if err != nil {
		t.Fatalf("refusal frame: %v", err)
	}
	if v.Kind != proto.KindError || !strings.HasPrefix(string(v.Str), "BUSY") {
		t.Fatalf("refusal = %+v, want -BUSY", v)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("refused connection still open: %v", err)
	}
	// Freeing a slot lets a new connection in.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		c4, err := Dial(s.Addr())
		if err == nil {
			if err := c4.Ping(); err == nil {
				_ = c4.Close()
				break
			}
			_ = c4.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("connection slot was never released")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerIdleDisconnect(t *testing.T) {
	s, _ := startServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	conn, err := stdnet.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Stay silent: the server must hang up on its own.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("idle connection read = %v, want EOF disconnect", err)
	}
}

func TestServerBusyBackpressure(t *testing.T) {
	ob := obs.New(nil)
	b := &fakeBackend{queueDepth: 10}
	s, _ := startServer(t, Config{Backend: b, BusyQueueDepth: 10, Observer: ob})
	c := dialT(t, s.Addr())

	// Saturated admission queue: typed -BUSY, nothing admitted.
	_, err := c.Submit("SELECT 1", 0)
	if !IsBusy(err) {
		t.Fatalf("Submit under saturation = %v, want -BUSY", err)
	}
	// Engine-level queue-full maps to -BUSY too.
	b.mu.Lock()
	b.queueDepth, b.submitErr = 0, serve.ErrQueueFull
	b.mu.Unlock()
	if _, err := c.Submit("SELECT 1", 0); !IsBusy(err) {
		t.Fatalf("Submit with ErrQueueFull = %v, want -BUSY", err)
	}
	// Clearing the pressure admits again.
	b.mu.Lock()
	b.submitErr = nil
	b.mu.Unlock()
	if _, err := c.Submit("SELECT 1", 0); err != nil {
		t.Fatalf("Submit after pressure cleared: %v", err)
	}
	if n := ob.Metrics.Counter(obs.MNetBusyRejections).Value(); n != 2 {
		t.Fatalf("busy rejections metric = %v, want 2", n)
	}
}

func TestServerPendingLimit(t *testing.T) {
	b := &fakeBackend{hold: true}
	s, _ := startServer(t, Config{Backend: b, MaxPending: 2})
	defer b.release()
	c := dialT(t, s.Addr())
	for i := 0; i < 2; i++ {
		if _, err := c.Submit("SELECT 1", uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Submit("SELECT 1", 9); !IsBusy(err) {
		t.Fatalf("Submit past MaxPending = %v, want -BUSY", err)
	}
}

func TestServerParseErrorCloses(t *testing.T) {
	ob := obs.New(nil)
	s, _ := startServer(t, Config{Observer: ob})
	conn, err := stdnet.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if _, err := io.WriteString(conn, "$nonsense\r\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	v, err := proto.ReadValue(br, proto.DefaultLimits())
	if err != nil {
		t.Fatalf("error frame: %v", err)
	}
	if v.Kind != proto.KindError || !strings.Contains(string(v.Str), "proto") {
		t.Fatalf("parse-error reply = %+v", v)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection survived a parse error: %v", err)
	}
	if n := ob.Metrics.Counter(obs.MNetParseErrors).Value(); n != 1 {
		t.Fatalf("parse errors metric = %v, want 1", n)
	}
}

// TestServerGracefulDrain is the no-lost-completions contract: a WAIT
// in flight when Shutdown begins still delivers its result before the
// connection closes.
func TestServerGracefulDrain(t *testing.T) {
	b := &fakeBackend{hold: true}
	s, _ := startServer(t, Config{Backend: b})
	c := dialT(t, s.Addr())
	id, err := c.Submit("SELECT COUNT(*) FROM lineitem", 1)
	if err != nil {
		t.Fatal(err)
	}

	type waitOut struct {
		res serve.Result
		err error
	}
	waited := make(chan waitOut, 1)
	go func() {
		res, err := c.Wait(id)
		waited <- waitOut{res, err}
	}()
	// Give the WAIT time to reach the server before draining.
	time.Sleep(50 * time.Millisecond)

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdown <- s.Shutdown(ctx)
	}()
	// Shutdown must block on the in-flight WAIT, not abandon it.
	select {
	case err := <-shutdown:
		t.Fatalf("Shutdown returned %v with a WAIT still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	b.release()
	out := <-waited
	if out.err != nil {
		t.Fatalf("in-flight WAIT lost its completion: %v", out.err)
	}
	if out.res.ID != id {
		t.Fatalf("drained WAIT result = %+v", out.res)
	}
	if err := <-shutdown; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Post-drain the server accepts nothing new.
	if _, err := Dial(s.Addr()); err == nil {
		t.Fatal("Dial succeeded after Shutdown")
	}
}

func TestServerShutdownDeadline(t *testing.T) {
	b := &fakeBackend{hold: true}
	s, _ := startServer(t, Config{Backend: b})
	c := dialT(t, s.Addr())
	id, err := c.Submit("SELECT 1", 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = c.Wait(id) // torn down by the deadline, error expected
	}()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline = %v, want DeadlineExceeded", err)
	}
	b.release()
}

// TestServerGoroutineLeak mirrors serve_stress_test.go: after serving
// traffic and closing, the accept loop and every connection handler
// must be gone.
func TestServerGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s, _ := startServer(t, Config{})
	clients := make([]*Client, 8)
	for i := range clients {
		clients[i] = dialT(t, s.Addr())
		id, err := clients[i].Submit("SELECT 1", uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := clients[i].Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		_ = c.Close()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
