package net

import (
	"errors"
	"sort"
	"sync"

	"saqp/internal/serve"
)

// DefaultMaxRedirects bounds how many -MOVED hops one cluster command
// follows before giving up.
const DefaultMaxRedirects = 3

// ClusterClientConfig configures a redirect-following cluster client.
type ClusterClientConfig struct {
	// Seeds are the instance addresses to bootstrap from; the first
	// reachable seed answers un-keyed commands and first-contact
	// submissions. Required.
	Seeds []string
	// Resolve maps an advertised address (as it appears in -MOVED
	// redirects and CLUSTER output) to the address to actually dial.
	// Nil means dial advertised addresses verbatim; tests use it to pin
	// stable advertised names onto ephemeral listen ports.
	Resolve func(addr string) string
	// MaxRedirects bounds the -MOVED hops per command. Default
	// DefaultMaxRedirects.
	MaxRedirects int
}

// ClusterTicket names one accepted submission and the instance that
// admitted it — WAIT must go back to the admitting connection.
type ClusterTicket struct {
	// Addr is the advertised address of the admitting instance.
	Addr string
	// ID is the shard-qualified submission id.
	ID string
}

// ClusterClient is a cluster-aware wire client: it pools one
// connection per instance, follows -MOVED redirects, and remembers
// each query's owning instance so repeat submissions go straight to
// the right shard. Safe for concurrent use; each underlying connection
// serializes its own exchanges.
type ClusterClient struct {
	cfg ClusterClientConfig

	mu       sync.Mutex
	conns    map[string]*Client
	affinity map[string]string
}

// DialCluster validates cfg and connects to the first reachable seed.
func DialCluster(cfg ClusterClientConfig) (*ClusterClient, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("net: ClusterClientConfig.Seeds is required")
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = DefaultMaxRedirects
	}
	cc := &ClusterClient{
		cfg:      cfg,
		conns:    make(map[string]*Client),
		affinity: make(map[string]string),
	}
	var err error
	for _, seed := range cfg.Seeds {
		if _, err = cc.conn(seed); err == nil {
			return cc, nil
		}
	}
	return nil, err
}

// conn returns the pooled connection for an advertised address,
// dialing (through Resolve) on first use.
func (cc *ClusterClient) conn(addr string) (*Client, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.conns[addr]; ok {
		return c, nil
	}
	dial := addr
	if cc.cfg.Resolve != nil {
		dial = cc.cfg.Resolve(addr)
	}
	c, err := Dial(dial)
	if err != nil {
		return nil, err
	}
	cc.conns[addr] = c
	return c, nil
}

// dropConn evicts a broken pooled connection so the next use redials.
func (cc *ClusterClient) dropConn(addr string) {
	cc.mu.Lock()
	c := cc.conns[addr]
	delete(cc.conns, addr)
	cc.mu.Unlock()
	if c != nil {
		_ = c.Close() //lint:allow saqpvet/errdrop the connection is already being discarded as broken
	}
}

// target picks where a keyed command should go first: the query's last
// known owner, else the first seed.
func (cc *ClusterClient) target(sql string) string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if addr, ok := cc.affinity[sql]; ok {
		return addr
	}
	return cc.cfg.Seeds[0]
}

// remember records a query's owning instance.
func (cc *ClusterClient) remember(sql, addr string) {
	cc.mu.Lock()
	cc.affinity[sql] = addr
	cc.mu.Unlock()
}

// keyed runs one query-keyed exchange, following -MOVED redirects up
// to the configured hop limit and updating the affinity map as it
// learns.
func (cc *ClusterClient) keyed(sql string, do func(c *Client) error) (string, error) {
	addr := cc.target(sql)
	var err error
	for hop := 0; hop <= cc.cfg.MaxRedirects; hop++ {
		var c *Client
		c, err = cc.conn(addr)
		if err != nil {
			return "", err
		}
		err = do(c)
		if err == nil {
			cc.remember(sql, addr)
			return addr, nil
		}
		if me, ok := AsMoved(err); ok {
			cc.remember(sql, me.Addr)
			addr = me.Addr
			continue
		}
		return "", err
	}
	return "", errors.New("net: redirect limit exceeded: " + err.Error())
}

// Submit admits one query on its owning shard, following redirects.
func (cc *ClusterClient) Submit(sql string, seed uint64) (ClusterTicket, error) {
	var id string
	addr, err := cc.keyed(sql, func(c *Client) error {
		var err error
		id, err = c.Submit(sql, seed)
		return err
	})
	if err != nil {
		return ClusterTicket{}, err
	}
	return ClusterTicket{Addr: addr, ID: id}, nil
}

// Wait blocks until the ticket's submission completes, on the
// connection that admitted it.
func (cc *ClusterClient) Wait(t ClusterTicket) (serve.Result, error) {
	c, err := cc.conn(t.Addr)
	if err != nil {
		return serve.Result{}, err
	}
	return c.Wait(t.ID)
}

// Explain returns the owning shard's compiled plan description,
// following redirects — the shard attribution line reflects the
// instance that would execute the query.
func (cc *ClusterClient) Explain(sql string) ([]string, error) {
	var lines []string
	_, err := cc.keyed(sql, func(c *Client) error {
		var err error
		lines, err = c.Explain(sql)
		return err
	})
	return lines, err
}

// Cluster returns the topology snapshot from the first reachable
// instance.
func (cc *ClusterClient) Cluster() ([]string, error) {
	var err error
	for _, seed := range cc.cfg.Seeds {
		var c *Client
		c, err = cc.conn(seed)
		if err != nil {
			continue
		}
		var lines []string
		lines, err = c.Cluster()
		if err == nil {
			return lines, nil
		}
		cc.dropConn(seed)
	}
	return nil, err
}

// Close tears down every pooled connection, in address order.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	addrs := make([]string, 0, len(cc.conns))
	for a := range cc.conns {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	conns := make([]*Client, 0, len(addrs))
	for _, a := range addrs {
		conns = append(conns, cc.conns[a])
	}
	cc.conns = make(map[string]*Client)
	cc.mu.Unlock()
	var err error
	for _, c := range conns {
		err = errors.Join(err, c.Close())
	}
	return err
}
