package net

import (
	"bufio"
	"bytes"
	"errors"
	stdnet "net"
	"strconv"
	"sync"

	"saqp/internal/net/proto"
	"saqp/internal/serve"
)

// ServerError is an error frame from the server, split into its typed
// code ("ERR", "BUSY", ...) and human-readable message.
type ServerError struct {
	// Code is the error's first word, the machine-readable class.
	Code string
	// Msg is the rest of the error line.
	Msg string
}

// Error implements the error interface.
func (e *ServerError) Error() string { return "server error " + e.Code + ": " + e.Msg }

// IsBusy reports whether err is the server's typed -BUSY backpressure
// refusal (connection limit, pending-ticket limit, or admission queue
// depth).
func IsBusy(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == "BUSY"
}

// MovedError is a cluster redirect: the addressed instance does not
// own the query's hash slot and names the instance that does.
type MovedError struct {
	// Slot is the query's hash slot.
	Slot int
	// Addr is the advertised address of the owning instance.
	Addr string
}

// Error implements the error interface in the wire's own shape.
func (e *MovedError) Error() string {
	return "server error MOVED: " + strconv.Itoa(e.Slot) + " " + e.Addr
}

// AsMoved unwraps a -MOVED redirect from err, if that is what it is.
func AsMoved(err error) (*MovedError, bool) {
	var me *MovedError
	if errors.As(err, &me) {
		return me, true
	}
	return nil, false
}

// parseMoved decodes a MOVED error payload ("<slot> <addr>"); nil when
// the payload is malformed (the caller falls back to *ServerError).
func parseMoved(msg []byte) *MovedError {
	slotRaw, addr, ok := bytes.Cut(msg, []byte{' '})
	if !ok || len(addr) == 0 {
		return nil
	}
	slot, err := strconv.Atoi(string(slotRaw))
	if err != nil || slot < 0 {
		return nil
	}
	return &MovedError{Slot: slot, Addr: string(addr)}
}

// Client is a blocking, connection-per-client wire client. Methods are
// safe for one goroutine at a time; a Client serializes one
// request/reply exchange per call.
type Client struct {
	mu  sync.Mutex
	c   stdnet.Conn
	br  *bufio.Reader
	enc *proto.Encoder
	lim proto.Limits
}

// Dial connects to a frontend server at addr.
func Dial(addr string) (*Client, error) {
	c, err := stdnet.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	lim := proto.DefaultLimits()
	return &Client{
		c:   c,
		br:  bufio.NewReaderSize(c, lim.MaxLine+2),
		enc: proto.NewEncoder(bufio.NewWriter(c)),
		lim: lim,
	}, nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c.Close()
}

// roundTrip sends one request array and decodes one reply frame,
// mapping error frames to *ServerError.
func (c *Client) roundTrip(args ...string) (proto.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Array(len(args))
	for _, a := range args {
		c.enc.BulkString(a)
	}
	if err := c.enc.Flush(); err != nil {
		return proto.Value{}, err
	}
	v, err := proto.ReadValue(c.br, c.lim)
	if err != nil {
		return proto.Value{}, err
	}
	if v.Kind == proto.KindError {
		code, msg, _ := bytes.Cut(v.Str, []byte{' '})
		if string(code) == "MOVED" {
			if me := parseMoved(msg); me != nil {
				return proto.Value{}, me
			}
		}
		return proto.Value{}, &ServerError{Code: string(code), Msg: string(msg)}
	}
	return v, nil
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	v, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if v.Kind != proto.KindSimple || string(v.Str) != "PONG" {
		return errors.New("net: unexpected PING reply")
	}
	return nil
}

// Submit admits one query with the given ground-truth seed and returns
// its ticket id for a later Wait.
func (c *Client) Submit(sql string, seed uint64) (string, error) {
	v, err := c.roundTrip("SUBMIT", sql, strconv.FormatUint(seed, 10))
	if err != nil {
		return "", err
	}
	if v.Kind != proto.KindSimple {
		return "", errors.New("net: unexpected SUBMIT reply kind")
	}
	return string(v.Str), nil
}

// Wait blocks until the identified submission completes and returns
// its result decoded from the wire (Result.SQL stays empty — the
// server does not echo query text).
func (c *Client) Wait(id string) (serve.Result, error) {
	v, err := c.roundTrip("WAIT", id)
	if err != nil {
		return serve.Result{}, err
	}
	return parseResult(v)
}

// Stats snapshots the server's engine counters as a name → value map.
func (c *Client) Stats() (map[string]int64, error) {
	v, err := c.roundTrip("STATS")
	if err != nil {
		return nil, err
	}
	pairs, err := pairFields(v)
	if err != nil {
		return nil, err
	}
	m := make(map[string]int64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i+1].Kind != proto.KindInt {
			return nil, errors.New("net: STATS value is not an integer")
		}
		m[string(pairs[i].Str)] = pairs[i+1].Int
	}
	return m, nil
}

// Explain returns the server's compiled plan description of one query.
func (c *Client) Explain(sql string) ([]string, error) {
	v, err := c.roundTrip("EXPLAIN", sql)
	if err != nil {
		return nil, err
	}
	return bulkLines(v)
}

// Metrics returns the server's metrics dump, one line per entry.
func (c *Client) Metrics() ([]string, error) {
	v, err := c.roundTrip("METRICS")
	if err != nil {
		return nil, err
	}
	return bulkLines(v)
}

// Cluster returns the server's cluster topology snapshot, one line per
// entry.
func (c *Client) Cluster() ([]string, error) {
	v, err := c.roundTrip("CLUSTER")
	if err != nil {
		return nil, err
	}
	return bulkLines(v)
}

// Quit asks the server to close the connection after acknowledging.
func (c *Client) Quit() error {
	_, err := c.roundTrip("QUIT")
	return err
}

// pairFields unwraps a flat name/value reply array.
func pairFields(v proto.Value) ([]proto.Value, error) {
	if v.Kind != proto.KindArray || len(v.Elems)%2 != 0 {
		return nil, errors.New("net: reply is not a name/value array")
	}
	return v.Elems, nil
}

// bulkLines unwraps an array-of-bulk-strings reply.
func bulkLines(v proto.Value) ([]string, error) {
	if v.Kind != proto.KindArray {
		return nil, errors.New("net: reply is not an array")
	}
	lines := make([]string, 0, len(v.Elems))
	for _, el := range v.Elems {
		if el.Kind != proto.KindBulk {
			return nil, errors.New("net: reply element is not a bulk string")
		}
		lines = append(lines, string(el.Str))
	}
	return lines, nil
}

// parseResult decodes a WAIT reply into the engine's Result struct.
func parseResult(v proto.Value) (serve.Result, error) {
	pairs, err := pairFields(v)
	if err != nil {
		return serve.Result{}, err
	}
	var r serve.Result
	for i := 0; i < len(pairs); i += 2 {
		name, val := string(pairs[i].Str), pairs[i+1]
		switch name {
		case "id":
			r.ID = string(val.Str)
		case "cache_hit":
			r.CacheHit = val.Int != 0
		case "wrd":
			r.WRD, err = floatField(name, val)
		case "predicted_sec":
			r.PredictedSec, err = floatField(name, val)
		case "sim_sec":
			r.SimSec, err = floatField(name, val)
		case "jobs":
			r.Jobs = int(val.Int)
		case "maps":
			r.Maps = int(val.Int)
		case "reduces":
			r.Reduces = int(val.Int)
		case "attempts":
			r.Attempts = int(val.Int)
		case "faulted":
			r.Faulted = val.Int != 0
		case "model_version":
			r.ModelVersion = int(val.Int)
		}
		if err != nil {
			return serve.Result{}, err
		}
	}
	return r, nil
}

// floatField parses one fixed-precision float reply field.
func floatField(name string, v proto.Value) (float64, error) {
	if v.Kind != proto.KindBulk {
		return 0, errors.New("net: field " + name + " is not a bulk float")
	}
	f, err := strconv.ParseFloat(string(v.Str), 64)
	if err != nil {
		return 0, errors.New("net: field " + name + ": " + err.Error())
	}
	return f, nil
}
