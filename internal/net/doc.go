// Package net is the network query frontend: a TCP server speaking a
// RESP-style line protocol (see saqp/internal/net/proto for the wire
// codec) layered on the serving engine, plus the matching client.
//
// Commands: SUBMIT <sql> [seed] admits a query and replies with a
// ticket id; WAIT <id> blocks until that submission completes and
// replies with a flat name/value array; STATS snapshots the engine
// counters; EXPLAIN <sql> replies with the compiled plan description;
// METRICS dumps the metrics registry; PING and QUIT do what they say.
// Requests arrive either as arrays of bulk strings or as inline
// CRLF-terminated lines (telnet-friendly).
//
// The server enforces a connection limit, per-connection read and
// write deadlines, and admission backpressure: when the SWRD queue is
// past a configurable depth (or the engine itself refuses with a full
// queue) SUBMIT earns a typed -BUSY error instead of queueing.
// Shutdown drains gracefully — the listener closes, idle connections
// are kicked, and in-flight commands (a WAIT blocked on a running
// query, in particular) complete and flush before their connections
// close, so no accepted submission loses its completion.
//
// This package is the wall-clock boundary of the stack, like the root
// facade: deadlines and drains are wall-time concerns, so the package
// deliberately stays outside analysis.DeterministicPackages while the
// pure codec underneath joins it.
package net
