package catalog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"

	"saqp/internal/dataset"
	"saqp/internal/histogram"
	"saqp/internal/sketch"
)

// DefaultBuckets is the histogram resolution used when callers do not
// specify one.
const DefaultBuckets = 64

// ColumnStats summarises one column.
type ColumnStats struct {
	Name     string       `json:"name"`
	Kind     dataset.Kind `json:"kind"`
	Distinct int64        `json:"distinct"`
	AvgWidth float64      `json:"avg_width"`
	// Min and Max bound the numeric domain (ints, floats, dates). For
	// string columns both are 0 and Hist is nil.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Hist is the equi-width histogram for numeric columns.
	Hist *histogram.Histogram `json:"hist,omitempty"`
	// Clustered records whether equal values are physically adjacent —
	// selects between the two S_comb cases of Eq. 2.
	Clustered bool `json:"clustered"`
	// TopShare is the row share of the single most frequent value — the
	// most-common-value statistic that exposes hash-partition skew which
	// equi-width buckets smear out.
	TopShare float64 `json:"top_share"`
	// Ref is "table.column" when this column is a foreign key.
	Ref string `json:"ref,omitempty"`
	// Sketch holds the probabilistic summaries built alongside the exact
	// scan. Only Collect populates it; the analytic FromSchema path has
	// no rows to sketch, so it stays nil there.
	Sketch *SketchStats `json:"sketch,omitempty"`
}

// SketchStats is the probabilistic-statistics companion to a column's
// exact summary: an HLL for distinct counts, a count-min sketch for
// per-value frequencies, and the running heavy-hitter count observed
// while the sketch was fed. The selectivity tier substitutes these for
// Distinct/TopShare when running in sketch mode.
type SketchStats struct {
	HLL *sketch.HLL `json:"hll,omitempty"`
	CMS *sketch.CMS `json:"cms,omitempty"`
	// TopCount is the count-min estimate for the most frequent value,
	// captured as a running max during collection (each insert's fresh
	// estimate is compared against the best so far, so no second pass
	// over the key space is needed).
	TopCount uint64 `json:"top_count,omitempty"`
}

// TableStats summarises one table.
type TableStats struct {
	Name          string                  `json:"name"`
	Rows          int64                   `json:"rows"`
	Bytes         int64                   `json:"bytes"`
	AvgTupleWidth float64                 `json:"avg_tuple_width"`
	Columns       map[string]*ColumnStats `json:"columns"`
}

// Column returns stats for the named column or nil.
func (t *TableStats) Column(name string) *ColumnStats {
	return t.Columns[name]
}

// Catalog maps table names to statistics.
type Catalog struct {
	Tables map[string]*TableStats `json:"tables"`
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{Tables: make(map[string]*TableStats)}
}

// Table returns stats for the named table, or an error naming the table.
func (c *Catalog) Table(name string) (*TableStats, error) {
	t, ok := c.Tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no statistics for table %q", name)
	}
	return t, nil
}

// Put installs (or replaces) statistics for a table.
func (c *Catalog) Put(t *TableStats) { c.Tables[t.Name] = t }

// Fingerprint returns a short stable hash of the catalog's statistical
// identity: table names, row/byte counts, tuple widths and per-column
// (distinct, domain) summaries. Two catalogs with equal fingerprints
// yield the same estimates for the same plan, so the serving layer folds
// the fingerprint into its plan/estimate cache keys — a server rebuilt
// over fresh statistics can never serve stale cached estimates. Tables
// and columns hash in sorted-name order, so the value is deterministic
// across runs.
func (c *Catalog) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	num := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	names := make([]string, 0, len(c.Tables))
	for name := range c.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.Tables[name]
		h.Write([]byte(name))
		h.Write([]byte{0})
		num(uint64(t.Rows))
		num(uint64(t.Bytes))
		num(math.Float64bits(t.AvgTupleWidth))
		cols := make([]string, 0, len(t.Columns))
		for cn := range t.Columns {
			cols = append(cols, cn)
		}
		sort.Strings(cols)
		for _, cn := range cols {
			cs := t.Columns[cn]
			h.Write([]byte(cn))
			h.Write([]byte{0})
			num(uint64(cs.Distinct))
			num(math.Float64bits(cs.Min))
			num(math.Float64bits(cs.Max))
			num(math.Float64bits(cs.TopShare))
			if cs.Hist != nil {
				num(uint64(len(cs.Hist.Buckets)))
			}
		}
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// Collect scans a materialised relation and produces exact statistics with
// histograms of the given bucket count (DefaultBuckets if n <= 0).
func Collect(rel *dataset.Relation, n int) *TableStats {
	if n <= 0 {
		n = DefaultBuckets
	}
	s := rel.Schema
	ts := &TableStats{
		Name:    s.Name,
		Rows:    rel.NumRows(),
		Bytes:   rel.Bytes(),
		Columns: make(map[string]*ColumnStats, len(s.Columns)),
	}
	if ts.Rows > 0 {
		ts.AvgTupleWidth = float64(ts.Bytes) / float64(ts.Rows)
	}
	for ci := range s.Columns {
		col := &s.Columns[ci]
		cs := collectColumn(rel, ci, col, n)
		ts.Columns[cs.Name] = cs
	}
	return ts
}

func collectColumn(rel *dataset.Relation, ci int, col *dataset.Column, n int) *ColumnStats {
	cs := &ColumnStats{Name: col.Name, Kind: col.Kind, Ref: col.Ref}
	freq := make(map[string]int64)
	distinct := make(map[string]struct{})
	sk := &SketchStats{
		HLL: sketch.NewHLL(sketch.DefaultHLLPrecision),
		CMS: sketch.NewCMS(sketch.DefaultCMSDepth, sketch.DefaultCMSWidth),
	}
	var widthSum float64
	numeric := col.Kind != dataset.KindString
	min, max := math.Inf(1), math.Inf(-1)
	var vals []float64
	if numeric {
		vals = make([]float64, 0, len(rel.Rows))
	}
	adjacentEqual := 0
	for i, row := range rel.Rows {
		v := row[ci]
		distinct[v.Key()] = struct{}{}
		freq[v.Key()]++
		// One hash of the same identity the exact maps key on feeds both
		// sketches; the running max turns the count-min into a
		// heavy-hitter counter without a second pass.
		h := sketch.Hash64String(v.Key())
		sk.HLL.Add(h)
		sk.CMS.Add(h)
		if c := sk.CMS.Count(h); c > sk.TopCount {
			sk.TopCount = c
		}
		widthSum += float64(v.Width())
		if numeric {
			f := v.Num()
			vals = append(vals, f)
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		if i > 0 && v.Equal(rel.Rows[i-1][ci]) {
			adjacentEqual++
		}
	}
	rows := len(rel.Rows)
	cs.Distinct = int64(len(distinct))
	cs.Sketch = sk
	if rows > 0 {
		cs.AvgWidth = widthSum / float64(rows)
		var top int64
		for _, c := range freq {
			if c > top {
				top = c
			}
		}
		cs.TopShare = float64(top) / float64(rows)
	}
	// A column is "clustered" when equal values sit together far more often
	// than random placement would produce. Random placement yields about
	// rows/distinct adjacent pairs; require 4x that, and at least 10% runs.
	if rows > 1 && cs.Distinct > 0 {
		expectRandom := float64(rows) / float64(cs.Distinct)
		cs.Clustered = float64(adjacentEqual) > 4*expectRandom &&
			float64(adjacentEqual) > 0.1*float64(rows)
	}
	if numeric && rows > 0 {
		hi := max + 1 // domain is [min, max+1) so max lands in the last bucket
		cs.Min, cs.Max = min, max
		nb := n
		if int64(nb) > cs.Distinct {
			nb = int(cs.Distinct)
		}
		cs.Hist = histogram.Build(vals, min, hi, nb)
	}
	return cs
}

// FromSchema derives statistics analytically at scale factor sf without
// materialising any rows. Histograms are synthesized from the declared
// distribution: uniform/sequential/clustered columns get flat bucket
// weights; Zipf columns get bucket masses integrated from the Zipf density,
// so the skew the estimator must cope with is preserved.
func FromSchema(s *dataset.Schema, sf float64, n int) *TableStats {
	if n <= 0 {
		n = DefaultBuckets
	}
	rows := s.RowsAt(sf)
	ts := &TableStats{
		Name:          s.Name,
		Rows:          rows,
		Bytes:         s.BytesAt(sf),
		AvgTupleWidth: float64(s.AvgTupleWidth()),
		Columns:       make(map[string]*ColumnStats, len(s.Columns)),
	}
	for ci := range s.Columns {
		col := &s.Columns[ci]
		// domainCard is the declared key-domain size (values are drawn from
		// the full domain even when few rows exist); distinct is capped at
		// the row count.
		domainCard := col.Card(sf)
		if domainCard < 1 {
			domainCard = 1
		}
		distinct := domainCard
		if distinct > rows {
			distinct = rows
		}
		cs := &ColumnStats{
			Name:      col.Name,
			Kind:      col.Kind,
			Distinct:  distinct,
			AvgWidth:  float64(col.AvgWidth()),
			Clustered: col.Dist == dataset.DistClustered || col.Dist == dataset.DistSequential,
			Ref:       col.Ref,
			TopShare:  analyticTopShare(col, domainCard, rows),
		}
		if col.Kind != dataset.KindString {
			lo := domainLo(col)
			width := domainWidth(col, domainCard)
			cs.Min, cs.Max = lo, lo+width
			// Never use more buckets than distinct domain values: integer
			// rounding would otherwise pile all rows into one bucket.
			nb := n
			if int64(nb) > domainCard {
				nb = int(domainCard)
			}
			var weights []float64
			if col.Dist == dataset.DistZipf {
				weights = zipfBucketWeights(col.Skew, domainCard, nb)
			}
			cs.Hist = histogram.Synthesize(rows, domainCard, lo, nb, weights)
			// Synthesize labels the domain as [lo, lo+card) in key steps.
			// For float columns one key step is 0.01 units, and the key→
			// value map is affine, so relabelling the axis is exact.
			if col.Kind == dataset.KindFloat {
				cs.Hist.Lo, cs.Hist.Hi = lo, lo+width
			}
		}
		ts.Columns[cs.Name] = cs
	}
	return ts
}

// domainLo returns the smallest numeric value the column generates.
func domainLo(col *dataset.Column) float64 { return float64(col.Lo) }

// domainWidth returns the numeric width of the generated domain.
func domainWidth(col *dataset.Column, card int64) float64 {
	if col.Kind == dataset.KindFloat {
		return float64(card) * 0.01
	}
	return float64(card)
}

// analyticTopShare derives the most-common-value share from the declared
// distribution: the head of the Zipf law for skewed columns, 1/card for
// the rest.
func analyticTopShare(col *dataset.Column, card, rows int64) float64 {
	if rows <= 0 || card <= 0 {
		return 0
	}
	uniform := 1 / float64(card)
	if col.Dist != dataset.DistZipf {
		return math.Min(1, uniform)
	}
	s := col.Skew
	if s <= 1 {
		s = 1.2
	}
	// Normalising constant of P(k) ∝ (1+k)^-s over k ∈ [0, card): partial
	// sum of the head plus an integral tail.
	norm := 0.0
	head := int64(1000)
	if head > card {
		head = card
	}
	for k := int64(0); k < head; k++ {
		norm += math.Pow(float64(1+k), -s)
	}
	if card > head {
		// ∫_{head}^{card} (1+x)^-s dx
		norm += (math.Pow(float64(1+head), 1-s) - math.Pow(float64(1+card), 1-s)) / (s - 1)
	}
	if norm <= 0 {
		return uniform
	}
	return math.Min(1, 1/norm)
}

// zipfBucketWeights integrates the Zipf(s, v=1) density 1/(1+x)^s over n
// equal-width slices of [0, card).
func zipfBucketWeights(s float64, card int64, n int) []float64 {
	if s <= 1 {
		s = 1.2
	}
	antideriv := func(x float64) float64 {
		// ∫ (1+x)^(-s) dx = (1+x)^(1-s) / (1-s)
		return math.Pow(1+x, 1-s) / (1 - s)
	}
	w := make([]float64, n)
	step := float64(card) / float64(n)
	for i := range w {
		lo, hi := float64(i)*step, float64(i+1)*step
		w[i] = antideriv(hi) - antideriv(lo)
		if w[i] < 0 {
			w[i] = 0
		}
	}
	return w
}

// Encode serialises the catalog to JSON (the stand-in for statistics files
// stored on HDFS).
func (c *Catalog) Encode() ([]byte, error) { return json.Marshal(c) }

// Decode parses a catalog produced by Encode.
func Decode(data []byte) (*Catalog, error) {
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("catalog: decode: %w", err)
	}
	if c.Tables == nil {
		c.Tables = make(map[string]*TableStats)
	}
	return &c, nil
}

// CollectAll builds a catalog by materialising and scanning every schema at
// scale factor sf with the given seed — the ground-truth statistics path.
func CollectAll(schemas []*dataset.Schema, sf float64, seed uint64, n int) *Catalog {
	c := New()
	for _, s := range schemas {
		rel := dataset.Generate(s, sf, seed)
		c.Put(Collect(rel, n))
	}
	return c
}

// FromSchemas builds a catalog analytically for every schema at scale sf.
func FromSchemas(schemas []*dataset.Schema, sf float64, n int) *Catalog {
	c := New()
	for _, s := range schemas {
		c.Put(FromSchema(s, sf, n))
	}
	return c
}
