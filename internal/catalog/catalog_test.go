package catalog

import (
	"math"
	"testing"

	"saqp/internal/dataset"
)

func TestCollectBasics(t *testing.T) {
	rel := dataset.Generate(dataset.Nation(), 1, 1)
	ts := Collect(rel, 16)
	if ts.Rows != 25 {
		t.Fatalf("rows = %d, want 25", ts.Rows)
	}
	if ts.AvgTupleWidth != 98 {
		t.Fatalf("avg tuple width = %v, want 98", ts.AvgTupleWidth)
	}
	nk := ts.Column("n_nationkey")
	if nk == nil || nk.Distinct != 25 {
		t.Fatalf("n_nationkey stats wrong: %+v", nk)
	}
	if nk.Hist == nil {
		t.Fatal("numeric column missing histogram")
	}
	if name := ts.Column("n_name"); name == nil || name.Hist != nil {
		t.Fatal("string column should have no histogram")
	}
}

func TestCollectDistinctCounts(t *testing.T) {
	rel := dataset.Generate(dataset.LineItem(), 0.002, 2)
	ts := Collect(rel, 32)
	q := ts.Column("l_quantity")
	if q.Distinct < 40 || q.Distinct > 50 {
		t.Fatalf("l_quantity distinct = %d, expected near 50", q.Distinct)
	}
	if q.Min < 1 || q.Max > 50 {
		t.Fatalf("l_quantity bounds [%v,%v]", q.Min, q.Max)
	}
}

func TestCollectClusteredDetection(t *testing.T) {
	rel := dataset.Generate(dataset.LineItem(), 0.002, 3)
	ts := Collect(rel, 32)
	if !ts.Column("l_orderkey").Clustered {
		t.Fatal("l_orderkey should be detected as clustered")
	}
	if ts.Column("l_partkey").Clustered {
		t.Fatal("l_partkey should not be detected as clustered")
	}
}

func TestCollectRefPropagated(t *testing.T) {
	rel := dataset.Generate(dataset.LineItem(), 0.001, 3)
	ts := Collect(rel, 8)
	if ref := ts.Column("l_orderkey").Ref; ref != "orders.o_orderkey" {
		t.Fatalf("ref = %q", ref)
	}
}

func TestFromSchemaMatchesCollect(t *testing.T) {
	// Analytic stats must approximate scanned stats at the same sf.
	const sf = 0.005
	s := dataset.Orders()
	scanned := Collect(dataset.Generate(s, sf, 4), 32)
	synth := FromSchema(s, sf, 32)

	if synth.Rows != scanned.Rows {
		t.Fatalf("rows: synth %d vs scanned %d", synth.Rows, scanned.Rows)
	}
	if math.Abs(synth.AvgTupleWidth-scanned.AvgTupleWidth) > 1 {
		t.Fatalf("avg width: synth %v vs scanned %v", synth.AvgTupleWidth, scanned.AvgTupleWidth)
	}
	// Histogram shape agreement on a uniform date column.
	sc, sy := scanned.Column("o_orderdate"), synth.Column("o_orderdate")
	mid := (sc.Min + sc.Max) / 2
	if d := math.Abs(sc.Hist.SelectivityLT(mid) - sy.Hist.SelectivityLT(mid)); d > 0.05 {
		t.Fatalf("histogram shapes diverge at mid: %v", d)
	}
}

func TestFromSchemaZipfSkewPreserved(t *testing.T) {
	// ss_item_sk is Zipf; the first bucket should hold far more than 1/n of
	// the rows in both scanned and synthesized stats.
	const sf = 0.01
	s := dataset.StoreSales()
	scanned := Collect(dataset.Generate(s, sf, 5), 32)
	synth := FromSchema(s, sf, 32)
	scHot := float64(scanned.Column("ss_item_sk").Hist.Buckets[0].Count) / float64(scanned.Rows)
	syHot := float64(synth.Column("ss_item_sk").Hist.Buckets[0].Count) / float64(synth.Rows)
	if scHot < 0.1 || syHot < 0.1 {
		t.Fatalf("zipf hot bucket too light: scanned %v synth %v", scHot, syHot)
	}
	if math.Abs(scHot-syHot) > 0.15 {
		t.Fatalf("zipf skew mismatch: scanned %v synth %v", scHot, syHot)
	}
}

func TestFromSchemaCardinalityCappedByRows(t *testing.T) {
	ts := FromSchema(dataset.Supplier(), 0.0001, 8) // 1 row
	for _, cs := range ts.Columns {
		if cs.Distinct > ts.Rows {
			t.Fatalf("column %s distinct %d > rows %d", cs.Name, cs.Distinct, ts.Rows)
		}
	}
}

func TestFromSchemaClusteredFlag(t *testing.T) {
	ts := FromSchema(dataset.LineItem(), 0.01, 8)
	if !ts.Column("l_orderkey").Clustered {
		t.Fatal("l_orderkey should be clustered in synthetic stats")
	}
	if ts.Column("l_partkey").Clustered {
		t.Fatal("l_partkey should not be clustered")
	}
}

func TestCatalogLookup(t *testing.T) {
	c := New()
	c.Put(FromSchema(dataset.Nation(), 1, 4))
	if _, err := c.Table("nation"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("ghost"); err == nil {
		t.Fatal("lookup of missing table should error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := FromSchemas([]*dataset.Schema{dataset.Nation(), dataset.Region()}, 1, 8)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c2.Table("nation")
	if err != nil {
		t.Fatal(err)
	}
	if n.Rows != 25 {
		t.Fatalf("decoded rows = %d", n.Rows)
	}
	if n.Column("n_nationkey").Hist == nil {
		t.Fatal("decoded histogram missing")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("]")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	c, err := Decode([]byte("{}"))
	if err != nil || c.Tables == nil {
		t.Fatal("Decode of empty object should give usable catalog")
	}
}

func TestCollectAllAndFromSchemas(t *testing.T) {
	schemas := []*dataset.Schema{dataset.Nation(), dataset.Region(), dataset.Supplier()}
	cg := CollectAll(schemas, 0.01, 6, 16)
	cs := FromSchemas(schemas, 0.01, 16)
	for _, name := range []string{"nation", "region", "supplier"} {
		g, err := cg.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := cs.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Rows != s.Rows {
			t.Fatalf("%s: scanned %d rows vs synth %d", name, g.Rows, s.Rows)
		}
	}
}

func TestFloatDomainHistogram(t *testing.T) {
	// Float histograms must cover the actual generated float domain.
	const sf = 0.01
	rel := dataset.Generate(dataset.Supplier(), sf, 7)
	scanned := Collect(rel, 16)
	synth := FromSchema(dataset.Supplier(), sf, 16)
	sc, sy := scanned.Column("s_acctbal"), synth.Column("s_acctbal")
	if sy.Hist.Lo > sc.Min+1 || sy.Hist.Hi < sc.Max-1 {
		t.Fatalf("synthetic float domain [%v,%v) does not cover scanned [%v,%v]",
			sy.Hist.Lo, sy.Hist.Hi, sc.Min, sc.Max)
	}
	q := (sc.Min + sc.Max) / 2
	if d := math.Abs(sc.Hist.SelectivityLT(q) - sy.Hist.SelectivityLT(q)); d > 0.06 {
		t.Fatalf("float histogram shapes diverge: %v", d)
	}
}
