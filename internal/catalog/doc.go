// Package catalog maintains the offline table statistics that the paper's
// selectivity estimator consumes: row counts, average tuple widths,
// per-column distinct cardinalities, physical clustering flags, and
// equi-width histograms (Section 3.1: "Off-line histograms are built for
// the attributes of the input table ... and stored on HDFS").
//
// Statistics come from two paths that must agree in expectation:
//
//   - Collect scans a materialised relation — ground truth at laptop scale,
//     used by tests to validate the synthetic path;
//   - FromSchema derives statistics analytically from a schema at any scale
//     factor — how 100 GB+ experiments get statistics without 100 GB of RAM.
package catalog
