package learn

import (
	"errors"
	"fmt"
	"math"

	"saqp/internal/predict"
)

// Weighting selects the per-sample weight scheme an online Learner
// applies, mirroring the batch fitters in internal/predict.
type Weighting int

const (
	// Uniform weights every sample equally — the online counterpart of
	// predict.Fit.
	Uniform Weighting = iota
	// Relative weights each sample by 1/t^1.5 (t = observed seconds) —
	// the online counterpart of predict.FitRelative, tuning the fit
	// toward relative rather than absolute residuals.
	Relative
)

// ErrUnderdetermined is returned by Model and the prediction methods
// while the learner has seen fewer samples than it has coefficients.
var ErrUnderdetermined = errors.New("learn: fewer samples than coefficients")

// zCritical is the two-sided 95% normal quantile used for the
// confidence band returned by PredictWithInterval.
const zCritical = 1.96

// Learner is a recursive-least-squares online fitter in information
// form: it accumulates the weighted normal equations XᵀWX and XᵀWy with
// one rank-1 update per sample — in the exact floating-point operation
// order the batch predict.FitWeighted uses — and solves lazily through
// predict.SolveNormal. A Learner fed N samples therefore produces
// bit-identical coefficients to a batch Fit/FitRelative over the same
// stream, which is the property the RLS≡OLS tests pin down.
//
// A Learner is not goroutine-safe; Registry serialises access.
type Learner struct {
	weighting Weighting

	k   int // coefficient count (features + intercept); fixed by first sample
	xtx [][]float64
	xty []float64
	row []float64

	n int // samples absorbed

	// Prequential (predict-then-absorb) residual accumulation: each
	// sample is scored by the model fitted to the samples before it,
	// giving an honest out-of-sample variance estimate for the
	// confidence band.
	sqErr float64 // Σ w·(pred−target)²
	preqN int

	cached *predict.Model
	dirty  bool
}

// NewLearner returns an empty learner with the given weighting.
func NewLearner(w Weighting) *Learner { return &Learner{weighting: w} }

// sampleWeight reproduces the batch fitters' weights exactly:
// predict.Fit uses 1, predict.FitRelative uses 1/(t·√t) with the same
// 1e-6 floor on |target|.
func sampleWeight(w Weighting, target float64) float64 {
	if w != Relative {
		return 1
	}
	t := math.Abs(target)
	if t < 1e-6 {
		t = 1e-6
	}
	return 1 / (t * math.Sqrt(t))
}

// N returns how many samples the learner has absorbed.
func (l *Learner) N() int { return l.n }

// Observe absorbs one (features, target) sample: it first scores the
// sample against the current model (prequential residual for the
// confidence band), then applies the rank-1 update to the accumulated
// normal equations. The feature width is fixed by the first sample; a
// later sample with a different width is rejected.
func (l *Learner) Observe(features []float64, target float64) error {
	k := len(features) + 1
	if l.k == 0 {
		l.k = k
		l.xtx = make([][]float64, k)
		for i := range l.xtx {
			l.xtx[i] = make([]float64, k)
		}
		l.xty = make([]float64, k)
		l.row = make([]float64, k)
	}
	if k != l.k {
		return fmt.Errorf("learn: inconsistent feature width %d vs %d", k, l.k)
	}
	w := sampleWeight(l.weighting, target)
	if m, err := l.Model(); err == nil {
		if pred, perr := m.PredictChecked(features); perr == nil {
			e := pred - target
			l.sqErr += w * e * e
			l.preqN++
		}
	}
	l.row[0] = 1
	copy(l.row[1:], features)
	for i := 0; i < l.k; i++ {
		for j := 0; j < l.k; j++ {
			l.xtx[i][j] += w * l.row[i] * l.row[j]
		}
		l.xty[i] += w * l.row[i] * target
	}
	l.n++
	l.dirty = true
	return nil
}

// Model solves the accumulated normal equations and returns the fitted
// model, caching the solution until the next Observe. The returned
// model must be treated as read-only; a later Observe replaces (never
// mutates) it, which is what lets the registry freeze a promoted
// champion while the learner keeps absorbing samples.
func (l *Learner) Model() (*predict.Model, error) {
	if l.k == 0 || l.n < l.k {
		return nil, ErrUnderdetermined
	}
	if !l.dirty && l.cached != nil {
		return l.cached, nil
	}
	theta, err := predict.SolveNormal(l.xtx, l.xty)
	if err != nil {
		l.cached = nil
		return nil, err
	}
	l.cached = &predict.Model{Theta: theta}
	l.dirty = false
	return l.cached, nil
}

// Predict evaluates the current model on one feature vector.
func (l *Learner) Predict(features []float64) (float64, error) {
	m, err := l.Model()
	if err != nil {
		return 0, err
	}
	return m.PredictChecked(features)
}

// PredictWithInterval returns the point prediction and the half-width
// of its 95% confidence band: z·√(s²·(1/w_x + xᵀ(XᵀWX)⁻¹x)), where s²
// is the prequential weighted residual variance, 1/w_x restores the
// heteroscedastic noise scale at the predicted magnitude (Relative
// weighting models noise growing with the target), and the quadratic
// form is the leverage of x under the accumulated design. The width is
// 0 while no prequential residuals have been collected.
func (l *Learner) PredictWithInterval(features []float64) (pred, halfWidth float64, err error) {
	m, err := l.Model()
	if err != nil {
		return 0, 0, err
	}
	pred, err = m.PredictChecked(features)
	if err != nil {
		return 0, 0, err
	}
	if l.preqN == 0 {
		return pred, 0, nil
	}
	s2 := l.sqErr / float64(l.preqN)
	x := make([]float64, l.k)
	x[0] = 1
	copy(x[1:], features)
	z, err := predict.SolveNormal(l.xtx, x)
	if err != nil {
		return pred, 0, nil
	}
	var leverage float64
	for i := range x {
		leverage += x[i] * z[i]
	}
	if leverage < 0 {
		leverage = 0
	}
	wx := sampleWeight(l.weighting, pred)
	v := s2 * (1/wx + leverage)
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return pred, 0, nil
	}
	return pred, zCritical * math.Sqrt(v), nil
}
