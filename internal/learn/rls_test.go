package learn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"saqp/internal/predict"
	"saqp/internal/sim"
)

// synthSamples draws n samples of a noisy 3-feature plane from a seeded
// generator.
func synthSamples(seed uint64, n int) []predict.Sample {
	r := sim.New(seed)
	truth := []float64{4, 2.5, -1.25, 0.5}
	out := make([]predict.Sample, 0, n)
	for i := 0; i < n; i++ {
		f := []float64{r.Range(1, 100), r.Range(-20, 20), r.Range(0, 8)}
		y := truth[0] + truth[1]*f[0] + truth[2]*f[1] + truth[3]*f[2] + r.Normal(0, 0.5)
		out = append(out, predict.Sample{Features: f, Target: y})
	}
	return out
}

// maxThetaDiff is the largest absolute coefficient difference.
func maxThetaDiff(a, b *predict.Model) float64 {
	var d float64
	for i := range a.Theta {
		d = math.Max(d, math.Abs(a.Theta[i]-b.Theta[i]))
	}
	return d
}

// TestRLSMatchesBatchFit is the tentpole property: an online learner fed
// N samples one at a time produces the same coefficients as the batch
// fitter over the identical stream, for both weighting schemes. The
// implementation shares the accumulation order and solve path with the
// batch fitters, so the tolerance here (1e-6) is loose — the actual
// agreement is bit-for-bit.
func TestRLSMatchesBatchFit(t *testing.T) {
	const tol = 1e-6
	for _, tc := range []struct {
		name  string
		w     Weighting
		batch func([]predict.Sample) (*predict.Model, error)
	}{
		{"uniform ≡ Fit", Uniform, predict.Fit},
		{"relative ≡ FitRelative", Relative, predict.FitRelative},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := func(seedRaw uint16, nRaw uint8) bool {
				n := 10 + int(nRaw)%200
				samples := synthSamples(uint64(seedRaw)+1, n)
				l := NewLearner(tc.w)
				for _, s := range samples {
					if err := l.Observe(s.Features, s.Target); err != nil {
						return false
					}
				}
				online, err := l.Model()
				if err != nil {
					return false
				}
				batch, err := tc.batch(samples)
				if err != nil {
					return false
				}
				return maxThetaDiff(online, batch) <= tol
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRLSMatchesBatchNearCollinear drives both fitters through the ridge
// path: two almost-identical features give a near-singular Gram matrix,
// where agreement depends on the online learner reusing the exact batch
// regularisation.
func TestRLSMatchesBatchNearCollinear(t *testing.T) {
	r := sim.New(11)
	var samples []predict.Sample
	l := NewLearner(Relative)
	for i := 0; i < 120; i++ {
		x := r.Range(1, 50)
		f := []float64{x, x * (1 + 1e-10), r.Range(0, 5)}
		y := 2 + 3*x + r.Normal(0, 0.1)
		samples = append(samples, predict.Sample{Features: f, Target: y})
		if err := l.Observe(f, y); err != nil {
			t.Fatal(err)
		}
	}
	online, err := l.Model()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := predict.FitRelative(samples)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxThetaDiff(online, batch); d > 1e-6 {
		t.Fatalf("near-collinear coefficient gap %g exceeds 1e-6", d)
	}
}

func TestLearnerUnderdetermined(t *testing.T) {
	l := NewLearner(Uniform)
	if _, err := l.Model(); !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("empty learner Model err = %v", err)
	}
	// 3 features + intercept = 4 coefficients; 3 samples stay short.
	for i := 0; i < 3; i++ {
		if err := l.Observe([]float64{1, float64(i), 2}, 5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Model(); !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("underdetermined learner Model err = %v", err)
	}
	if err := l.Observe([]float64{9, 9}, 1); err == nil {
		t.Fatal("width change should be rejected")
	}
	if l.N() != 3 {
		t.Fatalf("N = %d after a rejected sample, want 3", l.N())
	}
}

func TestPredictWithInterval(t *testing.T) {
	l := NewLearner(Uniform)
	r := sim.New(7)
	for i := 0; i < 200; i++ {
		x := r.Range(0, 10)
		l.Observe([]float64{x}, 1+2*x+r.Normal(0, 0.3))
	}
	center, wCenter, err := l.PredictWithInterval([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if wCenter <= 0 {
		t.Fatalf("interval half-width = %v, want > 0 after prequential residuals", wCenter)
	}
	if math.Abs(center-11) > 1 {
		t.Fatalf("prediction at x=5 is %v, want ≈11", center)
	}
	// Extrapolation carries more leverage, so the band must widen.
	_, wEdge, err := l.PredictWithInterval([]float64{40})
	if err != nil {
		t.Fatal(err)
	}
	if wEdge <= wCenter {
		t.Fatalf("extrapolated width %v should exceed interior width %v", wEdge, wCenter)
	}
	// The band should cover the truth at an interior point.
	if truth := 1.0 + 2*5; math.Abs(center-truth) > wCenter+0.5 {
		t.Fatalf("band [%v ± %v] far from truth %v", center, wCenter, truth)
	}
}

// TestModelReplacedNotMutated pins the freezing property the registry
// relies on: a model handed out before further Observes keeps its
// coefficients.
func TestModelReplacedNotMutated(t *testing.T) {
	l := NewLearner(Uniform)
	r := sim.New(3)
	for i := 0; i < 50; i++ {
		x := r.Range(0, 10)
		l.Observe([]float64{x}, 2*x+r.Normal(0, 0.1))
	}
	m1, err := l.Model()
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64{}, m1.Theta...)
	for i := 0; i < 50; i++ {
		l.Observe([]float64{r.Range(0, 10)}, 100) // shift the fit hard
	}
	if _, err := l.Model(); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if m1.Theta[i] != before[i] {
			t.Fatal("earlier model's coefficients were mutated by later Observes")
		}
	}
}
