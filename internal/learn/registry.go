package learn

import (
	"encoding/json"
	"math"
	"sort"
	"sync"

	"saqp/internal/obs"
	"saqp/internal/plan"
	"saqp/internal/predict"
)

// Config assembles a Registry. The zero value is usable: a cold
// registry with the default window, minimum-sample floor and promotion
// margin, no seed champion, and no instrumentation.
type Config struct {
	// Window is the size of the trailing per-job relative-error windows
	// the promotion rule compares. Default 100.
	Window int
	// MinSamples is how many job samples a cold registry (no champion)
	// must absorb before it bootstraps the first champion. Default 50.
	MinSamples int
	// PromoteMargin is the relative improvement the challenger's full
	// error window must show over the champion's before promotion:
	// challenger < champion·(1−margin). Default 0.05.
	PromoteMargin float64
	// Observer receives saqp_learn_* metrics and promotion trace
	// instants; nil disables instrumentation.
	Observer *obs.Observer
	// Champion and ChampionTasks, when both non-nil, seed the registry
	// with a batch-trained serving champion at version 1; otherwise the
	// registry starts cold and bootstraps its first champion from
	// feedback once MinSamples have arrived.
	Champion      *predict.JobModel
	ChampionTasks *predict.TaskModel
}

// Promotion records one champion replacement. ChampionErr is −1 for the
// cold-start bootstrap, where no champion existed to compare against.
type Promotion struct {
	Version       int     `json:"version"`
	AtJobSamples  int     `json:"at_job_samples"`
	ChampionErr   float64 `json:"champion_err"`
	ChallengerErr float64 `json:"challenger_err"`
}

// Registry is the versioned model store with champion/challenger
// semantics. The champion — a frozen JobModel/TaskModel pair — serves
// predictions; challenger learners absorb every observed job and task
// sample; when the challenger's windowed average relative error beats
// the champion's by the configured margin, the registry atomically
// promotes the challenger, bumps the version, and snapshots the retired
// champion as a V2 predict persistence bundle.
//
// Every decision depends only on sample counts and error windows, never
// on the wall clock, so identical feedback streams produce identical
// promotion sequences. All methods are goroutine-safe.
type Registry struct {
	mu  sync.Mutex
	cfg Config

	version   int
	champJob  *predict.JobModel
	champTask *predict.TaskModel

	jobPooled *Learner
	jobPerOp  map[plan.JobType]*Learner
	mapPooled *Learner
	mapPerOp  map[plan.JobType]*Learner
	redPooled *Learner
	redPerOp  map[plan.JobType]*Learner

	jobSamples  int
	taskSamples int

	champWin *window
	challWin *window

	promotions []Promotion
	retired    [][]byte
}

// NewRegistry builds a registry from cfg, applying defaults for
// unset fields.
func NewRegistry(cfg Config) *Registry {
	if cfg.Window <= 0 {
		cfg.Window = 100
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 50
	}
	if cfg.PromoteMargin <= 0 {
		cfg.PromoteMargin = 0.05
	}
	r := &Registry{
		cfg:       cfg,
		jobPooled: NewLearner(Relative),
		jobPerOp:  map[plan.JobType]*Learner{},
		mapPooled: NewLearner(Relative),
		mapPerOp:  map[plan.JobType]*Learner{},
		redPooled: NewLearner(Relative),
		redPerOp:  map[plan.JobType]*Learner{},
		champWin:  newWindow(cfg.Window),
		challWin:  newWindow(cfg.Window),
	}
	if cfg.Champion != nil && cfg.ChampionTasks != nil {
		r.champJob, r.champTask = cfg.Champion, cfg.ChampionTasks
		r.version = 1
	}
	return r
}

// ObserveJob feeds one completed job's observed execution time into the
// registry: both error windows advance (the challenger is scored
// prequentially, before absorbing the sample), the challenger learners
// absorb it, and the promotion rule is evaluated. Non-positive observed
// times are ignored.
func (r *Registry) ObserveJob(op plan.JobType, features []float64, observedSec float64) {
	if r == nil || observedSec <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.champJob != nil {
		pred := r.champJob.PredictSample(predict.JobSample{Op: op, Features: features})
		r.champWin.push(math.Abs(pred-observedSec) / observedSec)
	}
	if pred, ok := r.challengerPredictJobLocked(op, features); ok {
		r.challWin.push(math.Abs(pred-observedSec) / observedSec)
	}
	r.absorbJobLocked(op, features, observedSec)
	r.jobSamples++
	r.cfg.Observer.LearnJobSample(r.champWin.meanOrNeg(), r.challWin.meanOrNeg())
	if _, half, err := r.jobPooled.PredictWithInterval(features); err == nil && half > 0 {
		r.cfg.Observer.LearnIntervalWidth(half)
	}
	r.maybePromoteLocked()
}

// ObserveTask feeds one completed task's observed time into the
// challenger task learners. Task samples refine the promoted TaskModel
// (WRD ranking, per-task predictions) but do not drive the promotion
// rule, which compares job-level error. Non-positive times are ignored.
func (r *Registry) ObserveTask(op plan.JobType, reduce bool, features []float64, observedSec float64) {
	if r == nil || observedSec <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pooled, perOp := r.mapPooled, r.mapPerOp
	if reduce {
		pooled, perOp = r.redPooled, r.redPerOp
	}
	if err := pooled.Observe(features, observedSec); err != nil {
		return
	}
	l := perOp[op]
	if l == nil {
		l = NewLearner(Relative)
		perOp[op] = l
	}
	if err := l.Observe(features, observedSec); err != nil {
		return
	}
	r.taskSamples++
	r.cfg.Observer.LearnTaskSample()
}

// absorbJobLocked feeds a job sample into the pooled and per-operator
// challenger learners.
func (r *Registry) absorbJobLocked(op plan.JobType, features []float64, sec float64) {
	if err := r.jobPooled.Observe(features, sec); err != nil {
		return
	}
	l := r.jobPerOp[op]
	if l == nil {
		l = NewLearner(Relative)
		r.jobPerOp[op] = l
	}
	if err := l.Observe(features, sec); err != nil {
		return
	}
}

// challengerPredictJobLocked scores features with the challenger's most
// specific solvable model — per-operator first, pooled fallback — with
// the same non-negativity clamp the champion's PredictSample applies.
func (r *Registry) challengerPredictJobLocked(op plan.JobType, features []float64) (float64, bool) {
	if l := r.jobPerOp[op]; l != nil {
		if m, err := l.Model(); err == nil {
			if y, perr := m.PredictChecked(features); perr == nil {
				return math.Max(0, y), true
			}
		}
	}
	m, err := r.jobPooled.Model()
	if err != nil {
		return 0, false
	}
	y, err := m.PredictChecked(features)
	if err != nil {
		return 0, false
	}
	return math.Max(0, y), true
}

// maybePromoteLocked applies the promotion rule: a cold registry
// bootstraps its first champion once MinSamples job samples have
// arrived; afterwards the challenger must fill both error windows and
// beat the champion's windowed mean by PromoteMargin.
func (r *Registry) maybePromoteLocked() {
	if r.champJob == nil {
		if r.jobSamples < r.cfg.MinSamples {
			return
		}
		r.promoteLocked(-1, r.challWin.meanOrNeg())
		return
	}
	if !r.champWin.full() || !r.challWin.full() {
		return
	}
	champ, chall := r.champWin.mean(), r.challWin.mean()
	if chall < champ*(1-r.cfg.PromoteMargin) {
		r.promoteLocked(champ, chall)
	}
}

// promoteLocked replaces the champion with the challenger's current
// solution: the retiring champion is snapshotted as a V2 bundle with
// its lifecycle metadata, the version bumps, the promotion is recorded,
// and both error windows reset so the next comparison starts fresh. A
// challenger whose job model cannot be solved yet never promotes; a
// challenger without solvable task learners carries the champion's
// TaskModel forward.
func (r *Registry) promoteLocked(champErr, challErr float64) {
	jm, err := r.challengerJobLocked()
	if err != nil {
		return
	}
	tm := r.challengerTaskLocked()
	if r.champJob != nil && r.champTask != nil {
		meta := &predict.RegistryMeta{
			ModelVersion: r.version,
			Samples:      r.jobSamples,
			ErrorWindow:  r.champWin.values(),
		}
		if b, serr := predict.SaveBundle(r.champJob, r.champTask, "retired champion", meta); serr == nil {
			r.retired = append(r.retired, b)
		}
	}
	r.champJob, r.champTask = jm, tm
	r.version++
	r.promotions = append(r.promotions, Promotion{
		Version:       r.version,
		AtJobSamples:  r.jobSamples,
		ChampionErr:   champErr,
		ChallengerErr: challErr,
	})
	r.champWin.reset()
	r.challWin.reset()
	r.cfg.Observer.LearnPromotion(r.version, r.jobSamples, champErr, challErr)
}

// challengerJobLocked assembles the challenger's JobModel from the
// pooled learner (required) and every solvable per-operator learner.
func (r *Registry) challengerJobLocked() (*predict.JobModel, error) {
	pooled, err := r.jobPooled.Model()
	if err != nil {
		return nil, err
	}
	jm := &predict.JobModel{Pooled: pooled, PerOp: map[plan.JobType]*predict.Model{}}
	for _, op := range sortedOps(r.jobPerOp) {
		if m, merr := r.jobPerOp[op].Model(); merr == nil {
			jm.PerOp[op] = m
		}
	}
	return jm, nil
}

// challengerTaskLocked assembles the challenger's TaskModel, falling
// back to the current champion's when either phase-pooled learner is
// still underdetermined (the promoted JobModel can lead the TaskModel
// early in a cold start).
func (r *Registry) challengerTaskLocked() *predict.TaskModel {
	mm, merr := r.mapPooled.Model()
	rm, rerr := r.redPooled.Model()
	if merr != nil || rerr != nil {
		return r.champTask
	}
	tm := &predict.TaskModel{
		MapModel: mm, ReduceModel: rm,
		MapPerOp:    map[plan.JobType]*predict.Model{},
		ReducePerOp: map[plan.JobType]*predict.Model{},
	}
	for _, op := range sortedOps(r.mapPerOp) {
		if m, err := r.mapPerOp[op].Model(); err == nil {
			tm.MapPerOp[op] = m
		}
	}
	for _, op := range sortedOps(r.redPerOp) {
		if m, err := r.redPerOp[op].Model(); err == nil {
			tm.ReducePerOp[op] = m
		}
	}
	return tm
}

// sortedOps returns the map's operator keys in ascending order, so
// model assembly never depends on map iteration order.
func sortedOps(m map[plan.JobType]*Learner) []plan.JobType {
	ops := make([]plan.JobType, 0, len(m))
	for op := range m {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

// Version returns the champion's version: 0 while cold, 1 for a seeded
// or bootstrapped champion, +1 per promotion since.
func (r *Registry) Version() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// JobModel returns the frozen serving champion's job model, nil while
// the registry is cold. The returned model must not be mutated.
func (r *Registry) JobModel() *predict.JobModel {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.champJob
}

// TaskModel returns the frozen serving champion's task model, nil while
// the registry is cold. The returned model must not be mutated.
func (r *Registry) TaskModel() *predict.TaskModel {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.champTask
}

// ChallengerJobModel assembles the challenger's current job model, or
// nil while it is underdetermined. Useful for scoring convergence
// against a batch baseline without forcing a promotion.
func (r *Registry) ChallengerJobModel() *predict.JobModel {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	jm, err := r.challengerJobLocked()
	if err != nil {
		return nil
	}
	return jm
}

// JobSamples returns how many job observations the registry absorbed.
func (r *Registry) JobSamples() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobSamples
}

// TaskSamples returns how many task observations the registry absorbed.
func (r *Registry) TaskSamples() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.taskSamples
}

// Promotions returns a copy of the promotion history in order.
func (r *Registry) Promotions() []Promotion {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Promotion{}, r.promotions...)
}

// PromotionsJSON serialises the promotion history — the byte-identical
// artifact the seeded-replay tests compare.
func (r *Registry) PromotionsJSON() ([]byte, error) {
	r.mu.Lock()
	ps := append([]Promotion{}, r.promotions...)
	r.mu.Unlock()
	return json.MarshalIndent(ps, "", "  ")
}

// RetiredBundles returns the V2 persistence bundles of every retired
// champion, oldest first.
func (r *Registry) RetiredBundles() [][]byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.retired))
	copy(out, r.retired)
	return out
}

// Snapshot serialises the current champion as a V2 bundle carrying the
// live lifecycle metadata. It fails while the registry is cold or the
// champion has no task model yet.
func (r *Registry) Snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	meta := &predict.RegistryMeta{
		ModelVersion: r.version,
		Samples:      r.jobSamples,
		ErrorWindow:  r.champWin.values(),
	}
	return predict.SaveBundle(r.champJob, r.champTask, "serving champion", meta)
}

// window is a fixed-capacity ring of relative errors. The mean is
// recomputed over the buffer on demand — O(W) with W ≤ a few hundred —
// so the value depends only on the window's contents, never on the
// incremental order a running sum would accumulate rounding from.
type window struct {
	buf  []float64
	next int
}

func newWindow(n int) *window { return &window{buf: make([]float64, 0, n)} }

func (w *window) push(v float64) {
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
		return
	}
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
}

func (w *window) full() bool { return len(w.buf) == cap(w.buf) }

func (w *window) mean() float64 {
	if len(w.buf) == 0 {
		return 0
	}
	var s float64
	for _, v := range w.buf {
		s += v
	}
	return s / float64(len(w.buf))
}

// meanOrNeg returns the mean, or −1 for an empty window (gauge "unset").
func (w *window) meanOrNeg() float64 {
	if len(w.buf) == 0 {
		return -1
	}
	return w.mean()
}

func (w *window) reset() {
	w.buf = w.buf[:0]
	w.next = 0
}

// values returns the window's contents oldest-first.
func (w *window) values() []float64 {
	if len(w.buf) == 0 {
		return nil
	}
	out := make([]float64, 0, len(w.buf))
	out = append(out, w.buf[w.next:]...)
	out = append(out, w.buf[:w.next]...)
	return out
}
