package learn

import (
	"sync"

	"saqp/internal/obs"
	"saqp/internal/plan"
	"saqp/internal/predict"
)

// Source is the model-lifecycle seam the serving engine consumes:
// champion models to serve from and a feedback sink for observed job
// and task times. *Registry is the canonical implementation; Replica
// lets a sharded deployment serve a frozen copy of a coordinator's
// champion while funnelling feedback upstream, so promotion decisions
// stay centralized and every shard converges on the same version.
type Source interface {
	// Version returns the champion version served from this source.
	Version() int
	// JobModel returns the frozen champion job model, nil while cold.
	JobModel() *predict.JobModel
	// TaskModel returns the frozen champion task model, nil while cold.
	TaskModel() *predict.TaskModel
	// ObserveJob feeds one completed job's observed execution time.
	ObserveJob(op plan.JobType, features []float64, observedSec float64)
	// ObserveTask feeds one completed task's observed execution time.
	ObserveTask(op plan.JobType, reduce bool, features []float64, observedSec float64)
}

// Registry is the canonical Source.
var _ Source = (*Registry)(nil)

// Champion returns the serving champion as one consistent snapshot —
// version, job model, task model — under a single lock acquisition, so
// a replica can never observe a version from one promotion paired with
// models from another. The models are frozen and must not be mutated.
func (r *Registry) Champion() (version int, jm *predict.JobModel, tm *predict.TaskModel) {
	if r == nil {
		return 0, nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version, r.champJob, r.champTask
}

// Replica is a shard-local copy of a coordinator Registry's champion.
// It serves Version/JobModel/TaskModel from a frozen local snapshot and
// forwards every observation to the upstream registry, where the
// promotion rule runs; the snapshot only advances when Sync is called
// (the cluster's model fan-out), so the replica's version can lag the
// leader's — Lag exposes exactly that gap for the replication gauge.
// All methods are safe for concurrent use and on a nil receiver.
type Replica struct {
	mu       sync.Mutex
	upstream *Registry
	observer *obs.Observer

	version int
	jm      *predict.JobModel
	tm      *predict.TaskModel
}

// NewReplica builds a replica of upstream and performs the initial
// sync, so a freshly attached shard serves the leader's current
// champion rather than starting cold. observer may be nil.
func NewReplica(upstream *Registry, observer *obs.Observer) *Replica {
	r := &Replica{upstream: upstream, observer: observer}
	r.Sync()
	return r
}

// Sync pulls the upstream champion if its version moved and returns the
// replica's (possibly advanced) version. The pull is a pointer copy —
// champion models are frozen after promotion — so fan-out cost is
// independent of model size.
func (r *Replica) Sync() int {
	if r == nil {
		return 0
	}
	v, jm, tm := r.upstream.Champion()
	r.mu.Lock()
	defer r.mu.Unlock()
	if v != r.version {
		r.version, r.jm, r.tm = v, jm, tm
		r.observer.LearnReplicaSynced(v)
	}
	return r.version
}

// Lag returns how many promotions the replica is behind the leader.
func (r *Replica) Lag() int {
	if r == nil {
		return 0
	}
	lead := r.upstream.Version()
	r.mu.Lock()
	defer r.mu.Unlock()
	if lead < r.version {
		return 0
	}
	return lead - r.version
}

// Version returns the locally served champion version.
func (r *Replica) Version() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// JobModel returns the locally served champion job model, nil while the
// replica has only ever seen a cold leader.
func (r *Replica) JobModel() *predict.JobModel {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jm
}

// TaskModel returns the locally served champion task model, nil while
// the replica has only ever seen a cold leader.
func (r *Replica) TaskModel() *predict.TaskModel {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tm
}

// ObserveJob forwards one job observation to the upstream registry,
// where the challenger learns and the promotion rule runs.
func (r *Replica) ObserveJob(op plan.JobType, features []float64, observedSec float64) {
	if r == nil {
		return
	}
	r.upstream.ObserveJob(op, features, observedSec)
}

// ObserveTask forwards one task observation to the upstream registry.
func (r *Replica) ObserveTask(op plan.JobType, reduce bool, features []float64, observedSec float64) {
	if r == nil {
		return
	}
	r.upstream.ObserveTask(op, reduce, features, observedSec)
}

// Replica is a Source: a shard engine plugs it in wherever a Registry
// would go.
var _ Source = (*Replica)(nil)
