// Package learn is the online model-lifecycle subsystem: it closes the
// observe→learn→predict loop that the paper leaves open by training its
// Eq. 8/9 time models once, offline.
//
// Three pieces compose:
//
//   - Learner is a recursive-least-squares (RLS) online fitter. It absorbs
//     one (features, observed seconds) sample at a time by applying the
//     same rank-1 update to the accumulated normal equations that the
//     batch fitters in internal/predict apply per sample, then solves
//     lazily through predict.SolveNormal — so after N updates its
//     coefficients agree with a batch Fit/FitRelative over the identical
//     stream to the last bit. It also tracks prequential residuals, so
//     PredictWithInterval returns a confidence band alongside the point
//     estimate.
//
//   - Registry is a versioned model store with champion/challenger
//     semantics: the serving champion stays frozen while challenger
//     learners absorb completed-job feedback; when the challenger's
//     windowed average relative error beats the champion's by a
//     configurable margin, the registry atomically promotes it, bumps the
//     version, and snapshots the retired champion as a V2 predict
//     persistence bundle.
//
//   - The serving engine (internal/serve) feeds observed job and task
//     times into the registry after each cleanly completed query and
//     serves admission scores and per-task predictions from the current
//     champion; internal/obs carries the saqp_learn_* metrics and the
//     promotion trace instants.
//
// Every decision in this package is deterministic: promotions are driven
// by sample counts and error windows, never the wall clock, so a seeded
// replay reproduces the identical promotion sequence byte for byte.
package learn
