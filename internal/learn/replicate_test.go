package learn

import (
	"testing"

	"saqp/internal/plan"
)

// feedReplicaJobs pushes n synthetic job samples through src with a
// linear ground truth the RLS learners can fit exactly.
func feedReplicaJobs(src Source, n int) {
	for i := 0; i < n; i++ {
		x := float64(i%17 + 1)
		y := float64(i%5 + 1)
		src.ObserveJob(plan.Groupby, []float64{x, y, x * y}, 3*x+2*y+0.5*x*y+1)
	}
}

func TestReplicaServesLeaderChampionAfterSync(t *testing.T) {
	reg := NewRegistry(Config{MinSamples: 10, Window: 5})
	rep := NewReplica(reg, nil)
	if v := rep.Version(); v != 0 {
		t.Fatalf("replica of a cold leader starts at version %d, want 0", v)
	}

	// Bootstrap the leader's first champion through the replica's own
	// feedback path — observations must flow upstream.
	feedReplicaJobs(rep, 25)
	if v := reg.Version(); v == 0 {
		t.Fatal("upstream registry never bootstrapped a champion; replica feedback did not reach it")
	}
	if got := rep.Version(); got != 0 {
		t.Fatalf("replica advanced to version %d without a Sync", got)
	}
	if lag := rep.Lag(); lag != reg.Version() {
		t.Fatalf("Lag = %d, want leader version %d", lag, reg.Version())
	}

	v := rep.Sync()
	if v != reg.Version() {
		t.Fatalf("Sync returned version %d, leader at %d", v, reg.Version())
	}
	if rep.Lag() != 0 {
		t.Fatalf("Lag = %d after Sync, want 0", rep.Lag())
	}
	if rep.JobModel() != reg.JobModel() {
		t.Fatal("replica job model is not the leader's frozen champion")
	}
	if rep.TaskModel() != reg.TaskModel() {
		t.Fatal("replica task model is not the leader's frozen champion")
	}
}

func TestReplicaSnapshotIsConsistent(t *testing.T) {
	reg := NewRegistry(Config{MinSamples: 5, Window: 4})
	feedReplicaJobs(reg, 10)
	v, jm, tm := reg.Champion()
	if v != reg.Version() {
		t.Fatalf("Champion version %d != Version() %d", v, reg.Version())
	}
	if jm != reg.JobModel() || tm != reg.TaskModel() {
		t.Fatal("Champion models differ from the accessor views")
	}
}

func TestReplicaNilSafety(t *testing.T) {
	var rep *Replica
	if rep.Version() != 0 || rep.Lag() != 0 || rep.Sync() != 0 {
		t.Fatal("nil replica must report version/lag/sync 0")
	}
	if rep.JobModel() != nil || rep.TaskModel() != nil {
		t.Fatal("nil replica must serve nil models")
	}
	rep.ObserveJob(plan.Groupby, []float64{1}, 1)
	rep.ObserveTask(plan.Groupby, false, []float64{1}, 1)

	// A live replica of a nil upstream must also be inert.
	live := NewReplica(nil, nil)
	live.ObserveJob(plan.Groupby, []float64{1}, 1)
	if live.Sync() != 0 || live.Lag() != 0 {
		t.Fatal("replica of a nil upstream must stay at version 0")
	}
}
