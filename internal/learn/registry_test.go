package learn

import (
	"bytes"
	"testing"

	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/sim"
)

// feedRegistry replays n seeded synthetic job+task observations into the
// registry. The stream is a pure function of the seed.
func feedRegistry(r *Registry, seed uint64, n int) {
	rng := sim.New(seed)
	ops := []plan.JobType{plan.Extract, plan.Groupby, plan.Join}
	for i := 0; i < n; i++ {
		op := ops[i%len(ops)]
		f := []float64{rng.Range(1, 200), rng.Range(1, 50), rng.Range(0, 4)}
		sec := 5 + 0.4*f[0] + 0.1*f[1] + rng.Normal(0, 1)
		r.ObserveJob(op, f, sec)
		tf := []float64{rng.Range(1, 100), rng.Range(1, 20), rng.Range(0, 1)}
		r.ObserveTask(op, i%2 == 1, tf, 1+0.2*tf[0]+rng.Normal(0, 0.2))
	}
}

func TestColdStartBootstrap(t *testing.T) {
	r := NewRegistry(Config{MinSamples: 30, Window: 20})
	if r.Version() != 0 || r.JobModel() != nil || r.TaskModel() != nil {
		t.Fatal("cold registry should have no champion")
	}
	feedRegistry(r, 1, 60)
	if r.Version() < 1 {
		t.Fatalf("version = %d, want ≥1 after MinSamples", r.Version())
	}
	if r.JobModel() == nil || r.TaskModel() == nil {
		t.Fatal("bootstrap should install a full champion")
	}
	ps := r.Promotions()
	if len(ps) == 0 {
		t.Fatal("bootstrap should record a promotion")
	}
	if ps[0].ChampionErr != -1 {
		t.Fatalf("cold-start ChampionErr = %v, want -1", ps[0].ChampionErr)
	}
	if ps[0].AtJobSamples != 30 {
		t.Fatalf("bootstrap at %d job samples, want 30", ps[0].AtJobSamples)
	}
}

func TestPromotionsAreDeterministic(t *testing.T) {
	run := func() ([]byte, int, int) {
		r := NewRegistry(Config{MinSamples: 25, Window: 40, PromoteMargin: 0.02})
		feedRegistry(r, 42, 400)
		js, err := r.PromotionsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, r.Version(), r.JobSamples()
	}
	j1, v1, s1 := run()
	j2, v2, s2 := run()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("promotion sequences diverged:\n%s\nvs\n%s", j1, j2)
	}
	if v1 != v2 || s1 != s2 {
		t.Fatalf("replay drift: version %d/%d, samples %d/%d", v1, v2, s1, s2)
	}
}

func TestSeededChampionPromotesOnMargin(t *testing.T) {
	// Seed a deliberately bad champion: the challenger must depose it
	// once both windows fill.
	bad := &predict.JobModel{Pooled: &predict.Model{Theta: []float64{1000, 0, 0, 0}}}
	badTasks := &predict.TaskModel{
		MapModel:    &predict.Model{Theta: []float64{1, 0, 0, 0}},
		ReduceModel: &predict.Model{Theta: []float64{1, 0, 0, 0}},
	}
	r := NewRegistry(Config{Window: 30, MinSamples: 10, PromoteMargin: 0.05,
		Champion: bad, ChampionTasks: badTasks})
	if r.Version() != 1 {
		t.Fatalf("seeded registry version = %d, want 1", r.Version())
	}
	feedRegistry(r, 9, 200)
	if r.Version() < 2 {
		t.Fatalf("version = %d, want ≥2: challenger should depose the bad champion", r.Version())
	}
	ps := r.Promotions()
	p := ps[0]
	if p.ChampionErr < 0 {
		t.Fatal("margin promotion should record the champion's window error")
	}
	if p.ChallengerErr >= p.ChampionErr*(1-0.05) {
		t.Fatalf("promotion without margin: challenger %v vs champion %v", p.ChallengerErr, p.ChampionErr)
	}
	// The deposed champion must be snapshotted as a loadable V2 bundle
	// carrying its lifecycle metadata.
	bundles := r.RetiredBundles()
	if len(bundles) != len(ps) {
		t.Fatalf("%d retired bundles for %d promotions", len(bundles), len(ps))
	}
	jm, tm, meta, err := predict.LoadBundle(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if jm == nil || tm == nil {
		t.Fatal("retired bundle lost its models")
	}
	if meta == nil || meta.ModelVersion != 1 {
		t.Fatalf("retired metadata = %+v, want model_version 1", meta)
	}
	if meta.Samples != p.AtJobSamples {
		t.Fatalf("retired sample count %d, want %d", meta.Samples, p.AtJobSamples)
	}
	if len(meta.ErrorWindow) == 0 {
		t.Fatal("retired bundle should carry the champion's error window")
	}
	// The frozen bundle predicts exactly like the deposed champion.
	f := []float64{10, 5, 1}
	if got, want := jm.Pooled.Predict(f), bad.Pooled.Predict(f); got != want {
		t.Fatalf("retired champion drifted: %v vs %v", got, want)
	}
}

func TestChampionFrozenWhileChallengerLearns(t *testing.T) {
	r := NewRegistry(Config{MinSamples: 10, Window: 1000})
	feedRegistry(r, 5, 20) // bootstrap at 10, window far from full again
	jm := r.JobModel()
	if jm == nil {
		t.Fatal("no champion after bootstrap")
	}
	f := []float64{50, 10, 2}
	before := jm.Pooled.Predict(f)
	feedRegistry(r, 6, 100) // challenger keeps absorbing; window (1000) never fills
	if got := r.JobModel().Pooled.Predict(f); got != before {
		t.Fatalf("champion moved while unpromoted: %v vs %v", got, before)
	}
	if ch := r.ChallengerJobModel(); ch == nil {
		t.Fatal("challenger should be solvable")
	} else if ch.Pooled.Predict(f) == before {
		t.Fatal("challenger should have moved past the frozen champion")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry(Config{MinSamples: 15})
	if _, err := r.Snapshot(); err == nil {
		t.Fatal("cold snapshot should fail")
	}
	feedRegistry(r, 2, 40)
	b, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, _, meta, err := predict.LoadBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.ModelVersion != r.Version() || meta.Samples != r.JobSamples() {
		t.Fatalf("snapshot metadata = %+v (version %d, samples %d)", meta, r.Version(), r.JobSamples())
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.ObserveJob(plan.Join, []float64{1}, 1)
	r.ObserveTask(plan.Join, false, []float64{1}, 1)
	if r.Version() != 0 || r.JobModel() != nil || r.TaskModel() != nil ||
		r.JobSamples() != 0 || r.TaskSamples() != 0 ||
		r.Promotions() != nil || r.RetiredBundles() != nil ||
		r.ChallengerJobModel() != nil {
		t.Fatal("nil registry should be a no-op")
	}
}

func TestIgnoresNonPositiveObservations(t *testing.T) {
	r := NewRegistry(Config{})
	r.ObserveJob(plan.Extract, []float64{1, 2, 3}, 0)
	r.ObserveJob(plan.Extract, []float64{1, 2, 3}, -4)
	r.ObserveTask(plan.Extract, false, []float64{1, 2}, 0)
	if r.JobSamples() != 0 || r.TaskSamples() != 0 {
		t.Fatal("non-positive observations should be dropped")
	}
}
