package mapreduce

import (
	"fmt"

	"saqp/internal/dataset"
	"saqp/internal/query"
)

// evalPred evaluates one column-vs-literal predicate against a row. It
// runs once per row per predicate inside the map phase — the innermost
// loop of simulated execution — so it must not allocate.
//
//saqp:hotpath
func evalPred(v dataset.Value, p query.Predicate) bool {
	if p.Op == query.OpIN {
		for _, lit := range p.Set {
			if lit.IsString {
				if v.S == lit.S {
					return true
				}
			} else if v.Num() == lit.F {
				return true
			}
		}
		return false
	}
	if p.Lit.IsString {
		return cmpStrings(v.S, p.Lit.S, p.Op)
	}
	return cmpFloats(v.Num(), p.Lit.F, p.Op)
}

// cmpFloats applies one comparison operator to two numerics.
//
//saqp:hotpath
func cmpFloats(a, b float64, op query.CmpOp) bool {
	switch op {
	case query.OpEQ:
		return a == b
	case query.OpNE:
		return a != b
	case query.OpLT:
		return a < b
	case query.OpLE:
		return a <= b
	case query.OpGT:
		return a > b
	case query.OpGE:
		return a >= b
	}
	return false
}

// cmpStrings applies one comparison operator to two strings.
//
//saqp:hotpath
func cmpStrings(a, b string, op query.CmpOp) bool {
	switch op {
	case query.OpEQ:
		return a == b
	case query.OpNE:
		return a != b
	case query.OpLT:
		return a < b
	case query.OpLE:
		return a <= b
	case query.OpGT:
		return a > b
	case query.OpGE:
		return a >= b
	}
	return false
}

// evalExpr computes a projection expression over a frame row.
func evalExpr(f *Frame, row dataset.Row, e query.Expr) (float64, error) {
	if e.Binop == nil {
		i := f.Col(e.Col.String())
		if i < 0 {
			return 0, fmt.Errorf("mapreduce: column %s not in frame", e.Col)
		}
		return row[i].Num(), nil
	}
	li, ri := f.Col(e.Binop.Left.String()), f.Col(e.Binop.Right.String())
	if li < 0 || ri < 0 {
		return 0, fmt.Errorf("mapreduce: expression %s references missing columns", e)
	}
	l, r := row[li].Num(), row[ri].Num()
	switch e.Binop.Op {
	case query.ArithMul:
		return l * r, nil
	case query.ArithAdd:
		return l + r, nil
	case query.ArithSub:
		return l - r, nil
	case query.ArithDiv:
		if r == 0 {
			return 0, nil
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("mapreduce: unknown arithmetic op")
}

// aggState accumulates one aggregate function.
type aggState struct {
	fn    query.AggFunc
	sum   float64
	count int64
	min   float64
	max   float64
	init  bool
}

func newAggState(fn query.AggFunc) *aggState { return &aggState{fn: fn} }

// add folds one value into the aggregate; called once per surviving row.
//
//saqp:hotpath
func (a *aggState) add(v float64) {
	a.sum += v
	a.count++
	if !a.init || v < a.min {
		a.min = v
	}
	if !a.init || v > a.max {
		a.max = v
	}
	a.init = true
}

// addCount is used for count(*) where no value is evaluated.
//
//saqp:hotpath
func (a *aggState) addCount(n int64) { a.count += n; a.init = true }

// merge combines a partial (combiner) state into a.
//
//saqp:hotpath
func (a *aggState) merge(o *aggState) {
	if !o.init {
		return
	}
	a.sum += o.sum
	a.count += o.count
	if !a.init || o.min < a.min {
		a.min = o.min
	}
	if !a.init || o.max > a.max {
		a.max = o.max
	}
	a.init = true
}

// value renders the final aggregate value.
func (a *aggState) value() dataset.Value {
	switch a.fn {
	case query.AggSum:
		return dataset.Float(a.sum)
	case query.AggCount:
		return dataset.Int(a.count)
	case query.AggAvg:
		if a.count == 0 {
			return dataset.Float(0)
		}
		return dataset.Float(a.sum / float64(a.count))
	case query.AggMin:
		return dataset.Float(a.min)
	case query.AggMax:
		return dataset.Float(a.max)
	}
	return dataset.Float(0)
}
