package mapreduce

import (
	"testing"

	"saqp/internal/plan"
	"saqp/internal/selectivity"
	"saqp/internal/workload"
)

// FuzzEngineQuery is the native fuzz entry point CI's fuzz-smoke stage
// drives for a few seconds per run: each fuzzed seed derives a fresh
// random query which must compile, estimate, and execute without
// crashing and with structurally sane (non-negative, stats-complete)
// results. The heavier quantitative agreement checks stay in
// TestRandomQueriesEstimatorVsEngine below.
func FuzzEngineQuery(f *testing.F) {
	for _, seed := range []uint64{0, 1, 99, 1 << 32, ^uint64(0)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		e := newTestEngine(t)
		est := selectivity.NewEstimator(fixtureCatalog(), selectivity.Config{BlockSize: 64 << 10})
		q, _, err := workload.NewGenerator(seed).RandomQuery()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := plan.Compile(q)
		if err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, q)
		}
		qe, err := est.EstimateQuery(d)
		if err != nil {
			t.Fatalf("seed %d does not estimate: %v\n%s", seed, err, q)
		}
		res, err := e.RunQuery(d)
		if err != nil {
			t.Fatalf("seed %d does not execute: %v\n%s", seed, err, q)
		}
		for _, je := range qe.Jobs {
			if je.IS < 0 || je.FS < 0 || je.OutRows < 0 {
				t.Fatalf("seed %d job %s: negative estimate\n%s", seed, je.Job.ID, q)
			}
			st := res.Stats[je.Job.ID]
			if st == nil {
				t.Fatalf("seed %d: job %s has no execution stats", seed, je.Job.ID)
			}
			if st.OutRows < 0 || st.MedBytes < 0 {
				t.Fatalf("seed %d job %s: negative measurement", seed, je.Job.ID)
			}
		}
	})
}

// TestRandomQueriesEstimatorVsEngine fuzzes the whole stack: randomly
// generated TPC-H/DS-shaped queries (including MAPJOIN hints, IN lists and
// BETWEEN ranges) are estimated from statistics and executed for real; the
// estimates must track measured ground truth within loose multiplicative
// bounds, and nothing may crash, for every query the generator can emit.
func TestRandomQueriesEstimatorVsEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fuzz in -short mode")
	}
	e := newTestEngine(t)
	est := selectivity.NewEstimator(fixtureCatalog(), selectivity.Config{BlockSize: 64 << 10})
	gen := workload.NewGenerator(99)

	const numQueries = 60
	checked := 0
	for i := 0; i < numQueries; i++ {
		q, shape, err := gen.RandomQuery()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		d, err := plan.Compile(q)
		if err != nil {
			t.Fatalf("query %d does not compile: %v\n%s", i, err, q)
		}
		qe, err := est.EstimateQuery(d)
		if err != nil {
			t.Fatalf("query %d does not estimate: %v\n%s", i, err, q)
		}
		res, err := e.RunQuery(d)
		if err != nil {
			t.Fatalf("query %d does not execute: %v\n%s", i, err, q)
		}
		for _, je := range qe.Jobs {
			st := res.Stats[je.Job.ID]
			if st == nil {
				t.Fatalf("query %d: job %s has no execution stats", i, je.Job.ID)
			}
			// Structural invariants on both sides.
			if je.IS < 0 || je.FS < 0 || je.OutRows < 0 {
				t.Fatalf("query %d job %s: negative estimate\n%s", i, je.Job.ID, q)
			}
			if st.OutRows < 0 || st.MedBytes < 0 {
				t.Fatalf("query %d job %s: negative measurement", i, je.Job.ID)
			}
			if je.Job.MapOnly && je.Job.Broadcast != "" && st.MedBytes != st.OutBytes {
				t.Fatalf("query %d job %s: broadcast join shuffled data", i, je.Job.ID)
			}
			// Quantitative agreement on the sink where the sample is big
			// enough to be statistically meaningful at laptop scale.
			if je.Job.ID == d.Sink().ID && st.OutRows >= 100 {
				meas := float64(st.OutRows)
				if je.OutRows < meas/5 || je.OutRows > meas*5 {
					t.Errorf("query %d (%s) sink rows: est %.0f vs measured %.0f\n%s",
						i, shape, je.OutRows, meas, q)
				}
				checked++
			}
		}
	}
	if checked < numQueries/4 {
		t.Fatalf("only %d of %d queries produced checkable outputs; generator too degenerate", checked, numQueries)
	}
}
