package mapreduce

import (
	"math"
	"sync"
	"testing"

	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
)

const sf = 0.01

// testRelations caches the generated fixture relations across tests; the
// engine never mutates registered relations, so sharing is safe.
var (
	testRelOnce sync.Once
	testRels    []*dataset.Relation
)

func fixtureRelations() []*dataset.Relation {
	testRelOnce.Do(func() {
		for _, s := range dataset.TPCH() {
			testRels = append(testRels, dataset.Generate(s, sf, 42))
		}
		for _, s := range dataset.TPCDS() {
			testRels = append(testRels, dataset.Generate(s, sf, 42))
		}
	})
	return testRels
}

// newTestEngine registers all schemas at laptop scale with small blocks so
// multi-map behaviour is exercised.
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{BlockSize: 64 << 10, NumReducers: 4})
	for _, rel := range fixtureRelations() {
		e.Register(rel)
	}
	return e
}

func compile(t *testing.T, src string) *plan.DAG {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return d
}

func run(t *testing.T, e *Engine, src string) *QueryResult {
	t.Helper()
	res, err := e.RunQuery(compile(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFilterMatchesBruteForce(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT l_orderkey FROM lineitem WHERE l_quantity < 11`)
	// Brute force over the same generated data.
	rel := dataset.Generate(dataset.LineItem(), sf, 42)
	qi := rel.Schema.ColumnIndex("l_quantity")
	var want int64
	for _, r := range rel.Rows {
		if r[qi].I < 11 {
			want++
		}
	}
	if res.Final.NumRows() != want {
		t.Fatalf("filter rows = %d, brute force = %d", res.Final.NumRows(), want)
	}
}

func TestConjunctiveFilter(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT l_orderkey FROM lineitem WHERE l_quantity < 11 AND l_discount < 0.05`)
	rel := dataset.Generate(dataset.LineItem(), sf, 42)
	qi := rel.Schema.ColumnIndex("l_quantity")
	di := rel.Schema.ColumnIndex("l_discount")
	var want int64
	for _, r := range rel.Rows {
		if r[qi].I < 11 && r[di].F < 0.05 {
			want++
		}
	}
	if res.Final.NumRows() != want {
		t.Fatalf("conjunctive filter rows = %d, want %d", res.Final.NumRows(), want)
	}
}

func TestGroupbyAggregatesMatchBruteForce(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT l_quantity, sum(l_extendedprice), count(*), min(l_extendedprice), max(l_extendedprice), avg(l_extendedprice)
		FROM lineitem GROUP BY l_quantity`)
	rel := dataset.Generate(dataset.LineItem(), sf, 42)
	qi := rel.Schema.ColumnIndex("l_quantity")
	pi := rel.Schema.ColumnIndex("l_extendedprice")
	type agg struct {
		sum, min, max float64
		n             int64
	}
	want := map[int64]*agg{}
	for _, r := range rel.Rows {
		a := want[r[qi].I]
		if a == nil {
			a = &agg{min: math.Inf(1), max: math.Inf(-1)}
			want[r[qi].I] = a
		}
		v := r[pi].F
		a.sum += v
		a.n++
		a.min = math.Min(a.min, v)
		a.max = math.Max(a.max, v)
	}
	if int(res.Final.NumRows()) != len(want) {
		t.Fatalf("groups = %d, want %d", res.Final.NumRows(), len(want))
	}
	kc := res.Final.Col("lineitem.l_quantity")
	for _, row := range res.Final.Rows {
		a := want[row[kc].I]
		if a == nil {
			t.Fatalf("phantom group %v", row[kc])
		}
		if math.Abs(row[1].F-a.sum) > 1e-6*math.Abs(a.sum) {
			t.Fatalf("sum mismatch for key %v: %v vs %v", row[kc], row[1].F, a.sum)
		}
		if row[2].I != a.n {
			t.Fatalf("count mismatch: %v vs %v", row[2].I, a.n)
		}
		if row[3].F != a.min || row[4].F != a.max {
			t.Fatalf("min/max mismatch")
		}
		if math.Abs(row[5].F-a.sum/float64(a.n)) > 1e-9 {
			t.Fatalf("avg mismatch")
		}
	}
}

func TestGroupbyCombineReducesShuffle(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT l_quantity, count(*) FROM lineitem GROUP BY l_quantity`)
	st := res.Stats["J1"]
	if st.NumMaps < 2 {
		t.Fatalf("want multiple maps, got %d", st.NumMaps)
	}
	// Combine: each map emits at most 50 records (the key cardinality),
	// far less than its input rows.
	if st.MedRows > int64(st.NumMaps)*50 {
		t.Fatalf("combine ineffective: %d med rows from %d maps", st.MedRows, st.NumMaps)
	}
	if st.MedRows < st.OutRows {
		t.Fatalf("med rows %d below group count %d", st.MedRows, st.OutRows)
	}
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey`)
	// PK-FK with referential integrity: every supplier matches exactly once.
	want := dataset.Supplier().RowsAt(sf)
	if res.Final.NumRows() != want {
		t.Fatalf("join rows = %d, want %d", res.Final.NumRows(), want)
	}
}

func TestJoinWithLocalPredicate(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey AND n_nationkey < 5`)
	sup := dataset.Generate(dataset.Supplier(), sf, 42)
	ni := sup.Schema.ColumnIndex("s_nationkey")
	var want int64
	for _, r := range sup.Rows {
		if r[ni].I < 5 {
			want++
		}
	}
	if res.Final.NumRows() != want {
		t.Fatalf("filtered join rows = %d, want %d", res.Final.NumRows(), want)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT s_suppkey, s_acctbal FROM supplier ORDER BY s_acctbal DESC LIMIT 7`)
	if res.Final.NumRows() != 7 {
		t.Fatalf("limit rows = %d", res.Final.NumRows())
	}
	bi := res.Final.Col("supplier.s_acctbal")
	for i := 1; i < len(res.Final.Rows); i++ {
		if res.Final.Rows[i][bi].F > res.Final.Rows[i-1][bi].F {
			t.Fatal("descending order violated")
		}
	}
	// Top row must be the true maximum.
	rel := dataset.Generate(dataset.Supplier(), sf, 42)
	ci := rel.Schema.ColumnIndex("s_acctbal")
	max := math.Inf(-1)
	for _, r := range rel.Rows {
		max = math.Max(max, r[ci].F)
	}
	if res.Final.Rows[0][bi].F != max {
		t.Fatalf("top-1 = %v, true max = %v", res.Final.Rows[0][bi].F, max)
	}
}

func TestOrderByAscendingStable(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT o_orderkey FROM orders ORDER BY o_orderkey`)
	oi := res.Final.Col("orders.o_orderkey")
	for i := 1; i < len(res.Final.Rows); i++ {
		if res.Final.Rows[i][oi].I < res.Final.Rows[i-1][oi].I {
			t.Fatal("ascending order violated")
		}
	}
}

func TestQ11Pipeline(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_name <> 'n_name#b~~~~'
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`)
	if len(res.Stats) != 3 {
		t.Fatalf("stats for %d jobs", len(res.Stats))
	}
	// The groupby output cardinality equals the number of distinct
	// ps_partkey values that survive the joins.
	if res.Final.NumRows() == 0 || res.Final.NumRows() > dataset.PartSupp().RowsAt(sf) {
		t.Fatalf("suspicious output rows %d", res.Final.NumRows())
	}
	// Aggregate column present and numeric.
	ai := res.Final.Col("J3.agg0")
	if ai < 0 {
		t.Fatalf("missing aggregate column: %v", res.Final.Cols)
	}
	if res.Final.Rows[0][ai].F == 0 {
		t.Fatal("aggregate value suspiciously zero")
	}
}

func TestStatsConsistency(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT c_name, count(*) FROM customer JOIN orders ON o_custkey = c_custkey GROUP BY c_name`)
	for id, st := range res.Stats {
		if st.InBytes <= 0 || st.InRows <= 0 {
			t.Fatalf("%s: empty input", id)
		}
		if st.IS() < 0 || st.FS() < 0 {
			t.Fatalf("%s: negative selectivity", id)
		}
		if st.MedBytes > st.InBytes {
			t.Fatalf("%s: med %d > in %d (projection should shrink)", id, st.MedBytes, st.InBytes)
		}
		if st.NumMaps < 1 {
			t.Fatalf("%s: no maps", id)
		}
	}
}

func TestJoinZipfSkewGroundTruth(t *testing.T) {
	// The Zipf-skewed fact table join: output exactly |store_sales| rows
	// (PK-FK referential integrity) regardless of skew.
	e := newTestEngine(t)
	res := run(t, e, `SELECT i_brand FROM item JOIN store_sales ON ss_item_sk = i_item_sk`)
	if res.Final.NumRows() != dataset.StoreSales().RowsAt(sf) {
		t.Fatalf("skewed join rows = %d, want %d", res.Final.NumRows(), dataset.StoreSales().RowsAt(sf))
	}
}

func TestUnregisteredTable(t *testing.T) {
	e := New(Config{})
	_, err := e.RunQuery(compile(t, `SELECT n_name FROM nation`))
	if err == nil {
		t.Fatal("unregistered table should fail")
	}
}

func TestFrameBasics(t *testing.T) {
	f := NewFrame([]string{"a", "b"}, []dataset.Row{{dataset.Int(1), dataset.Str("xy")}})
	if f.Col("a") != 0 || f.Col("b") != 1 || f.Col("zz") != -1 {
		t.Fatal("Col lookup broken")
	}
	if f.Bytes() != 10 {
		t.Fatalf("frame bytes = %d", f.Bytes())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	f.Rows = append(f.Rows, dataset.Row{dataset.Int(2)})
	if err := f.Validate(); err == nil {
		t.Fatal("Validate accepted ragged row")
	}
}

func TestEngineDeterministic(t *testing.T) {
	a := newTestEngine(t)
	b := newTestEngine(t)
	src := `SELECT c_name, count(*) FROM customer JOIN orders ON o_custkey = c_custkey GROUP BY c_name`
	r1 := run(t, a, src)
	r2 := run(t, b, src)
	if r1.Final.NumRows() != r2.Final.NumRows() {
		t.Fatal("row counts differ across runs")
	}
	for i := range r1.Final.Rows {
		for j := range r1.Final.Rows[i] {
			if !r1.Final.Rows[i][j].Equal(r2.Final.Rows[i][j]) {
				t.Fatalf("row %d differs across identical runs", i)
			}
		}
	}
}

func BenchmarkEngineGroupby(b *testing.B) {
	e := New(Config{BlockSize: 64 << 10})
	e.Register(dataset.Generate(dataset.LineItem(), 0.005, 1))
	q, _ := query.Parse(`SELECT l_quantity, sum(l_extendedprice) FROM lineitem GROUP BY l_quantity`)
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		b.Fatal(err)
	}
	d, _ := plan.Compile(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunQuery(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineJoin(b *testing.B) {
	e := New(Config{BlockSize: 64 << 10})
	e.Register(dataset.Generate(dataset.Customer(), 0.005, 1))
	e.Register(dataset.Generate(dataset.Orders(), 0.005, 1))
	q, _ := query.Parse(`SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey`)
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		b.Fatal(err)
	}
	d, _ := plan.Compile(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunQuery(d); err != nil {
			b.Fatal(err)
		}
	}
}
