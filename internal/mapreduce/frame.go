package mapreduce

import (
	"fmt"

	"saqp/internal/dataset"
)

// Frame is a materialised intermediate result: named, qualified columns
// plus rows. It plays the role of one job's HDFS output directory.
type Frame struct {
	// Cols are qualified column names ("table.column", or synthetic names
	// like "J3.agg0" for aggregate outputs).
	Cols []string
	Rows []dataset.Row

	index map[string]int
}

// NewFrame builds a frame with the given columns and rows.
func NewFrame(cols []string, rows []dataset.Row) *Frame {
	f := &Frame{Cols: cols, Rows: rows}
	f.reindex()
	return f
}

func (f *Frame) reindex() {
	f.index = make(map[string]int, len(f.Cols))
	for i, c := range f.Cols {
		f.index[c] = i
	}
}

// Col returns the index of a qualified column name, or -1.
func (f *Frame) Col(name string) int {
	if f.index == nil {
		f.reindex()
	}
	if i, ok := f.index[name]; ok {
		return i
	}
	return -1
}

// NumRows returns the row count.
func (f *Frame) NumRows() int64 { return int64(len(f.Rows)) }

// Bytes returns the total encoded size of the frame's rows.
func (f *Frame) Bytes() int64 {
	var t int64
	for _, r := range f.Rows {
		t += int64(r.Width())
	}
	return t
}

// Validate checks that every row has exactly one value per column.
func (f *Frame) Validate() error {
	for i, r := range f.Rows {
		if len(r) != len(f.Cols) {
			return fmt.Errorf("mapreduce: row %d has %d values for %d columns", i, len(r), len(f.Cols))
		}
	}
	return nil
}
