package mapreduce

import (
	"testing"

	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
)

// BenchmarkMicro* cover the engine stages the bench-micro gate watches:
// map-side filtering, the shuffle join with and without Bloom pruning,
// and the combine-heavy group-by reduce.

func benchEngine(b *testing.B, prune bool) *Engine {
	b.Helper()
	e := New(Config{BlockSize: 64 << 10, NumReducers: 4, BloomPrune: prune})
	for _, rel := range fixtureRelations() {
		e.Register(rel)
	}
	return e
}

func benchCompile(b *testing.B, src string) *plan.DAG {
	b.Helper()
	q, err := query.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		b.Fatal(err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchRun(b *testing.B, prune bool, src string) {
	b.Helper()
	e := benchEngine(b, prune)
	d := benchCompile(b, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunQuery(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroEngineMapFilter(b *testing.B) {
	benchRun(b, false, `SELECT l_orderkey FROM lineitem WHERE l_quantity < 11`)
}

func BenchmarkMicroEngineShuffleJoin(b *testing.B) {
	benchRun(b, false, `SELECT l_orderkey, o_orderdate FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE o_totalprice < 2000`)
}

func BenchmarkMicroEngineShuffleJoinBloom(b *testing.B) {
	benchRun(b, true, `SELECT l_orderkey, o_orderdate FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE o_totalprice < 2000`)
}

func BenchmarkMicroEngineGroupbyReduce(b *testing.B) {
	benchRun(b, false, `SELECT l_orderkey, sum(l_quantity) FROM lineitem GROUP BY l_orderkey`)
}
