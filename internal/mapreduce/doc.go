// Package mapreduce is an in-memory MapReduce engine that actually executes
// compiled query DAGs over materialised relations: map tasks filter and
// project in parallel, Groupby jobs run per-map combines, the shuffle
// hash-partitions by key, and reduce tasks join, aggregate or sort.
//
// In the paper this role is played by the Hadoop cluster itself. The engine
// exists so that selectivity estimates can be validated against *measured*
// intermediate and output sizes (|Med|, |Out|) rather than against the
// estimator's own assumptions, and so examples run real queries end to end.
package mapreduce
