package mapreduce

import (
	"math"
	"sync"
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/selectivity"
)

// TestEstimatorAgainstEngine is the package's keystone test: the
// selectivity estimator (paper Section 3) is validated against data sizes
// *measured* by actually executing the same queries in the engine over the
// same generated data. This is the honest version of the paper's Figure 5
// walk-through: estimates must track ground truth, not assumptions.
func TestEstimatorAgainstEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping engine cross-validation in -short mode")
	}
	e := newTestEngine(t)
	cat := fixtureCatalog()
	// Match the engine's block size so N_maps (and thus the random-key
	// combine estimate of Eq. 2) line up.
	est := selectivity.NewEstimator(cat, selectivity.Config{BlockSize: 64 << 10})

	cases := []struct {
		name string
		src  string
		// outTol and isTol are relative error tolerances for the sink job's
		// output rows and each job's IS.
		outTol float64
	}{
		{"filter", `SELECT l_orderkey FROM lineitem WHERE l_quantity < 11`, 0.05},
		{"filter-float", `SELECT l_orderkey FROM lineitem WHERE l_extendedprice >= 3000`, 0.05},
		{"groupby-clustered", `SELECT l_orderkey, count(*) FROM lineitem GROUP BY l_orderkey`, 0.05},
		{"groupby-random", `SELECT l_partkey, count(*) FROM lineitem GROUP BY l_partkey`, 0.10},
		{"groupby-filtered", `SELECT l_quantity, sum(l_extendedprice) FROM lineitem WHERE l_shipdate < 9500 GROUP BY l_quantity`, 0.05},
		{"join-pkfk", `SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey`, 0.15},
		{"join-filtered", `SELECT s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey AND n_nationkey < 5`, 0.25},
		{"join-zipf", `SELECT i_brand FROM item JOIN store_sales ON ss_item_sk = i_item_sk`, 0.30},
		{"sort-limit", `SELECT s_suppkey FROM supplier ORDER BY s_suppkey LIMIT 50`, 0.001},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := compile(t, tc.src)
			qe, err := est.EstimateQuery(d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.RunQuery(d)
			if err != nil {
				t.Fatal(err)
			}
			sink := d.Sink().ID
			gotRows := float64(res.Stats[sink].OutRows)
			estRows := qe.ByID[sink].OutRows
			if re := relErrF(estRows, gotRows); re > tc.outTol {
				t.Errorf("sink out rows: est %.0f vs measured %.0f (rel err %.3f > %.3f)",
					estRows, gotRows, re, tc.outTol)
			}
			// IS must agree within loose tolerance for every job.
			for id, je := range qe.ByID {
				meas := res.Stats[id].IS()
				if meas == 0 && je.IS == 0 {
					continue
				}
				if re := relErrF(je.IS, meas); re > 0.35 {
					t.Errorf("job %s IS: est %.4f vs measured %.4f (rel err %.3f)",
						id, je.IS, meas, re)
				}
			}
		})
	}
}

// TestQ11EndToEnd validates the paper's full Section 3.2 example against
// execution: selectivity percolates the 96%-style predicate through two
// joins and a groupby, and the estimate tracks measured sizes.
func TestQ11EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping engine cross-validation in -short mode")
	}
	e := newTestEngine(t)
	est := selectivity.NewEstimator(fixtureCatalog(), selectivity.Config{BlockSize: 64 << 10})
	src := `SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_name <> 'n_name#b~~~~'
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`
	d := compile(t, src)
	qe, err := est.EstimateQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"J1", "J2", "J3"} {
		est, meas := qe.ByID[id].OutRows, float64(res.Stats[id].OutRows)
		if re := relErrF(est, meas); re > 0.15 {
			t.Errorf("%s out rows: est %.0f vs measured %.0f (rel err %.3f)", id, est, meas, re)
		}
	}
}

var (
	fixtureCatOnce sync.Once
	fixtureCat     *catalog.Catalog
)

// fixtureCatalog scans the shared fixture relations once.
func fixtureCatalog() *catalog.Catalog {
	fixtureCatOnce.Do(func() {
		fixtureCat = catalog.New()
		for _, rel := range fixtureRelations() {
			fixtureCat.Put(catalog.Collect(rel, 64))
		}
	})
	return fixtureCat
}

func relErrF(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
