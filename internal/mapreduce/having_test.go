package mapreduce

import (
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
	"saqp/internal/selectivity"
	"saqp/internal/workload"
)

// catalogT aliases the catalog type for test helper brevity.
type catalogT = catalog.Catalog

func TestHavingFiltersGroups(t *testing.T) {
	e := newTestEngine(t)
	all := run(t, e, `SELECT l_quantity, count(*) FROM lineitem GROUP BY l_quantity`)
	filtered := run(t, e, `SELECT l_quantity, count(*) FROM lineitem GROUP BY l_quantity HAVING count(*) > 1200`)
	if filtered.Final.NumRows() >= all.Final.NumRows() {
		t.Fatalf("HAVING did not filter: %d vs %d groups", filtered.Final.NumRows(), all.Final.NumRows())
	}
	// Every surviving group satisfies the condition; brute-force check.
	ci := filtered.Final.Col("J1.agg0")
	for _, r := range filtered.Final.Rows {
		if r[ci].I <= 1200 {
			t.Fatalf("group with count %d survived HAVING count(*) > 1200", r[ci].I)
		}
	}
	// And the set of surviving groups matches filtering the full result.
	want := 0
	ai := all.Final.Col("J1.agg0")
	for _, r := range all.Final.Rows {
		if r[ai].I > 1200 {
			want++
		}
	}
	if int(filtered.Final.NumRows()) != want {
		t.Fatalf("HAVING kept %d groups, brute force says %d", filtered.Final.NumRows(), want)
	}
}

func TestHavingOnSumDistinctFromSelect(t *testing.T) {
	// The HAVING aggregate need not appear in the SELECT list.
	e := newTestEngine(t)
	res := run(t, e, `SELECT l_shipmode, count(*) FROM lineitem GROUP BY l_shipmode HAVING sum(l_extendedprice) > 1000000`)
	if res.Final.NumRows() == 0 {
		t.Fatal("no groups survived a generous sum threshold")
	}
	if res.Final.NumRows() > 7 {
		t.Fatalf("more groups than l_shipmode cardinality: %d", res.Final.NumRows())
	}
}

func TestHavingParseResolveRoundTrip(t *testing.T) {
	q, err := query.Parse(`SELECT l_shipmode, count(*) FROM lineitem GROUP BY l_shipmode HAVING count(*) > 10 AND sum(l_quantity) >= 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Having) != 2 {
		t.Fatalf("having conjuncts = %d", len(q.Having))
	}
	if !q.Having[0].Star || q.Having[0].Op != query.OpGT {
		t.Fatalf("having[0] = %+v", q.Having[0])
	}
	if q.Having[1].Agg != query.AggSum {
		t.Fatalf("having[1] = %+v", q.Having[1])
	}
	if _, err := query.Parse(q.String()); err != nil {
		t.Fatalf("HAVING does not reparse: %v\n%s", err, q)
	}
}

func TestHavingParseErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT a, count(*) FROM t GROUP BY a HAVING b > 1`,         // not an aggregate
		`SELECT a, count(*) FROM t GROUP BY a HAVING count(*) >`,    // missing literal
		`SELECT a, count(*) FROM t GROUP BY a HAVING count( > 1`,    // malformed
		`SELECT a, count(*) FROM t GROUP BY a HAVING sum(x) LIKE 1`, // bad operator
	} {
		if _, err := query.Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestHavingEstimateShrinksOutput(t *testing.T) {
	dPlain := compile(t, `SELECT l_quantity, count(*) FROM lineitem GROUP BY l_quantity`)
	dHaving := compile(t, `SELECT l_quantity, count(*) FROM lineitem GROUP BY l_quantity HAVING count(*) > 1200`)
	cat := fixtureCatalog()
	est := newEstimator(t, cat)
	a, err := est.EstimateQuery(dPlain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := est.EstimateQuery(dHaving)
	if err != nil {
		t.Fatal(err)
	}
	if b.ByID["J1"].OutRows >= a.ByID["J1"].OutRows {
		t.Fatalf("HAVING estimate did not shrink output: %v vs %v",
			b.ByID["J1"].OutRows, a.ByID["J1"].OutRows)
	}
}

// newEstimator builds an estimator matching the test engine's block size.
func newEstimator(t *testing.T, cat *catalogT) *selectivity.Estimator {
	t.Helper()
	return selectivity.NewEstimator(cat, selectivity.Config{BlockSize: 64 << 10})
}

func TestOrderByAggregateTopK(t *testing.T) {
	// TPC-H Q3 idiom: top groups by aggregate value, descending.
	e := newTestEngine(t)
	res := run(t, e, `SELECT l_shipmode, sum(l_extendedprice)
		FROM lineitem GROUP BY l_shipmode ORDER BY sum(l_extendedprice) DESC LIMIT 3`)
	if res.Final.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Final.NumRows())
	}
	// Descending by the aggregate column.
	for i := 1; i < len(res.Final.Rows); i++ {
		if res.Final.Rows[i][1].F > res.Final.Rows[i-1][1].F {
			t.Fatal("not sorted by aggregate desc")
		}
	}
	// The top value matches the max over the unsorted aggregation.
	full := run(t, e, `SELECT l_shipmode, sum(l_extendedprice) FROM lineitem GROUP BY l_shipmode`)
	max := 0.0
	for _, r := range full.Final.Rows {
		if r[1].F > max {
			max = r[1].F
		}
	}
	if res.Final.Rows[0][1].F != max {
		t.Fatalf("top-1 %v != true max %v", res.Final.Rows[0][1].F, max)
	}
}

func TestOrderByAggregateErrors(t *testing.T) {
	// Aggregate order key without GROUP BY, or not in SELECT, must fail to
	// compile.
	for _, src := range []string{
		`SELECT l_orderkey FROM lineitem ORDER BY sum(l_quantity)`,
		`SELECT l_shipmode, count(*) FROM lineitem GROUP BY l_shipmode ORDER BY sum(l_quantity)`,
	} {
		q, err := query.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
			t.Fatalf("resolve %q: %v", src, err)
		}
		if _, err := plan.Compile(q); err == nil {
			t.Fatalf("Compile(%q) should fail", src)
		}
	}
}

func TestQ3CanonicalRuns(t *testing.T) {
	e := newTestEngine(t)
	q, err := workload.TPCHQuery("q3")
	if err != nil {
		t.Fatal(err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.NumRows() > 10 {
		t.Fatalf("q3 returned %d rows, limit is 10", res.Final.NumRows())
	}
}
