package mapreduce

import (
	"testing"
	"testing/quick"

	"saqp/internal/dataset"
	"saqp/internal/obs"
	"saqp/internal/sketch"
)

// TestHashRowKeyMatchesKeyString is the invariant semi-join pruning
// rests on: the engine joins rows on Value.Key() string equality, so
// hashRowKey must equal the FNV hash of exactly those bytes for every
// kind. A divergence here would turn Bloom misses into dropped matches.
func TestHashRowKeyMatchesKeyString(t *testing.T) {
	check := func(v dataset.Value) bool {
		return hashRowKey(v) == sketch.Hash64String(v.Key())
	}
	for _, v := range []dataset.Value{
		dataset.Int(0), dataset.Int(-1), dataset.Int(9223372036854775807),
		dataset.Int(-9223372036854775808),
		dataset.Float(0), dataset.Float(-3.25), dataset.Float(1e300),
		dataset.Float(0.1), dataset.Float(-0.0000123456789),
		dataset.Str(""), dataset.Str("ALGERIA"), dataset.Str("x\x00y"),
		dataset.Date(0), dataset.Date(-400), dataset.Date(10957),
	} {
		if !check(v) {
			t.Errorf("hashRowKey(%v %s) != Hash64String(Key)", v.K, v.Key())
		}
	}
	if err := quick.Check(func(i int64, f float64, s string) bool {
		return check(dataset.Int(i)) && check(dataset.Float(f)) &&
			check(dataset.Str(s)) && check(dataset.Date(i%100000))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// pruneQueries exercises the shuffle-join path from both directions:
// small-build/large-probe, skewed keys, and a join feeding a group-by.
var pruneQueries = []string{
	`SELECT l_orderkey, o_orderdate FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE o_totalprice < 2000`,
	`SELECT s_name, n_name FROM supplier JOIN nation n ON s_nationkey = n_nationkey`,
	`SELECT l_orderkey, sum(l_quantity) FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE l_quantity < 30 GROUP BY l_orderkey`,
	`SELECT ps_partkey, s_name FROM partsupp ps JOIN supplier s ON ps_suppkey = s_suppkey WHERE ps_availqty < 500`,
}

func newPruneEngine(t *testing.T, prune bool, o *obs.Observer) *Engine {
	t.Helper()
	e := New(Config{BlockSize: 64 << 10, NumReducers: 4, BloomPrune: prune, Observer: o})
	for _, rel := range fixtureRelations() {
		e.Register(rel)
	}
	return e
}

// frameEqual reports whether two frames are identical in schema, row
// order, and every value.
func frameEqual(a, b *Frame) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestBloomPruneEquivalence replays join queries with pruning on and
// off and requires byte-identical results — the executable form of the
// zero-false-negatives acceptance gate (a dropped matching tuple would
// change the output frame). It also checks the stats bookkeeping:
// pruning can only shrink the shuffle, and never touches the output.
func TestBloomPruneEquivalence(t *testing.T) {
	base := newPruneEngine(t, false, nil)
	reg := obs.NewRegistry()
	pruned := newPruneEngine(t, true, &obs.Observer{Metrics: reg})
	for _, src := range pruneQueries {
		want := run(t, base, src)
		got := run(t, pruned, src)
		if !frameEqual(got.Final, want.Final) {
			t.Fatalf("%s: pruned output diverged (%d vs %d rows)",
				src, len(got.Final.Rows), len(want.Final.Rows))
		}
		for id, ws := range want.Stats {
			gs := got.Stats[id]
			if gs.OutBytes != ws.OutBytes || gs.OutRows != ws.OutRows {
				t.Errorf("%s job %s: output stats changed under pruning", src, id)
			}
			if gs.MedBytes > ws.MedBytes || gs.MedRows > ws.MedRows {
				t.Errorf("%s job %s: pruning grew the shuffle (%d > %d bytes)",
					src, id, gs.MedBytes, ws.MedBytes)
			}
			if gs.BloomPruned > 0 && ws.MedRows-gs.MedRows != gs.BloomPruned {
				t.Errorf("%s job %s: MedRows shrank by %d but BloomPruned=%d",
					src, id, ws.MedRows-gs.MedRows, gs.BloomPruned)
			}
		}
	}
	// The selective first query must actually prune (orders filtered hard,
	// lineitem probed), and the counters must have reached the registry.
	sel := run(t, pruned, pruneQueries[0])
	var probed int64
	for _, s := range sel.Stats {
		probed += s.BloomProbed
	}
	if probed == 0 {
		t.Fatal("no rows were probed on a shuffle join with pruning enabled")
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MSketchBloomProbes] == 0 {
		t.Fatalf("observer saw no bloom probes: %v", snap.Counters)
	}
}

// TestBloomPruneDropsNonMatches uses a join where most probe rows have
// no partner, so pruning must visibly shrink the shuffle.
func TestBloomPruneDropsNonMatches(t *testing.T) {
	pruned := newPruneEngine(t, true, nil)
	res := run(t, pruned, pruneQueries[0])
	var prunedRows int64
	for _, s := range res.Stats {
		prunedRows += s.BloomPruned
	}
	if prunedRows == 0 {
		t.Fatal("selective join pruned nothing; filter is not cutting shuffle volume")
	}
}
