package mapreduce

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"saqp/internal/dataset"
	"saqp/internal/obs"
	"saqp/internal/plan"
	"saqp/internal/query"
	"saqp/internal/selectivity"
)

// Config sizes the engine's task structure. At laptop scale the block size
// is far smaller than HDFS's 256 MB so that multi-map behaviour (per-map
// combines, parallelism) is exercised on megabyte inputs.
type Config struct {
	// BlockSize is bytes of input per map task (default 1 MB).
	BlockSize int64
	// NumReducers is the number of reduce partitions (default 4).
	NumReducers int
	// Parallelism bounds concurrent map/reduce tasks (default NumCPU).
	Parallelism int
	// BloomPrune enables Bloom-filter semi-join pruning on shuffle
	// joins: the smaller filtered side builds a membership filter and
	// the larger side is probed before its rows enter the shuffle. Off
	// by default — the join output is identical either way (the filter
	// has no false negatives), only the shuffle volume changes.
	BloomPrune bool
	// BloomFPRate is the pruning filter's false-positive target
	// (sketch.DefaultBloomFPRate when unset).
	BloomFPRate float64
	// Observer receives sketch-tier counters (Bloom probes/prunes); nil
	// disables instrumentation.
	Observer *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 1 << 20
	}
	if c.NumReducers <= 0 {
		c.NumReducers = 4
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

// Engine executes plan DAGs over registered relations.
type Engine struct {
	cfg    Config
	tables map[string]*dataset.Relation
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), tables: make(map[string]*dataset.Relation)}
}

// Register makes a materialised relation available to queries.
func (e *Engine) Register(rel *dataset.Relation) { e.tables[rel.Schema.Name] = rel }

// JobStats records the measured data flow of one executed job — the ground
// truth the selectivity estimator is validated against.
type JobStats struct {
	Job                         *plan.Job
	InBytes, MedBytes, OutBytes int64
	InRows, MedRows, OutRows    int64
	NumMaps                     int
	// BloomProbed/BloomPruned count probe-side rows tested against the
	// semi-join filter and rows it dropped before the shuffle (both 0
	// when Config.BloomPrune is off or the job has no shuffle join).
	BloomProbed, BloomPruned int64
}

// IS returns the measured intermediate selectivity D_med/D_in.
func (s *JobStats) IS() float64 {
	if s.InBytes == 0 {
		return 0
	}
	return float64(s.MedBytes) / float64(s.InBytes)
}

// FS returns the measured final selectivity D_out/D_in.
func (s *JobStats) FS() float64 {
	if s.InBytes == 0 {
		return 0
	}
	return float64(s.OutBytes) / float64(s.InBytes)
}

// QueryResult is the outcome of executing a DAG.
type QueryResult struct {
	Stats map[string]*JobStats
	// Final is the sink job's output.
	Final *Frame
}

// RunQuery executes all jobs of the DAG in topological order.
func (e *Engine) RunQuery(d *plan.DAG) (*QueryResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	res := &QueryResult{Stats: make(map[string]*JobStats, len(d.Jobs))}
	frames := make(map[string]*Frame, len(d.Jobs))
	for _, job := range d.Jobs {
		out, stats, err := e.runJob(job, frames)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
		}
		frames[job.ID] = out
		res.Stats[job.ID] = stats
		res.Final = out
	}
	return res, nil
}

// jobInput is one resolved input: the source frame (scan output columns or
// an upstream frame), the raw bytes/rows read, and scan predicates to apply
// in the map phase.
type jobInput struct {
	frame    *Frame // unfiltered source data with qualified columns
	rawBytes int64
	rawRows  int64
	preds    []query.Predicate
	// table is the scanned base table name ("" for upstream frames); it
	// selects the fragmentation factor for split sizing.
	table string
}

// loadScan materialises one base-table scan as a job input: the pruned
// columns of every row, with the pushed-down predicates attached for the
// map phase. Raw sizes count the full table, as the job reads every block.
func (e *Engine) loadScan(ts plan.TableScan) (jobInput, error) {
	rel, ok := e.tables[ts.Table]
	if !ok {
		return jobInput{}, fmt.Errorf("table %q not registered", ts.Table)
	}
	idx := make([]int, len(ts.Columns))
	cols := make([]string, len(ts.Columns))
	for i, c := range ts.Columns {
		j := rel.Schema.ColumnIndex(c)
		if j < 0 {
			return jobInput{}, fmt.Errorf("table %q has no column %q", ts.Table, c)
		}
		idx[i] = j
		cols[i] = ts.Table + "." + c
	}
	rows := make([]dataset.Row, len(rel.Rows))
	for i, r := range rel.Rows {
		nr := make(dataset.Row, len(idx))
		for k, j := range idx {
			nr[k] = r[j]
		}
		rows[i] = nr
	}
	return jobInput{
		frame:    NewFrame(cols, rows),
		rawBytes: rel.Bytes(),
		rawRows:  rel.NumRows(),
		preds:    ts.Preds,
		table:    ts.Table,
	}, nil
}

func (e *Engine) resolveInputs(job *plan.Job, frames map[string]*Frame) ([]jobInput, error) {
	var ins []jobInput
	for _, ts := range job.Scans {
		in, err := e.loadScan(ts)
		if err != nil {
			return nil, err
		}
		ins = append(ins, in)
	}
	for _, dep := range job.Deps {
		f, ok := frames[dep.ID]
		if !ok {
			return nil, fmt.Errorf("dependency %s not yet executed", dep.ID)
		}
		ins = append(ins, jobInput{frame: f, rawBytes: f.Bytes(), rawRows: f.NumRows()})
	}
	if len(ins) == 0 {
		return nil, fmt.Errorf("job has no inputs")
	}
	return ins, nil
}

func (e *Engine) runJob(job *plan.Job, frames map[string]*Frame) (*Frame, *JobStats, error) {
	ins, err := e.resolveInputs(job, frames)
	if err != nil {
		return nil, nil, err
	}
	stats := &JobStats{Job: job}
	for _, in := range ins {
		stats.InBytes += in.rawBytes
		stats.InRows += in.rawRows
	}
	ins, err = e.applyMapJoins(job, ins, stats)
	if err != nil {
		return nil, nil, err
	}
	switch job.Type {
	case plan.Extract:
		return e.runExtract(job, ins[0], stats)
	case plan.Groupby:
		return e.runGroupby(job, ins[0], stats)
	case plan.Join:
		return e.runJoin(job, ins, stats)
	}
	return nil, nil, fmt.Errorf("unknown job type %v", job.Type)
}

// splits partitions [0, n) rows into map-task ranges of ~BlockSize bytes,
// shrunk by the table's fragmentation factor for base-table scans so the
// engine's task granularity matches the estimator's.
func (e *Engine) splits(f *Frame, rawBytes int64, table string) [][2]int {
	n := len(f.Rows)
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	avg := rawBytes / int64(n)
	if avg <= 0 {
		avg = 1
	}
	eff := float64(e.cfg.BlockSize)
	if table != "" {
		eff *= selectivity.FragFactor(table)
	}
	per := int(eff / float64(avg))
	if per < 1 {
		per = 1
	}
	var out [][2]int
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// mapFilter runs the map phase for one input: parallel tasks filter rows by
// the scan predicates. It returns per-split row slices (deterministic
// order) and the filtered byte/row totals.
func (e *Engine) mapFilter(in jobInput) ([][]dataset.Row, int64, int64) {
	f := in.frame
	sp := e.splits(f, in.rawBytes, in.table)
	out := make([][]dataset.Row, len(sp))
	predIdx := make([]int, len(in.preds))
	for i, p := range in.preds {
		predIdx[i] = f.Col(p.Left.String())
	}
	var medBytes, medRows int64
	var mu sync.Mutex
	sem := make(chan struct{}, e.cfg.Parallelism)
	var wg sync.WaitGroup
	for si, s := range sp {
		wg.Add(1)
		sem <- struct{}{}
		go func(si, lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			var rows []dataset.Row
			var bytes int64
			for _, r := range f.Rows[lo:hi] {
				ok := true
				for pi, p := range in.preds {
					if predIdx[pi] < 0 || !evalPred(r[predIdx[pi]], p) {
						ok = false
						break
					}
				}
				if ok {
					rows = append(rows, r)
					bytes += int64(r.Width())
				}
			}
			out[si] = rows
			mu.Lock()
			medBytes += bytes
			medRows += int64(len(rows))
			mu.Unlock()
		}(si, s[0], s[1])
	}
	wg.Wait()
	return out, medBytes, medRows
}

// runExtract filters, optionally sorts, and optionally limits one input.
func (e *Engine) runExtract(job *plan.Job, in jobInput, stats *JobStats) (*Frame, *JobStats, error) {
	parts, medBytes, medRows := e.mapFilter(in)
	stats.MedBytes, stats.MedRows = medBytes, medRows
	stats.NumMaps = len(parts)
	var rows []dataset.Row
	for _, p := range parts {
		rows = append(rows, p...)
	}
	out := NewFrame(in.frame.Cols, rows)
	if len(job.OrderKeys) > 0 {
		keyIdx := make([]int, len(job.OrderKeys))
		for i, k := range job.OrderKeys {
			keyIdx[i] = out.Col(k.Col.String())
			if keyIdx[i] < 0 {
				return nil, nil, fmt.Errorf("order key %s not in input", k.Col)
			}
		}
		sort.SliceStable(out.Rows, func(a, b int) bool {
			ra, rb := out.Rows[a], out.Rows[b]
			for i, ki := range keyIdx {
				va, vb := ra[ki], rb[ki]
				if va.Equal(vb) {
					continue
				}
				less := va.Less(vb)
				if job.OrderKeys[i].Desc {
					return !less
				}
				return less
			}
			return false
		})
	}
	if job.Limit >= 0 && int64(len(out.Rows)) > job.Limit {
		out.Rows = out.Rows[:job.Limit]
	}
	stats.OutRows = out.NumRows()
	stats.OutBytes = out.Bytes()
	return out, stats, nil
}

// groupKey renders the composite grouping key of a row.
func groupKey(row dataset.Row, keyIdx []int) string {
	if len(keyIdx) == 0 {
		return ""
	}
	k := ""
	for _, i := range keyIdx {
		k += row[i].Key() + "\x00"
	}
	return k
}

// runGroupby aggregates with per-map combines: each map task filters its
// split and pre-aggregates locally (the combine that Eq. 2 models), then
// reducers merge the partial states by key.
func (e *Engine) runGroupby(job *plan.Job, in jobInput, stats *JobStats) (*Frame, *JobStats, error) {
	f := in.frame
	keyIdx := make([]int, len(job.GroupKeys))
	for i, k := range job.GroupKeys {
		keyIdx[i] = f.Col(k.String())
		if keyIdx[i] < 0 {
			return nil, nil, fmt.Errorf("group key %s not in input", k)
		}
	}
	predIdx := make([]int, len(in.preds))
	for i, p := range in.preds {
		predIdx[i] = f.Col(p.Left.String())
	}

	type combined struct {
		keyRow dataset.Row // group key values
		states []*aggState
		having []*aggState
	}
	sp := e.splits(f, in.rawBytes, in.table)
	stats.NumMaps = len(sp)
	partials := make([]map[string]*combined, len(sp))
	var medBytes, medRows int64
	var mu sync.Mutex
	sem := make(chan struct{}, e.cfg.Parallelism)
	var wg sync.WaitGroup
	var firstErr error
	for si, s := range sp {
		wg.Add(1)
		sem <- struct{}{}
		go func(si, lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			local := make(map[string]*combined)
			for _, r := range f.Rows[lo:hi] {
				ok := true
				for pi, p := range in.preds {
					if predIdx[pi] < 0 || !evalPred(r[predIdx[pi]], p) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				k := groupKey(r, keyIdx)
				c := local[k]
				if c == nil {
					kr := make(dataset.Row, len(keyIdx))
					for i, ki := range keyIdx {
						kr[i] = r[ki]
					}
					c = &combined{
						keyRow: kr,
						states: make([]*aggState, len(job.Aggs)),
						having: make([]*aggState, len(job.Having)),
					}
					for i, a := range job.Aggs {
						c.states[i] = newAggState(a.Agg)
					}
					for i, h := range job.Having {
						c.having[i] = newAggState(h.Agg)
					}
					local[k] = c
				}
				for i, a := range job.Aggs {
					if a.Star {
						c.states[i].addCount(1)
						continue
					}
					v, err := evalExpr(f, r, a.Expr)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					c.states[i].add(v)
				}
				for i, h := range job.Having {
					if h.Star {
						c.having[i].addCount(1)
						continue
					}
					v, err := evalExpr(f, r, h.Expr)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					c.having[i].add(v)
				}
			}
			partials[si] = local
			// Combined map-output records: key columns + one 8-byte partial
			// per aggregate.
			var bytes int64
			for _, c := range local {
				bytes += int64(c.keyRow.Width()) + 8*int64(len(job.Aggs))
			}
			mu.Lock()
			medBytes += bytes
			medRows += int64(len(local))
			mu.Unlock()
		}(si, s[0], s[1])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	stats.MedBytes, stats.MedRows = medBytes, medRows

	// Reduce: merge partials across maps.
	final := make(map[string]*combined)
	for _, local := range partials {
		for k, c := range local {
			fc := final[k]
			if fc == nil {
				final[k] = c
				continue
			}
			for i := range fc.states {
				fc.states[i].merge(c.states[i])
			}
			for i := range fc.having {
				fc.having[i].merge(c.having[i])
			}
		}
	}
	// Deterministic output order: sort by key.
	keys := make([]string, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cols := make([]string, 0, len(job.GroupKeys)+len(job.Aggs))
	for _, k := range job.GroupKeys {
		cols = append(cols, k.String())
	}
	for i := range job.Aggs {
		cols = append(cols, fmt.Sprintf("%s.agg%d", job.ID, i))
	}
	rows := make([]dataset.Row, 0, len(final))
	for _, k := range keys {
		c := final[k]
		// HAVING: drop groups whose aggregate fails any conjunct.
		keep := true
		for i, h := range job.Having {
			v := c.having[i].value().Num()
			if !cmpFloats(v, h.Lit.F, h.Op) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := make(dataset.Row, 0, len(cols))
		row = append(row, c.keyRow...)
		for _, st := range c.states {
			row = append(row, st.value())
		}
		rows = append(rows, row)
	}
	out := NewFrame(cols, rows)
	stats.OutRows = out.NumRows()
	stats.OutBytes = out.Bytes()
	return out, stats, nil
}

// runJoin hash-joins two inputs on the equi-join keys: maps filter each
// side, the shuffle partitions by key hash, and reducers build/probe per
// partition in parallel. Broadcast joins (plan.Job.Broadcast) skip the
// shuffle: every map task probes an in-memory copy of the small side.
func (e *Engine) runJoin(job *plan.Job, ins []jobInput, stats *JobStats) (*Frame, *JobStats, error) {
	if len(ins) != 2 {
		return nil, nil, fmt.Errorf("join expects 2 inputs, got %d", len(ins))
	}
	leftKey, rightKey := job.JoinLeft.String(), job.JoinRight.String()
	a, b := ins[0], ins[1]
	if a.frame.Col(leftKey) < 0 && b.frame.Col(leftKey) >= 0 {
		a, b = b, a
	}
	li, ri := a.frame.Col(leftKey), b.frame.Col(rightKey)
	if li < 0 || ri < 0 {
		return nil, nil, fmt.Errorf("join keys %s/%s not found", leftKey, rightKey)
	}
	if job.MapOnly && job.Broadcast != "" {
		return e.runBroadcastJoin(job, a, b, li, ri, stats)
	}

	lparts, lb, lr := e.mapFilter(a)
	rparts, rb, rr := e.mapFilter(b)
	stats.MedBytes = lb + rb
	stats.MedRows = lr + rr
	stats.NumMaps = len(lparts) + len(rparts)
	if e.cfg.BloomPrune {
		// Semi-join pruning: the smaller filtered side builds the
		// filter, the larger side sheds definite non-matches before its
		// rows are shuffled. D_med shrinks by exactly the pruned volume.
		var prunedBytes int64
		if lr <= rr {
			prunedBytes = e.bloomPruneProbe(e.buildJoinBloom(lparts, li), rparts, ri, stats)
		} else {
			prunedBytes = e.bloomPruneProbe(e.buildJoinBloom(rparts, ri), lparts, li, stats)
		}
		stats.MedBytes -= prunedBytes
		stats.MedRows -= stats.BloomPruned
	}

	R := e.cfg.NumReducers
	lbuckets := make([][]dataset.Row, R)
	rbuckets := make([][]dataset.Row, R)
	fill := func(parts [][]dataset.Row, ki int, buckets [][]dataset.Row) {
		for _, p := range parts {
			for _, row := range p {
				h := fnv.New32a()
				h.Write([]byte(row[ki].Key()))
				buckets[int(h.Sum32())%R] = append(buckets[int(h.Sum32())%R], row)
			}
		}
	}
	fill(lparts, li, lbuckets)
	fill(rparts, ri, rbuckets)

	outRows := make([][]dataset.Row, R)
	sem := make(chan struct{}, e.cfg.Parallelism)
	var wg sync.WaitGroup
	for p := 0; p < R; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			build := make(map[string][]dataset.Row)
			for _, row := range lbuckets[p] {
				k := row[li].Key()
				build[k] = append(build[k], row)
			}
			var rows []dataset.Row
			for _, rrow := range rbuckets[p] {
				for _, lrow := range build[rrow[ri].Key()] {
					joined := make(dataset.Row, 0, len(lrow)+len(rrow))
					joined = append(joined, lrow...)
					joined = append(joined, rrow...)
					rows = append(rows, joined)
				}
			}
			outRows[p] = rows
		}(p)
	}
	wg.Wait()

	cols := make([]string, 0, len(a.frame.Cols)+len(b.frame.Cols))
	cols = append(cols, a.frame.Cols...)
	cols = append(cols, b.frame.Cols...)
	var rows []dataset.Row
	for _, p := range outRows {
		rows = append(rows, p...)
	}
	out := NewFrame(cols, rows)
	stats.OutRows = out.NumRows()
	stats.OutBytes = out.Bytes()
	return out, stats, nil
}

// runBroadcastJoin executes a map-side join: the broadcast side is fully
// materialised into a hash table, and each map split of the probe side
// joins against it in parallel — no shuffle, no reduce phase.
func (e *Engine) runBroadcastJoin(job *plan.Job, a, b jobInput, li, ri int, stats *JobStats) (*Frame, *JobStats, error) {
	// Identify which input is the broadcast table; `a` carries the join's
	// left columns, so remember the side for column ordering.
	build, probe := a, b
	buildKey, probeKey := li, ri
	buildLeft := true
	if a.table != job.Broadcast {
		build, probe = b, a
		buildKey, probeKey = ri, li
		buildLeft = false
	}
	// Filter + hash the broadcast side once.
	bparts, _, _ := e.mapFilter(build)
	hash := make(map[string][]dataset.Row)
	for _, part := range bparts {
		for _, row := range part {
			k := row[buildKey].Key()
			hash[k] = append(hash[k], row)
		}
	}
	// Probe side: filter and join inside each map split.
	f := probe.frame
	sp := e.splits(f, probe.rawBytes, probe.table)
	stats.NumMaps = len(sp)
	predIdx := make([]int, len(probe.preds))
	for i, p := range probe.preds {
		predIdx[i] = f.Col(p.Left.String())
	}
	out := make([][]dataset.Row, len(sp))
	var medBytes, medRows int64
	var mu sync.Mutex
	sem := make(chan struct{}, e.cfg.Parallelism)
	var wg sync.WaitGroup
	for si, s := range sp {
		wg.Add(1)
		sem <- struct{}{}
		go func(si, lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			var rows []dataset.Row
			var bytes int64
			for _, r := range f.Rows[lo:hi] {
				ok := true
				for pi, p := range probe.preds {
					if predIdx[pi] < 0 || !evalPred(r[predIdx[pi]], p) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, brow := range hash[r[probeKey].Key()] {
					var joined dataset.Row
					if buildLeft {
						joined = append(append(dataset.Row{}, brow...), r...)
					} else {
						joined = append(append(dataset.Row{}, r...), brow...)
					}
					rows = append(rows, joined)
					bytes += int64(joined.Width())
				}
			}
			out[si] = rows
			mu.Lock()
			medBytes += bytes
			medRows += int64(len(rows))
			mu.Unlock()
		}(si, s[0], s[1])
	}
	wg.Wait()
	// No shuffle: the map output is the job output.
	stats.MedBytes, stats.MedRows = medBytes, medRows
	var rows []dataset.Row
	for _, p := range out {
		rows = append(rows, p...)
	}
	cols := make([]string, 0, len(a.frame.Cols)+len(b.frame.Cols))
	if buildLeft {
		cols = append(cols, build.frame.Cols...)
		cols = append(cols, probe.frame.Cols...)
	} else {
		cols = append(cols, probe.frame.Cols...)
		cols = append(cols, build.frame.Cols...)
	}
	res := NewFrame(cols, rows)
	stats.OutRows = res.NumRows()
	stats.OutBytes = res.Bytes()
	return res, stats, nil
}

// applyMapJoins executes the job's folded broadcast-join preludes: for each
// spec the small table is hashed and the matching probe input's frame is
// replaced with the joined rows, exactly as the merged map phase would see
// them. Probe-side predicates stay attached (row-level filters commute with
// the join); broadcast-side predicates apply while building the hash.
func (e *Engine) applyMapJoins(job *plan.Job, ins []jobInput, stats *JobStats) ([]jobInput, error) {
	for _, spec := range job.MapJoins {
		b, err := e.loadScan(spec.BroadcastScan)
		if err != nil {
			return nil, err
		}
		stats.InBytes += b.rawBytes
		stats.InRows += b.rawRows
		bKey, pKey := spec.JoinLeft.String(), spec.JoinRight.String()
		if b.frame.Col(bKey) < 0 {
			bKey, pKey = pKey, bKey
		}
		bi := b.frame.Col(bKey)
		if bi < 0 {
			return nil, fmt.Errorf("map-join key %s not in broadcast table %s", bKey, spec.BroadcastScan.Table)
		}
		pi := -1
		for i := range ins {
			if ins[i].frame.Col(pKey) >= 0 {
				pi = i
				break
			}
		}
		if pi < 0 {
			return nil, fmt.Errorf("map-join probe key %s not found in inputs", pKey)
		}
		// Build the hash from the filtered broadcast side.
		bparts, _, _ := e.mapFilter(b)
		hash := make(map[string][]dataset.Row)
		for _, part := range bparts {
			for _, row := range part {
				k := row[bi].Key()
				hash[k] = append(hash[k], row)
			}
		}
		probe := ins[pi]
		pidx := probe.frame.Col(pKey)
		cols := append(append([]string{}, probe.frame.Cols...), b.frame.Cols...)
		var rows []dataset.Row
		for _, r := range probe.frame.Rows {
			for _, brow := range hash[r[pidx].Key()] {
				rows = append(rows, append(append(dataset.Row{}, r...), brow...))
			}
		}
		joined := NewFrame(cols, rows)
		ins[pi] = jobInput{
			frame:    joined,
			rawBytes: joined.Bytes(),
			rawRows:  joined.NumRows(),
			preds:    probe.preds,
		}
	}
	return ins, nil
}
