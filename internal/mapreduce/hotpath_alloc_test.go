package mapreduce

import (
	"testing"

	"saqp/internal/dataset"
	"saqp/internal/query"
	"saqp/internal/sketch"
)

// Sinks defeat dead-code elimination inside AllocsPerRun closures.
var (
	hotSinkBool bool
	hotSinkU64  uint64
)

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract:
// the allocfree analyzer proves statically that these functions contain
// no allocating constructs, and this guard proves the compiled code
// actually performs zero heap allocations per call.
func TestHotPathAllocs(t *testing.T) {
	numRow := dataset.Float(3.5)
	strRow := dataset.Str("x")
	numPred := query.Predicate{Op: query.OpLT, Lit: query.NumLit(10)}
	strPred := query.Predicate{Op: query.OpEQ, Lit: query.StrLit("x")}
	inPred := query.Predicate{Op: query.OpIN, Set: []query.Literal{query.NumLit(1), query.NumLit(3.5)}}
	a, b := newAggState(query.AggSum), newAggState(query.AggSum)
	b.add(2)
	bloom := sketch.NewBloom(10_000, sketch.DefaultBloomFPRate)
	bloom.AddHash(hashRowKey(dataset.Int(7)))
	intVal, floatVal, dateVal := dataset.Int(424242), dataset.Float(-3.25), dataset.Date(10957)
	cases := []struct {
		name string
		fn   func()
	}{
		{"evalPred/numeric", func() { hotSinkBool = evalPred(numRow, numPred) }},
		{"evalPred/string", func() { hotSinkBool = evalPred(strRow, strPred) }},
		{"evalPred/in", func() { hotSinkBool = evalPred(numRow, inPred) }},
		{"cmpFloats", func() { hotSinkBool = cmpFloats(1, 2, query.OpLE) }},
		{"cmpStrings", func() { hotSinkBool = cmpStrings("a", "b", query.OpGT) }},
		{"aggState.add", func() { a.add(1.5) }},
		{"aggState.addCount", func() { a.addCount(2) }},
		{"aggState.merge", func() { a.merge(b) }},
		{"hashRowKey/int", func() { hotSinkU64 = hashRowKey(intVal) }},
		{"hashRowKey/float", func() { hotSinkU64 = hashRowKey(floatVal) }},
		{"hashRowKey/date", func() { hotSinkU64 = hashRowKey(dateVal) }},
		{"hashRowKey/string", func() { hotSinkU64 = hashRowKey(strRow) }},
		{"bloomKeep", func() { hotSinkBool = bloomKeep(bloom, intVal) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", c.name, n)
		}
	}
}
