package mapreduce

import (
	"testing"

	"saqp/internal/dataset"
	"saqp/internal/query"
)

// Sinks defeat dead-code elimination inside AllocsPerRun closures.
var (
	hotSinkBool bool
)

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract:
// the allocfree analyzer proves statically that these functions contain
// no allocating constructs, and this guard proves the compiled code
// actually performs zero heap allocations per call.
func TestHotPathAllocs(t *testing.T) {
	numRow := dataset.Float(3.5)
	strRow := dataset.Str("x")
	numPred := query.Predicate{Op: query.OpLT, Lit: query.NumLit(10)}
	strPred := query.Predicate{Op: query.OpEQ, Lit: query.StrLit("x")}
	inPred := query.Predicate{Op: query.OpIN, Set: []query.Literal{query.NumLit(1), query.NumLit(3.5)}}
	a, b := newAggState(query.AggSum), newAggState(query.AggSum)
	b.add(2)
	cases := []struct {
		name string
		fn   func()
	}{
		{"evalPred/numeric", func() { hotSinkBool = evalPred(numRow, numPred) }},
		{"evalPred/string", func() { hotSinkBool = evalPred(strRow, strPred) }},
		{"evalPred/in", func() { hotSinkBool = evalPred(numRow, inPred) }},
		{"cmpFloats", func() { hotSinkBool = cmpFloats(1, 2, query.OpLE) }},
		{"cmpStrings", func() { hotSinkBool = cmpStrings("a", "b", query.OpGT) }},
		{"aggState.add", func() { a.add(1.5) }},
		{"aggState.addCount", func() { a.addCount(2) }},
		{"aggState.merge", func() { a.merge(b) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", c.name, n)
		}
	}
}
