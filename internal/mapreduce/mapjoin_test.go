package mapreduce

import (
	"sort"
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/selectivity"
)

// TestBroadcastJoinMatchesShuffleJoin is the map-side join keystone: the
// MAPJOIN-hinted plan must produce exactly the same multiset of rows as the
// reduce-side plan, while running with zero reduce tasks.
func TestBroadcastJoinMatchesShuffleJoin(t *testing.T) {
	e := newTestEngine(t)
	shuffle := run(t, e, `SELECT s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey AND n_nationkey < 20`)
	broadcast := run(t, e, `SELECT /*+ MAPJOIN(nation) */ s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey AND n_nationkey < 20`)

	if shuffle.Final.NumRows() != broadcast.Final.NumRows() {
		t.Fatalf("row counts differ: shuffle %d vs broadcast %d",
			shuffle.Final.NumRows(), broadcast.Final.NumRows())
	}
	// Same multiset of rows (order may differ between strategies).
	key := func(f *Frame) []string {
		si := f.Col("supplier.s_name")
		out := make([]string, 0, len(f.Rows))
		for _, r := range f.Rows {
			out = append(out, r[si].S)
		}
		sort.Strings(out)
		return out
	}
	a, b := key(shuffle.Final), key(broadcast.Final)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestBroadcastJoinIsMapOnly(t *testing.T) {
	e := newTestEngine(t)
	res := run(t, e, `SELECT /*+ MAPJOIN(nation) */ s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey`)
	st := res.Stats["J1"]
	// The map output is the job output: no shuffle amplification.
	if st.MedBytes != st.OutBytes {
		t.Fatalf("broadcast join MedBytes %d != OutBytes %d", st.MedBytes, st.OutBytes)
	}
	if st.NumMaps < 1 {
		t.Fatal("no map tasks")
	}
}

func TestBroadcastJoinDownstreamGroupby(t *testing.T) {
	// The Q11 chain with a MAPJOIN first stage must still produce correct
	// downstream results.
	e := newTestEngine(t)
	plain := run(t, e, `SELECT ps_partkey, sum(ps_supplycost) FROM nation JOIN supplier ON s_nationkey = n_nationkey
		JOIN partsupp ON ps_suppkey = s_suppkey GROUP BY ps_partkey`)
	hinted := run(t, e, `SELECT /*+ MAPJOIN(nation) */ ps_partkey, sum(ps_supplycost) FROM nation JOIN supplier ON s_nationkey = n_nationkey
		JOIN partsupp ON ps_suppkey = s_suppkey GROUP BY ps_partkey`)
	if plain.Final.NumRows() != hinted.Final.NumRows() {
		t.Fatalf("groups differ: %d vs %d", plain.Final.NumRows(), hinted.Final.NumRows())
	}
	// Group sums identical (both outputs are key-sorted by the engine).
	for i := range plain.Final.Rows {
		if plain.Final.Rows[i][1].F != hinted.Final.Rows[i][1].F {
			t.Fatalf("group %d sum differs", i)
		}
	}
}

func TestBroadcastJoinEstimate(t *testing.T) {
	d := compile(t, `SELECT /*+ MAPJOIN(nation) */ s_name FROM nation JOIN supplier ON s_nationkey = n_nationkey`)
	j := d.Jobs[0]
	if !j.MapOnly || j.Broadcast != "nation" {
		t.Fatalf("plan not map-only broadcast: %+v", j)
	}
	cat := catalog.FromSchemas([]*dataset.Schema{dataset.Nation(), dataset.Supplier()}, 1, 64)
	qe, err := selectivity.NewEstimator(cat, selectivity.Config{}).EstimateQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	je := qe.ByID["J1"]
	if je.NumReduces != 0 {
		t.Fatalf("broadcast join has %d reduces", je.NumReduces)
	}
	if je.MedBytes != je.OutBytes {
		t.Fatalf("map-only D_med %v != D_out %v", je.MedBytes, je.OutBytes)
	}
	if je.IS < 0 || je.IS > 1 {
		t.Fatalf("IS = %v", je.IS)
	}
	// Maps come only from the probe (supplier) side, each reading the
	// broadcast table as side data.
	if len(je.MapGroups) != 1 {
		t.Fatalf("map groups = %d, want 1 (probe side only)", len(je.MapGroups))
	}
	supBytes := float64(dataset.Supplier().BytesAt(1))
	natBytes := float64(dataset.Nation().BytesAt(1))
	perMap := je.MapGroups[0].InBytes
	if perMap <= natBytes {
		t.Fatalf("per-map input %v should include the broadcast table (%v)", perMap, natBytes)
	}
	total := perMap * float64(je.MapGroups[0].Count)
	if total < supBytes {
		t.Fatalf("map group total %v below probe table %v", total, supBytes)
	}
}

func TestINPredicateEngineVsEstimator(t *testing.T) {
	e := newTestEngine(t)
	cat := fixtureCatalog()
	est := selectivity.NewEstimator(cat, selectivity.Config{BlockSize: 64 << 10})
	d := compile(t, `SELECT l_orderkey FROM lineitem WHERE l_quantity IN (1, 5, 9, 13)`)
	qe, err := est.EstimateQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Stats["J1"].OutRows)
	want := qe.ByID["J1"].OutRows
	if rel := relErrF(want, got); rel > 0.15 {
		t.Fatalf("IN selectivity: est %.0f vs measured %.0f (err %.3f)", want, got, rel)
	}
}

func TestBetweenPredicateEngineVsEstimator(t *testing.T) {
	e := newTestEngine(t)
	cat := fixtureCatalog()
	est := selectivity.NewEstimator(cat, selectivity.Config{BlockSize: 64 << 10})
	d := compile(t, `SELECT l_orderkey FROM lineitem WHERE l_quantity BETWEEN 10 AND 20`)
	qe, err := est.EstimateQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Stats["J1"].OutRows)
	want := qe.ByID["J1"].OutRows
	if rel := relErrF(want, got); rel > 0.10 {
		t.Fatalf("BETWEEN selectivity: est %.0f vs measured %.0f (err %.3f)", want, got, rel)
	}
}

var _ = plan.Join // keep plan import if helpers change

// TestMergedMapJoinMatchesShufflePlan executes the same logical query under
// the merged (MAPJOIN-prelude) plan and the plain shuffle plan: the final
// grouped results must be identical row for row.
func TestMergedMapJoinMatchesShufflePlan(t *testing.T) {
	e := newTestEngine(t)
	merged := run(t, e, `SELECT /*+ MAPJOIN(part) */ p_type, sum(l_extendedprice)
		FROM part JOIN lineitem ON l_partkey = p_partkey
		WHERE l_quantity < 30 GROUP BY p_type`)
	plain := run(t, e, `SELECT p_type, sum(l_extendedprice)
		FROM part JOIN lineitem ON l_partkey = p_partkey
		WHERE l_quantity < 30 GROUP BY p_type`)
	if merged.Final.NumRows() != plain.Final.NumRows() {
		t.Fatalf("group counts differ: merged %d vs plain %d",
			merged.Final.NumRows(), plain.Final.NumRows())
	}
	// Both group outputs are key-sorted; compare values directly. Column
	// names differ (J1.agg0 vs J2.agg0), so compare positionally.
	for i := range merged.Final.Rows {
		mk, pk := merged.Final.Rows[i][0], plain.Final.Rows[i][0]
		if !mk.Equal(pk) {
			t.Fatalf("group %d key differs: %v vs %v", i, mk, pk)
		}
		mv, pv := merged.Final.Rows[i][1].F, plain.Final.Rows[i][1].F
		// Summation order differs between the two plans; allow FP slack.
		if diff := mv - pv; diff > 1e-9*pv || diff < -1e-9*pv {
			t.Fatalf("group %d sum differs: %v vs %v", i, mv, pv)
		}
	}
	// The merged plan must actually be shorter.
	if len(merged.Stats) >= len(plain.Stats) {
		t.Fatalf("merged plan not shorter: %d vs %d jobs", len(merged.Stats), len(plain.Stats))
	}
}

// TestMergedMapJoinWithBroadcastFilter checks a filtered broadcast side
// through the merged path.
func TestMergedMapJoinWithBroadcastFilter(t *testing.T) {
	e := newTestEngine(t)
	merged := run(t, e, `SELECT /*+ MAPJOIN(n) */ ps_partkey, count(*)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_nationkey < 5
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`)
	plain := run(t, e, `SELECT ps_partkey, count(*)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_nationkey < 5
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`)
	if merged.Final.NumRows() != plain.Final.NumRows() {
		t.Fatalf("group counts differ: %d vs %d", merged.Final.NumRows(), plain.Final.NumRows())
	}
	for i := range merged.Final.Rows {
		if !merged.Final.Rows[i][0].Equal(plain.Final.Rows[i][0]) ||
			merged.Final.Rows[i][1].I != plain.Final.Rows[i][1].I {
			t.Fatalf("group %d differs", i)
		}
	}
}
