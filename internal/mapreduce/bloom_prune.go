package mapreduce

import (
	"strconv"

	"saqp/internal/dataset"
	"saqp/internal/sketch"
)

// Bloom semi-join pruning: before a shuffle join moves both filtered
// sides to the reducers, the engine builds a Bloom filter over the
// smaller side's join keys and probes every row of the larger side,
// dropping rows whose key is definitely absent. A dropped row can join
// nothing (the filter has no false negatives, provided hashRowKey and
// the build-side insert hash the same identity), so the join output is
// byte-identical with pruning on or off — only the shuffle volume
// changes. False positives merely travel to a reducer and match nothing
// there, exactly as they would without the filter.

// hashRowKey hashes a value's join identity. The engine joins on
// Value.Key() string equality, so this must equal
// sketch.Hash64String(v.Key()) for every kind — that identity is what
// makes pruning false-negative-free — while formatting into stack
// buffers instead of materialising the key string.
//
//saqp:hotpath
func hashRowKey(v dataset.Value) uint64 {
	switch v.K {
	case dataset.KindInt, dataset.KindDate:
		var buf [20]byte // len("-9223372036854775808")
		return sketch.Hash64(strconv.AppendInt(buf[:0], v.I, 10))
	case dataset.KindFloat:
		var buf [32]byte // 'g' shortest round-trip float64 fits well inside
		return sketch.Hash64(strconv.AppendFloat(buf[:0], v.F, 'g', -1, 64))
	}
	return sketch.Hash64String(v.S)
}

// bloomKeep is the per-row probe kernel of the pruned shuffle path.
//
//saqp:hotpath
func bloomKeep(f *sketch.Bloom, v dataset.Value) bool {
	return f.ContainsHash(hashRowKey(v))
}

// buildJoinBloom sizes a filter for the build side's filtered rows and
// inserts every join key.
func (e *Engine) buildJoinBloom(parts [][]dataset.Row, ki int) *sketch.Bloom {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	fp := e.cfg.BloomFPRate
	if fp <= 0 || fp >= 1 {
		fp = sketch.DefaultBloomFPRate
	}
	f := sketch.NewBloom(n, fp)
	for _, p := range parts {
		for _, row := range p {
			f.AddHash(hashRowKey(row[ki]))
		}
	}
	return f
}

// bloomPruneProbe drops probe-side rows whose join key is definitely
// not on the build side, compacting each split in place (the kept
// prefix reuses the split's own backing array, so the probe loop
// allocates nothing). It returns the pruned byte volume and updates the
// job's probe/prune counters.
func (e *Engine) bloomPruneProbe(f *sketch.Bloom, parts [][]dataset.Row, ki int, stats *JobStats) int64 {
	var prunedBytes int64
	var probed, pruned int64
	for si, p := range parts {
		kept := p[:0]
		for _, row := range p {
			probed++
			if bloomKeep(f, row[ki]) {
				kept = append(kept, row)
			} else {
				pruned++
				prunedBytes += int64(row.Width())
			}
		}
		parts[si] = kept
	}
	stats.BloomProbed += probed
	stats.BloomPruned += pruned
	e.cfg.Observer.BloomPruneOutcome(probed, pruned)
	return prunedBytes
}
