package shardserve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"saqp/internal/fault"
	"saqp/internal/learn"
	"saqp/internal/plan"
	"saqp/internal/serve"
)

// fakePending completes immediately with a canned result.
type fakePending struct {
	id string
}

func (p *fakePending) ID() string { return p.id }

func (p *fakePending) Wait(ctx context.Context) (serve.Result, error) {
	return serve.Result{ID: p.id, SimSec: 1}, nil
}

// fakeBackend is an in-memory Backend that records submissions.
type fakeBackend struct {
	name string

	mu     sync.Mutex
	seq    int
	subs   []string
	closed bool
}

func (b *fakeBackend) Submit(ctx context.Context, sql string, seed uint64) (Pending, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	b.subs = append(b.subs, sql)
	return &fakePending{id: fmt.Sprintf("q%06d", b.seq)}, nil
}

func (b *fakeBackend) Stats() serve.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return serve.Stats{Submitted: uint64(len(b.subs)), Completed: uint64(len(b.subs))}
}

func (b *fakeBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}

func (b *fakeBackend) submissions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// newTestCluster builds an n-shard cluster of fake backends with the
// given fault plan, three sentinels, and a 2-miss threshold.
func newTestCluster(t *testing.T, n int, pl *fault.Plan, reg *learn.Registry) (*Cluster, [][2]*fakeBackend) {
	t.Helper()
	backends := make([][2]*fakeBackend, n)
	specs := make([]ShardSpec, n)
	for i := range specs {
		p := &fakeBackend{name: fmt.Sprintf("s%d-primary", i)}
		r := &fakeBackend{name: fmt.Sprintf("s%d-replica", i)}
		backends[i] = [2]*fakeBackend{p, r}
		specs[i] = ShardSpec{
			Primary: Instance{Backend: p, Addr: fmt.Sprintf("127.0.0.1:7%d00", i), Model: learn.NewReplica(reg, nil)},
			Replica: Instance{Backend: r, Addr: fmt.Sprintf("127.0.0.1:7%d01", i), Model: learn.NewReplica(reg, nil)},
		}
	}
	c, err := NewCluster(Config{
		Shards:             specs,
		CatalogFingerprint: "cat-test",
		Registry:           reg,
		Sentinel: SentinelConfig{
			Sentinels:     3,
			MissThreshold: 2,
			HeartbeatSec:  1,
			Plan:          pl,
			Seed:          7,
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c, backends
}

func TestSlotPartitionCoversEverySlotExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ slots, shards int }{
		{64, 1}, {64, 2}, {64, 4}, {64, 5}, {10, 3}, {7, 7}, {128, 6},
	} {
		covered := make([]int, tc.slots)
		for shard := 0; shard < tc.shards; shard++ {
			lo, hi := SlotRange(shard, tc.slots, tc.shards)
			for s := lo; s <= hi; s++ {
				covered[s]++
				if got := OwnerOf(s, tc.slots, tc.shards); got != shard {
					t.Fatalf("slots=%d shards=%d: OwnerOf(%d)=%d but SlotRange(%d)=[%d,%d]",
						tc.slots, tc.shards, s, got, shard, lo, hi)
				}
			}
		}
		for s, n := range covered {
			if n != 1 {
				t.Fatalf("slots=%d shards=%d: slot %d covered %d times", tc.slots, tc.shards, s, n)
			}
		}
	}
}

func TestRouteNormalizesBeforeHashing(t *testing.T) {
	c, _ := newTestCluster(t, 4, nil, nil)
	defer c.Close()
	a, err := c.Route("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	b, err := c.Route("select   count(*)\n from LINEITEM where l_quantity < 24")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if a != b {
		t.Fatalf("equivalent queries routed differently: %+v vs %+v", a, b)
	}
	if a.Shard != OwnerOf(a.Slot, DefaultSlots, 4) {
		t.Fatalf("RouteInfo shard %d inconsistent with OwnerOf(%d)", a.Shard, a.Slot)
	}
	if a.Addr == "" {
		t.Fatal("RouteInfo.Addr empty; want the active instance's advertised address")
	}
}

func TestSubmitPrefixesTicketIDsWithShard(t *testing.T) {
	c, backends := newTestCluster(t, 2, nil, nil)
	defer c.Close()
	ctx := context.Background()
	p, err := c.SubmitShard(ctx, 1, "SELECT COUNT(*) FROM orders", 42)
	if err != nil {
		t.Fatalf("SubmitShard: %v", err)
	}
	if p.ID() != "s1-q000001" {
		t.Fatalf("ticket id = %q, want s1-q000001", p.ID())
	}
	res, err := p.Wait(ctx)
	if err != nil || res.ID != "s1-q000001" {
		t.Fatalf("Wait = (%+v, %v), want result id s1-q000001", res, err)
	}
	if backends[1][0].submissions() != 1 || backends[0][0].submissions() != 0 {
		t.Fatal("submission landed on the wrong shard's primary")
	}
}

// crashPlan builds a plan guaranteed to crash every node once.
func crashPlan(t *testing.T, nodes int) *fault.Plan {
	t.Helper()
	pl := fault.NewPlan(fault.Spec{
		Seed:             11,
		Nodes:            nodes,
		HorizonSec:       40,
		CrashProb:        1,
		CrashDowntimeSec: 15,
	})
	if len(pl.Crashes()) != nodes {
		t.Fatalf("crashPlan: %d windows for %d nodes", len(pl.Crashes()), nodes)
	}
	return pl
}

func TestSentinelQuorumFailover(t *testing.T) {
	pl := crashPlan(t, 2)
	c, backends := newTestCluster(t, 2, pl, nil)
	defer c.Close()

	const ticks = 60 // past horizon + downtime: every crash actuates and rejoins
	var all []Event
	for i := 0; i < ticks; i++ {
		all = append(all, c.Tick()...)
	}
	kinds := map[string]int{}
	for _, e := range all {
		kinds[e.Kind]++
	}
	if kinds[EventCrash] != 2 || kinds[EventRejoin] != 2 {
		t.Fatalf("crash/rejoin = %d/%d, want 2/2 (events: %+v)", kinds[EventCrash], kinds[EventRejoin], all)
	}
	if kinds[EventFailover] != 2 {
		t.Fatalf("failovers = %d, want one per shard", kinds[EventFailover])
	}
	if kinds[EventVote] < 2*2 {
		t.Fatalf("votes = %d, want at least quorum per shard", kinds[EventVote])
	}
	for shard := 0; shard < 2; shard++ {
		if c.ActiveRole(shard) != RoleReplica {
			t.Fatalf("shard %d active role = %v after failover, want replica", shard, c.ActiveRole(shard))
		}
	}
	st := c.Status()
	if st.Epoch != 2 {
		t.Fatalf("epoch = %d after two failovers, want 2", st.Epoch)
	}

	// Votes precede their shard's failover, and the failover carries a
	// quorum-sized vote count.
	for _, e := range all {
		if e.Kind == EventFailover && e.Votes < 2 {
			t.Fatalf("failover with %d votes, want >= quorum 2: %+v", e.Votes, e)
		}
	}

	// Post-failover traffic lands on replicas.
	ctx := context.Background()
	for shard := 0; shard < 2; shard++ {
		if _, err := c.SubmitShard(ctx, shard, "SELECT COUNT(*) FROM orders", 1); err != nil {
			t.Fatalf("post-failover submit on shard %d: %v", shard, err)
		}
		if backends[shard][1].submissions() != 1 {
			t.Fatalf("shard %d replica saw %d submissions, want 1", shard, backends[shard][1].submissions())
		}
		if backends[shard][0].submissions() != 0 {
			t.Fatalf("shard %d demoted primary still receiving traffic", shard)
		}
	}
}

func TestSubmitParksDuringOutageAndReleasesOnPromotion(t *testing.T) {
	pl := crashPlan(t, 1)
	c, backends := newTestCluster(t, 1, pl, nil)
	defer c.Close()

	// Tick until the crash actuates, but stop before the failover.
	crashed := false
	for i := 0; i < 60 && !crashed; i++ {
		for _, e := range c.Tick() {
			if e.Kind == EventCrash {
				crashed = true
			}
		}
	}
	if !crashed {
		t.Fatal("plan never actuated a crash")
	}

	ctx := context.Background()
	done := make(chan error, 1)
	ids := make(chan string, 1)
	go func() {
		p, err := c.SubmitShard(ctx, 0, "SELECT COUNT(*) FROM orders", 9)
		if err != nil {
			done <- err
			return
		}
		ids <- p.ID()
		done <- nil
	}()

	// Drive ticks until the sentinel promotes; the parked submission
	// must complete on the replica.
	failedOver := false
	for i := 0; i < 60 && !failedOver; i++ {
		for _, e := range c.Tick() {
			if e.Kind == EventFailover {
				failedOver = true
			}
		}
	}
	if !failedOver {
		t.Fatal("sentinel never failed over")
	}
	if err := <-done; err != nil {
		t.Fatalf("parked submission failed: %v", err)
	}
	if id := <-ids; id != "s0-q000001" {
		t.Fatalf("parked submission id = %q", id)
	}
	if backends[0][1].submissions() != 1 || backends[0][0].submissions() != 0 {
		t.Fatal("parked submission did not land on the promoted replica")
	}
	if c.Stats().Submitted != 1 {
		t.Fatalf("aggregated Submitted = %d, want 1", c.Stats().Submitted)
	}
}

func TestEventLogIsByteIdenticalAcrossReplays(t *testing.T) {
	run := func() []byte {
		pl := crashPlan(t, 4)
		c, _ := newTestCluster(t, 4, pl, nil)
		defer c.Close()
		for i := 0; i < 80; i++ {
			c.Tick()
		}
		return c.EventsJSON()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty event log from a plan that crashes all four nodes")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed replays diverged:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
}

func TestModelReplicationFansOutOnTick(t *testing.T) {
	reg := learn.NewRegistry(learn.Config{MinSamples: 5, Window: 4})
	c, _ := newTestCluster(t, 2, nil, reg)
	defer c.Close()

	// Bootstrap a champion on the coordinator registry.
	for i := 0; i < 20; i++ {
		x := float64(i%7 + 1)
		reg.ObserveJob(plan.Groupby, []float64{x, x * x}, 2*x+3)
	}
	leader := reg.Version()
	if leader == 0 {
		t.Fatal("registry never promoted a champion")
	}

	st := c.Status()
	for _, is := range st.Instances {
		if is.ModelVersion != 0 {
			t.Fatalf("instance %d/%v at version %d before any tick", is.Shard, is.Role, is.ModelVersion)
		}
		if is.ModelLag != leader {
			t.Fatalf("instance %d/%v lag = %d, want %d", is.Shard, is.Role, is.ModelLag, leader)
		}
	}

	c.Tick()
	st = c.Status()
	if st.LeaderVersion != leader {
		t.Fatalf("Status.LeaderVersion = %d, want %d", st.LeaderVersion, leader)
	}
	for _, is := range st.Instances {
		if is.ModelVersion != leader || is.ModelLag != 0 {
			t.Fatalf("instance %d/%v = v%d lag %d after tick, want v%d lag 0",
				is.Shard, is.Role, is.ModelVersion, is.ModelLag, leader)
		}
	}
}

func TestInfoIsStableAndShardOrdered(t *testing.T) {
	c, _ := newTestCluster(t, 2, nil, nil)
	defer c.Close()
	a := strings.Join(c.Info(), "\n")
	b := strings.Join(c.Info(), "\n")
	if a != b {
		t.Fatalf("Info output unstable:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		"cluster_enabled:1",
		"cluster_slots:64",
		"cluster_shards:2",
		"cluster_quorum:2",
		"shard=0 slots=0-31",
		"shard=1 slots=32-63",
		"primary*=127.0.0.1:7000(up,v0,lag0)",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("Info missing %q:\n%s", want, a)
		}
	}
}
