// Package shardserve scales the serving layer horizontally: a
// coordinator consistent-hashes each query's semantics-aware
// fingerprint (FNV-64a over the normalized SQL plus the catalog
// fingerprint — the same key the plan cache uses, so routing preserves
// cache affinity) onto a fixed slot space, assigns contiguous slot
// ranges to engine shards, and keeps every shard serving the same
// champion model version by fanning the coordinator registry's
// promotions out to per-shard learn.Replica copies.
//
// Each shard is a primary/replica pair of serving backends. A
// sentinel-style health loop — driven by an explicit Tick, never the
// wall clock — composes with internal/fault crash plans: plan node i's
// outage windows take down shard i's primary, phase-jittered sentinel
// heartbeats accumulate misses, a quorum of down-votes promotes the
// replica and bumps the cluster epoch, and the demoted primary rejoins
// as a standby when its window ends. Every transition is appended to
// an event log that is a pure function of (plan, sentinel config, tick
// count), so two replays of the same seed produce byte-identical
// failover histories — the property the race-enabled stress suite
// pins.
//
// The package deliberately owns no sockets: internal/net frontends
// plug in through the Route/Info accessors (serving -MOVED redirects
// and the CLUSTER verb), and the saqp facade wires real engines,
// replicas, and listeners together.
package shardserve
