package shardserve

// DefaultSlots is the default size of the hash-slot space. Small
// enough to print, large enough that four shards get sixteen slots
// each; the slot count is a routing granularity, not a shard limit.
const DefaultSlots = 64

// Fingerprint hashes a normalized query plus the catalog fingerprint
// with FNV-64a — the same identity the serving engine's plan cache
// keys on (norm + NUL + catalog), so two queries that share a cache
// entry always route to the same shard and routing never splits a
// shard's working set.
func Fingerprint(normSQL, catalogFP string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(normSQL); i++ {
		h = (h ^ uint64(normSQL[i])) * prime64
	}
	h = (h ^ 0) * prime64 // NUL separator, mirroring the cache key
	for i := 0; i < len(catalogFP); i++ {
		h = (h ^ uint64(catalogFP[i])) * prime64
	}
	return h
}

// SlotOf maps a fingerprint onto the slot space.
func SlotOf(fp uint64, slots int) int {
	if slots <= 0 {
		slots = DefaultSlots
	}
	return int(fp % uint64(slots))
}

// OwnerOf maps a slot to its owning shard: contiguous ranges, with the
// remainder slots spread one-per-shard from the front (the classic
// s*shards/slots partition).
func OwnerOf(slot, slots, shards int) int {
	if slots <= 0 || shards <= 0 {
		return 0
	}
	return slot * shards / slots
}

// SlotRange returns the inclusive [lo, hi] slot range shard owns under
// OwnerOf's partition.
func SlotRange(shard, slots, shards int) (lo, hi int) {
	if slots <= 0 || shards <= 0 {
		return 0, 0
	}
	lo = (shard*slots + shards - 1) / shards
	hi = ((shard+1)*slots+shards-1)/shards - 1
	return lo, hi
}
