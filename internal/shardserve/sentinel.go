package shardserve

import (
	"encoding/json"

	"saqp/internal/fault"
)

// SentinelConfig tunes the tick-driven health/failover loop.
type SentinelConfig struct {
	// Sentinels is the number of independent health checkers. Default 3.
	Sentinels int
	// Quorum is the number of down-votes that triggers a failover.
	// Default: majority of Sentinels.
	Quorum int
	// HeartbeatSec is the simulated seconds each Tick advances, and the
	// cadence at which every sentinel samples every shard. Default 1.
	HeartbeatSec float64
	// MissThreshold is the consecutive missed heartbeats after which one
	// sentinel votes a shard subjectively down. Default 3.
	MissThreshold int
	// Plan supplies the crash windows: plan node i's outages take down
	// shard i's primary. Nil means no crashes ever actuate.
	Plan *fault.Plan
	// Seed derives the per-sentinel heartbeat phase jitter, so the three
	// sentinels do not sample in lockstep. Default 1.
	Seed uint64
}

// normalize fills defaults and clamps the quorum into a sane range.
func (s SentinelConfig) normalize() SentinelConfig {
	if s.Sentinels <= 0 {
		s.Sentinels = 3
	}
	if s.Quorum <= 0 {
		s.Quorum = s.Sentinels/2 + 1
	}
	if s.Quorum > s.Sentinels {
		s.Quorum = s.Sentinels
	}
	if s.HeartbeatSec <= 0 {
		s.HeartbeatSec = 1
	}
	if s.MissThreshold <= 0 {
		s.MissThreshold = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// sentinelPhases spreads the sentinels' sample instants inside one
// heartbeat interval, derived deterministically from the seed.
func sentinelPhases(s SentinelConfig) []float64 {
	phases := make([]float64, s.Sentinels)
	for j := range phases {
		phases[j] = s.HeartbeatSec * float64(sentinelMix(s.Seed^uint64(j+1))>>11) / (1 << 53)
	}
	return phases
}

// sentinelMix is the SplitMix64 finalizer — a bijective avalanche used
// only to turn (seed, sentinel index) into a stable phase offset.
func sentinelMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Event kinds, in the order they can appear within one tick.
const (
	// EventCrash marks a fault-plan window taking a primary down.
	EventCrash = "crash"
	// EventRejoin marks a crashed instance returning as a standby.
	EventRejoin = "rejoin"
	// EventVote marks one sentinel crossing its miss threshold.
	EventVote = "vote"
	// EventRecover marks a sentinel retracting its vote after a
	// successful heartbeat, when no failover intervened.
	EventRecover = "recover"
	// EventFailover marks a quorum promoting a shard's replica.
	EventFailover = "failover"
)

// Event is one sentinel state transition. The log of Events is a pure
// function of (fault plan, sentinel config, tick count) — concurrent
// query traffic never influences it, which is what makes same-seed
// failover replays byte-identical.
type Event struct {
	// Tick is the coordinator tick that produced the event.
	Tick int `json:"tick"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Shard is the affected shard.
	Shard int `json:"shard"`
	// Sentinel is the voting sentinel for vote/recover events, -1
	// otherwise.
	Sentinel int `json:"sentinel"`
	// Epoch is the cluster epoch after the event.
	Epoch int `json:"epoch"`
	// Votes is the quorum size that triggered a failover, 0 otherwise.
	Votes int `json:"votes"`
}

// Tick advances simulated time by one heartbeat interval and runs the
// sentinel state machine: actuate fault-plan crash windows, sample
// phase-jittered heartbeats, accumulate misses into votes, fail over
// on quorum, and fan the leader's champion model out to every alive
// replica. It returns the events this tick produced.
func (c *Cluster) Tick() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	start := len(c.events)
	hb := c.scfg.HeartbeatSec
	now := float64(c.tick) * hb

	// Phase 1: actuate crash windows against the primaries. The
	// composed fault plan's node i maps onto shard i's primary; the
	// replica is the stable standby this composition promotes into.
	for i, sh := range c.shards {
		down := c.planDown(i, now)
		if down == sh.down[RolePrimary] {
			continue
		}
		sh.down[RolePrimary] = down
		if down {
			c.append(Event{Tick: c.tick, Kind: EventCrash, Shard: i, Sentinel: -1, Epoch: c.epoch})
			c.ob.ShardCrash(c.alivePrimariesLocked())
		} else {
			c.append(Event{Tick: c.tick, Kind: EventRejoin, Shard: i, Sentinel: -1, Epoch: c.epoch})
			c.ob.ShardRejoin(c.alivePrimariesLocked())
		}
	}

	// Phase 2: heartbeats. Each sentinel sampled each shard once during
	// the interval that just elapsed, at its jittered phase offset.
	for i, sh := range c.shards {
		for j := 0; j < c.scfg.Sentinels; j++ {
			at := float64(c.tick-1)*hb + c.phase[j]
			miss := sh.active == RolePrimary && c.planDown(i, at)
			if miss {
				sh.misses[j]++
				c.ob.ShardHeartbeatMiss()
				if sh.misses[j] >= c.scfg.MissThreshold && !sh.votes[j] {
					sh.votes[j] = true
					c.append(Event{Tick: c.tick, Kind: EventVote, Shard: i, Sentinel: j, Epoch: c.epoch})
					c.ob.ShardVote()
				}
				continue
			}
			sh.misses[j] = 0
			if sh.votes[j] {
				sh.votes[j] = false
				c.append(Event{Tick: c.tick, Kind: EventRecover, Shard: i, Sentinel: j, Epoch: c.epoch})
			}
		}

		// Quorum check: promote the replica while the active primary is
		// objectively down.
		if sh.active != RolePrimary || !sh.down[RolePrimary] || sh.inst[RoleReplica].Backend == nil {
			continue
		}
		votes := 0
		for _, v := range sh.votes {
			if v {
				votes++
			}
		}
		if votes < c.scfg.Quorum {
			continue
		}
		sh.active = RoleReplica
		c.epoch++
		close(sh.promoted)
		sh.promoted = make(chan struct{})
		for j := range sh.votes {
			sh.votes[j] = false
			sh.misses[j] = 0
		}
		c.append(Event{Tick: c.tick, Kind: EventFailover, Shard: i, Sentinel: -1, Epoch: c.epoch, Votes: votes})
		c.ob.ShardFailover(c.epoch)
	}

	// Phase 3: model fan-out to every alive replica.
	c.syncModelsLocked()

	out := make([]Event, len(c.events)-start)
	copy(out, c.events[start:])
	return out
}

// planDown reports whether shard's primary is inside a crash window at
// simulated time t.
func (c *Cluster) planDown(shard int, t float64) bool {
	if c.scfg.Plan == nil {
		return false
	}
	for _, w := range c.scfg.Plan.Crashes() {
		if w.Node == shard && t >= w.Start && t < w.End {
			return true
		}
	}
	return false
}

// alivePrimariesLocked counts primaries outside any crash window.
func (c *Cluster) alivePrimariesLocked() int {
	n := 0
	for _, sh := range c.shards {
		if !sh.down[RolePrimary] {
			n++
		}
	}
	return n
}

// append records one event.
func (c *Cluster) append(e Event) { c.events = append(c.events, e) }

// Events returns a copy of the full event log since construction.
func (c *Cluster) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// EventsJSON renders the event log as newline-delimited JSON, one
// event per line — the byte-identical replay artifact the stress suite
// compares across same-seed runs.
func (c *Cluster) EventsJSON() []byte {
	events := c.Events()
	var out []byte
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			// Event is a flat struct of ints and strings; Marshal cannot
			// fail on it.
			continue
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out
}
