package shardserve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"saqp/internal/learn"
	"saqp/internal/obs"
	"saqp/internal/query"
	"saqp/internal/serve"
)

// Role names the two serving instances of a shard.
type Role uint8

const (
	// RolePrimary is the instance that serves a shard's slots until it
	// crashes and a quorum failover demotes it.
	RolePrimary Role = iota
	// RoleReplica is the standby promoted by the sentinel quorum.
	RoleReplica
)

// String returns the lowercase role name used in CLUSTER output and
// EXPLAIN attribution.
func (r Role) String() string {
	if r == RoleReplica {
		return "replica"
	}
	return "primary"
}

// Pending is one accepted submission awaiting completion — the same
// contract the TCP frontend consumes, so engine tickets pass through
// the coordinator unwrapped except for shard-qualified ids.
type Pending interface {
	// ID returns the submission id.
	ID() string
	// Wait blocks until the query completes or ctx is canceled.
	Wait(ctx context.Context) (serve.Result, error)
}

// Backend is one serving engine instance the coordinator routes into.
type Backend interface {
	// Submit admits one query for serving.
	Submit(ctx context.Context, sql string, seed uint64) (Pending, error)
	// Stats snapshots the engine's counters.
	Stats() serve.Stats
	// Close stops admissions and drains the engine.
	Close() error
}

// Instance is one engine behind the coordinator: its backend, the wire
// address it is advertised at (empty when it serves no socket), and
// its model replica (nil when the deployment runs without online
// learning).
type Instance struct {
	Backend Backend
	Addr    string
	Model   *learn.Replica
}

// ShardSpec pairs a shard's primary with its failover standby. A
// zero-Backend replica leaves the shard without failover — the
// sentinel will vote it down but never promote.
type ShardSpec struct {
	Primary Instance
	Replica Instance
}

// Config assembles a Cluster. Shards is required; everything else
// defaults sensibly.
type Config struct {
	// Shards are the primary/replica pairs, in slot-range order.
	Shards []ShardSpec
	// Slots sizes the hash-slot space. Default DefaultSlots.
	Slots int
	// CatalogFingerprint is folded into every routing fingerprint — the
	// same identity the shard engines' plan caches key on.
	CatalogFingerprint string
	// Registry is the coordinator's model-lifecycle registry: champions
	// promote here and fan out to every instance's Replica on Tick. Nil
	// disables model replication.
	Registry *learn.Registry
	// Sentinel configures the health/failover loop.
	Sentinel SentinelConfig
	// Observer receives saqp_shard_* metrics; nil disables.
	Observer *obs.Observer
}

// ErrShardDown reports that a shard's active instance is inside a
// crash window and no failover has completed yet.
var ErrShardDown = errors.New("shardserve: shard is down pending failover")

// errNoReplica reports a submission routed to a shard whose replica
// was never configured while its primary is down.
var errNoReplica = errors.New("shardserve: shard down and no replica configured")

// shardState is one shard's mutable coordinator view, guarded by the
// cluster mutex.
type shardState struct {
	inst   [2]Instance
	active Role
	down   [2]bool
	// promoted is closed (and replaced) on every failover, releasing
	// submissions parked on the dead primary.
	promoted chan struct{}
	// misses and votes are per-sentinel heartbeat state.
	misses []int
	votes  []bool
}

// Cluster is the sharded-serving coordinator: slot-hash routing,
// primary/replica failover, and champion-model fan-out over a set of
// engine instances. All methods are goroutine-safe; the sentinel state
// machine only advances inside explicit Tick calls.
type Cluster struct {
	cfg   Config
	scfg  SentinelConfig
	slots int
	ob    *obs.Observer
	phase []float64

	mu     sync.Mutex
	shards []*shardState
	epoch  int
	tick   int
	events []Event
}

// NewCluster validates cfg and builds the coordinator: slot ranges are
// assigned, sentinel phases derived, and every configured model
// replica synced once so all shards start on the leader's champion.
func NewCluster(cfg Config) (*Cluster, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shardserve: Config.Shards is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Slots < len(cfg.Shards) {
		return nil, fmt.Errorf("shardserve: %d slots cannot cover %d shards", cfg.Slots, len(cfg.Shards))
	}
	scfg := cfg.Sentinel.normalize()
	c := &Cluster{cfg: cfg, scfg: scfg, slots: cfg.Slots, ob: cfg.Observer}
	c.phase = sentinelPhases(scfg)
	for i, spec := range cfg.Shards {
		if spec.Primary.Backend == nil {
			return nil, fmt.Errorf("shardserve: shard %d has no primary backend", i)
		}
		c.shards = append(c.shards, &shardState{
			inst:     [2]Instance{spec.Primary, spec.Replica},
			promoted: make(chan struct{}),
			misses:   make([]int, scfg.Sentinels),
			votes:    make([]bool, scfg.Sentinels),
		})
	}
	c.syncModelsLocked()
	return c, nil
}

// RouteInfo is one query's routing decision.
type RouteInfo struct {
	// Slot is the fingerprint's hash slot.
	Slot int
	// Shard is the slot's owning shard.
	Shard int
	// Addr is the advertised address of the shard's active instance —
	// the redirect target a -MOVED reply carries.
	Addr string
}

// Route normalizes sql exactly as the shard engines' plan caches do
// and resolves its slot, owning shard, and the active instance's
// advertised address.
func (c *Cluster) Route(sql string) (RouteInfo, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return RouteInfo{}, err
	}
	fp := Fingerprint(q.String(), c.cfg.CatalogFingerprint)
	slot := SlotOf(fp, c.slots)
	shard := OwnerOf(slot, c.slots, len(c.shards))
	c.mu.Lock()
	sh := c.shards[shard]
	addr := sh.inst[sh.active].Addr
	c.mu.Unlock()
	return RouteInfo{Slot: slot, Shard: shard, Addr: addr}, nil
}

// ActiveRole returns which role currently serves shard's slots.
func (c *Cluster) ActiveRole(shard int) Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[shard].active
}

// SetAddr records the advertised wire address of one instance — the
// address MOVED redirects and CLUSTER output hand to clients.
func (c *Cluster) SetAddr(shard int, role Role, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards[shard].inst[role].Addr = addr
}

// Submit routes one query by its semantics-aware fingerprint and
// admits it on the owning shard.
func (c *Cluster) Submit(ctx context.Context, sql string, seed uint64) (Pending, error) {
	ri, err := c.Route(sql)
	if err != nil {
		return nil, err
	}
	return c.SubmitShard(ctx, ri.Shard, sql, seed)
}

// SubmitShard admits one query on a specific shard's active instance.
// When the active instance is inside a crash window the call parks on
// the shard's promotion signal — a quorum failover releases it onto
// the promoted replica, so a submission accepted by the coordinator is
// never lost to a crash, only delayed by detection latency.
func (c *Cluster) SubmitShard(ctx context.Context, shard int, sql string, seed uint64) (Pending, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, fmt.Errorf("shardserve: shard %d out of range [0,%d)", shard, len(c.shards))
	}
	waited := false
	for {
		c.mu.Lock()
		sh := c.shards[shard]
		if !sh.down[sh.active] {
			inst := sh.inst[sh.active]
			c.mu.Unlock()
			p, err := inst.Backend.Submit(ctx, sql, seed)
			if err != nil {
				return nil, err
			}
			c.ob.ShardSubmitted()
			if waited {
				c.ob.ShardFailoverWait()
			}
			return &shardPending{p: p, id: shardTicketID(shard, p.ID())}, nil
		}
		if sh.inst[RoleReplica].Backend == nil {
			c.mu.Unlock()
			return nil, errNoReplica
		}
		promoted := sh.promoted
		c.mu.Unlock()
		waited = true
		select {
		case <-promoted:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// shardTicketID qualifies an engine ticket id with its shard, so ids
// stay unique across a cluster whose engines all count from q000001.
func shardTicketID(shard int, id string) string {
	return "s" + strconv.Itoa(shard) + "-" + id
}

// shardPending wraps an engine ticket under its shard-qualified id.
type shardPending struct {
	p  Pending
	id string
}

// ID returns the shard-qualified submission id.
func (sp *shardPending) ID() string { return sp.id }

// Wait blocks until the query completes, rewriting the result id to
// the shard-qualified form the client submitted under.
func (sp *shardPending) Wait(ctx context.Context) (serve.Result, error) {
	res, err := sp.p.Wait(ctx)
	if err != nil {
		return res, err
	}
	res.ID = sp.id
	return res, nil
}

// InstanceStats snapshots one instance's engine counters.
func (c *Cluster) InstanceStats(shard int, role Role) serve.Stats {
	c.mu.Lock()
	b := c.shards[shard].inst[role].Backend
	c.mu.Unlock()
	if b == nil {
		return serve.Stats{}
	}
	return b.Stats()
}

// Stats aggregates every instance's engine counters — the
// cluster-wide completion accounting the exactly-once gates compare
// against client-observed WAITs.
func (c *Cluster) Stats() serve.Stats {
	c.mu.Lock()
	backends := make([]Backend, 0, 2*len(c.shards))
	for _, sh := range c.shards {
		for r := range sh.inst {
			if sh.inst[r].Backend != nil {
				backends = append(backends, sh.inst[r].Backend)
			}
		}
	}
	c.mu.Unlock()
	var agg serve.Stats
	for _, b := range backends {
		agg.Add(b.Stats())
	}
	return agg
}

// InstanceStatus is one instance's coordinator view.
type InstanceStatus struct {
	Shard        int
	Role         Role
	Addr         string
	Active       bool
	Down         bool
	ModelVersion int
	ModelLag     int
}

// Status is a point-in-time coordinator snapshot.
type Status struct {
	Slots         int
	Shards        int
	Epoch         int
	Tick          int
	LeaderVersion int
	Instances     []InstanceStatus
}

// Status snapshots slot ownership, failover state, and replication
// versions for every instance, in shard-then-role order.
func (c *Cluster) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Slots:         c.slots,
		Shards:        len(c.shards),
		Epoch:         c.epoch,
		Tick:          c.tick,
		LeaderVersion: c.cfg.Registry.Version(),
	}
	for i, sh := range c.shards {
		for r := range sh.inst {
			inst := sh.inst[r]
			if r == int(RoleReplica) && inst.Backend == nil {
				continue
			}
			st.Instances = append(st.Instances, InstanceStatus{
				Shard:        i,
				Role:         Role(r),
				Addr:         inst.Addr,
				Active:       sh.active == Role(r),
				Down:         sh.down[r],
				ModelVersion: inst.Model.Version(),
				ModelLag:     inst.Model.Lag(),
			})
		}
	}
	return st
}

// Info renders the CLUSTER verb's reply: cluster-wide fields first,
// then one line per shard with its slot range, active instance, and
// model replication state. The format is line-oriented and stable so
// golden wire transcripts can pin it.
func (c *Cluster) Info() []string {
	st := c.Status()
	lines := []string{
		"cluster_enabled:1",
		"cluster_slots:" + strconv.Itoa(st.Slots),
		"cluster_shards:" + strconv.Itoa(st.Shards),
		"cluster_epoch:" + strconv.Itoa(st.Epoch),
		"cluster_sentinels:" + strconv.Itoa(c.scfg.Sentinels),
		"cluster_quorum:" + strconv.Itoa(c.scfg.Quorum),
		"model_leader_version:" + strconv.Itoa(st.LeaderVersion),
	}
	byShard := make(map[int][]InstanceStatus, st.Shards)
	for _, is := range st.Instances {
		byShard[is.Shard] = append(byShard[is.Shard], is)
	}
	for i := 0; i < st.Shards; i++ {
		lo, hi := SlotRange(i, st.Slots, st.Shards)
		var b strings.Builder
		fmt.Fprintf(&b, "shard=%d slots=%d-%d", i, lo, hi)
		for _, is := range byShard[i] {
			state := "up"
			if is.Down {
				state = "down"
			}
			mark := ""
			if is.Active {
				mark = "*"
			}
			fmt.Fprintf(&b, " %s%s=%s(%s,v%d,lag%d)",
				is.Role, mark, is.Addr, state, is.ModelVersion, is.ModelLag)
		}
		lines = append(lines, b.String())
	}
	return lines
}

// Close drains every instance's engine, primaries first, and joins
// their errors.
func (c *Cluster) Close() error {
	c.mu.Lock()
	backends := make([]Backend, 0, 2*len(c.shards))
	for _, sh := range c.shards {
		for r := range sh.inst {
			if sh.inst[r].Backend != nil {
				backends = append(backends, sh.inst[r].Backend)
			}
		}
	}
	c.mu.Unlock()
	var err error
	for _, b := range backends {
		err = errors.Join(err, b.Close())
	}
	return err
}

// syncModelsLocked fans the coordinator champion out to every alive
// instance's replica and reports the leader version and worst lag.
func (c *Cluster) syncModelsLocked() {
	if c.cfg.Registry == nil {
		return
	}
	maxLag := 0
	for _, sh := range c.shards {
		for r := range sh.inst {
			m := sh.inst[r].Model
			if m == nil {
				continue
			}
			if !sh.down[r] {
				m.Sync()
			}
			if lag := m.Lag(); lag > maxLag {
				maxLag = lag
			}
		}
	}
	c.ob.ShardModelSync(c.cfg.Registry.Version(), maxLag)
}
