package selectivity

import (
	"fmt"
	"hash/fnv"
	"math"

	"saqp/internal/catalog"
	"saqp/internal/histogram"
	"saqp/internal/plan"
)

// StatsTier selects which statistics source the estimator prices plans
// from.
type StatsTier string

const (
	// StatsExact prices plans from the catalog's exact per-column
	// statistics (distinct maps, full frequency counts).
	StatsExact StatsTier = "exact"
	// StatsSketch substitutes the probabilistic tier where the catalog
	// carries sketches: HyperLogLog estimates for distinct counts and
	// the count-min heavy-hitter share for TopShare. Columns without
	// sketches (analytic catalogs) fall back to exact statistics.
	StatsSketch StatsTier = "sketch"
)

// Config carries the MapReduce sizing parameters that turn estimated data
// volumes into task counts — the resource-usage half of the prediction.
type Config struct {
	// BlockSize is the HDFS block size; one map task per block (paper
	// testbed: 256 MB).
	BlockSize int64
	// BytesPerReducer is the target shuffle volume per reduce task
	// (Hadoop's hive.exec.reducers.bytes.per.reducer, default 1 GB).
	BytesPerReducer int64
	// MaxReduces caps the reduce count of a single job.
	MaxReduces int
	// DisableReduceSkew turns off hot-partition modelling: reduce tasks
	// are sized uniformly even under skewed join keys. Used by ablations
	// to isolate how much of the join-time prediction error comes from
	// partition skew.
	DisableReduceSkew bool
	// Stats selects the statistics tier (StatsExact when empty).
	Stats StatsTier
}

// DefaultConfig mirrors the paper's testbed configuration. BytesPerReducer
// follows the Hive-era practice of sizing reducers at one block of shuffle
// data so reduce-side parallelism grows smoothly with intermediate volume.
func DefaultConfig() Config {
	return Config{
		BlockSize:       256 << 20,
		BytesPerReducer: 128 << 20,
		MaxReduces:      108,
	}
}

// Estimator performs selectivity estimation against catalog statistics.
type Estimator struct {
	cat *catalog.Catalog
	cfg Config
}

// NewEstimator returns an estimator over the given catalog with cfg
// (zero-value fields fall back to DefaultConfig values).
func NewEstimator(cat *catalog.Catalog, cfg Config) *Estimator {
	def := DefaultConfig()
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = def.BlockSize
	}
	if cfg.BytesPerReducer <= 0 {
		cfg.BytesPerReducer = def.BytesPerReducer
	}
	if cfg.MaxReduces <= 0 {
		cfg.MaxReduces = def.MaxReduces
	}
	if cfg.Stats == "" {
		cfg.Stats = StatsExact
	}
	return &Estimator{cat: cat, cfg: cfg}
}

// Stats returns the statistics tier this estimator prices plans from.
func (e *Estimator) Stats() StatsTier { return e.cfg.Stats }

// JobEstimate is the estimated data flow and resource usage of one job —
// exactly the quantities the paper's multivariate model consumes (Table 1).
type JobEstimate struct {
	Job *plan.Job

	// InBytes/MedBytes/OutBytes are D_in, D_med, D_out.
	InBytes, MedBytes, OutBytes float64
	// InRows are raw input tuples; MedRows and OutRows the estimated
	// intermediate and output tuples.
	InRows, MedRows, OutRows float64
	// IS and FS are the intermediate and final selectivities.
	IS, FS float64
	// P is the join balance ratio of Eq. 7 (0 for non-join jobs);
	// P(1-P) ∈ (0, 1/4] is the join growth feature of the time model.
	P float64
	// NumMaps and NumReduces are the predicted task counts.
	NumMaps, NumReduces int
	// MapGroups breaks the map tasks down by input source (one group per
	// base-table scan or upstream edge): the two sides of a join have
	// different per-task sizes, and per-group sizing keeps task-time
	// features faithful. Group counts sum to NumMaps.
	MapGroups []TaskGroup
	// ReduceGroups breaks the reduce tasks down by shuffle-partition mass.
	// When the shuffle key is skewed enough that one hash partition holds
	// more than its fair share (a Zipf hot key), the hot reducer gets its
	// own group — the straggler that speculative execution and the paper's
	// join-error discussion are about. Group counts sum to NumReduces.
	ReduceGroups []TaskGroup
	// OutEdge carries column statistics to downstream jobs.
	OutEdge *Edge

	// scanBytes is the portion of InBytes read from base tables (not from
	// upstream jobs); it feeds QueryEstimate.TotalInputBytes.
	scanBytes float64
	// shuffleKey carries the statistics of the column the shuffle
	// partitions on (join key, first group key); nil when unknown.
	shuffleKey *ColStat
	// shuffleRows is the tuple count entering the shuffle.
	shuffleRows float64
}

// TaskGroup describes a homogeneous set of tasks: Count tasks, each with
// the given input and output volume.
type TaskGroup struct {
	Count             int
	InBytes, OutBytes float64
}

// PFactor returns P(1-P), the model's join growth feature.
func (j *JobEstimate) PFactor() float64 { return j.P * (1 - j.P) }

// QueryEstimate aggregates per-job estimates for a DAG.
type QueryEstimate struct {
	DAG  *plan.DAG
	Jobs []*JobEstimate
	ByID map[string]*JobEstimate
	// StatsTier records which statistics source priced this estimate, so
	// EXPLAIN output and cache keys can attribute the numbers.
	StatsTier StatsTier
	// SketchCols counts base-table columns whose distinct/TopShare
	// statistics were substituted from sketches (0 in exact mode, and in
	// sketch mode over catalogs that carry no sketches).
	SketchCols int
}

// TotalInputBytes sums raw input bytes over base-table scans only — the
// "input size" axis the paper's workload bins (Table 2) are keyed on.
func (q *QueryEstimate) TotalInputBytes() float64 {
	var t float64
	for _, je := range q.Jobs {
		t += je.scanBytes
	}
	return t
}

// EstimateQuery walks the DAG in topological order, estimating every job.
func (e *Estimator) EstimateQuery(d *plan.DAG) (*QueryEstimate, error) {
	qe := &QueryEstimate{DAG: d, ByID: make(map[string]*JobEstimate, len(d.Jobs)),
		StatsTier: e.cfg.Stats}
	for _, job := range d.Jobs {
		je, err := e.estimateJob(job, qe)
		if err != nil {
			return nil, fmt.Errorf("selectivity: job %s: %w", job.ID, err)
		}
		qe.Jobs = append(qe.Jobs, je)
		qe.ByID[job.ID] = je
	}
	return qe, nil
}

// input is one resolved job input: its filtered/projected edge plus the raw
// volume read and the scan selectivities (1 for upstream-edge inputs).
type input struct {
	edge     *Edge
	rawBytes float64
	rawRows  float64
	rawWidth float64
	sPred    float64
	sProj    float64
}

// resolveInputs produces the job's inputs: base-table scans first, then
// upstream job outputs.
func (e *Estimator) resolveInputs(job *plan.Job, qe *QueryEstimate) ([]input, float64, error) {
	var ins []input
	var scanBytes float64
	for _, ts := range job.Scans {
		in, err := e.scanInput(ts, qe)
		if err != nil {
			return nil, 0, err
		}
		scanBytes += in.rawBytes
		ins = append(ins, in)
	}
	for _, dep := range job.Deps {
		de, ok := qe.ByID[dep.ID]
		if !ok {
			return nil, 0, fmt.Errorf("dependency %s not yet estimated", dep.ID)
		}
		ins = append(ins, input{
			edge:     de.OutEdge,
			rawBytes: de.OutBytes,
			rawRows:  de.OutRows,
			rawWidth: de.OutEdge.Width,
			sPred:    1,
			sProj:    1,
		})
	}
	if len(ins) == 0 {
		return nil, 0, fmt.Errorf("job has no inputs")
	}
	return ins, scanBytes, nil
}

// scanInput builds the input for a base-table scan: S_pred from the pushed
// predicates, S_proj from the pruned columns, and the filtered edge. In
// sketch mode, distinct counts and the heavy-hitter share come from the
// column's probabilistic summaries (qe, when non-nil, tallies the
// substitutions for EXPLAIN attribution).
func (e *Estimator) scanInput(ts plan.TableScan, qe *QueryEstimate) (input, error) {
	stats, err := e.cat.Table(ts.Table)
	if err != nil {
		return input{}, err
	}
	cols := make(map[string]*ColStat, len(ts.Columns))
	var projWidth float64
	for _, name := range ts.Columns {
		cs := stats.Column(name)
		if cs == nil {
			return input{}, fmt.Errorf("table %q has no column %q", ts.Table, name)
		}
		st := &ColStat{
			Hist:         cs.Hist,
			Distinct:     float64(cs.Distinct),
			BaseDistinct: float64(cs.Distinct),
			TopShare:     cs.TopShare,
			Width:        cs.AvgWidth,
			Clustered:    cs.Clustered,
		}
		if e.cfg.Stats == StatsSketch && cs.Sketch != nil && cs.Sketch.HLL != nil {
			d := cs.Sketch.HLL.Estimate()
			if d < 1 {
				d = 1
			}
			if rows := float64(stats.Rows); rows > 0 && d > rows {
				d = rows
			}
			st.Distinct, st.BaseDistinct = d, d
			if cs.Sketch.TopCount > 0 && stats.Rows > 0 {
				st.TopShare = math.Min(1, float64(cs.Sketch.TopCount)/float64(stats.Rows))
			}
			if qe != nil {
				qe.SketchCols++
			}
		}
		cols[ts.Table+"."+name] = st
		projWidth += cs.AvgWidth
	}
	if projWidth == 0 { //lint:allow saqpvet/floatcmp width sums are exact small-integer arithmetic
		projWidth = 8 // count(*)-style scans still move a key per tuple
	}
	sProj := clamp01(projWidth / stats.AvgTupleWidth)
	sPred := ConjunctionSelectivity(cols, ts.Preds)
	rows := float64(stats.Rows)
	edge := &Edge{Rows: rows * sPred, Width: projWidth,
		Cols: filterColumns(cols, ts.Preds, rows*sPred)}
	return input{
		edge:     edge,
		rawBytes: float64(stats.Bytes),
		rawRows:  rows,
		rawWidth: stats.AvgTupleWidth,
		sPred:    sPred,
		sProj:    sProj,
	}, nil
}

// estimateJob dispatches on the job category.
func (e *Estimator) estimateJob(job *plan.Job, qe *QueryEstimate) (*JobEstimate, error) {
	ins, scanBytes, err := e.resolveInputs(job, qe)
	if err != nil {
		return nil, err
	}
	je := &JobEstimate{Job: job, scanBytes: scanBytes}
	for _, in := range ins {
		je.InBytes += in.rawBytes
		je.InRows += in.rawRows
	}
	// Broadcast-join preludes transform the main input inside the map
	// phase before the job's own operator sees it.
	ins, err = e.applyMapJoins(job, je, ins, qe)
	if err != nil {
		return nil, err
	}
	// Map counts depend only on the inputs and must be known before the
	// Groupby estimate (Eq. 2's random-key case divides by N_maps).
	e.computeMapCounts(job, je, qe)
	switch job.Type {
	case plan.Join:
		err = e.estimateJoin(job, je, ins)
	case plan.Groupby:
		err = e.estimateGroupby(job, je, ins)
	case plan.Extract:
		err = e.estimateExtract(job, je, ins)
	default:
		err = fmt.Errorf("unknown job type %v", job.Type)
	}
	if err != nil {
		return nil, err
	}
	e.finishTaskCounts(job, je)
	return je, nil
}

// applyMapJoins folds each broadcast-join prelude into the matching input:
// the probe edge is replaced by the estimated join result, and the small
// table's bytes count toward D_in (it is read as side data by every map).
func (e *Estimator) applyMapJoins(job *plan.Job, je *JobEstimate, ins []input, qe *QueryEstimate) ([]input, error) {
	for _, spec := range job.MapJoins {
		b, err := e.scanInput(spec.BroadcastScan, qe)
		if err != nil {
			return nil, err
		}
		// Which spec key lives in the broadcast table?
		bKey, pKey := spec.JoinLeft.String(), spec.JoinRight.String()
		if b.edge.Col(bKey) == nil {
			bKey, pKey = pKey, bKey
		}
		bc := b.edge.Col(bKey)
		if bc == nil {
			return nil, fmt.Errorf("map-join key %s not in broadcast table %s", bKey, spec.BroadcastScan.Table)
		}
		// Locate the probe input.
		pi := -1
		for i := range ins {
			if ins[i].edge.Col(pKey) != nil {
				pi = i
				break
			}
		}
		if pi < 0 {
			return nil, fmt.Errorf("map-join probe key %s not found in inputs", pKey)
		}
		probe := &ins[pi]
		pc := probe.edge.Col(pKey)
		outRows := joinCardinality(pc, bc, probe.edge.Rows, b.edge.Rows)
		merged := mergeEdges(probe.edge, b.edge, outRows)
		probe.edge = merged
		probe.rawBytes += b.rawBytes
		probe.rawRows += 0 // the probe side's tuple count still drives Eq. 2
		if probe.rawRows > 0 {
			probe.sPred = clamp01(outRows / probe.rawRows)
		}
		je.InBytes += b.rawBytes
		je.scanBytes += b.rawBytes
	}
	return ins, nil
}

// FragFactor models HDFS file fragmentation: tables are written as many
// files whose tails leave splits below one full block, so the effective
// bytes-per-map varies by table. The factor is a deterministic hash of the
// table name into [0.45, 1.0]. The execution engine applies the same
// factor so measured and estimated task granularities agree.
func FragFactor(table string) float64 {
	h := fnv.New32a()
	h.Write([]byte(table))
	return 0.45 + 0.55*float64(h.Sum32()%1000)/999
}

// finishTaskCounts derives map/reduce task counts. Base-table scans get one
// map per (fragmentation-adjusted) block. Inputs read from an upstream job
// arrive as that job's reduce-output files, and Hadoop-era FileInputFormat
// schedules at least one map per file: maps = max(upstream reduces,
// ceil(bytes/block)).
func (e *Estimator) computeMapCounts(job *plan.Job, je *JobEstimate, qe *QueryEstimate) {
	block := float64(e.cfg.BlockSize)
	// addGroup registers `count` map tasks over `bytes` of input; the map
	// output share is filled in by finishTaskCounts once D_med is known.
	addGroup := func(count int, bytes float64) {
		if count < 1 {
			count = 1
		}
		je.MapGroups = append(je.MapGroups, TaskGroup{
			Count:   count,
			InBytes: bytes / float64(count),
		})
	}
	var broadcastBytes float64
	// Folded map-join preludes load their small tables into every map.
	for _, spec := range job.MapJoins {
		if stats, err := e.cat.Table(spec.BroadcastScan.Table); err == nil {
			broadcastBytes += float64(stats.Bytes)
		}
	}
	for _, ts := range job.Scans {
		stats, err := e.cat.Table(ts.Table)
		if err != nil {
			continue
		}
		if job.Broadcast == ts.Table {
			// Broadcast tables are loaded as side data by every map task,
			// not scanned by their own maps.
			broadcastBytes += float64(stats.Bytes)
			continue
		}
		eff := block * FragFactor(ts.Table)
		addGroup(int(math.Ceil(float64(stats.Bytes)/eff)), float64(stats.Bytes))
	}
	for _, dep := range job.Deps {
		de := qe.ByID[dep.ID]
		if de == nil {
			continue
		}
		m := int(math.Ceil(de.OutBytes / block))
		if m < de.NumReduces {
			m = de.NumReduces
		}
		addGroup(m, de.OutBytes)
	}
	if len(je.MapGroups) == 0 {
		addGroup(1, je.InBytes)
	}
	// Every map of a broadcast join re-reads the (small) broadcast table.
	if broadcastBytes > 0 {
		for i := range je.MapGroups {
			je.MapGroups[i].InBytes += broadcastBytes
		}
	}
	maps := 0
	for _, g := range je.MapGroups {
		maps += g.Count
	}
	je.NumMaps = maps
}

// finishTaskCounts apportions map output across groups and sets the reduce
// count from the estimated intermediate volume.
func (e *Estimator) finishTaskCounts(job *plan.Job, je *JobEstimate) {
	for i := range je.MapGroups {
		g := &je.MapGroups[i]
		if je.InBytes > 0 {
			share := je.MedBytes * (g.InBytes * float64(g.Count) / je.InBytes)
			g.OutBytes = share / float64(g.Count)
		}
	}
	if job.MapOnly {
		je.NumReduces = 0
		return
	}
	n := int(math.Ceil(je.MedBytes / float64(e.cfg.BytesPerReducer)))
	if n < 1 {
		n = 1
	}
	if n > e.cfg.MaxReduces {
		n = e.cfg.MaxReduces
	}
	je.NumReduces = n
	je.ReduceGroups = e.reduceGroups(je, n)
}

// reduceGroups sizes the reduce tasks. Hash partitioning spreads the
// shuffle mass evenly unless a single key outweighs a partition's fair
// share: all of a key's rows land on one reducer, so the hottest key's
// share lower-bounds the hottest partition. That reducer becomes its own
// (straggler) group. Only hash-partitioned shuffles (joins) are affected;
// sort shuffles range-partition over sampled quantiles and stay balanced,
// and groupby shuffles are collapsed by the map-side combine.
func (e *Estimator) reduceGroups(je *JobEstimate, n int) []TaskGroup {
	uniform := []TaskGroup{{
		Count:    n,
		InBytes:  je.MedBytes / float64(n),
		OutBytes: je.OutBytes / float64(n),
	}}
	if e.cfg.DisableReduceSkew || n < 2 || je.shuffleKey == nil ||
		je.shuffleKey.Hist == nil || je.shuffleRows <= 0 {
		return uniform
	}
	hot := hottestKeyShare(je.shuffleKey)
	fair := 1 / float64(n)
	if hot <= 1.5*fair {
		return uniform
	}
	if hot > 0.9 {
		hot = 0.9
	}
	rest := (1 - hot) / float64(n-1)
	return []TaskGroup{
		{Count: 1, InBytes: je.MedBytes * hot, OutBytes: je.OutBytes * hot},
		{Count: n - 1, InBytes: je.MedBytes * rest, OutBytes: je.OutBytes * rest},
	}
}

// hottestKeyShare estimates the row share of the most frequent key: the
// catalog's most-common-value statistic when available (equi-width buckets
// smear single keys), else the densest bucket's per-value mass.
func hottestKeyShare(cs *ColStat) float64 {
	best := cs.TopShare
	h := cs.Hist
	if h == nil {
		return best
	}
	total := h.Rows()
	if total <= 0 {
		return best
	}
	for _, b := range h.Buckets {
		if b.Count <= 0 {
			continue
		}
		d := b.Distinct
		if d < 1 {
			d = 1
		}
		if share := b.Count / d / total; share > best {
			best = share
		}
	}
	return best
}

// floorMedToOut enforces the physical invariant D_med ≥ D_out (and with
// it FS ≤ IS) for single-input Extract/Groupby jobs: the reduce phase
// cannot emit more bytes than the map phase shuffled to it. A predicate
// of near-zero selectivity combined with the ≥1-row output floor can
// otherwise leave FS marginally above IS.
func floorMedToOut(je *JobEstimate) {
	if je.OutBytes > je.MedBytes {
		je.MedBytes = je.OutBytes
		if je.InBytes > 0 {
			je.IS = clamp01(je.MedBytes / je.InBytes)
		}
	}
}

// estimateExtract covers scans, sorts and limits: IS = S_pred × S_proj
// (paper Section 3.1.1); |Out| = min(|In|, k) for LIMIT k, |In| for sorts.
func (e *Estimator) estimateExtract(job *plan.Job, je *JobEstimate, ins []input) error {
	in := ins[0]
	je.IS = clamp01(in.sPred * in.sProj)
	je.MedBytes = je.InBytes * je.IS
	je.MedRows = in.edge.Rows
	outRows := in.edge.Rows
	if job.Limit >= 0 && float64(job.Limit) < outRows {
		outRows = float64(job.Limit)
	}
	je.OutRows = outRows
	wOut := in.edge.Width
	je.OutBytes = outRows * wOut
	if je.InBytes > 0 {
		je.FS = je.OutBytes / je.InBytes
	}
	floorMedToOut(je)
	out := in.edge
	if outRows < in.edge.Rows && in.edge.Rows > 0 {
		out = in.edge.scaledEdge(outRows / in.edge.Rows)
	}
	je.OutEdge = out
	return nil
}

// estimateGroupby covers aggregation: IS = S_comb × S_proj with Eq. 2's
// clustered/random cases, and |Out| = min(Π d_key, |T| × S_pred).
func (e *Estimator) estimateGroupby(job *plan.Job, je *JobEstimate, ins []input) error {
	in := ins[0]
	// d_xy: product of the grouping keys' base-table distinct counts (the
	// paper's T.d_xy in Eq. 2); survivingGroups tracks the post-filter
	// cardinality estimate (Cardenas/Yao-corrected by the edge statistics).
	dxy := 1.0
	survivingGroups := 1.0
	keyWidth := 0.0
	clustered := true
	for _, k := range job.GroupKeys {
		cs := in.edge.Col(k.String())
		if cs == nil {
			return fmt.Errorf("group key %s not present in input", k)
		}
		base := cs.BaseDistinct
		if base <= 0 {
			base = cs.Distinct
		}
		dxy *= math.Max(base, 1)
		survivingGroups *= math.Max(cs.Distinct, 1)
		keyWidth += cs.Width
		clustered = clustered && cs.Clustered
	}
	if len(job.GroupKeys) == 0 {
		dxy = 1
		survivingGroups = 1
		clustered = true
	}
	rawRows := in.rawRows
	if rawRows < 1 {
		rawRows = 1
	}
	// Eq. 2: clustered keys combine to d_xy rows per map wave overall;
	// random keys only combine within each map's slice of |T|/N_maps rows.
	var sComb float64
	if clustered {
		sComb = math.Min(in.sPred, dxy/rawRows)
	} else {
		nMaps := math.Max(1, float64(je.NumMaps))
		sComb = math.Min(in.sPred, dxy/(rawRows/nMaps))
	}
	sComb = clamp01(sComb)

	// Map output carries group keys + aggregate source columns.
	aggWidth := 8.0 * float64(len(job.Aggs))
	if len(job.Aggs) == 0 {
		aggWidth = 0
	}
	mapOutWidth := keyWidth + aggWidth
	if mapOutWidth == 0 { //lint:allow saqpvet/floatcmp width sums are exact small-integer arithmetic
		mapOutWidth = 8
	}
	sProj := clamp01(mapOutWidth / in.rawWidth)
	je.IS = clamp01(sComb * sProj)
	je.MedBytes = je.InBytes * je.IS
	je.MedRows = math.Max(1, rawRows*sComb)

	// Final selectivity: the paper's |Out| = min(d_xy, |T| × S_pred)
	// (Section 3.1.2), sharpened by the Yao-corrected surviving-group
	// count from the filtered edge statistics.
	outRows := math.Min(math.Min(dxy, survivingGroups), rawRows*in.sPred)
	// HAVING filters groups by aggregate values, for which the catalog has
	// no distribution; apply the textbook default per conjunct.
	for range job.Having {
		outRows *= defaultIneqSel
	}
	if outRows < 1 {
		outRows = 1
	}
	wOut := keyWidth + aggWidth
	if wOut == 0 { //lint:allow saqpvet/floatcmp width sums are exact small-integer arithmetic
		wOut = 8
	}
	je.OutRows = outRows
	je.OutBytes = outRows * wOut
	if je.InBytes > 0 {
		je.FS = je.OutBytes / je.InBytes
	}
	floorMedToOut(je)

	// Output edge: group keys keep their identity (distinct values now
	// unique); aggregates appear as fresh numeric columns.
	cols := make(map[string]*ColStat, len(job.GroupKeys)+len(job.Aggs))
	for _, k := range job.GroupKeys {
		cs := in.edge.Col(k.String())
		f := 1.0
		if in.edge.Rows > 0 {
			f = outRows / in.edge.Rows
		}
		nc := cs.scaled(f, outRows)
		nc.Distinct = math.Min(cs.Distinct, outRows)
		nc.Clustered = true // reduce output is sorted by the group keys
		cols[k.String()] = nc
	}
	for i := range job.Aggs {
		cols[fmt.Sprintf("%s.agg%d", job.ID, i)] = &ColStat{Distinct: outRows, Width: 8}
	}
	je.OutEdge = &Edge{Rows: outRows, Width: wOut, Cols: cols}
	return nil
}

// estimateJoin covers two-input equi-joins: Eq. 3 for IS, Eq. 5 (or the
// classic uniform formula as fallback) for the output cardinality, and
// Eq. 7 for the balance ratio P.
func (e *Estimator) estimateJoin(job *plan.Job, je *JobEstimate, ins []input) error {
	if len(ins) != 2 {
		return fmt.Errorf("join expects 2 inputs, got %d", len(ins))
	}
	// Identify which input carries each join key.
	leftKey, rightKey := job.JoinLeft.String(), job.JoinRight.String()
	a, b := ins[0], ins[1]
	if a.edge.Col(leftKey) == nil && b.edge.Col(leftKey) != nil {
		a, b = b, a
	}
	lc, rc := a.edge.Col(leftKey), b.edge.Col(rightKey)
	if lc == nil || rc == nil {
		return fmt.Errorf("join keys %s/%s not found in inputs", leftKey, rightKey)
	}

	// Eq. 3: IS = Σ_i S_pred_i × S_proj_i × r_i with r_i the byte share.
	total := a.rawBytes + b.rawBytes
	r1 := 0.5
	if total > 0 {
		r1 = a.rawBytes / total
	}
	je.IS = clamp01(a.sPred*a.sProj*r1 + b.sPred*b.sProj*(1-r1))
	je.MedBytes = je.InBytes * je.IS
	je.MedRows = a.edge.Rows + b.edge.Rows

	// Eq. 7: P from the filtered tuple counts of the two inputs.
	fl, fr := a.edge.Rows, b.edge.Rows
	if fl+fr > 0 {
		je.P = math.Max(fl, fr) / (fl + fr)
	}

	// The shuffle partitions both sides by the join key; the hotter side's
	// key distribution drives reduce-partition skew. (Groupby shuffles are
	// skew-free here: the map-side combine collapses each key to one
	// record per map.)
	je.shuffleRows = fl + fr
	if lc.Hist != nil && (rc.Hist == nil || hottestKeyShare(lc) >= hottestKeyShare(rc)) {
		je.shuffleKey = lc
	} else if rc.Hist != nil {
		je.shuffleKey = rc
	}

	// Output cardinality: Eq. 5 on aligned histograms, else the classic
	// uniform formula |T1|·|T2|/max(d1,d2).
	outRows := joinCardinality(lc, rc, fl, fr)
	je.OutRows = outRows
	wOut := a.edge.Width + b.edge.Width
	je.OutBytes = outRows * wOut
	if je.InBytes > 0 {
		je.FS = je.OutBytes / je.InBytes
	}

	// Map-side (broadcast) joins have no shuffle: the map output *is* the
	// job output, so D_med = D_out (and for PK–FK broadcast joins, FS stays
	// near 1 — the paper's map-only case).
	if job.MapOnly {
		je.MedBytes = je.OutBytes
		je.MedRows = je.OutRows
		je.IS = clamp01(je.FS)
	}

	out := mergeEdges(a.edge, b.edge, outRows)
	// The join key's post-join histogram follows the paper's identity
	// (T1i ⋈ T2i).d = min(d1, d2).
	if lc.Hist != nil && rc.Hist != nil {
		l, r := alignHistograms(lc.Hist, rc.Hist)
		if joined, err := l.Join(r); err == nil {
			// Reduce output is sorted by the join key, so equal key values
			// are physically adjacent downstream.
			jc := &ColStat{Hist: joined, Width: lc.Width,
				Distinct:  math.Min(lc.Distinct, rc.Distinct),
				Clustered: true}
			out.Cols[leftKey] = jc
			out.Cols[rightKey] = jc.clone()
		}
	}
	je.OutEdge = out
	return nil
}

// joinCardinality applies Eq. 5 when both sides have histograms, otherwise
// the classic uniform estimate.
func joinCardinality(lc, rc *ColStat, rowsL, rowsR float64) float64 {
	if lc.Hist != nil && rc.Hist != nil {
		l, r := alignHistograms(lc.Hist, rc.Hist)
		if n, err := l.JoinSize(r); err == nil {
			return n
		}
	}
	d := math.Max(lc.Distinct, rc.Distinct)
	if d < 1 {
		d = 1
	}
	return rowsL * rowsR / d
}

// histAlias shortens the histogram type name in join-side code.
type histAlias = histogram.Histogram

// alignHistograms rebuckets both histograms onto a shared grid covering the
// union of their domains, so offline statistics built with different
// resolutions can still be combined bucket-wise.
func alignHistograms(l, r *histAlias) (*histAlias, *histAlias) {
	if l.Aligned(r) {
		return l, r
	}
	lo := math.Min(l.Lo, r.Lo)
	hi := math.Max(l.Hi, r.Hi)
	n := len(l.Buckets)
	if len(r.Buckets) > n {
		n = len(r.Buckets)
	}
	return l.Rebucket(lo, hi, n), r.Rebucket(lo, hi, n)
}
