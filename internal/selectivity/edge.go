package selectivity

import (
	"saqp/internal/histogram"
)

// ColStat tracks the statistics of one column as data flows through a DAG:
// its (scaled) histogram, distinct count, average width, and whether equal
// values remain physically clustered.
type ColStat struct {
	Hist     *histogram.Histogram // nil for string columns
	Distinct float64
	// BaseDistinct is the column's cardinality in the unfiltered base
	// table — the paper's T.d_x in Eq. 2 — preserved as statistics flow
	// through filters and joins.
	BaseDistinct float64
	// TopShare is the most-common-value row share (hash-partition skew).
	// Preserved through uniform filters: the hot key's share of survivors
	// is unchanged when rows drop independently of the key.
	TopShare  float64
	Width     float64
	Clustered bool
}

// clone returns an independent copy (the histogram pointer is shared until
// scaled, since Scale returns a new histogram).
func (c *ColStat) clone() *ColStat {
	cp := *c
	return &cp
}

// scaled returns the column statistics after the row count is multiplied
// by factor f (f <= 1 for filters, f > 1 possible after joins). Surviving
// distinct counts follow the Cardenas/Yao estimate — dropping rows
// uniformly keeps most values of a low-cardinality column alive — and can
// never exceed the new row count.
func (c *ColStat) scaled(f float64, newRows float64) *ColStat {
	out := c.clone()
	if c.Hist != nil {
		out.Hist = c.Hist.Scale(f)
	}
	if f < 1 {
		oldRows := 0.0
		if f > 0 {
			oldRows = newRows / f
		}
		out.Distinct = histogram.YaoDistinct(c.Distinct, oldRows, f)
	}
	if out.Distinct > newRows {
		out.Distinct = newRows
	}
	if out.Distinct < 1 && newRows >= 1 {
		out.Distinct = 1
	}
	return out
}

// Edge describes the data flowing along one DAG edge (a base-table scan
// after filtering+projection, or a job's output): row count, average tuple
// width, and per-column statistics for the columns that survive.
type Edge struct {
	Rows  float64
	Width float64 // average tuple width in bytes
	// Cols is keyed by "table.column".
	Cols map[string]*ColStat
}

// Bytes returns the edge's data volume.
func (e *Edge) Bytes() float64 { return e.Rows * e.Width }

// Col returns the statistics for the given qualified column, or nil.
func (e *Edge) Col(key string) *ColStat { return e.Cols[key] }

// scaledEdge returns the edge after multiplying rows by f.
func (e *Edge) scaledEdge(f float64) *Edge {
	out := &Edge{Rows: e.Rows * f, Width: e.Width, Cols: make(map[string]*ColStat, len(e.Cols))}
	for k, c := range e.Cols {
		out.Cols[k] = c.scaled(f, out.Rows)
	}
	return out
}

// mergeEdges combines the column sets of two join inputs into the join
// output edge with the given result row count. Each side's columns are
// scaled by the side's multiplication factor — the Bell et al. technique
// the paper leverages to carry a key's distribution through an earlier
// join on a different key.
func mergeEdges(left, right *Edge, outRows float64) *Edge {
	out := &Edge{Rows: outRows, Width: left.Width + right.Width,
		Cols: make(map[string]*ColStat, len(left.Cols)+len(right.Cols))}
	scaleInto := func(e *Edge) {
		f := 1.0
		if e.Rows > 0 {
			f = outRows / e.Rows
		}
		for k, c := range e.Cols {
			nc := c.scaled(f, outRows)
			// The shuffle reorders rows by the join key, destroying any
			// physical clustering the input columns had.
			nc.Clustered = false
			out.Cols[k] = nc
		}
	}
	scaleInto(left)
	scaleInto(right)
	return out
}
