package selectivity

import (
	"testing"

	"saqp/internal/histogram"
	"saqp/internal/query"
)

var hotSinkFloat float64

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for predicate-selectivity estimation: zero heap allocations per call.
func TestHotPathAllocs(t *testing.T) {
	h := histogram.Build([]float64{1, 2, 3, 42, 42, 99}, 0, 100, 8)
	numCol := &ColStat{Hist: h, Distinct: 5}
	strCol := &ColStat{Distinct: 5}
	lt := query.Predicate{Op: query.OpLT, Lit: query.NumLit(50)}
	eq := query.Predicate{Op: query.OpEQ, Lit: query.NumLit(42)}
	in := query.Predicate{Op: query.OpIN, Set: []query.Literal{query.NumLit(1), query.NumLit(42)}}
	seq := query.Predicate{Op: query.OpEQ, Lit: query.StrLit("x")}
	cases := []struct {
		name string
		fn   func()
	}{
		{"PredSelectivity/range", func() { hotSinkFloat = PredSelectivity(numCol, lt) }},
		{"PredSelectivity/eq", func() { hotSinkFloat = PredSelectivity(numCol, eq) }},
		{"inSelectivity", func() { hotSinkFloat = inSelectivity(numCol, in) }},
		{"stringPredSelectivity", func() { hotSinkFloat = stringPredSelectivity(strCol, seq) }},
		{"clamp01", func() { hotSinkFloat = clamp01(1.5) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", c.name, n)
		}
	}
}
