package selectivity

import (
	"math"
	"sort"

	"saqp/internal/histogram"
	"saqp/internal/query"
)

// defaultIneqSel is the textbook fallback selectivity for inequality
// predicates on columns without histograms (strings).
const defaultIneqSel = 1.0 / 3.0

// PredSelectivity estimates the fraction of rows satisfying one predicate
// against a column with the given statistics. Numeric columns use the
// equi-width histogram; string columns use distinct counts for equality
// and the standard 1/3 heuristic for inequalities. IN lists sum the
// per-member equality selectivities. Estimation runs once per predicate
// per plan candidate during admission scoring, so it must not allocate.
//
//saqp:hotpath
func PredSelectivity(cs *ColStat, p query.Predicate) float64 {
	if cs == nil {
		return defaultIneqSel
	}
	if p.Op == query.OpIN {
		return inSelectivity(cs, p)
	}
	if cs.Hist == nil || p.Lit.IsString {
		return stringPredSelectivity(cs, p)
	}
	x := p.Lit.F
	h := cs.Hist
	// One distinct step, for translating closed/open bounds.
	eq := h.SelectivityEQ(x)
	switch p.Op {
	case query.OpEQ:
		return eq
	case query.OpNE:
		return clamp01(1 - eq)
	case query.OpLT:
		return h.SelectivityLT(x)
	case query.OpLE:
		return clamp01(h.SelectivityLT(x) + eq)
	case query.OpGE:
		return h.SelectivityGE(x)
	case query.OpGT:
		return clamp01(h.SelectivityGE(x) - eq)
	}
	return defaultIneqSel
}

// inSelectivity sums equality selectivities over an IN list's members.
//
//saqp:hotpath
func inSelectivity(cs *ColStat, p query.Predicate) float64 {
	var s float64
	d := cs.Distinct
	if d < 1 {
		d = 1
	}
	for _, lit := range p.Set {
		if cs.Hist != nil && !lit.IsString {
			s += cs.Hist.SelectivityEQ(lit.F)
		} else {
			s += 1 / d
		}
	}
	return clamp01(s)
}

// stringPredSelectivity handles predicates whose column lacks a histogram.
//
//saqp:hotpath
func stringPredSelectivity(cs *ColStat, p query.Predicate) float64 {
	d := cs.Distinct
	if d < 1 {
		d = 1
	}
	switch p.Op {
	case query.OpEQ:
		return clamp01(1 / d)
	case query.OpNE:
		return clamp01(1 - 1/d)
	default:
		return defaultIneqSel
	}
}

// ConjunctionSelectivity estimates the fraction of rows passing all
// conjuncts. Predicates on *different* columns multiply under the
// independence assumption (the approach the paper's S_pred inherits from
// the histogram literature it cites); predicates on the *same* numeric
// column are intersected exactly by filtering the histogram sequentially —
// BETWEEN-style range pairs are not independent events.
func ConjunctionSelectivity(cols map[string]*ColStat, preds []query.Predicate) float64 {
	byCol := map[string][]query.Predicate{}
	var order []string
	for _, p := range preds {
		if p.IsJoin() {
			continue
		}
		key := p.Left.String()
		if _, ok := byCol[key]; !ok {
			order = append(order, key)
		}
		byCol[key] = append(byCol[key], p)
	}
	sort.Strings(order)
	s := 1.0
	for _, key := range order {
		s *= columnConjunction(cols[key], byCol[key])
	}
	return clamp01(s)
}

// columnConjunction combines all conjuncts on one column: histogram-maskable
// comparisons are intersected through sequential Filter calls; the rest
// (IN lists, string predicates) multiply in.
func columnConjunction(cs *ColStat, ps []query.Predicate) float64 {
	s := 1.0
	if cs != nil && cs.Hist != nil {
		h := cs.Hist
		orig := h.Rows()
		masked := false
		for _, p := range ps {
			if p.Op != query.OpIN && !p.Lit.IsString {
				h = h.Filter(cmpToHist(p.Op), p.Lit.F)
				masked = true
			} else {
				s *= PredSelectivity(cs, p)
			}
		}
		if masked && orig > 0 {
			s *= clamp01(h.Rows() / orig)
		}
		return clamp01(s)
	}
	for _, p := range ps {
		s *= PredSelectivity(cs, p)
	}
	return clamp01(s)
}

// cmpToHist maps query comparison operators to histogram filter operators.
func cmpToHist(op query.CmpOp) histogram.CmpOp {
	switch op {
	case query.OpEQ:
		return histogram.CmpEQ
	case query.OpNE:
		return histogram.CmpNE
	case query.OpLT:
		return histogram.CmpLT
	case query.OpLE:
		return histogram.CmpLE
	case query.OpGT:
		return histogram.CmpGT
	}
	return histogram.CmpGE
}

// filterColumns applies scan predicates to every column's statistics.
// Predicates on a column itself reshape that column's histogram via Filter
// (zeroing excluded buckets — crucial when the column later joins);
// predicates on *other* columns scale it uniformly, per the independence
// assumption. newRows is the filtered row count |T|·S_pred.
func filterColumns(cols map[string]*ColStat, preds []query.Predicate, newRows float64) map[string]*ColStat {
	out := make(map[string]*ColStat, len(cols))
	for key, cs := range cols {
		var own float64 = 1
		// ownUnapplied accumulates own-column selectivity that could not be
		// expressed as a precise histogram mask (IN lists, string ops) and
		// must be applied as a uniform scale instead.
		ownUnapplied := 1.0
		var otherPreds []query.Predicate
		nc := cs.clone()
		for _, p := range preds {
			if p.IsJoin() {
				continue
			}
			if p.Left.String() != key {
				otherPreds = append(otherPreds, p)
				continue
			}
			s := PredSelectivity(cols[key], p)
			own *= s
			if nc.Hist != nil && p.Op != query.OpIN && !p.Lit.IsString {
				nc.Hist = nc.Hist.Filter(cmpToHist(p.Op), p.Lit.F)
			} else {
				ownUnapplied *= s
			}
		}
		// Other-column conjuncts scale uniformly; use the same intersection
		// semantics as ConjunctionSelectivity so range pairs combine right.
		others := ConjunctionSelectivity(cols, otherPreds)
		if nc.Hist != nil {
			nc.Hist = nc.Hist.Scale(others * ownUnapplied)
			nc.Distinct = math.Min(nc.Hist.DistinctTotal(), newRows)
		} else {
			nc.Distinct = cs.Distinct * own
			if nc.Distinct > newRows {
				nc.Distinct = newRows
			}
		}
		if nc.Distinct < 1 && newRows >= 1 {
			nc.Distinct = 1
		}
		out[key] = nc
	}
	return out
}

// clamp01 clips a probability estimate into [0, 1].
//
//saqp:hotpath
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
