package selectivity

import (
	"math"
	"testing"

	"saqp/internal/query"
)

func TestMapJoinPreludeEstimate(t *testing.T) {
	// Q14-shaped: the part⋈lineitem broadcast join folds into the
	// aggregation job; estimates must match the unmerged three-job plan's
	// final numbers.
	merged := estimateSQL(t, `SELECT /*+ MAPJOIN(part) */ p_type, sum(l_extendedprice)
		FROM part JOIN lineitem ON l_partkey = p_partkey
		WHERE l_shipdate < 9000 GROUP BY p_type`, 1)
	plain := estimateSQL(t, `SELECT p_type, sum(l_extendedprice)
		FROM part JOIN lineitem ON l_partkey = p_partkey
		WHERE l_shipdate < 9000 GROUP BY p_type`, 1)

	if len(merged.Jobs) != 1 || len(plain.Jobs) != 2 {
		t.Fatalf("plan shapes: merged %d jobs, plain %d jobs", len(merged.Jobs), len(plain.Jobs))
	}
	m, p := merged.Jobs[0], plain.Jobs[1]
	// Same final cardinality (p_type groups).
	if relErr(m.OutRows, p.OutRows) > 0.05 {
		t.Fatalf("merged out rows %v vs plain %v", m.OutRows, p.OutRows)
	}
	// The merged job reads both tables.
	if relErr(m.InBytes, plain.Jobs[0].InBytes) > 0.05 {
		t.Fatalf("merged D_in %v vs join D_in %v", m.InBytes, plain.Jobs[0].InBytes)
	}
	if m.NumReduces < 1 {
		t.Fatal("merged aggregation lost its reduce phase")
	}
	// Per-map input includes the broadcast table as side data.
	if len(m.MapGroups) == 0 {
		t.Fatal("no map groups")
	}
	var groupTotal float64
	for _, g := range m.MapGroups {
		groupTotal += g.InBytes * float64(g.Count)
	}
	if groupTotal <= m.scanBytes-1 {
		t.Fatalf("map group bytes %v below scan bytes %v", groupTotal, m.scanBytes)
	}
}

func TestMapJoinPreludePercolatesSelectivity(t *testing.T) {
	// The broadcast side's predicate must shrink the downstream join's
	// output, just as it would through a standalone join job. (A groupby
	// consumer would hide this: its combine output is bounded by key
	// cardinality either way.)
	filtered := estimateSQL(t, `SELECT /*+ MAPJOIN(n) */ ps_partkey, sum(ps_supplycost)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_nationkey < 5
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`, 1)
	full := estimateSQL(t, `SELECT /*+ MAPJOIN(n) */ ps_partkey, sum(ps_supplycost)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`, 1)
	// Both plans: merged shuffle join (J1 with nation prelude) + groupby.
	fj, pj := filtered.Jobs[0], full.Jobs[0]
	if fj.Job.Type.String() != "Join" || len(fj.Job.MapJoins) != 1 {
		t.Fatalf("unexpected merged shape: %s", fj.Job.Label())
	}
	// nation < 5 keeps 20% of nations -> ~20% of suppliers -> ~20% of the
	// partsupp join output.
	ratio := fj.OutRows / pj.OutRows
	if ratio < 0.1 || ratio > 0.35 {
		t.Fatalf("broadcast-side filter not percolated: ratio %v (rows %v vs %v)",
			ratio, fj.OutRows, pj.OutRows)
	}
}

func TestInPredicateSelectivity(t *testing.T) {
	qe := estimateSQL(t, `SELECT l_orderkey FROM lineitem WHERE l_quantity IN (1, 2, 3, 4, 5)`, 0.1)
	j := qe.Jobs[0]
	want := 0.1 * float64(6_000_000) * 5 / 50 // 10% of domain values
	if relErr(j.OutRows, want) > 0.1 {
		t.Fatalf("IN out rows = %v, want ~%v", j.OutRows, want)
	}
}

func TestInSelectivityStringFallback(t *testing.T) {
	cs := &ColStat{Distinct: 10, Width: 8}
	p := query.Predicate{Op: query.OpIN, Set: []query.Literal{
		query.StrLit("a"), query.StrLit("b"), query.StrLit("c"),
	}}
	if got := inSelectivity(cs, p); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("string IN selectivity = %v, want 0.3", got)
	}
	// Saturates at 1.
	big := query.Predicate{Op: query.OpIN}
	for i := 0; i < 50; i++ {
		big.Set = append(big.Set, query.StrLit("x"))
	}
	if got := inSelectivity(cs, big); got != 1 {
		t.Fatalf("saturated IN = %v", got)
	}
}

func TestYaoScaledColumnSurvivesFilter(t *testing.T) {
	// Filtering half the rows of a 50-value column keeps ~all 50 values.
	qe := estimateSQL(t, `SELECT l_quantity, count(*) FROM lineitem
		WHERE l_shipdate < 9300 GROUP BY l_quantity`, 0.1)
	j := qe.Jobs[0]
	if j.OutRows < 45 || j.OutRows > 50 {
		t.Fatalf("surviving groups = %v, want ~50", j.OutRows)
	}
}

func TestReduceSkewGroups(t *testing.T) {
	// A Zipf-skewed fact-fact join must produce a hot reduce group; a
	// uniform-key join must not.
	skew := estimateSQL(t, `SELECT ss_quantity FROM store_sales JOIN web_sales ON ws_item_sk = ss_item_sk`, 80)
	uni := estimateSQL(t, `SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey`, 80)

	sj := skew.Jobs[0]
	if len(sj.ReduceGroups) != 2 {
		t.Fatalf("skewed join reduce groups = %d, want hot+rest", len(sj.ReduceGroups))
	}
	hot, rest := sj.ReduceGroups[0], sj.ReduceGroups[1]
	if hot.Count != 1 {
		t.Fatalf("hot group count = %d", hot.Count)
	}
	if hot.InBytes <= 2*rest.InBytes {
		t.Fatalf("hot reducer %v not much bigger than typical %v", hot.InBytes, rest.InBytes)
	}
	// Total mass conserved.
	total := hot.InBytes*float64(hot.Count) + rest.InBytes*float64(rest.Count)
	if relErr(total, sj.MedBytes) > 1e-6 {
		t.Fatalf("reduce groups lose mass: %v vs %v", total, sj.MedBytes)
	}

	uj := uni.Jobs[0]
	if len(uj.ReduceGroups) != 1 {
		t.Fatalf("uniform join should have one reduce group, got %d", len(uj.ReduceGroups))
	}
}

func TestGroupbyReducesStayUniform(t *testing.T) {
	// The map-side combine collapses hot keys, so groupby shuffles have no
	// hot partition even over Zipf keys.
	qe := estimateSQL(t, `SELECT ss_item_sk, count(*) FROM store_sales GROUP BY ss_item_sk`, 1)
	j := qe.Jobs[0]
	if len(j.ReduceGroups) != 1 {
		t.Fatalf("combined groupby reduce groups = %d, want 1", len(j.ReduceGroups))
	}
}
