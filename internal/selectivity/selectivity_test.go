package selectivity

import (
	"math"
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
)

// estimateSQL parses, resolves, compiles and estimates a query against an
// analytic catalog at the given scale factor.
func estimateSQL(t *testing.T, src string, sf float64) *QueryEstimate {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	schemas := dataset.AllSchemas()
	if err := query.Resolve(q, schemas); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var list []*dataset.Schema
	for _, s := range schemas {
		list = append(list, s)
	}
	cat := catalog.FromSchemas(list, sf, catalog.DefaultBuckets)
	qe, err := NewEstimator(cat, Config{}).EstimateQuery(d)
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	return qe
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

const q11 = `SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_name <> 'CHINA'
JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
GROUP BY ps_partkey`

// TestQ11PaperWalkthrough reproduces the paper's Section 3.2/Figure 5
// numbers: a 96% predicate selectivity on nation relayed along the chain,
// and a groupby output cardinality of ~200,000 (the ps_partkey domain).
func TestQ11PaperWalkthrough(t *testing.T) {
	qe := estimateSQL(t, q11, 1)
	j1, j2, j3 := qe.ByID["J1"], qe.ByID["J2"], qe.ByID["J3"]

	// J1 joins nation (25 rows, 96% pass) with supplier (10,000 rows,
	// PK-FK): output ≈ 9,600 tuples.
	if e := relErr(j1.OutRows, 9600); e > 0.05 {
		t.Fatalf("J1 out rows = %v, want ~9600 (err %.2f)", j1.OutRows, e)
	}
	// J2 joins that with partsupp (800,000 rows): ≈ 768,000 tuples.
	if e := relErr(j2.OutRows, 768000); e > 0.08 {
		t.Fatalf("J2 out rows = %v, want ~768000 (err %.2f)", j2.OutRows, e)
	}
	// J3 groups by ps_partkey: cardinality ≈ 200,000 per the paper.
	if e := relErr(j3.OutRows, 200000); e > 0.08 {
		t.Fatalf("J3 out rows = %v, want ~200000 (err %.2f)", j3.OutRows, e)
	}
}

func TestExtractSelectivity(t *testing.T) {
	// l_quantity uniform over [1,50]; < 11 passes ~20% of rows.
	qe := estimateSQL(t, `SELECT l_orderkey FROM lineitem WHERE l_quantity < 11`, 0.1)
	j := qe.Jobs[0]
	// S_proj: 2 of 14 columns; both 8-byte of a ~134-byte tuple.
	liWidth := float64(dataset.LineItem().AvgTupleWidth())
	wantIS := 0.2 * (16 / liWidth)
	if e := relErr(j.IS, wantIS); e > 0.10 {
		t.Fatalf("Extract IS = %v, want ~%v", j.IS, wantIS)
	}
	wantRows := 0.2 * float64(dataset.LineItem().RowsAt(0.1))
	if e := relErr(j.OutRows, wantRows); e > 0.10 {
		t.Fatalf("Extract out rows = %v, want ~%v", j.OutRows, wantRows)
	}
	if j.P != 0 {
		t.Fatalf("non-join job has P = %v", j.P)
	}
}

func TestMapOnlyJobHasNoReduces(t *testing.T) {
	qe := estimateSQL(t, `SELECT l_orderkey FROM lineitem WHERE l_quantity < 11`, 0.1)
	j := qe.Jobs[0]
	if !j.Job.MapOnly {
		t.Fatal("expected map-only job")
	}
	if j.NumReduces != 0 {
		t.Fatalf("map-only job has %d reduces", j.NumReduces)
	}
}

func TestLimitCapsOutput(t *testing.T) {
	qe := estimateSQL(t, `SELECT l_orderkey FROM lineitem LIMIT 10`, 0.1)
	j := qe.Jobs[0]
	if j.OutRows != 10 {
		t.Fatalf("limit out rows = %v", j.OutRows)
	}
	if j.FS <= 0 || j.FS >= 1e-3 {
		t.Fatalf("limit FS = %v, should be tiny but positive", j.FS)
	}
}

func TestOrderByKeepsAllRows(t *testing.T) {
	qe := estimateSQL(t, `SELECT l_orderkey FROM lineitem ORDER BY l_orderkey`, 0.01)
	j := qe.Jobs[0]
	rows := float64(dataset.LineItem().RowsAt(0.01))
	if e := relErr(j.OutRows, rows); e > 0.01 {
		t.Fatalf("sort dropped rows: %v of %v", j.OutRows, rows)
	}
}

func TestGroupbyClusteredVsRandom(t *testing.T) {
	// l_orderkey is clustered, l_partkey is not. With identical cardinality
	// ratios, the random case must combine less effectively (bigger IS)
	// whenever multiple blocks are scanned.
	clustered := estimateSQL(t, `SELECT l_orderkey, count(*) FROM lineitem GROUP BY l_orderkey`, 1)
	random := estimateSQL(t, `SELECT l_partkey, count(*) FROM lineitem GROUP BY l_partkey`, 1)
	cj, rj := clustered.Jobs[0], random.Jobs[0]
	if cj.NumMaps < 2 {
		t.Fatalf("need multi-block input for this test, got %d maps", cj.NumMaps)
	}
	// Clustered (Eq. 2, first case): S_comb = d/|T| = 1.5e6/6e6 = 0.25.
	dClu := 1.5e6 / 6e6
	if got := cj.MedRows / cj.InRows; relErr(got, dClu) > 0.05 {
		t.Fatalf("clustered S_comb = %v, want ~%v", got, dClu)
	}
	// Random (Eq. 2, second case): S_comb = min(1, d/(|T|/Nmaps)) — an
	// Nmaps-fold penalty over what clustering would have given this key.
	nMaps := float64(rj.NumMaps)
	dRand := math.Min(1, 2e5/(6e6/nMaps))
	if got := rj.MedRows / rj.InRows; relErr(got, dRand) > 0.05 {
		t.Fatalf("random S_comb = %v, want ~%v", got, dRand)
	}
	if ifClustered := 2e5 / 6e6; relErr(dRand, nMaps*ifClustered) > 1e-9 {
		t.Fatalf("random-case penalty is not Nmaps-fold: %v vs %v", dRand, nMaps*ifClustered)
	}
}

func TestGroupbyOutputCardinality(t *testing.T) {
	qe := estimateSQL(t, `SELECT l_quantity, sum(l_extendedprice) FROM lineitem GROUP BY l_quantity`, 0.1)
	j := qe.Jobs[0]
	if j.OutRows != 50 {
		t.Fatalf("groupby out rows = %v, want 50 (key cardinality)", j.OutRows)
	}
}

func TestGroupbyPredicateCapsCardinality(t *testing.T) {
	// After a very selective filter, |Out| = |T|·S_pred < d_key.
	qe := estimateSQL(t, `SELECT l_orderkey, count(*) FROM lineitem WHERE l_quantity = 1 GROUP BY l_orderkey`, 0.01)
	j := qe.Jobs[0]
	rows := float64(dataset.LineItem().RowsAt(0.01))
	want := rows * 0.02 // 1/50
	if e := relErr(j.OutRows, want); e > 0.2 {
		t.Fatalf("filtered groupby out rows = %v, want ~%v", j.OutRows, want)
	}
}

func TestGlobalAggregateSingleRow(t *testing.T) {
	qe := estimateSQL(t, `SELECT count(*) FROM orders`, 0.1)
	j := qe.Jobs[0]
	if j.OutRows != 1 {
		t.Fatalf("global aggregate out rows = %v, want 1", j.OutRows)
	}
}

func TestJoinPKFKCardinality(t *testing.T) {
	// customer ⋈ orders on custkey: PK-FK, output ≈ |orders|.
	qe := estimateSQL(t, `SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey`, 0.1)
	j := qe.Jobs[0]
	want := float64(dataset.Orders().RowsAt(0.1))
	if e := relErr(j.OutRows, want); e > 0.25 {
		t.Fatalf("PK-FK join rows = %v, want ~%v (err %.2f)", j.OutRows, want, e)
	}
}

func TestJoinBalanceRatio(t *testing.T) {
	qe := estimateSQL(t, `SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey`, 0.1)
	j := qe.Jobs[0]
	// customer 15k rows vs orders 150k rows: P = 150/(165) ≈ 0.909.
	if e := relErr(j.P, 150.0/165.0); e > 0.02 {
		t.Fatalf("P = %v, want ~0.909", j.P)
	}
	pf := j.PFactor()
	if pf <= 0 || pf > 0.25 {
		t.Fatalf("P(1-P) = %v outside (0, 1/4]", pf)
	}
}

func TestJoinISMixesInputs(t *testing.T) {
	// Eq. 3: with no predicates, IS is the byte-weighted S_proj mix.
	qe := estimateSQL(t, `SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey`, 0.1)
	j := qe.Jobs[0]
	cust, ord := dataset.Customer(), dataset.Orders()
	bc, bo := float64(cust.BytesAt(0.1)), float64(ord.BytesAt(0.1))
	// customer scan needs c_name(18)+c_custkey(8); orders needs o_custkey(8).
	sProjC := 26.0 / float64(cust.AvgTupleWidth())
	sProjO := 8.0 / float64(ord.AvgTupleWidth())
	want := (bc*sProjC + bo*sProjO) / (bc + bo)
	if e := relErr(j.IS, want); e > 0.02 {
		t.Fatalf("join IS = %v, want ~%v", j.IS, want)
	}
}

func TestTaskCounts(t *testing.T) {
	qe := estimateSQL(t, `SELECT l_orderkey FROM lineitem ORDER BY l_orderkey`, 1)
	j := qe.Jobs[0]
	liBytes := float64(dataset.LineItem().BytesAt(1))
	wantMaps := int(math.Ceil(liBytes / (float64(256<<20) * FragFactor("lineitem"))))
	if j.NumMaps != wantMaps {
		t.Fatalf("maps = %d, want %d", j.NumMaps, wantMaps)
	}
	if len(j.MapGroups) != 1 || j.MapGroups[0].Count != wantMaps {
		t.Fatalf("map groups wrong: %+v", j.MapGroups)
	}
	if got := j.MapGroups[0].InBytes * float64(wantMaps); math.Abs(got-liBytes) > 1 {
		t.Fatalf("group input bytes %v do not sum to %v", got, liBytes)
	}
	if j.NumReduces < 1 {
		t.Fatalf("reduces = %d", j.NumReduces)
	}
}

func TestMaxReducesCap(t *testing.T) {
	var list []*dataset.Schema
	for _, s := range dataset.AllSchemas() {
		list = append(list, s)
	}
	cat := catalog.FromSchemas(list, 10, catalog.DefaultBuckets)
	q, _ := query.Parse(`SELECT l_orderkey FROM lineitem ORDER BY l_orderkey`)
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatal(err)
	}
	d, _ := plan.Compile(q)
	qe, err := NewEstimator(cat, Config{MaxReduces: 4}).EstimateQuery(d)
	if err != nil {
		t.Fatal(err)
	}
	if qe.Jobs[0].NumReduces > 4 {
		t.Fatalf("reduce cap violated: %d", qe.Jobs[0].NumReduces)
	}
}

func TestSelectivityInvariants(t *testing.T) {
	queries := []string{
		q11,
		`SELECT l_orderkey FROM lineitem WHERE l_quantity < 30 ORDER BY l_orderkey LIMIT 5`,
		`SELECT c_name, count(*) FROM customer JOIN orders ON o_custkey = c_custkey WHERE o_totalprice > 5000 GROUP BY c_name`,
		`SELECT i_brand, sum(ss_sales_price) FROM item JOIN store_sales ON ss_item_sk = i_item_sk GROUP BY i_brand`,
	}
	for _, src := range queries {
		qe := estimateSQL(t, src, 0.5)
		for _, j := range qe.Jobs {
			if j.IS < 0 || j.IS > 1 {
				t.Fatalf("%s: IS = %v outside [0,1] for %s", src, j.IS, j.Job.ID)
			}
			if j.FS < 0 {
				t.Fatalf("%s: FS = %v negative for %s", src, j.FS, j.Job.ID)
			}
			if j.MedBytes > j.InBytes {
				t.Fatalf("%s: D_med %v > D_in %v for %s", src, j.MedBytes, j.InBytes, j.Job.ID)
			}
			if j.NumMaps < 1 {
				t.Fatalf("%s: no maps for %s", src, j.Job.ID)
			}
			if pf := j.PFactor(); pf < 0 || pf > 0.25 {
				t.Fatalf("%s: P(1-P) = %v for %s", src, pf, j.Job.ID)
			}
			if j.OutEdge == nil || j.OutEdge.Rows < 0 {
				t.Fatalf("%s: bad out edge for %s", src, j.Job.ID)
			}
		}
	}
}

func TestZipfJoinBeatsUniformFormula(t *testing.T) {
	// store_sales.ss_item_sk is Zipf-skewed; Eq. 5 must predict more output
	// than the naive uniform formula (skew inflates join sizes).
	qe := estimateSQL(t, `SELECT i_brand FROM item JOIN store_sales ON ss_item_sk = i_item_sk`, 0.2)
	j := qe.Jobs[0]
	item, ss := dataset.Item(), dataset.StoreSales()
	naive := float64(ss.RowsAt(0.2)) * float64(item.RowsAt(0.2)) / float64(item.RowsAt(0.2))
	// PK-FK with referential integrity: truth is |store_sales| = naive here,
	// so Eq. 5 should stay within a factor ~2 of it despite skew.
	if j.OutRows < naive*0.5 || j.OutRows > naive*2 {
		t.Fatalf("skewed PK-FK join estimate %v too far from %v", j.OutRows, naive)
	}
}

func TestNaturalJoinChainRows(t *testing.T) {
	// Eq. 6: three tables with predicates.
	got := NaturalJoinChainRows([]NaturalJoinTable{
		{Rows: 25, SPred: 0.96},
		{Rows: 10000, SPred: 1},
		{Rows: 800000, SPred: 1},
	})
	if got != 0.96*800000 {
		t.Fatalf("Eq.6 rows = %v, want %v", got, 0.96*800000)
	}
	if NaturalJoinChainRows(nil) != 0 {
		t.Fatal("empty chain should be 0")
	}
}

func TestTotalInputBytes(t *testing.T) {
	qe := estimateSQL(t, q11, 1)
	want := float64(dataset.Nation().BytesAt(1) + dataset.Supplier().BytesAt(1) + dataset.PartSupp().BytesAt(1))
	if e := relErr(qe.TotalInputBytes(), want); e > 1e-9 {
		t.Fatalf("TotalInputBytes = %v, want %v", qe.TotalInputBytes(), want)
	}
}

func TestPredSelectivityOperators(t *testing.T) {
	cat := catalog.FromSchema(dataset.LineItem(), 0.1, 64)
	cs := &ColStat{
		Hist:     cat.Column("l_quantity").Hist,
		Distinct: float64(cat.Column("l_quantity").Distinct),
		Width:    8,
	}
	mk := func(op query.CmpOp, v float64) query.Predicate {
		return query.Predicate{Left: query.ColumnRef{Table: "lineitem", Column: "l_quantity"}, Op: op, Lit: query.NumLit(v)}
	}
	lt := PredSelectivity(cs, mk(query.OpLT, 26))
	le := PredSelectivity(cs, mk(query.OpLE, 26))
	gt := PredSelectivity(cs, mk(query.OpGT, 26))
	ge := PredSelectivity(cs, mk(query.OpGE, 26))
	eq := PredSelectivity(cs, mk(query.OpEQ, 26))
	ne := PredSelectivity(cs, mk(query.OpNE, 26))
	if math.Abs(lt+eq-le) > 1e-9 {
		t.Fatalf("LE != LT+EQ: %v + %v vs %v", lt, eq, le)
	}
	if math.Abs(ge-eq-gt) > 1e-9 {
		t.Fatalf("GT != GE-EQ")
	}
	if math.Abs(lt+ge-1) > 1e-9 {
		t.Fatalf("LT+GE != 1: %v", lt+ge)
	}
	if math.Abs(eq+ne-1) > 1e-9 {
		t.Fatalf("EQ+NE != 1")
	}
	if e := relErr(eq, 0.02); e > 0.2 {
		t.Fatalf("EQ = %v, want ~1/50", eq)
	}
}

func TestPredSelectivityStringAndNil(t *testing.T) {
	cs := &ColStat{Distinct: 25, Width: 12}
	eq := query.Predicate{Op: query.OpEQ, Lit: query.StrLit("x")}
	ne := query.Predicate{Op: query.OpNE, Lit: query.StrLit("x")}
	lt := query.Predicate{Op: query.OpLT, Lit: query.StrLit("x")}
	if got := PredSelectivity(cs, eq); got != 0.04 {
		t.Fatalf("string EQ = %v", got)
	}
	if got := PredSelectivity(cs, ne); got != 0.96 {
		t.Fatalf("string NE = %v", got)
	}
	if got := PredSelectivity(cs, lt); got != defaultIneqSel {
		t.Fatalf("string LT = %v", got)
	}
	if got := PredSelectivity(nil, eq); got != defaultIneqSel {
		t.Fatalf("nil stats = %v", got)
	}
}

func TestConjunctionIndependence(t *testing.T) {
	cat := catalog.FromSchema(dataset.LineItem(), 0.1, 64)
	mkCS := func(name string) *ColStat {
		c := cat.Column(name)
		return &ColStat{Hist: c.Hist, Distinct: float64(c.Distinct), Width: c.AvgWidth}
	}
	cols := map[string]*ColStat{
		"lineitem.l_quantity": mkCS("l_quantity"),
		"lineitem.l_discount": mkCS("l_discount"),
	}
	p1 := query.Predicate{Left: query.ColumnRef{Table: "lineitem", Column: "l_quantity"}, Op: query.OpLT, Lit: query.NumLit(26)}
	p2 := query.Predicate{Left: query.ColumnRef{Table: "lineitem", Column: "l_discount"}, Op: query.OpLT, Lit: query.NumLit(0.05)}
	s1 := PredSelectivity(cols["lineitem.l_quantity"], p1)
	s2 := PredSelectivity(cols["lineitem.l_discount"], p2)
	both := ConjunctionSelectivity(cols, []query.Predicate{p1, p2})
	if math.Abs(both-s1*s2) > 1e-12 {
		t.Fatalf("conjunction %v != %v * %v", both, s1, s2)
	}
}
