// Package selectivity implements the paper's semantics-aware selectivity
// estimation (Section 3): per-job Intermediate Selectivity (IS = D_med/D_in)
// and Final Selectivity (FS = D_out/D_in) for the Extract, Groupby and Join
// job categories, including
//
//   - predicate selectivity S_pred from equi-width histograms,
//   - projection selectivity S_proj from column widths,
//   - combine selectivity S_comb for Groupby (Eq. 2, clustered vs random),
//   - join input mixing (Eq. 3) and the join balance ratio P (Eq. 7),
//   - piece-wise-uniform join cardinality (Eq. 5),
//   - natural-join chains with accumulated predicates (Eq. 6),
//
// and the propagation of data statistics along a query DAG so that a job's
// estimates feed its downstream jobs.
package selectivity
