package selectivity

import (
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
)

// compileSQL parses, resolves and compiles a query for estimator tests
// that need to run the same DAG through several estimator configs.
func compileSQL(t *testing.T, src string) *plan.DAG {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return d
}

// TestSketchModeSubstitutes checks the tier plumbing: a collected
// catalog carries sketches, sketch mode reports the tier and the
// substituted-column tally, and the estimates stay close to exact mode.
func TestSketchModeSubstitutes(t *testing.T) {
	schemas := []*dataset.Schema{dataset.LineItem(), dataset.Orders()}
	cat := catalog.CollectAll(schemas, 0.01, 42, catalog.DefaultBuckets)
	d := compileSQL(t, `SELECT l_orderkey, sum(l_quantity)
		FROM lineitem JOIN orders ON l_orderkey = o_orderkey
		GROUP BY l_orderkey`)

	exact, err := NewEstimator(cat, Config{}).EstimateQuery(d)
	if err != nil {
		t.Fatalf("exact estimate: %v", err)
	}
	sk, err := NewEstimator(cat, Config{Stats: StatsSketch}).EstimateQuery(d)
	if err != nil {
		t.Fatalf("sketch estimate: %v", err)
	}

	if exact.StatsTier != StatsExact || exact.SketchCols != 0 {
		t.Fatalf("exact mode reported tier=%q sketchCols=%d", exact.StatsTier, exact.SketchCols)
	}
	if sk.StatsTier != StatsSketch {
		t.Fatalf("sketch mode reported tier=%q", sk.StatsTier)
	}
	if sk.SketchCols == 0 {
		t.Fatal("sketch mode substituted no columns on a collected catalog")
	}
	for i, je := range sk.Jobs {
		ex := exact.Jobs[i]
		if e := relErr(je.OutRows, ex.OutRows); e > 0.10 {
			t.Errorf("job %s: sketch OutRows %v vs exact %v (rel err %.3f)",
				je.Job.ID, je.OutRows, ex.OutRows, e)
		}
		if e := relErr(je.IS, ex.IS); e > 0.10 {
			t.Errorf("job %s: sketch IS %v vs exact %v", je.Job.ID, je.IS, ex.IS)
		}
		if e := relErr(je.FS, ex.FS); e > 0.10 {
			t.Errorf("job %s: sketch FS %v vs exact %v", je.Job.ID, je.FS, ex.FS)
		}
	}
}

// TestSketchModeAnalyticFallback: an analytic catalog has no sketches,
// so sketch mode must fall back to exact statistics column-for-column
// and produce identical estimates.
func TestSketchModeAnalyticFallback(t *testing.T) {
	var list []*dataset.Schema
	for _, s := range dataset.AllSchemas() {
		list = append(list, s)
	}
	cat := catalog.FromSchemas(list, 0.1, catalog.DefaultBuckets)
	d := compileSQL(t, q11)

	exact, err := NewEstimator(cat, Config{}).EstimateQuery(d)
	if err != nil {
		t.Fatalf("exact estimate: %v", err)
	}
	sk, err := NewEstimator(cat, Config{Stats: StatsSketch}).EstimateQuery(d)
	if err != nil {
		t.Fatalf("sketch estimate: %v", err)
	}
	if sk.SketchCols != 0 {
		t.Fatalf("analytic catalog substituted %d sketch columns", sk.SketchCols)
	}
	for i, je := range sk.Jobs {
		ex := exact.Jobs[i]
		if je.OutRows != ex.OutRows || je.IS != ex.IS || je.FS != ex.FS {
			t.Errorf("job %s: fallback diverged from exact: out %v/%v IS %v/%v FS %v/%v",
				je.Job.ID, je.OutRows, ex.OutRows, je.IS, ex.IS, je.FS, ex.FS)
		}
	}
}
