package selectivity

import "math"

// NaturalJoinTable describes one table in a PK–FK natural-join tree with
// its local predicate selectivity.
type NaturalJoinTable struct {
	Rows  float64
	SPred float64
}

// NaturalJoinChainRows implements the paper's Eq. 6 for natural joins
// (each operator joins one table's primary key with another's foreign key,
// under referential integrity) with local predicates on each table:
//
//	|T1.pred1 ⋈ ... ⋈ Tn.predn| = S_pred1 · S_pred2 · ... · S_predn × max(|T1|, ..., |Tn|)
//
// Selectivities accumulate along the branches of the join tree, so the
// result is the largest table scaled by every predicate.
func NaturalJoinChainRows(tables []NaturalJoinTable) float64 {
	if len(tables) == 0 {
		return 0
	}
	prod := 1.0
	maxRows := 0.0
	for _, t := range tables {
		prod *= clamp01(t.SPred)
		maxRows = math.Max(maxRows, t.Rows)
	}
	return prod * maxRows
}
