package selectivity

import (
	"fmt"
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
	"saqp/internal/sim"
)

// Property-based checks of the estimator's Eq. 1–6 invariants over
// randomized statistics and predicates: selectivities are probabilities,
// Extract/Groupby jobs never emit more than they shuffle (FS ≤ IS), and
// widening a predicate's range never lowers its estimated selectivity.
// Randomness comes from the repository's seeded sim.RNG, so a failure
// reproduces exactly.

const propEps = 1e-9

// propEnv is one randomized estimation environment: a catalog built at a
// random scale factor with a random histogram resolution.
type propEnv struct {
	cat *catalog.Catalog
	est *Estimator
	sf  float64
}

func newPropEnv(rng *sim.RNG) *propEnv {
	var list []*dataset.Schema
	for _, s := range dataset.AllSchemas() {
		list = append(list, s)
	}
	sf := rng.Range(0.05, 4)
	buckets := 4 + rng.Intn(120)
	cat := catalog.FromSchemas(list, sf, buckets)
	return &propEnv{cat: cat, est: NewEstimator(cat, Config{}), sf: sf}
}

func (p *propEnv) estimate(t *testing.T, src string) *QueryEstimate {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("sf=%g parse %q: %v", p.sf, src, err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatalf("sf=%g resolve %q: %v", p.sf, src, err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		t.Fatalf("sf=%g compile %q: %v", p.sf, src, err)
	}
	qe, err := p.est.EstimateQuery(d)
	if err != nil {
		t.Fatalf("sf=%g estimate %q: %v", p.sf, src, err)
	}
	return qe
}

// randRange draws BETWEEN bounds for a column, deliberately overshooting
// the domain on either side so clamping paths are exercised too.
func randRange(rng *sim.RNG, cs *catalog.ColumnStats) (lo, hi int64) {
	span := cs.Max - cs.Min
	if span <= 0 {
		span = 1
	}
	a := cs.Min + (rng.Float64()*1.4-0.2)*span
	b := cs.Min + (rng.Float64()*1.4-0.2)*span
	if a > b {
		a, b = b, a
	}
	return int64(a), int64(b)
}

// TestPropertySelectivityInvariants drives randomized Extract, Groupby
// and Join queries through randomized catalogs and checks, for every
// job estimate: IS ∈ [0,1], FS ∈ [0,1], and FS ≤ IS for Extract and
// Groupby jobs (a job cannot emit more than it shuffles, Eq. 1–2 vs 4).
func TestPropertySelectivityInvariants(t *testing.T) {
	rng := sim.New(0x5e1ec7)
	for trial := 0; trial < 25; trial++ {
		env := newPropEnv(rng)
		li := env.cat.Tables["lineitem"]
		ship := li.Columns["l_shipdate"]
		qty := li.Columns["l_quantity"]
		sLo, sHi := randRange(rng, ship)
		qLo, qHi := randRange(rng, qty)
		queries := []string{
			fmt.Sprintf(`SELECT l_orderkey, l_extendedprice FROM lineitem
				WHERE l_shipdate BETWEEN %d AND %d AND l_quantity BETWEEN %d AND %d`,
				sLo, sHi, qLo, qHi),
			fmt.Sprintf(`SELECT l_returnflag, SUM(l_quantity) FROM lineitem
				WHERE l_shipdate BETWEEN %d AND %d GROUP BY l_returnflag`, sLo, sHi),
			fmt.Sprintf(`SELECT o_orderkey, l_extendedprice FROM orders
				JOIN lineitem ON l_orderkey = o_orderkey
				WHERE l_shipdate BETWEEN %d AND %d`, sLo, sHi),
		}
		for _, src := range queries {
			qe := env.estimate(t, src)
			for _, je := range qe.Jobs {
				if je.IS < -propEps || je.IS > 1+propEps {
					t.Errorf("trial %d sf=%.2f %s %s: IS=%g outside [0,1]\n%s",
						trial, env.sf, je.Job.ID, je.Job.Type, je.IS, src)
				}
				if je.FS < -propEps || je.FS > 1+propEps {
					t.Errorf("trial %d sf=%.2f %s %s: FS=%g outside [0,1]\n%s",
						trial, env.sf, je.Job.ID, je.Job.Type, je.FS, src)
				}
				switch je.Job.Type {
				case plan.Extract, plan.Groupby:
					if je.FS > je.IS+propEps {
						t.Errorf("trial %d sf=%.2f %s %s: FS=%g > IS=%g\n%s",
							trial, env.sf, je.Job.ID, je.Job.Type, je.FS, je.IS, src)
					}
				}
			}
		}
	}
}

// TestPropertyMonotoneInRangeWidth nests BETWEEN predicates: each wider
// range strictly contains the previous one, so the estimated selectivity
// — and with it the scan job's IS — must be non-decreasing (Eq. 1 with
// Eq. 6's histogram fractions).
func TestPropertyMonotoneInRangeWidth(t *testing.T) {
	rng := sim.New(0xbeef)
	for trial := 0; trial < 10; trial++ {
		env := newPropEnv(rng)
		ship := env.cat.Tables["lineitem"].Columns["l_shipdate"]
		span := ship.Max - ship.Min
		center := ship.Min + rng.Range(0.2, 0.8)*span
		delta := span / 24
		prev := -1.0
		prevLo, prevHi := int64(0), int64(0)
		for k := 1; k <= 10; k++ {
			w := float64(k) * delta
			lo, hi := int64(center-w), int64(center+w)
			qe := env.estimate(t, fmt.Sprintf(
				`SELECT l_orderkey, l_extendedprice FROM lineitem
				 WHERE l_shipdate BETWEEN %d AND %d`, lo, hi))
			var is float64
			found := false
			for _, je := range qe.Jobs {
				if je.Job.Type == plan.Extract {
					is, found = je.IS, true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: no Extract job in plan", trial)
			}
			if is < prev-propEps {
				t.Errorf("trial %d sf=%.2f: widening [%d,%d]→[%d,%d] lowered IS %g→%g",
					trial, env.sf, prevLo, prevHi, lo, hi, prev, is)
			}
			prev, prevLo, prevHi = is, lo, hi
		}
	}
}
