package selectivity

import (
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/query"
)

// BenchmarkMicroEstimateQuery measures end-to-end estimation of the
// paper's Q11 walkthrough (three-job chain: two joins and a group-by)
// against an analytic catalog — the per-submission cost every cache
// miss in the serving layer pays.
func BenchmarkMicroEstimateQuery(b *testing.B) {
	q, err := query.Parse(q11)
	if err != nil {
		b.Fatal(err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		b.Fatal(err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	var list []*dataset.Schema
	for _, s := range dataset.AllSchemas() {
		list = append(list, s)
	}
	cat := catalog.FromSchemas(list, 1, catalog.DefaultBuckets)
	est := NewEstimator(cat, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateQuery(d); err != nil {
			b.Fatal(err)
		}
	}
}
