package plan

import (
	"fmt"
	"sort"

	"saqp/internal/query"
)

// Compile turns a resolved query into a DAG of MapReduce jobs using the
// Hive-style physical plan for single-block queries:
//
//	J1..Jk   one Join job per JOIN clause, left-deep: J1 scans the two
//	         first tables, each later join reads the previous job's output
//	         plus one new base table;
//	Jk+1     a Groupby job when aggregation or GROUP BY is present;
//	Jk+2     an Extract job when ORDER BY and/or LIMIT is present;
//	         with none of the above, a single map-only Extract job.
//
// Local predicates are pushed down to the scan of the table they filter.
// Column pruning records exactly the attributes consumed downstream, which
// drives the paper's projection selectivity S_proj.
func Compile(q *query.Query) (*DAG, error) {
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("plan: query has no projection")
	}
	c := &compiler{q: q, localPreds: map[string][]query.Predicate{}}
	c.gatherColumns()
	c.gatherPredicates()

	var prev *Job
	var err error
	for i := range q.Joins {
		prev, err = c.joinJob(i, prev)
		if err != nil {
			return nil, err
		}
	}
	if q.HasAggregates() || len(q.GroupBy) > 0 {
		prev = c.groupbyJob(prev)
	}
	if len(q.OrderBy) > 0 || q.Limit >= 0 {
		prev, err = c.extractJob(prev)
		if err != nil {
			return nil, err
		}
	}
	if prev == nil {
		prev = c.scanOnlyJob()
	}
	c.mergeMapJoins()
	d := &DAG{Jobs: c.jobs, Query: q}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// mergeMapJoins folds map-only broadcast Join jobs into their single
// consumer, as Hive does: the consumer's map phase performs the broadcast
// join inline. Runs to a fixed point, then renumbers job IDs.
func (c *compiler) mergeMapJoins() {
	for {
		merged := false
		for xi, x := range c.jobs {
			if x.Type != Join || !x.MapOnly || x.Broadcast == "" {
				continue
			}
			// Find the consumers of x.
			var consumers []*Job
			for _, d := range c.jobs {
				for _, dep := range d.Deps {
					if dep == x {
						consumers = append(consumers, d)
					}
				}
			}
			if len(consumers) != 1 {
				continue
			}
			d := consumers[0]
			// Split x's scans into the broadcast table and probe scans.
			var bScan TableScan
			var probeScans []TableScan
			for _, ts := range x.Scans {
				if ts.Table == x.Broadcast {
					bScan = ts
				} else {
					probeScans = append(probeScans, ts)
				}
			}
			spec := MapJoinSpec{BroadcastScan: bScan, JoinLeft: x.JoinLeft, JoinRight: x.JoinRight}
			// x's own preludes run first, then x's join, then d's preludes.
			d.MapJoins = append(append(append([]MapJoinSpec{}, x.MapJoins...), spec), d.MapJoins...)
			d.Scans = append(probeScans, d.Scans...)
			// Rewire d's dependencies: replace x with x's deps.
			var newDeps []*Job
			for _, dep := range d.Deps {
				if dep == x {
					newDeps = append(newDeps, x.Deps...)
				} else {
					newDeps = append(newDeps, dep)
				}
			}
			d.Deps = newDeps
			c.jobs = append(c.jobs[:xi], c.jobs[xi+1:]...)
			merged = true
			break
		}
		if !merged {
			break
		}
	}
	// Renumber IDs and rewrite any synthetic column references (aggregate
	// ORDER BY keys bound to "J<n>.agg<i>") that named the old IDs.
	rename := map[string]string{}
	for i, j := range c.jobs {
		newID := fmt.Sprintf("J%d", i+1)
		if j.ID != newID {
			rename[j.ID] = newID
		}
		j.ID = newID
	}
	if len(rename) == 0 {
		return
	}
	for _, j := range c.jobs {
		for i := range j.OrderKeys {
			if to, ok := rename[j.OrderKeys[i].Col.Table]; ok {
				j.OrderKeys[i].Col.Table = to
			}
		}
	}
}

type compiler struct {
	q          *query.Query
	jobs       []*Job
	localPreds map[string][]query.Predicate // table -> pushed-down filters
	needCols   map[string]map[string]bool   // table -> needed column set
}

// newJob appends a job with the next sequential ID.
func (c *compiler) newJob(t JobType) *Job {
	j := &Job{ID: fmt.Sprintf("J%d", len(c.jobs)+1), Type: t, Limit: -1}
	c.jobs = append(c.jobs, j)
	return j
}

// gatherColumns computes, per base table, the set of columns referenced
// anywhere in the query (projection pruning).
func (c *compiler) gatherColumns() {
	c.needCols = make(map[string]map[string]bool)
	add := func(col query.ColumnRef) {
		if col.Table == "" {
			return
		}
		m := c.needCols[col.Table]
		if m == nil {
			m = make(map[string]bool)
			c.needCols[col.Table] = m
		}
		m[col.Column] = true
	}
	for _, s := range c.q.Select {
		if s.Star {
			continue
		}
		for _, col := range s.Expr.Columns() {
			add(col)
		}
	}
	addPred := func(p query.Predicate) {
		add(p.Left)
		if p.Right != nil {
			add(*p.Right)
		}
	}
	for _, j := range c.q.Joins {
		for _, p := range j.On {
			addPred(p)
		}
	}
	for _, p := range c.q.Where {
		addPred(p)
	}
	for _, g := range c.q.GroupBy {
		add(g)
	}
	for _, h := range c.q.Having {
		if h.Star {
			continue
		}
		for _, col := range h.Expr.Columns() {
			add(col)
		}
	}
	for _, o := range c.q.OrderBy {
		if o.Star {
			continue
		}
		if o.IsAggregate() {
			for _, col := range o.Expr.Columns() {
				add(col)
			}
			continue
		}
		add(o.Col)
	}
}

// gatherPredicates pushes local (column-vs-literal) conjuncts down to the
// scan of the table they filter.
func (c *compiler) gatherPredicates() {
	push := func(p query.Predicate) {
		if !p.IsJoin() {
			c.localPreds[p.Left.Table] = append(c.localPreds[p.Left.Table], p)
		}
	}
	for _, p := range c.q.Where {
		push(p)
	}
	for _, j := range c.q.Joins {
		for _, p := range j.On {
			push(p)
		}
	}
}

// scan builds the TableScan for a base table with its pushed predicates
// and pruned column list.
func (c *compiler) scan(table string) TableScan {
	cols := make([]string, 0, len(c.needCols[table]))
	for col := range c.needCols[table] {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	return TableScan{Table: table, Preds: c.localPreds[table], Columns: cols}
}

// joinJob emits the i-th Join job of the left-deep chain. Joins against a
// table named in a MAPJOIN hint compile to map-only broadcast joins: the
// small table is loaded into every map task and probed without a shuffle.
func (c *compiler) joinJob(i int, prev *Job) (*Job, error) {
	jc := c.q.Joins[i]
	var cond *query.Predicate
	for k := range jc.On {
		if jc.On[k].IsJoin() {
			cond = &jc.On[k]
			break
		}
	}
	if cond == nil {
		return nil, fmt.Errorf("plan: join %d has no equi-join condition", i+1)
	}
	// Orient the condition: Right side refers to the newly joined table.
	left, right := cond.Left, *cond.Right
	if left.Table == jc.Table.Name && right.Table != jc.Table.Name {
		left, right = right, left
	}
	j := c.newJob(Join)
	j.JoinLeft, j.JoinRight = left, right
	if prev == nil {
		j.Scans = []TableScan{c.scan(c.q.From.Name), c.scan(jc.Table.Name)}
	} else {
		j.Deps = []*Job{prev}
		j.Scans = []TableScan{c.scan(jc.Table.Name)}
	}
	// A hinted table on either side of this join makes it map-side; when
	// both sides are hinted, hint order decides which table broadcasts.
hintScan:
	for _, hinted := range c.q.MapJoinTables {
		for _, ts := range j.Scans {
			if ts.Table == hinted {
				j.MapOnly = true
				j.Broadcast = hinted
				break hintScan
			}
		}
	}
	j.Output = c.outputColumns()
	return j, nil
}

// groupbyJob emits the aggregation job.
func (c *compiler) groupbyJob(prev *Job) *Job {
	j := c.newJob(Groupby)
	if prev == nil {
		j.Scans = []TableScan{c.scan(c.q.From.Name)}
	} else {
		j.Deps = []*Job{prev}
	}
	j.GroupKeys = c.q.GroupBy
	for _, s := range c.q.Select {
		if s.Agg != query.AggNone || s.Star {
			j.Aggs = append(j.Aggs, s)
		}
	}
	j.Having = c.q.Having
	j.Output = c.outputColumns()
	return j
}

// extractJob emits the sort/limit job. Aggregate sort keys (ORDER BY
// sum(x)) are bound to the upstream aggregation job's output columns; the
// aggregate must appear in the SELECT list.
func (c *compiler) extractJob(prev *Job) (*Job, error) {
	j := c.newJob(Extract)
	if prev == nil {
		j.Scans = []TableScan{c.scan(c.q.From.Name)}
	} else {
		j.Deps = []*Job{prev}
	}
	for _, o := range c.q.OrderBy {
		if o.IsAggregate() {
			if prev == nil || prev.Type != Groupby {
				return nil, fmt.Errorf("plan: ORDER BY aggregate %s requires a GROUP BY", o)
			}
			idx := matchAgg(prev.Aggs, o)
			if idx < 0 {
				return nil, fmt.Errorf("plan: ORDER BY aggregate %s must appear in SELECT", o)
			}
			o.Col = query.ColumnRef{Table: prev.ID, Column: fmt.Sprintf("agg%d", idx)}
		}
		j.OrderKeys = append(j.OrderKeys, o)
	}
	j.Limit = c.q.Limit
	j.Output = c.outputColumns()
	return j, nil
}

// matchAgg finds the select-list aggregate matching an ORDER BY aggregate.
func matchAgg(aggs []query.SelectItem, o query.OrderItem) int {
	for i, a := range aggs {
		if a.Star && o.Star {
			return i
		}
		if a.Star || o.Star {
			continue
		}
		if a.Agg == o.Agg && a.Expr.String() == o.Expr.String() {
			return i
		}
	}
	return -1
}

// scanOnlyJob emits the single map-only filter/project job for queries
// with no join, aggregation, ordering or limit.
func (c *compiler) scanOnlyJob() *Job {
	j := c.newJob(Extract)
	j.Scans = []TableScan{c.scan(c.q.From.Name)}
	j.MapOnly = true
	j.Output = c.outputColumns()
	return j
}

// outputColumns renders the query's projected column names.
func (c *compiler) outputColumns() []string {
	var cols []string
	for _, s := range c.q.Select {
		if s.Star {
			cols = append(cols, "count(*)")
			continue
		}
		cols = append(cols, s.String())
	}
	return cols
}
