package plan

import (
	"strings"
	"testing"

	"saqp/internal/dataset"
	"saqp/internal/query"
)

func mustCompile(t *testing.T, src string) *DAG {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	d, err := Compile(q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return d
}

const q11 = `SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_name <> 'CHINA'
JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
GROUP BY ps_partkey`

func TestCompileQ11Shape(t *testing.T) {
	d := mustCompile(t, q11)
	// Paper Section 3.2: two join jobs and one groupby job.
	if len(d.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3\n%s", len(d.Jobs), d)
	}
	if d.Jobs[0].Type != Join || d.Jobs[1].Type != Join || d.Jobs[2].Type != Groupby {
		t.Fatalf("job types wrong:\n%s", d)
	}
	// J1 scans nation+supplier; J2 depends on J1 and scans partsupp.
	if len(d.Jobs[0].Scans) != 2 || len(d.Jobs[0].Deps) != 0 {
		t.Fatalf("J1 structure wrong: %+v", d.Jobs[0])
	}
	if len(d.Jobs[1].Scans) != 1 || d.Jobs[1].Scans[0].Table != "partsupp" ||
		len(d.Jobs[1].Deps) != 1 || d.Jobs[1].Deps[0] != d.Jobs[0] {
		t.Fatalf("J2 structure wrong: %+v", d.Jobs[1])
	}
	if len(d.Jobs[2].Deps) != 1 || d.Jobs[2].Deps[0] != d.Jobs[1] {
		t.Fatalf("J3 deps wrong")
	}
	if len(d.Jobs[2].GroupKeys) != 1 || d.Jobs[2].GroupKeys[0].Column != "ps_partkey" {
		t.Fatalf("group keys = %+v", d.Jobs[2].GroupKeys)
	}
}

func TestCompilePushdown(t *testing.T) {
	d := mustCompile(t, q11)
	var nationScan *TableScan
	for i := range d.Jobs[0].Scans {
		if d.Jobs[0].Scans[i].Table == "nation" {
			nationScan = &d.Jobs[0].Scans[i]
		}
	}
	if nationScan == nil {
		t.Fatal("J1 does not scan nation")
	}
	if len(nationScan.Preds) != 1 || nationScan.Preds[0].Op != query.OpNE {
		t.Fatalf("nation predicate not pushed: %+v", nationScan.Preds)
	}
}

func TestCompileColumnPruning(t *testing.T) {
	d := mustCompile(t, q11)
	for _, s := range d.Jobs[0].Scans {
		if s.Table == "nation" {
			// nation contributes n_nationkey (join key) and n_name (filter).
			want := "n_name,n_nationkey"
			if got := strings.Join(s.Columns, ","); got != want {
				t.Fatalf("nation pruned columns = %q, want %q", got, want)
			}
		}
	}
}

func TestCompileAggThenSort(t *testing.T) {
	// Q14-ish: aggregate then sort — the two-job chain of the paper's QA/QC.
	d := mustCompile(t, `SELECT l_orderkey, sum(l_extendedprice)
		FROM lineitem WHERE l_shipdate < 9000
		GROUP BY l_orderkey ORDER BY l_orderkey`)
	if len(d.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2\n%s", len(d.Jobs), d)
	}
	if d.Jobs[0].Type != Groupby || d.Jobs[1].Type != Extract {
		t.Fatalf("types = %v,%v", d.Jobs[0].Type, d.Jobs[1].Type)
	}
	if len(d.Jobs[1].OrderKeys) != 1 {
		t.Fatal("sort job missing order keys")
	}
	if d.Jobs[0].Scans[0].Table != "lineitem" || len(d.Jobs[0].Scans[0].Preds) != 1 {
		t.Fatalf("groupby scan wrong: %+v", d.Jobs[0].Scans[0])
	}
}

func TestCompileMapOnly(t *testing.T) {
	d := mustCompile(t, `SELECT l_orderkey FROM lineitem WHERE l_quantity < 10`)
	if len(d.Jobs) != 1 || !d.Jobs[0].MapOnly || d.Jobs[0].Type != Extract {
		t.Fatalf("map-only plan wrong:\n%s", d)
	}
}

func TestCompileLimitOnly(t *testing.T) {
	d := mustCompile(t, `SELECT l_orderkey FROM lineitem LIMIT 10`)
	if len(d.Jobs) != 1 || d.Jobs[0].MapOnly {
		t.Fatalf("limit plan wrong:\n%s", d)
	}
	if d.Jobs[0].Limit != 10 {
		t.Fatalf("limit = %d", d.Jobs[0].Limit)
	}
}

func TestCompileGlobalAggregate(t *testing.T) {
	d := mustCompile(t, `SELECT count(*) FROM orders`)
	if len(d.Jobs) != 1 || d.Jobs[0].Type != Groupby {
		t.Fatalf("global agg plan wrong:\n%s", d)
	}
	if len(d.Jobs[0].GroupKeys) != 0 || len(d.Jobs[0].Aggs) != 1 {
		t.Fatalf("global agg semantics wrong: %+v", d.Jobs[0])
	}
}

func TestCompileJoinOrientation(t *testing.T) {
	// Condition written both ways must orient Right to the new table.
	for _, src := range []string{
		`SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey`,
		`SELECT c_name FROM customer JOIN orders ON c_custkey = o_custkey`,
	} {
		d := mustCompile(t, src)
		j := d.Jobs[0]
		if j.JoinRight.Table != "orders" || j.JoinLeft.Table != "customer" {
			t.Fatalf("orientation wrong for %q: left=%v right=%v", src, j.JoinLeft, j.JoinRight)
		}
	}
}

func TestCompileFourJobChain(t *testing.T) {
	// Q17-ish: 3 joins + group by = 4 jobs, the paper's QB shape.
	d := mustCompile(t, `SELECT sum(l_extendedprice)
		FROM part JOIN lineitem ON l_partkey = p_partkey
		JOIN orders ON o_orderkey = l_orderkey
		JOIN customer ON c_custkey = o_custkey
		GROUP BY p_brand`)
	if len(d.Jobs) != 4 {
		t.Fatalf("jobs = %d, want 4\n%s", len(d.Jobs), d)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := mustCompile(t, q11)
	// Break topological order.
	d.Jobs[0], d.Jobs[2] = d.Jobs[2], d.Jobs[0]
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-order DAG")
	}
	d = mustCompile(t, q11)
	d.Jobs[1].ID = d.Jobs[0].ID
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate IDs")
	}
	d = mustCompile(t, q11)
	ghost := &Job{ID: "ghost"}
	d.Jobs[2].Deps = append(d.Jobs[2].Deps, ghost)
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted dangling dependency")
	}
}

func TestRootsAndSink(t *testing.T) {
	d := mustCompile(t, q11)
	roots := d.Roots()
	if len(roots) != 1 || roots[0].ID != "J1" {
		t.Fatalf("roots = %v", roots)
	}
	if d.Sink().ID != "J3" {
		t.Fatalf("sink = %s", d.Sink().ID)
	}
}

func TestDependents(t *testing.T) {
	d := mustCompile(t, q11)
	deps := d.Dependents()
	if len(deps["J1"]) != 1 || deps["J1"][0].ID != "J2" {
		t.Fatalf("dependents of J1 = %v", deps["J1"])
	}
	if len(deps["J3"]) != 0 {
		t.Fatal("sink should have no dependents")
	}
}

func TestCriticalPathChain(t *testing.T) {
	d := mustCompile(t, q11)
	cost, path := d.CriticalPath(func(*Job) float64 { return 10 })
	if cost != 30 {
		t.Fatalf("critical path cost = %v, want 30", cost)
	}
	if len(path) != 3 || path[0].ID != "J1" || path[2].ID != "J3" {
		t.Fatalf("path = %v", path)
	}
}

func TestCriticalPathWeighted(t *testing.T) {
	d := mustCompile(t, q11)
	cost, _ := d.CriticalPath(func(j *Job) float64 {
		if j.ID == "J2" {
			return 100
		}
		return 1
	})
	if cost != 102 {
		t.Fatalf("cost = %v, want 102", cost)
	}
	// Negative costs are clamped.
	cost, _ = d.CriticalPath(func(j *Job) float64 { return -5 })
	if cost != 0 {
		t.Fatalf("negative-cost path = %v", cost)
	}
}

func TestCompileErrors(t *testing.T) {
	q := &query.Query{Limit: -1}
	if _, err := Compile(q); err == nil {
		t.Fatal("Compile accepted projection-less query")
	}
}

func TestJobLabelAndTypeString(t *testing.T) {
	d := mustCompile(t, q11)
	if got := d.Jobs[1].Label(); got != "J2:Join(partsupp,J1)" {
		t.Fatalf("label = %q", got)
	}
	if Extract.String() != "Extract" || Groupby.String() != "Groupby" || Join.String() != "Join" {
		t.Fatal("type strings")
	}
	if JobType(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
}
