package plan

import (
	"testing"

	"saqp/internal/dataset"
	"saqp/internal/query"
)

func TestMapJoinMergesIntoConsumer(t *testing.T) {
	d := mustCompile(t, `SELECT /*+ MAPJOIN(part) */ p_type, sum(l_extendedprice)
		FROM part JOIN lineitem ON l_partkey = p_partkey
		GROUP BY p_type ORDER BY p_type`)
	// Join folds into the Groupby: AGG + Sort, the paper's Q14 shape.
	if len(d.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2\n%s", len(d.Jobs), d)
	}
	agg := d.Jobs[0]
	if agg.Type != Groupby {
		t.Fatalf("first job is %v, want Groupby", agg.Type)
	}
	if len(agg.MapJoins) != 1 {
		t.Fatalf("map-join preludes = %d", len(agg.MapJoins))
	}
	spec := agg.MapJoins[0]
	if spec.BroadcastScan.Table != "part" {
		t.Fatalf("broadcast table = %q", spec.BroadcastScan.Table)
	}
	// The probe scan moved into the merged job.
	if len(agg.Scans) != 1 || agg.Scans[0].Table != "lineitem" {
		t.Fatalf("merged scans = %+v", agg.Scans)
	}
	// IDs renumbered from J1.
	if agg.ID != "J1" || d.Jobs[1].ID != "J2" {
		t.Fatalf("IDs not renumbered: %s, %s", agg.ID, d.Jobs[1].ID)
	}
}

func TestMapJoinSinkNotMerged(t *testing.T) {
	// A map-only join with no consumer stays a standalone job.
	d := mustCompile(t, `SELECT /*+ MAPJOIN(nation) */ s_name
		FROM nation JOIN supplier ON s_nationkey = n_nationkey`)
	if len(d.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(d.Jobs))
	}
	j := d.Jobs[0]
	if !j.MapOnly || j.Broadcast != "nation" || len(j.MapJoins) != 0 {
		t.Fatalf("sink map-join mangled: %+v", j)
	}
}

func TestMapJoinChainMergesTransitively(t *testing.T) {
	// Hinting the nation dimension folds the first join into the shuffle
	// join against partsupp: the nation⋈supplier map-join becomes a
	// prelude of the downstream join job's map phase.
	d := mustCompile(t, `SELECT /*+ MAPJOIN(n, s) */ ps_partkey, sum(ps_supplycost)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`)
	if len(d.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2\n%s", len(d.Jobs), d)
	}
	join := d.Jobs[0]
	if join.Type != Join || len(join.MapJoins) != 1 {
		t.Fatalf("merged join = %+v", join)
	}
	// Hint order decides the broadcast side: nation, not supplier.
	if join.MapJoins[0].BroadcastScan.Table != "nation" {
		t.Fatalf("broadcast = %s, want nation (first hint)", join.MapJoins[0].BroadcastScan.Table)
	}
	tables := map[string]bool{}
	for _, ts := range join.Scans {
		tables[ts.Table] = true
	}
	if !tables["supplier"] || !tables["partsupp"] {
		t.Fatalf("merged scans = %+v", join.Scans)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapJoinPartialHint(t *testing.T) {
	// Only the first join hinted: it merges into the second (shuffle) join.
	d := mustCompile(t, `SELECT /*+ MAPJOIN(n) */ ps_partkey, sum(ps_supplycost)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`)
	if len(d.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2\n%s", len(d.Jobs), d)
	}
	join := d.Jobs[0]
	if join.Type != Join || len(join.MapJoins) != 1 || join.MapOnly {
		t.Fatalf("first job = %+v", join)
	}
	// The shuffle join now scans supplier (probe of the prelude) and
	// partsupp.
	tables := map[string]bool{}
	for _, ts := range join.Scans {
		tables[ts.Table] = true
	}
	if !tables["supplier"] || !tables["partsupp"] {
		t.Fatalf("merged scans = %+v", join.Scans)
	}
}

func TestMapJoinQueryStringRoundTrip(t *testing.T) {
	src := `SELECT /*+ MAPJOIN(part) */ p_type, sum(l_extendedprice)
		FROM part JOIN lineitem ON l_partkey = p_partkey GROUP BY p_type`
	q, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatal(err)
	}
	d1, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := query.Parse(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Resolve(q2, dataset.AllSchemas()); err != nil {
		t.Fatal(err)
	}
	d2, err := Compile(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Jobs) != len(d2.Jobs) {
		t.Fatalf("round-tripped plan differs: %d vs %d jobs", len(d1.Jobs), len(d2.Jobs))
	}
}
