package plan

import (
	"fmt"
	"strings"

	"saqp/internal/query"
)

// JobType is the paper's three-way job categorisation (Section 3.1): the
// major operator of the job determines how selectivities are estimated.
type JobType uint8

const (
	// Extract jobs scan/filter/project/sort one input (orderby, limit and
	// all remaining major operators).
	Extract JobType = iota
	// Groupby jobs aggregate on grouping keys, with map-side combines.
	Groupby
	// Join jobs merge two inputs on equi-join keys.
	Join
)

// String returns the category name.
func (t JobType) String() string {
	switch t {
	case Extract:
		return "Extract"
	case Groupby:
		return "Groupby"
	case Join:
		return "Join"
	}
	return fmt.Sprintf("JobType(%d)", uint8(t))
}

// TableScan is a base-table input of a job: which table is read, the local
// predicates pushed down to its scan, and the columns actually needed
// (projection pruning) — the inputs of S_pred and S_proj.
type TableScan struct {
	Table string
	// Preds are the conjunctive local filters applied during the scan.
	Preds []query.Predicate
	// Columns are the attribute names required downstream.
	Columns []string
}

// Job is one MapReduce job in a query plan.
type Job struct {
	// ID is unique within the DAG ("J1", "J2", ...).
	ID string
	// Type is the major-operator category.
	Type JobType
	// Scans lists base tables read by this job's map phase (0, 1 or 2).
	Scans []TableScan
	// Deps are upstream jobs whose output this job reads.
	Deps []*Job
	// JoinLeft and JoinRight are the equi-join key columns for Join jobs.
	JoinLeft, JoinRight query.ColumnRef
	// GroupKeys are the grouping columns for Groupby jobs.
	GroupKeys []query.ColumnRef
	// Aggs are the aggregate output items for Groupby jobs.
	Aggs []query.SelectItem
	// Having are post-aggregation filters applied in the reduce phase of
	// Groupby jobs.
	Having []query.HavingPred
	// OrderKeys are the sort columns for sorting Extract jobs.
	OrderKeys []query.OrderItem
	// Limit is the row limit for Extract jobs (-1 if absent).
	Limit int64
	// Output lists the column names this job emits (for width accounting).
	Output []string
	// MapOnly marks jobs with no reduce phase (pure filter/project, or a
	// broadcast map-side join).
	MapOnly bool
	// Broadcast names the small table loaded into every map task of a
	// map-side join ("" otherwise) — the Hive MAPJOIN the paper lists
	// among its minor operators.
	Broadcast string
	// MapJoins lists broadcast joins folded into this job's map phase:
	// Hive merges a map-only join into its consumer job, which is how the
	// paper's Q14 ("QA") runs as two jobs (AGG, Sort) rather than three.
	// They apply in order, before the job's own operator.
	MapJoins []MapJoinSpec
}

// MapJoinSpec is one broadcast join executed inside a job's map phase.
type MapJoinSpec struct {
	// BroadcastScan reads the small table (with its pushed-down filters).
	BroadcastScan TableScan
	// JoinLeft and JoinRight are the equi-join key columns; one side lives
	// in the broadcast table, the other in the job's main input.
	JoinLeft, JoinRight query.ColumnRef
}

// Label renders a short human-readable description ("J2:Join(lineitem)").
func (j *Job) Label() string {
	var parts []string
	for _, s := range j.Scans {
		parts = append(parts, s.Table)
	}
	for _, d := range j.Deps {
		parts = append(parts, d.ID)
	}
	return fmt.Sprintf("%s:%s(%s)", j.ID, j.Type, strings.Join(parts, ","))
}

// DAG is the compiled execution plan of one query.
type DAG struct {
	// Jobs are in a valid topological (submission) order.
	Jobs []*Job
	// Query is the resolved source query.
	Query *query.Query
}

// Sink returns the terminal job (the last job of the DAG).
func (d *DAG) Sink() *Job {
	if len(d.Jobs) == 0 {
		return nil
	}
	return d.Jobs[len(d.Jobs)-1]
}

// Roots returns the jobs with no upstream dependencies.
func (d *DAG) Roots() []*Job {
	var roots []*Job
	for _, j := range d.Jobs {
		if len(j.Deps) == 0 {
			roots = append(roots, j)
		}
	}
	return roots
}

// Dependents returns a map from job ID to the jobs that consume it.
func (d *DAG) Dependents() map[string][]*Job {
	out := make(map[string][]*Job, len(d.Jobs))
	for _, j := range d.Jobs {
		for _, dep := range j.Deps {
			out[dep.ID] = append(out[dep.ID], j)
		}
	}
	return out
}

// Validate checks structural invariants: unique IDs, dependencies that are
// members of the DAG, and topological ordering of Jobs.
func (d *DAG) Validate() error {
	seen := make(map[string]int, len(d.Jobs))
	for i, j := range d.Jobs {
		if j.ID == "" {
			return fmt.Errorf("plan: job %d has empty ID", i)
		}
		if _, dup := seen[j.ID]; dup {
			return fmt.Errorf("plan: duplicate job ID %q", j.ID)
		}
		seen[j.ID] = i
	}
	for i, j := range d.Jobs {
		for _, dep := range j.Deps {
			k, ok := seen[dep.ID]
			if !ok {
				return fmt.Errorf("plan: job %s depends on %s which is not in the DAG", j.ID, dep.ID)
			}
			if k >= i {
				return fmt.Errorf("plan: job %s appears before its dependency %s", j.ID, dep.ID)
			}
		}
	}
	return nil
}

// CriticalPath returns the maximum-cost root-to-sink path under the given
// per-job cost function, along with the path's jobs in order. The paper
// approximates a query's execution time by the jobs along this path
// (Section 5.4).
func (d *DAG) CriticalPath(cost func(*Job) float64) (float64, []*Job) {
	best := make(map[string]float64, len(d.Jobs))
	prev := make(map[string]*Job, len(d.Jobs))
	var maxJob *Job
	var maxCost float64
	for _, j := range d.Jobs { // Jobs are topologically ordered
		c := cost(j)
		if c < 0 {
			c = 0
		}
		b := c
		for _, dep := range j.Deps {
			if v := best[dep.ID] + c; v > b {
				b = v
				prev[j.ID] = dep
			}
		}
		best[j.ID] = b
		if maxJob == nil || b > maxCost {
			maxJob, maxCost = j, b
		}
	}
	var path []*Job
	for j := maxJob; j != nil; j = prev[j.ID] {
		path = append([]*Job{j}, path...)
	}
	return maxCost, path
}

// String renders the DAG one job per line.
func (d *DAG) String() string {
	var b strings.Builder
	for _, j := range d.Jobs {
		b.WriteString(j.Label())
		b.WriteByte('\n')
	}
	return b.String()
}
