// Package plan compiles resolved queries into directed acyclic graphs of
// MapReduce jobs, mirroring how Hive produces physical execution plans
// (paper Section 2): left-deep chains of Join jobs, a Groupby job for
// aggregation, and Extract jobs for sorting/limits. The DAG carries the
// query semantics — operators, predicates, projected columns, join keys —
// that the paper's "cross-layer semantics percolation" forwards to the
// scheduler.
package plan
