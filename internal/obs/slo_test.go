package obs_test

import (
	"bytes"
	"testing"

	"saqp/internal/obs"
)

func TestSLOConfigDefaults(t *testing.T) {
	cfg := obs.NewSLOTracker(obs.SLOConfig{Name: "SWRD"}).Config()
	if cfg.Name != "SWRD" {
		t.Errorf("name = %q, want SWRD", cfg.Name)
	}
	if cfg.LatencyObjectiveSec != obs.DefSLOLatencySec ||
		cfg.Target != obs.DefSLOTarget ||
		cfg.FastWindowSec != obs.DefSLOFastWindowSec ||
		cfg.SlowWindowSec != obs.DefSLOSlowWindowSec ||
		cfg.FastBurnThreshold != obs.DefSLOFastBurn ||
		cfg.SlowBurnThreshold != obs.DefSLOSlowBurn {
		t.Errorf("zero config not filled with defaults: %+v", cfg)
	}
	// A slow window shorter than the fast window is clamped up.
	cfg = obs.NewSLOTracker(obs.SLOConfig{FastWindowSec: 600, SlowWindowSec: 60}).Config()
	if cfg.SlowWindowSec != 600 {
		t.Errorf("slow window = %g, want clamped to fast window 600", cfg.SlowWindowSec)
	}
}

// controlledSLO is small enough to drive fire/resolve transitions by
// hand: objective 10s, 50% target (budget 0.5), both windows 100
// virtual seconds, both thresholds 1.5.
func controlledSLO() obs.SLOConfig {
	return obs.SLOConfig{
		Name:                "test",
		LatencyObjectiveSec: 10,
		Target:              0.5,
		FastWindowSec:       100,
		SlowWindowSec:       100,
		FastBurnThreshold:   1.5,
		SlowBurnThreshold:   1.5,
	}
}

func TestSLOTrackerFireAndResolve(t *testing.T) {
	tr := obs.NewSLOTracker(controlledSLO())

	// One bad sample (latency over the objective): bad fraction 1,
	// burn 1/0.5 = 2 ≥ 1.5 on both windows → fires.
	st := tr.Record(20, false)
	if !st.Bad || !st.Firing || !st.Transition {
		t.Fatalf("bad sample should fire: %+v", st)
	}
	if st.FastBurn != 2 || st.SlowBurn != 2 {
		t.Fatalf("burn = %g/%g, want 2/2", st.FastBurn, st.SlowBurn)
	}

	// One good sample: bad fraction 1/2, burn 1 < 1.5 → resolves.
	st = tr.Record(1, false)
	if st.Bad || st.Firing || !st.Transition {
		t.Fatalf("good sample should resolve: %+v", st)
	}

	// A failed query is bad regardless of latency.
	if st = tr.Record(1, true); !st.Bad {
		t.Fatalf("failed query not classified bad: %+v", st)
	}

	alerts := tr.Alerts()
	if len(alerts) != 2 || alerts[0].State != "fire" || alerts[1].State != "resolve" {
		t.Fatalf("alert log = %+v, want [fire resolve]", alerts)
	}
	if alerts[0].AtVirtualSec != 20 || alerts[1].AtVirtualSec != 21 {
		t.Errorf("alert times = %g, %g, want 20, 21 (virtual clock = cumulative latency)",
			alerts[0].AtVirtualSec, alerts[1].AtVirtualSec)
	}
}

func TestSLOTrackerWindowPruning(t *testing.T) {
	// A high latency objective keeps classification purely on the failed
	// flag, so big clock advances don't also flip samples bad.
	cfg := controlledSLO()
	cfg.LatencyObjectiveSec = 1000
	tr := obs.NewSLOTracker(cfg)

	st := tr.Record(60, true) // bad at t=60
	if !st.Bad || st.FastBurn != 2 {
		t.Fatalf("bad sample burn = %g, want 2: %+v", st.FastBurn, st)
	}
	// t=120, cut=20: the bad sample is still in-window → burn 1/2/0.5 = 1.
	if st = tr.Record(60, false); st.FastBurn != 1 {
		t.Fatalf("burn = %g, want 1 with the bad sample still in-window", st.FastBurn)
	}
	// t=180, cut=80: the t=60 bad sample ages out → burn 0.
	if st = tr.Record(60, false); st.FastBurn != 0 {
		t.Fatalf("burn = %g, want 0 after the bad sample aged out", st.FastBurn)
	}
	snap := tr.Snapshot()
	if snap.WindowSamples != 2 {
		t.Errorf("window samples = %d, want 2 (one pruned)", snap.WindowSamples)
	}
	if snap.Good != 2 || snap.Bad != 1 {
		t.Errorf("lifetime good/bad = %d/%d, want 2/1 (pruning never forgets totals)",
			snap.Good, snap.Bad)
	}
}

func TestSLOSnapshotDeterministic(t *testing.T) {
	run := func() []byte {
		tr := obs.NewSLOTracker(controlledSLO())
		tr.Record(20, false)
		tr.Record(1, false)
		tr.Record(3, true)
		b, err := tr.SnapshotJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical replays snapshot differently")
	}
	// An untouched tracker must serialise alerts as [], not null, so the
	// admin endpoint's golden responses stay stable.
	b, err := obs.NewSLOTracker(controlledSLO()).SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"alerts": null`)) {
		t.Fatalf("empty alert log serialised as null:\n%s", b)
	}
}

func TestSLORecordedPublishesMetrics(t *testing.T) {
	o := obs.New(nil)
	o.SLORecorded(obs.SLOState{FastBurn: 2, SlowBurn: 1.5, Firing: true, Transition: true, Bad: true})
	o.SLORecorded(obs.SLOState{FastBurn: 0.5, SlowBurn: 1, Firing: false, Transition: true, Bad: false})
	m := o.Metrics
	if v := m.Counter(obs.MSLOBadTotal).Value(); v != 1 {
		t.Errorf("%s = %g, want 1", obs.MSLOBadTotal, v)
	}
	if v := m.Counter(obs.MSLOGoodTotal).Value(); v != 1 {
		t.Errorf("%s = %g, want 1", obs.MSLOGoodTotal, v)
	}
	if v := m.Counter(obs.MSLOTransitions).Value(); v != 2 {
		t.Errorf("%s = %g, want 2", obs.MSLOTransitions, v)
	}
	if v := m.Gauge(obs.MSLOFiring).Value(); v != 0 {
		t.Errorf("%s = %g, want 0 after the resolve", obs.MSLOFiring, v)
	}
	if v := m.Gauge(obs.MSLOFastBurn).Value(); v != 0.5 {
		t.Errorf("%s = %g, want 0.5", obs.MSLOFastBurn, v)
	}
	// Nil-safe: a metrics-less observer must not panic.
	(&obs.Observer{}).SLORecorded(obs.SLOState{})
	var nilObs *obs.Observer
	nilObs.SLORecorded(obs.SLOState{})
}
