package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"saqp/internal/obs"
)

func TestTraceIDDeterministic(t *testing.T) {
	a := obs.TraceID("select 1", "cat-v1", 7)
	b := obs.TraceID("select 1", "cat-v1", 7)
	if a != b {
		t.Fatalf("same inputs produced different trace ids: %q vs %q", a, b)
	}
	if got := obs.TraceID("select 1", "cat-v1", 8); got == a {
		t.Fatalf("submission index not reflected in trace id: %q", got)
	}
	if got := obs.TraceID("select 2", "cat-v1", 7); got == a {
		t.Fatalf("sql not reflected in trace id: %q", got)
	}
	if got := obs.TraceID("select 1", "cat-v2", 7); got == a {
		t.Fatalf("catalog fingerprint not reflected in trace id: %q", got)
	}
	// Shape: 16 hex chars, dash, 6 decimal digits.
	parts := strings.Split(a, "-")
	if len(parts) != 2 || len(parts[0]) != 16 || len(parts[1]) != 6 {
		t.Fatalf("trace id %q not in <16-hex>-<6-dec> form", a)
	}
	if parts[1] != "000007" {
		t.Fatalf("submission suffix = %q, want 000007", parts[1])
	}
}

// buildTwoAttemptTree replays a fixed two-attempt request — attempt 1
// fails mid-job, attempt 2 completes — through the Observer callbacks,
// exactly as the serving engine drives them.
func buildTwoAttemptTree() obs.SpanTree {
	q := obs.BeginQuerySpan("abc-000001", "q1", obs.AttrStr("seed", "9"))
	q.Event(obs.SpanKindCache, "plan-cache", obs.AttrBool("hit", false))
	q.Event(obs.SpanKindAdmission, "swrd-admission", obs.AttrFloat("wrd", 42.5))

	// Attempt 1: the job opens, one task attempt fails, the simulated
	// query aborts — the job span is left open and must clamp at merge.
	c1 := obs.NewSpanCollector()
	o1 := &obs.Observer{Spans: c1}
	o1.JobSubmitted(0, 1.5, "q1", "j1", "join", 4, 2)
	o1.SchedulerDecision(0.5, "SWRD", false, "q1", nil)
	o1.TaskFailed(2, 1, "q1", "j1", "join", false, 0, 3, 1, 1, 0.5)
	o1.QueryFailed(2.5, 0, "q1", "task attempt cap")
	q.AddAttempt(c1, 2.5, obs.AttrBool("failed", true))

	// Attempt 2: the retry completes cleanly.
	c2 := obs.NewSpanCollector()
	o2 := &obs.Observer{Spans: c2}
	o2.JobSubmitted(0, 1.5, "q1", "j1", "join", 4, 2)
	o2.TaskFinished(3, 1, "q1", "j1", "join", false, 0, 2, 1, 2.0, false, false)
	o2.JobFinished(4, 0, "q1", "j1", "join")
	q.AddAttempt(c2, 4, obs.AttrBool("failed", false))

	q.Event(obs.SpanKindFeedback, "learn-feedback", obs.AttrInt("jobs", 1))
	return q.Finish(obs.AttrFloat("sim_sec", 6.5))
}

func TestQuerySpanMergesAttempts(t *testing.T) {
	tree := buildTwoAttemptTree()

	root := tree.Spans[0]
	if root.Kind != obs.SpanKindQuery || root.Parent != -1 || root.ID != 0 {
		t.Fatalf("root span malformed: %+v", root)
	}
	if root.End != 6.5 {
		t.Fatalf("root end = %g, want 6.5 (2.5 + 4 on the merged timeline)", root.End)
	}

	// Every non-root span must point at an earlier, existing parent.
	byKind := map[string][]obs.Span{}
	for i, s := range tree.Spans {
		if s.ID != i {
			t.Fatalf("span %d carries id %d; ids must index the slice", i, s.ID)
		}
		if i > 0 && (s.Parent < 0 || s.Parent >= i) {
			t.Fatalf("span %d (%s %q) has invalid parent %d", i, s.Kind, s.Name, s.Parent)
		}
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	for _, kind := range []string{obs.SpanKindCache, obs.SpanKindAdmission,
		obs.SpanKindAttempt, obs.SpanKindJob, obs.SpanKindTask,
		obs.SpanKindSched, obs.SpanKindFault, obs.SpanKindFeedback} {
		if len(byKind[kind]) == 0 {
			t.Errorf("tree has no %q span", kind)
		}
	}

	attempts := byKind[obs.SpanKindAttempt]
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2", len(attempts))
	}
	if attempts[0].Start != 0 || attempts[0].End != 2.5 {
		t.Errorf("attempt 1 spans [%g,%g], want [0,2.5]", attempts[0].Start, attempts[0].End)
	}
	if attempts[1].Start != 2.5 || attempts[1].End != 6.5 {
		t.Errorf("attempt 2 spans [%g,%g], want [2.5,6.5]", attempts[1].Start, attempts[1].End)
	}

	jobs := byKind[obs.SpanKindJob]
	if len(jobs) != 2 {
		t.Fatalf("got %d job spans, want 2", len(jobs))
	}
	// Attempt 1's job was never finished: its end clamps to the attempt.
	if jobs[0].End != 2.5 {
		t.Errorf("open job clamped to %g, want attempt end 2.5", jobs[0].End)
	}
	if jobs[0].Parent != attempts[0].ID {
		t.Errorf("attempt-1 job parented on %d, want attempt span %d", jobs[0].Parent, attempts[0].ID)
	}
	// Attempt 2's job re-bases by the 2.5s the first attempt consumed.
	if jobs[1].Start != 2.5 || jobs[1].End != 6.5 {
		t.Errorf("attempt-2 job spans [%g,%g], want [2.5,6.5]", jobs[1].Start, jobs[1].End)
	}

	// The completed task re-bases and re-parents under its job span.
	task := byKind[obs.SpanKindTask][0]
	if task.Start != 3.5 || task.End != 5.5 {
		t.Errorf("task spans [%g,%g], want [3.5,5.5]", task.Start, task.End)
	}
	if task.Parent != jobs[1].ID {
		t.Errorf("task parented on %d, want job span %d", task.Parent, jobs[1].ID)
	}

	// The feedback event lands at the merged-timeline end.
	fb := byKind[obs.SpanKindFeedback][0]
	if fb.Start != 6.5 || fb.Parent != 0 {
		t.Errorf("feedback at %g parent %d, want 6.5 parent 0", fb.Start, fb.Parent)
	}
}

// TestSpanTreeJSONDeterministic rebuilds the same request twice and
// demands byte-identical serialisation — the contract the seeded replay
// acceptance test relies on.
func TestSpanTreeJSONDeterministic(t *testing.T) {
	a, err := json.MarshalIndent(buildTwoAttemptTree(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(buildTwoAttemptTree(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical replays serialised differently")
	}
}

// oneSpanTree builds a minimal finished tree with the given trace id.
func oneSpanTree(id string) obs.SpanTree {
	q := obs.BeginQuerySpan(id, "q")
	q.Event(obs.SpanKindCache, "plan-cache", obs.AttrBool("hit", true))
	return q.Finish()
}

func TestSpanStoreRingEviction(t *testing.T) {
	st := obs.NewSpanStore(2)
	for _, id := range []string{"t1", "t2", "t3"} {
		st.Begin()
		st.Add(oneSpanTree(id))
	}
	c := st.Counts()
	if c.Started != 3 || c.Finished != 3 || c.Evicted != 1 || c.Retained != 2 {
		t.Fatalf("counts = %+v, want started 3 finished 3 evicted 1 retained 2", c)
	}
	trees := st.Trees()
	if len(trees) != 2 || trees[0].TraceID != "t2" || trees[1].TraceID != "t3" {
		ids := make([]string, len(trees))
		for i, tr := range trees {
			ids[i] = tr.TraceID
		}
		t.Fatalf("retained %v, want [t2 t3] oldest first", ids)
	}
	if _, ok := st.Tree("t1"); ok {
		t.Error("evicted tree t1 still resolvable")
	}
	if tr, ok := st.Tree("t3"); !ok || tr.TraceID != "t3" {
		t.Errorf("Tree(t3) = %v %v, want the retained tree", tr.TraceID, ok)
	}
}

func TestSpanStoreWriteJSON(t *testing.T) {
	st := obs.NewSpanStore(4)
	var empty bytes.Buffer
	if err := st.WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	var snap obs.SpanStoreSnapshot
	if err := json.Unmarshal(empty.Bytes(), &snap); err != nil {
		t.Fatalf("empty store wrote invalid JSON: %v\n%s", err, empty.String())
	}
	if snap.Trees == nil || len(snap.Trees) != 0 {
		t.Errorf("empty store trees = %v, want present-and-empty list", snap.Trees)
	}

	st.Begin()
	st.Add(oneSpanTree("t1"))
	var a, b bytes.Buffer
	if err := st.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of an unchanged store serialised differently")
	}
}

// TestSpanStoreChromeExport checks the async-flow export is valid JSON
// with paired begin/end events carrying the same flow id.
func TestSpanStoreChromeExport(t *testing.T) {
	st := obs.NewSpanStore(4)
	st.Begin()
	st.Add(buildTwoAttemptTree())

	var buf bytes.Buffer
	ts := obs.NewTraceSink(&buf)
	st.WriteChromeTrace(ts)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is invalid JSON: %v", err)
	}
	begins, ends := map[string]int{}, map[string]int{}
	for _, ev := range events {
		id, _ := ev["id"].(string)
		switch ev["ph"] {
		case "b":
			begins[id]++
		case "e":
			ends[id]++
		}
	}
	if len(begins) == 0 {
		t.Fatal("export contains no async begin events")
	}
	for id, n := range begins {
		if ends[id] != n {
			t.Errorf("flow %q has %d begins but %d ends", id, n, ends[id])
		}
	}
}
