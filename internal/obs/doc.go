// Package obs is the reproduction's deterministic observability layer:
// a metrics registry (Prometheus text exposition + JSON snapshots), a
// Chrome trace-event sink for query→job→task lifecycles and scheduler
// decisions, and a prediction-drift recorder that accumulates
// predicted-vs-simulated error per job category — the live equivalent of
// the paper's Tables 3–5.
//
// The layer is deterministic by construction: every timestamp comes from
// the cluster simulator's virtual clock (float64 seconds threaded
// through each hook), never the wall clock, and every serialisation
// orders keys, so a fixed workload and seed produce byte-identical
// traces, metrics and drift snapshots across runs. The package is
// dependency-free (standard library only) and sits at the bottom of the
// import graph, so cluster, sched, and the facade all instrument through
// it without cycles.
//
// A nil *Observer is valid everywhere: every hook is a method on the
// pointer receiver that returns immediately, so uninstrumented hot paths
// pay one nil check and allocate nothing.
package obs
