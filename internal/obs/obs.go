package obs

import (
	"strconv"
	"strings"
)

// Observer bundles the sinks behind the instrumentation seam the
// simulator and scheduler call into. Any field may be nil to disable
// that sink; a nil *Observer disables everything.
type Observer struct {
	Metrics *Registry
	Trace   *TraceSink
	Drift   *DriftRecorder
	// Spans collects one simulator attempt's request-scoped spans; the
	// serving engine attaches a spans-only Observer to each pool
	// simulator when tracing is enabled (see span.go).
	Spans *SpanCollector

	// run namespaces per-query trace processes so repeated query ids
	// (the same workload replayed under several schedulers) get distinct
	// tracks instead of overlapping spans.
	run     string
	nextPid int
	qpids   map[string]int // query id (this run) → pid
	jtids   map[string]int // job id (this run) → tid within its query's pid
	jnext   map[int]int    // pid → next free job tid

	// learnMeta latches the one-time emission of the model-lifecycle
	// track metadata; only the learn registry writes it, under its own
	// mutex (see learn.go).
	learnMeta bool
}

// New builds an observer with a fresh metrics registry and drift
// recorder; trace may be nil to disable tracing. A zero Observer struct
// is also usable — per-query track state initialises lazily.
func New(trace *TraceSink) *Observer {
	return &Observer{
		Metrics: NewRegistry(),
		Trace:   trace,
		Drift:   NewDriftRecorder(),
	}
}

// Close flushes the trace sink, if any, and returns its first error.
func (o *Observer) Close() error {
	if o == nil || o.Trace == nil {
		return nil
	}
	return o.Trace.Close()
}

// Metric names, following saqp_<subsystem>_<name>_<unit>.
const (
	MQueriesSubmitted    = "saqp_cluster_queries_submitted_total"
	MQueriesCompleted    = "saqp_cluster_queries_completed_total"
	MQueryResponseSec    = "saqp_cluster_query_response_seconds"
	MJobsSubmitted       = "saqp_cluster_jobs_submitted_total"
	MJobsCompleted       = "saqp_cluster_jobs_completed_total"
	MJobRuntimeSec       = "saqp_cluster_job_runtime_seconds"
	MMapTasksDone        = "saqp_cluster_map_tasks_completed_total"
	MReduceTasksDone     = "saqp_cluster_reduce_tasks_completed_total"
	MTaskRuntimeSec      = "saqp_cluster_task_runtime_seconds"
	MReduceHoards        = "saqp_cluster_reduce_slowstart_hoards_total"
	MReducePreemptions   = "saqp_cluster_reduce_preemptions_total"
	MSpeculativeLaunches = "saqp_cluster_speculative_launches_total"
	MSchedDecisions      = "saqp_sched_decisions_total"
	MSchedIdleDecisions  = "saqp_sched_idle_decisions_total"
	MCompiles            = "saqp_framework_compiles_total"
	MEstimates           = "saqp_framework_estimates_total"
	MTrainings           = "saqp_framework_trainings_total"
	MSimulations         = "saqp_framework_simulations_total"
)

// runKey namespaces an id under the current run label.
func (o *Observer) runKey(id string) string { return o.run + "\x00" + id }

// RunStarted namespaces subsequent per-query trace tracks under label
// (typically the scheduler name). The cluster simulator calls it from
// SetObserver; metrics and drift keep accumulating across runs.
func (o *Observer) RunStarted(label string) {
	if o == nil {
		return
	}
	o.run = label
}

// pidOf returns (allocating on first use) the trace process id of a
// query, emitting its process_name metadata on allocation.
func (o *Observer) pidOf(query string) int {
	if o.qpids == nil {
		o.qpids = map[string]int{}
		o.jtids = map[string]int{}
		o.jnext = map[int]int{}
		o.nextPid = pidQueryBase
	}
	key := o.runKey(query)
	if pid, ok := o.qpids[key]; ok {
		return pid
	}
	pid := o.nextPid
	o.nextPid++
	o.qpids[key] = pid
	o.jnext[pid] = 1 // tid 0 is the query lifecycle track
	if o.Trace != nil {
		name := "query " + query
		if o.run != "" {
			name = o.run + " " + name
		}
		o.Trace.MetaProcessName(pid, name)
		o.Trace.MetaThreadName(pid, 0, "query")
	}
	return pid
}

// tidOf returns (allocating on first use) the thread id of a job inside
// its query's process, emitting thread_name metadata on allocation.
func (o *Observer) tidOf(query, job, jobType string) (pid, tid int) {
	pid = o.pidOf(query)
	key := o.runKey(job)
	if tid, ok := o.jtids[key]; ok {
		return pid, tid
	}
	tid = o.jnext[pid]
	o.jnext[pid] = tid + 1
	o.jtids[key] = tid
	if o.Trace != nil {
		o.Trace.MetaThreadName(pid, tid, job+" ("+jobType+")")
	}
	return pid, tid
}

// ClusterInfo names the shared slot and scheduler tracks. The simulator
// calls it once per run when an observer is attached.
func (o *Observer) ClusterInfo(nodes, mapSlotsPerNode, redSlotsPerNode int) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.MetaProcessName(PidMapSlots, "cluster: map slots")
	o.Trace.MetaProcessName(PidReduceSlots, "cluster: reduce slots")
	o.Trace.MetaProcessName(PidScheduler, "scheduler")
	o.Trace.MetaThreadName(PidScheduler, 0, "map decisions")
	o.Trace.MetaThreadName(PidScheduler, 1, "reduce decisions")
	for n := 0; n < nodes; n++ {
		for k := 0; k < mapSlotsPerNode; k++ {
			slot := n*mapSlotsPerNode + k
			o.Trace.MetaThreadName(PidMapSlots, slot, nodeSlotName(n, k))
		}
		for k := 0; k < redSlotsPerNode; k++ {
			slot := n*redSlotsPerNode + k
			o.Trace.MetaThreadName(PidReduceSlots, slot, nodeSlotName(n, k))
		}
	}
}

func nodeSlotName(node, k int) string {
	return "node " + itoa(node) + " slot " + itoa(k)
}

// itoa is strconv.Itoa under a shorter name for the builders above.
func itoa(v int) string { return strconv.Itoa(v) }

// QueryArrived records a query submission.
func (o *Observer) QueryArrived(now float64, id string, jobs int, inputBytes float64) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MQueriesSubmitted).Inc()
	}
	if o.Trace != nil {
		pid := o.pidOf(id)
		o.Trace.Instant(pid, 0, now, "arrive", "query",
			Arg{"jobs", jobs}, Arg{"input_bytes", inputBytes})
	}
}

// QueryFinished records a query completion and emits its lifecycle span.
func (o *Observer) QueryFinished(now, arrival float64, id string) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MQueriesCompleted).Inc()
		o.Metrics.Histogram(MQueryResponseSec, nil).Observe(now - arrival)
	}
	if o.Trace != nil {
		pid := o.pidOf(id)
		o.Trace.Complete(pid, 0, arrival, now, "query "+id, "query",
			Arg{"response_sec", now - arrival})
	}
}

// JobSubmitted records a job entering the cluster (initialisation runs
// until ready).
func (o *Observer) JobSubmitted(now, ready float64, query, job, jobType string, maps, reds int) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MJobsSubmitted).Inc()
	}
	if o.Spans != nil {
		o.Spans.jobSubmitted(now, ready, job, jobType, maps, reds)
	}
	if o.Trace != nil {
		pid, tid := o.tidOf(query, job, jobType)
		o.Trace.Instant(pid, tid, now, "submit", "job",
			Arg{"type", jobType}, Arg{"maps", maps}, Arg{"reduces", reds},
			Arg{"init_until_sec", ready})
	}
}

// JobFinished records a job completion and emits its span.
func (o *Observer) JobFinished(now, submit float64, query, job, jobType string) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MJobsCompleted).Inc()
		o.Metrics.Histogram(MJobRuntimeSec, nil).Observe(now - submit)
	}
	if o.Spans != nil {
		o.Spans.jobFinished(now, job)
	}
	if o.Trace != nil {
		pid, tid := o.tidOf(query, job, jobType)
		o.Trace.Complete(pid, tid, submit, now, job+" ("+jobType+")", "job",
			Arg{"runtime_sec", now - submit})
	}
}

// TaskStarted records a dispatch. hoarding marks a reduce launched by
// slowstart before its job's map phase completed — it occupies the slot
// without progressing.
func (o *Observer) TaskStarted(now float64, query, job, jobType string, reduce bool,
	index, node, slot int, predSec float64, hoarding bool) {
	if o == nil {
		return
	}
	if o.Metrics != nil && hoarding {
		o.Metrics.Counter(MReduceHoards).Inc()
	}
	if o.Trace != nil && hoarding {
		o.Trace.Instant(PidReduceSlots, slot, now, "slowstart hoard "+taskName(job, reduce, index),
			"cluster", Arg{"job", job}, Arg{"node", node})
	}
}

// TaskFinished records a task completion: the span on its slot track,
// runtime metrics, and task-level prediction drift (predicted vs
// observed slot occupancy). faulted marks tasks whose runtime was
// perturbed by injected faults (failed attempts, crash kills, slowdown
// windows); their drift samples land in separate "/faulted" buckets.
func (o *Observer) TaskFinished(now, start float64, query, job, jobType string, reduce bool,
	index, node, slot int, predSec float64, speculated, faulted bool) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		if reduce {
			o.Metrics.Counter(MReduceTasksDone).Inc()
		} else {
			o.Metrics.Counter(MMapTasksDone).Inc()
		}
		o.Metrics.Histogram(MTaskRuntimeSec, nil).Observe(now - start)
	}
	if o.Drift != nil {
		o.Drift.RecordTask(jobType, reduce, predSec, now-start, faulted)
	}
	if o.Spans != nil {
		o.Spans.taskFinished(now, start, job, reduce, index, node, slot,
			predSec, speculated, faulted)
	}
	if o.Trace != nil {
		pid := PidMapSlots
		if reduce {
			pid = PidReduceSlots
		}
		o.Trace.Complete(pid, slot, start, now, taskName(job, reduce, index), "cluster",
			Arg{"query", query}, Arg{"type", jobType}, Arg{"node", node},
			Arg{"pred_sec", predSec}, Arg{"speculated", speculated})
	}
}

func taskName(job string, reduce bool, index int) string {
	phase := " m"
	if reduce {
		phase = " r"
	}
	return job + phase + itoa(index)
}

// ShuffleReady records a job's map phase completing, releasing its
// hoarding reduces.
func (o *Observer) ShuffleReady(now float64, query, job, jobType string, released int) {
	if o == nil {
		return
	}
	if o.Spans != nil {
		o.Spans.shuffleReady(now, job, released)
	}
	if o.Trace == nil {
		return
	}
	pid, tid := o.tidOf(query, job, jobType)
	o.Trace.Instant(pid, tid, now, "maps done", "job", Arg{"released_reduces", released})
}

// ReducePreempted records a hoarding reduce being evicted for a
// shuffle-ready job (paper reference [30]).
func (o *Observer) ReducePreempted(now float64, query, job string, index, slot int, waitedSec float64) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MReducePreemptions).Inc()
	}
	if o.Spans != nil {
		o.Spans.reducePreempted(now, job, index, slot, waitedSec)
	}
	if o.Trace != nil {
		o.Trace.Instant(PidReduceSlots, slot, now, "preempt "+taskName(job, true, index),
			"cluster", Arg{"query", query}, Arg{"hoarded_sec", waitedSec})
	}
}

// SpeculativeLaunched records a duplicate attempt of a slow task.
func (o *Observer) SpeculativeLaunched(now float64, query, job string, reduce bool,
	index, origNode, slot int) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MSpeculativeLaunches).Inc()
	}
	if o.Spans != nil {
		o.Spans.speculativeLaunched(now, job, reduce, index, origNode, slot)
	}
	if o.Trace != nil {
		pid := PidMapSlots
		if reduce {
			pid = PidReduceSlots
		}
		o.Trace.Instant(pid, slot, now, "speculate "+taskName(job, reduce, index),
			"cluster", Arg{"query", query}, Arg{"original_node", origNode})
	}
}

// Candidate is one job in a scheduler decision's ranking.
type Candidate struct {
	Job     string
	Query   string
	WRD     float64 // the query's remaining Weighted Resource Demand (Eq. 10)
	Running int     // the job's currently running tasks (fair-share signal)
	Submit  float64 // the job's submission time (FIFO signal)
}

// maxTraceCandidates caps the candidate list recorded per decision.
// Under heavy queueing the list is O(queued jobs) per PickJob call and
// would dominate trace size; the head of the queue plus the winner still
// answers "why was this picked", and the full depth is kept as a scalar.
const maxTraceCandidates = 8

// SchedulerDecision records one PickJob call: which job won the slot and
// the candidates with the rankings the policy saw, so "why did the
// scheduler pick this query" is answerable from the trace. The recorded
// list is capped at maxTraceCandidates (the winner is always included);
// queue_depth carries the uncapped count.
func (o *Observer) SchedulerDecision(now float64, scheduler string, reduce bool,
	picked string, cands []Candidate) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MSchedDecisions).Inc()
		if picked == "" {
			o.Metrics.Counter(MSchedIdleDecisions).Inc()
		}
	}
	if o.Spans != nil {
		o.Spans.decision(now, scheduler, reduce, picked, len(cands))
	}
	if o.Trace == nil {
		return
	}
	tid := 0
	phase := "map"
	if reduce {
		tid = 1
		phase = "reduce"
	}
	name := scheduler + ": idle"
	if picked != "" {
		name = scheduler + ": " + picked
	}
	record := cands
	if len(cands) > maxTraceCandidates {
		record = cands[:maxTraceCandidates:maxTraceCandidates]
		if picked != "" {
			found := false
			for _, c := range record {
				if c.Job == picked {
					found = true
					break
				}
			}
			if !found {
				for _, c := range cands[maxTraceCandidates:] {
					if c.Job == picked {
						record = append(record, c)
						break
					}
				}
			}
		}
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range record {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"job":`)
		b.WriteString(strconv.Quote(c.Job))
		b.WriteString(`,"query":`)
		b.WriteString(strconv.Quote(c.Query))
		b.WriteString(`,"wrd":`)
		b.WriteString(jsonNum(c.WRD))
		b.WriteString(`,"running":`)
		b.WriteString(strconv.Itoa(c.Running))
		b.WriteString(`,"submit_sec":`)
		b.WriteString(jsonNum(c.Submit))
		b.WriteByte('}')
	}
	b.WriteByte(']')
	o.Trace.Instant(PidScheduler, tid, now, name, "sched",
		Arg{"phase", phase}, Arg{"picked", picked},
		Arg{"queue_depth", len(cands)},
		Arg{"candidates", rawJSON(b.String())})
}
