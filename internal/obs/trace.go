package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// TraceSink emits Chrome trace-event-format JSON — one event per line,
// wrapped in a JSON array — loadable in Perfetto and chrome://tracing.
// Timestamps are the simulator's virtual clock converted to integer
// microseconds, never the wall clock, so identical runs produce
// byte-identical traces.
//
// Track layout (pids are process groups in the trace UI):
//
//	pid 1  "cluster: map slots"     one thread per map slot; task spans
//	pid 2  "cluster: reduce slots"  one thread per reduce slot; task spans
//	pid 3  "scheduler"              instant events per PickJob decision
//	pid ≥ 100                       one process per (run, query): the
//	                                query span on thread 0 and one thread
//	                                per job, so query→job→task lifecycles
//	                                nest visually.
type TraceSink struct {
	w       io.Writer
	started bool
	err     error
}

// Fixed process ids of the shared tracks.
const (
	PidMapSlots    = 1
	PidReduceSlots = 2
	PidScheduler   = 3
	// PidFaults carries injected node-level fault events (crash, recover,
	// blacklist), one thread per node.
	PidFaults = 4
	// PidLearn carries model-lifecycle promotion instants, positioned at
	// their job-sample counts rather than any clock.
	PidLearn = 5
	// pidQueryBase is the first per-query process id.
	pidQueryBase = 100
)

// NewTraceSink writes trace events to w. Call Close when the run ends to
// terminate the JSON array (viewers tolerate an unterminated array, so a
// crashed run still yields a loadable trace).
func NewTraceSink(w io.Writer) *TraceSink { return &TraceSink{w: w} }

// Err returns the first write error, if any.
func (t *TraceSink) Err() error { return t.err }

// Close terminates the JSON array.
func (t *TraceSink) Close() error {
	if t.err != nil {
		return t.err
	}
	if !t.started {
		_, t.err = io.WriteString(t.w, "[\n]\n")
		return t.err
	}
	_, t.err = io.WriteString(t.w, "\n]\n")
	return t.err
}

// emit writes one pre-serialised event object.
func (t *TraceSink) emit(line string) {
	if t.err != nil {
		return
	}
	prefix := ",\n"
	if !t.started {
		prefix = "[\n"
		t.started = true
	}
	_, t.err = io.WriteString(t.w, prefix+line)
}

// micros converts simulated seconds to integer trace microseconds.
func micros(sec float64) int64 { return int64(math.Round(sec * 1e6)) }

// Arg is one key/value pair in an event's args object. Values may be
// string, float64, int, int64 or bool; argument order is preserved in
// the serialised JSON, keeping output deterministic.
type Arg struct {
	Key string
	Val any
}

// appendArgs serialises args as a JSON object into b.
func appendArgs(b *strings.Builder, args []Arg) {
	b.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(a.Key))
		b.WriteByte(':')
		switch v := a.Val.(type) {
		case string:
			b.WriteString(strconv.Quote(v))
		case float64:
			b.WriteString(jsonNum(v))
		case int:
			b.WriteString(strconv.Itoa(v))
		case int64:
			b.WriteString(strconv.FormatInt(v, 10))
		case bool:
			b.WriteString(strconv.FormatBool(v))
		case rawJSON:
			b.WriteString(string(v))
		default:
			b.WriteString(strconv.Quote(fmt.Sprint(v)))
		}
	}
	b.WriteByte('}')
}

// rawJSON is pre-serialised JSON spliced into args verbatim.
type rawJSON string

// jsonNum formats a float as a JSON number (Inf/NaN are not valid JSON;
// they are clamped to null, which trace viewers ignore).
func jsonNum(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// header writes the common event prefix: name, phase, ts, pid, tid.
func header(b *strings.Builder, name, ph string, ts int64, pid, tid int) {
	b.WriteString(`{"name":`)
	b.WriteString(strconv.Quote(name))
	b.WriteString(`,"ph":"`)
	b.WriteString(ph)
	b.WriteString(`","ts":`)
	b.WriteString(strconv.FormatInt(ts, 10))
	b.WriteString(`,"pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"tid":`)
	b.WriteString(strconv.Itoa(tid))
}

// MetaProcessName names a process group in the trace UI.
func (t *TraceSink) MetaProcessName(pid int, name string) {
	var b strings.Builder
	header(&b, "process_name", "M", 0, pid, 0)
	b.WriteString(`,"args":{"name":`)
	b.WriteString(strconv.Quote(name))
	b.WriteString("}}")
	t.emit(b.String())
}

// MetaThreadName names a thread track in the trace UI.
func (t *TraceSink) MetaThreadName(pid, tid int, name string) {
	var b strings.Builder
	header(&b, "thread_name", "M", 0, pid, tid)
	b.WriteString(`,"args":{"name":`)
	b.WriteString(strconv.Quote(name))
	b.WriteString("}}")
	t.emit(b.String())
}

// Complete emits an "X" span from startSec to endSec.
func (t *TraceSink) Complete(pid, tid int, startSec, endSec float64, name, category string, args ...Arg) {
	dur := micros(endSec) - micros(startSec)
	if dur < 0 {
		dur = 0
	}
	var b strings.Builder
	header(&b, name, "X", micros(startSec), pid, tid)
	b.WriteString(`,"cat":`)
	b.WriteString(strconv.Quote(category))
	b.WriteString(`,"dur":`)
	b.WriteString(strconv.FormatInt(dur, 10))
	if len(args) > 0 {
		b.WriteString(`,"args":`)
		appendArgs(&b, args)
	}
	b.WriteByte('}')
	t.emit(b.String())
}

// AsyncBegin emits a "b" (async span begin) event under the given id.
// Async spans may overlap freely within a process — Perfetto pairs each
// "b" with the "e" sharing its (category, id, name) — which is how
// request-scoped span trees with concurrent siblings render.
func (t *TraceSink) AsyncBegin(pid int, id string, startSec float64, name, category string, args ...Arg) {
	var b strings.Builder
	header(&b, name, "b", micros(startSec), pid, 0)
	b.WriteString(`,"cat":`)
	b.WriteString(strconv.Quote(category))
	b.WriteString(`,"id":`)
	b.WriteString(strconv.Quote(id))
	if len(args) > 0 {
		b.WriteString(`,"args":`)
		appendArgs(&b, args)
	}
	b.WriteByte('}')
	t.emit(b.String())
}

// AsyncEnd emits the "e" event closing an AsyncBegin with the same
// (category, id, name).
func (t *TraceSink) AsyncEnd(pid int, id string, endSec float64, name, category string) {
	var b strings.Builder
	header(&b, name, "e", micros(endSec), pid, 0)
	b.WriteString(`,"cat":`)
	b.WriteString(strconv.Quote(category))
	b.WriteString(`,"id":`)
	b.WriteString(strconv.Quote(id))
	b.WriteByte('}')
	t.emit(b.String())
}

// Instant emits a thread-scoped "i" event.
func (t *TraceSink) Instant(pid, tid int, nowSec float64, name, category string, args ...Arg) {
	var b strings.Builder
	header(&b, name, "i", micros(nowSec), pid, tid)
	b.WriteString(`,"cat":`)
	b.WriteString(strconv.Quote(category))
	b.WriteString(`,"s":"t"`)
	if len(args) > 0 {
		b.WriteString(`,"args":`)
		appendArgs(&b, args)
	}
	b.WriteByte('}')
	t.emit(b.String())
}
