package obs_test

import (
	"testing"

	"saqp/internal/obs"
)

var hotSinkAccepted bool

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for the histogram observation path: recording a sample — with or
// without an exemplar trace id — must not allocate, since it runs once
// per served completion.
func TestHotPathAllocs(t *testing.T) {
	h := obs.NewRegistry().Histogram("saqp_test_hotpath_seconds", nil)
	id := obs.TraceID("select 1", "cat", 1)
	if n := testing.AllocsPerRun(200, func() { hotSinkAccepted = h.Observe(3) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.0f times per call; //saqp:hotpath functions must not allocate", n)
	}
	if n := testing.AllocsPerRun(200, func() { hotSinkAccepted = h.ObserveExemplar(3, id) }); n != 0 {
		t.Errorf("Histogram.ObserveExemplar allocates %.0f times per call; //saqp:hotpath functions must not allocate", n)
	}
}
