package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Metric naming convention (enforced by validateName, documented in
// DESIGN.md): saqp_<subsystem>_<name>_<unit>, e.g.
// saqp_cluster_task_runtime_seconds. Counters end in _total.

// Registry holds the process's counters, gauges and histograms. All
// operations are safe for concurrent use; exposition orders metrics by
// name so two identical runs serialise byte-identically.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// validateName panics on names outside the Prometheus grammar — metric
// names are compile-time constants, so a bad one is a programming error.
func validateName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// Counter is a monotonically non-decreasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by definition).
func (c *Counter) Add(d float64) {
	if d < 0 || d != d {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v += d
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v += d
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed cumulative-style buckets with
// upper bounds; observations above the last bound land in the implicit
// +Inf overflow bucket. Negative and NaN observations are rejected (the
// histograms here measure durations and error magnitudes, for which a
// negative value signals an instrumentation bug, not data).
type Histogram struct {
	mu       sync.Mutex
	upper    []float64  // ascending finite upper bounds
	counts   []uint64   // len(upper)+1; last is the +Inf bucket
	exem     []Exemplar // len(upper)+1; worst accepted sample per bucket
	sum      float64
	count    uint64
	rejected uint64
}

// Exemplar links a histogram bucket to the request trace that produced
// its worst (largest) observation, so a p99 bucket resolves directly to
// a full span tree instead of just a count.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// DefTimeBuckets spans simulated durations from sub-second dispatch
// overheads to hour-long makespans.
func DefTimeBuckets() []float64 {
	return []float64{0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}
}

// DefErrorBuckets spans relative prediction errors from 1% to 5x.
func DefErrorBuckets() []float64 {
	return []float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.5, 1, 2, 5}
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", buckets))
		}
	}
	up := make([]float64, len(buckets))
	copy(up, buckets)
	return &Histogram{
		upper:  up,
		counts: make([]uint64, len(up)+1),
		exem:   make([]Exemplar, len(up)+1),
	}
}

// Observe records v and reports whether it was accepted; negative and
// NaN observations are rejected and counted separately.
func (h *Histogram) Observe(v float64) bool { return h.observe(v, "") }

// ObserveExemplar records v like Observe and, when accepted, keeps
// traceID as the bucket's exemplar if v is the bucket's worst sample so
// far (ties keep the earlier trace, so replays stay deterministic).
//
//saqp:hotpath
func (h *Histogram) ObserveExemplar(v float64, traceID string) bool {
	return h.observe(v, traceID)
}

// observe is the shared per-sample path; an empty traceID records no
// exemplar.
//
//saqp:hotpath
func (h *Histogram) observe(v float64, traceID string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v < 0 || v != v {
		h.rejected++
		return false
	}
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if traceID != "" && (h.exem[i].TraceID == "" || v > h.exem[i].Value) {
		h.exem[i] = Exemplar{Value: v, TraceID: traceID}
	}
	return true
}

// HistogramSnapshot is an immutable copy of a histogram's state. Bucket
// counts are per-bucket (not cumulative); Prometheus exposition
// accumulates them.
type HistogramSnapshot struct {
	Upper    []float64 `json:"upper_bounds"`
	Counts   []uint64  `json:"counts"`
	Sum      float64   `json:"sum"`
	Count    uint64    `json:"count"`
	Rejected uint64    `json:"rejected"`
	// Exemplars, present only when at least one bucket recorded one via
	// ObserveExemplar, aligns with Counts (last entry is +Inf).
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Upper:    append([]float64(nil), h.upper...),
		Counts:   append([]uint64(nil), h.counts...),
		Sum:      h.sum,
		Count:    h.count,
		Rejected: h.rejected,
	}
	for i := range h.exem {
		if h.exem[i].TraceID != "" {
			s.Exemplars = append([]Exemplar(nil), h.exem...)
			break
		}
	}
	return s
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	validateName(name)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	validateName(name)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the named histogram; buckets
// apply only at creation. Nil buckets default to DefTimeBuckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	validateName(name)
	if buckets == nil {
		buckets = DefTimeBuckets()
	}
	h := newHistogram(buckets)
	r.hists[name] = h
	return h
}

// Help attaches a HELP string to a metric name for exposition.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fnum formats a float the shortest way that round-trips.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus serialises the registry in the Prometheus text
// exposition format (version 0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	for _, name := range sortedKeys(r.counters) {
		if h := r.help[name]; h != "" {
			if err := write("# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		if err := write("# TYPE %s counter\n%s %s\n", name, name, fnum(r.counters[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if h := r.help[name]; h != "" {
			if err := write("# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		if err := write("# TYPE %s gauge\n%s %s\n", name, name, fnum(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		if h := r.help[name]; h != "" {
			if err := write("# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		if err := write("# TYPE %s histogram\n", name); err != nil {
			return err
		}
		s := r.hists[name].Snapshot()
		var cum uint64
		for i, ub := range s.Upper {
			cum += s.Counts[i]
			if err := write("%s_bucket{le=%q} %d\n", name, fnum(ub), cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Counts)-1]
		if err := write("%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if err := write("%s_sum %s\n%s_count %d\n", name, fnum(s.Sum), name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// RegistrySnapshot is the JSON form of a registry.
type RegistrySnapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current state.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]float64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// SnapshotJSON serialises the registry as deterministic JSON
// (encoding/json sorts map keys).
func (r *Registry) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
