package adminhttp_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"saqp/internal/obs"
	"saqp/internal/obs/adminhttp"
)

// fullConfig builds a Config with every source populated and a little
// deterministic state in each.
func fullConfig() adminhttp.Config {
	o := obs.New(nil)
	o.Metrics.Counter("saqp_test_requests_total").Add(3)

	spans := obs.NewSpanStore(8)
	spans.Begin()
	q := obs.BeginQuerySpan("deadbeef00000000-000001", "q1")
	q.Event(obs.SpanKindCache, "plan-cache", obs.AttrBool("hit", true))
	spans.Add(q.Finish())

	slo := obs.NewSLOTracker(obs.SLOConfig{Name: "SWRD"})
	slo.Record(1, false)

	return adminhttp.Config{
		Metrics:   o.Metrics,
		Spans:     spans,
		SLO:       slo,
		Drift:     o.Drift,
		StatsJSON: func() ([]byte, error) { return []byte(`{"submitted": 1}`), nil },
	}
}

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get("Content-Type"), rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	h := adminhttp.Handler(fullConfig())

	code, ct, body := get(t, h, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d body %q", code, body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("index content-type = %q", ct)
	}

	code, ct, body = get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "saqp_test_requests_total 3") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q, want Prometheus 0.0.4", ct)
	}

	code, _, body = get(t, h, "/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans: code %d", code)
	}
	var snap obs.SpanStoreSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/spans invalid JSON: %v", err)
	}
	if snap.Finished != 1 || len(snap.Trees) != 1 {
		t.Errorf("/spans snapshot = %+v, want 1 finished tree", snap)
	}

	code, _, body = get(t, h, "/spans?trace=deadbeef00000000-000001")
	if code != http.StatusOK {
		t.Fatalf("/spans?trace=: code %d body %q", code, body)
	}
	var tree obs.SpanTree
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("single-tree response invalid JSON: %v", err)
	}
	if tree.TraceID != "deadbeef00000000-000001" || len(tree.Spans) != 2 {
		t.Errorf("single tree = %+v", tree)
	}
	if code, _, _ = get(t, h, "/spans?trace=nope"); code != http.StatusNotFound {
		t.Errorf("unknown trace id: code %d, want 404", code)
	}

	code, _, body = get(t, h, "/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo: code %d", code)
	}
	var sloSnap obs.SLOSnapshot
	if err := json.Unmarshal([]byte(body), &sloSnap); err != nil {
		t.Fatalf("/slo invalid JSON: %v", err)
	}
	if sloSnap.Config.Name != "SWRD" || sloSnap.Good != 1 {
		t.Errorf("/slo snapshot = %+v", sloSnap)
	}

	if code, _, body = get(t, h, "/drift"); code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Errorf("/drift: code %d valid-json %v", code, json.Valid([]byte(body)))
	}
	if code, _, body = get(t, h, "/statz"); code != http.StatusOK || !strings.Contains(body, "submitted") {
		t.Errorf("/statz: code %d body %q", code, body)
	}
	if code, _, _ = get(t, h, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
	if code, _, _ = get(t, h, "/no-such-page"); code != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

// TestHandlerUnconfiguredSources checks every optional source answers
// 404 with a hint instead of panicking when unset.
func TestHandlerUnconfiguredSources(t *testing.T) {
	h := adminhttp.Handler(adminhttp.Config{})
	for _, path := range []string{"/metrics", "/spans", "/slo", "/drift", "/statz"} {
		code, _, body := get(t, h, path)
		if code != http.StatusNotFound {
			t.Errorf("%s: code %d, want 404", path, code)
		}
		if !strings.Contains(body, "no ") {
			t.Errorf("%s: body %q carries no hint", path, body)
		}
	}
}

// TestStartShutdown exercises the real listener: bind :0, serve one
// request, shut down gracefully, and verify the port is released.
func TestStartShutdown(t *testing.T) {
	srv, err := adminhttp.Start("127.0.0.1:0", fullConfig())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "saqp_test_requests_total") {
		t.Errorf("live /metrics: code %d body %q", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get(srv.URL() + "/metrics"); err == nil {
		t.Error("server still answering after Shutdown")
	}
}
