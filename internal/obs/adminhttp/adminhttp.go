// Package adminhttp serves the live introspection surface of a running
// saqp server over stdlib net/http: Prometheus metrics, request-scoped
// span trees, SLO burn-rate state, prediction drift, engine stats, and
// net/http/pprof — everything needed to answer "why is this query slow
// right now" against a live process instead of a post-mortem dump.
//
// The package deliberately imports only internal/obs and the standard
// library: it reads snapshots through the observability layer's own
// deterministic serialisers and holds no locks of its own, so an admin
// scrape can never perturb serving. All endpoints are read-only GETs.
//
//	/               index of mounted endpoints
//	/metrics        Prometheus text exposition (0.0.4)
//	/spans          span-tree JSON; ?trace=<id> selects one tree
//	/slo            SLO tracker snapshot with the alert log
//	/drift          prediction-drift snapshot (live Tables 3-5)
//	/statz          engine stats JSON (when wired)
//	/debug/pprof/   live profiling
package adminhttp

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"saqp/internal/obs"
)

// Config wires the introspection sources. Any nil field unmounts its
// endpoint (it answers 404 with a hint instead).
type Config struct {
	// Metrics backs /metrics.
	Metrics *obs.Registry
	// Spans backs /spans.
	Spans *obs.SpanStore
	// SLO backs /slo.
	SLO *obs.SLOTracker
	// Drift backs /drift.
	Drift *obs.DriftRecorder
	// StatsJSON, when set, backs /statz with an engine-stats document.
	StatsJSON func() ([]byte, error)
}

// indexBody lists the mounted endpoints for humans hitting "/".
const indexBody = `saqp admin endpoints:
  /metrics        Prometheus text exposition
  /spans          request span trees (?trace=<id> for one)
  /slo            SLO burn-rate state and alert log
  /drift          prediction drift snapshot
  /statz          serving-engine stats
  /debug/pprof/   live profiling
`

// Handler builds the admin mux for cfg. It is exported separately from
// Start so tests can drive it with net/http/httptest and so callers can
// mount it under their own server.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		send(w, []byte(indexBody))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Metrics == nil {
			http.Error(w, "no metrics registry configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Metrics.WritePrometheus(w); err != nil {
			// The status line is already committed; the client went away.
			return
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Spans == nil {
			http.Error(w, "no span store configured", http.StatusNotFound)
			return
		}
		if id := r.URL.Query().Get("trace"); id != "" {
			tree, ok := cfg.Spans.Tree(id)
			if !ok {
				http.Error(w, "trace id not retained: "+id, http.StatusNotFound)
				return
			}
			sendJSONValue(w, tree)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := cfg.Spans.WriteJSON(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if cfg.SLO == nil {
			http.Error(w, "no SLO tracker configured", http.StatusNotFound)
			return
		}
		b, err := cfg.SLO.SnapshotJSON()
		sendJSON(w, b, err)
	})
	mux.HandleFunc("/drift", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Drift == nil {
			http.Error(w, "no drift recorder configured", http.StatusNotFound)
			return
		}
		b, err := cfg.Drift.SnapshotJSON()
		sendJSON(w, b, err)
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.StatsJSON == nil {
			http.Error(w, "no stats source configured", http.StatusNotFound)
			return
		}
		b, err := cfg.StatsJSON()
		sendJSON(w, b, err)
	})
	// pprof's default registrations go to http.DefaultServeMux; mount
	// explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// sendJSON writes a marshalled document, mapping a marshal error to 500.
func sendJSON(w http.ResponseWriter, b []byte, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	send(w, b)
	send(w, []byte("\n"))
}

// sendJSONValue marshals one span tree (deterministically — span slices
// are ordered) and writes it.
func sendJSONValue(w http.ResponseWriter, tree obs.SpanTree) {
	b, err := json.MarshalIndent(tree, "", "  ")
	sendJSON(w, b, err)
}

// send writes a fully prepared body; a failed write means the client
// disconnected mid-response and there is no recovery path.
func send(w http.ResponseWriter, b []byte) {
	if _, err := w.Write(b); err != nil {
		return
	}
}

// Server is a running admin endpoint with graceful shutdown.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	err  error // Serve's exit error; read only after done closes
}

// Start listens on addr (host:port; ":0" picks a free port readable via
// Addr) and serves Handler(cfg) until Shutdown.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	done := s.done
	go func() {
		// Closing done is the join signal Shutdown blocks on.
		defer close(done)
		s.err = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (with ":0" resolved).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's http base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops accepting connections and waits for in-flight requests
// (bounded by ctx), then joins the serve goroutine. The normal
// ErrServerClosed exit is not an error.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err != nil {
		return err
	}
	if s.err != nil && !errors.Is(s.err, http.ErrServerClosed) {
		return s.err
	}
	return nil
}
