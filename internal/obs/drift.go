package obs

import (
	"encoding/json"
	"sync"
)

// DriftRecorder accumulates predicted-versus-observed error per job
// category (Extract/Groupby/Join) — the live equivalent of the paper's
// Tables 3–5 accuracy summaries. Three sample families are tracked:
//
//   - job execution time: Eq. 8 prediction vs simulated job time,
//   - task execution time: Eq. 9 prediction vs simulated task time, and
//   - selectivity estimates: IS/FS estimator output vs oracle values.
//
// Every family keeps, per category, running sums for mean relative error
// and R², plus a fixed-bucket histogram of relative errors, so the tail
// of the error distribution is visible — the point Wu et al. make about
// point predictions being useless without their error distribution.
type DriftRecorder struct {
	mu        sync.Mutex
	jobs      map[string]*driftAgg
	tasks     map[string]*driftAgg
	estimates map[string]*driftAgg
}

// driftAgg is one category's running accuracy state.
type driftAgg struct {
	n          int
	sumPred    float64
	sumActual  float64
	sumActual2 float64 // Σ actual², for R²
	ssRes      float64 // Σ (actual-pred)²
	relSum     float64 // Σ |actual-pred|/actual over actual > 0
	relN       int
	hist       *Histogram
}

// NewDriftRecorder returns an empty recorder.
func NewDriftRecorder() *DriftRecorder {
	return &DriftRecorder{
		jobs:      map[string]*driftAgg{},
		tasks:     map[string]*driftAgg{},
		estimates: map[string]*driftAgg{},
	}
}

func getAgg(m map[string]*driftAgg, key string) *driftAgg {
	if a, ok := m[key]; ok {
		return a
	}
	a := &driftAgg{hist: newHistogram(DefErrorBuckets())}
	m[key] = a
	return a
}

func (a *driftAgg) record(pred, actual float64) {
	a.n++
	a.sumPred += pred
	a.sumActual += actual
	a.sumActual2 += actual * actual
	d := actual - pred
	a.ssRes += d * d
	if actual > 0 {
		rel := d / actual
		if rel < 0 {
			rel = -rel
		}
		a.relSum += rel
		a.relN++
		a.hist.Observe(rel)
	}
}

// RecordJob adds one job-level (predicted, simulated) seconds pair under
// the operator category ("Extract", "Groupby", "Join"). Samples from
// fault-perturbed runs are kept in a separate "<category>/faulted" bucket:
// the models are fit on clean runs, so mixing faulted samples in would
// hide exactly the drift fault injection exists to measure.
func (d *DriftRecorder) RecordJob(category string, predSec, actualSec float64, faulted bool) {
	if d == nil {
		return
	}
	if faulted {
		category += "/faulted"
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	getAgg(d.jobs, category).record(predSec, actualSec)
}

// RecordTask adds one task-level pair; map and reduce phases are
// distinct categories ("Join/map", "Join/reduce", ...), and samples from
// fault-perturbed tasks land in "<category>/<phase>/faulted" buckets.
func (d *DriftRecorder) RecordTask(category string, reduce bool, predSec, actualSec float64, faulted bool) {
	if d == nil {
		return
	}
	key := category + "/map"
	if reduce {
		key = category + "/reduce"
	}
	if faulted {
		key += "/faulted"
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	getAgg(d.tasks, key).record(predSec, actualSec)
}

// RecordEstimate adds one selectivity-estimate pair, keyed by category
// and quantity, e.g. ("Join", "IS") or ("Groupby", "FS").
func (d *DriftRecorder) RecordEstimate(category, quantity string, estimated, actual float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	getAgg(d.estimates, category+"/"+quantity).record(estimated, actual)
}

// DriftSummary is one category's accuracy roll-up — one row of a paper
// table. MeanRelError is Σ|actual-pred|/actual over samples with a
// positive actual (the paper's "Avg Error"); RSquared uses the running
// Σactual² identity, so it can differ from a two-pass computation in the
// last few ULPs.
type DriftSummary struct {
	Category      string            `json:"category"`
	N             int               `json:"n"`
	MeanRelError  float64           `json:"mean_rel_error"`
	RSquared      float64           `json:"r_squared"`
	MeanPredicted float64           `json:"mean_predicted"`
	MeanActual    float64           `json:"mean_actual"`
	Errors        HistogramSnapshot `json:"rel_error_histogram"`
}

// DriftSnapshot is the recorder's full state, categories sorted.
type DriftSnapshot struct {
	Jobs      []DriftSummary `json:"jobs"`
	Tasks     []DriftSummary `json:"tasks"`
	Estimates []DriftSummary `json:"estimates"`
}

func (a *driftAgg) summary(category string) DriftSummary {
	s := DriftSummary{Category: category, N: a.n, Errors: a.hist.Snapshot()}
	if a.n == 0 {
		return s
	}
	s.MeanPredicted = a.sumPred / float64(a.n)
	s.MeanActual = a.sumActual / float64(a.n)
	if a.relN > 0 {
		s.MeanRelError = a.relSum / float64(a.relN)
	}
	ssTot := a.sumActual2 - float64(a.n)*s.MeanActual*s.MeanActual
	if ssTot > 0 {
		s.RSquared = 1 - a.ssRes/ssTot
	} else if a.ssRes == 0 {
		s.RSquared = 1
	}
	return s
}

func summarizeAggs(m map[string]*driftAgg) []DriftSummary {
	out := make([]DriftSummary, 0, len(m))
	for _, key := range sortedKeys(m) {
		out = append(out, m[key].summary(key))
	}
	return out
}

// Snapshot rolls up every category, sorted by name.
func (d *DriftRecorder) Snapshot() DriftSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DriftSnapshot{
		Jobs:      summarizeAggs(d.jobs),
		Tasks:     summarizeAggs(d.tasks),
		Estimates: summarizeAggs(d.estimates),
	}
}

// SnapshotJSON serialises the snapshot as deterministic JSON.
func (d *DriftRecorder) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(d.Snapshot(), "", "  ")
}
