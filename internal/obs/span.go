package obs

// Request-scoped tracing: deterministic span trees that tie one served
// submission's full causal chain together — plan-cache lookup, SWRD
// admission, every simulator attempt (jobs, tasks, fault retries,
// speculative losers, scheduler decisions), and the learn feedback.
//
// Determinism contract: trace ids derive from the query fingerprint and
// the engine submission index, timestamps are virtual simulator seconds
// re-based onto a single per-request timeline (attempt k starts where
// attempt k-1 ended), and attributes are ordered slices — so a seeded
// serialized replay serialises byte-identically.
//
// The pieces compose as
//
//	SpanCollector  per simulator attempt, fed by the Observer callbacks
//	QuerySpan      per submission, merges collectors under one root
//	SpanStore      bounded ring of finished trees, JSON + Chrome export

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
)

// Span kinds, from root to leaf of a request tree.
const (
	// SpanKindQuery is the root span of one served submission.
	SpanKindQuery = "query"
	// SpanKindCache marks the plan/estimate cache lookup.
	SpanKindCache = "cache"
	// SpanKindAdmission marks SWRD admission-queue entry.
	SpanKindAdmission = "admission"
	// SpanKindAttempt is one pool-simulator run (1 + fault retries).
	SpanKindAttempt = "attempt"
	// SpanKindJob is one MapReduce job inside an attempt.
	SpanKindJob = "job"
	// SpanKindTask is one task attempt (including speculative losers).
	SpanKindTask = "task"
	// SpanKindSched is a scheduler PickJob decision.
	SpanKindSched = "sched"
	// SpanKindFault is an injected fault or recovery event.
	SpanKindFault = "fault"
	// SpanKindFeedback marks the learn-registry feedback of observed times.
	SpanKindFeedback = "feedback"
)

// Attr is one ordered key/value pair on a span. Values are rendered to
// strings at record time so serialisation needs no reflection and two
// identical runs marshal byte-identically.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// AttrStr builds a string-valued span attribute.
func AttrStr(k, v string) Attr { return Attr{Key: k, Val: v} }

// AttrInt builds an integer-valued span attribute.
func AttrInt(k string, v int) Attr { return Attr{Key: k, Val: strconv.Itoa(v)} }

// AttrFloat builds a float-valued span attribute (shortest round-trip
// formatting, matching the metrics exposition).
func AttrFloat(k string, v float64) Attr { return Attr{Key: k, Val: fnum(v)} }

// AttrBool builds a boolean-valued span attribute.
func AttrBool(k string, v bool) Attr { return Attr{Key: k, Val: strconv.FormatBool(v)} }

// Span is one node of a request-scoped trace tree. IDs index the tree's
// flat span slice; Parent is -1 for the root. Times are virtual seconds
// on the request's merged timeline.
type Span struct {
	ID     int     `json:"id"`
	Parent int     `json:"parent"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name"`
	Start  float64 `json:"start_sec"`
	End    float64 `json:"end_sec"`
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// SpanTree is one submission's complete span record.
type SpanTree struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// TraceID derives the deterministic request trace id: the FNV-64a hash
// of the normalized SQL and the catalog fingerprint (the plan-cache key
// material), joined with the engine-assigned submission index. The same
// query text resubmitted gets a new suffix but keeps its fingerprint
// prefix, so related requests group textually.
func TraceID(normSQL, catalogFingerprint string, submission uint64) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(normSQL); i++ {
		h ^= uint64(normSQL[i])
		h *= prime64
	}
	h ^= 0 // the cache key's NUL joint
	h *= prime64
	for i := 0; i < len(catalogFingerprint); i++ {
		h ^= uint64(catalogFingerprint[i])
		h *= prime64
	}
	buf := make([]byte, 0, 24)
	buf = appendHexPad(buf, h, 16)
	buf = append(buf, '-')
	buf = appendDecPad(buf, submission, 6)
	return string(buf)
}

// appendHexPad appends v in lowercase hex, zero-padded to width.
func appendHexPad(b []byte, v uint64, width int) []byte {
	s := strconv.FormatUint(v, 16)
	for i := len(s); i < width; i++ {
		b = append(b, '0')
	}
	return append(b, s...)
}

// appendDecPad appends v in decimal, zero-padded to width.
func appendDecPad(b []byte, v uint64, width int) []byte {
	s := strconv.FormatUint(v, 10)
	for i := len(s); i < width; i++ {
		b = append(b, '0')
	}
	return append(b, s...)
}

// maxSpanDecisions caps scheduler-decision spans recorded per attempt;
// under heavy queueing PickJob fires per free slot per event and would
// dominate tree size. The uncapped count still reaches the attempt span
// as the sched_decisions attribute.
const maxSpanDecisions = 8

// SpanCollector accumulates one simulator attempt's spans from the
// Observer callbacks. It is single-goroutine by construction (one
// collector per pool simulator, which is single-threaded) and therefore
// unlocked. Span times are attempt-local until QuerySpan.AddAttempt
// re-bases them onto the request timeline; Parent -1 marks spans that
// re-parent onto the attempt span at merge.
type SpanCollector struct {
	spans     []Span
	jobs      map[string]int // job id → open job span index
	decisions int            // uncapped PickJob count
	maxT      float64        // latest event time seen (failed-run duration)
}

// NewSpanCollector returns an empty per-attempt collector.
func NewSpanCollector() *SpanCollector {
	return &SpanCollector{jobs: map[string]int{}}
}

// Decisions returns the uncapped scheduler-decision count.
func (c *SpanCollector) Decisions() int { return c.decisions }

// LastEventSec returns the latest virtual time any callback reported —
// the attempt's effective duration when the simulated query failed and
// has no response time.
func (c *SpanCollector) LastEventSec() float64 { return c.maxT }

// touch advances the attempt's last-event clock.
func (c *SpanCollector) touch(now float64) {
	if now > c.maxT {
		c.maxT = now
	}
}

// add appends a span and returns its index.
func (c *SpanCollector) add(s Span) int {
	s.ID = len(c.spans)
	c.spans = append(c.spans, s)
	return s.ID
}

// jobParent resolves a job id to its open span index (-1 when the job
// was never opened, which re-parents the child onto the attempt).
func (c *SpanCollector) jobParent(job string) int {
	if i, ok := c.jobs[job]; ok {
		return i
	}
	return -1
}

// jobSubmitted opens a job span (closed by jobFinished; left open —
// clamped at merge — when the run fails mid-job).
func (c *SpanCollector) jobSubmitted(now, ready float64, job, jobType string, maps, reds int) {
	c.touch(now)
	c.jobs[job] = c.add(Span{
		Parent: -1, Kind: SpanKindJob, Name: job + " (" + jobType + ")",
		Start: now, End: -1,
		Attrs: []Attr{
			AttrStr("type", jobType), AttrInt("maps", maps), AttrInt("reduces", reds),
			AttrFloat("init_until_sec", ready),
		},
	})
}

// jobFinished closes the job's span.
func (c *SpanCollector) jobFinished(now float64, job string) {
	c.touch(now)
	if i, ok := c.jobs[job]; ok {
		c.spans[i].End = now
	}
}

// taskFinished records a completed task attempt under its job.
func (c *SpanCollector) taskFinished(now, start float64, job string, reduce bool,
	index, node, slot int, predSec float64, speculated, faulted bool) {
	c.touch(now)
	c.add(Span{
		Parent: c.jobParent(job), Kind: SpanKindTask, Name: taskName(job, reduce, index),
		Start: start, End: now,
		Attrs: []Attr{
			AttrInt("node", node), AttrInt("slot", slot), AttrFloat("pred_sec", predSec),
			AttrBool("speculated", speculated), AttrBool("faulted", faulted),
		},
	})
}

// taskFailed records a transient attempt failure under its job.
func (c *SpanCollector) taskFailed(now, start float64, job string, reduce bool,
	index, node, attempt int, backoffSec float64) {
	c.touch(now)
	c.add(Span{
		Parent: c.jobParent(job), Kind: SpanKindFault, Name: "FAIL " + taskName(job, reduce, index),
		Start: start, End: now,
		Attrs: []Attr{
			AttrInt("node", node), AttrInt("attempt", attempt),
			AttrFloat("backoff_sec", backoffSec),
		},
	})
}

// speculativeLaunched records a duplicate attempt starting.
func (c *SpanCollector) speculativeLaunched(now float64, job string, reduce bool,
	index, origNode, slot int) {
	c.touch(now)
	c.add(Span{
		Parent: c.jobParent(job), Kind: SpanKindTask, Name: "speculate " + taskName(job, reduce, index),
		Start: now, End: now,
		Attrs: []Attr{AttrInt("original_node", origNode), AttrInt("slot", slot)},
	})
}

// speculativeCanceled records the losing attempt of a speculative race:
// the span covers the slot time the loser burned before the winner won.
func (c *SpanCollector) speculativeCanceled(now, start float64, job string, reduce bool,
	index, slot int) {
	c.touch(now)
	c.add(Span{
		Parent: c.jobParent(job), Kind: SpanKindTask, Name: "cancel " + taskName(job, reduce, index),
		Start: start, End: now,
		Attrs: []Attr{AttrInt("slot", slot)},
	})
}

// shuffleReady records a job's map phase completing.
func (c *SpanCollector) shuffleReady(now float64, job string, released int) {
	c.touch(now)
	c.add(Span{
		Parent: c.jobParent(job), Kind: SpanKindJob, Name: "maps done",
		Start: now, End: now,
		Attrs: []Attr{AttrInt("released_reduces", released)},
	})
}

// reducePreempted records a hoarding reduce evicted for runnable work.
func (c *SpanCollector) reducePreempted(now float64, job string, index, slot int, waitedSec float64) {
	c.touch(now)
	c.add(Span{
		Parent: c.jobParent(job), Kind: SpanKindSched, Name: "preempt " + taskName(job, true, index),
		Start: now, End: now,
		Attrs: []Attr{AttrInt("slot", slot), AttrFloat("hoarded_sec", waitedSec)},
	})
}

// nodeEvent records a node-scoped fault (crash/recover/blacklist) at the
// attempt level.
func (c *SpanCollector) nodeEvent(now float64, name string, attrs ...Attr) {
	c.touch(now)
	c.add(Span{Parent: -1, Kind: SpanKindFault, Name: name, Start: now, End: now, Attrs: attrs})
}

// queryFailed records the simulated query aborting (attempt cap hit).
func (c *SpanCollector) queryFailed(now float64, reason string) {
	c.touch(now)
	c.add(Span{
		Parent: -1, Kind: SpanKindFault, Name: "query failed",
		Start: now, End: now,
		Attrs: []Attr{AttrStr("reason", reason)},
	})
}

// decision records one PickJob call, capped at maxSpanDecisions.
func (c *SpanCollector) decision(now float64, scheduler string, reduce bool,
	picked string, queueDepth int) {
	c.touch(now)
	c.decisions++
	if c.decisions > maxSpanDecisions {
		return
	}
	phase := "map"
	if reduce {
		phase = "reduce"
	}
	name := scheduler + ": idle"
	if picked != "" {
		name = scheduler + ": " + picked
	}
	c.add(Span{
		Parent: -1, Kind: SpanKindSched, Name: name,
		Start: now, End: now,
		Attrs: []Attr{
			AttrStr("phase", phase), AttrStr("picked", picked),
			AttrInt("queue_depth", queueDepth),
		},
	})
}

// QuerySpan builds one submission's tree: a root span, zero-width
// pipeline events (cache, admission, feedback), and one attempt span
// per simulator run with the collector's spans re-based under it.
// It is confined to the goroutine serving the submission.
type QuerySpan struct {
	tree     SpanTree
	offset   float64 // request-timeline position: sum of prior attempt durations
	attempts int
}

// BeginQuerySpan opens a request tree rooted at a SpanKindQuery span.
func BeginQuerySpan(traceID, name string, attrs ...Attr) *QuerySpan {
	q := &QuerySpan{tree: SpanTree{TraceID: traceID}}
	q.tree.Spans = append(q.tree.Spans, Span{
		ID: 0, Parent: -1, Kind: SpanKindQuery, Name: name, Attrs: attrs,
	})
	return q
}

// TraceID returns the request's trace id.
func (q *QuerySpan) TraceID() string { return q.tree.TraceID }

// Event appends a zero-width child of the root at the current timeline
// position (pipeline stages like cache lookup and admission).
func (q *QuerySpan) Event(kind, name string, attrs ...Attr) {
	q.tree.Spans = append(q.tree.Spans, Span{
		ID: len(q.tree.Spans), Parent: 0, Kind: kind, Name: name,
		Start: q.offset, End: q.offset, Attrs: attrs,
	})
}

// AddAttempt merges one collector under a new attempt span spanning
// durSec on the request timeline: collector span ids shift past the
// attempt's, roots re-parent onto it, times shift by the timeline
// offset, and still-open job spans clamp to the attempt end (the run
// failed mid-job). The collector must not be reused afterwards.
func (q *QuerySpan) AddAttempt(c *SpanCollector, durSec float64, attrs ...Attr) {
	q.attempts++
	attemptID := len(q.tree.Spans)
	attrs = append(attrs, AttrInt("sched_decisions", c.decisions))
	q.tree.Spans = append(q.tree.Spans, Span{
		ID: attemptID, Parent: 0, Kind: SpanKindAttempt,
		Name:  "attempt " + itoa(q.attempts),
		Start: q.offset, End: q.offset + durSec, Attrs: attrs,
	})
	base := attemptID + 1
	for _, s := range c.spans {
		if s.End < s.Start {
			s.End = durSec // job left open by a failed run
		}
		s.ID += base
		if s.Parent < 0 {
			s.Parent = attemptID
		} else {
			s.Parent += base
		}
		s.Start += q.offset
		s.End += q.offset
		q.tree.Spans = append(q.tree.Spans, s)
	}
	q.offset += durSec
}

// Finish closes the root at the current timeline position, appends the
// outcome attributes, and returns the completed tree.
func (q *QuerySpan) Finish(attrs ...Attr) SpanTree {
	q.tree.Spans[0].End = q.offset
	q.tree.Spans[0].Attrs = append(q.tree.Spans[0].Attrs, attrs...)
	return q.tree
}

// DefaultSpanCapacity bounds SpanStore retention when the configured
// capacity is zero or negative.
const DefaultSpanCapacity = 512

// SpanCounts is a SpanStore's lifecycle counters.
type SpanCounts struct {
	Started  uint64 `json:"started"`
	Finished uint64 `json:"finished"`
	Evicted  uint64 `json:"evicted"`
	Retained int    `json:"retained"`
}

// SpanStore retains finished span trees in a bounded ring (oldest
// evicted first) behind a mutex; the serving engine's pool workers add
// concurrently and the admin endpoint snapshots concurrently.
type SpanStore struct {
	mu       sync.Mutex
	capacity int
	trees    []SpanTree // ring buffer, len == capacity once full
	head     int        // index of the oldest tree
	n        int        // live tree count
	started  uint64
	finished uint64
	evicted  uint64
}

// NewSpanStore returns a store retaining at most capacity trees
// (DefaultSpanCapacity when capacity <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanStore{capacity: capacity}
}

// Begin counts a request tree opened (admitted submission).
func (s *SpanStore) Begin() {
	s.mu.Lock()
	s.started++
	s.mu.Unlock()
}

// Add retains a finished tree, evicting the oldest at capacity.
func (s *SpanStore) Add(t SpanTree) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished++
	if s.trees == nil {
		s.trees = make([]SpanTree, s.capacity)
	}
	if s.n == s.capacity {
		s.trees[s.head] = t
		s.head = (s.head + 1) % s.capacity
		s.evicted++
		return
	}
	s.trees[(s.head+s.n)%s.capacity] = t
	s.n++
}

// Counts snapshots the lifecycle counters.
func (s *SpanStore) Counts() SpanCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanCounts{Started: s.started, Finished: s.finished, Evicted: s.evicted, Retained: s.n}
}

// Trees returns the retained trees, oldest first.
func (s *SpanStore) Trees() []SpanTree {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.treesLocked()
}

// treesLocked copies the ring in insertion order.
func (s *SpanStore) treesLocked() []SpanTree {
	out := make([]SpanTree, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.trees[(s.head+i)%s.capacity])
	}
	return out
}

// Tree returns the newest retained tree with the given trace id.
func (s *SpanStore) Tree(traceID string) (SpanTree, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := s.n - 1; i >= 0; i-- {
		t := s.trees[(s.head+i)%s.capacity]
		if t.TraceID == traceID {
			return t, true
		}
	}
	return SpanTree{}, false
}

// SpanStoreSnapshot is the JSON form of a store: counters plus every
// retained tree, oldest first.
type SpanStoreSnapshot struct {
	Started  uint64     `json:"started"`
	Finished uint64     `json:"finished"`
	Evicted  uint64     `json:"evicted"`
	Trees    []SpanTree `json:"trees"`
}

// Snapshot copies the store state.
func (s *SpanStore) Snapshot() SpanStoreSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanStoreSnapshot{
		Started: s.started, Finished: s.finished, Evicted: s.evicted,
		Trees: s.treesLocked(),
	}
}

// WriteJSON serialises the snapshot as deterministic indented JSON.
func (s *SpanStore) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// pidSpanBase is the first trace process id used by WriteChromeTrace —
// far above the simulator's per-query pids so a span export can share a
// sink with a timeline trace without colliding.
const pidSpanBase = 10000

// WriteChromeTrace exports every retained tree as Chrome trace-event
// async spans ("b"/"e" pairs keyed by span id), one trace process per
// tree, so overlapping sibling spans render side by side in Perfetto.
// The caller owns the sink lifecycle (Close).
func (s *SpanStore) WriteChromeTrace(ts *TraceSink) {
	for i, tree := range s.Trees() {
		pid := pidSpanBase + i
		ts.MetaProcessName(pid, "trace "+tree.TraceID)
		for _, sp := range tree.Spans {
			id := tree.TraceID + ":" + itoa(sp.ID)
			args := make([]Arg, 0, len(sp.Attrs)+2)
			args = append(args, Arg{"span_id", sp.ID}, Arg{"parent", sp.Parent})
			for _, a := range sp.Attrs {
				args = append(args, Arg{a.Key, a.Val})
			}
			ts.AsyncBegin(pid, id, sp.Start, sp.Name, sp.Kind, args...)
			ts.AsyncEnd(pid, id, sp.End, sp.Name, sp.Kind)
		}
	}
}
