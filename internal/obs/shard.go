package obs

// Sharded-serving instrumentation: the cluster coordinator and its
// sentinel health loop (internal/shardserve) report slot routing,
// crash actuations, heartbeat misses, quorum votes, failovers, and
// model-replication lag here; the cluster-aware TCP frontends report
// MOVED redirects. Everything is counters and gauges — the failover
// causality itself lives in the coordinator's deterministic event log,
// which is byte-identical per seed and therefore never belongs in a
// wall-clock-free metrics registry twice.

// Shard metric names.
const (
	MShardSubmissions     = "saqp_shard_submissions_total"
	MShardFailoverWaits   = "saqp_shard_failover_waits_total"
	MShardMovedRedirects  = "saqp_shard_moved_redirects_total"
	MShardCrashes         = "saqp_shard_crashes_total"
	MShardRejoins         = "saqp_shard_rejoins_total"
	MShardHeartbeatMisses = "saqp_shard_heartbeat_misses_total"
	MShardDownVotes       = "saqp_shard_down_votes_total"
	MShardFailovers       = "saqp_shard_failovers_total"
	MShardAlivePrimaries  = "saqp_shard_alive_primaries"
	MShardEpoch           = "saqp_shard_epoch"
	MShardLeaderVersion   = "saqp_shard_model_leader_version"
	MShardModelLagMax     = "saqp_shard_model_lag_max"
	MLearnReplicaSyncs    = "saqp_learn_replica_syncs_total"
)

// ShardSubmitted counts one submission routed through the coordinator.
func (o *Observer) ShardSubmitted() { o.counter(MShardSubmissions) }

// ShardFailoverWait counts one submission that found its shard down and
// blocked for a promotion before completing.
func (o *Observer) ShardFailoverWait() { o.counter(MShardFailoverWaits) }

// ShardMoved counts one -MOVED redirect served by a cluster-aware
// frontend to a client that addressed the wrong shard.
func (o *Observer) ShardMoved() { o.counter(MShardMovedRedirects) }

// ShardCrash records one crash actuation and the resulting count of
// alive primaries.
func (o *Observer) ShardCrash(alivePrimaries int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MShardCrashes).Inc()
	o.Metrics.Gauge(MShardAlivePrimaries).Set(float64(alivePrimaries))
}

// ShardRejoin records one crashed instance rejoining as a standby and
// the resulting count of alive primaries.
func (o *Observer) ShardRejoin(alivePrimaries int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MShardRejoins).Inc()
	o.Metrics.Gauge(MShardAlivePrimaries).Set(float64(alivePrimaries))
}

// ShardHeartbeatMiss counts one sentinel heartbeat sample that found a
// shard's active instance unresponsive.
func (o *Observer) ShardHeartbeatMiss() { o.counter(MShardHeartbeatMisses) }

// ShardVote counts one sentinel crossing its miss threshold and voting
// a shard objectively down.
func (o *Observer) ShardVote() { o.counter(MShardDownVotes) }

// ShardFailover records one quorum failover and the new cluster epoch.
func (o *Observer) ShardFailover(epoch int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MShardFailovers).Inc()
	o.Metrics.Gauge(MShardEpoch).Set(float64(epoch))
}

// ShardModelSync records one model fan-out pass: the coordinator
// registry's champion version and the worst replica lag behind it.
func (o *Observer) ShardModelSync(leaderVersion, maxLag int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge(MShardLeaderVersion).Set(float64(leaderVersion))
	o.Metrics.Gauge(MShardModelLagMax).Set(float64(maxLag))
}

// LearnReplicaSynced counts one replica pulling a new champion version.
func (o *Observer) LearnReplicaSynced(version int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MLearnReplicaSyncs).Inc()
}
