package obs

// Fault-injection instrumentation: the cluster simulator reports injected
// faults and its recovery machinery here (internal/fault supplies the
// plans), and the serving engine reports query-level retries. Node-scoped
// events (crash, recover, blacklist) land on the PidFaults trace process —
// one thread per node — while task-scoped events (attempt failures,
// cancelled speculative attempts) land on the slot track they occupied, so
// a Perfetto timeline shows exactly which work each fault destroyed.

// Fault metric names.
const (
	MTaskFailures       = "saqp_cluster_task_failures_total"
	MTaskRetries        = "saqp_cluster_task_retries_total"
	MNodeCrashes        = "saqp_cluster_node_crashes_total"
	MNodeRecoveries     = "saqp_cluster_node_recoveries_total"
	MNodeBlacklists     = "saqp_cluster_node_blacklists_total"
	MSpeculativeCancels = "saqp_cluster_speculative_cancels_total"
	MQueryFailures      = "saqp_cluster_query_failures_total"
	MSlowDispatches     = "saqp_cluster_slowdown_dispatches_total"
	MServeRetries       = "saqp_serve_retries_total"
	MServeFaultFailures = "saqp_serve_fault_failures_total"
)

// FaultDomain names the fault trace tracks; the simulator calls it once
// per run when an observer is attached and a fault plan is active.
func (o *Observer) FaultDomain(nodes int) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.MetaProcessName(PidFaults, "faults")
	for n := 0; n < nodes; n++ {
		o.Trace.MetaThreadName(PidFaults, n, "node "+itoa(n))
	}
}

// TaskFailed records a transient task-attempt failure: the attempt burned
// its slot from start until now, then the task backs off for backoffSec
// before re-queueing (or fails its query, reported via QueryFailed).
func (o *Observer) TaskFailed(now, start float64, query, job, jobType string, reduce bool,
	index, node, slot, attempt int, backoffSec float64) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MTaskFailures).Inc()
	}
	if o.Spans != nil {
		o.Spans.taskFailed(now, start, job, reduce, index, node, attempt, backoffSec)
	}
	if o.Trace != nil {
		pid := PidMapSlots
		if reduce {
			pid = PidReduceSlots
		}
		o.Trace.Complete(pid, slot, start, now, "FAIL "+taskName(job, reduce, index), "fault",
			Arg{"query", query}, Arg{"type", jobType}, Arg{"node", node},
			Arg{"attempt", attempt}, Arg{"backoff_sec", backoffSec})
	}
}

// TaskRetryScheduled counts a failed task re-entering the pending queue
// after its backoff expires (crash-killed attempts re-queue immediately
// and are counted here too).
func (o *Observer) TaskRetryScheduled() { o.counter(MTaskRetries) }

// NodeCrashed records a node outage that killed the given number of
// running attempts.
func (o *Observer) NodeCrashed(now float64, node, killedAttempts int) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MNodeCrashes).Inc()
	}
	if o.Spans != nil {
		o.Spans.nodeEvent(now, "crash node "+itoa(node),
			AttrInt("killed_attempts", killedAttempts))
	}
	if o.Trace != nil {
		o.Trace.Instant(PidFaults, node, now, "crash node "+itoa(node), "fault",
			Arg{"killed_attempts", killedAttempts})
	}
}

// NodeRecovered records a crashed node rejoining with all slots free.
func (o *Observer) NodeRecovered(now float64, node int) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MNodeRecoveries).Inc()
	}
	if o.Spans != nil {
		o.Spans.nodeEvent(now, "recover node "+itoa(node))
	}
	if o.Trace != nil {
		o.Trace.Instant(PidFaults, node, now, "recover node "+itoa(node), "fault")
	}
}

// NodeBlacklisted records a node being excluded from scheduling after
// hosting too many transient failures.
func (o *Observer) NodeBlacklisted(now float64, node, failures int) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MNodeBlacklists).Inc()
	}
	if o.Spans != nil {
		o.Spans.nodeEvent(now, "blacklist node "+itoa(node),
			AttrInt("task_failures", failures))
	}
	if o.Trace != nil {
		o.Trace.Instant(PidFaults, node, now, "blacklist node "+itoa(node), "fault",
			Arg{"task_failures", failures})
	}
}

// SpeculativeCanceled records the losing attempt of a speculative race
// being cancelled the moment the winner finishes, freeing its slot.
// start is when the losing attempt was dispatched, so span trees can
// show the slot time the loser burned.
func (o *Observer) SpeculativeCanceled(now, start float64, query, job string, reduce bool,
	index, slot int) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MSpeculativeCancels).Inc()
	}
	if o.Spans != nil {
		o.Spans.speculativeCanceled(now, start, job, reduce, index, slot)
	}
	if o.Trace != nil {
		pid := PidMapSlots
		if reduce {
			pid = PidReduceSlots
		}
		o.Trace.Instant(pid, slot, now, "cancel "+taskName(job, reduce, index), "fault",
			Arg{"query", query})
	}
}

// SlowdownDispatch counts a task dispatched onto a node inside one of the
// plan's slowdown windows (it will run at a fraction of nominal speed).
func (o *Observer) SlowdownDispatch() { o.counter(MSlowDispatches) }

// QueryFailed records a query abandoned because one of its tasks exhausted
// the attempt cap.
func (o *Observer) QueryFailed(now, arrival float64, id, reason string) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MQueryFailures).Inc()
	}
	if o.Spans != nil {
		o.Spans.queryFailed(now, reason)
	}
	if o.Trace != nil {
		pid := o.pidOf(id)
		o.Trace.Complete(pid, 0, arrival, now, "FAILED query "+id, "fault",
			Arg{"reason", reason})
	}
}

// ServeRetried counts the serving engine re-running a fault-failed query
// on a fresh pool simulator with a re-rolled fault salt.
func (o *Observer) ServeRetried() { o.counter(MServeRetries) }

// ServeFaultFailure counts a served query that still failed after the
// engine's retry budget was exhausted.
func (o *Observer) ServeFaultFailure() { o.counter(MServeFaultFailures) }
